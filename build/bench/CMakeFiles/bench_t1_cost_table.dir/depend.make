# Empty dependencies file for bench_t1_cost_table.
# This may be replaced when dependencies are built.
