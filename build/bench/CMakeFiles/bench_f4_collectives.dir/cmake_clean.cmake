file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_collectives.dir/bench_f4_collectives.cpp.o"
  "CMakeFiles/bench_f4_collectives.dir/bench_f4_collectives.cpp.o.d"
  "bench_f4_collectives"
  "bench_f4_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
