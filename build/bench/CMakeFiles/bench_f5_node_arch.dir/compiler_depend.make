# Empty compiler generated dependencies file for bench_f5_node_arch.
# This may be replaced when dependencies are built.
