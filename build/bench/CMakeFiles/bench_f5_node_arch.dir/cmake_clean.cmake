file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_node_arch.dir/bench_f5_node_arch.cpp.o"
  "CMakeFiles/bench_f5_node_arch.dir/bench_f5_node_arch.cpp.o.d"
  "bench_f5_node_arch"
  "bench_f5_node_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_node_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
