# Empty dependencies file for bench_f10_fault_aware.
# This may be replaced when dependencies are built.
