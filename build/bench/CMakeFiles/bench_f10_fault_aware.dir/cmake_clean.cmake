file(REMOVE_RECURSE
  "CMakeFiles/bench_f10_fault_aware.dir/bench_f10_fault_aware.cpp.o"
  "CMakeFiles/bench_f10_fault_aware.dir/bench_f10_fault_aware.cpp.o.d"
  "bench_f10_fault_aware"
  "bench_f10_fault_aware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f10_fault_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
