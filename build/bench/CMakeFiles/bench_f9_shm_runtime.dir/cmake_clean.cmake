file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_shm_runtime.dir/bench_f9_shm_runtime.cpp.o"
  "CMakeFiles/bench_f9_shm_runtime.dir/bench_f9_shm_runtime.cpp.o.d"
  "bench_f9_shm_runtime"
  "bench_f9_shm_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_shm_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
