# Empty compiler generated dependencies file for bench_f9_shm_runtime.
# This may be replaced when dependencies are built.
