# Empty compiler generated dependencies file for bench_f6_app_scaling.
# This may be replaced when dependencies are built.
