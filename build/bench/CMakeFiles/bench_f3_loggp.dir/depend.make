# Empty dependencies file for bench_f3_loggp.
# This may be replaced when dependencies are built.
