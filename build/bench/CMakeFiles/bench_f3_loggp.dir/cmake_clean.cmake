file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_loggp.dir/bench_f3_loggp.cpp.o"
  "CMakeFiles/bench_f3_loggp.dir/bench_f3_loggp.cpp.o.d"
  "bench_f3_loggp"
  "bench_f3_loggp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_loggp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
