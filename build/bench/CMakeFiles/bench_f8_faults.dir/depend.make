# Empty dependencies file for bench_f8_faults.
# This may be replaced when dependencies are built.
