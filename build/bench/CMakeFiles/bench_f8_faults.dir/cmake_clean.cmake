file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_faults.dir/bench_f8_faults.cpp.o"
  "CMakeFiles/bench_f8_faults.dir/bench_f8_faults.cpp.o.d"
  "bench_f8_faults"
  "bench_f8_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
