# Empty dependencies file for bench_f1_tech_curves.
# This may be replaced when dependencies are built.
