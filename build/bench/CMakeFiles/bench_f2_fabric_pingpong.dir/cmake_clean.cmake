file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_fabric_pingpong.dir/bench_f2_fabric_pingpong.cpp.o"
  "CMakeFiles/bench_f2_fabric_pingpong.dir/bench_f2_fabric_pingpong.cpp.o.d"
  "bench_f2_fabric_pingpong"
  "bench_f2_fabric_pingpong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_fabric_pingpong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
