# Empty compiler generated dependencies file for bench_f2_fabric_pingpong.
# This may be replaced when dependencies are built.
