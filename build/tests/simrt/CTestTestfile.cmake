# CMake generated Testfile for 
# Source directory: /root/repo/tests/simrt
# Build directory: /root/repo/build/tests/simrt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/simrt/test_simrt[1]_include.cmake")
