
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fabric/loggp_test.cpp" "tests/fabric/CMakeFiles/test_fabric.dir/loggp_test.cpp.o" "gcc" "tests/fabric/CMakeFiles/test_fabric.dir/loggp_test.cpp.o.d"
  "/root/repo/tests/fabric/network_test.cpp" "tests/fabric/CMakeFiles/test_fabric.dir/network_test.cpp.o" "gcc" "tests/fabric/CMakeFiles/test_fabric.dir/network_test.cpp.o.d"
  "/root/repo/tests/fabric/params_test.cpp" "tests/fabric/CMakeFiles/test_fabric.dir/params_test.cpp.o" "gcc" "tests/fabric/CMakeFiles/test_fabric.dir/params_test.cpp.o.d"
  "/root/repo/tests/fabric/topology_test.cpp" "tests/fabric/CMakeFiles/test_fabric.dir/topology_test.cpp.o" "gcc" "tests/fabric/CMakeFiles/test_fabric.dir/topology_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fabric/CMakeFiles/polaris_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/polaris_des.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
