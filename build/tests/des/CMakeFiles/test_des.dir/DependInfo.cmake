
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/des/engine_test.cpp" "tests/des/CMakeFiles/test_des.dir/engine_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/engine_test.cpp.o.d"
  "/root/repo/tests/des/sync_test.cpp" "tests/des/CMakeFiles/test_des.dir/sync_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/sync_test.cpp.o.d"
  "/root/repo/tests/des/task_test.cpp" "tests/des/CMakeFiles/test_des.dir/task_test.cpp.o" "gcc" "tests/des/CMakeFiles/test_des.dir/task_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/des/CMakeFiles/polaris_des.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
