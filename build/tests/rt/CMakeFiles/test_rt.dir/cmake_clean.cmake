file(REMOVE_RECURSE
  "CMakeFiles/test_rt.dir/collectives_test.cpp.o"
  "CMakeFiles/test_rt.dir/collectives_test.cpp.o.d"
  "CMakeFiles/test_rt.dir/runtime_test.cpp.o"
  "CMakeFiles/test_rt.dir/runtime_test.cpp.o.d"
  "CMakeFiles/test_rt.dir/spsc_ring_test.cpp.o"
  "CMakeFiles/test_rt.dir/spsc_ring_test.cpp.o.d"
  "test_rt"
  "test_rt.pdb"
  "test_rt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
