# CMake generated Testfile for 
# Source directory: /root/repo/tests/coll
# Build directory: /root/repo/build/tests/coll
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/coll/test_coll[1]_include.cmake")
