
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hw/cluster_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/cluster_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/cluster_test.cpp.o.d"
  "/root/repo/tests/hw/node_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/node_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/node_test.cpp.o.d"
  "/root/repo/tests/hw/tech_test.cpp" "tests/hw/CMakeFiles/test_hw.dir/tech_test.cpp.o" "gcc" "tests/hw/CMakeFiles/test_hw.dir/tech_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/polaris_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
