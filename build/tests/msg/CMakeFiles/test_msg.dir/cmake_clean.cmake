file(REMOVE_RECURSE
  "CMakeFiles/test_msg.dir/active_msg_test.cpp.o"
  "CMakeFiles/test_msg.dir/active_msg_test.cpp.o.d"
  "CMakeFiles/test_msg.dir/completion_test.cpp.o"
  "CMakeFiles/test_msg.dir/completion_test.cpp.o.d"
  "CMakeFiles/test_msg.dir/protocol_test.cpp.o"
  "CMakeFiles/test_msg.dir/protocol_test.cpp.o.d"
  "CMakeFiles/test_msg.dir/reg_cache_test.cpp.o"
  "CMakeFiles/test_msg.dir/reg_cache_test.cpp.o.d"
  "CMakeFiles/test_msg.dir/tag_matcher_test.cpp.o"
  "CMakeFiles/test_msg.dir/tag_matcher_test.cpp.o.d"
  "test_msg"
  "test_msg.pdb"
  "test_msg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
