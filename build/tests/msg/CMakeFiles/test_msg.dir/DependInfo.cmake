
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/msg/active_msg_test.cpp" "tests/msg/CMakeFiles/test_msg.dir/active_msg_test.cpp.o" "gcc" "tests/msg/CMakeFiles/test_msg.dir/active_msg_test.cpp.o.d"
  "/root/repo/tests/msg/completion_test.cpp" "tests/msg/CMakeFiles/test_msg.dir/completion_test.cpp.o" "gcc" "tests/msg/CMakeFiles/test_msg.dir/completion_test.cpp.o.d"
  "/root/repo/tests/msg/protocol_test.cpp" "tests/msg/CMakeFiles/test_msg.dir/protocol_test.cpp.o" "gcc" "tests/msg/CMakeFiles/test_msg.dir/protocol_test.cpp.o.d"
  "/root/repo/tests/msg/reg_cache_test.cpp" "tests/msg/CMakeFiles/test_msg.dir/reg_cache_test.cpp.o" "gcc" "tests/msg/CMakeFiles/test_msg.dir/reg_cache_test.cpp.o.d"
  "/root/repo/tests/msg/tag_matcher_test.cpp" "tests/msg/CMakeFiles/test_msg.dir/tag_matcher_test.cpp.o" "gcc" "tests/msg/CMakeFiles/test_msg.dir/tag_matcher_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/msg/CMakeFiles/polaris_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/polaris_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/polaris_des.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
