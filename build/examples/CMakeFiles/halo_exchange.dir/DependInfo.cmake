
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/halo_exchange.cpp" "examples/CMakeFiles/halo_exchange.dir/halo_exchange.cpp.o" "gcc" "examples/CMakeFiles/halo_exchange.dir/halo_exchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/polaris_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/simrt/CMakeFiles/polaris_simrt.dir/DependInfo.cmake"
  "/root/repo/build/src/msg/CMakeFiles/polaris_msg.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/polaris_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/polaris_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/polaris_des.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/polaris_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
