
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cluster_operations.cpp" "examples/CMakeFiles/cluster_operations.dir/cluster_operations.cpp.o" "gcc" "examples/CMakeFiles/cluster_operations.dir/cluster_operations.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sched/CMakeFiles/polaris_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/fault/CMakeFiles/polaris_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
