file(REMOVE_RECURSE
  "CMakeFiles/petaflops_roadmap.dir/petaflops_roadmap.cpp.o"
  "CMakeFiles/petaflops_roadmap.dir/petaflops_roadmap.cpp.o.d"
  "petaflops_roadmap"
  "petaflops_roadmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/petaflops_roadmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
