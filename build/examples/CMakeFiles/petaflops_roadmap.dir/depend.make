# Empty dependencies file for petaflops_roadmap.
# This may be replaced when dependencies are built.
