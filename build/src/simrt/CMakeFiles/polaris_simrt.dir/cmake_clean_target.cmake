file(REMOVE_RECURSE
  "libpolaris_simrt.a"
)
