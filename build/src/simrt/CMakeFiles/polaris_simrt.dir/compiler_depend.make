# Empty compiler generated dependencies file for polaris_simrt.
# This may be replaced when dependencies are built.
