file(REMOVE_RECURSE
  "CMakeFiles/polaris_simrt.dir/sim_world.cpp.o"
  "CMakeFiles/polaris_simrt.dir/sim_world.cpp.o.d"
  "libpolaris_simrt.a"
  "libpolaris_simrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_simrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
