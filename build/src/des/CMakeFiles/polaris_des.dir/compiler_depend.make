# Empty compiler generated dependencies file for polaris_des.
# This may be replaced when dependencies are built.
