file(REMOVE_RECURSE
  "libpolaris_des.a"
)
