file(REMOVE_RECURSE
  "CMakeFiles/polaris_des.dir/engine.cpp.o"
  "CMakeFiles/polaris_des.dir/engine.cpp.o.d"
  "libpolaris_des.a"
  "libpolaris_des.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_des.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
