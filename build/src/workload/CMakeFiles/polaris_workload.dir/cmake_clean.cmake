file(REMOVE_RECURSE
  "CMakeFiles/polaris_workload.dir/apps.cpp.o"
  "CMakeFiles/polaris_workload.dir/apps.cpp.o.d"
  "libpolaris_workload.a"
  "libpolaris_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
