# Empty compiler generated dependencies file for polaris_workload.
# This may be replaced when dependencies are built.
