file(REMOVE_RECURSE
  "libpolaris_workload.a"
)
