file(REMOVE_RECURSE
  "libpolaris_support.a"
)
