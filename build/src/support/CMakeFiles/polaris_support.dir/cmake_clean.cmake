file(REMOVE_RECURSE
  "CMakeFiles/polaris_support.dir/rng.cpp.o"
  "CMakeFiles/polaris_support.dir/rng.cpp.o.d"
  "CMakeFiles/polaris_support.dir/stats.cpp.o"
  "CMakeFiles/polaris_support.dir/stats.cpp.o.d"
  "CMakeFiles/polaris_support.dir/table.cpp.o"
  "CMakeFiles/polaris_support.dir/table.cpp.o.d"
  "CMakeFiles/polaris_support.dir/units.cpp.o"
  "CMakeFiles/polaris_support.dir/units.cpp.o.d"
  "libpolaris_support.a"
  "libpolaris_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
