file(REMOVE_RECURSE
  "libpolaris_sched.a"
)
