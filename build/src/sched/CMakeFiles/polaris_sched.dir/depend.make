# Empty dependencies file for polaris_sched.
# This may be replaced when dependencies are built.
