file(REMOVE_RECURSE
  "CMakeFiles/polaris_sched.dir/fault_aware.cpp.o"
  "CMakeFiles/polaris_sched.dir/fault_aware.cpp.o.d"
  "CMakeFiles/polaris_sched.dir/scheduler.cpp.o"
  "CMakeFiles/polaris_sched.dir/scheduler.cpp.o.d"
  "CMakeFiles/polaris_sched.dir/trace.cpp.o"
  "CMakeFiles/polaris_sched.dir/trace.cpp.o.d"
  "libpolaris_sched.a"
  "libpolaris_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
