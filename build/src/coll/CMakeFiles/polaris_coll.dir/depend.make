# Empty dependencies file for polaris_coll.
# This may be replaced when dependencies are built.
