file(REMOVE_RECURSE
  "libpolaris_coll.a"
)
