file(REMOVE_RECURSE
  "CMakeFiles/polaris_coll.dir/algorithms.cpp.o"
  "CMakeFiles/polaris_coll.dir/algorithms.cpp.o.d"
  "CMakeFiles/polaris_coll.dir/cost.cpp.o"
  "CMakeFiles/polaris_coll.dir/cost.cpp.o.d"
  "CMakeFiles/polaris_coll.dir/local_exec.cpp.o"
  "CMakeFiles/polaris_coll.dir/local_exec.cpp.o.d"
  "CMakeFiles/polaris_coll.dir/schedule.cpp.o"
  "CMakeFiles/polaris_coll.dir/schedule.cpp.o.d"
  "libpolaris_coll.a"
  "libpolaris_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
