
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coll/algorithms.cpp" "src/coll/CMakeFiles/polaris_coll.dir/algorithms.cpp.o" "gcc" "src/coll/CMakeFiles/polaris_coll.dir/algorithms.cpp.o.d"
  "/root/repo/src/coll/cost.cpp" "src/coll/CMakeFiles/polaris_coll.dir/cost.cpp.o" "gcc" "src/coll/CMakeFiles/polaris_coll.dir/cost.cpp.o.d"
  "/root/repo/src/coll/local_exec.cpp" "src/coll/CMakeFiles/polaris_coll.dir/local_exec.cpp.o" "gcc" "src/coll/CMakeFiles/polaris_coll.dir/local_exec.cpp.o.d"
  "/root/repo/src/coll/schedule.cpp" "src/coll/CMakeFiles/polaris_coll.dir/schedule.cpp.o" "gcc" "src/coll/CMakeFiles/polaris_coll.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/polaris_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/polaris_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
