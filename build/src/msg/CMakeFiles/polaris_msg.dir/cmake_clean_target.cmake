file(REMOVE_RECURSE
  "libpolaris_msg.a"
)
