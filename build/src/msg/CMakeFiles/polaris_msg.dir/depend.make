# Empty dependencies file for polaris_msg.
# This may be replaced when dependencies are built.
