
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/msg/active_msg.cpp" "src/msg/CMakeFiles/polaris_msg.dir/active_msg.cpp.o" "gcc" "src/msg/CMakeFiles/polaris_msg.dir/active_msg.cpp.o.d"
  "/root/repo/src/msg/protocol.cpp" "src/msg/CMakeFiles/polaris_msg.dir/protocol.cpp.o" "gcc" "src/msg/CMakeFiles/polaris_msg.dir/protocol.cpp.o.d"
  "/root/repo/src/msg/reg_cache.cpp" "src/msg/CMakeFiles/polaris_msg.dir/reg_cache.cpp.o" "gcc" "src/msg/CMakeFiles/polaris_msg.dir/reg_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/polaris_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/polaris_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
