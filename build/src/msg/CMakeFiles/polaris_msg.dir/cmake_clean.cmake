file(REMOVE_RECURSE
  "CMakeFiles/polaris_msg.dir/active_msg.cpp.o"
  "CMakeFiles/polaris_msg.dir/active_msg.cpp.o.d"
  "CMakeFiles/polaris_msg.dir/protocol.cpp.o"
  "CMakeFiles/polaris_msg.dir/protocol.cpp.o.d"
  "CMakeFiles/polaris_msg.dir/reg_cache.cpp.o"
  "CMakeFiles/polaris_msg.dir/reg_cache.cpp.o.d"
  "libpolaris_msg.a"
  "libpolaris_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
