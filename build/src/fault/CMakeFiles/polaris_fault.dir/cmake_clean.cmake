file(REMOVE_RECURSE
  "CMakeFiles/polaris_fault.dir/checkpoint.cpp.o"
  "CMakeFiles/polaris_fault.dir/checkpoint.cpp.o.d"
  "CMakeFiles/polaris_fault.dir/detector.cpp.o"
  "CMakeFiles/polaris_fault.dir/detector.cpp.o.d"
  "CMakeFiles/polaris_fault.dir/failure.cpp.o"
  "CMakeFiles/polaris_fault.dir/failure.cpp.o.d"
  "libpolaris_fault.a"
  "libpolaris_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
