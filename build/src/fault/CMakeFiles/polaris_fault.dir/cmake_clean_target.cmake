file(REMOVE_RECURSE
  "libpolaris_fault.a"
)
