
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fault/checkpoint.cpp" "src/fault/CMakeFiles/polaris_fault.dir/checkpoint.cpp.o" "gcc" "src/fault/CMakeFiles/polaris_fault.dir/checkpoint.cpp.o.d"
  "/root/repo/src/fault/detector.cpp" "src/fault/CMakeFiles/polaris_fault.dir/detector.cpp.o" "gcc" "src/fault/CMakeFiles/polaris_fault.dir/detector.cpp.o.d"
  "/root/repo/src/fault/failure.cpp" "src/fault/CMakeFiles/polaris_fault.dir/failure.cpp.o" "gcc" "src/fault/CMakeFiles/polaris_fault.dir/failure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
