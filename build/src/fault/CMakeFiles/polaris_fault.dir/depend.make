# Empty dependencies file for polaris_fault.
# This may be replaced when dependencies are built.
