file(REMOVE_RECURSE
  "libpolaris_fabric.a"
)
