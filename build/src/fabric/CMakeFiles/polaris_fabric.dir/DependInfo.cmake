
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/loggp.cpp" "src/fabric/CMakeFiles/polaris_fabric.dir/loggp.cpp.o" "gcc" "src/fabric/CMakeFiles/polaris_fabric.dir/loggp.cpp.o.d"
  "/root/repo/src/fabric/network.cpp" "src/fabric/CMakeFiles/polaris_fabric.dir/network.cpp.o" "gcc" "src/fabric/CMakeFiles/polaris_fabric.dir/network.cpp.o.d"
  "/root/repo/src/fabric/params.cpp" "src/fabric/CMakeFiles/polaris_fabric.dir/params.cpp.o" "gcc" "src/fabric/CMakeFiles/polaris_fabric.dir/params.cpp.o.d"
  "/root/repo/src/fabric/topology.cpp" "src/fabric/CMakeFiles/polaris_fabric.dir/topology.cpp.o" "gcc" "src/fabric/CMakeFiles/polaris_fabric.dir/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/polaris_support.dir/DependInfo.cmake"
  "/root/repo/build/src/des/CMakeFiles/polaris_des.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
