# Empty compiler generated dependencies file for polaris_fabric.
# This may be replaced when dependencies are built.
