file(REMOVE_RECURSE
  "CMakeFiles/polaris_fabric.dir/loggp.cpp.o"
  "CMakeFiles/polaris_fabric.dir/loggp.cpp.o.d"
  "CMakeFiles/polaris_fabric.dir/network.cpp.o"
  "CMakeFiles/polaris_fabric.dir/network.cpp.o.d"
  "CMakeFiles/polaris_fabric.dir/params.cpp.o"
  "CMakeFiles/polaris_fabric.dir/params.cpp.o.d"
  "CMakeFiles/polaris_fabric.dir/topology.cpp.o"
  "CMakeFiles/polaris_fabric.dir/topology.cpp.o.d"
  "libpolaris_fabric.a"
  "libpolaris_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
