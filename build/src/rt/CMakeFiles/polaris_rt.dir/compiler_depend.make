# Empty compiler generated dependencies file for polaris_rt.
# This may be replaced when dependencies are built.
