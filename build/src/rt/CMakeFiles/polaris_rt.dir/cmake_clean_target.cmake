file(REMOVE_RECURSE
  "libpolaris_rt.a"
)
