file(REMOVE_RECURSE
  "CMakeFiles/polaris_rt.dir/runtime.cpp.o"
  "CMakeFiles/polaris_rt.dir/runtime.cpp.o.d"
  "libpolaris_rt.a"
  "libpolaris_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
