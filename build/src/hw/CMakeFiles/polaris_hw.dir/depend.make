# Empty dependencies file for polaris_hw.
# This may be replaced when dependencies are built.
