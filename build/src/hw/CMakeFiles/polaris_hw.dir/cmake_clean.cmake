file(REMOVE_RECURSE
  "CMakeFiles/polaris_hw.dir/cluster.cpp.o"
  "CMakeFiles/polaris_hw.dir/cluster.cpp.o.d"
  "CMakeFiles/polaris_hw.dir/node.cpp.o"
  "CMakeFiles/polaris_hw.dir/node.cpp.o.d"
  "CMakeFiles/polaris_hw.dir/tech.cpp.o"
  "CMakeFiles/polaris_hw.dir/tech.cpp.o.d"
  "libpolaris_hw.a"
  "libpolaris_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polaris_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
