file(REMOVE_RECURSE
  "libpolaris_hw.a"
)
