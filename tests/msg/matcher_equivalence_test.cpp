// Randomized equivalence: the bucketed TagMatcher must make the exact
// decisions of the linear ReferenceTagMatcher under arbitrary interleavings
// of posts (with wildcard mixes), arrivals, cancels and probes.  MPI
// matching is a total function of the operation sequence — oldest matching
// posted receive per arrival, oldest matching unexpected message per post —
// so any divergence in match results, depths or stats is a bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "polaris/msg/reference_matcher.hpp"
#include "polaris/msg/tag_matcher.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::msg {
namespace {

/// Cookie shaped like the simrt substrate's pooled handle.
struct SlotCookie {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

std::uint64_t cookie_key(int c) { return static_cast<std::uint64_t>(c); }
std::uint64_t cookie_key(const SlotCookie& c) {
  return (static_cast<std::uint64_t>(c.gen) << 32) | c.slot;
}

template <typename Cookie, typename MakeCookie>
void run_equivalence(std::uint64_t seed, int ops, MakeCookie make_cookie) {
  TagMatcher<Cookie> fast;
  ReferenceTagMatcher<Cookie> ref;
  support::SplitMix64 rng(seed);
  RecvId next_id = 1;
  std::vector<RecvId> open;  // ids posted in BOTH and not yet known matched

  const auto pick_src = [&](bool allow_wild) {
    if (allow_wild && rng.next() % 4 == 0) return kAnySource;
    return static_cast<int>(rng.next() % 5);
  };
  const auto pick_tag = [&](bool allow_wild) {
    if (allow_wild && rng.next() % 4 == 0) return kAnyTag;
    return static_cast<int>(rng.next() % 7);
  };

  for (int i = 0; i < ops; ++i) {
    switch (rng.next() % 8) {
      case 0:
      case 1:
      case 2: {  // post_recv
        const RecvId id = next_id++;
        const int src = pick_src(true);
        const int tag = pick_tag(true);
        auto f = fast.post_recv(id, src, tag);
        auto r = ref.post_recv(id, src, tag);
        ASSERT_EQ(f.has_value(), r.has_value()) << "op " << i;
        if (f) {
          EXPECT_EQ(f->src, r->src);
          EXPECT_EQ(f->tag, r->tag);
          EXPECT_EQ(f->bytes, r->bytes);
          EXPECT_EQ(cookie_key(f->cookie), cookie_key(r->cookie));
        } else {
          open.push_back(id);
        }
        break;
      }
      case 3:
      case 4:
      case 5: {  // arrive (no wildcards on messages)
        Envelope<Cookie> env;
        env.src = pick_src(false);
        env.tag = pick_tag(false);
        env.bytes = rng.next() % 4096;
        env.cookie = make_cookie(rng.next());
        Envelope<Cookie> env2 = env;
        auto f = fast.arrive(std::move(env));
        auto r = ref.arrive(std::move(env2));
        ASSERT_EQ(f.has_value(), r.has_value()) << "op " << i;
        if (f) {
          EXPECT_EQ(*f, *r) << "op " << i;
          EXPECT_EQ(cookie_key(fast.last_matched().cookie),
                    cookie_key(ref.last_matched().cookie));
          EXPECT_EQ(fast.last_matched().bytes, ref.last_matched().bytes);
          std::erase(open, *f);
        }
        break;
      }
      case 6: {  // cancel a random open id (may have matched already)
        if (open.empty()) break;
        const std::size_t at = rng.next() % open.size();
        const RecvId id = open[at];
        const bool f = fast.cancel_recv(id);
        const bool r = ref.cancel_recv(id);
        ASSERT_EQ(f, r) << "op " << i;
        if (f) open.erase(open.begin() + static_cast<std::ptrdiff_t>(at));
        break;
      }
      default: {  // probe (wildcards allowed)
        const int src = pick_src(true);
        const int tag = pick_tag(true);
        const auto* f = fast.probe(src, tag);
        const auto* r = ref.probe(src, tag);
        ASSERT_EQ(f != nullptr, r != nullptr) << "op " << i;
        if (f) {
          EXPECT_EQ(f->src, r->src);
          EXPECT_EQ(f->tag, r->tag);
          EXPECT_EQ(f->bytes, r->bytes);
        }
        break;
      }
    }
    ASSERT_EQ(fast.posted_depth(), ref.posted_depth()) << "op " << i;
    ASSERT_EQ(fast.unexpected_depth(), ref.unexpected_depth()) << "op " << i;
  }

  const MatchStats& fs = fast.stats();
  const MatchStats& rs = ref.stats();
  EXPECT_EQ(fs.posted, rs.posted);
  EXPECT_EQ(fs.arrived, rs.arrived);
  EXPECT_EQ(fs.matched_posted, rs.matched_posted);
  EXPECT_EQ(fs.matched_unexpected, rs.matched_unexpected);
  EXPECT_EQ(fs.cancelled, rs.cancelled);
  EXPECT_EQ(fs.max_posted_depth, rs.max_posted_depth);
  EXPECT_EQ(fs.max_unexpected_depth, rs.max_unexpected_depth);
}

TEST(MatcherEquivalence, RandomTrafficIntCookie) {
  // Cookie shaped like the real runtime's (payload struct); several seeds.
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 0xDEADBEEFull}) {
    run_equivalence<int>(seed, 20'000, [](std::uint64_t r) {
      return static_cast<int>(r % 1000);
    });
  }
}

TEST(MatcherEquivalence, RandomTrafficSlotCookie) {
  // Cookie shaped like simrt's pooled slot+generation handle.
  for (std::uint64_t seed : {3ull, 11ull, 0xC0FFEEull}) {
    run_equivalence<SlotCookie>(seed, 20'000, [](std::uint64_t r) {
      return SlotCookie{static_cast<std::uint32_t>(r),
                        static_cast<std::uint32_t>(r >> 32)};
    });
  }
}

TEST(MatcherEquivalence, WildcardHeavyTraffic) {
  // A separate pass with wildcards dominating: every post uses kAnySource
  // and/or kAnyTag, the regime where the bucketed matcher must fall back to
  // cross-bucket sequence comparison on every arrival.
  TagMatcher<int> fast;
  ReferenceTagMatcher<int> ref;
  support::SplitMix64 rng(0xA11Au);
  RecvId next_id = 1;
  for (int i = 0; i < 30'000; ++i) {
    if (rng.next() % 2 == 0) {
      const int kind = static_cast<int>(rng.next() % 3);
      const int src = kind == 0 ? kAnySource
                                : static_cast<int>(rng.next() % 3);
      const int tag = kind != 2 ? kAnyTag
                                : static_cast<int>(rng.next() % 3);
      const RecvId id = next_id++;
      auto f = fast.post_recv(id, src, tag);
      auto r = ref.post_recv(id, src, tag);
      ASSERT_EQ(f.has_value(), r.has_value()) << i;
      if (f) ASSERT_EQ(f->cookie, r->cookie) << i;
    } else {
      Envelope<int> env{static_cast<int>(rng.next() % 3),
                        static_cast<int>(rng.next() % 3), 8,
                        static_cast<int>(i)};
      auto f = fast.arrive(env);
      auto r = ref.arrive(env);
      ASSERT_EQ(f.has_value(), r.has_value()) << i;
      if (f) ASSERT_EQ(*f, *r) << i;
    }
  }
  EXPECT_EQ(fast.posted_depth(), ref.posted_depth());
  EXPECT_EQ(fast.unexpected_depth(), ref.unexpected_depth());
}

TEST(MatcherEquivalence, PoolsReachSteadyState) {
  // Bounded live depth must bound the matcher's slabs: run a long
  // ping-pong-style alternation and require the pools to stop growing.
  TagMatcher<int> m;
  RecvId next_id = 1;
  for (int i = 0; i < 64; ++i) {
    m.arrive(Envelope<int>{i % 4, i % 3, 8, i});  // warm the pools
  }
  for (int i = 0; i < 64; ++i) m.post_recv(next_id++, kAnySource, kAnyTag);
  const std::size_t posted_cap = m.posted_pool_capacity();
  const std::size_t unexp_cap = m.unexpected_pool_capacity();
  for (int round = 0; round < 10'000; ++round) {
    m.arrive(Envelope<int>{round % 4, round % 3, 8, round});
    auto got = m.post_recv(next_id++, round % 4, round % 3);
    ASSERT_TRUE(got.has_value());
  }
  EXPECT_EQ(m.posted_pool_capacity(), posted_cap);
  EXPECT_EQ(m.unexpected_pool_capacity(), unexp_cap);
}

}  // namespace
}  // namespace polaris::msg
