#include "polaris/msg/tag_matcher.hpp"

#include <gtest/gtest.h>

namespace polaris::msg {
namespace {

using Matcher = TagMatcher<int>;  // cookie = int for tests
using Env = Envelope<int>;

Env env(int src, int tag, std::uint64_t bytes = 8, int cookie = 0) {
  return Env{src, tag, bytes, cookie};
}

TEST(TagMatcher, ExpectedMessageMatchesPostedRecv) {
  Matcher m;
  EXPECT_FALSE(m.post_recv(1, 3, 7).has_value());
  const auto id = m.arrive(env(3, 7, 100, 42));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 1u);
  EXPECT_EQ(m.last_matched().cookie, 42);
  EXPECT_EQ(m.last_matched().bytes, 100u);
  EXPECT_EQ(m.posted_depth(), 0u);
}

TEST(TagMatcher, UnexpectedMessageMatchesLaterRecv) {
  Matcher m;
  EXPECT_FALSE(m.arrive(env(2, 5, 64, 9)).has_value());
  EXPECT_EQ(m.unexpected_depth(), 1u);
  const auto got = m.post_recv(1, 2, 5);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->cookie, 9);
  EXPECT_EQ(m.unexpected_depth(), 0u);
}

TEST(TagMatcher, WildcardSourceMatchesAnySender) {
  Matcher m;
  m.post_recv(1, kAnySource, 7);
  const auto id = m.arrive(env(12, 7));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 1u);
}

TEST(TagMatcher, WildcardTagMatchesAnyTag) {
  Matcher m;
  m.post_recv(1, 3, kAnyTag);
  EXPECT_TRUE(m.arrive(env(3, 99)).has_value());
}

TEST(TagMatcher, FullWildcardRecv) {
  Matcher m;
  m.post_recv(1, kAnySource, kAnyTag);
  EXPECT_TRUE(m.arrive(env(8, 8)).has_value());
}

TEST(TagMatcher, MismatchedTagDoesNotMatch) {
  Matcher m;
  m.post_recv(1, 3, 7);
  EXPECT_FALSE(m.arrive(env(3, 8)).has_value());
  EXPECT_EQ(m.posted_depth(), 1u);
  EXPECT_EQ(m.unexpected_depth(), 1u);
}

TEST(TagMatcher, MismatchedSourceDoesNotMatch) {
  Matcher m;
  m.post_recv(1, 3, 7);
  EXPECT_FALSE(m.arrive(env(4, 7)).has_value());
}

TEST(TagMatcher, ArrivalMatchesOldestPostedRecv) {
  // MPI ordering: the earliest matching posted receive wins.
  Matcher m;
  m.post_recv(1, kAnySource, 7);
  m.post_recv(2, 3, 7);
  const auto id = m.arrive(env(3, 7));
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 1u);
}

TEST(TagMatcher, RecvMatchesOldestUnexpected) {
  Matcher m;
  m.arrive(env(3, 7, 8, /*cookie=*/100));
  m.arrive(env(3, 7, 8, /*cookie=*/200));
  const auto got = m.post_recv(1, 3, 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->cookie, 100);  // FIFO: first arrival first
  const auto got2 = m.post_recv(2, 3, 7);
  ASSERT_TRUE(got2.has_value());
  EXPECT_EQ(got2->cookie, 200);
}

TEST(TagMatcher, WildcardRecvSkipsNonMatchingUnexpected) {
  Matcher m;
  m.arrive(env(1, 5, 8, 100));
  m.arrive(env(2, 7, 8, 200));
  const auto got = m.post_recv(1, kAnySource, 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->cookie, 200);
  EXPECT_EQ(m.unexpected_depth(), 1u);
}

TEST(TagMatcher, CancelRemovesPostedRecv) {
  Matcher m;
  m.post_recv(1, 3, 7);
  EXPECT_TRUE(m.cancel_recv(1));
  EXPECT_FALSE(m.arrive(env(3, 7)).has_value());
  EXPECT_FALSE(m.cancel_recv(1));  // already gone
}

TEST(TagMatcher, ProbeDoesNotConsume) {
  Matcher m;
  m.arrive(env(3, 7, 128, 5));
  const auto* p1 = m.probe(3, 7);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(p1->bytes, 128u);
  EXPECT_EQ(m.unexpected_depth(), 1u);
  EXPECT_EQ(m.probe(4, 7), nullptr);
}

TEST(TagMatcher, StatsTrackTraffic) {
  Matcher m;
  m.post_recv(1, 3, 7);
  m.arrive(env(3, 7));
  m.arrive(env(9, 9));
  m.post_recv(2, 9, 9);
  const auto& s = m.stats();
  EXPECT_EQ(s.posted, 2u);
  EXPECT_EQ(s.arrived, 2u);
  EXPECT_EQ(s.matched_posted, 1u);
  EXPECT_EQ(s.matched_unexpected, 1u);
  EXPECT_EQ(s.max_unexpected_depth, 1u);
}

TEST(TagMatcher, ManyToOneOrderingPreserved) {
  // Messages from one source with the same tag must match receives in
  // arrival order (MPI non-overtaking).
  Matcher m;
  for (int i = 0; i < 100; ++i) m.arrive(env(1, 0, 8, i));
  for (int i = 0; i < 100; ++i) {
    const auto got = m.post_recv(static_cast<RecvId>(i), 1, 0);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->cookie, i);
  }
}

}  // namespace
}  // namespace polaris::msg
