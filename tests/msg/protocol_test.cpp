#include "polaris/msg/protocol.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "polaris/support/check.hpp"

namespace polaris::msg {
namespace {

using fabric::fabrics::gig_ethernet;
using fabric::fabrics::infiniband_4x;
using fabric::fabrics::myrinet2000;

TEST(ChooseProtocol, SmallMessagesGoEager) {
  EXPECT_EQ(choose_protocol(infiniband_4x(), 8), Protocol::kEager);
  EXPECT_EQ(choose_protocol(infiniband_4x(), 8 * 1024), Protocol::kEager);
}

TEST(ChooseProtocol, LargeMessagesUseRdmaWhenAvailable) {
  EXPECT_EQ(choose_protocol(infiniband_4x(), 1 << 20), Protocol::kRdma);
  EXPECT_EQ(choose_protocol(myrinet2000(), 1 << 20), Protocol::kRendezvous);
}

TEST(ChooseProtocol, ThresholdOverrideApplies) {
  EXPECT_EQ(choose_protocol(infiniband_4x(), 100, 64), Protocol::kRdma);
  EXPECT_EQ(choose_protocol(infiniband_4x(), 100, 128), Protocol::kEager);
}

TEST(CostModel, EagerPaysCopiesBothSides) {
  const auto p = infiniband_4x();
  const std::uint64_t bytes = 1 << 20;
  const auto c = cost_model(p, Protocol::kEager, bytes);
  const double copy = static_cast<double>(bytes) / p.copy_bw;
  EXPECT_NEAR(c.send_overhead, p.o_send + copy, 1e-12);
  EXPECT_NEAR(c.recv_overhead, p.o_recv + copy, 1e-12);
  EXPECT_EQ(c.handshake, 0.0);
}

TEST(CostModel, RendezvousPaysHandshakeNotCopies) {
  const auto p = myrinet2000();
  const auto c = cost_model(p, Protocol::kRendezvous, 1 << 20);
  EXPECT_GT(c.handshake, 0.0);
  EXPECT_DOUBLE_EQ(c.send_overhead, p.o_send);
  EXPECT_DOUBLE_EQ(c.recv_overhead, p.o_recv);
}

TEST(CostModel, RdmaFreesReceiverCpu) {
  const auto c = cost_model(infiniband_4x(), Protocol::kRdma, 1 << 20);
  EXPECT_EQ(c.recv_overhead, 0.0);
  EXPECT_GT(c.handshake, 0.0);
}

TEST(CostModel, RdmaOnNonRdmaFabricRejected) {
  EXPECT_THROW((void)cost_model(myrinet2000(), Protocol::kRdma, 1024),
               support::ContractViolation);
}

TEST(CostModel, ColdRegistrationCharged) {
  const auto p = infiniband_4x();
  const auto warm = cost_model(p, Protocol::kRdma, 1 << 20, 1, true);
  const auto cold = cost_model(p, Protocol::kRdma, 1 << 20, 1, false);
  EXPECT_EQ(warm.registration, 0.0);
  EXPECT_GT(cold.registration, 0.0);
  EXPECT_GT(cold.total(), warm.total());
}

TEST(CostModel, KernelPathRendezvousStillCopies) {
  const auto p = gig_ethernet();
  const auto c = cost_model(p, Protocol::kRendezvous, 1 << 20);
  EXPECT_GT(c.send_overhead, p.o_send);  // copy included
}

TEST(CostModel, EagerBeatsRendezvousForSmall) {
  const auto p = infiniband_4x();
  const auto e = cost_model(p, Protocol::kEager, 256);
  const auto r = cost_model(p, Protocol::kRdma, 256);
  EXPECT_LT(e.total(), r.total());
}

TEST(CostModel, RendezvousBeatsEagerForLarge) {
  const auto p = infiniband_4x();
  const auto e = cost_model(p, Protocol::kEager, 4 << 20);
  const auto r = cost_model(p, Protocol::kRdma, 4 << 20);
  EXPECT_LT(r.total(), e.total());
}

TEST(Crossover, UserLevelFabricsHaveFiniteCrossover) {
  for (const auto name : {"myrinet-2000", "quadrics-qsnet", "infiniband-4x"}) {
    const auto p = fabric::fabrics::by_name(name);
    const auto x = crossover_bytes(p);
    EXPECT_NE(x, std::numeric_limits<std::uint64_t>::max()) << name;
    EXPECT_GT(x, 128u) << name;
    EXPECT_LT(x, 4u << 20) << name;
  }
}

TEST(Crossover, KernelFabricsNeverCross) {
  // With copies on both protocols, rendezvous only adds a handshake.
  EXPECT_EQ(crossover_bytes(gig_ethernet()),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(Crossover, DefaultThresholdsNearCrossover) {
  // The preset eager thresholds should sit within an order of magnitude of
  // the analytic crossover (sanity link between config and model).
  for (const auto name : {"myrinet-2000", "infiniband-4x"}) {
    const auto p = fabric::fabrics::by_name(name);
    const double x = static_cast<double>(crossover_bytes(p));
    const double thr = static_cast<double>(p.eager_threshold);
    EXPECT_GT(thr / x, 0.05) << name;
    EXPECT_LT(thr / x, 20.0) << name;
  }
}

TEST(ProtocolNames, AllNamed) {
  EXPECT_STREQ(to_string(Protocol::kEager), "eager");
  EXPECT_STREQ(to_string(Protocol::kRendezvous), "rendezvous");
  EXPECT_STREQ(to_string(Protocol::kRdma), "rdma");
}

}  // namespace
}  // namespace polaris::msg
