#include "polaris/msg/active_msg.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::msg {
namespace {

TEST(ActiveMessageTable, RegisterReturnsDenseIds) {
  ActiveMessageTable t;
  const auto a = t.register_handler([](int, std::span<const std::byte>) {});
  const auto b = t.register_handler([](int, std::span<const std::byte>) {});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(ActiveMessageTable, DispatchRunsHandlerWithArgs) {
  ActiveMessageTable t;
  int seen_src = -1;
  std::vector<std::byte> seen;
  const auto id = t.register_handler(
      [&](int src, std::span<const std::byte> payload) {
        seen_src = src;
        seen.assign(payload.begin(), payload.end());
      });
  const std::byte data[3] = {std::byte{1}, std::byte{2}, std::byte{3}};
  t.dispatch(id, 7, data);
  EXPECT_EQ(seen_src, 7);
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[2], std::byte{3});
  EXPECT_EQ(t.dispatched(), 1u);
}

TEST(ActiveMessageTable, UnknownHandlerThrows) {
  ActiveMessageTable t;
  EXPECT_THROW(t.dispatch(0, 0, {}), support::ContractViolation);
}

TEST(ActiveMessageTable, HandlersKeepIndependentState) {
  ActiveMessageTable t;
  int a = 0, b = 0;
  t.register_handler([&](int, std::span<const std::byte>) { ++a; });
  t.register_handler([&](int, std::span<const std::byte>) { ++b; });
  t.dispatch(0, 0, {});
  t.dispatch(0, 0, {});
  t.dispatch(1, 0, {});
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 1);
}

TEST(ActiveMessageTable, EmptyPayloadAllowed) {
  ActiveMessageTable t;
  std::size_t len = 99;
  t.register_handler([&](int, std::span<const std::byte> p) {
    len = p.size();
  });
  t.dispatch(0, 3, {});
  EXPECT_EQ(len, 0u);
}

}  // namespace
}  // namespace polaris::msg
