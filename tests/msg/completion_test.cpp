#include "polaris/msg/completion.hpp"

#include <gtest/gtest.h>

namespace polaris::msg {
namespace {

TEST(CompletionQueue, StartsEmpty) {
  CompletionQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.poll().has_value());
}

TEST(CompletionQueue, FifoOrder) {
  CompletionQueue q;
  q.push({CompletionKind::kSend, 1, 0, 0, 8});
  q.push({CompletionKind::kRecv, 2, 1, 5, 16});
  auto a = q.poll();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->request, 1u);
  EXPECT_EQ(a->kind, CompletionKind::kSend);
  auto b = q.poll();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->request, 2u);
  EXPECT_EQ(b->tag, 5);
  EXPECT_TRUE(q.empty());
}

TEST(CompletionQueue, DepthTracksContents) {
  CompletionQueue q;
  for (std::uint64_t i = 0; i < 10; ++i) {
    q.push({CompletionKind::kAm, i, 0, 0, 0});
  }
  EXPECT_EQ(q.depth(), 10u);
  q.poll();
  EXPECT_EQ(q.depth(), 9u);
}

}  // namespace
}  // namespace polaris::msg
