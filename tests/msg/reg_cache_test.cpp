#include "polaris/msg/reg_cache.hpp"

#include <gtest/gtest.h>

#include "polaris/support/check.hpp"

namespace polaris::msg {
namespace {

constexpr std::size_t kPage = RegistrationCache::kPageSize;

TEST(RegCache, FirstAcquireMissesAndCharges) {
  RegistrationCache c(1 << 20, 10e-6, 1e-6);
  const double cost = c.acquire(0x10000, 2 * kPage);
  EXPECT_DOUBLE_EQ(cost, 10e-6 + 2e-6);
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.pinned_bytes(), 2 * kPage);
}

TEST(RegCache, RepeatAcquireHitsForFree) {
  RegistrationCache c(1 << 20, 10e-6, 1e-6);
  c.acquire(0x10000, kPage);
  EXPECT_DOUBLE_EQ(c.acquire(0x10000, kPage), 0.0);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(RegCache, SubrangeOfRegisteredRegionHits) {
  RegistrationCache c(1 << 20, 10e-6, 1e-6);
  c.acquire(0x10000, 8 * kPage);
  EXPECT_DOUBLE_EQ(c.acquire(0x10000 + kPage, kPage), 0.0);
  EXPECT_DOUBLE_EQ(c.acquire(0x10000 + 7 * kPage, 100), 0.0);
}

TEST(RegCache, PartialOverlapReRegistersUnion) {
  RegistrationCache c(1 << 20, 10e-6, 1e-6);
  c.acquire(0x10000, 4 * kPage);
  // Extends past the end: must miss and re-register.
  const double cost = c.acquire(0x10000 + 2 * kPage, 4 * kPage);
  EXPECT_GT(cost, 0.0);
  EXPECT_EQ(c.stats().misses, 2u);
  // The old overlapping region was dropped; pinned bytes reflect only the
  // new region.
  EXPECT_EQ(c.pinned_bytes(), 4 * kPage);
}

TEST(RegCache, SpansPagesByAddressNotLength) {
  RegistrationCache c(1 << 20, 0.0, 1e-6);
  // 2 bytes straddling a page boundary pin two pages.
  const double cost = c.acquire(2 * kPage - 1, 2);
  EXPECT_DOUBLE_EQ(cost, 2e-6);
  EXPECT_EQ(c.pinned_bytes(), 2 * kPage);
}

TEST(RegCache, LruEvictionUnderCapacity) {
  RegistrationCache c(4 * kPage, 10e-6, 1e-6);
  c.acquire(0 * 16 * kPage, kPage);
  c.acquire(1 * 16 * kPage, kPage);
  c.acquire(2 * 16 * kPage, kPage);
  c.acquire(3 * 16 * kPage, kPage);
  // Touch region 0 so region 1 is LRU.
  EXPECT_DOUBLE_EQ(c.acquire(0, kPage), 0.0);
  c.acquire(4 * 16 * kPage, kPage);  // evicts region 1
  EXPECT_TRUE(c.contains(0, kPage));
  EXPECT_FALSE(c.contains(16 * kPage, kPage));
  EXPECT_EQ(c.stats().evictions, 1u);
  EXPECT_LE(c.pinned_bytes(), 4 * kPage);
}

TEST(RegCache, InvalidateDropsRegistration) {
  RegistrationCache c(1 << 20, 10e-6, 1e-6);
  c.acquire(0x40000, 4 * kPage);
  c.invalidate(0x40000 + kPage, 1);  // any overlap kills the region
  EXPECT_FALSE(c.contains(0x40000, kPage));
  EXPECT_EQ(c.pinned_bytes(), 0u);
  EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(RegCache, InvalidateNonOverlappingIsNoop) {
  RegistrationCache c(1 << 20, 10e-6, 1e-6);
  c.acquire(0x40000, kPage);
  c.invalidate(0x80000, kPage);
  EXPECT_TRUE(c.contains(0x40000, kPage));
}

TEST(RegCache, ZeroLengthQueries) {
  RegistrationCache c(1 << 20, 10e-6, 1e-6);
  EXPECT_FALSE(c.contains(0x1000, 0));
  c.invalidate(0x1000, 0);  // no-op, no crash
  EXPECT_THROW((void)c.acquire(0x1000, 0), support::ContractViolation);
}

TEST(RegCache, AmortizationOverRepeatedUse) {
  // The point of the cache: N reuses of one buffer cost one registration.
  RegistrationCache c(1 << 24, 25e-6, 0.5e-6);
  double total = 0.0;
  for (int i = 0; i < 1000; ++i) total += c.acquire(0x100000, 64 * 1024);
  EXPECT_DOUBLE_EQ(total, 25e-6 + 0.5e-6 * 16);
  EXPECT_EQ(c.stats().hits, 999u);
}

TEST(RegCache, RejectsTinyCapacity) {
  EXPECT_THROW(RegistrationCache(100, 0.0, 0.0), support::ContractViolation);
}

}  // namespace
}  // namespace polaris::msg
