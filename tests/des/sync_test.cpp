#include "polaris/des/sync.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "polaris/des/task.hpp"

namespace polaris::des {
namespace {

// ---------------------------------------------------------------- Trigger

Task<void> wait_trigger(Trigger& t, Engine& e, std::vector<SimTime>& log) {
  co_await t.wait();
  log.push_back(e.now());
}

Task<void> fire_later(Trigger& t, Engine& e, SimTime at) {
  co_await delay(e, at);
  t.fire();
}

TEST(Trigger, ReleasesAllWaitersAtFireTime) {
  Engine e;
  Trigger t(e);
  std::vector<SimTime> log;
  e.spawn(wait_trigger(t, e, log));
  e.spawn(wait_trigger(t, e, log));
  e.spawn(fire_later(t, e, 50));
  e.run();
  EXPECT_EQ(log, (std::vector<SimTime>{50, 50}));
  EXPECT_TRUE(t.fired());
}

TEST(Trigger, AwaitAfterFireCompletesImmediately) {
  Engine e;
  Trigger t(e);
  t.fire();
  std::vector<SimTime> log;
  e.spawn(wait_trigger(t, e, log));
  e.run();
  EXPECT_EQ(log, (std::vector<SimTime>{0}));
}

TEST(Trigger, FireIsIdempotent) {
  Engine e;
  Trigger t(e);
  std::vector<SimTime> log;
  e.spawn(wait_trigger(t, e, log));
  e.schedule_at(10, [&] {
    t.fire();
    t.fire();
  });
  e.run();
  EXPECT_EQ(log.size(), 1u);
}

// ---------------------------------------------------------------- Mailbox

Task<void> consume_n(Mailbox<int>& mb, int n, std::vector<int>& got) {
  for (int i = 0; i < n; ++i) got.push_back(co_await mb.get());
}

Task<void> produce(Mailbox<int>& mb, Engine& e, std::vector<int> vals,
                   SimTime gap) {
  for (int v : vals) {
    co_await delay(e, gap);
    mb.push(v);
  }
}

TEST(Mailbox, DeliversInFifoOrder) {
  Engine e;
  Mailbox<int> mb(e);
  std::vector<int> got;
  e.spawn(consume_n(mb, 3, got));
  e.spawn(produce(mb, e, {1, 2, 3}, 10));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Mailbox, BufferedValuesConsumedWithoutBlocking) {
  Engine e;
  Mailbox<int> mb(e);
  mb.push(5);
  mb.push(6);
  EXPECT_EQ(mb.size(), 2u);
  std::vector<int> got;
  e.spawn(consume_n(mb, 2, got));
  e.run();
  EXPECT_EQ(got, (std::vector<int>{5, 6}));
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, MultipleConsumersServedInArrivalOrder) {
  Engine e;
  Mailbox<std::string> mb(e);
  std::vector<std::string> got;
  auto consumer = [&](int id) -> Task<void> {
    auto v = co_await mb.get();
    got.push_back(std::to_string(id) + ":" + v);
  };
  e.spawn(consumer(1));
  e.spawn(consumer(2));
  e.schedule_at(10, [&] { mb.push("a"); });
  e.schedule_at(20, [&] { mb.push("b"); });
  e.run();
  EXPECT_EQ(got, (std::vector<std::string>{"1:a", "2:b"}));
}

TEST(Mailbox, TryGetIsNonBlocking) {
  Engine e;
  Mailbox<int> mb(e);
  EXPECT_FALSE(mb.try_get().has_value());
  mb.push(9);
  auto v = mb.try_get();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
}

TEST(Mailbox, MoveOnlyPayload) {
  Engine e;
  Mailbox<std::unique_ptr<int>> mb(e);
  mb.push(std::make_unique<int>(3));
  bool ok = false;
  auto consumer = [&]() -> Task<void> {
    auto p = co_await mb.get();
    ok = (*p == 3);
  };
  e.spawn(consumer());
  e.run();
  EXPECT_TRUE(ok);
}

// -------------------------------------------------------------- Semaphore

Task<void> hold(Semaphore& s, Engine& e, SimTime for_time,
                std::vector<std::pair<SimTime, SimTime>>& spans) {
  co_await s.acquire();
  const SimTime start = e.now();
  co_await delay(e, for_time);
  s.release();
  spans.emplace_back(start, e.now());
}

TEST(Semaphore, SerializesWhenCapacityOne) {
  Engine e;
  Semaphore s(e, 1);
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (int i = 0; i < 3; ++i) e.spawn(hold(s, e, 10, spans));
  e.run();
  ASSERT_EQ(spans.size(), 3u);
  // Spans must not overlap.
  EXPECT_EQ(spans[0], (std::pair<SimTime, SimTime>{0, 10}));
  EXPECT_EQ(spans[1], (std::pair<SimTime, SimTime>{10, 20}));
  EXPECT_EQ(spans[2], (std::pair<SimTime, SimTime>{20, 30}));
}

TEST(Semaphore, CapacityTwoAllowsPairwiseOverlap) {
  Engine e;
  Semaphore s(e, 2);
  std::vector<std::pair<SimTime, SimTime>> spans;
  for (int i = 0; i < 4; ++i) e.spawn(hold(s, e, 10, spans));
  e.run();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(e.now(), 20);  // two batches of two
}

Task<void> acquire_n(Semaphore& s, Engine& e, std::int64_t n,
                     std::vector<std::pair<std::int64_t, SimTime>>& log) {
  co_await s.acquire(n);
  log.emplace_back(n, e.now());
}

TEST(Semaphore, FifoGrantPreventsStarvationOfLargeRequest) {
  Engine e;
  Semaphore s(e, 4);
  std::vector<std::pair<std::int64_t, SimTime>> log;
  auto run = [&]() -> Task<void> {
    co_await s.acquire(4);     // take everything
    co_await delay(e, 10);
    s.release(4);
  };
  e.spawn(run());
  e.spawn(acquire_n(s, e, 3, log));  // queued first
  e.spawn(acquire_n(s, e, 1, log));  // must NOT jump the queue
  e.run();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 3);
  EXPECT_EQ(log[1].first, 1);
  EXPECT_EQ(log[0].second, 10);
}

TEST(Semaphore, AvailableTracksAcquireRelease) {
  Engine e;
  Semaphore s(e, 5);
  auto run = [&]() -> Task<void> {
    co_await s.acquire(3);
    EXPECT_EQ(s.available(), 2);
    s.release(3);
    EXPECT_EQ(s.available(), 5);
  };
  e.spawn(run());
  e.run();
}

TEST(Semaphore, RejectsNegativeInitial) {
  Engine e;
  EXPECT_THROW(Semaphore(e, -1), support::ContractViolation);
}


// -------------------------------------------------------------- WaitGroup

TEST(WaitGroup, WaitsForAllArmedChildren) {
  Engine e;
  WaitGroup wg(e);
  SimTime done_at = -1;
  auto child = [&](SimTime dt) -> Task<void> {
    co_await delay(e, dt);
    wg.done();
  };
  wg.arm(3);
  e.spawn(child(10));
  e.spawn(child(30));
  e.spawn(child(20));
  auto waiter = [&]() -> Task<void> {
    co_await wg.wait();
    done_at = e.now();
  };
  e.spawn(waiter());
  e.run();
  EXPECT_EQ(done_at, 30);
}

TEST(WaitGroup, NeverArmedIsAlreadyDrained) {
  Engine e;
  WaitGroup wg(e);
  bool through = false;
  auto waiter = [&]() -> Task<void> {
    co_await wg.wait();
    through = true;
  };
  e.spawn(waiter());
  e.run();
  EXPECT_TRUE(through);
}

TEST(WaitGroup, DoneWithoutArmThrows) {
  Engine e;
  WaitGroup wg(e);
  EXPECT_THROW(wg.done(), support::ContractViolation);
}

TEST(WaitGroup, PendingTracksCount) {
  Engine e;
  WaitGroup wg(e);
  wg.arm(2);
  EXPECT_EQ(wg.pending(), 2u);
  wg.done();
  EXPECT_EQ(wg.pending(), 1u);
}

}  // namespace
}  // namespace polaris::des
