#include "polaris/des/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::des {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  SimTime seen = -1;
  e.schedule_at(123456789, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 123456789);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  SimTime seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule_at(100, [&] {
    EXPECT_THROW(e.schedule_at(50, [] {}), support::ContractViolation);
  });
  e.run();
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto id = e.schedule_at(10, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelOfFiredEventIsNoop) {
  Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  e.cancel(id);  // must not crash or affect later events
  bool ran = false;
  e.schedule_at(20, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, StopHaltsExecution) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] { ++count; });
  e.schedule_at(2, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(3, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 2);
  // A subsequent run resumes with what is left.
  e.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  const auto n = e.run_until(25);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(e.now(), 25);
  e.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Engine, RunUntilAdvancesClockOnEmptyQueue) {
  Engine e;
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  EXPECT_EQ(e.run(), 5u);
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  support::UniqueFunction<void()> recur;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_after(1, [&] { chain(); });
  };
  e.schedule_at(0, [&] { chain(); });
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

TEST(Engine, StatsTrackQueueAndCancellations) {
  Engine e;
  for (int i = 0; i < 4; ++i) e.schedule_at(i, [] {});
  const EventId victim = e.schedule_at(10, [] {});
  EXPECT_EQ(e.queue_depth(), 5u);
  e.cancel(victim);
  e.run();

  const EngineStats s = e.stats();
  EXPECT_EQ(s.scheduled, 5u);
  EXPECT_EQ(s.executed, 4u);
  EXPECT_EQ(s.cancelled_skipped, 1u);
  EXPECT_EQ(s.max_queue_depth, 5u);
  EXPECT_EQ(e.queue_depth(), 0u);
}

TEST(Engine, CancelledEventsAreReapedAndSlotsReused) {
  Engine e;
  for (int round = 0; round < 100; ++round) {
    auto id = e.schedule_at(e.now() + 1, [] {});
    e.cancel(id);
    e.schedule_at(e.now() + 1, [] {});
    e.run();
  }
  const EngineStats s = e.stats();
  EXPECT_EQ(s.cancelled_skipped, 100u);
  EXPECT_EQ(s.executed, 100u);
  // Node slots recycle: the pool never grows past the per-round peak.
  EXPECT_LE(s.pool_capacity, 2u);
  EXPECT_EQ(s.pool_in_use, 0u);
}

TEST(Engine, CancelAfterSlotReuseDoesNotKillNewEvent) {
  Engine e;
  bool first = false, second = false;
  const EventId id1 = e.schedule_at(10, [&] { first = true; });
  e.run();  // id1 fires; its pool slot is released
  const EventId id2 = e.schedule_at(20, [&] { second = true; });
  EXPECT_EQ(id1.slot, id2.slot);  // slot reused...
  e.cancel(id1);                  // ...so this stale cancel must be a no-op
  e.run();
  EXPECT_TRUE(first);
  EXPECT_TRUE(second);
}

TEST(Engine, DoubleCancelIsIdempotent) {
  Engine e;
  bool ran = false;
  auto id = e.schedule_at(10, [&] { ran = true; });
  e.cancel(id);
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(e.stats().cancelled_skipped, 1u);
}

TEST(Engine, CancelOfNeverScheduledIdIsNoop) {
  Engine e;
  e.cancel(EventId{});         // invalid sentinel
  e.cancel(EventId{123, 45});  // out-of-range slot
  bool ran = false;
  e.schedule_at(1, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

// Regression for the seed engine's cancelled_-set leak: cancelling a fired
// event inserted its sequence number into an unordered_set that nothing
// ever erased.  With generation tombstones the cancel is recognized as
// stale, so a million of them retain no state at all.
TEST(Engine, CancellingAMillionFiredEventsRetainsNoState) {
  Engine e;
  std::vector<EventId> ids;
  constexpr int kEvents = 1'000'000;
  ids.reserve(kEvents);
  constexpr int kBatch = 1000;
  for (int batch = 0; batch < kEvents / kBatch; ++batch) {
    for (int i = 0; i < kBatch; ++i) {
      ids.push_back(e.schedule_after(1, [] {}));
    }
    e.run();
  }
  for (const EventId id : ids) e.cancel(id);  // all already fired
  const EngineStats s = e.stats();
  EXPECT_EQ(s.executed, static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(s.cancelled_skipped, 0u);  // no live event was ever cancelled
  EXPECT_EQ(e.queue_depth(), 0u);
  EXPECT_EQ(s.pool_in_use, 0u);
  // Engine state is bounded by the high watermark, not by history.
  EXPECT_LE(s.pool_capacity, static_cast<std::size_t>(kBatch));
  EXPECT_EQ(s.max_pool_in_use, static_cast<std::size_t>(kBatch));
  // And the stale cancels really are no-ops: new events still run.
  bool ran = false;
  e.schedule_after(1, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, RunUntilIgnoresCancelledEventAtHead) {
  Engine e;
  bool late_ran = false;
  auto id = e.schedule_at(10, [] {});
  e.schedule_at(50, [&] { late_ran = true; });
  e.cancel(id);
  // The cancelled head must not bait run_until into executing the t=50
  // event before the boundary.
  EXPECT_EQ(e.run_until(25), 0u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(e.now(), 25);
  e.run();
  EXPECT_TRUE(late_ran);
}

TEST(Engine, CountsSboMissesForOversizedCallbacks) {
  Engine e;
  e.schedule_at(1, [] {});  // tiny: inline
  struct Big {
    char pad[200] = {};
  };
  Big big;
  e.schedule_at(2, [big] { (void)big; });  // oversized: heap fallback
  e.run();
  EXPECT_EQ(e.stats().sbo_misses, 1u);
}

TEST(Engine, PoolOccupancyTracksQueueDepth) {
  Engine e;
  for (int i = 0; i < 10; ++i) e.schedule_at(i, [] {});
  EngineStats s = e.stats();
  EXPECT_EQ(s.pool_in_use, 10u);
  EXPECT_EQ(s.max_pool_in_use, 10u);
  e.run();
  s = e.stats();
  EXPECT_EQ(s.pool_in_use, 0u);
  EXPECT_EQ(s.max_pool_in_use, 10u);
  EXPECT_EQ(s.pool_capacity, 10u);
}

TEST(Engine, RawCallbacksInterleaveWithClosuresInScheduleOrder) {
  // schedule_raw_* goes through the same queue as closure callbacks and
  // obeys the same (time, sequence) total order.
  Engine e;
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
    int tag;
  };
  static constexpr auto record = +[](void* p) {
    const auto* c = static_cast<Ctx*>(p);
    c->order->push_back(c->tag);
  };
  Ctx a{&order, 1}, b{&order, 3};
  e.schedule_raw_at(10, record, &a);
  e.schedule_at(10, [&] { order.push_back(2); });
  e.schedule_raw_at(5, record, &b);
  e.run();
  EXPECT_EQ(order, (std::vector<int>{3, 1, 2}));
}

TEST(Engine, RawCallbacksAreCancellable) {
  Engine e;
  int fired = 0;
  struct Ctx {
    int* fired;
  } c{&fired};
  const EventId id = e.schedule_raw_after(
      7, +[](void* p) { ++*static_cast<Ctx*>(p)->fired; }, &c);
  e.schedule_raw_after(
      9, +[](void* p) { ++*static_cast<Ctx*>(p)->fired; }, &c);
  e.cancel(id);
  e.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(e.now(), 9);
}

TEST(Engine, NextEventTimeOnEmptyEngineIsSentinel) {
  Engine e;
  EXPECT_EQ(e.next_event_time(), Engine::kNoEventTime);
  e.schedule_at(5, [] {});
  e.run();
  EXPECT_EQ(e.next_event_time(), Engine::kNoEventTime);
}

TEST(Engine, NextEventTimeSeesWheelAndHeap) {
  Engine e;
  e.schedule_at(3, [] {});          // near: timing-wheel window
  e.schedule_at(3 + 50000, [] {});  // far: overflow heap
  EXPECT_EQ(e.next_event_time(), 3);
  e.run_until(3);
  EXPECT_EQ(e.next_event_time(), 3 + 50000);
}

TEST(Engine, NextEventTimeIsALowerBoundUnderCancel) {
  Engine e;
  const EventId id = e.schedule_at(3, [] {});
  e.schedule_at(10, [] {});
  e.cancel(id);
  // A tombstoned head may be reported: the contract is a lower bound,
  // which is all conservative synchronization needs.
  EXPECT_LE(e.next_event_time(), 10);
  EXPECT_GE(e.next_event_time(), 3);
  e.run();
  EXPECT_EQ(e.now(), 10);
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(1e-6), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
  EXPECT_EQ(from_micros(2.5), 2500);
  EXPECT_DOUBLE_EQ(to_micros(1500), 1.5);
}

}  // namespace
}  // namespace polaris::des
