#include "polaris/des/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::des {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0);
  EXPECT_TRUE(e.empty());
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(30, [&] { order.push_back(3); });
  e.schedule_at(10, [&] { order.push_back(1); });
  e.schedule_at(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  SimTime seen = -1;
  e.schedule_at(123456789, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 123456789);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  SimTime seen = -1;
  e.schedule_at(100, [&] {
    e.schedule_after(50, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 150);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine e;
  e.schedule_at(100, [&] {
    EXPECT_THROW(e.schedule_at(50, [] {}), support::ContractViolation);
  });
  e.run();
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  auto id = e.schedule_at(10, [&] { ran = true; });
  e.cancel(id);
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelOfFiredEventIsNoop) {
  Engine e;
  auto id = e.schedule_at(10, [] {});
  e.run();
  e.cancel(id);  // must not crash or affect later events
  bool ran = false;
  e.schedule_at(20, [&] { ran = true; });
  e.run();
  EXPECT_TRUE(ran);
}

TEST(Engine, StopHaltsExecution) {
  Engine e;
  int count = 0;
  e.schedule_at(1, [&] { ++count; });
  e.schedule_at(2, [&] {
    ++count;
    e.stop();
  });
  e.schedule_at(3, [&] { ++count; });
  e.run();
  EXPECT_EQ(count, 2);
  // A subsequent run resumes with what is left.
  e.run();
  EXPECT_EQ(count, 3);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine e;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  const auto n = e.run_until(25);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(e.now(), 25);
  e.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20, 30, 40}));
}

TEST(Engine, RunUntilAdvancesClockOnEmptyQueue) {
  Engine e;
  e.run_until(1000);
  EXPECT_EQ(e.now(), 1000);
}

TEST(Engine, CountsExecutedEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) e.schedule_at(i, [] {});
  EXPECT_EQ(e.run(), 5u);
  EXPECT_EQ(e.events_executed(), 5u);
}

TEST(Engine, EventsMayScheduleMoreEvents) {
  Engine e;
  int depth = 0;
  support::UniqueFunction<void()> recur;
  std::function<void()> chain = [&] {
    if (++depth < 100) e.schedule_after(1, [&] { chain(); });
  };
  e.schedule_at(0, [&] { chain(); });
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(e.now(), 99);
}

TEST(Engine, StatsTrackQueueAndCancellations) {
  Engine e;
  for (int i = 0; i < 4; ++i) e.schedule_at(i, [] {});
  const EventId victim = e.schedule_at(10, [] {});
  EXPECT_EQ(e.queue_depth(), 5u);
  e.cancel(victim);
  e.run();

  const EngineStats s = e.stats();
  EXPECT_EQ(s.scheduled, 5u);
  EXPECT_EQ(s.executed, 4u);
  EXPECT_EQ(s.cancelled_skipped, 1u);
  EXPECT_EQ(s.max_queue_depth, 5u);
  EXPECT_EQ(e.queue_depth(), 0u);
}

TEST(TimeConversions, RoundTrip) {
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_EQ(from_seconds(1e-6), kMicrosecond);
  EXPECT_DOUBLE_EQ(to_seconds(kMillisecond), 1e-3);
  EXPECT_EQ(from_micros(2.5), 2500);
  EXPECT_DOUBLE_EQ(to_micros(1500), 1.5);
}

}  // namespace
}  // namespace polaris::des
