#include "polaris/des/sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::des {
namespace {

TEST(SweepRunner, ResultsArriveInPointOrder) {
  SweepRunner runner(4);
  const auto out = runner.run(
      100, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(SweepRunner, ParallelMatchesSerialExactly) {
  // Each point runs a real (independent) engine; the sweep result must not
  // depend on thread count.
  auto point = [](std::size_t i) {
    Engine e;
    std::uint64_t acc = 0;
    support::Random rng(sweep_seed(123, i));
    for (int k = 0; k < 200; ++k) {
      e.schedule_after(static_cast<SimTime>(rng.uniform_int(1, 50)),
                       [&acc, &e] { acc += static_cast<std::uint64_t>(e.now()); });
      e.run();
    }
    return acc;
  };
  const auto serial = SweepRunner(1).run(32, point);
  const auto parallel = SweepRunner(4).run(32, point);
  EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, MapPassesItemAndIndex) {
  SweepRunner runner(2);
  const std::vector<std::string> items{"a", "b", "c"};
  const auto out = runner.map(items, [](const std::string& s, std::size_t i) {
    return s + std::to_string(i);
  });
  EXPECT_EQ(out, (std::vector<std::string>{"a0", "b1", "c2"}));
}

TEST(SweepRunner, EveryPointRunsExactlyOnce) {
  SweepRunner runner(8);
  std::atomic<int> calls{0};
  const auto out = runner.run(1000, [&](std::size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  EXPECT_EQ(calls.load(), 1000);
  std::set<std::size_t> seen(out.begin(), out.end());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(SweepRunner, PropagatesPointExceptions) {
  SweepRunner runner(4);
  EXPECT_THROW(runner.run(64,
                          [](std::size_t i) -> int {
                            if (i == 13) throw std::runtime_error("boom");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(SweepRunner, ZeroPointsIsEmpty) {
  SweepRunner runner(4);
  EXPECT_TRUE(runner.run(0, [](std::size_t) { return 1; }).empty());
}

TEST(SweepRunner, ExplicitThreadCountWins) {
  EXPECT_EQ(SweepRunner(3).threads(), 3u);
  EXPECT_GE(SweepRunner().threads(), 1u);
}

TEST(SweepSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(sweep_seed(42, 0), sweep_seed(42, 0));
  EXPECT_NE(sweep_seed(42, 0), sweep_seed(42, 1));
  EXPECT_NE(sweep_seed(42, 0), sweep_seed(43, 0));
  // Adjacent points must not yield near-identical seeds.
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) seeds.insert(sweep_seed(7, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

}  // namespace
}  // namespace polaris::des
