#include "polaris/des/task.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace polaris::des {
namespace {

Task<void> simple_sleeper(Engine& e, SimTime dt, bool& done) {
  co_await delay(e, dt);
  done = true;
}

TEST(Task, SpawnedProcessRunsToCompletion) {
  Engine e;
  bool done = false;
  e.spawn(simple_sleeper(e, 100, done));
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.now(), 100);
  EXPECT_EQ(e.live_processes(), 0u);
}

Task<int> returns_value(Engine& e) {
  co_await delay(e, 10);
  co_return 42;
}

Task<void> awaits_value(Engine& e, int& out) {
  out = co_await returns_value(e);
}

TEST(Task, ValueReturningTaskComposes) {
  Engine e;
  int out = 0;
  e.spawn(awaits_value(e, out));
  e.run();
  EXPECT_EQ(out, 42);
}

Task<int> add_chain(Engine& e, int depth) {
  if (depth == 0) co_return 0;
  const int below = co_await add_chain(e, depth - 1);
  co_return below + 1;
}

Task<void> deep_chain_driver(Engine& e, int& out) {
  out = co_await add_chain(e, 5000);
}

TEST(Task, DeepCompositionDoesNotOverflowStack) {
  // Symmetric transfer must make 5000-deep task chains safe.
  Engine e;
  int out = 0;
  e.spawn(deep_chain_driver(e, out));
  e.run();
  EXPECT_EQ(out, 5000);
}

Task<void> multi_sleep(Engine& e, std::vector<SimTime>& wakeups) {
  for (int i = 0; i < 3; ++i) {
    co_await delay(e, 10);
    wakeups.push_back(e.now());
  }
}

TEST(Task, SequentialDelaysAccumulate) {
  Engine e;
  std::vector<SimTime> wakeups;
  e.spawn(multi_sleep(e, wakeups));
  e.run();
  EXPECT_EQ(wakeups, (std::vector<SimTime>{10, 20, 30}));
}

TEST(Task, ManyConcurrentProcessesInterleave) {
  Engine e;
  int completed = 0;
  auto proc = [](Engine& eng, SimTime dt, int& n) -> Task<void> {
    co_await delay(eng, dt);
    ++n;
  };
  for (SimTime dt = 1; dt <= 100; ++dt) e.spawn(proc(e, dt, completed));
  EXPECT_EQ(e.live_processes(), 0u);  // not started until run()
  e.run();
  EXPECT_EQ(completed, 100);
  EXPECT_EQ(e.now(), 100);
}

Task<void> thrower(Engine& e) {
  co_await delay(e, 5);
  throw std::runtime_error("sim process failed");
}

TEST(Task, ExceptionPropagatesOutOfRun) {
  Engine e;
  e.spawn(thrower(e));
  EXPECT_THROW(e.run(), std::runtime_error);
}

Task<void> catches_child_error(Engine& e, bool& caught) {
  try {
    co_await thrower(e);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Task, AwaiterCanCatchChildException) {
  Engine e;
  bool caught = false;
  e.spawn(catches_child_error(e, caught));
  e.run();
  EXPECT_TRUE(caught);
}

Task<void> yielder(Engine& e, std::vector<int>& order, int id) {
  order.push_back(id * 10);
  co_await yield(e);
  order.push_back(id * 10 + 1);
}

TEST(Task, YieldInterleavesSameTimeProcesses) {
  Engine e;
  std::vector<int> order;
  e.spawn(yielder(e, order, 1));
  e.spawn(yielder(e, order, 2));
  e.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 11, 21}));
  EXPECT_EQ(e.now(), 0);
}

Task<int> immediate() { co_return 7; }

Task<void> awaits_immediate(int& out) { out = co_await immediate(); }

TEST(Task, TaskCompletingWithoutSuspensionStillDeliversValue) {
  Engine e;
  int out = 0;
  e.spawn(awaits_immediate(out));
  e.run();
  EXPECT_EQ(out, 7);
}

TEST(Task, LiveProcessCountTracksSpawnedWork) {
  Engine e;
  auto proc = [](Engine& eng) -> Task<void> { co_await delay(eng, 10); };
  e.spawn(proc(e));
  e.spawn(proc(e));
  e.schedule_at(5, [&] { EXPECT_EQ(e.live_processes(), 2u); });
  e.run();
  EXPECT_EQ(e.live_processes(), 0u);
}

}  // namespace
}  // namespace polaris::des
