// Determinism of the pooled 4-ary-heap event queue.
//
// The engine's ordering contract — pop in (time, sequence) order, FIFO for
// equal times — defines a strict total order, so the firing sequence must
// match a trivially-correct reference model (stable sort by time) for any
// interleaving of schedules and cancels, and must be identical across
// repeated runs with the same seed.
#include "polaris/des/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "polaris/support/rng.hpp"

namespace polaris::des {
namespace {

TEST(EngineDeterminism, SameTimeEventsFireInScheduleOrderAfterHeapChurn) {
  // Interleave distinct-time filler with a batch of same-time events so the
  // heap actually reorders internally; the same-time batch must still fire
  // in schedule order (seq tie-break).
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 64; ++i) {
    e.schedule_at(1000, [&order, i] { order.push_back(i); });
    e.schedule_at(2000 - i, [] {});  // filler above the batch
    e.schedule_at(i, [] {});         // filler below the batch
  }
  e.run();
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST(EngineDeterminism, MatchesReferenceModelUnderRandomScheduleAndCancel) {
  // Reference: stable sort of live (time, issue-index) pairs == engine's
  // (t, seq) order.  Random workload with cancellation mixed in.
  support::Random rng(0xDE5C0DE);
  Engine e;
  struct Ref {
    SimTime t;
    int label;
  };
  std::vector<Ref> ref;
  std::vector<int> fired;
  std::vector<EventId> cancellable;
  int next_label = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto t = static_cast<SimTime>(rng.uniform_int(0, 500));
    const int label = next_label++;
    const EventId id =
        e.schedule_at(t, [&fired, label] { fired.push_back(label); });
    if (rng.bernoulli(0.3)) {
      cancellable.push_back(id);
      ref.push_back({t, -1});  // placeholder, cancelled below
    } else {
      ref.push_back({t, label});
    }
  }
  for (const EventId id : cancellable) e.cancel(id);
  e.run();

  std::vector<int> expected;
  std::stable_sort(ref.begin(), ref.end(),
                   [](const Ref& a, const Ref& b) { return a.t < b.t; });
  for (const Ref& r : ref) {
    if (r.label >= 0) expected.push_back(r.label);
  }
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(e.stats().cancelled_skipped, cancellable.size());
}

TEST(EngineDeterminism, IdenticalSeedGivesIdenticalRunTwice) {
  auto run_once = [](std::uint64_t seed) {
    support::Random rng(seed);
    Engine e;
    std::vector<int> order;
    // Self-rescheduling processes: each event may schedule 0-2 more, with
    // times drawn from the per-run stream.
    int budget = 20000;
    int next_label = 0;
    std::function<void()> tick = [&] {
      order.push_back(next_label++);
      const int kids = static_cast<int>(rng.uniform_int(0, 2));
      for (int k = 0; k < kids && budget > 0; ++k, --budget) {
        const auto dt = static_cast<SimTime>(rng.uniform_int(0, 10));
        e.schedule_after(dt, [&] { tick(); });
      }
    };
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(static_cast<SimTime>(rng.uniform_int(0, 100)),
                    [&] { tick(); });
    }
    e.run();
    return std::pair{order.size(), e.now()};
  };
  const auto a = run_once(42);
  const auto b = run_once(42);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace polaris::des
