// End-to-end fault injection through the fast data path.
//
// Three properties pin the tentpole down:
//   1. A SimWorld with the fault machinery ARMED but no fault scheduled is
//      bit-identical to the seed golden run (final time + exported trace).
//      Arming only adds timers that are always cancelled before firing, and
//      cancelled timers shift nothing.
//   2. A seeded node crash mid-exchange surfaces as error statuses on the
//      survivors: a rendezvous send to the dead rank fails after exactly
//      max_retries backoffs, and a posted receive from it times out with
//      kPeerDown instead of hanging the simulation.
//   3. FailureTimeline::until() and ::next() describe the same stream.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "polaris/fault/failure.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/obs/clock.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/workload/apps.hpp"

namespace polaris {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Same scenario and constants as tests/workload/golden_trace_test.cpp
// (halo2d, 16 ranks, myrinet2000, 3 iterations, seed commit e7b97ed).
// Engine event counts are deliberately NOT compared: armed-then-cancelled
// receive timers add scheduled events without moving a single span.
constexpr des::SimTime kGoldenFinalTime = 4076382;
constexpr std::uint64_t kGoldenTraceHash = 10557979453123585435ULL;
constexpr std::size_t kGoldenTraceBytes = 103794;

TEST(FaultRecovery, ArmedButEmptyInjectorKeepsGoldenTrace) {
  workload::Halo2DConfig cfg;
  cfg.iterations = 3;
  workload::AppResult res;
  simrt::SimWorld world(16, fabric::fabrics::myrinet2000());
  fault::Injector injector(world.engine(), world.network());
  simrt::RetryPolicy policy;
  policy.recv_timeout = 1.0;  // armed on every queued receive, never fires
  world.enable_faults(injector, policy);
  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);
  world.launch(workload::make_halo2d(cfg, 16, &res));
  world.run();
  std::ostringstream trace;
  tracer.write_json(trace);
  EXPECT_EQ(world.engine().now(), kGoldenFinalTime);
  EXPECT_EQ(trace.str().size(), kGoldenTraceBytes);
  EXPECT_EQ(fnv1a(trace.str()), kGoldenTraceHash);
  EXPECT_EQ(world.msg_retries(), 0u);
  EXPECT_EQ(world.msg_drops(), 0u);
  EXPECT_EQ(world.recv_timeouts(), 0u);
}

TEST(FaultRecovery, NodeCrashMidExchangeSurfacesOnSurvivors) {
  simrt::SimWorld world(4, fabric::fabrics::myrinet2000());
  fault::Injector injector(world.engine(), world.network());
  simrt::RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff = 0.01;
  policy.backoff_factor = 2.0;
  policy.recv_timeout = 0.05;
  world.enable_faults(injector, policy);
  injector.schedule_node_crash(/*at=*/0.005, /*node=*/1);  // permanent

  simrt::SimStatus send_status = simrt::SimStatus::kOk;
  double send_elapsed = -1.0;
  simrt::SimRecvStatus recv_status;
  double recv_elapsed = -1.0;

  world.launch([&](simrt::SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      // Let the crash land first, then talk to the corpse.  1 MiB forces
      // rendezvous: the RTS is refused at inject, retried with the
      // configured backoffs, then the send fails.
      co_await c.sleep(0.01);
      const double t0 = c.now();
      send_status = co_await c.send(1, /*tag=*/7, 1 << 20);
      send_elapsed = c.now() - t0;
      // An eager send to the dead rank still "completes" (buffered
      // semantics); its wire chain retries and drops in the background.
      co_await c.send(1, /*tag=*/8, 64);
    } else if (c.rank() == 2) {
      // A receive from the dead rank must fail, not hang.
      const double t0 = c.now();
      simrt::SimRequest r = c.irecv(1, /*tag=*/9);
      recv_status = co_await c.wait(r);
      recv_elapsed = c.now() - t0;
    }
    co_return;
  });
  world.run();

  EXPECT_EQ(send_status, simrt::SimStatus::kPeerDown);
  // Refused injections cost no wire time, so the failed send's latency is
  // the backoff ladder: 0.01 + 0.02 + 0.04.
  EXPECT_NEAR(send_elapsed, 0.07, 0.01);
  EXPECT_EQ(recv_status.status, simrt::SimStatus::kPeerDown);
  EXPECT_FALSE(recv_status.ok());
  EXPECT_NEAR(recv_elapsed, policy.recv_timeout, 0.01);

  // Exactly two failed messages: 3 retries each for the rendezvous RTS and
  // the eager wire leg, one timed-out receive.
  EXPECT_EQ(world.msg_retries(), 6u);
  EXPECT_EQ(world.msg_drops(), 2u);
  EXPECT_EQ(world.recv_timeouts(), 1u);
  EXPECT_EQ(injector.crashes(), 1u);
  EXPECT_EQ(injector.downed_at(1), 0.005);
  EXPECT_FALSE(injector.node_up(1));
}

TEST(FaultRecovery, RecoveredPeerCompletesAfterRetries) {
  // A transient outage: the node comes back before the retry budget runs
  // out, so the same exchange completes with kOk — recovery, not failure.
  simrt::SimWorld world(4, fabric::fabrics::myrinet2000());
  fault::Injector injector(world.engine(), world.network());
  simrt::RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff = 0.01;
  policy.backoff_factor = 2.0;
  world.enable_faults(injector, policy);
  injector.schedule_node_crash(/*at=*/0.005, /*node=*/1,
                               /*repair_after=*/0.02);

  simrt::SimStatus send_status = simrt::SimStatus::kPeerDown;
  simrt::SimRecvStatus recv_status;
  world.launch([&](simrt::SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.sleep(0.01);  // inside the outage window
      send_status = co_await c.send(1, /*tag=*/7, 1 << 20);
    } else if (c.rank() == 1) {
      recv_status = co_await c.recv(0, /*tag=*/7);
    }
    co_return;
  });
  world.run();

  EXPECT_EQ(send_status, simrt::SimStatus::kOk);
  EXPECT_EQ(recv_status.status, simrt::SimStatus::kOk);
  EXPECT_EQ(recv_status.bytes, 1u << 20);
  EXPECT_GE(world.msg_retries(), 1u);
  EXPECT_EQ(world.msg_drops(), 0u);
  EXPECT_TRUE(injector.node_up(1));
}

TEST(FaultTimeline, UntilAndNextDescribeTheSameStream) {
  const fault::FailureModel model = fault::FailureModel::exponential(3600.0);
  fault::FailureTimeline a(model, 64, /*seed=*/42);
  fault::FailureTimeline b(model, 64, /*seed=*/42);

  // Drain `a` through until() with increasing horizons, `b` through
  // next(); the merged streams must agree event for event.
  std::vector<fault::FailureTimeline::Event> from_until;
  for (double horizon = 500.0; from_until.size() < 100;
       horizon += 500.0) {
    for (const auto& ev : a.until(horizon)) from_until.push_back(ev);
  }
  for (const auto& ev : from_until) {
    const fault::FailureTimeline::Event n = b.next();
    EXPECT_DOUBLE_EQ(n.time, ev.time);
    EXPECT_EQ(n.node, ev.node);
  }
}

}  // namespace
}  // namespace polaris
