// Cross-module integration: the independent timing/correctness paths must
// agree with each other.
#include <gtest/gtest.h>

#include <vector>

#include "polaris/coll/cost.hpp"
#include "polaris/coll/local_exec.hpp"
#include "polaris/fault/checkpoint.hpp"
#include "polaris/hw/tech.hpp"
#include "polaris/msg/protocol.hpp"
#include "polaris/rt/runtime.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/workload/apps.hpp"

namespace polaris {
namespace {

using fabric::fabrics::infiniband_4x;
using fabric::fabrics::myrinet2000;

TEST(CrossModel, LogGpPredictionTracksSimulation) {
  // The closed-form LogGP executor and the packet-level simulation are
  // independent implementations; they should agree within a small factor
  // on an uncongested crossbar.
  const std::size_t p = 8;
  for (coll::Algorithm a :
       coll::algorithms_for(coll::Collective::kAllreduce, p)) {
    const auto schedule = coll::allreduce(p, 1024, a);

    simrt::SimWorld world(p, infiniband_4x());
    world.launch([&](simrt::SimComm& c) -> des::Task<void> {
      co_await c.run_schedule(schedule, 8);
    });
    const double sim = world.run();
    const double predicted =
        coll::predicted_seconds(schedule, world.loggp(), 8);
    EXPECT_GT(sim / predicted, 0.4) << coll::to_string(a);
    EXPECT_LT(sim / predicted, 3.0) << coll::to_string(a);
  }
}

TEST(CrossModel, ProtocolCostModelTracksSimulatedOneWay) {
  for (const char* name : {"gig-ethernet", "myrinet-2000", "infiniband-4x"}) {
    const auto params = fabric::fabrics::by_name(name);
    for (std::uint64_t bytes : {64ull, 65536ull, 1048576ull}) {
      simrt::SimWorld world(2, params);
      double t_recv = -1;
      world.launch([&](simrt::SimComm& c) -> des::Task<void> {
        if (c.rank() == 0) {
          co_await c.send(1, 0, bytes);
        } else {
          co_await c.recv(0, 0);
          t_recv = c.now();
        }
      });
      world.run();
      const auto proto = msg::choose_protocol(params, bytes);
      const double model =
          msg::cost_model(params, proto, bytes, /*switch_hops=*/1).total();
      EXPECT_GT(t_recv / model, 0.5) << name << " " << bytes;
      EXPECT_LT(t_recv / model, 2.0) << name << " " << bytes;
    }
  }
}

TEST(CrossModel, RealRuntimeMatchesLocalExecutorResults) {
  // The threaded transport and the in-memory oracle execute the same
  // schedule; the numerical results must be identical.
  constexpr std::size_t kRanks = 4;
  const auto schedule = coll::allreduce(kRanks, 100, coll::Algorithm::kRing);

  std::vector<std::vector<double>> oracle(kRanks,
                                          std::vector<double>(100));
  for (std::size_t r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < 100; ++i) {
      oracle[r][i] = static_cast<double>(r * 7 + i);
    }
  }
  auto inputs = oracle;
  coll::execute_locally(schedule, oracle, coll::ReduceOp::kSum);

  rt::ShmWorld world(kRanks);
  std::array<std::vector<double>, kRanks> rt_out;
  world.run([&](rt::Communicator& c) {
    std::vector<double> buf = inputs[static_cast<std::size_t>(c.rank())];
    c.run_schedule(schedule, buf, coll::ReduceOp::kSum);
    rt_out[static_cast<std::size_t>(c.rank())] = buf;
  });

  for (std::size_t r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < 100; ++i) {
      ASSERT_DOUBLE_EQ(rt_out[r][i], oracle[r][i]) << r << "," << i;
    }
  }
}

TEST(CrossModel, FutureFabricSpeedsUpApplications) {
  // Drive a FabricParams from the technology model's NIC curves: the same
  // CG run on the projected 2008 commodity fabric must beat 2002.
  hw::TechnologyModel tech;
  auto fabric_at = [&](double year) {
    auto p = fabric::fabrics::gig_ethernet();
    const auto t0 = tech.at(2002.0);
    const auto t = tech.at(year);
    const double bw_scale = t.nic_bw_bytes / t0.nic_bw_bytes;
    const double lat_scale = t.nic_latency_s / t0.nic_latency_s;
    p.link_bw *= bw_scale;
    p.o_send *= lat_scale;
    p.o_recv *= lat_scale;
    p.gap *= lat_scale;
    p.switch_latency *= lat_scale;
    return p;
  };
  workload::CgConfig cfg;
  cfg.iterations = 10;
  workload::AppResult r2002, r2008;
  {
    simrt::SimWorld w(16, fabric_at(2002.0));
    w.launch(workload::make_cg(cfg, 16, &r2002));
    w.run();
  }
  {
    simrt::SimWorld w(16, fabric_at(2008.0));
    w.launch(workload::make_cg(cfg, 16, &r2008));
    w.run();
  }
  EXPECT_LT(r2008.elapsed, r2002.elapsed);
  EXPECT_LT(r2008.comm_fraction, r2002.comm_fraction);
}

TEST(CrossModel, PimNodeShiftsAppBottleneck) {
  // The same memory-bound stencil on a PIM node spends far less time in
  // compute, so total time drops even on the same fabric.
  workload::Halo2DConfig cfg;
  cfg.iterations = 5;
  cfg.nx = cfg.ny = 512;
  hw::NodeDesigner designer;
  workload::AppResult conv, pim;
  {
    simrt::SimWorld w(4, infiniband_4x(), nullptr,
                      designer.design(hw::NodeArch::kConventional, 2002.0));
    w.launch(workload::make_halo2d(cfg, 4, &conv));
    w.run();
  }
  {
    simrt::SimWorld w(4, infiniband_4x(), nullptr,
                      designer.design(hw::NodeArch::kPim, 2002.0));
    w.launch(workload::make_halo2d(cfg, 4, &pim));
    w.run();
  }
  EXPECT_LT(pim.elapsed, conv.elapsed);
}

TEST(CrossModel, CheckpointEfficiencyConsistentWithSchedulerTimescales) {
  // A 1024-node machine with 5-year node MTBF fails every ~43 h; a day-long
  // job still completes near-optimally with Daly checkpointing.
  const auto out = fault::wall_time_at_scale(
      /*work=*/86400.0, /*node_mtbf=*/5.0 * 365 * 86400.0, 1024,
      /*checkpoint_cost=*/300.0, /*restart_cost=*/120.0);
  EXPECT_GT(out.system_mtbf_s, 86400.0);
  EXPECT_LT(out.daly_wall, 1.2 * 86400.0);
}

}  // namespace
}  // namespace polaris
