#include "polaris/rt/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

namespace polaris::rt {
namespace {

std::span<const std::byte> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

TEST(ShmWorld, PingPongDeliversPayload) {
  ShmWorld world(2);
  std::string got;
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      const std::string msg = "hello from rank 0";
      c.send(1, 7, bytes_of(msg));
    } else {
      std::vector<std::byte> buf(64);
      const RecvStatus st = c.recv(0, 7, buf);
      EXPECT_EQ(st.src, 0);
      EXPECT_EQ(st.tag, 7);
      got.assign(reinterpret_cast<const char*>(buf.data()), st.bytes);
    }
  });
  EXPECT_EQ(got, "hello from rank 0");
}

TEST(ShmWorld, RendezvousPathForLargeMessages) {
  ShmOptions opts;
  opts.eager_threshold = 256;
  ShmWorld world(2, opts);
  const std::size_t n = 1 << 20;
  std::vector<std::byte> received(n);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      std::vector<std::byte> data(n);
      for (std::size_t i = 0; i < n; ++i) data[i] = std::byte(i & 0xff);
      c.send(1, 0, data);
      EXPECT_EQ(c.rendezvous_sends(), 1u);
      EXPECT_EQ(c.eager_sends(), 0u);
    } else {
      c.recv(0, 0, received);
    }
  });
  for (std::size_t i = 0; i < n; i += 4097) {
    ASSERT_EQ(received[i], std::byte(i & 0xff)) << i;
  }
}

TEST(ShmWorld, EagerPathForSmallMessages) {
  ShmWorld world(2);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      const std::string msg = "small";
      c.send(1, 0, bytes_of(msg));
      EXPECT_EQ(c.eager_sends(), 1u);
      EXPECT_EQ(c.rendezvous_sends(), 0u);
    } else {
      std::vector<std::byte> buf(16);
      c.recv(0, 0, buf);
    }
  });
}

TEST(ShmWorld, UnexpectedMessagesQueueUntilRecv) {
  ShmWorld world(2);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) {
        c.send(1, i, {reinterpret_cast<const std::byte*>(&i), sizeof(i)});
      }
    } else {
      // Post receives in reverse tag order: all arrivals are unexpected
      // for a while; matching must still be by tag.
      for (int want = 9; want >= 0; --want) {
        int v = -1;
        c.recv(0, want, {reinterpret_cast<std::byte*>(&v), sizeof(v)});
        EXPECT_EQ(v, want);
      }
      EXPECT_GT(c.match_stats().matched_unexpected, 0u);
    }
  });
}

TEST(ShmWorld, WildcardRecvGetsAnySource) {
  ShmWorld world(4);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      int sum = 0;
      for (int i = 1; i < 4; ++i) {
        int v = 0;
        const auto st = c.recv(msg::kAnySource, 5,
                               {reinterpret_cast<std::byte*>(&v), sizeof(v)});
        EXPECT_GE(st.src, 1);
        sum += v;
      }
      EXPECT_EQ(sum, 1 + 2 + 3);
    } else {
      const int v = c.rank();
      c.send(0, 5, {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
    }
  });
}

TEST(ShmWorld, SelfSendWorks) {
  ShmWorld world(1);
  world.run([&](Communicator& c) {
    const std::string msg = "loopback";
    c.send(0, 3, bytes_of(msg));
    std::vector<std::byte> buf(32);
    const auto st = c.recv(0, 3, buf);
    EXPECT_EQ(st.bytes, msg.size());
  });
}

TEST(ShmWorld, NonOvertakingSameTagSameSource) {
  ShmWorld world(2);
  world.run([&](Communicator& c) {
    constexpr int kN = 1000;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        c.send(1, 0, {reinterpret_cast<const std::byte*>(&i), sizeof(i)});
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        c.recv(0, 0, {reinterpret_cast<std::byte*>(&v), sizeof(v)});
        ASSERT_EQ(v, i);
      }
    }
  });
}

TEST(ShmWorld, IrecvTestEventuallyCompletes) {
  ShmWorld world(2);
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      int v = 42;
      c.send(1, 0, {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
    } else {
      int v = 0;
      Request r = c.irecv(0, 0, {reinterpret_cast<std::byte*>(&v), sizeof(v)});
      while (!c.test(r)) {
      }
      const auto st = c.wait(r);
      EXPECT_EQ(st.bytes, sizeof(int));
      EXPECT_EQ(v, 42);
    }
  });
}

TEST(ShmWorld, ActiveMessagesDispatchAtDestination) {
  ShmWorld world(2);
  std::atomic<int> total{0};
  msg::AmHandlerId id = 0;
  for (int r = 0; r < 2; ++r) {
    id = world.comm(r).register_am(
        [&total](int src, std::span<const std::byte> p) {
          int v;
          std::memcpy(&v, p.data(), sizeof(v));
          total += v + src;
        });
  }
  world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      const int v = 100;
      c.am_send(1, id, {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
    } else {
      while (c.am_dispatched() == 0) c.progress();
    }
  });
  EXPECT_EQ(total.load(), 100);  // src 0 contributes 0
}

TEST(ShmWorld, ExceptionInOneRankPropagatesAndUnblocksOthers) {
  ShmWorld world(2);
  EXPECT_THROW(world.run([&](Communicator& c) {
    if (c.rank() == 0) {
      throw std::logic_error("rank 0 exploded");
    } else {
      std::vector<std::byte> buf(8);
      c.recv(0, 0, buf);  // would block forever without abort propagation
    }
  }),
               std::exception);
}

TEST(ShmWorld, ManyRanksRandomizedExchange) {
  constexpr int kRanks = 6;
  ShmWorld world(kRanks);
  std::array<std::array<int, kRanks>, kRanks> received{};
  world.run([&](Communicator& c) {
    // Everyone sends rank*100+dst to every other rank, then receives.
    for (int d = 0; d < kRanks; ++d) {
      if (d == c.rank()) continue;
      const int v = c.rank() * 100 + d;
      c.send(d, 9, {reinterpret_cast<const std::byte*>(&v), sizeof(v)});
    }
    for (int s = 0; s < kRanks - 1; ++s) {
      int v = -1;
      const auto st = c.recv(msg::kAnySource, 9,
                             {reinterpret_cast<std::byte*>(&v), sizeof(v)});
      received[c.rank()][st.src] = v;
    }
  });
  for (int r = 0; r < kRanks; ++r) {
    for (int s = 0; s < kRanks; ++s) {
      if (r == s) continue;
      EXPECT_EQ(received[r][s], s * 100 + r);
    }
  }
}

TEST(ShmWorld, WildcardStressInterleavedTagsAndSources) {
  // Drives the bucketed matcher hard on the real runtime: a sink rank mixes
  // exact, any-source, any-tag and fully wildcard receives against a flood
  // of interleaved tags from several senders.  Per-(source,tag) payload
  // order must be preserved (MPI non-overtaking) no matter which receive
  // shape consumed each message.
  constexpr int kRanks = 4;
  constexpr int kPerTag = 50;
  constexpr int kTags = 3;
  ShmWorld world(kRanks);
  // remaining[src][tag]: messages of that stream not yet received.  The
  // sink aims each receive shape at the fullest stream, so every posted
  // receive is guaranteed a matching message no matter what earlier
  // wildcards consumed (no stranding, hence no deadlock by construction).
  std::array<std::array<int, kTags>, kRanks> remaining{};
  world.run([&](Communicator& c) {
    if (c.rank() != 0) {
      for (int i = 0; i < kPerTag; ++i) {
        for (int tag = 0; tag < kTags; ++tag) {
          const int v = i;
          c.send(0, tag, {reinterpret_cast<const std::byte*>(&v),
                          sizeof(v)});
        }
      }
      return;
    }
    for (auto& per_src : remaining) per_src.fill(kPerTag);
    remaining[0].fill(0);  // the sink sends nothing to itself
    const int total = (kRanks - 1) * kTags * kPerTag;
    for (int n = 0; n < total; ++n) {
      int bs = 1, bt = 0;
      for (int s = 1; s < kRanks; ++s) {
        for (int t = 0; t < kTags; ++t) {
          if (remaining[s][t] > remaining[bs][bt]) {
            bs = s;
            bt = t;
          }
        }
      }
      int src = bs, tag = bt;
      switch (n % 4) {
        case 0: break;                       // exact
        case 1: src = msg::kAnySource; break;
        case 2: tag = msg::kAnyTag; break;
        default:                             // fully wildcard
          src = msg::kAnySource;
          tag = msg::kAnyTag;
          break;
      }
      int v = -1;
      const auto st =
          c.recv(src, tag, {reinterpret_cast<std::byte*>(&v), sizeof(v)});
      ASSERT_GE(st.src, 1);
      ASSERT_LT(st.src, kRanks);
      ASSERT_GE(st.tag, 0);
      ASSERT_LT(st.tag, kTags);
      // MPI non-overtaking: payloads of one stream arrive in send order.
      ASSERT_EQ(v, kPerTag - remaining[st.src][st.tag])
          << "src " << st.src << " tag " << st.tag;
      --remaining[st.src][st.tag];
    }
    // Every receive matched exactly one message, through one path or the
    // other (which path depends on thread timing).
    EXPECT_EQ(c.match_stats().matched_posted +
                  c.match_stats().matched_unexpected,
              static_cast<std::uint64_t>(total));
  });
  for (int s = 1; s < kRanks; ++s) {
    for (int t = 0; t < kTags; ++t) {
      EXPECT_EQ(remaining[s][t], 0);
    }
  }
}

TEST(ShmWorld, RingBackpressureDoesNotDeadlock) {
  ShmOptions opts;
  opts.ring_capacity = 4;  // tiny rings force backpressure
  ShmWorld world(2, opts);
  world.run([&](Communicator& c) {
    constexpr int kN = 500;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        c.send(1, 0, {reinterpret_cast<const std::byte*>(&i), sizeof(i)});
      }
      // And receive the reverse flood.
      for (int i = 0; i < kN; ++i) {
        int v;
        c.recv(1, 1, {reinterpret_cast<std::byte*>(&v), sizeof(v)});
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        c.send(0, 1, {reinterpret_cast<const std::byte*>(&i), sizeof(i)});
      }
      for (int i = 0; i < kN; ++i) {
        int v;
        c.recv(0, 0, {reinterpret_cast<std::byte*>(&v), sizeof(v)});
      }
    }
  });
}

}  // namespace
}  // namespace polaris::rt
