#include "polaris/rt/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::rt {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  int v = 0;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> ring(4);  // 3 usable slots
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));
  int v;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_TRUE(ring.try_push(4));  // space again
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> ring(4);
  int v;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, round);
  }
}

TEST(SpscRing, CapacityMustBePowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(3), support::ContractViolation);
  EXPECT_THROW(SpscRing<int>(0), support::ContractViolation);
  EXPECT_THROW(SpscRing<int>(1), support::ContractViolation);
}

TEST(SpscRing, SizeApprox) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.size_approx(), 0u);
  ring.try_push(1);
  ring.try_push(2);
  EXPECT_EQ(ring.size_approx(), 2u);
}

TEST(SpscRing, MovePushTransfersOwnership) {
  SpscRing<std::unique_ptr<int>> ring(4);
  auto p = std::make_unique<int>(7);
  EXPECT_TRUE(ring.try_push(std::move(p)));
  EXPECT_EQ(p, nullptr);
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRing, TryEmplaceConstructsInPlace) {
  SpscRing<std::pair<int, int>> ring(4);
  EXPECT_TRUE(ring.try_emplace(1, 2));
  std::pair<int, int> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, (std::pair<int, int>{1, 2}));
}

TEST(SpscRing, BatchPushPopRoundTrips) {
  SpscRing<int> ring(16);  // 15 usable
  int src[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(ring.try_push_n(src, 10), 10u);
  EXPECT_EQ(ring.size_approx(), 10u);
  int dst[16] = {};
  EXPECT_EQ(ring.try_pop_n(dst, 16), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dst[i], i);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, BatchPushTruncatesWhenNearlyFull) {
  SpscRing<int> ring(8);  // 7 usable
  int src[10] = {};
  for (int i = 0; i < 10; ++i) src[i] = i;
  EXPECT_EQ(ring.try_push_n(src, 10), 7u);
  EXPECT_EQ(ring.try_push_n(src, 10), 0u);  // full
  int dst[10];
  EXPECT_EQ(ring.try_pop_n(dst, 3), 3u);
  EXPECT_EQ(dst[0], 0);
  EXPECT_EQ(dst[2], 2);
  EXPECT_EQ(ring.try_push_n(src, 10), 3u);  // space for exactly 3 again
}

TEST(SpscRing, BatchPopOnEmptyReturnsZero) {
  SpscRing<int> ring(8);
  int dst[4];
  EXPECT_EQ(ring.try_pop_n(dst, 4), 0u);
}

TEST(SpscRing, BatchOpsWrapAround) {
  SpscRing<int> ring(8);
  int src[5], dst[5];
  int next = 0, expect = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 5; ++i) src[i] = next++;
    ASSERT_EQ(ring.try_push_n(src, 5), 5u);
    ASSERT_EQ(ring.try_pop_n(dst, 5), 5u);
    for (int i = 0; i < 5; ++i) ASSERT_EQ(dst[i], expect++);
  }
}

TEST(SpscRing, CrossThreadBatchTransferPreservesOrderAndData) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    std::uint64_t batch[8];
    std::uint64_t next = 0;
    while (next < kCount) {
      const std::uint64_t n = std::min<std::uint64_t>(8, kCount - next);
      for (std::uint64_t i = 0; i < n; ++i) batch[i] = next + i;
      std::uint64_t pushed = 0;
      while (pushed < n) {
        const std::size_t k = ring.try_push_n(batch + pushed, n - pushed);
        if (k == 0) std::this_thread::yield();
        pushed += k;
      }
      next += n;
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t batch[16];
  while (expected < kCount) {
    const std::size_t k = ring.try_pop_n(batch, 16);
    if (k == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(batch[i], expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CrossThreadTransferPreservesOrderAndData) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t v;
  while (expected < kCount) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace polaris::rt
