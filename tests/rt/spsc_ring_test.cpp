#include "polaris/rt/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::rt {
namespace {

TEST(SpscRing, PushPopSingleThread) {
  SpscRing<int> ring(8);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  int v = 0;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(ring.try_pop(v));
}

TEST(SpscRing, FullRingRejectsPush) {
  SpscRing<int> ring(4);  // 3 usable slots
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_TRUE(ring.try_push(3));
  EXPECT_FALSE(ring.try_push(4));
  int v;
  EXPECT_TRUE(ring.try_pop(v));
  EXPECT_TRUE(ring.try_push(4));  // space again
}

TEST(SpscRing, WrapsAround) {
  SpscRing<int> ring(4);
  int v;
  for (int round = 0; round < 100; ++round) {
    EXPECT_TRUE(ring.try_push(round));
    EXPECT_TRUE(ring.try_pop(v));
    EXPECT_EQ(v, round);
  }
}

TEST(SpscRing, CapacityMustBePowerOfTwo) {
  EXPECT_THROW(SpscRing<int>(3), support::ContractViolation);
  EXPECT_THROW(SpscRing<int>(0), support::ContractViolation);
  EXPECT_THROW(SpscRing<int>(1), support::ContractViolation);
}

TEST(SpscRing, SizeApprox) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.size_approx(), 0u);
  ring.try_push(1);
  ring.try_push(2);
  EXPECT_EQ(ring.size_approx(), 2u);
}

TEST(SpscRing, CrossThreadTransferPreservesOrderAndData) {
  SpscRing<std::uint64_t> ring(64);
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t expected = 0;
  std::uint64_t v;
  while (expected < kCount) {
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace polaris::rt
