#include "polaris/rt/wait.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "polaris/rt/spsc_ring.hpp"

namespace polaris::rt {
namespace {

TEST(IdleBackoff, EscalatesToParkedSleeps) {
  IdleBackoff b;
  const std::uint32_t ladder = IdleBackoff::kSpinIters + IdleBackoff::kYieldIters;
  for (std::uint32_t i = 0; i < ladder; ++i) b.pause();
  EXPECT_EQ(b.parks(), 0u);  // still in the spin/yield tiers
  b.pause();
  b.pause();
  EXPECT_EQ(b.parks(), 2u);
}

TEST(IdleBackoff, ResetReturnsToTheSpinTier) {
  IdleBackoff b;
  for (std::uint32_t i = 0; i < 200; ++i) b.pause();
  const std::uint64_t parked = b.parks();
  EXPECT_GT(parked, 0u);
  b.reset();
  for (std::uint32_t i = 0; i < IdleBackoff::kSpinIters; ++i) b.pause();
  EXPECT_EQ(b.parks(), parked);  // no new parks after reset
}

TEST(SpinBarrier, SerialSectionRunsOncePerGeneration) {
  constexpr std::size_t kThreads = 4;
  constexpr int kGens = 50;
  SpinBarrier barrier(kThreads);
  int serial_runs = 0;  // written in the serial section only
  std::atomic<int> failures{0};

  auto body = [&] {
    for (int g = 1; g <= kGens; ++g) {
      barrier.arrive_and_wait([&] { ++serial_runs; });
      // Serial writes are visible to every participant after release.
      if (serial_runs != g) failures.fetch_add(1);
    }
  };
  std::vector<std::thread> pool;
  for (std::size_t i = 0; i + 1 < kThreads; ++i) pool.emplace_back(body);
  body();
  for (auto& t : pool) t.join();
  EXPECT_EQ(serial_runs, kGens);
  EXPECT_EQ(failures.load(), 0);
}

TEST(SpinBarrier, PublishesPreBarrierWritesToTheSerialSection) {
  constexpr std::size_t kThreads = 3;
  SpinBarrier barrier(kThreads);
  std::uint64_t slots[kThreads] = {};
  std::uint64_t total = 0;

  auto body = [&](std::size_t me) {
    slots[me] = me + 1;  // plain write, published by the barrier
    barrier.arrive_and_wait([&] {
      for (std::size_t i = 0; i < kThreads; ++i) total += slots[i];
    });
  };
  std::vector<std::thread> pool;
  for (std::size_t i = 0; i + 1 < kThreads; ++i) pool.emplace_back(body, i);
  body(kThreads - 1);
  for (auto& t : pool) t.join();
  EXPECT_EQ(total, 1u + 2u + 3u);
}

TEST(SpinBarrier, SingleParticipantRunsSerialInline) {
  SpinBarrier barrier(1);
  int runs = 0;
  for (int i = 0; i < 5; ++i) barrier.arrive_and_wait([&] { ++runs; });
  EXPECT_EQ(runs, 5);
  EXPECT_EQ(barrier.parks(), 0u);
}

TEST(SpscRing, DrainEmptiesInFifoOrder) {
  SpscRing<int> ring(128);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(ring.try_push(int{i}));
  std::vector<int> got;
  const std::size_t n = ring.drain([&](int&& v) { got.push_back(v); });
  EXPECT_EQ(n, 100u);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(got[i], i);
}

TEST(SpscRing, DrainOnEmptyRingReturnsZero) {
  SpscRing<int> ring(8);
  EXPECT_EQ(ring.drain([](int&&) { FAIL(); }), 0u);
}

TEST(SpscRing, PopWaitBlocksUntilTheProducerArrives) {
  SpscRing<int> ring(8);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    while (!ring.try_push(41)) {}
  });
  int v = 0;
  IdleBackoff backoff;
  EXPECT_TRUE(ring.pop_wait(v, backoff, [] { return false; }));
  EXPECT_EQ(v, 41);
  producer.join();
}

TEST(SpscRing, PopWaitHonorsStop) {
  SpscRing<int> ring(8);
  int v = 0;
  IdleBackoff backoff;
  int polls = 0;
  EXPECT_FALSE(ring.pop_wait(v, backoff, [&] { return ++polls > 3; }));
  EXPECT_GT(polls, 3);
}

}  // namespace
}  // namespace polaris::rt
