// Collectives executed for real over OS threads: the same schedules the
// local executor proved correct, now through the shared-memory transport.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "polaris/rt/runtime.hpp"

namespace polaris::rt {
namespace {

TEST(RtCollectives, BarrierCompletesAtManyRankCounts) {
  for (int p : {1, 2, 3, 8}) {
    ShmWorld world(p);
    std::atomic<int> through{0};
    world.run([&](Communicator& c) {
      c.barrier();
      ++through;
      c.barrier();
    });
    EXPECT_EQ(through.load(), p);
  }
}

TEST(RtCollectives, BroadcastFromEveryRoot) {
  constexpr int kRanks = 5;
  ShmWorld world(kRanks);
  for (int root = 0; root < kRanks; ++root) {
    std::array<std::vector<double>, kRanks> out;
    world.run([&](Communicator& c) {
      std::vector<double> buf(16, c.rank() == root ? 3.25 : -1.0);
      c.broadcast(buf, root);
      out[c.rank()] = buf;
    });
    for (int r = 0; r < kRanks; ++r) {
      for (double v : out[r]) EXPECT_DOUBLE_EQ(v, 3.25) << "root=" << root;
    }
  }
}

TEST(RtCollectives, AllreduceSumAcrossSizes) {
  for (int p : {2, 4, 7}) {
    for (std::size_t n : {1u, 64u, 5000u}) {
      ShmWorld world(p);
      std::vector<std::vector<double>> results(p);
      world.run([&](Communicator& c) {
        std::vector<double> buf(n);
        for (std::size_t i = 0; i < n; ++i) {
          buf[i] = static_cast<double>(c.rank() + 1) * (i + 1);
        }
        c.allreduce(buf, coll::ReduceOp::kSum);
        results[c.rank()] = buf;
      });
      const double ranksum = p * (p + 1) / 2.0;
      for (int r = 0; r < p; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_NEAR(results[r][i], ranksum * (i + 1), 1e-9)
              << "p=" << p << " n=" << n;
        }
      }
    }
  }
}

TEST(RtCollectives, AllreduceMax) {
  constexpr int kRanks = 4;
  ShmWorld world(kRanks);
  std::array<double, kRanks> results{};
  world.run([&](Communicator& c) {
    std::vector<double> buf{static_cast<double>(c.rank() * 10)};
    c.allreduce(buf, coll::ReduceOp::kMax);
    results[c.rank()] = buf[0];
  });
  for (double v : results) EXPECT_DOUBLE_EQ(v, 30.0);
}

TEST(RtCollectives, ReduceToNonZeroRoot) {
  constexpr int kRanks = 6;
  ShmWorld world(kRanks);
  double root_result = 0;
  world.run([&](Communicator& c) {
    std::vector<double> buf{1.0};
    c.reduce(buf, coll::ReduceOp::kSum, /*root=*/4);
    if (c.rank() == 4) root_result = buf[0];
  });
  EXPECT_DOUBLE_EQ(root_result, 6.0);
}

TEST(RtCollectives, AllgatherAssemblesAllBlocks) {
  constexpr int kRanks = 4;
  constexpr std::size_t kBlock = 3;
  ShmWorld world(kRanks);
  std::array<std::vector<double>, kRanks> results;
  world.run([&](Communicator& c) {
    std::vector<double> buf(kRanks * kBlock, -1.0);
    for (std::size_t i = 0; i < kBlock; ++i) {
      buf[c.rank() * kBlock + i] = c.rank() * 100.0 + i;
    }
    c.allgather(buf, kBlock);
    results[c.rank()] = buf;
  });
  for (int r = 0; r < kRanks; ++r) {
    for (int s = 0; s < kRanks; ++s) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        ASSERT_DOUBLE_EQ(results[r][s * kBlock + i], s * 100.0 + i);
      }
    }
  }
}

TEST(RtCollectives, AlltoallTransposesBlocks) {
  constexpr int kRanks = 4;
  constexpr std::size_t kBlock = 2;
  ShmWorld world(kRanks);
  std::array<std::vector<double>, kRanks> results;
  world.run([&](Communicator& c) {
    std::vector<double> in(kRanks * kBlock), out(kRanks * kBlock, -1.0);
    for (int d = 0; d < kRanks; ++d) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        in[d * kBlock + i] = c.rank() * 1000.0 + d * 10.0 + i;
      }
    }
    c.alltoall(in, out, kBlock);
    results[c.rank()] = out;
  });
  for (int r = 0; r < kRanks; ++r) {
    for (int s = 0; s < kRanks; ++s) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        ASSERT_DOUBLE_EQ(results[r][s * kBlock + i],
                         s * 1000.0 + r * 10.0 + i);
      }
    }
  }
}

TEST(RtCollectives, ExplicitScheduleRunsAllAlgorithms) {
  // Force each allreduce algorithm through the real transport.
  constexpr int kRanks = 8;
  for (coll::Algorithm a :
       coll::algorithms_for(coll::Collective::kAllreduce, kRanks)) {
    ShmWorld world(kRanks);
    std::array<double, kRanks> results{};
    const auto schedule = coll::allreduce(kRanks, 257, a);  // odd count
    world.run([&](Communicator& c) {
      std::vector<double> buf(257, 1.0);
      c.run_schedule(schedule, buf, coll::ReduceOp::kSum);
      results[c.rank()] = buf[128];
    });
    for (double v : results) {
      EXPECT_DOUBLE_EQ(v, kRanks) << coll::to_string(a);
    }
  }
}

TEST(RtCollectives, LargeAllreduceUsesRendezvous) {
  ShmOptions opts;
  opts.eager_threshold = 1024;
  ShmWorld world(4, opts);
  std::atomic<std::uint64_t> rdv{0};
  world.run([&](Communicator& c) {
    std::vector<double> buf(1 << 16, 1.0);  // 512 KiB
    c.allreduce(buf, coll::ReduceOp::kSum);
    EXPECT_NEAR(buf[0], 4.0, 1e-9);
    rdv += c.rendezvous_sends();
  });
  EXPECT_GT(rdv.load(), 0u);
}

TEST(RtCollectives, RepeatedCollectivesOnSameWorld) {
  ShmWorld world(4);
  for (int iter = 0; iter < 5; ++iter) {
    world.run([&](Communicator& c) {
      std::vector<double> buf{1.0};
      c.allreduce(buf, coll::ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(buf[0], 4.0);
    });
  }
}


TEST(RtCollectives, ReduceScatterLeavesOwnBlockReduced) {
  constexpr int kRanks = 4;
  constexpr std::size_t kBlock = 3;
  ShmWorld world(kRanks);
  std::array<std::vector<double>, kRanks> results;
  world.run([&](Communicator& c) {
    std::vector<double> buf(kRanks * kBlock);
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = static_cast<double>(c.rank() + 1) * (i + 1);
    }
    c.reduce_scatter(buf, coll::ReduceOp::kSum, kBlock);
    results[c.rank()] = buf;
  });
  const double ranksum = kRanks * (kRanks + 1) / 2.0;
  for (int r = 0; r < kRanks; ++r) {
    for (std::size_t i = 0; i < kBlock; ++i) {
      const std::size_t idx = r * kBlock + i;
      ASSERT_NEAR(results[r][idx], ranksum * (idx + 1), 1e-9) << r << i;
    }
  }
}

TEST(RtCollectives, ScanComputesInclusivePrefix) {
  constexpr int kRanks = 6;
  ShmWorld world(kRanks);
  std::array<double, kRanks> results{};
  world.run([&](Communicator& c) {
    std::vector<double> buf{static_cast<double>(c.rank() + 1)};
    c.scan(buf, coll::ReduceOp::kSum);
    results[c.rank()] = buf[0];
  });
  for (int r = 0; r < kRanks; ++r) {
    ASSERT_DOUBLE_EQ(results[r], (r + 1) * (r + 2) / 2.0) << r;
  }
}

TEST(RtCollectives, BruckAllgatherOverThreads) {
  constexpr int kRanks = 5;  // non-power-of-two: Bruck's home turf
  constexpr std::size_t kBlock = 2;
  ShmWorld world(kRanks);
  const auto schedule =
      coll::allgather(kRanks, kBlock, coll::Algorithm::kBruck);
  std::array<std::vector<double>, kRanks> results;
  world.run([&](Communicator& c) {
    std::vector<double> buf(kRanks * kBlock, -1.0);
    for (std::size_t i = 0; i < kBlock; ++i) {
      buf[c.rank() * kBlock + i] = c.rank() * 10.0 + i;
    }
    c.run_schedule(schedule, buf, coll::ReduceOp::kSum);
    results[c.rank()] = buf;
  });
  for (int r = 0; r < kRanks; ++r) {
    for (int s = 0; s < kRanks; ++s) {
      for (std::size_t i = 0; i < kBlock; ++i) {
        ASSERT_DOUBLE_EQ(results[r][s * kBlock + i], s * 10.0 + i);
      }
    }
  }
}

}  // namespace
}  // namespace polaris::rt
