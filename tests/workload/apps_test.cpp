#include "polaris/workload/apps.hpp"

#include <gtest/gtest.h>

namespace polaris::workload {
namespace {

using fabric::fabrics::gig_ethernet;
using fabric::fabrics::infiniband_4x;

TEST(ProcessGrid, NearSquareFactorization) {
  EXPECT_EQ(process_grid(1), (std::pair<std::size_t, std::size_t>{1, 1}));
  EXPECT_EQ(process_grid(4), (std::pair<std::size_t, std::size_t>{2, 2}));
  EXPECT_EQ(process_grid(12), (std::pair<std::size_t, std::size_t>{3, 4}));
  EXPECT_EQ(process_grid(16), (std::pair<std::size_t, std::size_t>{4, 4}));
  EXPECT_EQ(process_grid(7), (std::pair<std::size_t, std::size_t>{1, 7}));
}

TEST(PingPong, LatencyGrowsWithSize) {
  PingPongConfig cfg;
  cfg.sizes = {8, 4096, 1048576};
  PingPongResult res;
  simrt::SimWorld world(2, infiniband_4x());
  world.launch(make_pingpong(cfg, &res));
  world.run();
  ASSERT_EQ(res.half_rtt.size(), 3u);
  EXPECT_GT(res.half_rtt[0], 0.0);
  EXPECT_LT(res.half_rtt[0], res.half_rtt[1]);
  EXPECT_LT(res.half_rtt[1], res.half_rtt[2]);
}

TEST(PingPong, UserLevelBeatsKernelPath) {
  PingPongConfig cfg;
  cfg.sizes = {8};
  PingPongResult ib_res, eth_res;
  {
    simrt::SimWorld w(2, infiniband_4x());
    w.launch(make_pingpong(cfg, &ib_res));
    w.run();
  }
  {
    simrt::SimWorld w(2, gig_ethernet());
    w.launch(make_pingpong(cfg, &eth_res));
    w.run();
  }
  EXPECT_GT(eth_res.half_rtt[0] / ib_res.half_rtt[0], 8.0);
}

TEST(Halo2D, CompletesOnVariousRankCounts) {
  for (std::size_t p : {1u, 4u, 9u, 16u}) {
    Halo2DConfig cfg;
    cfg.iterations = 3;
    AppResult res;
    simrt::SimWorld world(p, infiniband_4x());
    world.launch(make_halo2d(cfg, p, &res));
    world.run();
    EXPECT_GT(res.elapsed, 0.0) << p;
    EXPECT_GE(res.comm_fraction, 0.0);
    EXPECT_LE(res.comm_fraction, 1.0);
  }
}

TEST(Halo2D, WeakScalingHoldsOnFastFabric) {
  // Same per-rank grid: time should grow only mildly from 4 to 16 ranks.
  Halo2DConfig cfg;
  cfg.iterations = 5;
  AppResult r4, r16;
  {
    simrt::SimWorld w(4, infiniband_4x());
    w.launch(make_halo2d(cfg, 4, &r4));
    w.run();
  }
  {
    simrt::SimWorld w(16, infiniband_4x());
    w.launch(make_halo2d(cfg, 16, &r16));
    w.run();
  }
  EXPECT_LT(r16.elapsed, 1.5 * r4.elapsed);
}

TEST(Cg, CommunicationFractionGrowsWithScaleOnSlowFabric) {
  CgConfig cfg;
  cfg.iterations = 10;
  AppResult r2, r32;
  {
    simrt::SimWorld w(2, gig_ethernet());
    w.launch(make_cg(cfg, 2, &r2));
    w.run();
  }
  {
    simrt::SimWorld w(32, gig_ethernet());
    w.launch(make_cg(cfg, 32, &r32));
    w.run();
  }
  EXPECT_GT(r32.comm_fraction, r2.comm_fraction);
}

TEST(Cg, FastFabricReducesCommFraction) {
  CgConfig cfg;
  cfg.iterations = 10;
  AppResult eth, ib;
  {
    simrt::SimWorld w(16, gig_ethernet());
    w.launch(make_cg(cfg, 16, &eth));
    w.run();
  }
  {
    simrt::SimWorld w(16, infiniband_4x());
    w.launch(make_cg(cfg, 16, &ib));
    w.run();
  }
  EXPECT_LT(ib.comm_fraction, eth.comm_fraction);
  EXPECT_LT(ib.elapsed, eth.elapsed);
}

TEST(Ep, NearPerfectScaling) {
  EpConfig cfg;
  AppResult r1, r32;
  {
    simrt::SimWorld w(2, gig_ethernet());
    w.launch(make_ep(cfg, &r1));
    w.run();
  }
  {
    simrt::SimWorld w(32, gig_ethernet());
    w.launch(make_ep(cfg, &r32));
    w.run();
  }
  // Same per-rank work: elapsed nearly equal, tiny comm fraction.
  EXPECT_NEAR(r32.elapsed, r1.elapsed, 0.1 * r1.elapsed);
  EXPECT_LT(r32.comm_fraction, 0.05);
}


TEST(ProcessGrid3, CubicFactorization) {
  EXPECT_EQ(process_grid3(8), (std::tuple<std::size_t, std::size_t,
                                          std::size_t>{2, 2, 2}));
  EXPECT_EQ(process_grid3(27), (std::tuple<std::size_t, std::size_t,
                                           std::size_t>{3, 3, 3}));
  EXPECT_EQ(process_grid3(1), (std::tuple<std::size_t, std::size_t,
                                          std::size_t>{1, 1, 1}));
  // Product always equals ranks.
  for (std::size_t p : {2u, 6u, 12u, 17u, 64u}) {
    const auto [x, y, z] = process_grid3(p);
    EXPECT_EQ(x * y * z, p) << p;
  }
}

TEST(Halo3D, CompletesAndWeakScales) {
  workload::Halo3DConfig cfg;
  cfg.iterations = 3;
  AppResult r8, r27;
  {
    simrt::SimWorld w(8, infiniband_4x());
    w.launch(make_halo3d(cfg, 8, &r8));
    w.run();
  }
  {
    simrt::SimWorld w(27, infiniband_4x());
    w.launch(make_halo3d(cfg, 27, &r27));
    w.run();
  }
  EXPECT_GT(r8.elapsed, 0.0);
  EXPECT_LT(r27.elapsed, 1.6 * r8.elapsed);
}

TEST(Halo3D, MapsOntoTorus3D) {
  workload::Halo3DConfig cfg;
  cfg.iterations = 3;
  AppResult res;
  simrt::SimWorld w(27, infiniband_4x(),
                    std::make_unique<fabric::Torus3D>(3, 3, 3));
  w.launch(make_halo3d(cfg, 27, &res));
  w.run();
  EXPECT_GT(res.elapsed, 0.0);
  EXPECT_LE(res.comm_fraction, 1.0);
}

TEST(Incast, DownlinkSerializesTheFanIn) {
  // N-to-1: rank 0's downlink is the bottleneck, so time scales ~linearly
  // with sender count.
  workload::IncastConfig cfg;
  cfg.rounds = 2;
  AppResult r4, r16;
  {
    simrt::SimWorld w(4, infiniband_4x());
    w.launch(make_incast(cfg, &r4));
    w.run();
  }
  {
    simrt::SimWorld w(16, infiniband_4x());
    w.launch(make_incast(cfg, &r16));
    w.run();
  }
  EXPECT_GT(r16.elapsed, 3.0 * r4.elapsed);
}

}  // namespace
}  // namespace polaris::workload
