// Golden-trace regression for the event-queue replacement.
//
// The golden numbers below were captured by running this exact scenario on
// the seed engine (std::priority_queue + unordered_set cancellation) before
// the pooled 4-ary-heap queue landed.  Both queues order events by the same
// strict total order (time, then schedule sequence), so the full event
// interleaving — and therefore every span in the exported trace — must be
// bit-identical.  A hash mismatch here means the replacement changed
// simulation behaviour, not just its speed.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "polaris/obs/clock.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/workload/apps.hpp"

namespace polaris::workload {
namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

struct GoldenRun {
  des::SimTime final_time = 0;
  std::uint64_t executed = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t trace_hash = 0;
  std::size_t trace_bytes = 0;
};

GoldenRun run_halo16(bool explicit_oblivious = false) {
  Halo2DConfig cfg;
  cfg.iterations = 3;
  AppResult res;
  simrt::SimWorld world(16, fabric::fabrics::myrinet2000());
  if (explicit_oblivious) {
    // Redundant with the default, deliberately: this run proves that a
    // build carrying the adaptive-routing machinery produces the seed
    // trace when the mode is (explicitly) off.
    world.network().set_routing(fabric::RoutingMode::kOblivious);
  }
  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);
  world.launch(make_halo2d(cfg, 16, &res));
  world.run();
  std::ostringstream trace;
  tracer.write_json(trace);
  const des::EngineStats stats = world.engine().stats();
  GoldenRun out;
  out.final_time = world.engine().now();
  out.executed = stats.executed;
  out.scheduled = stats.scheduled;
  out.trace_hash = fnv1a(trace.str());
  out.trace_bytes = trace.str().size();
  return out;
}

// Captured on halo2d, 16 ranks, myrinet2000, 3 iterations.  The final
// time, trace hash, and trace byte count are UNCHANGED from the seed
// engine (commit e7b97ed): the two-tier fabric data path produces the
// same spans at the same simulated nanoseconds.  Only the engine event
// *structure* changed — analytic flights replace per-hop packet events
// (executed 2013 -> 1315), and scheduled > executed because a flight
// whose path a later message crosses has its closed-form completion
// event cancelled when it is demoted to walkers.
constexpr des::SimTime kGoldenFinalTime = 4076382;
constexpr std::uint64_t kGoldenExecuted = 1315;
constexpr std::uint64_t kGoldenScheduled = 1333;
constexpr std::uint64_t kGoldenTraceHash = 10557979453123585435ULL;
constexpr std::size_t kGoldenTraceBytes = 103794;

TEST(GoldenTrace, HaloExchangeMatchesSeedEngineEventOrder) {
  const GoldenRun run = run_halo16();
  EXPECT_EQ(run.final_time, kGoldenFinalTime);
  EXPECT_EQ(run.executed, kGoldenExecuted);
  EXPECT_EQ(run.scheduled, kGoldenScheduled);
  EXPECT_EQ(run.trace_bytes, kGoldenTraceBytes);
  EXPECT_EQ(run.trace_hash, kGoldenTraceHash);
}

// Adaptive routing is compiled into the network but DISABLED here: with
// RoutingMode::kOblivious every injection takes Topology::route() — choice
// 0 of the multipath set, bit-identical to the pre-multipath paths — so
// the golden constants must still hold exactly.  A mismatch means the
// adaptive machinery leaked into the oblivious data path.
TEST(GoldenTrace, AdaptiveRoutingDisabledReplaysSeedTraceExactly) {
  const GoldenRun run = run_halo16(/*explicit_oblivious=*/true);
  EXPECT_EQ(run.final_time, kGoldenFinalTime);
  EXPECT_EQ(run.executed, kGoldenExecuted);
  EXPECT_EQ(run.scheduled, kGoldenScheduled);
  EXPECT_EQ(run.trace_bytes, kGoldenTraceBytes);
  EXPECT_EQ(run.trace_hash, kGoldenTraceHash);
}

TEST(GoldenTrace, HaloExchangeIsRunToRunDeterministic) {
  const GoldenRun a = run_halo16();
  const GoldenRun b = run_halo16();
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
}

}  // namespace
}  // namespace polaris::workload
