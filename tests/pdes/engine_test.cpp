#include "polaris/pdes/engine.hpp"

#include <gtest/gtest.h>

#include "polaris/obs/metrics.hpp"
#include "polaris/support/check.hpp"

namespace polaris::pdes {
namespace {

Config halo_cfg(std::size_t w, std::size_t h, std::uint32_t iters) {
  Config cfg;
  cfg.workload.kind = AppKind::kHalo;
  cfg.workload.grid_w = w;
  cfg.workload.grid_h = h;
  cfg.workload.iters = iters;
  return cfg;
}

TEST(ShardedEngine, HaloCompletesEveryRank) {
  Config cfg = halo_cfg(8, 8, 4);
  const Result r = run(cfg);
  EXPECT_EQ(r.ranks_ok, 64u);
  EXPECT_EQ(r.ranks_failed, 0u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.windows, 0u);
  EXPECT_GT(r.sim_seconds, 0.0);
  // Every rank sends 4 neighbor messages per iteration.
  EXPECT_EQ(r.msgs_intra + r.msgs_cross, 64u * 4u * 4u);
  EXPECT_EQ(r.nacks, 0u);
}

TEST(ShardedEngine, SingleShardHasNoCrossTraffic) {
  Config cfg = halo_cfg(8, 8, 2);
  cfg.shards = 1;
  const Result r = run(cfg);
  EXPECT_EQ(r.msgs_cross, 0u);
  EXPECT_GT(r.msgs_intra, 0u);
}

TEST(ShardedEngine, MultiShardSplitsTraffic) {
  Config cfg = halo_cfg(8, 8, 2);
  cfg.shards = 4;
  const Result r = run(cfg);
  EXPECT_GT(r.msgs_cross, 0u);
  EXPECT_GT(r.msgs_intra, 0u);
  EXPECT_EQ(r.shards, 4u);
}

TEST(ShardedEngine, AllreduceCompletes) {
  Config cfg;
  cfg.workload.kind = AppKind::kAllreduce;
  cfg.workload.grid_w = 6;
  cfg.workload.grid_h = 5;  // 30 ranks: non-power-of-two hypercube
  cfg.workload.iters = 3;
  const Result r = run(cfg);
  EXPECT_EQ(r.ranks_ok, 30u);
  EXPECT_EQ(r.ranks_failed, 0u);
}

TEST(ShardedEngine, CgCompletes) {
  Config cfg;
  cfg.workload.kind = AppKind::kCg;
  cfg.workload.grid_w = 4;
  cfg.workload.grid_h = 4;
  cfg.workload.iters = 2;
  cfg.shards = 2;
  const Result r = run(cfg);
  EXPECT_EQ(r.ranks_ok, 16u);
  EXPECT_EQ(r.ranks_failed, 0u);
}

TEST(ShardedEngine, SingleRankFinishesInstantly) {
  Config cfg = halo_cfg(1, 1, 3);
  const Result r = run(cfg);
  // A 1x1 torus has no distinct neighbors: nothing to wait for.
  EXPECT_EQ(r.ranks_ok, 1u);
  EXPECT_EQ(r.msgs_intra + r.msgs_cross, 0u);
}

TEST(ShardedEngine, ZeroIterationsIsEmptyRun) {
  Config cfg = halo_cfg(4, 4, 0);
  const Result r = run(cfg);
  EXPECT_EQ(r.ranks_ok, 16u);
  EXPECT_DOUBLE_EQ(r.sim_seconds, 0.0);
  EXPECT_EQ(r.msgs_intra + r.msgs_cross, 0u);
}

TEST(ShardedEngine, SimTimeCoversComputeAndWire) {
  Config cfg = halo_cfg(4, 4, 2);
  cfg.workload.compute_s = 1e-3;
  const Result r = run(cfg);
  // Two iterations pay at least the inter-iteration compute block plus
  // message flights (compute is modeled between iterations, not before
  // the first).
  EXPECT_GT(r.sim_seconds, 1e-3);
  EXPECT_LT(r.sim_seconds, 1.0);
}

TEST(ShardedEngine, LookaheadMatchesPartition) {
  Config cfg = halo_cfg(8, 8, 1);
  cfg.shards = 4;
  ShardedEngine engine(cfg);
  EXPECT_DOUBLE_EQ(engine.partition().lookahead_s,
                   cfg.fabric.path_latency(2));
  const Result r = engine.run();
  EXPECT_DOUBLE_EQ(r.lookahead_s, engine.partition().lookahead_s);
}

TEST(ShardedEngine, RunIsOneShot) {
  Config cfg = halo_cfg(4, 4, 1);
  ShardedEngine engine(cfg);
  (void)engine.run();
  EXPECT_THROW((void)engine.run(), support::ContractViolation);
}

TEST(ShardedEngine, ExportMetricsPublishesCountersAndHistograms) {
  Config cfg = halo_cfg(8, 8, 2);
  cfg.shards = 2;
  const Result r = run(cfg);
  obs::MetricsRegistry reg;
  export_metrics(r, reg);
  EXPECT_EQ(reg.counter("pdes.events").value(), r.events);
  EXPECT_EQ(reg.counter("pdes.windows").value(), r.windows);
  EXPECT_EQ(reg.log_histogram("pdes.window_events").count(),
            r.window_events.count());
  EXPECT_GT(reg.log_histogram("pdes.window_ns").count(), 0u);
}

TEST(ShardedEngine, HistogramsSeeEveryWindow) {
  Config cfg = halo_cfg(8, 8, 3);
  cfg.shards = 2;
  const Result r = run(cfg);
  // One window_ns / window_events sample per shard per window.
  EXPECT_EQ(r.window_ns.count(), r.windows * 2);
  EXPECT_EQ(r.window_events.count(), r.windows * 2);
}

}  // namespace
}  // namespace polaris::pdes
