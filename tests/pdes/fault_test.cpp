// Fault injection through the sharded engine: a crashed node's NIC NACKs
// every later delivery, and the resulting XferStatus propagation must be
// shard-placement independent — the same ranks observe the same failure
// no matter where the shard boundaries fall.
#include <gtest/gtest.h>

#include "polaris/pdes/engine.hpp"

namespace polaris::pdes {
namespace {

Config faulty_halo(std::uint32_t crash_rank, double time_s) {
  Config cfg;
  cfg.workload.kind = AppKind::kHalo;
  cfg.workload.grid_w = 10;
  cfg.workload.grid_h = 10;
  cfg.workload.iters = 6;
  cfg.workload.jitter = true;
  cfg.faults.push_back({crash_rank, time_s});
  return cfg;
}

/// Crash time landing mid-run: 40% of the healthy completion time.
double mid_run_time(Config cfg) {
  cfg.faults.clear();
  cfg.shards = 1;
  return 0.4 * run(cfg).sim_seconds;
}

TEST(FaultInjection, CrashMidExchangeIsShardInvariant) {
  Config probe = faulty_halo(37, 0.0);
  const double t = mid_run_time(probe);
  ASSERT_GT(t, 0.0);
  Config cfg = faulty_halo(37, t);

  cfg.shards = 1;
  const Result base = run(cfg);
  EXPECT_EQ(base.ranks_failed, 1u);  // only the crashed rank
  EXPECT_EQ(base.ranks_ok, 99u);     // halo neighbors route around it
  EXPECT_GT(base.nacks, 0u);

  for (const std::size_t s : {2, 4, 8}) {
    Config c = cfg;
    c.shards = s;
    const Result got = run(c);
    SCOPED_TRACE(testing::Message() << "shards=" << s);
    EXPECT_EQ(base.golden_hash, got.golden_hash);
    EXPECT_DOUBLE_EQ(base.sim_seconds, got.sim_seconds);
    EXPECT_EQ(base.ranks_ok, got.ranks_ok);
    EXPECT_EQ(base.ranks_failed, got.ranks_failed);
    EXPECT_EQ(base.nacks, got.nacks);
  }
}

TEST(FaultInjection, NeighborsObserveTheCrashedRank) {
  Config cfg = faulty_halo(37, mid_run_time(faulty_halo(37, 0.0)));
  cfg.shards = 4;
  ShardedEngine engine(cfg);
  (void)engine.run();

  const RankState& dead = engine.rank_state(37);
  EXPECT_TRUE(dead.dead());
  EXPECT_FALSE(dead.finished());
  EXPECT_EQ(dead.status, kRankCrashed);

  // 10x10 torus neighbors of 37: W=36, E=38, N=27, S=47.
  for (const std::uint32_t n : {36u, 38u, 27u, 47u}) {
    SCOPED_TRACE(testing::Message() << "neighbor " << n);
    const RankState& nb = engine.rank_state(n);
    EXPECT_TRUE(nb.finished());
    EXPECT_FALSE(nb.dead());
    EXPECT_NE(nb.nbr_dead, 0u);  // the dead direction was masked out
    EXPECT_EQ(nb.status, kRankPeerDown);
  }

  // A rank far from the crash never hears about it.
  const RankState& far = engine.rank_state(92);
  EXPECT_TRUE(far.finished());
  EXPECT_EQ(far.nbr_dead, 0u);
  EXPECT_EQ(far.status, kRankOk);
}

TEST(FaultInjection, AllreduceHaltPropagates) {
  Config cfg;
  cfg.workload.kind = AppKind::kAllreduce;
  cfg.workload.grid_w = 4;
  cfg.workload.grid_h = 4;
  cfg.workload.iters = 4;
  cfg.faults.push_back({5, 1e-6});  // die during the first exchange

  cfg.shards = 1;
  const Result base = run(cfg);
  // A collective cannot route around a dead partner: nobody finishes.
  EXPECT_EQ(base.ranks_ok, 0u);
  EXPECT_EQ(base.ranks_failed, 16u);
  EXPECT_GT(base.nacks, 0u);

  for (const std::size_t s : {2, 4}) {
    Config c = cfg;
    c.shards = s;
    const Result got = run(c);
    SCOPED_TRACE(testing::Message() << "shards=" << s);
    EXPECT_EQ(base.golden_hash, got.golden_hash);
    EXPECT_EQ(base.ranks_failed, got.ranks_failed);
    EXPECT_EQ(base.nacks, got.nacks);
  }

  // The halt status is the latched NACK payload.
  ShardedEngine engine(cfg);
  (void)engine.run();
  EXPECT_EQ(engine.rank_state(5).status, kRankCrashed);
  bool saw_peer_down = false;
  for (std::uint32_t r = 0; r < 16; ++r) {
    if (r == 5) continue;
    if (engine.rank_state(r).status == kRankPeerDown) saw_peer_down = true;
  }
  EXPECT_TRUE(saw_peer_down);
}

TEST(FaultInjection, CrashAtTimeZeroIsShardInvariant) {
  Config cfg = faulty_halo(0, 0.0);
  cfg.shards = 1;
  const Result base = run(cfg);
  EXPECT_EQ(base.ranks_failed, 1u);
  for (const std::size_t s : {3, 8}) {
    Config c = cfg;
    c.shards = s;
    const Result got = run(c);
    SCOPED_TRACE(testing::Message() << "shards=" << s);
    EXPECT_EQ(base.golden_hash, got.golden_hash);
  }
}

TEST(FaultInjection, TwoCrashesCompose) {
  Config cfg = faulty_halo(12, 0.0);
  const double t = mid_run_time(cfg);
  cfg.faults = {{12, t}, {88, t * 0.5}};
  cfg.shards = 1;
  const Result base = run(cfg);
  EXPECT_EQ(base.ranks_failed, 2u);
  EXPECT_EQ(base.ranks_ok, 98u);
  for (const std::size_t s : {4, 8}) {
    Config c = cfg;
    c.shards = s;
    const Result got = run(c);
    SCOPED_TRACE(testing::Message() << "shards=" << s);
    EXPECT_EQ(base.golden_hash, got.golden_hash);
    EXPECT_EQ(base.nacks, got.nacks);
  }
}

}  // namespace
}  // namespace polaris::pdes
