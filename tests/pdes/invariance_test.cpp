// Shard-count invariance: the golden trace is the determinism contract.
// Sharding and worker count are execution parameters — they must not
// change one bit of the simulation outcome.
#include <gtest/gtest.h>

#include "polaris/pdes/engine.hpp"

namespace polaris::pdes {
namespace {

void expect_same_outcome(const Result& base, const Result& got,
                         const char* what) {
  EXPECT_EQ(base.golden_hash, got.golden_hash) << what;
  EXPECT_DOUBLE_EQ(base.sim_seconds, got.sim_seconds) << what;
  EXPECT_EQ(base.ranks_ok, got.ranks_ok) << what;
  EXPECT_EQ(base.ranks_failed, got.ranks_failed) << what;
  EXPECT_EQ(base.events, got.events) << what;
  EXPECT_EQ(base.msgs_intra + base.msgs_cross, got.msgs_intra + got.msgs_cross)
      << what;
  EXPECT_EQ(base.nacks, got.nacks) << what;
}

void expect_shard_invariant(Config cfg,
                            std::initializer_list<std::size_t> shard_counts) {
  cfg.shards = 1;
  const Result base = run(cfg);
  for (const std::size_t s : shard_counts) {
    Config c = cfg;
    c.shards = s;
    const Result got = run(c);
    SCOPED_TRACE(testing::Message() << "shards=" << s);
    expect_same_outcome(base, got, "shard count changed the outcome");
  }
}

TEST(ShardInvariance, JitteredHalo) {
  Config cfg;
  cfg.workload.kind = AppKind::kHalo;
  cfg.workload.grid_w = 12;
  cfg.workload.grid_h = 9;  // 108 ranks: odd blocks at every shard count
  cfg.workload.iters = 5;
  cfg.workload.jitter = true;
  cfg.workload.seed = 42;
  expect_shard_invariant(cfg, {2, 3, 4, 8});
}

TEST(ShardInvariance, JitteredAllreduce) {
  Config cfg;
  cfg.workload.kind = AppKind::kAllreduce;
  cfg.workload.grid_w = 6;
  cfg.workload.grid_h = 5;  // 30 ranks: ghost partners above the rank count
  cfg.workload.iters = 4;
  cfg.workload.jitter = true;
  cfg.workload.seed = 7;
  expect_shard_invariant(cfg, {2, 4, 7, 8});
}

TEST(ShardInvariance, Cg) {
  Config cfg;
  cfg.workload.kind = AppKind::kCg;
  cfg.workload.grid_w = 7;
  cfg.workload.grid_h = 4;
  cfg.workload.iters = 3;
  expect_shard_invariant(cfg, {2, 4, 8});
}

TEST(ShardInvariance, TinyComputeKeepsWindowsBusy) {
  // Near-zero compute makes every window dense with same-tick traffic —
  // the hardest case for commutative same-tick processing.
  Config cfg;
  cfg.workload.kind = AppKind::kHalo;
  cfg.workload.grid_w = 10;
  cfg.workload.grid_h = 10;
  cfg.workload.iters = 4;
  cfg.workload.compute_s = 0.0;  // clamped to one tick internally
  cfg.workload.jitter = true;
  expect_shard_invariant(cfg, {2, 5, 8});
}

TEST(ShardInvariance, TinyChannelCapacityForcesSpill) {
  // A 2-deep ring overflows on every dense window; the spill path must be
  // outcome-neutral because ingestion is canonically sorted.
  Config cfg;
  cfg.workload.kind = AppKind::kHalo;
  cfg.workload.grid_w = 8;
  cfg.workload.grid_h = 8;
  cfg.workload.iters = 3;
  cfg.workload.jitter = true;
  cfg.channel_capacity = 2;
  expect_shard_invariant(cfg, {2, 4, 8});
}

TEST(WorkerInvariance, WorkerCountIsPureExecutionParameter) {
  Config cfg;
  cfg.workload.kind = AppKind::kHalo;
  cfg.workload.grid_w = 12;
  cfg.workload.grid_h = 9;
  cfg.workload.iters = 4;
  cfg.workload.jitter = true;
  cfg.shards = 8;
  cfg.workers = 1;
  const Result base = run(cfg);
  for (const std::size_t w : {2, 3, 8}) {
    Config c = cfg;
    c.workers = w;
    const Result got = run(c);
    SCOPED_TRACE(testing::Message() << "workers=" << w);
    expect_same_outcome(base, got, "worker count changed the outcome");
    EXPECT_EQ(got.workers, w);
  }
}

TEST(ShardInvariance, RepeatRunsAreBitIdentical) {
  Config cfg;
  cfg.workload.kind = AppKind::kAllreduce;
  cfg.workload.grid_w = 4;
  cfg.workload.grid_h = 8;
  cfg.workload.iters = 3;
  cfg.workload.jitter = true;
  cfg.shards = 4;
  const Result a = run(cfg);
  const Result b = run(cfg);
  EXPECT_EQ(a.golden_hash, b.golden_hash);
  EXPECT_EQ(a.events, b.events);
}

}  // namespace
}  // namespace polaris::pdes
