#include "polaris/sched/trace.hpp"

#include <gtest/gtest.h>

#include "polaris/support/check.hpp"

namespace polaris::sched {
namespace {

TEST(TraceGenerator, DeterministicForSeed) {
  TraceConfig cfg;
  cfg.jobs = 100;
  const auto a = generate_trace(cfg, 42);
  const auto b = generate_trace(cfg, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].submit, b[i].submit);
    EXPECT_EQ(a[i].width, b[i].width);
    EXPECT_EQ(a[i].runtime, b[i].runtime);
  }
}

TEST(TraceGenerator, ArrivalsAreMonotone) {
  const auto jobs = generate_trace({}, 1);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].submit, jobs[i - 1].submit);
  }
}

TEST(TraceGenerator, FieldsWithinConfiguredRanges) {
  TraceConfig cfg;
  cfg.jobs = 5000;
  cfg.min_width_exp = 1;
  cfg.max_width_exp = 5;
  cfg.min_runtime = 10.0;
  cfg.max_runtime = 1000.0;
  cfg.max_overestimate = 3.0;
  const auto jobs = generate_trace(cfg, 7);
  for (const Job& j : jobs) {
    EXPECT_GE(j.width, 1u);
    EXPECT_LE(j.width, 32u);
    EXPECT_GE(j.runtime, 10.0 - 1e-9);
    EXPECT_LE(j.runtime, 1000.0 + 1e-6);
    EXPECT_GE(j.estimate, j.runtime - 1e-9);
    EXPECT_LE(j.estimate, 3.0 * j.runtime + 1e-6);
  }
}

TEST(TraceGenerator, MeanInterarrivalRoughlyMatches) {
  TraceConfig cfg;
  cfg.jobs = 20000;
  cfg.mean_interarrival = 30.0;
  const auto jobs = generate_trace(cfg, 3);
  const double span = jobs.back().submit - jobs.front().submit;
  EXPECT_NEAR(span / static_cast<double>(cfg.jobs - 1), 30.0, 1.5);
}

TEST(TraceGenerator, PowerOfTwoBias) {
  TraceConfig cfg;
  cfg.jobs = 10000;
  cfg.p_power_of_two = 1.0;
  const auto jobs = generate_trace(cfg, 9);
  for (const Job& j : jobs) {
    EXPECT_EQ(j.width & (j.width - 1), 0u) << j.width;
  }
}

TEST(OfferedLoad, ScalesInverselyWithNodes) {
  const auto jobs = generate_trace({}, 5);
  const double l128 = offered_load(jobs, 128);
  const double l256 = offered_load(jobs, 256);
  EXPECT_NEAR(l128 / l256, 2.0, 1e-9);
}

TEST(JobMetrics, WaitAndSlowdown) {
  Job j;
  j.submit = 100.0;
  j.runtime = 50.0;
  j.start = 130.0;
  j.finish = 180.0;
  EXPECT_DOUBLE_EQ(j.wait(), 30.0);
  EXPECT_DOUBLE_EQ(j.bounded_slowdown(), 80.0 / 50.0);
}

TEST(JobMetrics, BoundedSlowdownUsesTenSecondFloor) {
  Job j;
  j.submit = 0.0;
  j.runtime = 1.0;  // tiny job
  j.start = 9.0;
  j.finish = 10.0;
  // (9 + 1) / max(1, 10) = 1.0
  EXPECT_DOUBLE_EQ(j.bounded_slowdown(), 1.0);
}

}  // namespace
}  // namespace polaris::sched
