#include "polaris/sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "polaris/sched/trace.hpp"
#include "polaris/support/check.hpp"

namespace polaris::sched {
namespace {

Job make_job(std::uint64_t id, double submit, double runtime,
             std::size_t width, double estimate = 0.0) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.runtime = runtime;
  j.width = width;
  j.estimate = estimate > 0.0 ? estimate : runtime;
  return j;
}

/// No two concurrently running jobs may exceed the node count.
void check_capacity(const std::vector<Job>& jobs, std::size_t nodes) {
  for (const Job& a : jobs) {
    ASSERT_TRUE(a.scheduled()) << "job " << a.id << " never ran";
    ASSERT_GE(a.start, a.submit);
    std::size_t used = 0;
    for (const Job& b : jobs) {
      if (b.start <= a.start && a.start < b.finish) used += b.width;
    }
    ASSERT_LE(used, nodes) << "capacity exceeded at t=" << a.start;
  }
}

TEST(Fcfs, RunsJobsInOrderWhenSerial) {
  std::vector<Job> jobs{make_job(0, 0, 100, 4), make_job(1, 1, 100, 4),
                        make_job(2, 2, 100, 4)};
  run_scheduler(jobs, 4, Policy::kFcfs);
  EXPECT_DOUBLE_EQ(jobs[0].start, 0.0);
  EXPECT_DOUBLE_EQ(jobs[1].start, 100.0);
  EXPECT_DOUBLE_EQ(jobs[2].start, 200.0);
}

TEST(Fcfs, ParallelWhenTheyFit) {
  std::vector<Job> jobs{make_job(0, 0, 100, 2), make_job(1, 0, 100, 2)};
  const auto m = run_scheduler(jobs, 4, Policy::kFcfs);
  EXPECT_DOUBLE_EQ(jobs[1].start, 0.0);
  EXPECT_DOUBLE_EQ(m.makespan, 100.0);
}

TEST(Fcfs, HeadOfLineBlocking) {
  // Wide head job blocks a narrow later job even though nodes are free.
  std::vector<Job> jobs{make_job(0, 0, 100, 4),   // runs 0-100
                        make_job(1, 1, 100, 4),   // needs all nodes: waits
                        make_job(2, 2, 10, 1)};   // could run but FCFS blocks
  run_scheduler(jobs, 4, Policy::kFcfs);
  EXPECT_DOUBLE_EQ(jobs[2].start, 200.0);  // after both wide jobs
}

TEST(EasyBackfill, BackfillsNarrowShortJob) {
  std::vector<Job> jobs{make_job(0, 0, 100, 4),  // runs 0-100
                        make_job(1, 1, 100, 4),  // reserved at t=100
                        make_job(2, 2, 10, 1)};  // fits before the shadow? no free nodes though
  run_scheduler(jobs, 4, Policy::kEasyBackfill);
  // All 4 nodes busy until t=100, so job 2 cannot backfill before 100;
  // but at t=100 job1 takes all nodes... job2 must wait until 200 unless
  // it backfills: at t=100 head is job1 (fits, starts), then job2 has no
  // nodes. So 200 again.
  EXPECT_DOUBLE_EQ(jobs[2].start, 200.0);
}

TEST(EasyBackfill, BackfillUsesIdleNodesWithoutDelayingHead) {
  std::vector<Job> jobs{
      make_job(0, 0, 100, 3),   // 3 nodes busy 0-100, 1 free
      make_job(1, 1, 100, 4),   // head: must wait for t=100
      make_job(2, 2, 50, 1),    // 1 node, ends at 52 <= 100: backfill!
  };
  const auto m = run_scheduler(jobs, 4, Policy::kEasyBackfill);
  EXPECT_DOUBLE_EQ(jobs[2].start, 2.0);
  EXPECT_DOUBLE_EQ(jobs[1].start, 100.0);
  EXPECT_EQ(m.backfilled, 1u);
  check_capacity(jobs, 4);
}

TEST(EasyBackfill, RefusesBackfillThatWouldDelayHead) {
  std::vector<Job> jobs{
      make_job(0, 0, 100, 3),
      make_job(1, 1, 100, 4),    // head reservation at t=100
      make_job(2, 2, 500, 1),    // would run past 100 on the head's node
  };
  run_scheduler(jobs, 4, Policy::kEasyBackfill);
  // Job 2 uses 1 node; at shadow (100) the head needs 4 -> extra = 0, and
  // job 2's estimate crosses the shadow: refused.
  EXPECT_GT(jobs[2].start, 99.0);
  check_capacity(jobs, 4);
}

TEST(EasyBackfill, BackfillOnExtraNodesMayCrossShadow) {
  std::vector<Job> jobs{
      make_job(0, 0, 100, 2),   // 2 busy, 2 free
      make_job(1, 1, 100, 3),   // head: waits for t=100 (needs 3, has 2)
      make_job(2, 2, 500, 1),   // extra = (2+2)-3 = 1 -> can cross shadow
  };
  run_scheduler(jobs, 4, Policy::kEasyBackfill);
  EXPECT_DOUBLE_EQ(jobs[2].start, 2.0);
  EXPECT_DOUBLE_EQ(jobs[1].start, 100.0);  // head NOT delayed
  check_capacity(jobs, 4);
}

TEST(Sjf, PrefersShortJobs) {
  std::vector<Job> jobs{
      make_job(0, 0, 100, 4),  // running 0-100
      make_job(1, 1, 300, 4),
      make_job(2, 2, 10, 4),
  };
  run_scheduler(jobs, 4, Policy::kSjf);
  EXPECT_DOUBLE_EQ(jobs[2].start, 100.0);  // short job jumps the queue
  EXPECT_DOUBLE_EQ(jobs[1].start, 110.0);
}

TEST(Scheduler, RejectsJobWiderThanCluster) {
  std::vector<Job> jobs{make_job(0, 0, 10, 100)};
  EXPECT_THROW(run_scheduler(jobs, 4, Policy::kFcfs),
               support::ContractViolation);
}

TEST(Scheduler, EmptyTraceYieldsZeroMetrics) {
  std::vector<Job> jobs;
  const auto m = run_scheduler(jobs, 4, Policy::kFcfs);
  EXPECT_EQ(m.jobs, 0u);
  EXPECT_EQ(m.makespan, 0.0);
}

class PolicyComparison : public ::testing::TestWithParam<Policy> {};

TEST_P(PolicyComparison, SyntheticTraceRunsToCompletionWithinCapacity) {
  TraceConfig cfg;
  cfg.jobs = 2000;
  cfg.max_width_exp = 6;  // <= 64 nodes
  cfg.mean_interarrival = 1250.0;  // offered load ~0.9 on 128 nodes
  auto jobs = generate_trace(cfg, 11);
  const auto m = run_scheduler(jobs, 128, GetParam());
  EXPECT_EQ(m.jobs, 2000u);
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_LE(m.utilization, 1.0 + 1e-9);
  check_capacity(jobs, 128);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyComparison,
                         ::testing::Values(Policy::kFcfs, Policy::kSjf,
                                           Policy::kEasyBackfill,
                                           Policy::kConservative),
                         [](const auto& info) {
                           std::string n = to_string(info.param);
                           for (char& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

TEST(PolicyShape, BackfillBeatsFcfsUnderLoad) {
  // The headline scheduler result: at high offered load EASY sustains
  // lower waits and slowdowns than plain FCFS.
  TraceConfig cfg;
  cfg.jobs = 4000;
  cfg.max_width_exp = 6;
  cfg.mean_interarrival = 45.0;  // heavy load on 128 nodes
  auto fcfs_jobs = generate_trace(cfg, 23);
  auto easy_jobs = fcfs_jobs;
  const auto fcfs = run_scheduler(fcfs_jobs, 128, Policy::kFcfs);
  const auto easy = run_scheduler(easy_jobs, 128, Policy::kEasyBackfill);
  EXPECT_LT(easy.mean_wait, fcfs.mean_wait);
  EXPECT_LT(easy.mean_bounded_slowdown, fcfs.mean_bounded_slowdown);
  EXPECT_GE(easy.utilization, fcfs.utilization - 1e-9);
  EXPECT_GT(easy.backfilled, 0u);
}


TEST(Conservative, BackfillsWithoutDelayingAnyReservation) {
  // Same scenario as EASY's "extra nodes" case: conservative must also
  // backfill the narrow job (it delays nobody).
  std::vector<Job> jobs{
      make_job(0, 0, 100, 3),   // 3 busy 0-100, 1 free
      make_job(1, 1, 100, 4),   // reserved at t=100
      make_job(2, 2, 50, 1),    // ends at 52 <= 100: safe backfill
  };
  const auto m = run_scheduler(jobs, 4, Policy::kConservative);
  EXPECT_DOUBLE_EQ(jobs[2].start, 2.0);
  EXPECT_DOUBLE_EQ(jobs[1].start, 100.0);
  EXPECT_EQ(m.backfilled, 1u);
  check_capacity(jobs, 4);
}

TEST(Conservative, RefusesBackfillThatDelaysLaterReservation) {
  // Job 3 would fit now on the idle node, but running it for 500 s would
  // push job 2's reservation (the idle node at t=100) back: conservative
  // refuses where EASY's head-only test would also refuse here, but the
  // mechanism is the per-job reservation.
  std::vector<Job> jobs{
      make_job(0, 0, 100, 3),
      make_job(1, 1, 100, 4),    // head: reserved at 100
      make_job(2, 2, 500, 1),    // would cross the reservation
  };
  run_scheduler(jobs, 4, Policy::kConservative);
  EXPECT_GT(jobs[2].start, 99.0);
  check_capacity(jobs, 4);
}

TEST(Conservative, NeverWorseThanFcfsOnWaits) {
  TraceConfig cfg;
  cfg.jobs = 1500;
  cfg.max_width_exp = 6;
  cfg.mean_interarrival = 1400.0;  // offered load ~0.8 on 128 nodes
  auto fcfs_jobs = generate_trace(cfg, 31);
  auto cons_jobs = fcfs_jobs;
  const auto fcfs = run_scheduler(fcfs_jobs, 128, Policy::kFcfs);
  const auto cons = run_scheduler(cons_jobs, 128, Policy::kConservative);
  EXPECT_LE(cons.mean_wait, fcfs.mean_wait * 1.001);
  EXPECT_GE(cons.utilization, fcfs.utilization - 1e-9);
}

TEST(Conservative, EasyUsuallyBackfillsAtLeastAsMuch) {
  TraceConfig cfg;
  cfg.jobs = 1500;
  cfg.max_width_exp = 6;
  cfg.mean_interarrival = 1400.0;
  auto easy_jobs = generate_trace(cfg, 33);
  auto cons_jobs = easy_jobs;
  const auto easy = run_scheduler(easy_jobs, 128, Policy::kEasyBackfill);
  const auto cons = run_scheduler(cons_jobs, 128, Policy::kConservative);
  // EASY's weaker guarantee admits more backfills.
  EXPECT_GE(easy.backfilled + 50, cons.backfilled);
}

}  // namespace
}  // namespace polaris::sched
