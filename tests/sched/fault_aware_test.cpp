#include "polaris/sched/fault_aware.hpp"

#include <gtest/gtest.h>

#include "polaris/sched/trace.hpp"
#include "polaris/support/check.hpp"

namespace polaris::sched {
namespace {

std::vector<Job> small_trace(std::size_t jobs, double interarrival,
                             std::uint64_t seed) {
  TraceConfig cfg;
  cfg.jobs = jobs;
  cfg.max_width_exp = 5;  // <= 32 nodes
  cfg.mean_interarrival = interarrival;
  cfg.min_runtime = 600.0;
  cfg.max_runtime = 4.0 * 3600.0;
  return generate_trace(cfg, seed);
}

TEST(FaultAware, NoFailuresMatchesPlainScheduling) {
  // With an astronomically reliable machine the fault-aware run reduces
  // to EASY backfill: zero kills, full useful work.
  auto jobs = small_trace(300, 400.0, 1);
  FaultAwareConfig cfg;
  cfg.nodes = 64;
  cfg.node_mtbf = 1e15;
  const auto m = run_fault_aware(jobs, cfg);
  EXPECT_EQ(m.job_kills, 0u);
  EXPECT_EQ(m.jobs, 300u);
  double expected_work = 0.0;
  for (const auto& j : jobs) expected_work += j.node_seconds();
  EXPECT_NEAR(m.useful_node_seconds, expected_work, 1.0);
  EXPECT_NEAR(m.wasted_node_seconds, 0.0, 1.0);
}

TEST(FaultAware, AllJobsEventuallyComplete) {
  auto jobs = small_trace(200, 500.0, 2);
  FaultAwareConfig cfg;
  cfg.nodes = 64;
  cfg.node_mtbf = 30.0 * 86400.0;  // aggressive: monthly node failures
  const auto m = run_fault_aware(jobs, cfg);
  EXPECT_EQ(m.jobs, 200u);
  EXPECT_GT(m.failures, 0u);
  EXPECT_GT(m.goodput, 0.0);
  EXPECT_LE(m.goodput, 1.0);
}

TEST(FaultAware, FailuresCreateWaste) {
  auto jobs = small_trace(200, 500.0, 3);
  FaultAwareConfig cfg;
  cfg.nodes = 64;
  cfg.node_mtbf = 20.0 * 86400.0;
  const auto m = run_fault_aware(jobs, cfg);
  EXPECT_GT(m.job_kills, 0u);
  EXPECT_GT(m.wasted_node_seconds, 0.0);
  EXPECT_LT(m.goodput, m.utilization);
}

TEST(FaultAware, CheckpointingImprovesGoodputUnderHeavyFailures) {
  // Long jobs + failing nodes: restart-from-scratch hemorrhages work;
  // Daly checkpointing recovers most of it.
  TraceConfig tcfg;
  tcfg.jobs = 120;
  tcfg.max_width_exp = 5;
  tcfg.mean_interarrival = 1500.0;
  tcfg.min_runtime = 6.0 * 3600.0;
  tcfg.max_runtime = 24.0 * 3600.0;
  const auto jobs = generate_trace(tcfg, 4);

  FaultAwareConfig cfg;
  cfg.nodes = 64;
  cfg.node_mtbf = 60.0 * 86400.0;  // ~1 failure/day across the machine

  auto naked = cfg;
  naked.checkpointing = false;
  auto ckpt = cfg;
  ckpt.checkpointing = true;
  const auto m_naked = run_fault_aware(jobs, naked);
  const auto m_ckpt = run_fault_aware(jobs, ckpt);

  EXPECT_GT(m_naked.job_kills, 0u);
  EXPECT_GT(m_ckpt.goodput, m_naked.goodput);
  EXPECT_LT(m_ckpt.wasted_node_seconds, m_naked.wasted_node_seconds);
}

TEST(FaultAware, DeterministicForSeed) {
  auto jobs = small_trace(100, 600.0, 5);
  FaultAwareConfig cfg;
  cfg.nodes = 32;
  cfg.node_mtbf = 10.0 * 86400.0;
  const auto a = run_fault_aware(jobs, cfg);
  const auto b = run_fault_aware(jobs, cfg);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.job_kills, b.job_kills);
  EXPECT_DOUBLE_EQ(a.goodput, b.goodput);
}

TEST(FaultAware, RejectsOversizedJob) {
  std::vector<Job> jobs(1);
  jobs[0].width = 100;
  jobs[0].runtime = jobs[0].estimate = 10;
  FaultAwareConfig cfg;
  cfg.nodes = 4;
  EXPECT_THROW(run_fault_aware(jobs, cfg), support::ContractViolation);
}

}  // namespace
}  // namespace polaris::sched
