// Equivalence proof for the two-tier fabric data path.
//
// SimNetwork (analytic flights + pooled packet walkers) must be an exact
// reimplementation of the semaphore model it replaced, not an
// approximation: every message's simulated completion time must match
// fabric::ReferenceNetwork to the nanosecond tick under arbitrary traffic.
// These tests drive identical randomized schedules (fixed seeds — CI
// replays bit-for-bit) through both models on every topology family, with
// and without optical circuit switching, and compare completion times,
// per-link busy ticks, and traffic stats elementwise.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "polaris/des/task.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fabric/reference.hpp"

namespace polaris::fabric {
namespace {

struct Msg {
  des::SimTime at;
  NodeId src;
  NodeId dst;
  std::uint64_t bytes;
};

/// Injects the schedule into `net` (each message as its own process, in
/// index order so tie-breaking sequence numbers match across models) and
/// returns per-message completion ticks.
template <class Net>
std::vector<des::SimTime> run_schedule(Net& net, const std::vector<Msg>& msgs) {
  std::vector<des::SimTime> done(msgs.size(), -1);
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    net.engine().spawn(
        [](Net& n, Msg m, des::SimTime& out) -> des::Task<void> {
          co_await des::delay(n.engine(), m.at);
          co_await n.transfer(m.src, m.dst, m.bytes);
          out = n.engine().now();
        }(net, msgs[i], done[i]));
  }
  net.engine().run();
  return done;
}

/// Random schedule: bursts of messages with mixed sizes (zero-byte probes,
/// sub-MTU, multi-packet, and >16*MTU capped-plan messages) over a window
/// short enough to force path overlap.
std::vector<Msg> random_schedule(std::size_t count, std::size_t nodes,
                                 std::uint32_t mtu, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(
      0, static_cast<NodeId>(nodes - 1));
  std::uniform_int_distribution<des::SimTime> when(0, 200'000);  // 200 us
  std::uniform_int_distribution<int> kind(0, 9);
  std::vector<Msg> msgs;
  msgs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Msg m;
    m.at = when(rng);
    m.src = pick(rng);
    m.dst = pick(rng);  // src == dst allowed: exercises the copy path
    switch (kind(rng)) {
      case 0:
        m.bytes = 0;  // latency probe
        break;
      case 1:
      case 2:
      case 3:
        m.bytes = 1 + rng() % mtu;  // single packet
        break;
      case 4:
      case 5:
      case 6:
      case 7:
        m.bytes = mtu + rng() % (8ull * mtu);  // multi-packet
        break;
      default:
        m.bytes = 16ull * mtu + rng() % (64ull * mtu);  // plan capped at 16
        break;
    }
    msgs.push_back(m);
  }
  return msgs;
}

/// All messages released at t=0 with identical sizes: maximum simultaneous
/// contention and maximum tick ties — the hardest case for FIFO-order
/// equivalence.
std::vector<Msg> synchronized_schedule(std::size_t count, std::size_t nodes,
                                       std::uint64_t bytes,
                                       std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(
      0, static_cast<NodeId>(nodes - 1));
  std::vector<Msg> msgs;
  msgs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId src = pick(rng);
    NodeId dst = pick(rng);
    if (dst == src) dst = (dst + 1) % nodes;
    msgs.push_back({0, src, dst, bytes});
  }
  return msgs;
}

void expect_equivalent(const Topology& topo, const FabricParams& params,
                       const std::vector<Msg>& msgs, const char* label) {
  des::Engine fast_engine;
  SimNetwork fast(fast_engine, params, topo);
  const std::vector<des::SimTime> fast_done = run_schedule(fast, msgs);

  des::Engine ref_engine;
  ReferenceNetwork ref(ref_engine, params, topo);
  const std::vector<des::SimTime> ref_done = run_schedule(ref, msgs);

  ASSERT_EQ(fast_done.size(), ref_done.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(fast_done[i], ref_done[i])
        << label << ": message " << i << " (" << msgs[i].src << "->"
        << msgs[i].dst << ", " << msgs[i].bytes << " B at t=" << msgs[i].at
        << ") diverged";
  }
  EXPECT_EQ(fast_engine.now(), ref_engine.now()) << label;

  // Occupancy accounting must agree tick-exactly on every link.
  for (LinkId l = 0; l < topo.link_count(); ++l) {
    EXPECT_EQ(fast.link_busy_seconds(l), ref.link_busy_seconds(l))
        << label << ": link " << l;
  }
  EXPECT_EQ(fast.stats().messages, ref.stats().messages) << label;
  EXPECT_EQ(fast.stats().packets, ref.stats().packets) << label;
  EXPECT_EQ(fast.stats().circuit_hits, ref.stats().circuit_hits) << label;
  EXPECT_EQ(fast.stats().circuit_misses, ref.stats().circuit_misses) << label;
}

TEST(Equivalence, RandomTrafficCrossbar) {
  Crossbar topo(8);
  const FabricParams params = fabrics::myrinet2000();
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    expect_equivalent(topo, params,
                      random_schedule(120, topo.node_count(), params.mtu, seed),
                      "crossbar/myrinet");
  }
}

TEST(Equivalence, RandomTrafficFatTree) {
  FatTree topo(4);  // 16 hosts, shared up/down links across pods
  const FabricParams params = fabrics::infiniband_4x();
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    expect_equivalent(topo, params,
                      random_schedule(120, topo.node_count(), params.mtu, seed),
                      "fattree/infiniband");
  }
}

TEST(Equivalence, RandomTrafficTorus) {
  Torus2D topo(4, 4);  // long multi-hop paths, heavy link sharing
  const FabricParams params = fabrics::gig_ethernet();
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    expect_equivalent(topo, params,
                      random_schedule(100, topo.node_count(), params.mtu, seed),
                      "torus/gige");
  }
}

TEST(Equivalence, RandomTrafficWithCircuitSwitching) {
  Crossbar topo(8);
  const FabricParams params = fabrics::optical_ocs();
  ASSERT_GT(params.circuit_setup, 0.0);
  for (std::uint64_t seed : {31ull, 32ull, 33ull}) {
    expect_equivalent(topo, params,
                      random_schedule(120, topo.node_count(), params.mtu, seed),
                      "crossbar/optical");
  }
}

TEST(Equivalence, SynchronizedSameSizeBurstPreservesAggregateWork) {
  // Everything collides at t=0 with identical serialization times: the
  // adversarial tie-breaking case.  When two packets with *different*
  // upstream queue histories arrive at a shared link on the exact same
  // tick, the two models can grant the link in a different (equally valid)
  // FIFO order: the semaphore model breaks the tie by the sequence numbers
  // of its internal grant/release events, the walker model by reservation
  // event order.  Neither order is semantically preferred — the paper-level
  // model leaves simultaneous arrivals unordered — so per-message
  // completion times are NOT asserted here (the randomized suites above,
  // where exact ties have measure ~zero, pin those bit-for-bit).  What
  // must hold under ANY tie resolution is conservation of work: identical
  // per-link occupancy ticks and traffic accounting.
  FatTree topo(4);
  const FabricParams params = fabrics::myrinet2000();
  for (std::uint64_t bytes : {0ull, 512ull, 6000ull, 40000ull}) {
    const std::vector<Msg> msgs =
        synchronized_schedule(64, topo.node_count(), bytes, 41 + bytes);

    des::Engine fast_engine;
    SimNetwork fast(fast_engine, params, topo);
    run_schedule(fast, msgs);

    des::Engine ref_engine;
    ReferenceNetwork ref(ref_engine, params, topo);
    run_schedule(ref, msgs);

    for (LinkId l = 0; l < topo.link_count(); ++l) {
      EXPECT_EQ(fast.link_busy_seconds(l), ref.link_busy_seconds(l))
          << bytes << " B, link " << l;
    }
    EXPECT_EQ(fast.stats().messages, ref.stats().messages) << bytes;
    EXPECT_EQ(fast.stats().packets, ref.stats().packets) << bytes;
    EXPECT_EQ(fast.stats().bytes, ref.stats().bytes) << bytes;
  }
}

TEST(Equivalence, ZeroByteSynchronizedBurstIsExact) {
  // With no serialization there is no link occupancy to tie-break: even
  // the fully synchronized burst must match to the tick.
  FatTree topo(4);
  expect_equivalent(topo, fabrics::myrinet2000(),
                    synchronized_schedule(64, topo.node_count(), 0, 97),
                    "fattree/zero-byte-burst");
}

TEST(Equivalence, IdlePathMatchesClosedForm) {
  // A bypassed transfer must land exactly on the analytic uncongested
  // model — tier 1 *is* that formula, so the match is to the tick.
  FatTree topo(4);
  for (std::uint64_t bytes : {0ull, 1ull, 1024ull, 9000ull, 1048576ull}) {
    des::Engine engine;
    SimNetwork net(engine, fabrics::myrinet2000(), topo);
    const std::vector<des::SimTime> done =
        run_schedule(net, {{0, 0, 15, bytes}});
    const des::SimTime expected =
        des::from_seconds(net.uncongested_seconds(0, 15, bytes));
    // from_seconds rounds once for the whole duration while the engine
    // accumulates per-hop roundings; allow 1 tick per hop of slack.
    EXPECT_NEAR(static_cast<double>(done[0]),
                static_cast<double>(expected),
                static_cast<double>(topo.hop_count(0, 15)))
        << bytes;
    EXPECT_EQ(net.stats().bypass_rate(), 1.0) << bytes;
    EXPECT_EQ(net.stats().messages_bypassed, 1u) << bytes;
    EXPECT_EQ(net.stats().walker_hop_events, 0u) << bytes;
  }
}

}  // namespace
}  // namespace polaris::fabric
