#include "polaris/fabric/params.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace polaris::fabric {
namespace {

TEST(FabricPresets, AllHaveSixEntries) {
  EXPECT_EQ(fabrics::all().size(), 6u);
}

TEST(FabricPresets, NamesAreUniqueAndLookupable) {
  for (const auto& p : fabrics::all()) {
    EXPECT_EQ(fabrics::by_name(p.name).name, p.name);
  }
  EXPECT_THROW((void)fabrics::by_name("token-ring"), std::invalid_argument);
}

TEST(FabricPresets, BandwidthOrderingMatchesEra) {
  EXPECT_LT(fabrics::fast_ethernet().link_bw, fabrics::gig_ethernet().link_bw);
  EXPECT_LT(fabrics::gig_ethernet().link_bw, fabrics::myrinet2000().link_bw);
  EXPECT_LT(fabrics::myrinet2000().link_bw, fabrics::infiniband_4x().link_bw);
  EXPECT_LT(fabrics::infiniband_4x().link_bw, fabrics::optical_ocs().link_bw);
}

TEST(FabricPresets, UserLevelFabricsHaveMicrosecondOverheads) {
  for (const auto& p : fabrics::all()) {
    if (p.os_bypass) {
      EXPECT_LT(p.o_send, 2e-6) << p.name;
    } else {
      EXPECT_GT(p.o_send, 10e-6) << p.name;  // kernel crossing dominates
    }
  }
}

TEST(FabricPresets, RdmaImpliesOsBypass) {
  for (const auto& p : fabrics::all()) {
    if (p.rdma) EXPECT_TRUE(p.os_bypass) << p.name;
  }
}

TEST(FabricPresets, OnlyOpticalHasCircuitSetup) {
  for (const auto& p : fabrics::all()) {
    if (p.name == "optical-ocs") {
      EXPECT_GT(p.circuit_setup, 0.0);
    } else {
      EXPECT_EQ(p.circuit_setup, 0.0) << p.name;
    }
  }
}

TEST(FabricParams, PathLatencyComposition) {
  FabricParams p;
  p.wire_latency = 1e-6;
  p.switch_latency = 10e-6;
  // one switch hop: 2 wire traversals + 1 switch
  EXPECT_DOUBLE_EQ(p.path_latency(1), 12e-6);
  // zero switches: back-to-back cable
  EXPECT_DOUBLE_EQ(p.path_latency(0), 1e-6);
}

TEST(FabricPresets, EthernetLatencyAnOrderAboveInfiniband) {
  const auto eth = fabrics::gig_ethernet();
  const auto ib = fabrics::infiniband_4x();
  const double eth_lat = eth.o_send + eth.path_latency(1) + eth.o_recv;
  const double ib_lat = ib.o_send + ib.path_latency(1) + ib.o_recv;
  EXPECT_GT(eth_lat / ib_lat, 8.0);
}

}  // namespace
}  // namespace polaris::fabric
