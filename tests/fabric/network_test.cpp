#include "polaris/fabric/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "polaris/des/task.hpp"

namespace polaris::fabric {
namespace {

/// Runs a transfer and returns its completion time in seconds.
double timed_transfer(SimNetwork& net, NodeId src, NodeId dst,
                      std::uint64_t bytes) {
  double done = -1.0;
  net.engine().spawn([](SimNetwork& n, NodeId s, NodeId d, std::uint64_t b,
                        double& out) -> des::Task<void> {
    const des::SimTime t0 = n.engine().now();
    co_await n.transfer(s, d, b);
    out = des::to_seconds(n.engine().now() - t0);
  }(net, src, dst, bytes, done));
  net.engine().run();
  return done;
}

class NetworkTest : public ::testing::Test {
 protected:
  des::Engine engine_;
  Crossbar topo_{8};
};

TEST_F(NetworkTest, UncongestedMatchesAnalyticModel) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  for (std::uint64_t bytes : {1ull, 100ull, 4096ull, 65536ull, 1048576ull}) {
    const double expected = net.uncongested_seconds(0, 1, bytes);
    const double measured = timed_transfer(net, 0, 1, bytes);
    EXPECT_NEAR(measured, expected, expected * 0.01 + 1e-9) << bytes;
  }
}

TEST_F(NetworkTest, LargerMessagesTakeLonger) {
  SimNetwork net(engine_, fabrics::gig_ethernet(), topo_);
  const double t_small = timed_transfer(net, 0, 1, 1024);
  const double t_big = timed_transfer(net, 0, 1, 1024 * 1024);
  EXPECT_GT(t_big, 10.0 * t_small);
}

TEST_F(NetworkTest, BandwidthApproachesLinkRate) {
  SimNetwork net(engine_, fabrics::infiniband_4x(), topo_);
  const std::uint64_t bytes = 16 * 1024 * 1024;
  const double t = timed_transfer(net, 0, 1, bytes);
  const double bw = static_cast<double>(bytes) / t;
  EXPECT_GT(bw, 0.9 * net.params().link_bw);
  EXPECT_LE(bw, net.params().link_bw * 1.001);
}

TEST_F(NetworkTest, SelfTransferUsesCopyBandwidth) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  const std::uint64_t bytes = 1024 * 1024;
  const double t = timed_transfer(net, 3, 3, bytes);
  EXPECT_NEAR(t, static_cast<double>(bytes) / net.params().copy_bw, 1e-9);
}

TEST_F(NetworkTest, SharedDownlinkSerializes) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  const std::uint64_t bytes = 1024 * 1024;
  // Two senders to the same destination: the shared downlink halves
  // per-flow bandwidth -> finish in ~2x single-flow time.
  const double single = net.uncongested_seconds(0, 2, bytes);
  std::vector<double> done(2, -1.0);
  for (int i = 0; i < 2; ++i) {
    engine_.spawn([](SimNetwork& n, NodeId s, std::uint64_t b,
                     double& out) -> des::Task<void> {
      co_await n.transfer(s, 2, b);
      out = des::to_seconds(n.engine().now());
    }(net, static_cast<NodeId>(i), bytes, done[i]));
  }
  engine_.run();
  const double last = std::max(done[0], done[1]);
  EXPECT_GT(last, 1.8 * single);
  EXPECT_LT(last, 2.3 * single);
}

TEST_F(NetworkTest, DisjointPairsDoNotInterfere) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  const std::uint64_t bytes = 1024 * 1024;
  const double single = net.uncongested_seconds(0, 1, bytes);
  std::vector<double> done(2, -1.0);
  engine_.spawn([](SimNetwork& n, double& out) -> des::Task<void> {
    co_await n.transfer(0, 1, 1024 * 1024);
    out = des::to_seconds(n.engine().now());
  }(net, done[0]));
  engine_.spawn([](SimNetwork& n, double& out) -> des::Task<void> {
    co_await n.transfer(2, 3, 1024 * 1024);
    out = des::to_seconds(n.engine().now());
  }(net, done[1]));
  engine_.run();
  EXPECT_NEAR(done[0], single, single * 0.02);
  EXPECT_NEAR(done[1], single, single * 0.02);
}

TEST_F(NetworkTest, ZeroByteTransferPaysPropagationOnly) {
  // A zero-byte message is a pure latency probe: wire + switch forwarding
  // per hop, no serialization anywhere (the old model charged each hop a
  // fake 1-byte packet).  Pinned exactly: 2 hops on a crossbar.
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  const double t = timed_transfer(net, 0, 1, 0);
  EXPECT_DOUBLE_EQ(
      t, des::to_seconds(des::from_seconds(net.params().wire_latency +
                                           net.params().switch_latency) +
                         des::from_seconds(net.params().wire_latency)));
  EXPECT_EQ(net.stats().total_link_busy_s, 0.0);
  EXPECT_EQ(net.stats().packets, 1u);
}

TEST_F(NetworkTest, UncontendedTransfersAllBypass) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  for (int i = 0; i < 5; ++i) timed_transfer(net, 0, 1, 64 * 1024);
  EXPECT_EQ(net.stats().messages_bypassed, 5u);
  EXPECT_EQ(net.stats().messages_walked, 0u);
  EXPECT_EQ(net.stats().flights_materialized, 0u);
  EXPECT_EQ(net.stats().walker_hop_events, 0u);
  EXPECT_EQ(net.stats().bypass_rate(), 1.0);
}

TEST_F(NetworkTest, ContendedTransfersDemoteToWalkers) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  // Two senders to one destination overlap on the shared downlink: the
  // first message starts as a flight and is materialized when the second
  // injects; the second walks from the start.  Every non-self message is
  // accounted to exactly one tier-outcome bucket.
  for (int i = 0; i < 2; ++i) {
    engine_.spawn([](SimNetwork& n, NodeId s) -> des::Task<void> {
      co_await n.transfer(s, 2, 1024 * 1024);
    }(net, static_cast<NodeId>(i)));
  }
  engine_.run();
  EXPECT_EQ(net.stats().flights_materialized, 1u);
  EXPECT_EQ(net.stats().messages_walked, 1u);
  EXPECT_EQ(net.stats().messages_bypassed, 0u);
  EXPECT_GT(net.stats().walker_hop_events, 0u);
  EXPECT_EQ(net.stats().messages_bypassed + net.stats().messages_walked +
                net.stats().flights_materialized,
            net.stats().messages);
}

TEST_F(NetworkTest, StatsAccumulate) {
  SimNetwork net(engine_, fabrics::gig_ethernet(), topo_);
  timed_transfer(net, 0, 1, 3000);  // 2 packets at mtu 1500
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().bytes, 3000u);
  EXPECT_EQ(net.stats().packets, 2u);
  EXPECT_GT(net.stats().total_link_busy_s, 0.0);
}

TEST_F(NetworkTest, PacketCountIsCapped) {
  SimNetwork net(engine_, fabrics::gig_ethernet(), topo_);
  timed_transfer(net, 0, 1, 64 * 1024 * 1024);
  EXPECT_EQ(net.stats().packets, SimNetwork::kMaxPackets);
}

TEST(OpticalNetwork, FirstTransferPaysCircuitSetup) {
  des::Engine engine;
  Crossbar topo(8);
  SimNetwork net(engine, fabrics::optical_ocs(), topo);
  const double cold = timed_transfer(net, 0, 1, 4096);
  const double warm = timed_transfer(net, 0, 1, 4096);
  EXPECT_GT(cold, net.params().circuit_setup);
  EXPECT_LT(warm, net.params().circuit_setup);
  EXPECT_EQ(net.stats().circuit_misses, 1u);
  EXPECT_EQ(net.stats().circuit_hits, 1u);
}

TEST(OpticalNetwork, CircuitCacheEvictsLru) {
  des::Engine engine;
  Crossbar topo(8);
  SimNetwork net(engine, fabrics::optical_ocs(), topo);
  // Fill the 4-way cache with dst 1..4, then touch 5 (evicts 1).
  for (NodeId d = 1; d <= 5; ++d) timed_transfer(net, 0, d, 64);
  EXPECT_EQ(net.stats().circuit_misses, 5u);
  timed_transfer(net, 0, 1, 64);  // miss again
  EXPECT_EQ(net.stats().circuit_misses, 6u);
  timed_transfer(net, 0, 5, 64);  // still cached
  EXPECT_EQ(net.stats().circuit_hits, 1u);
}

TEST(NetworkOnFatTree, CrossPodSlowerThanSameEdge) {
  des::Engine engine;
  FatTree topo(4);
  SimNetwork net(engine, fabrics::infiniband_4x(), topo);
  const double near = timed_transfer(net, 0, 1, 1024);
  const double far = timed_transfer(net, 0, 15, 1024);
  EXPECT_GT(far, near);
}

TEST(NetworkOnTorus, TimeGrowsWithDistance) {
  des::Engine engine;
  Torus2D topo(8, 8);
  SimNetwork net(engine, fabrics::myrinet2000(), topo);
  const double t1 = timed_transfer(net, 0, 1, 4096);
  const double t4 = timed_transfer(net, 0, 4, 4096);
  EXPECT_GT(t4, t1);
}

// ------------------------------------------------------------------- faults

/// Runs a transfer and returns (completion time in seconds, status).
struct XferResult {
  double seconds = -1.0;
  XferStatus status = XferStatus::kOk;
};

XferResult status_transfer(SimNetwork& net, NodeId src, NodeId dst,
                           std::uint64_t bytes) {
  XferResult r;
  net.engine().spawn([](SimNetwork& n, NodeId s, NodeId d, std::uint64_t b,
                        XferResult& out) -> des::Task<void> {
    const des::SimTime t0 = n.engine().now();
    out.status = co_await n.transfer(s, d, b);
    out.seconds = des::to_seconds(n.engine().now() - t0);
  }(net, src, dst, bytes, r));
  net.engine().run();
  return r;
}

TEST_F(NetworkTest, TransferToDownNodeRefusedAtInject) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  net.set_node_up(1, false);
  const XferResult r = status_transfer(net, 0, 1, 4096);
  EXPECT_EQ(r.status, XferStatus::kNodeDown);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  // Refusal is delivered through a scheduled event, never re-entrantly,
  // but costs no simulated time.
  EXPECT_EQ(r.seconds, 0.0);
  net.set_node_up(1, true);
  EXPECT_EQ(status_transfer(net, 0, 1, 4096).status, XferStatus::kOk);
}

TEST_F(NetworkTest, TransferOverDownLinkRefusedAtInject) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  const LinkId l = topo_.route(0, 1).front();
  net.set_link_up(l, false);
  EXPECT_EQ(status_transfer(net, 0, 1, 4096).status, XferStatus::kLinkDown);
  net.set_link_up(l, true);
  EXPECT_EQ(status_transfer(net, 0, 1, 4096).status, XferStatus::kOk);
}

TEST_F(NetworkTest, NodeDeathMidFlightKillsBypassTier) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  net.enable_faults();
  const std::uint64_t bytes = 16 * 1024 * 1024;
  const double full = net.uncongested_seconds(0, 1, bytes);
  const double kill_at = full / 2;
  engine_.schedule_at(des::from_seconds(kill_at),
                      [&net] { net.set_node_up(1, false); });
  const XferResult r = status_transfer(net, 0, 1, bytes);
  EXPECT_EQ(r.status, XferStatus::kNodeDown);
  // The in-flight message dies when the node does, not at its would-be
  // completion time.
  EXPECT_NEAR(r.seconds, kill_at, 1e-9);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, LinkDeathMidFlightKillsBypassTier) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  net.enable_faults();
  const std::uint64_t bytes = 16 * 1024 * 1024;
  const double full = net.uncongested_seconds(0, 1, bytes);
  const LinkId l = topo_.route(0, 1).back();
  engine_.schedule_at(des::from_seconds(full / 2),
                      [&net, l] { net.set_link_up(l, false); });
  const XferResult r = status_transfer(net, 0, 1, bytes);
  EXPECT_EQ(r.status, XferStatus::kLinkDown);
  EXPECT_NEAR(r.seconds, full / 2, 1e-9);
}

TEST_F(NetworkTest, NodeDeathKillsContendedWalkers) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  net.enable_faults();
  // Two senders to one destination: contention demotes the messages to
  // the packet-walker tier; the kill must chase the walkers' pending hop
  // events, not just the analytic completion.
  const std::uint64_t bytes = 16 * 1024 * 1024;
  const double full = net.uncongested_seconds(0, 2, bytes);
  std::vector<XferStatus> st(2, XferStatus::kOk);
  for (int i = 0; i < 2; ++i) {
    engine_.spawn([](SimNetwork& n, NodeId s,
                     XferStatus& out) -> des::Task<void> {
      out = co_await n.transfer(s, 2, 16 * 1024 * 1024);
    }(net, static_cast<NodeId>(i), st[i]));
  }
  engine_.schedule_at(des::from_seconds(full / 2),
                      [&net] { net.set_node_up(2, false); });
  engine_.run();
  EXPECT_EQ(st[0], XferStatus::kNodeDown);
  EXPECT_EQ(st[1], XferStatus::kNodeDown);
  EXPECT_EQ(net.stats().messages_dropped, 2u);
  EXPECT_LE(des::to_seconds(engine_.now()), full);
}

TEST_F(NetworkTest, FaultsEnabledButIdleChangesNothing) {
  SimNetwork net(engine_, fabrics::myrinet2000(), topo_);
  net.enable_faults();
  for (std::uint64_t bytes : {100ull, 4096ull, 1048576ull}) {
    const double expected = net.uncongested_seconds(0, 1, bytes);
    const XferResult r = status_transfer(net, 0, 1, bytes);
    EXPECT_EQ(r.status, XferStatus::kOk);
    EXPECT_NEAR(r.seconds, expected, expected * 0.01 + 1e-9) << bytes;
  }
  EXPECT_EQ(net.stats().messages_dropped, 0u);
}

}  // namespace
}  // namespace polaris::fabric
