#include "polaris/fabric/partition.hpp"

#include <gtest/gtest.h>

#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/support/check.hpp"

namespace polaris::fabric {
namespace {

TEST(Partition, BlockSplitIsContiguousAndBalanced) {
  const auto p =
      make_block_partition(100, {10, 10}, fabrics::myrinet2000(), 8);
  ASSERT_EQ(p.first_node.size(), 9u);
  EXPECT_EQ(p.first_node.front(), 0u);
  EXPECT_EQ(p.first_node.back(), 100u);
  std::size_t min_sz = 100, max_sz = 0;
  for (std::size_t s = 0; s < 8; ++s) {
    min_sz = std::min(min_sz, p.shard_size(s));
    max_sz = std::max(max_sz, p.shard_size(s));
  }
  EXPECT_LE(max_sz - min_sz, 1u);  // near-equal blocks
}

TEST(Partition, ShardOfAgreesWithTheBlockTable) {
  for (const std::size_t shards : {1u, 3u, 7u, 8u}) {
    const auto p =
        make_block_partition(53, {}, fabrics::myrinet2000(), shards);
    for (NodeId n = 0; n < 53; ++n) {
      const std::size_t s = p.shard_of(n);
      ASSERT_LT(s, shards);
      EXPECT_GE(n, p.first_node[s]);
      EXPECT_LT(n, p.first_node[s + 1]);
    }
  }
}

TEST(Partition, CutPairCountExcludesWithinShardPairs) {
  const auto p = make_block_partition(8, {}, fabrics::myrinet2000(), 2);
  // 64 ordered pairs total, 2 blocks of 4 keep 16 each within-shard.
  EXPECT_EQ(p.cut_host_pairs, 64u - 32u);
  const auto one = make_block_partition(8, {}, fabrics::myrinet2000(), 1);
  EXPECT_EQ(one.cut_host_pairs, 0u);
}

TEST(Partition, LookaheadComesFromTheMinCutPath) {
  const auto params = fabrics::myrinet2000();
  const auto torus = make_block_partition(64, {8, 8}, params, 4);
  EXPECT_EQ(torus.min_cut_switch_hops, 2u);
  EXPECT_DOUBLE_EQ(torus.lookahead_s, params.path_latency(2));
  // Flat (single-switch / tree) fabrics may join two hosts at one switch.
  const auto flat = make_block_partition(64, {}, params, 4);
  EXPECT_EQ(flat.min_cut_switch_hops, 1u);
  EXPECT_DOUBLE_EQ(flat.lookahead_s, params.path_latency(1));
  EXPECT_GT(torus.lookahead_s, 0.0);
  EXPECT_LT(flat.lookahead_s, torus.lookahead_s);
}

TEST(Partition, TopologyOverloadMatchesTheRawForm) {
  const auto params = fabrics::infiniband_4x();
  const Torus2D topo(8, 8);
  const auto a = make_block_partition(topo, params, 4);
  const auto b = make_block_partition(64, {8, 8}, params, 4);
  EXPECT_EQ(a.first_node, b.first_node);
  EXPECT_EQ(a.cut_host_pairs, b.cut_host_pairs);
  EXPECT_DOUBLE_EQ(a.lookahead_s, b.lookahead_s);
}

TEST(Partition, MinCutHopsIsASoundBoundOnTheRealTorus) {
  // Every cross-shard pair of a real torus must pay at least the claimed
  // min-cut switch hops — that bound is what makes the lookahead safe.
  const Torus2D topo(8, 8);
  const auto p = make_block_partition(topo, fabrics::myrinet2000(), 4);
  std::size_t observed_min = ~std::size_t{0};
  for (NodeId a = 0; a < 64; ++a) {
    for (NodeId b = 0; b < 64; ++b) {
      if (p.shard_of(a) == p.shard_of(b)) continue;
      observed_min = std::min(observed_min, topo.switch_hops(a, b));
    }
  }
  EXPECT_GE(observed_min, p.min_cut_switch_hops);
  EXPECT_EQ(observed_min, 2u);  // adjacent rows achieve the bound exactly
}

TEST(Partition, RejectsDegenerateShardCounts) {
  EXPECT_THROW(make_block_partition(4, {}, fabrics::myrinet2000(), 0),
               support::ContractViolation);
  EXPECT_THROW(make_block_partition(4, {}, fabrics::myrinet2000(), 5),
               support::ContractViolation);
}

TEST(ShardHandoff, IsAFixedSizeWireRecord) {
  EXPECT_EQ(sizeof(ShardHandoff), 40u);
  EXPECT_TRUE(std::is_trivially_copyable_v<ShardHandoff>);
}

}  // namespace
}  // namespace polaris::fabric
