#include "polaris/fabric/loggp.hpp"

#include <gtest/gtest.h>

namespace polaris::fabric {
namespace {

TEST(LogGP, ExtractionCopiesHostOverheads) {
  const auto p = fabrics::infiniband_4x();
  const auto lg = extract_loggp(p, 1);
  EXPECT_DOUBLE_EQ(lg.o_s, p.o_send);
  EXPECT_DOUBLE_EQ(lg.o_r, p.o_recv);
  EXPECT_DOUBLE_EQ(lg.g, p.gap);
  EXPECT_DOUBLE_EQ(lg.L, p.path_latency(1));
}

TEST(LogGP, KernelPathInflatesG) {
  const auto eth = extract_loggp(fabrics::gig_ethernet(), 1);
  // Wire alone would be 8 ns/byte; copies push G well above that.
  EXPECT_GT(eth.G, 1.0 / fabrics::gig_ethernet().link_bw * 1.3);
  const auto ib = extract_loggp(fabrics::infiniband_4x(), 1);
  EXPECT_DOUBLE_EQ(ib.G, 1.0 / fabrics::infiniband_4x().link_bw);
}

TEST(LogGP, OneWayPredictionShape) {
  LogGPParams lg;
  lg.L = 5e-6;
  lg.o_s = 1e-6;
  lg.o_r = 1e-6;
  lg.g = 2e-6;
  lg.G = 1e-9;
  EXPECT_DOUBLE_EQ(lg.one_way(1), 7e-6);
  EXPECT_DOUBLE_EQ(lg.one_way(0), 7e-6);
  EXPECT_NEAR(lg.one_way(1000001), 7e-6 + 1e-3, 1e-12);
}

TEST(LogGP, MessageRateBottleneckedByMaxOfGapAndOverhead) {
  LogGPParams lg;
  lg.o_s = 2e-6;
  lg.g = 1e-6;
  EXPECT_DOUBLE_EQ(lg.message_rate(), 5e5);
  lg.g = 4e-6;
  EXPECT_DOUBLE_EQ(lg.message_rate(), 2.5e5);
}

TEST(LogGP, UserLevelMessageRateOrderOfMagnitudeHigher) {
  const auto eth = extract_loggp(fabrics::gig_ethernet(), 1);
  const auto myri = extract_loggp(fabrics::myrinet2000(), 1);
  EXPECT_GT(myri.message_rate() / eth.message_rate(), 8.0);
}

TEST(LogGP, BandwidthIsInverseG) {
  const auto ib = extract_loggp(fabrics::infiniband_4x(), 1);
  EXPECT_DOUBLE_EQ(ib.bandwidth(), fabrics::infiniband_4x().link_bw);
}

TEST(LogGP, MoreSwitchHopsRaiseLOnly) {
  const auto one = extract_loggp(fabrics::myrinet2000(), 1);
  const auto five = extract_loggp(fabrics::myrinet2000(), 5);
  EXPECT_GT(five.L, one.L);
  EXPECT_DOUBLE_EQ(five.G, one.G);
  EXPECT_DOUBLE_EQ(five.o_s, one.o_s);
}

}  // namespace
}  // namespace polaris::fabric
