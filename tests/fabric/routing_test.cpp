// Multipath enumeration (Topology::route_choices / route_k) and the
// SimNetwork adaptive routing mode built on it.
//
// The contract under test, in order of importance:
//   1. Choice 0 IS the oblivious route — same cached object, not a copy —
//      so consumers that never ask for k > 0 replay history exactly.
//   2. Every alternate is minimal (same hop count as the oblivious path)
//      and a real path (distinct from its siblings, cached stably).
//   3. Adaptive selection is a pure function of simulator state: two
//      identical runs make identical decisions, and under a synthetic
//      incast it spreads load across equal-cost uplinks that oblivious
//      routing would leave idle.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/support/check.hpp"

namespace polaris::fabric {
namespace {

// ---------------------------------------------------------------------------
// Path-set enumeration.

TEST(RouteChoices, SinglePathTopologiesReportOne) {
  const Crossbar xbar(8);
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(xbar.route_choices(a, b), 1u);
    }
  }
}

TEST(RouteChoices, FatTreeWidthFollowsLocality) {
  const FatTree t(4);  // 16 hosts, 4 per pod, 2 per edge switch
  EXPECT_EQ(t.route_choices(0, 0), 1u);   // self
  EXPECT_EQ(t.route_choices(0, 1), 1u);   // same edge switch
  EXPECT_EQ(t.route_choices(0, 2), 2u);   // same pod: k/2 agg choices
  EXPECT_EQ(t.route_choices(0, 4), 4u);   // cross-pod: (k/2)^2 cores
  EXPECT_EQ(t.route_choices(15, 0), 4u);
}

TEST(RouteChoices, TorusWidthCountsMovingDimensions) {
  const Torus2D t2(4, 4);
  EXPECT_EQ(t2.route_choices(0, 0), 1u);
  EXPECT_EQ(t2.route_choices(0, 1), 1u);   // x only
  EXPECT_EQ(t2.route_choices(0, 4), 1u);   // y only
  EXPECT_EQ(t2.route_choices(0, 5), 2u);   // both: XY and YX

  const Torus3D t3(3, 3, 3);
  EXPECT_EQ(t3.route_choices(0, 1), 1u);        // 1 moving dim: 1! = 1
  EXPECT_EQ(t3.route_choices(0, 4), 2u);        // x+y move: 2! = 2
  EXPECT_EQ(t3.route_choices(0, 13), 6u);       // all three move: 3! = 6
}

TEST(RouteK, ChoiceZeroIsTheObliviousRouteObject) {
  const FatTree ft(4);
  const Torus2D t2(4, 4);
  const Torus3D t3(3, 3, 3);
  // Same cached vector, by address — not merely an equal copy.
  EXPECT_EQ(&ft.route_k(0, 4, 0), &ft.route(0, 4));
  EXPECT_EQ(&t2.route_k(0, 5, 0), &t2.route(0, 5));
  EXPECT_EQ(&t3.route_k(0, 13, 0), &t3.route(0, 13));
}

TEST(RouteK, AlternateReferencesAreStable) {
  const FatTree t(4);
  const std::vector<LinkId>* first = &t.route_k(0, 4, 3);
  EXPECT_EQ(first, &t.route_k(0, 4, 3));
}

TEST(RouteK, OutOfRangeChoiceIsAContractViolation) {
  const FatTree t(4);
  EXPECT_THROW(t.route_k(0, 1, 1), support::ContractViolation);
  EXPECT_THROW(t.route_k(0, 4, 4), support::ContractViolation);
}

/// Every alternate must be minimal (same hop count as the oblivious path)
/// and the choices must be pairwise distinct.
void expect_minimal_distinct(const Topology& t, NodeId src, NodeId dst) {
  const std::size_t choices = t.route_choices(src, dst);
  const std::size_t hops = t.route(src, dst).size();
  std::set<std::vector<LinkId>> seen;
  for (std::size_t k = 0; k < choices; ++k) {
    const std::vector<LinkId>& path = t.route_k(src, dst, k);
    EXPECT_EQ(path.size(), hops) << t.name() << " " << src << "->" << dst
                                 << " k=" << k;
    EXPECT_TRUE(seen.insert(path).second)
        << "duplicate path " << src << "->" << dst << " k=" << k;
  }
  EXPECT_EQ(seen.size(), choices);
}

TEST(RouteK, FatTreeAlternatesAreMinimalAndDistinct) {
  const FatTree t(4);
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst : {NodeId{2}, NodeId{5}, NodeId{10}, NodeId{15}}) {
      if (src == dst) continue;
      expect_minimal_distinct(t, src, dst);
    }
  }
}

TEST(RouteK, TorusAlternatesAreMinimalAndDistinct) {
  const Torus2D t2(4, 4);
  expect_minimal_distinct(t2, 0, 5);
  expect_minimal_distinct(t2, 3, 12);
  expect_minimal_distinct(t2, 1, 14);

  const Torus3D t3(3, 4, 2);
  expect_minimal_distinct(t3, 0, 13);   // multiple moving dims
  expect_minimal_distinct(t3, 0, 23);   // all dims move
  expect_minimal_distinct(t3, 5, 18);
}

TEST(RouteK, CrossPodAlternatesSpreadOverBothUplinks) {
  const FatTree t(4);
  // The second link of a cross-pod path is the edge->aggregation uplink;
  // the 4 core choices must exercise both of the edge switch's uplinks.
  std::set<LinkId> uplinks;
  for (std::size_t k = 0; k < t.route_choices(0, 4); ++k) {
    uplinks.insert(t.route_k(0, 4, k)[1]);
  }
  EXPECT_EQ(uplinks.size(), 2u);  // k/2 aggregation switches
}

// ---------------------------------------------------------------------------
// Adaptive routing on a live network.

struct DoneCount {
  int ok = 0;
  int node_down = 0;
  int link_down = 0;

  static void cb(void* ctx, XferStatus status) {
    auto& d = *static_cast<DoneCount*>(ctx);
    switch (status) {
      case XferStatus::kOk: ++d.ok; break;
      case XferStatus::kNodeDown: ++d.node_down; break;
      case XferStatus::kLinkDown: ++d.link_down; break;
    }
  }
};

/// The synthetic incast: hosts 0 and 1 (same edge switch, pod 0) each send
/// to hosts 4 and 6 (pod 1).  Both destinations map to the SAME oblivious
/// edge->agg uplink (dst-mod selection), so oblivious routing funnels all
/// four messages through one uplink while its equal-cost twin sits idle.
struct IncastRun {
  des::SimTime final_time = 0;
  NetworkStats stats{};
  double busy_oblivious_uplink = 0.0;
  double busy_alternate_uplink = 0.0;
  DoneCount done{};
};

IncastRun run_incast(const FatTree& topo, RoutingMode mode) {
  des::Engine engine;
  SimNetwork net(engine, fabrics::myrinet2000(), topo);
  net.set_routing(mode);

  // Identify the two edge0 uplinks from the enumerated path set.
  const LinkId oblivious_up = topo.route(0, 4)[1];
  LinkId alternate_up = oblivious_up;
  for (std::size_t k = 1; k < topo.route_choices(0, 4); ++k) {
    const LinkId l = topo.route_k(0, 4, k)[1];
    if (l != oblivious_up) {
      alternate_up = l;
      break;
    }
  }
  EXPECT_NE(alternate_up, oblivious_up);

  IncastRun out;
  constexpr std::uint64_t kBytes = 256 * 1024;
  for (NodeId src : {NodeId{0}, NodeId{1}}) {
    for (NodeId dst : {NodeId{4}, NodeId{6}}) {
      net.transfer_raw(src, dst, kBytes, &DoneCount::cb, &out.done);
    }
  }
  engine.run();

  out.final_time = engine.now();
  out.stats = net.stats();
  out.busy_oblivious_uplink = net.link_busy_seconds(oblivious_up);
  out.busy_alternate_uplink = net.link_busy_seconds(alternate_up);
  return out;
}

TEST(AdaptiveRouting, ObliviousFunnelsIncastThroughOneUplink) {
  const FatTree topo(4);
  const IncastRun r = run_incast(topo, RoutingMode::kOblivious);
  EXPECT_EQ(r.done.ok, 4);
  EXPECT_GT(r.busy_oblivious_uplink, 0.0);
  EXPECT_EQ(r.busy_alternate_uplink, 0.0);
  EXPECT_EQ(r.stats.adaptive_decisions, 0u);
  EXPECT_EQ(r.stats.adaptive_rerouted, 0u);
}

TEST(AdaptiveRouting, AdaptiveSpreadsIncastAcrossEqualCostUplinks) {
  const FatTree topo(4);
  const IncastRun adaptive = run_incast(topo, RoutingMode::kAdaptive);
  EXPECT_EQ(adaptive.done.ok, 4);
  EXPECT_GT(adaptive.stats.adaptive_decisions, 0u);
  EXPECT_GT(adaptive.stats.adaptive_rerouted, 0u);
  EXPECT_GT(adaptive.busy_oblivious_uplink, 0.0);
  EXPECT_GT(adaptive.busy_alternate_uplink, 0.0);

  // Dodging the hot uplink must not make anyone slower than the funnel.
  const IncastRun oblivious = run_incast(topo, RoutingMode::kOblivious);
  EXPECT_LE(adaptive.final_time, oblivious.final_time);
}

TEST(AdaptiveRouting, DecisionsAreDeterministic) {
  const FatTree topo(4);
  const IncastRun a = run_incast(topo, RoutingMode::kAdaptive);
  const IncastRun b = run_incast(topo, RoutingMode::kAdaptive);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.stats.adaptive_rerouted, b.stats.adaptive_rerouted);
  EXPECT_EQ(a.stats.messages_bypassed, b.stats.messages_bypassed);
  EXPECT_EQ(a.stats.flights_materialized, b.stats.flights_materialized);
  EXPECT_DOUBLE_EQ(a.busy_oblivious_uplink, b.busy_oblivious_uplink);
  EXPECT_DOUBLE_EQ(a.busy_alternate_uplink, b.busy_alternate_uplink);
}

TEST(AdaptiveRouting, ReroutesAroundDownedLinkObliviousRefuses) {
  const FatTree topo(4);
  const LinkId oblivious_up = topo.route(0, 4)[1];

  for (const RoutingMode mode :
       {RoutingMode::kOblivious, RoutingMode::kAdaptive}) {
    des::Engine engine;
    SimNetwork net(engine, fabrics::myrinet2000(), topo);
    net.set_routing(mode);
    net.enable_faults();
    net.set_link_up(oblivious_up, false);

    DoneCount done;
    net.transfer_raw(0, 4, 4096, &DoneCount::cb, &done);
    engine.run();

    if (mode == RoutingMode::kOblivious) {
      EXPECT_EQ(done.link_down, 1);  // deterministic route hits the dead link
      EXPECT_EQ(done.ok, 0);
    } else {
      EXPECT_EQ(done.ok, 1);  // candidates crossing the dead link are skipped
      EXPECT_EQ(done.link_down, 0);
      EXPECT_GE(net.stats().adaptive_rerouted, 1u);
    }
  }
}

}  // namespace
}  // namespace polaris::fabric
