#include "polaris/fabric/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "polaris/support/check.hpp"

namespace polaris::fabric {
namespace {

TEST(Crossbar, TwoHopsBetweenAnyDistinctPair) {
  Crossbar x(8);
  EXPECT_EQ(x.node_count(), 8u);
  EXPECT_EQ(x.switch_count(), 1u);
  EXPECT_EQ(x.link_count(), 16u);  // up+down per host
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId b = 0; b < 8; ++b) {
      EXPECT_EQ(x.hop_count(a, b), a == b ? 0u : 2u);
    }
  }
}

TEST(Crossbar, SharedDownlinkIsSameLink) {
  Crossbar x(4);
  // Routes 0->3 and 1->3 must share the switch->3 downlink.
  const auto r0 = x.route(0, 3);
  const auto r1 = x.route(1, 3);
  EXPECT_EQ(r0.back(), r1.back());
  EXPECT_NE(r0.front(), r1.front());
}

TEST(Crossbar, SelfRouteIsEmpty) {
  Crossbar x(4);
  EXPECT_TRUE(x.route(2, 2).empty());
}

TEST(FatTree, SizesMatchFormula) {
  FatTree t(4);
  EXPECT_EQ(t.node_count(), 16u);      // k^3/4
  EXPECT_EQ(t.switch_count(), 20u);    // k^2 + k^2/4
  FatTree t8(8);
  EXPECT_EQ(t8.node_count(), 128u);
}

TEST(FatTree, HopCountsByLocality) {
  FatTree t(4);  // pods of 4 hosts, edges of 2 hosts
  EXPECT_EQ(t.hop_count(0, 1), 2u);   // same edge switch
  EXPECT_EQ(t.hop_count(0, 2), 4u);   // same pod, different edge
  EXPECT_EQ(t.hop_count(0, 15), 6u);  // cross-pod via core
}

TEST(FatTree, RouteEndsAreConsistent) {
  FatTree t(4);
  for (NodeId a = 0; a < 16; ++a) {
    for (NodeId b = 0; b < 16; ++b) {
      if (a == b) continue;
      const auto& path = t.route(a, b);
      EXPECT_GE(path.size(), 2u);
      EXPECT_LE(path.size(), 6u);
      // No repeated links within a path (loop-free routing).
      std::set<LinkId> seen(path.begin(), path.end());
      EXPECT_EQ(seen.size(), path.size());
    }
  }
}

TEST(FatTree, DestinationSpreadsAcrossCores) {
  // Different destinations from one source should not all share one core
  // uplink (D-mod-k spreading).
  FatTree t(4);
  std::set<LinkId> first_uplinks;
  for (NodeId dst = 4; dst < 16; ++dst) {  // cross-pod from host 0
    const auto& path = t.route(0, dst);
    if (path.size() == 6) first_uplinks.insert(path[1]);  // edge->agg choice
  }
  EXPECT_GT(first_uplinks.size(), 1u);
}

TEST(FatTree, RadixForCoversRequestedNodes) {
  EXPECT_EQ(FatTree::radix_for(16), 4u);
  EXPECT_EQ(FatTree::radix_for(17), 6u);
  EXPECT_EQ(FatTree::radix_for(128), 8u);
  EXPECT_EQ(FatTree::radix_for(1024), 16u);
}

TEST(FatTree, OddRadixRejected) {
  EXPECT_THROW(FatTree(5), support::ContractViolation);
}

TEST(Torus2D, HopCountIsManhattanPlusEndpoints) {
  Torus2D t(4, 4);
  EXPECT_EQ(t.node_count(), 16u);
  // (0,0) -> (1,0): inject + 1 mesh hop + eject = 3 links.
  EXPECT_EQ(t.hop_count(0, 1), 3u);
  // (0,0) -> (2,2): inject + 4 + eject.
  EXPECT_EQ(t.hop_count(0, 10), 6u);
}

TEST(Torus2D, WraparoundTakesShortestDirection) {
  Torus2D t(8, 2);
  // 0 -> 7 in x: wrap backwards = 1 mesh hop, not 7.
  EXPECT_EQ(t.hop_count(0, 7), 3u);
}

TEST(Torus2D, DiameterMatchesTheory) {
  Torus2D t(4, 4);
  // Max mesh distance = 2+2, + inject/eject.
  EXPECT_EQ(t.diameter(), 6u);
}

TEST(Torus3D, HopCountAndWrap) {
  Torus3D t(4, 4, 4);
  EXPECT_EQ(t.node_count(), 64u);
  // (0,0,0)->(1,1,1): 3 mesh hops + 2 endpoint links.
  const NodeId corner = 1 + 1 * 4 + 1 * 16;
  EXPECT_EQ(t.hop_count(0, corner), 5u);
  // Wrap in z: (0,0,0)->(0,0,3) is one hop backwards.
  EXPECT_EQ(t.hop_count(0, 48), 3u);
}

TEST(Torus3D, RoutesAreLoopFree) {
  Torus3D t(3, 3, 3);
  for (NodeId a = 0; a < t.node_count(); ++a) {
    for (NodeId b = 0; b < t.node_count(); ++b) {
      if (a == b) continue;
      const auto& path = t.route(a, b);
      std::set<LinkId> seen(path.begin(), path.end());
      EXPECT_EQ(seen.size(), path.size());
    }
  }
}

TEST(Topology, ClosedFormDiameterMatchesScanAtSmallScale) {
  // The closed forms must agree with brute force wherever brute force is
  // exact (node_count <= the scan cap).
  const Crossbar x(16);
  EXPECT_EQ(x.diameter(), x.scan_diameter());
  const FatTree ft(4);
  EXPECT_EQ(ft.diameter(), ft.scan_diameter());
  const Torus2D t2(4, 6);
  EXPECT_EQ(t2.diameter(), t2.scan_diameter());
  const Torus3D t3(3, 4, 3);
  EXPECT_EQ(t3.diameter(), t3.scan_diameter());
}

TEST(Topology, ClosedFormDiameterIsExactBeyondScanCap) {
  // A 32x32 torus has 1024 hosts; the old sampled scan looked at the
  // first 128 only — a corner of the mesh — and under-reported.
  const Torus2D big(32, 32);
  EXPECT_EQ(big.diameter(), 2u + 16u + 16u);
  EXPECT_LT(big.scan_diameter(128), big.diameter());
  // Fat trees are immune by construction (6 links at any radix), but the
  // closed form must still hold at scale.
  const FatTree ft16(16);  // 1024 hosts
  EXPECT_EQ(ft16.diameter(), 6u);
}

TEST(Topology, RouteRejectsOutOfRangeHosts) {
  Crossbar x(4);
  EXPECT_THROW((void)x.route(0, 4), support::ContractViolation);
}

TEST(MakeDefaultTopology, SmallGetsCrossbarLargeGetsFatTree) {
  auto small = make_default_topology(8);
  EXPECT_EQ(small->name(), "crossbar");
  auto large = make_default_topology(100);
  EXPECT_EQ(large->name(), "fat-tree-k8");
  EXPECT_GE(large->node_count(), 100u);
}

TEST(Topology, RouteCacheReturnsSameObject) {
  FatTree t(4);
  const auto& r1 = t.route(0, 5);
  const auto& r2 = t.route(0, 5);
  EXPECT_EQ(&r1, &r2);
}

}  // namespace
}  // namespace polaris::fabric
