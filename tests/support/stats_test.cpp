#include "polaris/support/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "polaris/support/rng.hpp"

namespace polaris::support {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownSequence) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic sequence is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeEqualsSinglePass) {
  Random r(1);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = r.normal(3.0, 7.0);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copies
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Summary, PercentilesOfKnownData) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.percentile(0), 1.0, 1e-12);
  EXPECT_NEAR(s.percentile(100), 100.0, 1e-12);
  EXPECT_NEAR(s.percentile(99), 99.01, 0.1);
}

TEST(Summary, SingleSampleAllPercentilesEqual) {
  Summary s;
  s.add(42.0);
  EXPECT_EQ(s.percentile(0), 42.0);
  EXPECT_EQ(s.percentile(50), 42.0);
  EXPECT_EQ(s.percentile(100), 42.0);
}

TEST(Summary, MeanAndStddev) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, PercentileRejectsOutOfRange) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW((void)s.percentile(-1), ContractViolation);
  EXPECT_THROW((void)s.percentile(101), ContractViolation);
}

TEST(Summary, AddAfterPercentileResorts) {
  Summary s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
  s.add(0.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(Histogram, LinearBinning) {
  auto h = Histogram::linear(0.0, 10.0, 10);
  h.add(0.0);
  h.add(0.999);
  h.add(5.0);
  h.add(9.999);
  h.add(-1.0);  // underflow
  h.add(10.0);  // overflow (hi edge is exclusive)
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(5), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, Log2Binning) {
  auto h = Histogram::log2(1.0, 10);  // bins [1,2) [2,4) [4,8) ...
  h.add(1.0);
  h.add(1.9);
  h.add(2.0);
  h.add(7.9);
  h.add(512.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 16.0);
}

TEST(Histogram, WeightedAdd) {
  auto h = Histogram::linear(0.0, 4.0, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.count(1), 10u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, AsciiRendersBars) {
  auto h = Histogram::linear(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('\n'), std::string::npos);
}

}  // namespace
}  // namespace polaris::support
