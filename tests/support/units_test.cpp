#include "polaris/support/units.hpp"

#include <gtest/gtest.h>

namespace polaris::support {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1 KiB");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(4 * MiB), "4 MiB");
  EXPECT_EQ(format_bytes(3 * GiB), "3 GiB");
}

TEST(Units, FormatTimePicksUnit) {
  EXPECT_EQ(format_time(0.0), "0 s");
  EXPECT_EQ(format_time(5e-9), "5 ns");
  EXPECT_EQ(format_time(12e-6), "12 us");
  EXPECT_EQ(format_time(3.5e-3), "3.5 ms");
  EXPECT_EQ(format_time(2.0), "2 s");
  EXPECT_EQ(format_time(600.0), "10 min");
  EXPECT_EQ(format_time(7200.0), "2 h");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(500.0), "500 B/s");
  EXPECT_EQ(format_rate(1.25e9), "1.25 GB/s");
}

TEST(Units, FormatFlops) {
  EXPECT_EQ(format_flops(2e9), "2 Gflops");
  EXPECT_EQ(format_flops(1.5e15), "1.5 Pflops");
}

TEST(Units, FormatDollars) {
  EXPECT_EQ(format_dollars(950.0), "$950");
  EXPECT_EQ(format_dollars(2500.0), "$2.5k");
  EXPECT_EQ(format_dollars(1.2e6), "$1.2M");
  EXPECT_EQ(format_dollars(3.4e9), "$3.4B");
}

TEST(Units, FormatWatts) {
  EXPECT_EQ(format_watts(850.0), "850 W");
  EXPECT_EQ(format_watts(1.2e6), "1.2 MW");
}

TEST(Units, Constants) {
  EXPECT_EQ(KiB, 1024u);
  EXPECT_EQ(MiB, 1024u * 1024u);
  EXPECT_EQ(GiB, 1024u * 1024u * 1024u);
}

}  // namespace
}  // namespace polaris::support
