#include "polaris/support/arrival.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace polaris::support {
namespace {

TEST(ArrivalProcess, GapsAreStrictlyPositive) {
  for (const auto spec :
       {ArrivalSpec::poisson(1e6), ArrivalSpec::bursty(1e6)}) {
    ArrivalProcess p(spec, 42);
    for (int i = 0; i < 10'000; ++i) {
      EXPECT_GT(p.next(), 0.0);
    }
  }
}

TEST(ArrivalProcess, SameSeedReplaysExactly) {
  for (const auto spec :
       {ArrivalSpec::poisson(50'000.0), ArrivalSpec::bursty(50'000.0)}) {
    ArrivalProcess a(spec, 7);
    ArrivalProcess b(spec, 7);
    for (int i = 0; i < 5'000; ++i) {
      EXPECT_EQ(a.next(), b.next());
      EXPECT_EQ(a.in_burst(), b.in_burst());
    }
  }
}

TEST(ArrivalProcess, DifferentSeedsDiverge) {
  ArrivalProcess a(ArrivalSpec::poisson(1000.0), 1);
  ArrivalProcess b(ArrivalSpec::poisson(1000.0), 2);
  EXPECT_NE(a.next(), b.next());
}

TEST(ArrivalProcess, PoissonLongRunRateMatchesSpec) {
  const double rate = 200'000.0;
  ArrivalProcess p(ArrivalSpec::poisson(rate), 3);
  const int n = 200'000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += p.next();
  const double measured = n / total;
  EXPECT_NEAR(measured, rate, rate * 0.02);
  EXPECT_FALSE(p.in_burst());  // Poisson never modulates
}

// The MMPP solver normalizes the calm/burst rates so that the long-run
// average is the nominal rate: a bursty process at rate R is directly
// load-comparable to Poisson at rate R.
TEST(ArrivalProcess, BurstyLongRunRateMatchesNominal) {
  const double rate = 100'000.0;
  ArrivalProcess p(ArrivalSpec::bursty(rate, /*burst_factor=*/8.0,
                                       /*burst_fraction=*/0.1,
                                       /*mean_burst_s=*/2e-3),
                   11);
  const int n = 500'000;
  double total = 0.0;
  for (int i = 0; i < n; ++i) total += p.next();
  EXPECT_NEAR(n / total, rate, rate * 0.05);
}

TEST(ArrivalProcess, BurstyVisitsBothStatesAtConfiguredFraction) {
  const double burst_fraction = 0.2;
  ArrivalProcess p(
      ArrivalSpec::bursty(50'000.0, 10.0, burst_fraction, 1e-3), 13);
  const int n = 400'000;
  double total = 0.0;
  double burst_time = 0.0;
  int burst_arrivals = 0;
  for (int i = 0; i < n; ++i) {
    const double gap = p.next();
    total += gap;
    // Attribute each gap to the state its arrival lands in: summing gaps
    // recovers elapsed time, so burst_time converges on time-in-burst.
    if (p.in_burst()) {
      burst_time += gap;
      ++burst_arrivals;
    }
  }
  // Time share = the configured stationary fraction...
  EXPECT_NEAR(burst_time / total, burst_fraction, 0.05);
  // ...but bursts arrive burst_factor times faster, so the ARRIVAL share
  // is amplified: f*B / (f*B + (1-f)) = 0.71 for f=0.2, B=10.
  const double f = burst_fraction, b = 10.0;
  const double arrivals_share = f * b / (f * b + (1.0 - f));
  EXPECT_NEAR(static_cast<double>(burst_arrivals) / n, arrivals_share, 0.1);
}

// Regression: the bursty process used to cold-start pinned to the calm
// state with a calm dwell draw, so a run much shorter than one dwell cycle
// offered ~rate/(1 + f*(B-1)) instead of the nominal rate.  With f=0.5 and
// B=9 that is a 5x under-offer — the stationary start (burst with
// probability f) must keep the short-horizon expectation at `rate`.
TEST(ArrivalProcess, BurstyShortHorizonMeanRateIsStationary) {
  const double rate = 100'000.0;
  const double f = 0.5, factor = 9.0, mean_burst_s = 10e-3;
  // Observation window far below the dwell scale: most processes never
  // leave their initial state inside it.
  const double window_s = 1e-3;
  const int trials = 4000;
  std::uint64_t arrivals = 0;
  for (int t = 0; t < trials; ++t) {
    ArrivalProcess p(ArrivalSpec::bursty(rate, factor, f, mean_burst_s),
                     /*seed=*/1000 + static_cast<std::uint64_t>(t));
    double elapsed = p.next();
    while (elapsed < window_s) {
      ++arrivals;
      elapsed += p.next();
    }
  }
  const double measured =
      static_cast<double>(arrivals) / (trials * window_s);
  // Pre-fix this measures ~0.2 * rate (plus a sliver of switching); the
  // stationary start lands within sampling noise of the nominal rate.
  EXPECT_NEAR(measured, rate, rate * 0.10);
}

// The initial state itself must follow the stationary law across seeds.
TEST(ArrivalProcess, BurstyInitialStateMatchesBurstFraction) {
  const double f = 0.25;
  int in_burst = 0;
  const int trials = 8000;
  for (int t = 0; t < trials; ++t) {
    ArrivalProcess p(ArrivalSpec::bursty(50'000.0, 8.0, f, 2e-3),
                     static_cast<std::uint64_t>(t));
    in_burst += p.in_burst() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(in_burst) / trials, f, 0.03);
}

TEST(ArrivalProcess, BurstStateArrivesFasterThanCalm) {
  ArrivalProcess p(ArrivalSpec::bursty(10'000.0, 16.0, 0.1, 5e-3), 17);
  double calm_total = 0.0, burst_total = 0.0;
  int calm_n = 0, burst_n = 0;
  for (int i = 0; i < 300'000; ++i) {
    const double gap = p.next();
    if (p.in_burst()) {
      burst_total += gap;
      ++burst_n;
    } else {
      calm_total += gap;
      ++calm_n;
    }
  }
  ASSERT_GT(calm_n, 0);
  ASSERT_GT(burst_n, 0);
  const double calm_mean = calm_total / calm_n;
  const double burst_mean = burst_total / burst_n;
  EXPECT_LT(burst_mean, calm_mean / 4.0);  // nominally 16x faster
}

}  // namespace
}  // namespace polaris::support
