#include "polaris/support/thread_budget.hpp"

#include <gtest/gtest.h>

#include <utility>

namespace polaris::support {
namespace {

TEST(WorkerBudget, CallerIsAlwaysOneOfItsOwnWorkers) {
  WorkerBudget b(4);
  EXPECT_EQ(b.total(), 4u);
  const WorkerBudget::Lease l = b.acquire(1);
  EXPECT_EQ(l.workers(), 1u);
  // One worker means zero extra threads on loan.
  EXPECT_EQ(b.in_use(), 0u);
}

TEST(WorkerBudget, AcquireClampsToWhatIsLeft) {
  WorkerBudget b(4);
  const WorkerBudget::Lease outer = b.acquire(8);
  EXPECT_EQ(outer.workers(), 4u);
  EXPECT_EQ(b.in_use(), 3u);
  // The ledger is drained: a nested layer degrades to serial instead of
  // oversubscribing.
  const WorkerBudget::Lease inner = b.acquire(4);
  EXPECT_EQ(inner.workers(), 1u);
  EXPECT_EQ(b.in_use(), 3u);
}

TEST(WorkerBudget, PartialDrainGrantsTheRemainder) {
  WorkerBudget b(6);
  const WorkerBudget::Lease outer = b.acquire(3);  // charges 2
  const WorkerBudget::Lease inner = b.acquire(8);
  // 6 total - 2 on loan = 4 left, plus... the caller counts within the
  // grant, so the remainder itself is the grant.
  EXPECT_EQ(inner.workers(), 4u);
  EXPECT_EQ(b.in_use(), 5u);
  (void)outer;
}

TEST(WorkerBudget, AcquireExactHonorsExplicitOverrides) {
  WorkerBudget b(2);
  const WorkerBudget::Lease l = b.acquire_exact(6);
  EXPECT_EQ(l.workers(), 6u);
  // Still charged, so nested layers see the drain (floored at zero left).
  const WorkerBudget::Lease inner = b.acquire(4);
  EXPECT_EQ(inner.workers(), 1u);
}

TEST(WorkerBudget, ReleaseReturnsSlotsToTheLedger) {
  WorkerBudget b(4);
  {
    const WorkerBudget::Lease l = b.acquire(4);
    EXPECT_EQ(b.in_use(), 3u);
  }
  EXPECT_EQ(b.in_use(), 0u);
  const WorkerBudget::Lease again = b.acquire(4);
  EXPECT_EQ(again.workers(), 4u);
}

TEST(WorkerBudget, LeaseMoveTransfersOwnership) {
  WorkerBudget b(4);
  WorkerBudget::Lease a = b.acquire(3);
  WorkerBudget::Lease m = std::move(a);
  EXPECT_EQ(m.workers(), 3u);
  EXPECT_EQ(a.workers(), 0u);
  EXPECT_EQ(b.in_use(), 2u);
  m.release();
  EXPECT_EQ(b.in_use(), 0u);
  m.release();  // idempotent
  EXPECT_EQ(b.in_use(), 0u);
}

TEST(WorkerBudget, MinimumGrantIsOne) {
  WorkerBudget b(1);
  const WorkerBudget::Lease a = b.acquire(5);
  EXPECT_EQ(a.workers(), 1u);
  const WorkerBudget::Lease z = b.acquire(0);
  EXPECT_EQ(z.workers(), 1u);
}

TEST(WorkerBudget, TotalFloorsAtOne) {
  const WorkerBudget b(0);  // reads env / hardware, never below 1
  EXPECT_GE(b.total(), 1u);
}

TEST(WorkerBudget, ProcessWideInstanceIsStable) {
  WorkerBudget& a = WorkerBudget::instance();
  WorkerBudget& b = WorkerBudget::instance();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.total(), 1u);
}

}  // namespace
}  // namespace polaris::support
