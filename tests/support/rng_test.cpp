#include "polaris/support/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace polaris::support {
namespace {

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Xoshiro256, SplitProducesIndependentStream) {
  Xoshiro256 parent(7);
  Xoshiro256 child = parent.split();
  // Child must not replay the parent's upcoming values.
  Xoshiro256 parent_copy(7);
  (void)parent_copy();  // consume the draw split() used
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (child() == parent_copy());
  EXPECT_LT(same, 2);
}

TEST(Random, UniformInUnitInterval) {
  Random r(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Random, UniformRangeRespectsBounds) {
  Random r(4);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-5.0, 10.0);
    EXPECT_GE(x, -5.0);
    EXPECT_LT(x, 10.0);
  }
}

TEST(Random, UniformIntInclusiveBoundsAndCoverage) {
  Random r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.uniform_int(0, 9);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 9);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit in 1000 draws
}

TEST(Random, UniformIntDegenerateRange) {
  Random r(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(Random, UniformIntRejectsInvertedRange) {
  Random r(6);
  EXPECT_THROW((void)r.uniform_int(3, 2), ContractViolation);
}

TEST(Random, ExponentialMeanMatchesRate) {
  Random r(8);
  const double lambda = 0.25;  // mean 4
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(lambda);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Random, ExponentialIsNonNegative) {
  Random r(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.exponential(2.0), 0.0);
}

TEST(Random, WeibullShapeOneIsExponential) {
  // Weibull(k=1, scale) == Exponential(rate 1/scale): check mean.
  Random r(10);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.weibull(1.0, 3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Random, WeibullMeanMatchesGammaFormula) {
  // E[Weibull(k, s)] = s * Gamma(1 + 1/k).
  Random r(11);
  const double k = 2.0, s = 5.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.weibull(k, s);
  EXPECT_NEAR(sum / n, s * std::tgamma(1.0 + 1.0 / k), 0.1);
}

TEST(Random, LogUniformWithinBounds) {
  Random r(12);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.log_uniform(1.0, 1e6);
    EXPECT_GE(x, 1.0 - 1e-12);
    EXPECT_LE(x, 1e6 + 1e-6);
  }
}

TEST(Random, LogUniformMedianIsGeometricMean) {
  Random r(13);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(r.log_uniform(1.0, 1e4));
  std::nth_element(xs.begin(), xs.begin() + 50000, xs.end());
  EXPECT_NEAR(std::log10(xs[50000]), 2.0, 0.1);  // sqrt(1*1e4) = 100
}

TEST(Random, NormalMomentsMatch) {
  Random r(14);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Random, PowerOfTwoBoundsAndForm) {
  Random r(15);
  for (int i = 0; i < 1000; ++i) {
    const auto x = r.power_of_two(2, 8);
    EXPECT_GE(x, 4);
    EXPECT_LE(x, 256);
    EXPECT_EQ(x & (x - 1), 0) << x << " is not a power of two";
  }
}

TEST(Random, BernoulliFrequency) {
  Random r(16);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Random, SplitStreamsAreDecorrelated) {
  Random parent(17);
  Random a = parent.split();
  Random b = parent.split();
  // Crude correlation check between sibling streams.
  double dot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    dot += (a.uniform() - 0.5) * (b.uniform() - 0.5);
  }
  EXPECT_NEAR(dot / n, 0.0, 0.005);
}

}  // namespace
}  // namespace polaris::support
