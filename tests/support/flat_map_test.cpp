#include "polaris/support/flat_map.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>

#include "polaris/support/rng.hpp"

namespace polaris::support {
namespace {

TEST(FlatMap64, InsertFindErase) {
  FlatMap64<int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(42), nullptr);
  m[42] = 7;
  ASSERT_NE(m.find(42), nullptr);
  EXPECT_EQ(*m.find(42), 7);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.erase(42));
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_FALSE(m.erase(42));
  EXPECT_EQ(m.size(), 0u);
}

TEST(FlatMap64, OperatorBracketDefaultConstructs) {
  FlatMap64<std::uint64_t> m;
  EXPECT_EQ(m[5], 0u);
  m[5] += 3;
  EXPECT_EQ(m[5], 3u);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap64, GrowsPastInitialCapacity) {
  FlatMap64<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 10'000; ++k) m[k * 977] = k;
  EXPECT_EQ(m.size(), 10'000u);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    const auto* v = m.find(k * 977);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
}

TEST(FlatMap64, ZeroAndMaxKeys) {
  // No reserved sentinel keys: 0 and ~0 are ordinary.
  FlatMap64<int> m;
  m[0] = 1;
  m[~std::uint64_t{0}] = 2;
  ASSERT_NE(m.find(0), nullptr);
  ASSERT_NE(m.find(~std::uint64_t{0}), nullptr);
  EXPECT_EQ(*m.find(0), 1);
  EXPECT_EQ(*m.find(~std::uint64_t{0}), 2);
}

TEST(FlatMap64, BackwardShiftKeepsProbeChainsIntact) {
  // Sequential keys collide heavily after mixing in small tables; erase
  // from the middle of chains and verify every survivor is still found.
  FlatMap64<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 64; ++k) m[k] = k;
  for (std::uint64_t k = 0; k < 64; k += 3) EXPECT_TRUE(m.erase(k));
  for (std::uint64_t k = 0; k < 64; ++k) {
    if (k % 3 == 0) {
      EXPECT_EQ(m.find(k), nullptr) << k;
    } else {
      ASSERT_NE(m.find(k), nullptr) << k;
      EXPECT_EQ(*m.find(k), k);
    }
  }
}

TEST(FlatMap64, RandomizedAgainstUnorderedMap) {
  FlatMap64<std::uint32_t> m;
  std::unordered_map<std::uint64_t, std::uint32_t> ref;
  SplitMix64 rng(0xD3u);
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t key = rng.next() % 4096;  // force collisions/reuse
    switch (rng.next() % 3) {
      case 0: {
        const auto val = static_cast<std::uint32_t>(rng.next());
        m[key] = val;
        ref[key] = val;
        break;
      }
      case 1: {
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
      }
      default: {
        const auto* v = m.find(key);
        auto it = ref.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          EXPECT_EQ(*v, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  std::size_t visited = 0;
  m.for_each([&](std::uint64_t k, std::uint32_t v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap64, ClearResets) {
  FlatMap64<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(5), nullptr);
  m[5] = 9;
  EXPECT_EQ(*m.find(5), 9);
}

}  // namespace
}  // namespace polaris::support
