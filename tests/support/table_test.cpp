#include "polaris/support/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace polaris::support {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, HeterogeneousAdd) {
  Table t;
  t.add("s", 3, 4.5, 7u, 100ll);
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_EQ(t.cell(0, 0), "s");
  EXPECT_EQ(t.cell(0, 1), "3");
  EXPECT_EQ(t.cell(0, 2), "4.5");
  EXPECT_EQ(t.cell(0, 3), "7");
  EXPECT_EQ(t.cell(0, 4), "100");
}

TEST(Table, CsvQuotesSpecialCells) {
  Table t;
  t.header({"a", "b"});
  t.row({"x,y", "say \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(Table, RaggedRowsPrintWithoutCrash) {
  Table t;
  t.header({"a", "b", "c"});
  t.row({"only-one"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(Table, DoubleFormattingUsesSixSignificantDigits) {
  EXPECT_EQ(Table::to_cell(3.14159265), "3.14159");
  EXPECT_EQ(Table::to_cell(1e-7), "1e-07");
  EXPECT_EQ(Table::to_cell(1234567.0), "1.23457e+06");
}

}  // namespace
}  // namespace polaris::support
