#include "polaris/support/function.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace polaris::support {
namespace {

TEST(UniqueFunction, InvokesLambda) {
  UniqueFunction<int(int)> f = [](int x) { return x * 2; };
  EXPECT_EQ(f(21), 42);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(7);
  UniqueFunction<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 7);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  UniqueFunction<std::string()> f = [] { return std::string("hello"); };
  UniqueFunction<std::string()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), "hello");
}

TEST(UniqueFunction, DefaultConstructedIsEmpty) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, MutatesCapturedState) {
  int calls = 0;
  UniqueFunction<void()> f = [&calls] { ++calls; };
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, ForwardsArguments) {
  UniqueFunction<std::string(std::string, int)> f =
      [](std::string s, int n) { return s + ":" + std::to_string(n); };
  EXPECT_EQ(f("x", 3), "x:3");
}

}  // namespace
}  // namespace polaris::support
