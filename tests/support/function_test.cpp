#include "polaris/support/function.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace polaris::support {
namespace {

TEST(UniqueFunction, InvokesLambda) {
  UniqueFunction<int(int)> f = [](int x) { return x * 2; };
  EXPECT_EQ(f(21), 42);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(7);
  UniqueFunction<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_EQ(f(), 7);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  UniqueFunction<std::string()> f = [] { return std::string("hello"); };
  UniqueFunction<std::string()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(static_cast<bool>(g));
  EXPECT_EQ(g(), "hello");
}

TEST(UniqueFunction, DefaultConstructedIsEmpty) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, MutatesCapturedState) {
  int calls = 0;
  UniqueFunction<void()> f = [&calls] { ++calls; };
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, ForwardsArguments) {
  UniqueFunction<std::string(std::string, int)> f =
      [](std::string s, int n) { return s + ":" + std::to_string(n); };
  EXPECT_EQ(f("x", 3), "x:3");
}

TEST(UniqueFunction, SmallCapturesStayInline) {
  int x = 1;
  UniqueFunction<int()> f = [&x] { return x; };  // one pointer capture
  EXPECT_FALSE(f.heap_allocated());
  EXPECT_EQ(f(), 1);
}

TEST(UniqueFunction, EmptyIsNotHeapAllocated) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(f.heap_allocated());
}

TEST(UniqueFunction, OversizedCapturesFallBackToHeap) {
  struct Big {
    char bytes[2 * UniqueFunction<int()>::kInlineBytes] = {};
  };
  Big big;
  big.bytes[0] = 42;
  UniqueFunction<int()> f = [big] { return static_cast<int>(big.bytes[0]); };
  EXPECT_TRUE(f.heap_allocated());
  EXPECT_EQ(f(), 42);
}

TEST(UniqueFunction, InlineTargetSurvivesMove) {
  auto p = std::make_unique<int>(11);
  UniqueFunction<int()> f = [p = std::move(p)] { return *p; };
  EXPECT_FALSE(f.heap_allocated());
  UniqueFunction<int()> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_EQ(g(), 11);
  UniqueFunction<int()> h;
  h = std::move(g);
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_EQ(h(), 11);
}

TEST(UniqueFunction, HeapTargetSurvivesMove) {
  struct Big {
    char pad[128] = {};
    std::unique_ptr<int> p;
  };
  Big big;
  big.p = std::make_unique<int>(5);
  UniqueFunction<int()> f = [big = std::move(big)] { return *big.p; };
  EXPECT_TRUE(f.heap_allocated());
  UniqueFunction<int()> g = std::move(f);
  EXPECT_TRUE(g.heap_allocated());
  EXPECT_EQ(g(), 5);
}

TEST(UniqueFunction, DestroysInlineCaptureExactlyOnce) {
  int destroyed = 0;
  struct Probe {
    int* counter;
    explicit Probe(int* c) : counter(c) {}
    Probe(Probe&& o) noexcept : counter(std::exchange(o.counter, nullptr)) {}
    Probe(const Probe&) = delete;
    ~Probe() {
      if (counter) ++*counter;
    }
  };
  {
    UniqueFunction<void()> f = [p = Probe(&destroyed)] { (void)p; };
    EXPECT_FALSE(f.heap_allocated());
    UniqueFunction<void()> g = std::move(f);
    (void)g;
  }
  EXPECT_EQ(destroyed, 1);
}

TEST(UniqueFunction, ReassignmentReleasesOldTarget) {
  auto p = std::make_unique<int>(3);
  UniqueFunction<int()> f = [p = std::move(p)] { return *p; };
  f = UniqueFunction<int()>([] { return 9; });
  EXPECT_EQ(f(), 9);
}

}  // namespace
}  // namespace polaris::support
