// Regression suite for the scenario engine (tentpole) and its determinism
// contract: same spec + seed => identical verdict, trace hash, and event
// counts; a mutated spec moves the fingerprint; monitors catch violations;
// and every library scenario passes.
#include "polaris/scenario/scenario.hpp"

#include <gtest/gtest.h>

#include <string>

#include "polaris/scenario/library.hpp"
#include "polaris/support/check.hpp"

namespace polaris::scenario {
namespace {

// A small serve campaign used by the determinism tests: drain under load,
// restore, check conservation throughout.  Fast (~20 ms simulated).
constexpr std::string_view kSmallServeSpec = R"({
  "name": "drain-under-load",
  "seed": 42,
  "tick_s": 0.0005,
  "harness": {"kind": "serve", "frontends": 2, "shards": 2,
              "rate": 20000, "service_mean_s": 20e-6,
              "duration_s": 0.02, "warmup_s": 0.0},
  "monitors": [{"name": "conservation", "expect": "conservation == 0"}],
  "tree": {"seq": [
    {"wait": 0.005},
    {"drain": {"shard": 0}},
    {"await": "shard_drained:0", "timeout": 0.01},
    {"undrain": {"shard": 0}},
    {"assert": "dropped == 0"}
  ]}
})";

TEST(Scenario, EveryLibraryScenarioPasses) {
  for (const std::string& name : library_names()) {
    const Verdict v = run_scenario(library_spec(name));
    EXPECT_TRUE(v.passed) << name << ": " << v.to_json();
    EXPECT_GT(v.ticks, 0u) << name;
    EXPECT_GT(v.trace_events, 0u) << name;
  }
}

TEST(Scenario, SameSpecAndSeedReplaysBitIdentically) {
  const Verdict a = run_scenario(kSmallServeSpec);
  const Verdict b = run_scenario(kSmallServeSpec);
  ASSERT_TRUE(a.passed) << a.to_json();
  // The whole machine-readable verdict — counters, tick counts, end time,
  // trace hash — must replay byte-for-byte.
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_events, b.trace_events);
  EXPECT_EQ(a.ticks, b.ticks);
}

TEST(Scenario, LibraryScenariosReplayBitIdentically) {
  // The cross-subsystem ones: serve, cluster+rm, simrt, pdes.
  for (const char* name :
       {"flash-crowd-on-serve", "detector-tuning-sweep", "crash-mid-ring",
        "crash-during-collective"}) {
    const Verdict a = run_scenario(library_spec(name));
    const Verdict b = run_scenario(library_spec(name));
    EXPECT_EQ(a.to_json(), b.to_json()) << name;
  }
}

TEST(Scenario, MutatedSpecMovesTheFingerprint) {
  std::string mutated(kSmallServeSpec);
  const std::size_t pos = mutated.find("\"wait\": 0.005");
  ASSERT_NE(pos, std::string::npos);
  mutated.replace(pos, 13, "\"wait\": 0.007");

  const Verdict a = run_scenario(kSmallServeSpec);
  const Verdict b = run_scenario(mutated);
  ASSERT_TRUE(b.passed) << b.to_json();
  // The drain happens two ticks later, so every subsequent trace event
  // carries a different timestamp: the fingerprint must move.
  EXPECT_NE(a.trace_hash, b.trace_hash);
}

TEST(Scenario, PdesGoldenHashIsShardAndWorkerInvariant) {
  // Explicit worker counts pin the POLARIS_SIM_THREADS contract directly:
  // the same faulted workload must fold to one golden hash at every
  // execution shape, and the scenario itself must replay identically.
  constexpr std::string_view spec = R"({
    "name": "pdes-shape-sweep",
    "seed": 5,
    "tick_s": 0.001,
    "harness": {"kind": "pdes", "app": "halo", "grid_w": 8, "grid_h": 8,
                "iters": 4, "faults": [{"rank": 9, "time_s": 0.0005}]},
    "tree": {"seq": [
      {"run": {"shards": 1, "workers": 1}},
      {"run": {"shards": 2, "workers": 2}},
      {"run": {"shards": 4, "workers": 4}},
      {"run": {"shards": 4, "workers": 1}},
      {"assert": "pdes.runs == 4"},
      {"assert": "pdes.hashes_equal == 1"},
      {"assert": "pdes.ranks_failed >= 1"}
    ]}
  })";
  const Verdict a = run_scenario(spec);
  EXPECT_TRUE(a.passed) << a.to_json();
  const Verdict b = run_scenario(spec);
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Scenario, MonitorCatchesARealViolation) {
  // Kill every shard permanently: arrivals have nowhere to go and are
  // dropped, so the "no lost requests" monitor must trip — and the verdict
  // must fail even though the tree itself runs to success.
  constexpr std::string_view spec = R"({
    "name": "total-loss",
    "seed": 9,
    "tick_s": 0.0005,
    "harness": {"kind": "serve", "frontends": 2, "shards": 2,
                "rate": 20000, "service_mean_s": 20e-6,
                "duration_s": 0.02, "warmup_s": 0.0},
    "monitors": [{"name": "no-drops", "expect": "dropped == 0"}],
    "tree": {"seq": [
      {"inject": {"kind": "rack", "first": 0, "count": 2, "after": 0.002}},
      {"await": "dropped > 0", "timeout": 0.02},
      {"assert": "offered > 0"}
    ]}
  })";
  const Verdict v = run_scenario(spec);
  EXPECT_FALSE(v.passed) << v.to_json();
  EXPECT_EQ(v.root, Status::kSuccess);  // the tree succeeded...
  EXPECT_FALSE(v.monitors_clean);       // ...the invariant did not
  ASSERT_EQ(v.monitors.size(), 1u);
  EXPECT_GT(v.monitors[0].violations, 0u);
  EXPECT_GE(v.monitors[0].first_violation_s, 0.0);
}

TEST(Scenario, EvaluatedAssertsRecordTheirSimTime) {
  const Verdict v = run_scenario(kSmallServeSpec);
  ASSERT_EQ(v.asserts.size(), 1u);
  EXPECT_TRUE(v.asserts[0].passed);
  EXPECT_GT(v.asserts[0].time_s, 0.0);
}

TEST(Scenario, WedgedTreeFailsTheVerdictWithUnreachedAsserts) {
  // An await that can never hold, with no timeout: the tick chain stops at
  // max_ticks, the root stays Running, and the un-evaluated assert reports
  // failed with time -1.
  constexpr std::string_view spec = R"({
    "name": "wedged",
    "seed": 1,
    "tick_s": 0.001,
    "max_ticks": 50,
    "harness": {"kind": "serve", "frontends": 1, "shards": 1,
                "rate": 1000, "duration_s": 0.01, "warmup_s": 0.0},
    "tree": {"seq": [
      {"await": "offered > 1000000"},
      {"assert": "dropped == 0"}
    ]}
  })";
  const Verdict v = run_scenario(spec);
  EXPECT_FALSE(v.passed);
  EXPECT_EQ(v.root, Status::kRunning);
  EXPECT_EQ(v.ticks, 50u);
  ASSERT_EQ(v.asserts.size(), 1u);
  EXPECT_FALSE(v.asserts[0].passed);
  EXPECT_DOUBLE_EQ(v.asserts[0].time_s, -1.0);
}

TEST(Scenario, BadSpecsFailLoudly) {
  EXPECT_THROW(run_scenario("[]"), support::ContractViolation);
  EXPECT_THROW(run_scenario(R"({"tree": {"seq": []}})"),
               support::ContractViolation);  // no harness
  EXPECT_THROW(run_scenario(R"({"harness": {"kind": "serve"}})"),
               support::ContractViolation);  // no tree
  EXPECT_THROW(run_scenario(R"({
    "harness": {"kind": "starship"},
    "tree": {"seq": []}
  })"),
               support::ContractViolation);  // unknown harness kind
  EXPECT_THROW(run_scenario(R"({
    "harness": {"kind": "serve", "duration_s": 0.001},
    "tree": {"seq": [{"warp": {}}, {"extra": 1}]}
  })"),
               support::ContractViolation);  // two-member mystery node
}

TEST(Scenario, UnknownProbeNamesThrowInsteadOfComparingZero) {
  constexpr std::string_view spec = R"({
    "name": "typo",
    "seed": 1,
    "harness": {"kind": "serve", "frontends": 1, "shards": 1,
                "rate": 1000, "duration_s": 0.005, "warmup_s": 0.0},
    "tree": {"seq": [{"assert": "droped == 0"}]}
  })";
  EXPECT_THROW(run_scenario(spec), support::ContractViolation);
}

TEST(Scenario, LibraryNamesAndSpecsAgree) {
  const auto names = library_names();
  EXPECT_GE(names.size(), 6u);
  for (const std::string& name : names) {
    const Json spec = Json::parse(library_spec(name));
    EXPECT_EQ(spec.at("name").str(), name);
  }
  EXPECT_THROW(library_spec("no-such-scenario"), support::ContractViolation);
}

}  // namespace
}  // namespace polaris::scenario
