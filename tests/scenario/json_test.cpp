#include "polaris/scenario/json.hpp"

#include <gtest/gtest.h>

#include <string>

#include "polaris/support/check.hpp"

namespace polaris::scenario {
namespace {

TEST(ScenarioJson, ParsesScalarsAndContainers) {
  const Json v = Json::parse(
      R"({"a": 1.5, "b": "text", "c": true, "d": null, "e": [1, 2, 3]})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("a").num(), 1.5);
  EXPECT_EQ(v.at("b").str(), "text");
  EXPECT_TRUE(v.at("c").boolean());
  EXPECT_TRUE(v.at("d").is_null());
  ASSERT_EQ(v.at("e").items().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("e").items()[2].num(), 3.0);
}

TEST(ScenarioJson, ParsesNestedSpecShapedDocuments) {
  const Json v = Json::parse(R"({
    "harness": {"kind": "serve", "shards": 4},
    "tree": {"seq": [{"wait": 0.01}, {"assert": "dropped == 0"}]}
  })");
  EXPECT_EQ(v.at("harness").str_or("kind", ""), "serve");
  EXPECT_DOUBLE_EQ(v.at("harness").num_or("shards", 0.0), 4.0);
  const auto& seq = v.at("tree").at("seq").items();
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_DOUBLE_EQ(seq[0].at("wait").num(), 0.01);
  EXPECT_EQ(seq[1].at("assert").str(), "dropped == 0");
}

TEST(ScenarioJson, HandlesEscapesAndUnicode) {
  const Json v = Json::parse(R"({"s": "a\"b\\c\ndA"})");
  EXPECT_EQ(v.at("s").str(), "a\"b\\c\ndA");
}

TEST(ScenarioJson, DumpIsDeterministicAndRoundTrips) {
  const char* text =
      R"({"name": "x", "nums": [1, 2.5, -3e-2], "inner": {"k": false}})";
  const Json v = Json::parse(text);
  const std::string once = v.dump();
  // Same value -> same bytes (member order is preserved, numbers are
  // %.17g): dump is usable as a fingerprint input.
  EXPECT_EQ(Json::parse(once).dump(), once);
}

TEST(ScenarioJson, PreservesMemberOrder) {
  const Json v = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = v.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(ScenarioJson, BuildersProduceParseableDocuments) {
  Json obj = Json::object();
  obj.set("rate", Json::number(1000.0));
  obj.set("kind", Json::string("serve"));
  Json arr = Json::array();
  arr.push(Json::number(1.0));
  arr.push(Json::boolean(true));
  obj.set("list", std::move(arr));
  obj.set("rate", Json::number(2000.0));  // insert-or-replace
  const Json back = Json::parse(obj.dump());
  EXPECT_DOUBLE_EQ(back.at("rate").num(), 2000.0);
  EXPECT_EQ(back.at("kind").str(), "serve");
  EXPECT_TRUE(back.at("list").items()[1].boolean());
}

TEST(ScenarioJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), support::ContractViolation);
  EXPECT_THROW(Json::parse(R"({"a": })"), support::ContractViolation);
  EXPECT_THROW(Json::parse("[1, 2,]"), support::ContractViolation);
  EXPECT_THROW(Json::parse("tru"), support::ContractViolation);
  EXPECT_THROW(Json::parse(R"({"a": 1} trailing)"),
               support::ContractViolation);
}

TEST(ScenarioJson, TypeMismatchesFailLoudly) {
  const Json v = Json::parse(R"({"a": 1})");
  EXPECT_THROW(v.at("a").str(), support::ContractViolation);
  EXPECT_THROW(v.at("missing"), support::ContractViolation);
  EXPECT_THROW(v.at("a").items(), support::ContractViolation);
}

}  // namespace
}  // namespace polaris::scenario
