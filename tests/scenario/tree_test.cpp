#include "polaris/scenario/tree.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::scenario {
namespace {

TickContext at(double now_s, std::uint64_t tick = 0) {
  return TickContext{now_s, tick};
}

NodePtr action(Status result, int* fired = nullptr) {
  return std::make_unique<Action>("act", [result, fired](TickContext&) {
    if (fired) ++*fired;
    return result;
  });
}

NodePtr running_until(double t) {
  return std::make_unique<WaitUntil>(
      "until", [t](TickContext& ctx) { return ctx.now_s >= t; });
}

TEST(ScenarioTree, NodesLatchTheirFinalStatus) {
  int fired = 0;
  NodePtr n = action(Status::kSuccess, &fired);
  TickContext ctx = at(0.0);
  EXPECT_EQ(n->tick(ctx), Status::kSuccess);
  EXPECT_EQ(n->tick(ctx), Status::kSuccess);
  EXPECT_EQ(fired, 1);  // latched: the side effect never re-runs

  n->reset();
  EXPECT_EQ(n->tick(ctx), Status::kSuccess);
  EXPECT_EQ(fired, 2);
}

TEST(ScenarioTree, SequenceAdvancesThroughInstantChildrenInOneTick) {
  int a = 0, b = 0;
  std::vector<NodePtr> kids;
  kids.push_back(action(Status::kSuccess, &a));
  kids.push_back(action(Status::kSuccess, &b));
  Sequence seq("seq", std::move(kids));
  TickContext ctx = at(0.0);
  EXPECT_EQ(seq.tick(ctx), Status::kSuccess);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(ScenarioTree, SequenceKeepsItsCursorAcrossTicks) {
  int a = 0;
  std::vector<NodePtr> kids;
  kids.push_back(action(Status::kSuccess, &a));
  kids.push_back(running_until(1.0));
  Sequence seq("seq", std::move(kids));
  TickContext t0 = at(0.0);
  EXPECT_EQ(seq.tick(t0), Status::kRunning);
  TickContext t1 = at(0.5);
  EXPECT_EQ(seq.tick(t1), Status::kRunning);
  EXPECT_EQ(a, 1);  // memory semantics: the first child is never revisited
  TickContext t2 = at(1.0);
  EXPECT_EQ(seq.tick(t2), Status::kSuccess);
}

TEST(ScenarioTree, SequenceFailsOnFirstChildFailure) {
  int b = 0;
  std::vector<NodePtr> kids;
  kids.push_back(action(Status::kFailure));
  kids.push_back(action(Status::kSuccess, &b));
  Sequence seq("seq", std::move(kids));
  TickContext ctx = at(0.0);
  EXPECT_EQ(seq.tick(ctx), Status::kFailure);
  EXPECT_EQ(b, 0);
}

TEST(ScenarioTree, FallbackTakesTheFirstSuccess) {
  int c = 0;
  std::vector<NodePtr> kids;
  kids.push_back(action(Status::kFailure));
  kids.push_back(action(Status::kSuccess));
  kids.push_back(action(Status::kSuccess, &c));
  Fallback any("any", std::move(kids));
  TickContext ctx = at(0.0);
  EXPECT_EQ(any.tick(ctx), Status::kSuccess);
  EXPECT_EQ(c, 0);
}

TEST(ScenarioTree, FallbackFailsOnlyWhenAllChildrenFail) {
  std::vector<NodePtr> kids;
  kids.push_back(action(Status::kFailure));
  kids.push_back(action(Status::kFailure));
  Fallback any("any", std::move(kids));
  TickContext ctx = at(0.0);
  EXPECT_EQ(any.tick(ctx), Status::kFailure);
}

TEST(ScenarioTree, ParallelQuotaSemantics) {
  {  // quota 0 = all must succeed
    std::vector<NodePtr> kids;
    kids.push_back(action(Status::kSuccess));
    kids.push_back(running_until(2.0));
    Parallel par("par", std::move(kids), 0);
    TickContext t0 = at(0.0);
    EXPECT_EQ(par.tick(t0), Status::kRunning);
    TickContext t1 = at(2.0);
    EXPECT_EQ(par.tick(t1), Status::kSuccess);
  }
  {  // quota 1: first success wins
    std::vector<NodePtr> kids;
    kids.push_back(running_until(99.0));
    kids.push_back(action(Status::kSuccess));
    Parallel par("par", std::move(kids), 1);
    TickContext t0 = at(0.0);
    EXPECT_EQ(par.tick(t0), Status::kSuccess);
  }
  {  // quota unreachable -> failure
    std::vector<NodePtr> kids;
    kids.push_back(action(Status::kFailure));
    kids.push_back(action(Status::kSuccess));
    Parallel par("par", std::move(kids), 2);
    TickContext t0 = at(0.0);
    EXPECT_EQ(par.tick(t0), Status::kFailure);
  }
}

TEST(ScenarioTree, ParallelRejectsImpossibleQuota) {
  std::vector<NodePtr> kids;
  kids.push_back(action(Status::kSuccess));
  EXPECT_THROW(Parallel("par", std::move(kids), 2),
               support::ContractViolation);
}

TEST(ScenarioTree, RepeatYieldsBetweenIterationsAndCountsThem) {
  int fired = 0;
  Repeat rep("rep", action(Status::kSuccess, &fired), 3);
  TickContext ctx = at(0.0);
  // One completed child iteration per tick: an instantly-succeeding child
  // cannot spin the repeat to completion inside a single tick.
  EXPECT_EQ(rep.tick(ctx), Status::kRunning);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(rep.tick(ctx), Status::kRunning);
  EXPECT_EQ(rep.tick(ctx), Status::kSuccess);
  EXPECT_EQ(fired, 3);
}

TEST(ScenarioTree, RepeatPropagatesChildFailure) {
  Repeat rep("rep", action(Status::kFailure), 0);
  TickContext ctx = at(0.0);
  EXPECT_EQ(rep.tick(ctx), Status::kFailure);
}

TEST(ScenarioTree, TimeoutFailsAStuckChildAfterItsDeadline) {
  Timeout to("to", running_until(100.0), 1.0);
  TickContext t0 = at(5.0);  // budget starts at the FIRST tick, not t=0
  EXPECT_EQ(to.tick(t0), Status::kRunning);
  TickContext t1 = at(5.9);
  EXPECT_EQ(to.tick(t1), Status::kRunning);
  TickContext t2 = at(6.0);
  EXPECT_EQ(to.tick(t2), Status::kFailure);
}

TEST(ScenarioTree, TimeoutIsTransparentWhenTheChildFinishes) {
  Timeout to("to", running_until(1.0), 10.0);
  TickContext t0 = at(0.0);
  EXPECT_EQ(to.tick(t0), Status::kRunning);
  TickContext t1 = at(1.0);
  EXPECT_EQ(to.tick(t1), Status::kSuccess);
}

TEST(ScenarioTree, WaitIdlesForItsDurationFromFirstTick) {
  Wait w("w", 0.5);
  TickContext t0 = at(2.0);
  EXPECT_EQ(w.tick(t0), Status::kRunning);
  TickContext t1 = at(2.4);
  EXPECT_EQ(w.tick(t1), Status::kRunning);
  TickContext t2 = at(2.5);
  EXPECT_EQ(w.tick(t2), Status::kSuccess);
}

TEST(ScenarioTree, ConditionEvaluatesExactlyOnce) {
  int evals = 0;
  Condition cond("c", [&evals](TickContext&) {
    ++evals;
    return false;
  });
  TickContext ctx = at(0.0);
  EXPECT_EQ(cond.tick(ctx), Status::kFailure);
  EXPECT_EQ(cond.tick(ctx), Status::kFailure);
  EXPECT_EQ(evals, 1);
}

TEST(ScenarioTree, MonitorCountsViolationsWithoutStopping) {
  int calls = 0;
  Monitor m;
  m.name = "inv";
  m.ok = [&calls](TickContext&) {
    ++calls;
    return calls != 2 && calls != 3;  // violate on checks 2 and 3
  };
  TickContext c1 = at(0.1);
  TickContext c2 = at(0.2);
  TickContext c3 = at(0.3);
  TickContext c4 = at(0.4);
  m.check(c1);
  m.check(c2);
  m.check(c3);
  m.check(c4);
  EXPECT_EQ(m.checks, 4u);
  EXPECT_EQ(m.violations, 2u);
  EXPECT_DOUBLE_EQ(m.first_violation_s, 0.2);
  EXPECT_FALSE(m.clean());
}

}  // namespace
}  // namespace polaris::scenario
