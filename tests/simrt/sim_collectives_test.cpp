#include <gtest/gtest.h>

#include <vector>

#include "polaris/simrt/sim_world.hpp"

namespace polaris::simrt {
namespace {

using fabric::fabrics::gig_ethernet;
using fabric::fabrics::infiniband_4x;

/// Time for all ranks to complete one collective schedule.
double timed_schedule(std::size_t ranks, fabric::FabricParams p,
                      const coll::Schedule& schedule,
                      std::size_t elem_bytes = 8) {
  SimWorld world(ranks, std::move(p));
  world.launch([&](SimComm& c) -> des::Task<void> {
    co_await c.run_schedule(schedule, elem_bytes);
  });
  return world.run();
}

TEST(SimCollectives, BarrierCompletesAllRanks) {
  for (std::size_t p : {2u, 3u, 8u, 16u}) {
    SimWorld world(p, infiniband_4x());
    std::size_t through = 0;
    world.launch([&](SimComm& c) -> des::Task<void> {
      co_await c.barrier();
      ++through;
    });
    const double t = world.run();
    EXPECT_EQ(through, p);
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 1e-3);
  }
}

TEST(SimCollectives, BarrierScalesLogarithmically) {
  const double t4 =
      timed_schedule(4, infiniband_4x(), coll::barrier(4), 1);
  const double t64 =
      timed_schedule(64, infiniband_4x(), coll::barrier(64), 1);
  EXPECT_LT(t64, 5.0 * t4);  // log2(64)/log2(4) = 3, plus congestion
}

TEST(SimCollectives, BinomialBroadcastBeatsLinearAtScale) {
  const std::size_t p = 32;
  const double lin = timed_schedule(
      p, infiniband_4x(), coll::broadcast(p, 1024, 0, coll::Algorithm::kLinear));
  const double bin = timed_schedule(
      p, infiniband_4x(),
      coll::broadcast(p, 1024, 0, coll::Algorithm::kBinomial));
  EXPECT_LT(bin, 0.6 * lin);
}

TEST(SimCollectives, RingAllreduceWinsLargePayloads) {
  const std::size_t p = 16;
  const std::size_t n = 1 << 17;  // 1 MiB of doubles
  const double ring = timed_schedule(p, infiniband_4x(),
                                     coll::allreduce(p, n, coll::Algorithm::kRing));
  const double rd = timed_schedule(
      p, infiniband_4x(),
      coll::allreduce(p, n, coll::Algorithm::kRecursiveDoubling));
  EXPECT_LT(ring, rd);
}

TEST(SimCollectives, RecursiveDoublingWinsTinyPayloads) {
  const std::size_t p = 16;
  const double ring = timed_schedule(
      p, infiniband_4x(), coll::allreduce(p, 1, coll::Algorithm::kRing));
  const double rd = timed_schedule(
      p, infiniband_4x(),
      coll::allreduce(p, 1, coll::Algorithm::kRecursiveDoubling));
  EXPECT_LT(rd, ring);
}

TEST(SimCollectives, EthernetCollectivesFarSlowerThanIb) {
  const std::size_t p = 16;
  const auto schedule = coll::allreduce(p, 1024, coll::Algorithm::kRing);
  const double eth = timed_schedule(p, gig_ethernet(), schedule);
  const double ib = timed_schedule(p, infiniband_4x(), schedule);
  EXPECT_GT(eth / ib, 5.0);
}

TEST(SimCollectives, ConvenienceCollectivesComplete) {
  SimWorld world(8, infiniband_4x());
  int done = 0;
  world.launch([&](SimComm& c) -> des::Task<void> {
    co_await c.broadcast(4096, 0);
    co_await c.allreduce(8 * 1024);
    co_await c.allgather(1024);
    co_await c.alltoall(512);
    ++done;
  });
  world.run();
  EXPECT_EQ(done, 8);
}

TEST(SimCollectives, NonPowerOfTwoRanksWork) {
  SimWorld world(11, infiniband_4x());
  int done = 0;
  world.launch([&](SimComm& c) -> des::Task<void> {
    co_await c.allreduce(4096);
    co_await c.barrier();
    ++done;
  });
  world.run();
  EXPECT_EQ(done, 11);
}

TEST(SimCollectives, AlltoallCongestsMoreThanAllgatherOnTorus) {
  // On a mesh, alltoall's long-distance shifts contend for mesh links
  // while ring allgather only ever talks to neighbours.  (On a crossbar
  // both are per-step permutations and legitimately tie.)
  const std::size_t p = 16;
  auto run = [&](const coll::Schedule& s) {
    SimWorld world(p, infiniband_4x(),
                   std::make_unique<fabric::Torus2D>(4, 4));
    world.launch([&](SimComm& c) -> des::Task<void> {
      co_await c.run_schedule(s, 1);
    });
    return world.run();
  };
  const double a2a = run(coll::alltoall(p, 8192, coll::Algorithm::kPairwise));
  const double ag = run(coll::allgather(p, 8192, coll::Algorithm::kRing));
  EXPECT_GT(a2a, 1.2 * ag);
}

TEST(SimCollectives, DeterministicReplay) {
  const auto schedule = coll::allreduce(8, 1 << 14, coll::Algorithm::kRing);
  const double t1 = timed_schedule(8, infiniband_4x(), schedule);
  const double t2 = timed_schedule(8, infiniband_4x(), schedule);
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(SimCollectives, TorusVsFatTreeForNeighborExchange) {
  // A ring allgather maps perfectly onto a torus; both should complete,
  // and the torus should not be catastrophically worse.
  const std::size_t p = 16;
  const auto schedule = coll::allgather(p, 4096, coll::Algorithm::kRing);
  SimWorld tree(p, infiniband_4x());
  SimWorld torus(p, infiniband_4x(),
                 std::make_unique<fabric::Torus2D>(4, 4));
  for (SimWorld* w : {&tree, &torus}) {
    w->launch([&](SimComm& c) -> des::Task<void> {
      co_await c.run_schedule(schedule, 8);
    });
  }
  const double t_tree = tree.run();
  const double t_torus = torus.run();
  EXPECT_GT(t_tree, 0.0);
  EXPECT_GT(t_torus, 0.0);
  EXPECT_LT(t_torus, 10.0 * t_tree);
}

}  // namespace
}  // namespace polaris::simrt
