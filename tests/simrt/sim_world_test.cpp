#include "polaris/simrt/sim_world.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "polaris/msg/protocol.hpp"

namespace polaris::simrt {
namespace {

using fabric::fabrics::gig_ethernet;
using fabric::fabrics::infiniband_4x;
using fabric::fabrics::myrinet2000;
using fabric::fabrics::optical_ocs;

/// One-way latency of a single b-byte message between two ranks.
double one_way_seconds(fabric::FabricParams p, std::uint64_t bytes,
                       std::uint32_t eager_override = 0) {
  SimWorld world(2, std::move(p), nullptr,
                 hw::NodeDesigner().design(hw::NodeArch::kConventional, 2002.0),
                 eager_override);
  double t_done = -1.0;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, bytes);
    } else {
      co_await c.recv(0, 0);
      t_done = c.now();
    }
  });
  world.run();
  return t_done;
}

TEST(SimWorldP2P, SmallMessageLatencyMatchesEra) {
  // Published 2002-era MPI-level small-message latencies: kernel GigE tens
  // of microseconds; user-level Myrinet/IB single-digit microseconds.
  const double eth = one_way_seconds(gig_ethernet(), 8);
  const double myri = one_way_seconds(myrinet2000(), 8);
  const double ib = one_way_seconds(infiniband_4x(), 8);
  EXPECT_GT(eth, 40e-6);
  EXPECT_LT(eth, 120e-6);
  EXPECT_GT(myri, 2e-6);
  EXPECT_LT(myri, 15e-6);
  EXPECT_GT(ib, 1.5e-6);
  EXPECT_LT(ib, 12e-6);
  EXPECT_GT(eth / ib, 8.0);  // the user-level messaging story
}

TEST(SimWorldP2P, LargeMessageBandwidthApproachesWire) {
  const std::uint64_t bytes = 8 << 20;
  const double t = one_way_seconds(infiniband_4x(), bytes);
  const double bw = static_cast<double>(bytes) / t;
  EXPECT_GT(bw, 0.75 * infiniband_4x().link_bw);
}

TEST(SimWorldP2P, KernelPathCapsBandwidthBelowWire) {
  // GigE kernel path: copies cost 2x bytes/copy_bw on top of the wire,
  // so delivered bandwidth is well under link rate.
  const std::uint64_t bytes = 8 << 20;
  const double t = one_way_seconds(gig_ethernet(), bytes);
  const double bw = static_cast<double>(bytes) / t;
  EXPECT_LT(bw, 0.9 * gig_ethernet().link_bw);
}

TEST(SimWorldP2P, EagerVsRendezvousCounters) {
  SimWorld world(2, infiniband_4x());
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 64);          // eager
      co_await c.send(1, 0, 1 << 20);     // rdma rendezvous
    } else {
      co_await c.recv(0, 0);
      co_await c.recv(0, 0);
    }
  });
  world.run();
  EXPECT_EQ(world.comm(0).eager_count(), 1u);
  EXPECT_EQ(world.comm(0).rendezvous_count(), 1u);
}

TEST(SimWorldP2P, EagerThresholdOverrideChangesProtocol) {
  SimWorld world(2, infiniband_4x(), nullptr,
                 hw::NodeDesigner().design(hw::NodeArch::kConventional,
                                           2002.0),
                 /*eager_override=*/1 << 20);
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 64 * 1024);  // below the overridden threshold
    } else {
      co_await c.recv(0, 0);
    }
  });
  world.run();
  EXPECT_EQ(world.comm(0).eager_count(), 1u);
}

// Incast of eager messages onto one receiver, with and without admission
// control.  The knob SHAPES traffic — deferred injections retry with
// backoff until the destination drains — so every message still arrives;
// only the injection schedule changes.
TEST(SimWorldP2P, EagerAdmissionDefersButDeliversEverything) {
  constexpr int kSenders = 7;
  constexpr int kPerSender = 4;
  auto incast = [&](SimWorld& world) {
    world.launch([&](SimComm& c) -> des::Task<void> {
      if (c.rank() == 0) {
        for (int i = 0; i < kSenders * kPerSender; ++i) {
          co_await c.recv(msg::kAnySource, 0);
        }
      } else {
        for (int i = 0; i < kPerSender; ++i) {
          co_await c.send(0, 0, 512);  // well under the eager threshold
        }
      }
    });
    world.run();
  };

  SimWorld off(kSenders + 1, myrinet2000());
  incast(off);
  EXPECT_EQ(off.eager_deferrals(), 0u);  // knob off: zero-cost branch

  SimWorld on(kSenders + 1, myrinet2000());
  AdmissionControl ac;
  ac.max_per_dest = 2;
  on.set_admission(ac);
  incast(on);
  EXPECT_GT(on.eager_deferrals(), 0u);  // 7 senders vs a 2-message window
  // Conservation: the receiver's loop completed, so all 28 landed.
  EXPECT_EQ(on.comm(1).eager_count(), static_cast<std::uint64_t>(kPerSender));
}

TEST(SimWorldP2P, AdmissionOffIsEventIdenticalToSeedPath) {
  // set_admission with max_per_dest = 0 must be indistinguishable from
  // never calling it (the golden-trace test pins the global version of
  // this; here we pin the cheap local invariant).
  SimWorld world(2, infiniband_4x());
  AdmissionControl ac;
  ac.max_per_dest = 0;
  world.set_admission(ac);
  EXPECT_FALSE(world.admission_enabled());
}

TEST(SimWorldP2P, MessagesDoNotOvertake) {
  // A large eager message followed by a small one, same tag: the receiver
  // must see them in send order despite different wire times.
  SimWorld world(2, myrinet2000(), nullptr,
                 hw::NodeDesigner().design(hw::NodeArch::kConventional,
                                           2002.0),
                 /*eager_override=*/4 << 20);
  std::vector<std::uint64_t> sizes;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 1 << 20);
      co_await c.send(1, 0, 8);
    } else {
      const auto a = co_await c.recv(0, 0);
      const auto b = co_await c.recv(0, 0);
      sizes = {a.bytes, b.bytes};
    }
  });
  world.run();
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 1u << 20);
  EXPECT_EQ(sizes[1], 8u);
}

TEST(SimWorldP2P, UnexpectedMessageMatchesLateRecv) {
  SimWorld world(2, infiniband_4x());
  double recv_done = -1;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 5, 128);
    } else {
      co_await c.sleep(1e-3);  // message arrives long before the recv
      const auto st = co_await c.recv(0, 5);
      EXPECT_EQ(st.bytes, 128u);
      recv_done = c.now();
    }
  });
  world.run();
  // Receive completes nearly immediately after being posted.
  EXPECT_NEAR(recv_done, 1e-3, 0.1e-3);
}

TEST(SimWorldP2P, RendezvousWaitsForReceiver) {
  SimWorld world(2, myrinet2000());
  double send_done = -1;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 1 << 20);  // rendezvous
      send_done = c.now();
    } else {
      co_await c.sleep(5e-3);
      co_await c.recv(0, 0);
    }
  });
  world.run();
  EXPECT_GT(send_done, 5e-3);  // sender stalled on the handshake
}

TEST(SimWorldP2P, RegistrationCacheAmortizes) {
  SimWorld world(2, infiniband_4x());
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i) co_await c.send(1, 0, 1 << 20);
    } else {
      for (int i = 0; i < 10; ++i) co_await c.recv(0, 0);
    }
  });
  world.run();
  EXPECT_EQ(world.comm(0).reg_stats().misses, 1u);
  EXPECT_EQ(world.comm(0).reg_stats().hits, 9u);
}

TEST(SimWorldP2P, PutRequiresRdma) {
  SimWorld myri(2, myrinet2000());
  myri.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) co_await c.put(1, 4096);
  });
  EXPECT_THROW(myri.run(), support::ContractViolation);

  SimWorld ib(2, infiniband_4x());
  double done = -1;
  ib.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.put(1, 4096);
      done = c.now();
    }
  });
  ib.run();
  EXPECT_GT(done, 0.0);
}

TEST(SimWorldP2P, OpticalPaysSetupOnce) {
  const double cold = one_way_seconds(optical_ocs(), 4096);
  EXPECT_GT(cold, optical_ocs().circuit_setup);

  SimWorld world(2, optical_ocs());
  std::vector<double> gaps;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      for (int i = 0; i < 3; ++i) co_await c.send(1, 0, 4096);
    } else {
      double last = 0;
      for (int i = 0; i < 3; ++i) {
        co_await c.recv(0, 0);
        gaps.push_back(c.now() - last);
        last = c.now();
      }
    }
  });
  world.run();
  ASSERT_EQ(gaps.size(), 3u);
  EXPECT_GT(gaps[0], 500e-6);  // cold circuit
  EXPECT_LT(gaps[1], 100e-6);  // warm
  EXPECT_LT(gaps[2], 100e-6);
}

TEST(SimWorldP2P, ComputeUsesRoofline) {
  SimWorld world(2, infiniband_4x());
  double t = -1;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.compute(9.6e9, 0.0);  // exactly 1 s at 2002 peak
      t = c.now();
    }
  });
  world.run();
  EXPECT_NEAR(t, 1.0, 1e-6);
}

TEST(SimWorldP2P, WildcardRecvInSimulation) {
  SimWorld world(3, infiniband_4x());
  int seen_src = -1;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 2) {
      const auto st = co_await c.recv(msg::kAnySource, 7);
      seen_src = st.src;
    } else if (c.rank() == 1) {
      co_await c.send(2, 7, 32);
    }
  });
  world.run();
  EXPECT_EQ(seen_src, 1);
}


TEST(SimWorldP2P, NonOvertakingStressThroughHoldRings) {
  // Many same-tag eager messages with wildly different sizes: small ones
  // finish their wire leg before earlier large ones, so network-order
  // completions are heavily out of order and must be re-sequenced through
  // the per-source hold rings before reaching the matcher.
  SimWorld world(3, myrinet2000(), nullptr,
                 hw::NodeDesigner().design(hw::NodeArch::kConventional,
                                           2002.0),
                 /*eager_override=*/8 << 20);
  constexpr int kPerSource = 64;
  std::vector<std::uint64_t> sent[2];
  std::vector<std::uint64_t> got[2];
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() < 2) {
      std::vector<SimRequest> reqs;
      std::uint64_t state = 0x9E3779B9u * (c.rank() + 1);
      for (int i = 0; i < kPerSource; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        // Alternate huge and tiny so later sends routinely complete first.
        const std::uint64_t bytes =
            (i % 2 == 0) ? (1u << 20) + (state % 4096) : 8 + (state % 64);
        sent[c.rank()].push_back(bytes);
        reqs.push_back(c.isend(2, 0, bytes));
      }
      co_await c.wait_all(reqs);
    } else {
      for (int i = 0; i < 2 * kPerSource; ++i) {
        const auto st = co_await c.recv(msg::kAnySource, 0);
        got[st.src].push_back(st.bytes);
      }
    }
  });
  world.run();
  EXPECT_EQ(got[0], sent[0]);  // per-source program order, exactly
  EXPECT_EQ(got[1], sent[1]);
  // The scenario is only a real test if the rings actually held messages.
  EXPECT_GT(world.comm(2).max_held_depth(), 0u);
}

TEST(SimWorldP2P, PoolsReachSteadyState) {
  // Long-running traffic with bounded concurrency must not grow the
  // in-flight, request or matcher slabs after warmup: the steady-state
  // message path is allocation-free.
  SimWorld world(2, infiniband_4x());
  std::size_t inflight_cap = 0, req_cap = 0, match_cap = 0;
  world.launch([&](SimComm& c) -> des::Task<void> {
    for (int round = 0; round < 400; ++round) {
      if (round == 100 && c.rank() == 0) {
        inflight_cap = world.inflight_pool_capacity();
        req_cap = c.request_pool_capacity();
        match_cap = c.matcher_pool_capacity() +
                    world.comm(1).matcher_pool_capacity();
      }
      if (c.rank() == 0) {
        SimRequest r = c.irecv(1, 1);
        co_await c.send(1, 0, 4096);
        co_await c.wait(r);
      } else {
        SimRequest r = c.irecv(0, 0);
        co_await c.send(0, 1, 4096);
        co_await c.wait(r);
      }
    }
  });
  world.run();
  EXPECT_GT(inflight_cap, 0u);
  EXPECT_EQ(world.inflight_pool_capacity(), inflight_cap);
  EXPECT_EQ(world.comm(0).request_pool_capacity(), req_cap);
  EXPECT_EQ(world.comm(0).matcher_pool_capacity() +
                world.comm(1).matcher_pool_capacity(),
            match_cap);
  EXPECT_EQ(world.inflight_in_use(), 0u);  // everything drained back
}

TEST(SimWorldNonblocking, IsendIrecvWaitAll) {
  SimWorld world(2, infiniband_4x());
  std::vector<std::uint64_t> sizes;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      std::vector<SimRequest> reqs;
      reqs.push_back(c.isend(1, 0, 1024));
      reqs.push_back(c.isend(1, 1, 2048));
      co_await c.wait_all(std::move(reqs));
    } else {
      SimRequest a = c.irecv(0, 0);
      SimRequest b = c.irecv(0, 1);
      const auto sa = co_await c.wait(a);
      const auto sb = co_await c.wait(b);
      sizes = {sa.bytes, sb.bytes};
    }
  });
  world.run();
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{1024, 2048}));
}

TEST(SimWorldNonblocking, MixedBlockingAndNonblockingPreserveOrder) {
  // isend issued before a blocking send must be matched first.
  SimWorld world(2, infiniband_4x());
  std::vector<std::uint64_t> sizes;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      SimRequest r = c.isend(1, 0, 111);
      co_await c.send(1, 0, 222);
      co_await c.wait(r);
    } else {
      const auto a = co_await c.recv(0, 0);
      const auto b = co_await c.recv(0, 0);
      sizes = {a.bytes, b.bytes};
    }
  });
  world.run();
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{111, 222}));
}

TEST(SimWorldNonblocking, IrecvPostingOrderIsProgramOrder) {
  // irecv then blocking recv with the same signature: the first posted
  // receive must match the first arrival.
  SimWorld world(2, infiniband_4x());
  std::uint64_t first = 0, second = 0;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 10);
      co_await c.send(1, 0, 20);
    } else {
      SimRequest r = c.irecv(0, 0);
      const auto b = co_await c.recv(0, 0);
      const auto a = co_await c.wait(r);
      first = a.bytes;
      second = b.bytes;
    }
  });
  world.run();
  EXPECT_EQ(first, 10u);
  EXPECT_EQ(second, 20u);
}

TEST(SimWorldNonblocking, ConcurrentExchangeOverlaps) {
  // Four-way nonblocking exchange completes in ~one message time, not four.
  SimWorld world(5, infiniband_4x());
  double elapsed = -1;
  world.launch([&](SimComm& c) -> des::Task<void> {
    const std::uint64_t bytes = 256 * 1024;
    if (c.rank() == 0) {
      std::vector<SimRequest> reqs;
      for (int peer = 1; peer <= 4; ++peer) {
        reqs.push_back(c.irecv(peer, 0));
        reqs.push_back(c.isend(peer, 0, bytes));
      }
      co_await c.wait_all(std::move(reqs));
      elapsed = c.now();
    } else {
      SimRequest r = c.irecv(0, 0);
      co_await c.send(0, 0, bytes);
      co_await c.wait(r);
    }
  });
  world.run();
  // Serial would be ~8 message times; overlap should beat 6.
  SimWorld ref(2, infiniband_4x());
  double one = -1;
  ref.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 256 * 1024);
    } else {
      co_await c.recv(0, 0);
      one = c.now();
    }
  });
  ref.run();
  EXPECT_LT(elapsed, 6.0 * one);
}


TEST(SimWorldOneSided, GetPullsWithoutRemoteCpu) {
  SimWorld world(2, infiniband_4x());
  double done = -1;
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.get(1, 1 << 20);
      done = c.now();
    }
    // Rank 1 does nothing at all: one-sided.
  });
  world.run();
  EXPECT_GT(done, 0.0);
  // Roughly a round trip plus the payload serialization.
  EXPECT_GT(done, 1.0e6 / infiniband_4x().link_bw);
}

TEST(SimWorldOneSided, GetRejectsNonRdmaFabric) {
  SimWorld world(2, myrinet2000());
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) co_await c.get(1, 4096);
  });
  EXPECT_THROW(world.run(), support::ContractViolation);
}

TEST(SimWorldActiveMessages, HandlerRunsAtDestination) {
  SimWorld world(2, infiniband_4x());
  int seen_src = -1;
  std::uint64_t seen_bytes = 0;
  double handler_time = -1;
  std::uint32_t id = 0;
  for (std::size_t r = 0; r < 2; ++r) {
    id = world.comm(r).register_am(
        [&, r](int src, std::uint64_t bytes) {
          if (r == 1) {
            seen_src = src;
            seen_bytes = bytes;
            handler_time = world.comm(1).now();
          }
        });
  }
  world.launch([&](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.am_send(1, id, 256);
    }
  });
  world.run();
  EXPECT_EQ(seen_src, 0);
  EXPECT_EQ(seen_bytes, 256u);
  EXPECT_GT(handler_time, 0.0);
  EXPECT_EQ(world.comm(1).am_dispatched(), 1u);
}

}  // namespace
}  // namespace polaris::simrt
