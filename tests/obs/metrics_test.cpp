#include "polaris/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "polaris/support/stats.hpp"

namespace polaris::obs {
namespace {

TEST(Counter, ConcurrentAddsSumExactly) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  // Same name resolves to the same object, so the registry sees the total.
  EXPECT_EQ(registry.counter("hits").value(), kThreads * kPerThread);
}

TEST(Counter, AddWithArgument) {
  Counter c;
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12u);
}

TEST(Gauge, SetOverwritesObserveMaxRetains) {
  Gauge g;
  g.set(3.0);
  g.set(1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
  g.observe_max(5.0);
  g.observe_max(2.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
}

TEST(Gauge, ConcurrentObserveMaxKeepsGlobalMax) {
  Gauge g;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g, t] {
      for (int i = 0; i < 10'000; ++i) {
        g.observe_max(static_cast<double>(t * 10'000 + i));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.value(), 8.0 * 10'000 - 1);
}

TEST(HistogramMetric, PercentilesMatchSupportSummary) {
  Histogram h;
  support::Summary reference;
  // Deterministic pseudo-random stream (LCG).
  std::uint64_t state = 12345;
  for (int i = 0; i < 10'000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const double x = static_cast<double>(state >> 40);
    h.record(x);
    reference.add(x);
  }
  EXPECT_EQ(h.count(), reference.count());
  EXPECT_DOUBLE_EQ(h.mean(), reference.mean());
  EXPECT_DOUBLE_EQ(h.min(), reference.min());
  EXPECT_DOUBLE_EQ(h.max(), reference.max());
  EXPECT_DOUBLE_EQ(h.sum(), reference.sum());
  for (double p : {0.0, 1.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), reference.percentile(p)) << "p" << p;
  }
}

TEST(HistogramMetric, EmptyIsZeroes) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(HistogramMetric, ReservoirBoundsMemoryAboveCap) {
  constexpr std::size_t kCap = 256;
  Histogram h(kCap);
  constexpr std::uint64_t kN = 100'000;
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= kN; ++i) {
    h.record(static_cast<double>(i));
    sum += static_cast<double>(i);
  }
  // Count/sum/min/max stay exact; only the percentile sample is bounded.
  EXPECT_EQ(h.count(), kN);
  EXPECT_DOUBLE_EQ(h.sum(), sum);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), static_cast<double>(kN));
  EXPECT_EQ(h.reservoir_size(), kCap);
  EXPECT_EQ(h.reservoir_cap(), kCap);
  // Algorithm R keeps a uniform sample: the median estimate is loose but
  // must land well inside the bulk of the distribution.
  const double p50 = h.percentile(50.0);
  EXPECT_GT(p50, 0.25 * static_cast<double>(kN));
  EXPECT_LT(p50, 0.75 * static_cast<double>(kN));
}

TEST(HistogramMetric, ReservoirSamplingIsDeterministic) {
  Histogram a(128), b(128);
  for (int i = 0; i < 50'000; ++i) {
    const double x = static_cast<double>((i * 2654435761u) % 1'000'003);
    a.record(x);
    b.record(x);
  }
  for (const double p : {1.0, 25.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(a.percentile(p), b.percentile(p)) << "p" << p;
  }
}

TEST(MetricsRegistry, StableIdentityAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  Gauge& g = registry.gauge("x");  // same name, different kind: distinct
  Histogram& h = registry.histogram("x");
  EXPECT_EQ(&a, &registry.counter("x"));
  EXPECT_EQ(&g, &registry.gauge("x"));
  EXPECT_EQ(&h, &registry.histogram("x"));
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsRegistry, DumpIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a.count").add(1);
  registry.gauge("depth").set(4.5);
  registry.histogram("lat").record(1.0);

  std::ostringstream os;
  registry.dump(os);
  const std::string out = os.str();
  const auto a = out.find("a.count");
  const auto b = out.find("b.count");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_NE(out.find("depth"), std::string::npos);
  EXPECT_NE(out.find("lat"), std::string::npos);
}

}  // namespace
}  // namespace polaris::obs
