#include "polaris/obs/sharded.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "polaris/obs/metrics.hpp"

namespace polaris::obs {
namespace {

TEST(ShardedRegistry, RegistrationReturnsStableDenseIds) {
  ShardedRegistry reg(4);
  const auto c1 = reg.counter("events");
  const auto c2 = reg.counter("drops");
  const auto c1b = reg.counter("events");
  EXPECT_EQ(c1.v, c1b.v);
  EXPECT_NE(c1.v, c2.v);
  const auto h1 = reg.log_histogram("lat");
  const auto h1b = reg.log_histogram("lat");
  EXPECT_EQ(h1.v, h1b.v);
}

TEST(ShardedRegistry, CountersSumGaugesMaxHistogramsMerge) {
  ShardedRegistry reg(3);
  const auto c = reg.counter("events");
  const auto g = reg.gauge_max("depth");
  const auto h = reg.log_histogram("bytes");

  for (std::size_t s = 0; s < 3; ++s) {
    reg.shard(s).add(c, s + 1);
    reg.shard(s).observe_max(g, static_cast<double>(10 * (s + 1)));
    reg.shard(s).record(h, 100 * (s + 1));
  }

  EXPECT_EQ(reg.counter_value(c), 1u + 2u + 3u);
  EXPECT_DOUBLE_EQ(reg.gauge_max_value(g), 30.0);
  const LogHistogram merged = reg.merged(h);
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.min(), 100u);
  EXPECT_EQ(merged.max(), 300u);
  EXPECT_EQ(merged.sum(), 600u);
}

TEST(ShardedRegistry, ExportIntoFoldsUnderRegisteredNames) {
  ShardedRegistry reg(2);
  const auto c = reg.counter("x.events");
  const auto g = reg.gauge_max("x.depth");
  const auto h = reg.log_histogram("x.lat");
  reg.shard(0).add(c, 5);
  reg.shard(1).add(c, 7);
  reg.shard(0).observe_max(g, 2.0);
  reg.shard(1).record(h, 9);

  MetricsRegistry out;
  reg.export_into(out);
  EXPECT_EQ(out.counter("x.events").value(), 12u);
  EXPECT_DOUBLE_EQ(out.gauge("x.depth").value(), 2.0);
  EXPECT_EQ(out.log_histogram("x.lat").count(), 1u);
  EXPECT_EQ(out.log_histogram("x.lat").max(), 9u);
}

TEST(ShardedRegistry, ResetClearsShardsButKeepsRegistrations) {
  ShardedRegistry reg(2);
  const auto c = reg.counter("n");
  const auto h = reg.log_histogram("v");
  reg.shard(0).add(c, 3);
  reg.shard(1).record(h, 17);
  reg.reset();
  EXPECT_EQ(reg.counter_value(c), 0u);
  EXPECT_EQ(reg.merged(h).count(), 0u);
  // Ids survive reset; recording resumes cleanly.
  reg.shard(1).add(c);
  EXPECT_EQ(reg.counter_value(c), 1u);
}

// The lifecycle contract under real threads: each worker hammers its own
// shard with plain (non-atomic) ops; after the join the merged values are
// exact.  Run under tsan this doubles as the data-race proof that
// single-owner shards need no synchronization.
TEST(ShardedRegistry, ConcurrentSingleOwnerShardsMergeExactly) {
  constexpr std::size_t kShards = 8;
  constexpr std::uint64_t kPerShard = 200'000;
  ShardedRegistry reg(kShards);
  const auto c = reg.counter("events");
  const auto g = reg.gauge_max("hi");
  const auto h = reg.log_histogram("val");

  std::vector<std::thread> workers;
  workers.reserve(kShards);
  for (std::size_t s = 0; s < kShards; ++s) {
    workers.emplace_back([&reg, c, g, h, s] {
      auto& shard = reg.shard(s);
      LogHistogram& hist = shard.hist(h);  // hot-pointer form
      for (std::uint64_t i = 0; i < kPerShard; ++i) {
        shard.add(c);
        shard.observe_max(g, static_cast<double>(s * kPerShard + i));
        hist.record(i & 1023);
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(reg.counter_value(c), kShards * kPerShard);
  EXPECT_DOUBLE_EQ(reg.gauge_max_value(g),
                   static_cast<double>(kShards * kPerShard - 1));
  const LogHistogram merged = reg.merged(h);
  EXPECT_EQ(merged.count(), kShards * kPerShard);
  EXPECT_EQ(merged.max(), 1023u);
}

}  // namespace
}  // namespace polaris::obs
