// Integration: wall-clock tracing and metrics on the real threaded runtime.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

#include "polaris/obs/clock.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/rt/runtime.hpp"

namespace polaris::rt {
namespace {

TEST(RtTrace, WallClockSpansPerRank) {
  ShmWorld world(2);
  obs::WallClock clock;
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);

  world.run([](Communicator& c) {
    std::vector<std::byte> buf(64 * 1024);  // > eager threshold: rendezvous
    if (c.rank() == 0) {
      c.send(1, 7, buf);
    } else {
      c.recv(0, 7, buf);
    }
    c.barrier();
  });

  const auto tracks = tracer.tracks();
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_EQ(tracks[0].process, "ranks");

  // The 64 KiB send is rendezvous; the barrier's internal sends are eager.
  bool saw_rendezvous = false, saw_recv = false, saw_barrier = false;
  for (const obs::TraceEvent& ev : tracer.snapshot()) {
    EXPECT_GE(ev.dur_ns, 0);
    saw_rendezvous |= ev.name == "send" && ev.category == "rendezvous";
    saw_recv |= ev.name == "recv";
    saw_barrier |= ev.name == "barrier";
  }
  EXPECT_TRUE(saw_rendezvous);
  EXPECT_TRUE(saw_recv);
  EXPECT_TRUE(saw_barrier);
}

TEST(RtTrace, MetricsCountSendsAndMirrorProtocolSplit) {
  ShmWorld world(2);
  obs::MetricsRegistry metrics;
  world.attach_metrics(metrics);

  world.run([](Communicator& c) {
    std::vector<std::byte> small(16), large(64 * 1024);
    if (c.rank() == 0) {
      c.send(1, 1, small);
      c.send(1, 2, large);
    } else {
      c.recv(0, 1, small);
      c.recv(0, 2, large);
    }
  });

  EXPECT_EQ(metrics.counter("rt.sends").value(), 2u);
  EXPECT_EQ(metrics.log_histogram("rt.msg_bytes").count(), 2u);
  EXPECT_EQ(metrics.log_histogram("rt.msg_bytes").max(), 64u * 1024);
  EXPECT_DOUBLE_EQ(metrics.gauge("rt.eager_sends").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("rt.rendezvous_sends").value(), 1.0);
  EXPECT_GE(metrics.gauge("rt.ring_depth_max").value(), 0.0);
}

TEST(RtTrace, CollectiveSpansNestTheirTraffic) {
  ShmWorld world(4);
  obs::WallClock clock;
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);

  world.run([](Communicator& c) {
    std::vector<double> buf(128, static_cast<double>(c.rank()));
    c.allreduce(buf, coll::ReduceOp::kSum);
  });

  std::size_t allreduce_spans = 0;
  for (const obs::TraceEvent& ev : tracer.snapshot()) {
    if (ev.name != "allreduce") continue;
    ++allreduce_spans;
    EXPECT_EQ(ev.category, "coll");
  }
  EXPECT_EQ(allreduce_spans, 4u);  // one per rank
}

}  // namespace
}  // namespace polaris::rt
