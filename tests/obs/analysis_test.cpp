#include "polaris/obs/analysis.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "polaris/obs/trace.hpp"

namespace polaris::obs {
namespace {

Tracer make_tracer() { return Tracer{}; }

TEST(TraceAnalysis, GaplessChainCoversMakespan) {
  Tracer tracer;
  const TrackId r0 = tracer.add_track("ranks", "rank 0");
  const TrackId r1 = tracer.add_track("ranks", "rank 1");
  tracer.complete_span(r0, "compute", "", 0, 100);
  tracer.complete_span(r1, "send", "", 100, 150);
  tracer.complete_span(r0, "recv", "", 250, 50);

  const TraceAnalysis analysis(tracer);
  const CriticalPath path = analysis.critical_path("ranks");
  EXPECT_DOUBLE_EQ(path.makespan_s, 300e-9);
  EXPECT_DOUBLE_EQ(path.length_s, 300e-9);
  EXPECT_DOUBLE_EQ(path.coverage, 1.0);
  ASSERT_EQ(path.steps.size(), 3u);
  EXPECT_EQ(path.steps[0].name, "compute");  // chronological
  EXPECT_EQ(path.steps[1].name, "send");
  EXPECT_EQ(path.steps[2].name, "recv");
}

TEST(TraceAnalysis, OverlapPrefersEarliestStartingActiveSpan) {
  Tracer tracer;
  const TrackId r0 = tracer.add_track("ranks", "rank 0");
  const TrackId r1 = tracer.add_track("ranks", "rank 1");
  tracer.complete_span(r0, "long", "", 0, 200);
  tracer.complete_span(r1, "short", "", 150, 50);  // same end, later start

  const TraceAnalysis analysis(tracer);
  const CriticalPath path = analysis.critical_path("ranks");
  ASSERT_EQ(path.steps.size(), 1u);
  EXPECT_EQ(path.steps[0].name, "long");
  EXPECT_DOUBLE_EQ(path.coverage, 1.0);
}

TEST(TraceAnalysis, GapsJumpToLatestEarlierSpan) {
  Tracer tracer;
  const TrackId r0 = tracer.add_track("ranks", "rank 0");
  tracer.complete_span(r0, "early", "", 0, 100);
  tracer.complete_span(r0, "late", "", 150, 100);  // hole in [100, 150)

  const TraceAnalysis analysis(tracer);
  const CriticalPath path = analysis.critical_path("ranks");
  EXPECT_DOUBLE_EQ(path.makespan_s, 250e-9);
  EXPECT_DOUBLE_EQ(path.length_s, 200e-9);
  EXPECT_NEAR(path.coverage, 0.8, 1e-12);
  ASSERT_EQ(path.steps.size(), 2u);
  EXPECT_EQ(path.steps[0].name, "early");
  EXPECT_EQ(path.steps[1].name, "late");
}

TEST(TraceAnalysis, ContributorsAggregateByName) {
  Tracer tracer;
  const TrackId r0 = tracer.add_track("ranks", "rank 0");
  tracer.complete_span(r0, "wait", "", 0, 100);
  tracer.complete_span(r0, "compute", "", 100, 50);
  tracer.complete_span(r0, "wait", "", 150, 300);

  const TraceAnalysis analysis(tracer);
  const CriticalPath path = analysis.critical_path("ranks");
  ASSERT_EQ(path.contributors.size(), 2u);
  EXPECT_EQ(path.contributors[0].name, "wait");  // descending by time
  EXPECT_EQ(path.contributors[0].spans, 2u);
  EXPECT_DOUBLE_EQ(path.contributors[0].seconds, 400e-9);
  EXPECT_NEAR(path.contributors[0].fraction, 400.0 / 450.0, 1e-12);
}

TEST(TraceAnalysis, ProcessFilterSelectsTracks) {
  Tracer tracer;
  const TrackId r0 = tracer.add_track("ranks", "rank 0");
  const TrackId l0 = tracer.add_track("links", "link 0");
  tracer.complete_span(r0, "compute", "", 0, 100);
  tracer.complete_span(l0, "busy", "", 0, 500);

  const TraceAnalysis analysis(tracer);
  const CriticalPath ranks = analysis.critical_path("ranks");
  EXPECT_DOUBLE_EQ(ranks.makespan_s, 100e-9);
  ASSERT_EQ(ranks.steps.size(), 1u);
  EXPECT_EQ(ranks.steps[0].name, "compute");

  const auto totals = analysis.total_by_name("links");
  ASSERT_EQ(totals.size(), 1u);
  EXPECT_EQ(totals[0].name, "busy");
  EXPECT_DOUBLE_EQ(totals[0].seconds, 500e-9);
}

TEST(TraceAnalysis, EmptyTraceIsBenign) {
  const Tracer tracer = make_tracer();
  const TraceAnalysis analysis(tracer);
  const CriticalPath path = analysis.critical_path("ranks");
  EXPECT_DOUBLE_EQ(path.makespan_s, 0.0);
  EXPECT_TRUE(path.steps.empty());
}

TEST(TraceAnalysis, ReportMentionsCoverageAndContributors) {
  Tracer tracer;
  const TrackId r0 = tracer.add_track("ranks", "rank 0");
  tracer.complete_span(r0, "compute", "", 0, 100);
  const TraceAnalysis analysis(tracer);
  std::ostringstream os;
  TraceAnalysis::report(os, analysis.critical_path("ranks"));
  EXPECT_NE(os.str().find("critical path"), std::string::npos);
  EXPECT_NE(os.str().find("compute"), std::string::npos);
}

}  // namespace
}  // namespace polaris::obs
