#include <gtest/gtest.h>

#include <cstdint>

#include "polaris/obs/metrics.hpp"

namespace polaris::obs {
namespace {

TEST(LogHistogram, EmptyReportsZeros) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(LogHistogram, SmallValuesAreExact) {
  LogHistogram h;
  for (std::uint64_t v = 0; v < LogHistogram::kSub; ++v) h.record(v);
  EXPECT_EQ(h.count(), LogHistogram::kSub);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), LogHistogram::kSub - 1);
  EXPECT_EQ(h.sum(), (LogHistogram::kSub - 1) * LogHistogram::kSub / 2);
  // Values below kSub land in dedicated unit-width buckets.
  for (std::uint64_t v = 0; v < LogHistogram::kSub; ++v) {
    EXPECT_EQ(LogHistogram::bucket_index(v), v);
    EXPECT_EQ(LogHistogram::bucket_floor(v), v);
    EXPECT_EQ(LogHistogram::bucket_width(v), 1u);
  }
}

TEST(LogHistogram, BucketMappingIsMonotoneAndCovering) {
  std::size_t prev = 0;
  for (std::uint64_t v = 1; v < (std::uint64_t{1} << 40); v = v * 2 + v / 3 + 1) {
    const std::size_t i = LogHistogram::bucket_index(v);
    EXPECT_GE(i, prev) << "v=" << v;
    prev = i;
    // v lies inside its bucket's [floor, floor+width) span.
    EXPECT_LE(LogHistogram::bucket_floor(i), v) << "v=" << v;
    EXPECT_GT(LogHistogram::bucket_floor(i) + LogHistogram::bucket_width(i), v)
        << "v=" << v;
  }
}

TEST(LogHistogram, RelativeQuantizationErrorIsBounded) {
  // 32 sub-buckets per octave bound the quantization at 1/32 ~ 3.1%.
  for (std::uint64_t v = LogHistogram::kSub; v < (std::uint64_t{1} << 50);
       v = v * 5 / 3) {
    const std::size_t i = LogHistogram::bucket_index(v);
    const double width = static_cast<double>(LogHistogram::bucket_width(i));
    const double floor = static_cast<double>(LogHistogram::bucket_floor(i));
    EXPECT_LE(width / floor, 1.0 / 16.0 + 1e-12) << "v=" << v;
  }
}

TEST(LogHistogram, PercentileWalksTheDistribution) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_NEAR(h.percentile(50.0), 500.0, 500.0 / 16.0);
  EXPECT_NEAR(h.percentile(99.0), 990.0, 990.0 / 16.0);
  EXPECT_NEAR(h.percentile(100.0), 1000.0, 1000.0 / 16.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(LogHistogram, MergeAccumulatesAtBucketResolution) {
  LogHistogram a, b;
  for (std::uint64_t v = 0; v < 100; ++v) a.record(v);
  for (std::uint64_t v = 1000; v < 1100; ++v) b.record(v * 17);
  const std::uint64_t sum = a.sum() + b.sum();
  a.merge_from(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.sum(), sum);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 1099u * 17u);
  // The upper half of the merged distribution is b's.
  EXPECT_NEAR(a.percentile(75.0), 1050.0 * 17.0, 1050.0 * 17.0 / 16.0);
}

TEST(LogHistogram, StaticMergeEqualsSequentialMergeFrom) {
  LogHistogram a, b, c;
  for (std::uint64_t v = 1; v <= 500; ++v) a.record(v);
  for (std::uint64_t v = 1; v <= 300; ++v) b.record(v * 7);
  for (std::uint64_t v = 1; v <= 100; ++v) c.record(v * 1000);

  LogHistogram sequential;
  sequential.merge_from(a);
  sequential.merge_from(b);
  sequential.merge_from(c);

  const LogHistogram* parts[] = {&a, &b, &c};
  const LogHistogram merged = LogHistogram::merge(parts);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(merged.sum(), sequential.sum());
  EXPECT_EQ(merged.min(), sequential.min());
  EXPECT_EQ(merged.max(), sequential.max());
  for (const double p : {1.0, 50.0, 90.0, 99.0, 99.9}) {
    EXPECT_DOUBLE_EQ(merged.percentile(p), sequential.percentile(p)) << p;
  }
}

TEST(LogHistogram, StaticMergeOfNothingIsEmpty) {
  const LogHistogram merged = LogHistogram::merge({});
  EXPECT_EQ(merged.count(), 0u);
  EXPECT_DOUBLE_EQ(merged.percentile(99.0), 0.0);
}

TEST(LogHistogram, QuantileIsPercentileOnUnitScale) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), h.percentile(q * 100.0)) << q;
  }
}

TEST(LogHistogram, MergeFromEmptyKeepsStats) {
  LogHistogram a, empty;
  a.record(7);
  a.merge_from(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 7u);
}

TEST(LogHistogram, HandlesHugeValues) {
  LogHistogram h;
  const std::uint64_t huge = ~std::uint64_t{0};
  h.record(huge);
  h.record(1);
  EXPECT_EQ(h.max(), huge);
  EXPECT_LT(LogHistogram::bucket_index(huge), LogHistogram::kBuckets);
}

TEST(LogHistogram, ResetClearsEverythingAndIsReusable) {
  LogHistogram h;
  h.record(3);
  h.record(1'000'000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
  // A reset histogram behaves exactly like a fresh one.
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.sum(), 42u);
}

TEST(MetricsRegistry, LogHistogramsAreNamedAndListed) {
  MetricsRegistry reg;
  reg.log_histogram("x.latency").record(100);
  reg.log_histogram("x.latency").record(200);
  EXPECT_EQ(reg.log_histogram("x.latency").count(), 2u);
  EXPECT_GE(reg.size(), 1u);
}

}  // namespace
}  // namespace polaris::obs
