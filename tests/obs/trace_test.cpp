#include "polaris/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "polaris/obs/clock.hpp"

namespace polaris::obs {
namespace {

/// Manually advanced clock for deterministic span timestamps.
class TestClock final : public ClockSource {
 public:
  std::int64_t now_ns() const override { return now_; }
  void set(std::int64_t ns) { now_ = ns; }

 private:
  std::int64_t now_ = 0;
};

// --------------------------------------------------- mini JSON validator
//
// Recursive-descent well-formedness check (structure only, no DOM).  Small
// on purpose: enough to prove write_json emits valid JSON without pulling
// in a parser dependency.

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + i >= s_.size() ||
                !std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const std::string& lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// One exported event line, extracted by string scanning (the exporter
/// writes one event per line with a fixed key order).
struct ExportedEvent {
  char ph = '?';
  int pid = -1;
  int tid = -1;
  double ts = -1.0;
  double dur = -1.0;
  std::string name;
};

double num_after(const std::string& line, const std::string& key) {
  const auto at = line.find(key);
  if (at == std::string::npos) return -1.0;
  return std::stod(line.substr(at + key.size()));
}

std::string str_after(const std::string& line, const std::string& key) {
  const auto at = line.find(key);
  if (at == std::string::npos) return {};
  const auto start = at + key.size();
  const auto end = line.find('"', start);
  return line.substr(start, end - start);
}

std::vector<ExportedEvent> parse_exported(const std::string& json) {
  std::vector<ExportedEvent> out;
  std::istringstream is(json);
  std::string line;
  while (std::getline(is, line)) {
    const auto ph = line.find("\"ph\":\"");
    if (ph == std::string::npos) continue;
    ExportedEvent ev;
    ev.ph = line[ph + 6];
    ev.pid = static_cast<int>(num_after(line, "\"pid\":"));
    ev.tid = static_cast<int>(num_after(line, "\"tid\":"));
    ev.ts = num_after(line, "\"ts\":");
    ev.dur = num_after(line, "\"dur\":");
    ev.name = str_after(line, "\"name\":\"");
    out.push_back(std::move(ev));
  }
  return out;
}

// ------------------------------------------------------------------ tests

TEST(Tracer, ScopedSpanRecordsClockedDuration) {
  TestClock clock;
  Tracer tracer(clock);
  const TrackId track = tracer.add_track("ranks", "rank 0");

  clock.set(100);
  {
    ScopedSpan span(&tracer, track, "work", "test");
    clock.set(250);
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].start_ns, 100);
  EXPECT_EQ(events[0].dur_ns, 150);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].category, "test");
}

TEST(Tracer, NullTracerScopedSpanIsNoop) {
  ScopedSpan span(nullptr, 0, "ignored");
  span.end();  // idempotent, no crash
}

TEST(Tracer, OpenSpansClosedAtSnapshotTime) {
  TestClock clock;
  Tracer tracer(clock);
  const TrackId track = tracer.add_track("ranks", "rank 0");
  clock.set(10);
  const SpanId id = tracer.begin_span(track, "open");
  clock.set(70);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].dur_ns, 60);  // closed at snapshot, not in the log
  tracer.end_span(id);
  EXPECT_EQ(tracer.snapshot()[0].dur_ns, 60);
}

TEST(Tracer, ClocklessCompleteSpanAndInstantAt) {
  Tracer tracer;
  const TrackId track = tracer.add_track("sched", "jobs");
  tracer.complete_span(track, "job 1", "job", 1'000, 2'000);
  tracer.instant_at(track, "submit", "sched", 500);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].start_ns, 1'000);
  EXPECT_EQ(events[0].dur_ns, 2'000);
  EXPECT_EQ(events[1].kind, EventKind::kInstant);
  EXPECT_EQ(events[1].start_ns, 500);
}

TEST(Tracer, JsonIsWellFormed) {
  TestClock clock;
  Tracer tracer(clock);
  const TrackId t0 = tracer.add_track("ranks", "rank 0");
  const TrackId t1 = tracer.add_track("links", "link 0");
  // Names exercising every escape class.
  tracer.complete_span(t0, "quote \" backslash \\ newline \n tab \t", "c\x01t",
                       0, 50);
  tracer.instant_at(t1, "marker", "", 25);
  clock.set(40);
  tracer.counter(t0, "depth", 3.5);

  std::ostringstream os;
  tracer.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(Tracer, JsonSpansAreTimeOrderedPerTid) {
  Tracer tracer;
  const TrackId t0 = tracer.add_track("ranks", "rank 0");
  const TrackId t1 = tracer.add_track("ranks", "rank 1");
  // Recorded deliberately out of order.
  tracer.complete_span(t0, "b", "", 2'000, 500);
  tracer.complete_span(t1, "c", "", 100, 50);
  tracer.complete_span(t0, "a", "", 1'000, 500);

  std::ostringstream os;
  tracer.write_json(os);
  std::map<int, double> last_ts;
  for (const ExportedEvent& ev : parse_exported(os.str())) {
    if (ev.ph != 'X') continue;
    auto [it, inserted] = last_ts.emplace(ev.tid, ev.ts);
    if (!inserted) {
      EXPECT_LE(it->second, ev.ts) << "tid " << ev.tid;
      it->second = ev.ts;
    }
  }
  EXPECT_EQ(last_ts.size(), 2u);
}

TEST(Tracer, PartialOverlapsSplitIntoLanesNestingStays) {
  Tracer tracer;
  const TrackId track = tracer.add_track("ranks", "rank 0");
  tracer.complete_span(track, "outer", "", 0, 1'000);
  tracer.complete_span(track, "nested", "", 100, 200);    // nests in outer
  tracer.complete_span(track, "overlap", "", 500, 1'000); // partial overlap

  std::ostringstream os;
  tracer.write_json(os);
  std::map<std::string, int> tid_of;
  for (const ExportedEvent& ev : parse_exported(os.str())) {
    if (ev.ph == 'X') tid_of[ev.name] = ev.tid;
  }
  ASSERT_EQ(tid_of.size(), 3u);
  EXPECT_EQ(tid_of["outer"], tid_of["nested"]);
  EXPECT_NE(tid_of["outer"], tid_of["overlap"]);

  // Every tid's timeline must nest properly after lane assignment.
  std::map<int, std::vector<std::pair<double, double>>> by_tid;
  for (const ExportedEvent& ev : parse_exported(os.str())) {
    if (ev.ph == 'X') by_tid[ev.tid].push_back({ev.ts, ev.ts + ev.dur});
  }
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end());
    std::vector<double> open;
    for (const auto& [start, end] : spans) {
      while (!open.empty() && open.back() <= start) open.pop_back();
      if (!open.empty()) {
        EXPECT_LE(end, open.back()) << "partial overlap on tid " << tid;
      }
      open.push_back(end);
    }
  }
}

TEST(Tracer, ProcessesGroupTracksIntoPids) {
  Tracer tracer;
  const TrackId r0 = tracer.add_track("ranks", "rank 0");
  const TrackId l0 = tracer.add_track("links", "link 0");
  tracer.complete_span(r0, "a", "", 0, 10);
  tracer.complete_span(l0, "busy", "", 0, 10);

  std::ostringstream os;
  tracer.write_json(os);
  std::vector<int> pids;
  for (const ExportedEvent& ev : parse_exported(os.str())) {
    if (ev.ph == 'X') pids.push_back(ev.pid);
  }
  ASSERT_EQ(pids.size(), 2u);
  EXPECT_NE(pids[0], pids[1]);
}

}  // namespace
}  // namespace polaris::obs
