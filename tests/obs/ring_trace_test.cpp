// Ring-mode tracer: bounded rings, interned names, deterministic sampling,
// streaming export.  The multi-threaded cases double as the tsan proof of
// the SPSC producer/drainer contract.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "polaris/obs/clock.hpp"
#include "polaris/obs/trace.hpp"

namespace polaris::obs {
namespace {

RingOptions small_ring(std::size_t capacity, std::uint32_t sample_every = 1) {
  RingOptions opts;
  opts.ring_capacity = capacity;
  opts.sample_every = sample_every;
  return opts;
}

TEST(RingTracer, CompactEventsDecodeWithInternedNames) {
  Tracer tracer(RingOptions{});  // clockless: explicit timestamps only
  const TrackId t = tracer.add_track("ranks", "rank 0");
  const NameId send = tracer.intern("send");
  const NameId p2p = tracer.intern("p2p");
  tracer.complete_span(t, send, p2p, 100, 40);
  tracer.counter(t, tracer.intern("depth"), 3.5);

  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kSpan);
  EXPECT_EQ(events[0].start_ns, 100);
  EXPECT_EQ(events[0].dur_ns, 40);
  EXPECT_EQ(events[0].name, "send");
  EXPECT_EQ(events[0].category, "p2p");
  EXPECT_EQ(events[1].kind, EventKind::kCounter);
  EXPECT_DOUBLE_EQ(events[1].value, 3.5);
  EXPECT_EQ(events[1].name, "depth");
}

TEST(RingTracer, InternIsIdempotentAndRoundTrips) {
  Tracer tracer(RingOptions{});
  EXPECT_EQ(tracer.intern(""), kNoName);
  const NameId a = tracer.intern("busy");
  EXPECT_EQ(tracer.intern("busy"), a);
  EXPECT_NE(tracer.intern("idle"), a);
  EXPECT_EQ(tracer.name_of(a), "busy");
  EXPECT_EQ(tracer.name_of(kNoName), "");
}

TEST(RingTracer, BeginEndSpanRecordsThroughSlotPool) {
  WallClock clock;
  Tracer tracer(clock, RingOptions{});
  const TrackId t = tracer.add_track("ranks", "rank 0");
  const NameId work = tracer.intern("work");
  const SpanId id = tracer.begin_span(t, work);
  EXPECT_TRUE(id.valid());
  tracer.end_span(id);

  const Tracer::Stats s = tracer.stats();
  EXPECT_EQ(s.spans_total, 1u);
  EXPECT_EQ(s.sampled_events, 1u);
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_GE(events[0].dur_ns, 0);
}

TEST(RingTracer, OpenSlotExhaustionDropsInsteadOfBlocking) {
  WallClock clock;
  RingOptions opts;
  opts.open_span_slots = 1;
  Tracer tracer(clock, opts);
  const TrackId t = tracer.add_track("ranks", "rank 0");
  const NameId n = tracer.intern("outer");
  const SpanId a = tracer.begin_span(t, n);
  const SpanId b = tracer.begin_span(t, n);  // pool exhausted
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(b.valid());
  tracer.end_span(b);  // invalid id: silent no-op
  tracer.end_span(a);
  const Tracer::Stats s = tracer.stats();
  EXPECT_EQ(s.spans_total, 2u);
  EXPECT_EQ(s.dropped_no_slot, 1u);
  EXPECT_EQ(tracer.snapshot().size(), 1u);
}

TEST(RingTracer, FullRingDropsNewestAndCountsDrops) {
  Tracer tracer(small_ring(8));
  const TrackId t = tracer.add_track("ranks", "rank 0");
  const NameId tick = tracer.intern("tick");
  for (int i = 0; i < 20; ++i) tracer.instant_at(t, "tick", "", i);
  (void)tick;

  const Tracer::Stats s = tracer.stats();
  EXPECT_EQ(s.instants_total, 20u);
  EXPECT_EQ(s.sampled_events, 8u);
  EXPECT_EQ(s.dropped_ring_full, 12u);
  // Drop-newest: the ring holds a coherent prefix of the track's history.
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(events[i].start_ns, i);
}

TEST(RingTracer, SamplingIsDeterministicOneInN) {
  Tracer tracer(small_ring(1 << 10, /*sample_every=*/4));
  const TrackId t = tracer.add_track("ranks", "rank 0");
  const NameId n = tracer.intern("op");
  for (int i = 0; i < 100; ++i) {
    tracer.complete_span(t, n, kNoName, i * 10, 5);
  }
  const std::vector<TraceEvent> events = tracer.snapshot();
  ASSERT_EQ(events.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(events[i].start_ns, i * 4 * 10);  // every 4th span, from the 1st
  }
  const Tracer::Stats s = tracer.stats();
  EXPECT_EQ(s.spans_total, 100u);
  EXPECT_EQ(s.sampled_events, 25u);
  // Busy-ns accounting stays exact despite sampling (durations are known
  // at complete_span time).
  EXPECT_EQ(s.span_ns_total, 100u * 5u);
}

TEST(RingTracer, DisabledTracerRecordsNothing) {
  Tracer tracer(RingOptions{});
  const TrackId t = tracer.add_track("ranks", "rank 0");
  const NameId n = tracer.intern("op");
  tracer.set_enabled(false);
  tracer.complete_span(t, n, kNoName, 0, 1);
  EXPECT_FALSE(tracer.begin_span(t, n).valid());
  tracer.instant(t, n);
  tracer.counter(t, n, 1.0);
  Tracer::Stats s = tracer.stats();
  EXPECT_EQ(s.spans_total + s.instants_total + s.counters_total, 0u);
  tracer.set_enabled(true);
  tracer.complete_span(t, n, kNoName, 0, 1);
  EXPECT_EQ(tracer.stats().spans_total, 1u);
}

TEST(RingTracer, WriteJsonIsRepeatableAndNonConsuming) {
  Tracer tracer(RingOptions{});
  const TrackId t = tracer.add_track("ranks", "rank 0");
  tracer.complete_span(t, tracer.intern("a"), tracer.intern("x"), 0, 10);
  tracer.complete_span(t, tracer.intern("b"), tracer.intern("x"), 20, 10);
  std::ostringstream first, second;
  tracer.write_json(first);
  tracer.write_json(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("\"name\":\"a\""), std::string::npos);
  EXPECT_EQ(tracer.stats().drained_events, 0u);
  EXPECT_EQ(tracer.event_count(), 2u);
}

TEST(RingTracer, StreamingExportExceedsRingCapacity) {
  Tracer tracer(small_ring(16));
  const TrackId t = tracer.add_track("ranks", "rank 0");
  const NameId n = tracer.intern("op");
  std::ostringstream os;
  TraceStreamWriter writer(tracer, os);
  std::int64_t at = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 10; ++i) {
      tracer.complete_span(t, n, kNoName, at, 1);
      at += 2;
    }
    writer.drain();
  }
  writer.finish();
  // 1000 spans flowed through a 16-slot ring with zero loss.
  EXPECT_EQ(writer.events_written(), 1000u);
  const Tracer::Stats s = tracer.stats();
  EXPECT_EQ(s.spans_total, 1000u);
  EXPECT_EQ(s.drained_events, 1000u);
  EXPECT_EQ(s.dropped_ring_full, 0u);
  EXPECT_EQ(tracer.event_count(), 0u);  // everything consumed
}

// Records the same deterministic per-track event streams using `workers`
// threads (tracks partitioned round-robin) and returns the streamed JSON.
std::string traced_json(std::size_t workers, std::uint32_t sample_every) {
  Tracer tracer(small_ring(1 << 12, sample_every));
  constexpr std::size_t kTracks = 8;
  constexpr int kEvents = 200;
  std::vector<TrackId> tracks;
  std::vector<NameId> names;
  for (std::size_t t = 0; t < kTracks; ++t) {
    tracks.push_back(
        tracer.add_track("ranks", "rank " + std::to_string(t)));
    names.push_back(tracer.intern("op" + std::to_string(t % 3)));
  }
  const NameId cat = tracer.intern("work");
  std::vector<std::thread> pool;
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      for (std::size_t t = w; t < kTracks; t += workers) {
        for (int i = 0; i < kEvents; ++i) {
          tracer.complete_span(tracks[t], names[t], cat,
                               i * 100 + static_cast<std::int64_t>(t),
                               50);
        }
      }
    });
  }
  for (auto& th : pool) th.join();
  std::ostringstream os;
  TraceStreamWriter writer(tracer, os);
  writer.finish();
  return os.str();
}

TEST(RingTracer, SampledTraceIdenticalAcrossRunsAndWorkerCounts) {
  // Same seed/program => byte-identical sampled trace, however the record
  // work was spread over threads, and stably across repeated runs.
  const std::string one = traced_json(1, 4);
  EXPECT_EQ(one, traced_json(4, 4));
  EXPECT_EQ(one, traced_json(3, 4));
  EXPECT_EQ(one, traced_json(1, 4));
  // Unsampled runs agree too (and differ from sampled ones).
  const std::string full = traced_json(1, 1);
  EXPECT_EQ(full, traced_json(4, 1));
  EXPECT_NE(full, one);
}

// tsan stress: per-thread producers hammer their own tracks while the main
// thread concurrently drains.  After the join, conservation must hold
// exactly: every successfully recorded event was either drained or is
// still in a ring; drops are counted, never silent.
TEST(RingTracer, ConcurrentProducersAndDrainerConserveEvents) {
  WallClock clock;
  Tracer tracer(clock, small_ring(1 << 8));
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<TrackId> tracks;
  std::vector<NameId> names;
  for (std::size_t t = 0; t < kThreads; ++t) {
    tracks.push_back(
        tracer.add_track("ranks", "rank " + std::to_string(t)));
    names.push_back(tracer.intern("op" + std::to_string(t)));
  }
  std::ostringstream os;
  TraceStreamWriter writer(tracer, os);

  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        if ((i & 7) == 0) {
          tracer.instant(tracks[t], names[t]);
        } else {
          tracer.complete_span(tracks[t], names[t], kNoName,
                               static_cast<std::int64_t>(i), 1);
        }
      }
    });
  }
  for (int round = 0; round < 200; ++round) writer.drain();
  for (auto& p : producers) p.join();
  writer.finish();

  const Tracer::Stats s = tracer.stats();
  EXPECT_EQ(s.spans_total + s.instants_total, kThreads * kPerThread);
  EXPECT_EQ(s.sampled_events,
            s.spans_total + s.instants_total - s.dropped_ring_full);
  EXPECT_EQ(s.drained_events, s.sampled_events);  // finish() drained the rest
  EXPECT_EQ(writer.events_written(), s.drained_events);
  EXPECT_EQ(tracer.event_count(), 0u);
}

}  // namespace
}  // namespace polaris::obs
