// Integration: the simulated runtime's instrumentation, end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "polaris/obs/analysis.hpp"
#include "polaris/obs/clock.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/workload/apps.hpp"

namespace polaris::simrt {
namespace {

using fabric::fabrics::infiniband_4x;
using fabric::fabrics::myrinet2000;
using obs::TraceEvent;

/// Track id for "rank N" in process "ranks", or max() if absent.
obs::TrackId rank_track(const obs::Tracer& tracer, int rank) {
  const auto tracks = tracer.tracks();
  const std::string want = "rank " + std::to_string(rank);
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i].process == "ranks" && tracks[i].name == want) {
      return static_cast<obs::TrackId>(i);
    }
  }
  return std::numeric_limits<obs::TrackId>::max();
}

std::vector<TraceEvent> spans_on(const std::vector<TraceEvent>& events,
                                 obs::TrackId track) {
  std::vector<TraceEvent> out;
  for (const TraceEvent& ev : events) {
    if (ev.track == track && ev.kind == obs::EventKind::kSpan) {
      out.push_back(ev);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

const TraceEvent* find_span(const std::vector<TraceEvent>& spans,
                            const std::string& name) {
  for (const TraceEvent& ev : spans) {
    if (ev.name == name) return &ev;
  }
  return nullptr;
}

bool nested_in(const TraceEvent& inner, const TraceEvent& outer) {
  return inner.start_ns >= outer.start_ns &&
         inner.end_ns() <= outer.end_ns();
}

TEST(SimTrace, EagerSendNestsInjectPhase) {
  SimWorld world(2, infiniband_4x());
  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);
  world.launch([](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 64);
    } else {
      co_await c.recv(0, 0);
    }
  });
  world.run();

  const auto spans = spans_on(tracer.snapshot(), rank_track(tracer, 0));
  const TraceEvent* send = find_span(spans, "send");
  const TraceEvent* inject = find_span(spans, "eager:inject");
  ASSERT_NE(send, nullptr);
  ASSERT_NE(inject, nullptr);
  EXPECT_EQ(send->category, "eager");
  EXPECT_TRUE(nested_in(*inject, *send));
}

TEST(SimTrace, RendezvousPhasesNestInProtocolOrder) {
  // Myrinet: user-level but no RDMA -> plain rendezvous ("rdv:" spans).
  SimWorld world(2, myrinet2000());
  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);
  world.launch([](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 1 << 20);
    } else {
      co_await c.recv(0, 0);
    }
  });
  world.run();

  const auto spans = spans_on(tracer.snapshot(), rank_track(tracer, 0));
  const TraceEvent* send = find_span(spans, "send");
  ASSERT_NE(send, nullptr);
  EXPECT_EQ(send->category, "rendezvous");

  const TraceEvent* rts = find_span(spans, "rdv:rts");
  const TraceEvent* sync = find_span(spans, "rdv:sync");
  const TraceEvent* payload = find_span(spans, "rdv:payload");
  ASSERT_NE(rts, nullptr);
  ASSERT_NE(sync, nullptr);
  ASSERT_NE(payload, nullptr);
  EXPECT_TRUE(nested_in(*rts, *send));
  EXPECT_TRUE(nested_in(*sync, *send));
  EXPECT_TRUE(nested_in(*payload, *send));
  // Handshake before synchronization before payload.
  EXPECT_LE(rts->start_ns, sync->start_ns);
  EXPECT_LE(sync->end_ns(), payload->start_ns + 1);

  // Receiver posts, waits, then pays CPU time.
  const auto r1 = spans_on(tracer.snapshot(), rank_track(tracer, 1));
  const TraceEvent* recv = find_span(r1, "recv");
  const TraceEvent* wait = find_span(r1, "recv:wait");
  ASSERT_NE(recv, nullptr);
  ASSERT_NE(wait, nullptr);
  EXPECT_TRUE(nested_in(*wait, *recv));
}

TEST(SimTrace, RdmaFabricUsesRdmaPhaseNames) {
  SimWorld world(2, infiniband_4x());
  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);
  world.launch([](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 1 << 20);
    } else {
      co_await c.recv(0, 0);
    }
  });
  world.run();

  const auto spans = spans_on(tracer.snapshot(), rank_track(tracer, 0));
  EXPECT_NE(find_span(spans, "rdma:payload"), nullptr);
  EXPECT_EQ(find_span(spans, "rdv:payload"), nullptr);
}

TEST(SimTrace, CriticalPathCoversHaloMakespan) {
  constexpr std::size_t kRanks = 8;
  workload::Halo3DConfig cfg;
  cfg.n = 16;
  cfg.iterations = 3;

  SimWorld world(kRanks, infiniband_4x());
  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);
  workload::AppResult res;
  world.launch(workload::make_halo3d(cfg, kRanks, &res));
  const double makespan = world.run();

  const obs::TraceAnalysis analysis(tracer);
  const obs::CriticalPath path = analysis.critical_path("ranks");
  ASSERT_GT(makespan, 0.0);
  EXPECT_GE(path.coverage, 0.95);
  EXPECT_NEAR(path.length_s, makespan, 0.05 * makespan);
  EXPECT_FALSE(path.contributors.empty());
}

TEST(SimTrace, LinkBusySpansSumToNetworkStats) {
  SimWorld world(4, infiniband_4x());
  obs::SimClock clock(world.engine());
  obs::Tracer tracer(clock);
  world.attach_tracer(tracer);
  world.launch([](SimComm& c) -> des::Task<void> {
    co_await c.alltoall(64 * 1024);
  });
  world.run();

  const auto tracks = tracer.tracks();
  double busy_s = 0.0;
  std::size_t link_tracks = 0;
  for (const TraceEvent& ev : tracer.snapshot()) {
    if (ev.kind == obs::EventKind::kSpan && ev.name == "busy" &&
        tracks[ev.track].process == "links") {
      busy_s += static_cast<double>(ev.dur_ns) * 1e-9;
    }
  }
  for (const auto& t : tracks) link_tracks += t.process == "links";
  EXPECT_GT(link_tracks, 0u);
  const double expected = world.network().stats().total_link_busy_s;
  EXPECT_NEAR(busy_s, expected, 1e-9 + 0.01 * expected);
}

TEST(SimTrace, MetricsMirrorRunTotals) {
  SimWorld world(2, infiniband_4x());
  obs::MetricsRegistry metrics;
  world.attach_metrics(metrics);
  world.launch([](SimComm& c) -> des::Task<void> {
    if (c.rank() == 0) {
      co_await c.send(1, 0, 64);
      co_await c.send(1, 0, 1 << 20);
    } else {
      co_await c.recv(0, 0);
      co_await c.recv(0, 0);
    }
  });
  world.run();

  EXPECT_EQ(metrics.counter("simrt.sends").value(), 2u);
  EXPECT_EQ(metrics.log_histogram("simrt.msg_bytes").count(), 2u);
  EXPECT_DOUBLE_EQ(metrics.gauge("simrt.eager_sends").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauge("simrt.rendezvous_sends").value(), 1.0);
  EXPECT_DOUBLE_EQ(
      metrics.gauge("fabric.messages").value(),
      static_cast<double>(world.network().stats().messages));
  EXPECT_DOUBLE_EQ(
      metrics.gauge("des.events_executed").value(),
      static_cast<double>(world.engine().stats().executed));
  EXPECT_GT(metrics.gauge("des.max_queue_depth").value(), 0.0);
}

TEST(SimTrace, UntracedRunStaysClean) {
  // No tracer, no metrics: nothing should be recorded anywhere and the
  // simulation result must be identical to a traced one.
  workload::Halo3DConfig cfg;
  cfg.n = 8;
  cfg.iterations = 2;

  workload::AppResult res1, res2;
  SimWorld plain(8, infiniband_4x());
  plain.launch(workload::make_halo3d(cfg, 8, &res1));
  const double t_plain = plain.run();

  SimWorld traced(8, infiniband_4x());
  obs::SimClock clock(traced.engine());
  obs::Tracer tracer(clock);
  obs::MetricsRegistry metrics;
  traced.attach_tracer(tracer);
  traced.attach_metrics(metrics);
  traced.launch(workload::make_halo3d(cfg, 8, &res2));
  const double t_traced = traced.run();

  EXPECT_DOUBLE_EQ(t_plain, t_traced);  // observation never changes timing
  EXPECT_GT(tracer.event_count(), 0u);
}

}  // namespace
}  // namespace polaris::simrt
