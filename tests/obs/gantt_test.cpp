#include "polaris/sched/gantt.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "polaris/obs/trace.hpp"

namespace polaris::sched {
namespace {

Job make_job(std::uint64_t id, double submit, double start, double runtime,
             std::size_t width) {
  Job j;
  j.id = id;
  j.submit = submit;
  j.runtime = runtime;
  j.estimate = runtime;
  j.width = width;
  j.start = start;
  j.finish = start >= 0.0 ? start + runtime : -1.0;
  return j;
}

TEST(Gantt, ExportsScheduledJobsAsSpans) {
  std::vector<Job> jobs;
  jobs.push_back(make_job(1, 0.0, 0.0, 10.0, 4));
  jobs.push_back(make_job(2, 1.0, 5.0, 7.0, 2));   // overlaps job 1
  jobs.push_back(make_job(3, 2.0, -1.0, 3.0, 1));  // never scheduled

  obs::Tracer tracer;  // clockless: explicit timestamps only
  EXPECT_EQ(export_gantt(jobs, tracer), 2u);

  std::size_t spans = 0, instants = 0;
  for (const obs::TraceEvent& ev : tracer.snapshot()) {
    if (ev.kind == obs::EventKind::kSpan) {
      ++spans;
      EXPECT_EQ(ev.category, "job");
    } else if (ev.kind == obs::EventKind::kInstant) {
      ++instants;
    }
  }
  EXPECT_EQ(spans, 2u);
  EXPECT_EQ(instants, 3u);  // every submission, scheduled or not

  // Seconds map to simulated nanoseconds.
  const auto events = tracer.snapshot();
  bool found = false;
  for (const obs::TraceEvent& ev : events) {
    if (ev.kind == obs::EventKind::kSpan && ev.name.find("job 2") == 0) {
      EXPECT_EQ(ev.start_ns, 5'000'000'000LL);
      EXPECT_EQ(ev.dur_ns, 7'000'000'000LL);
      found = true;
    }
  }
  EXPECT_TRUE(found);

  // Overlapping jobs render on separate lanes of one Gantt track.
  std::ostringstream os;
  tracer.write_json(os);
  EXPECT_NE(os.str().find("jobs ~1"), std::string::npos);
}

}  // namespace
}  // namespace polaris::sched
