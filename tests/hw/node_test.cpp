#include "polaris/hw/node.hpp"

#include <gtest/gtest.h>

#include "polaris/support/check.hpp"

namespace polaris::hw {
namespace {

class NodeDesignerTest : public ::testing::Test {
 protected:
  NodeDesigner designer_;
};

TEST_F(NodeDesignerTest, ConventionalMatchesBaseline) {
  const NodeModel n = designer_.design(NodeArch::kConventional, 2002.0);
  EXPECT_DOUBLE_EQ(n.peak_flops, 9.6e9);
  EXPECT_DOUBLE_EQ(n.rack_units, 1.0);
}

TEST_F(NodeDesignerTest, BladeTradesPeakForDensityAndPower) {
  const NodeModel conv = designer_.design(NodeArch::kConventional, 2004.0);
  const NodeModel blade = designer_.design(NodeArch::kBlade, 2004.0);
  EXPECT_LT(blade.peak_flops, conv.peak_flops);
  EXPECT_LT(blade.power_w, conv.power_w);
  EXPECT_GT(blade.nodes_per_rack(), 2.5 * conv.nodes_per_rack());
  // Blade wins on flops per watt.
  EXPECT_GT(blade.flops_per_watt(), conv.flops_per_watt());
}

TEST_F(NodeDesignerTest, CmpOutgrowsConventional) {
  const double r2002 = designer_.design(NodeArch::kCmpSoc, 2002.0).peak_flops /
                       designer_.design(NodeArch::kConventional, 2002.0).peak_flops;
  const double r2008 = designer_.design(NodeArch::kCmpSoc, 2008.0).peak_flops /
                       designer_.design(NodeArch::kConventional, 2008.0).peak_flops;
  EXPECT_GT(r2008, r2002 * 2.0);  // the extra cores-per-die exponential
}

TEST_F(NodeDesignerTest, PimHasBandwidthNotPeak) {
  const NodeModel conv = designer_.design(NodeArch::kConventional, 2002.0);
  const NodeModel pim = designer_.design(NodeArch::kPim, 2002.0);
  EXPECT_GT(pim.mem_bw, 5.0 * conv.mem_bw);
  EXPECT_LT(pim.peak_flops, conv.peak_flops);
  EXPECT_LT(pim.ridge_point(), conv.ridge_point());
}

TEST_F(NodeDesignerTest, RooflineMemoryBoundRegion) {
  const NodeModel n = designer_.design(NodeArch::kConventional, 2002.0);
  // Far below the ridge point, attained = AI * BW.
  const double ai = n.ridge_point() / 100.0;
  EXPECT_DOUBLE_EQ(n.attained_flops(ai), ai * n.mem_bw);
  EXPECT_LT(n.attained_flops(ai), n.peak_flops);
}

TEST_F(NodeDesignerTest, RooflineComputeBoundRegion) {
  const NodeModel n = designer_.design(NodeArch::kConventional, 2002.0);
  EXPECT_DOUBLE_EQ(n.attained_flops(n.ridge_point() * 100.0), n.peak_flops);
}

TEST_F(NodeDesignerTest, PimWinsMemoryBoundKernels) {
  const NodeModel conv = designer_.design(NodeArch::kConventional, 2002.0);
  const NodeModel pim = designer_.design(NodeArch::kPim, 2002.0);
  const double ai = 0.1;  // memory-bound (e.g., sparse/stream kernels)
  EXPECT_GT(pim.attained_flops(ai), conv.attained_flops(ai));
}

TEST_F(NodeDesignerTest, ConventionalWinsComputeBoundKernels2002) {
  const NodeModel conv = designer_.design(NodeArch::kConventional, 2002.0);
  const NodeModel pim = designer_.design(NodeArch::kPim, 2002.0);
  EXPECT_GT(conv.attained_flops(64.0), pim.attained_flops(64.0));
}

TEST_F(NodeDesignerTest, KernelTimeIsMaxOfComputeAndMemory) {
  NodeModel n;
  n.peak_flops = 1e9;
  n.mem_bw = 1e8;
  // 1e9 flops (1 s of compute) + 1e9 bytes (10 s of memory) -> 10 s.
  EXPECT_DOUBLE_EQ(n.kernel_time(1e9, 1e9), 10.0);
  // Compute-dominated case.
  EXPECT_DOUBLE_EQ(n.kernel_time(1e9, 1e6), 1.0);
}

TEST_F(NodeDesignerTest, KernelTimeRejectsNegativeWork) {
  NodeModel n;
  n.peak_flops = 1e9;
  n.mem_bw = 1e8;
  EXPECT_THROW((void)n.kernel_time(-1.0, 0.0), support::ContractViolation);
}

TEST(NodeArchNames, AllArchsHaveNames) {
  for (NodeArch a : all_node_archs()) {
    EXPECT_STRNE(to_string(a), "?");
  }
  EXPECT_EQ(all_node_archs().size(), 4u);
}

}  // namespace
}  // namespace polaris::hw
