#include "polaris/hw/tech.hpp"

#include <gtest/gtest.h>

#include "polaris/support/check.hpp"

namespace polaris::hw {
namespace {

TEST(TechnologyModel, AnchorYearReturnsAnchorValues) {
  TechnologyModel m;
  const TechPoint p = m.at(2002.0);
  EXPECT_DOUBLE_EQ(p.flops_per_node, m.anchor().flops_per_node);
  EXPECT_DOUBLE_EQ(p.node_cost_usd, m.anchor().node_cost_usd);
  EXPECT_DOUBLE_EQ(p.nic_latency_s, m.anchor().nic_latency_s);
}

TEST(TechnologyModel, FlopsDoubleInRoughly18Months) {
  TechnologyModel m;
  const double f0 = m.at(2002.0).flops_per_node;
  const double f = m.at(2003.5).flops_per_node;
  EXPECT_NEAR(f / f0, 2.0, 0.1);
}

TEST(TechnologyModel, EightYearGrowthIsExponential) {
  TechnologyModel m;
  const TechPoint p2002 = m.at(2002.0);
  const TechPoint p2010 = m.at(2010.0);
  // 1.59^8 ~ 40.6x peak growth.
  EXPECT_NEAR(p2010.flops_per_node / p2002.flops_per_node, 40.6, 2.0);
  // Memory bandwidth grows far slower: the memory wall widens.
  EXPECT_LT(p2010.mem_bw_per_node / p2002.mem_bw_per_node, 8.0);
}

TEST(TechnologyModel, MemoryWallWidens) {
  TechnologyModel m;
  EXPECT_GT(m.bytes_per_flop(2002.0), m.bytes_per_flop(2006.0));
  EXPECT_GT(m.bytes_per_flop(2006.0), m.bytes_per_flop(2010.0));
}

TEST(TechnologyModel, NicLatencyShrinks) {
  TechnologyModel m;
  EXPECT_LT(m.at(2006.0).nic_latency_s, m.at(2002.0).nic_latency_s);
}

TEST(TechnologyModel, CostStaysFlatByDefault) {
  TechnologyModel m;
  EXPECT_DOUBLE_EQ(m.at(2010.0).node_cost_usd, m.at(2002.0).node_cost_usd);
}

TEST(TechnologyModel, RejectsBackwardProjection) {
  TechnologyModel m;
  EXPECT_THROW((void)m.at(2001.0), support::ContractViolation);
}

TEST(TechnologyModel, YearReachingIsMonotoneInTarget) {
  TechnologyModel m;
  const double y_tera = m.year_reaching(1e12, 1e6);
  const double y_10tera = m.year_reaching(1e13, 1e6);
  EXPECT_LE(y_tera, y_10tera);
}

TEST(TechnologyModel, MillionDollarTeraflopsAlreadyThereIn2002) {
  // $1M at $2500/node buys 400 nodes x 9.6 Gflops ~ 3.8 Tflops.
  TechnologyModel m;
  EXPECT_DOUBLE_EQ(m.year_reaching(1e12, 1e6), 2002.0);
}

TEST(TechnologyModel, PetaflopsForMillionDollarsNotByDecadeEnd) {
  // Conventional Moore-only nodes do NOT reach a $1M petaflops by 2010 —
  // the talk's point that node architecture must change.
  TechnologyModel m;
  EXPECT_GT(m.year_reaching(1e15, 1e6, 2010.0), 2010.0);
}

TEST(TechnologyModel, YearReachingHonoursBudgetScaling) {
  TechnologyModel m;
  const double y_small = m.year_reaching(1e14, 1e6);
  const double y_big = m.year_reaching(1e14, 1e8);
  EXPECT_LT(y_big, y_small);
}

TEST(TechnologyModel, CustomRatesApply) {
  TechPoint anchor;
  anchor.year = 2002.0;
  anchor.flops_per_node = 1e9;
  anchor.mem_bytes_per_node = 1e9;
  anchor.mem_bw_per_node = 1e9;
  anchor.disk_bytes_per_node = 1e9;
  anchor.node_cost_usd = 1000.0;
  anchor.node_power_w = 100.0;
  anchor.nic_bw_bytes = 1e8;
  anchor.nic_latency_s = 1e-5;
  GrowthRates r;
  r.flops = 2.0;  // doubling annually
  TechnologyModel m(anchor, r);
  EXPECT_NEAR(m.at(2005.0).flops_per_node, 8e9, 1e3);
}

TEST(TechnologyModel, RejectsNonPositiveAnchor) {
  TechPoint bad;
  bad.flops_per_node = 0.0;
  bad.node_cost_usd = 100.0;
  EXPECT_THROW(TechnologyModel(bad, GrowthRates{}),
               support::ContractViolation);
}

}  // namespace
}  // namespace polaris::hw
