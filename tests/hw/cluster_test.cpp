#include "polaris/hw/cluster.hpp"

#include <gtest/gtest.h>

#include "polaris/support/check.hpp"

namespace polaris::hw {
namespace {

class ClusterDesignerTest : public ::testing::Test {
 protected:
  ClusterDesigner designer_;
};

TEST_F(ClusterDesignerTest, FixedSizeAggregatesLinearly) {
  const auto c = designer_.fixed_size(NodeArch::kConventional, 2002.0, 128);
  EXPECT_DOUBLE_EQ(c.peak_flops(), 128.0 * 9.6e9);
  EXPECT_DOUBLE_EQ(c.memory_bytes(), 128.0 * 1024.0 * 1024.0 * 1024.0);
  EXPECT_GT(c.disk_bytes, 0.0);
}

TEST_F(ClusterDesignerTest, CostIncludesInterconnectPorts) {
  const auto c = designer_.fixed_size(NodeArch::kConventional, 2002.0, 10);
  EXPECT_DOUBLE_EQ(c.cost_usd(), 10.0 * (2500.0 + 150.0));
}

TEST_F(ClusterDesignerTest, PowerIncludesInterconnect) {
  const auto c = designer_.fixed_size(NodeArch::kConventional, 2002.0, 10);
  EXPECT_DOUBLE_EQ(c.power_w(), 10.0 * (250.0 + 10.0));
}

TEST_F(ClusterDesignerTest, RackCountCeils) {
  const auto c = designer_.fixed_size(NodeArch::kConventional, 2002.0, 43);
  EXPECT_DOUBLE_EQ(c.racks(), 2.0);  // 42 x 1U per rack
  EXPECT_DOUBLE_EQ(c.floor_area_m2(), 3.0);
}

TEST_F(ClusterDesignerTest, BladesPackDenser) {
  const auto conv = designer_.fixed_size(NodeArch::kConventional, 2002.0, 256);
  const auto blade = designer_.fixed_size(NodeArch::kBlade, 2002.0, 256);
  EXPECT_LT(blade.racks(), conv.racks());
  EXPECT_GT(blade.gflops_per_rack(), conv.gflops_per_rack());
}

TEST_F(ClusterDesignerTest, FixedBudgetSpendsWithinBudget) {
  const double budget = 1e6;
  const auto c =
      designer_.fixed_budget(NodeArch::kConventional, 2002.0, budget);
  EXPECT_LE(c.cost_usd(), budget);
  // Within one node of the budget.
  EXPECT_GT(c.cost_usd(), budget - (2500.0 + 150.0));
}

TEST_F(ClusterDesignerTest, MillionDollar2002ClusterIsTeraflops) {
  const auto c = designer_.fixed_budget(NodeArch::kConventional, 2002.0, 1e6);
  EXPECT_GT(c.peak_flops(), 1e12);
  EXPECT_LT(c.peak_flops(), 1e13);
}

TEST_F(ClusterDesignerTest, SameBudgetBuysMoreFlopsLater) {
  const auto c2002 =
      designer_.fixed_budget(NodeArch::kConventional, 2002.0, 1e6);
  const auto c2008 =
      designer_.fixed_budget(NodeArch::kConventional, 2008.0, 1e6);
  EXPECT_GT(c2008.peak_flops(), 10.0 * c2002.peak_flops());
}

TEST_F(ClusterDesignerTest, CmpReachesPetaflopsByDecadeEndConventionalDoesNot) {
  // The talk's core claim: revolutionary node structures, not Moore alone,
  // carry commodity clusters into the trans-Petaflops regime.
  const auto conv =
      designer_.fixed_budget(NodeArch::kConventional, 2010.0, 4e6);
  const auto cmp = designer_.fixed_budget(NodeArch::kCmpSoc, 2010.0, 4e6);
  EXPECT_LT(conv.peak_flops(), 1e15);
  EXPECT_GT(cmp.peak_flops(), 1e15);
}

TEST_F(ClusterDesignerTest, EfficiencyMetricsPositive) {
  const auto c = designer_.fixed_size(NodeArch::kBlade, 2005.0, 64);
  EXPECT_GT(c.mflops_per_watt(), 0.0);
  EXPECT_GT(c.flops_per_dollar(), 0.0);
  EXPECT_GT(c.gflops_per_rack(), 0.0);
}

TEST_F(ClusterDesignerTest, RejectsZeroNodes) {
  EXPECT_THROW(
      (void)designer_.fixed_size(NodeArch::kConventional, 2002.0, 0),
      support::ContractViolation);
}

TEST_F(ClusterDesignerTest, RejectsBudgetBelowOneNode) {
  EXPECT_THROW(
      (void)designer_.fixed_budget(NodeArch::kConventional, 2002.0, 100.0),
      support::ContractViolation);
}

TEST_F(ClusterDesignerTest, TcoAddsEnergyOnTopOfPurchase) {
  const auto c = designer_.fixed_size(NodeArch::kConventional, 2002.0, 100);
  EXPECT_DOUBLE_EQ(c.tco_usd(0.0), c.cost_usd());
  const double three_year = c.tco_usd(3.0);
  EXPECT_GT(three_year, c.cost_usd());
  // 26 kW * 1.8 PUE * 3y at $0.08/kWh ~ $98k on a $265k machine.
  EXPECT_NEAR(three_year - c.cost_usd(),
              26.0 * 1.8 * 24 * 365.25 * 3 * 0.08, 1000.0);
}

TEST_F(ClusterDesignerTest, BladeTcoAdvantageGrowsWithHorizon) {
  // Blades cost more flops-for-flops up front in peak terms but their
  // power draw wins on long horizons.
  const auto conv = designer_.fixed_size(NodeArch::kConventional, 2002.0, 256);
  const auto blade = designer_.fixed_size(NodeArch::kBlade, 2002.0, 256);
  const double r0 = blade.tco_usd(0.0) / conv.tco_usd(0.0);
  const double r5 = blade.tco_usd(5.0) / conv.tco_usd(5.0);
  EXPECT_LT(r5, r0);
}

TEST_F(ClusterDesignerTest, TcoRejectsBadPue) {
  const auto c = designer_.fixed_size(NodeArch::kConventional, 2002.0, 10);
  EXPECT_THROW((void)c.tco_usd(3.0, 0.08, 0.5), support::ContractViolation);
}

}  // namespace
}  // namespace polaris::hw
