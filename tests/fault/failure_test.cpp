#include "polaris/fault/failure.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::fault {
namespace {

TEST(FailureModel, ExponentialMeanMatchesMtbf) {
  const auto m = FailureModel::exponential(1000.0);
  support::Random rng(1);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += m.sample_ttf(rng);
  EXPECT_NEAR(sum / n, 1000.0, 20.0);
}

TEST(FailureModel, WeibullMeanMatchesMtbf) {
  for (double shape : {0.7, 1.0, 2.0}) {
    const auto m = FailureModel::weibull(500.0, shape);
    support::Random rng(2);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) sum += m.sample_ttf(rng);
    EXPECT_NEAR(sum / n, 500.0, 15.0) << "shape " << shape;
  }
}

TEST(SystemMtbf, ExponentialScalesInverselyWithNodes) {
  EXPECT_DOUBLE_EQ(system_mtbf_exponential(10000.0, 1), 10000.0);
  EXPECT_DOUBLE_EQ(system_mtbf_exponential(10000.0, 100), 100.0);
  EXPECT_DOUBLE_EQ(system_mtbf_exponential(10000.0, 10000), 1.0);
}

TEST(SystemMtbf, SampledAgreesWithAnalyticForExponential) {
  const auto m = FailureModel::exponential(1000.0);
  support::Random rng(3);
  const double sampled = system_mtbf_sampled(m, 10, 20000, rng);
  EXPECT_NEAR(sampled, 100.0, 5.0);
}

TEST(SystemMtbf, InfantMortalityWorseThanExponentialAtScale) {
  // Weibull shape < 1 has heavy early-failure mass: the minimum of many
  // draws collapses faster than exponential.
  support::Random rng(4);
  const double exp_mtbf = system_mtbf_sampled(
      FailureModel::exponential(1000.0), 100, 5000, rng);
  const double weib_mtbf = system_mtbf_sampled(
      FailureModel::weibull(1000.0, 0.7), 100, 5000, rng);
  EXPECT_LT(weib_mtbf, exp_mtbf);
}

TEST(FailureTimeline, EventsAreTimeOrdered) {
  FailureTimeline tl(FailureModel::exponential(100.0), 50, 7);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto ev = tl.next();
    EXPECT_GE(ev.time, prev);
    EXPECT_LT(ev.node, 50u);
    prev = ev.time;
  }
}

TEST(FailureTimeline, RateMatchesSystemMtbf) {
  // 100 nodes at 1000 s MTBF -> ~1 failure per 10 s.
  FailureTimeline tl(FailureModel::exponential(1000.0), 100, 8);
  const auto events = tl.until(10000.0);
  EXPECT_NEAR(static_cast<double>(events.size()), 1000.0, 100.0);
}

TEST(FailureTimeline, UntilConsumesEvents) {
  FailureTimeline tl(FailureModel::exponential(10.0), 4, 9);
  const auto first = tl.until(100.0);
  const auto next = tl.next();
  EXPECT_GE(next.time, 100.0);
  EXPECT_FALSE(first.empty());
}

// until(horizon) is half-open: an event at exactly t == horizon must NOT
// be drained — it stays pending so until()/next() agree at the boundary.
// Two same-seed timelines are bit-identical streams, so one can probe the
// other's exact event times.
TEST(FailureTimeline, UntilIsHalfOpenAtTheBoundary) {
  const auto model = FailureModel::exponential(10.0);
  FailureTimeline probe(model, 4, /*seed=*/21);
  FailureTimeline tl(model, 4, /*seed=*/21);

  const auto first = probe.next();
  // Horizon exactly on the first event: the half-open window is empty.
  EXPECT_TRUE(tl.until(first.time).empty());
  EXPECT_DOUBLE_EQ(tl.peek_time(), first.time);
  const auto got = tl.next();
  EXPECT_DOUBLE_EQ(got.time, first.time);
  EXPECT_EQ(got.node, first.node);

  // A window ending exactly on a later event excludes it too; the follow-up
  // window starting there includes it — no duplicate, no loss.
  const auto second = probe.next();
  const auto third = probe.next();
  const auto mid = tl.until(third.time);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_DOUBLE_EQ(mid[0].time, second.time);
  const auto rest = tl.until(third.time + 1e-12);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_DOUBLE_EQ(rest[0].time, third.time);
  EXPECT_EQ(rest[0].node, third.node);
}

// Consecutive until() windows partition the stream: concatenating the
// per-window drains reproduces the same-seed next() stream exactly.
TEST(FailureTimeline, ConsecutiveUntilWindowsPartitionTheStream) {
  const auto model = FailureModel::exponential(5.0);
  FailureTimeline windows(model, 8, /*seed=*/22);
  FailureTimeline stream(model, 8, /*seed=*/22);

  std::vector<FailureTimeline::Event> drained;
  for (double h = 2.0; h <= 40.0; h += 2.0) {
    for (const auto& ev : windows.until(h)) drained.push_back(ev);
  }
  ASSERT_FALSE(drained.empty());
  for (const auto& ev : drained) {
    const auto want = stream.next();
    EXPECT_DOUBLE_EQ(ev.time, want.time);
    EXPECT_EQ(ev.node, want.node);
  }
  // Everything still pending is at or past the last horizon.
  EXPECT_GE(windows.peek_time(), 40.0);
}

TEST(FailureModel, RejectsBadParameters) {
  EXPECT_THROW(FailureModel::exponential(0.0), support::ContractViolation);
  EXPECT_THROW(FailureModel::weibull(10.0, 0.0), support::ContractViolation);
  EXPECT_THROW(system_mtbf_exponential(10.0, 0), support::ContractViolation);
}

}  // namespace
}  // namespace polaris::fault
