#include "polaris/fault/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace polaris::fault {
namespace {

TEST(Intervals, YoungFormula) {
  CheckpointConfig c;
  c.checkpoint_cost = 200.0;
  c.system_mtbf = 10000.0;
  EXPECT_DOUBLE_EQ(young_interval(c), std::sqrt(2.0 * 200.0 * 10000.0));
}

TEST(Intervals, DalyCloseToYoungWhenMtbfLarge) {
  CheckpointConfig c;
  c.checkpoint_cost = 60.0;
  c.system_mtbf = 1e6;
  EXPECT_NEAR(daly_interval(c) / young_interval(c), 1.0, 0.02);
}

TEST(Intervals, DalyFallsBackWhenDeltaHuge) {
  CheckpointConfig c;
  c.checkpoint_cost = 5000.0;
  c.system_mtbf = 1000.0;  // delta > 2M
  EXPECT_DOUBLE_EQ(daly_interval(c), 1000.0);
}

TEST(Efficiency, OptimalIntervalMaximizesAnalyticEfficiency) {
  CheckpointConfig c;
  c.checkpoint_cost = 300.0;
  c.restart_cost = 120.0;
  c.system_mtbf = 20000.0;
  const double tau = daly_interval(c);
  const double best = analytic_efficiency(c, tau);
  for (double f : {0.25, 0.5, 2.0, 4.0}) {
    EXPECT_GE(best + 1e-3, analytic_efficiency(c, tau * f)) << f;
  }
}

TEST(Efficiency, DegradesAsMtbfShrinks) {
  CheckpointConfig big, small;
  big.system_mtbf = 100000.0;
  small.system_mtbf = 2000.0;
  EXPECT_GT(optimal_efficiency(big), optimal_efficiency(small));
}

TEST(Efficiency, SimulationAgreesWithAnalyticInHealthyRegime) {
  CheckpointConfig c;
  c.checkpoint_cost = 300.0;
  c.restart_cost = 120.0;
  c.system_mtbf = 50000.0;
  const double tau = daly_interval(c);
  const double analytic = analytic_efficiency(c, tau);
  const double sim = simulate_efficiency(c, tau, 5e7, /*seed=*/13);
  EXPECT_NEAR(sim, analytic, 0.03);
}

TEST(Efficiency, SimulatedOptimumNearDaly) {
  CheckpointConfig c;
  c.checkpoint_cost = 300.0;
  c.restart_cost = 120.0;
  c.system_mtbf = 20000.0;
  const double tau = daly_interval(c);
  const double at_daly = simulate_efficiency(c, tau, 2e7, 17);
  EXPECT_GT(at_daly, simulate_efficiency(c, tau / 8.0, 2e7, 17) - 0.01);
  EXPECT_GT(at_daly, simulate_efficiency(c, tau * 8.0, 2e7, 17) - 0.01);
}

TEST(ScaleOutcome, SystemMtbfFallsWithScale) {
  const auto small = wall_time_at_scale(86400.0, 10.0 * 365 * 86400.0, 100,
                                        300.0, 120.0);
  const auto big = wall_time_at_scale(86400.0, 10.0 * 365 * 86400.0, 10000,
                                      300.0, 120.0);
  EXPECT_NEAR(small.system_mtbf_s / big.system_mtbf_s, 100.0, 1e-6);
}

TEST(ScaleOutcome, NoCheckpointCollapsesAtScaleDalySurvives) {
  // 24h job, 10-year node MTBF, 10k nodes: system MTBF ~8.8h.
  const double work = 86400.0;
  const double node_mtbf = 10.0 * 365 * 86400.0;
  const auto out = wall_time_at_scale(work, node_mtbf, 10000, 300.0, 120.0);
  // Without checkpointing the expected wall time balloons (e^{~2.7}).
  EXPECT_GT(out.no_checkpoint_wall, 3.0 * work);
  // Daly checkpointing keeps the stretch modest.
  EXPECT_LT(out.daly_wall, 1.5 * work);
}

TEST(ScaleOutcome, SmallMachineBarelyAffected) {
  const auto out = wall_time_at_scale(86400.0, 10.0 * 365 * 86400.0, 64,
                                      300.0, 120.0);
  EXPECT_LT(out.no_checkpoint_wall, 1.2 * 86400.0);
  EXPECT_LT(out.daly_wall, 1.1 * 86400.0);
}

TEST(Efficiency, ExtremeScaleEfficiencyApproachesZero) {
  // The talk's warning quantified: at 100k nodes with a 1-year node MTBF,
  // the system fails every ~5 minutes and even optimal checkpointing at
  // 5-minute checkpoint cost gets almost no work through.
  CheckpointConfig c;
  c.checkpoint_cost = 300.0;
  c.restart_cost = 120.0;
  c.system_mtbf = 365.0 * 86400.0 / 100000.0;  // ~315 s
  EXPECT_LT(optimal_efficiency(c), 0.05);
}

}  // namespace
}  // namespace polaris::fault
