// fault::Injector drives crashes/outages as DES events; HeartbeatService
// turns the resulting silence into detector suspicion with measurable
// latency.
#include "polaris/fault/injector.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "polaris/fault/heartbeat.hpp"
#include "polaris/fault/failure.hpp"

namespace polaris::fault {
namespace {

class InjectorTest : public ::testing::Test {
 protected:
  des::Engine engine_;
  fabric::Crossbar topo_{8};
  fabric::SimNetwork net_{engine_, fabric::fabrics::myrinet2000(), topo_};
};

TEST_F(InjectorTest, CrashAndRepairToggleTheNetwork) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 3, /*repair_after=*/0.5);
  EXPECT_TRUE(inj.node_up(3));
  engine_.run_until(des::from_seconds(1.2));
  EXPECT_FALSE(inj.node_up(3));
  EXPECT_FALSE(net_.node_up(3));
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_EQ(inj.downed_at(3), 1.0);
  engine_.run();
  EXPECT_TRUE(inj.node_up(3));
  EXPECT_TRUE(inj.all_nodes_up());
  ASSERT_EQ(inj.history().size(), 2u);
  EXPECT_EQ(inj.history()[0].kind, FaultEvent::Kind::kNodeCrash);
  EXPECT_EQ(inj.history()[1].kind, FaultEvent::Kind::kNodeRepair);
}

TEST_F(InjectorTest, OverlappingCrashesCollapse) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 3, 2.0);
  inj.schedule_node_crash(1.5, 3, 2.0);  // already down: no-op
  engine_.run();
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_TRUE(inj.node_up(3));
}

// Regression: an overlapping crash used to be swallowed whole, so the
// FIRST fault's repair resurrected the node inside the SECOND fault's
// window.  The merged plan must hold the node down until the later
// deadline, and the early (stale) repair event must do nothing.
TEST_F(InjectorTest, OverlappingCrashExtendsTheRepairWindow) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 3, /*repair_after=*/2.0);  // repair at 3.0
  inj.schedule_node_crash(2.0, 3, /*repair_after=*/5.0);  // repair at 7.0
  // Pre-fix the node came back at t=3.0 — well inside the second window.
  engine_.run_until(des::from_seconds(3.5));
  EXPECT_FALSE(inj.node_up(3));
  EXPECT_EQ(inj.nodes_down(), 1u);
  engine_.run();
  EXPECT_TRUE(inj.node_up(3));
  EXPECT_NEAR(des::to_seconds(engine_.now()), 7.0, 1e-9);
  // No double count: one crash, one repair, one recorded overlap.
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_EQ(inj.overlapped_faults(), 1u);
  EXPECT_EQ(inj.repair_extensions(), 1u);
  ASSERT_EQ(inj.history().size(), 2u);
  EXPECT_EQ(inj.history()[0].kind, FaultEvent::Kind::kNodeCrash);
  EXPECT_EQ(inj.history()[1].kind, FaultEvent::Kind::kNodeRepair);
  EXPECT_DOUBLE_EQ(inj.history()[1].time, 7.0);
}

// An overlap whose window ends EARLIER than the pending repair must not
// shorten it (never resurrect early, in either direction).
TEST_F(InjectorTest, OverlappingCrashNeverShortensTheRepairWindow) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 3, /*repair_after=*/6.0);  // repair at 7.0
  inj.schedule_node_crash(2.0, 3, /*repair_after=*/1.0);  // would end at 3.0
  engine_.run_until(des::from_seconds(5.0));
  EXPECT_FALSE(inj.node_up(3));
  engine_.run();
  EXPECT_TRUE(inj.node_up(3));
  EXPECT_NEAR(des::to_seconds(engine_.now()), 7.0, 1e-9);
  EXPECT_EQ(inj.overlapped_faults(), 1u);
  EXPECT_EQ(inj.repair_extensions(), 0u);  // plan unchanged
}

// An overlapping PERMANENT fault pins the node down: the pending repair
// is cancelled, not raced.
TEST_F(InjectorTest, OverlappingPermanentFaultCancelsThePendingRepair) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 3, /*repair_after=*/2.0);
  inj.schedule_node_crash(2.0, 3, /*repair_after=*/0.0);  // permanent
  engine_.run();
  EXPECT_FALSE(inj.node_up(3));
  EXPECT_EQ(inj.nodes_down(), 1u);
  EXPECT_EQ(inj.crashes(), 1u);
  // Only the crash in history: the stale repair recognised itself.
  ASSERT_EQ(inj.history().size(), 1u);
  EXPECT_EQ(inj.history()[0].kind, FaultEvent::Kind::kNodeCrash);
}

// Same merge rules for links.
TEST_F(InjectorTest, OverlappingLinkOutagesMergeWindows) {
  Injector inj(engine_, net_);
  const fabric::LinkId l = topo_.route(0, 1).front();
  inj.schedule_link_outage(1.0, l, /*repair_after=*/1.0);  // up at 2.0
  inj.schedule_link_outage(1.5, l, /*repair_after=*/3.0);  // up at 4.5
  engine_.run_until(des::from_seconds(2.5));
  EXPECT_FALSE(net_.link_up(l));
  EXPECT_EQ(inj.links_down(), 1u);
  engine_.run();
  EXPECT_TRUE(net_.link_up(l));
  EXPECT_NEAR(des::to_seconds(engine_.now()), 4.5, 1e-9);
  EXPECT_EQ(inj.link_outages(), 1u);
  EXPECT_EQ(inj.overlapped_faults(), 1u);
}

// Collision-heavy soak: a dense timeline folded modulo a tiny topology
// lands many faults on each node, with windows overlapping constantly.
// Bookkeeping invariants must hold throughout and at the end.
TEST_F(InjectorTest, CollisionHeavyTimelineKeepsBookkeepingConsistent) {
  fabric::Crossbar small{2};
  fabric::SimNetwork net(engine_, fabric::fabrics::myrinet2000(), small);
  Injector inj(engine_, net);
  // ~1 failure every 0.25 s across the timeline, folded onto 2 nodes,
  // each with a 1 s repair window: overlaps are the common case.
  FailureTimeline timeline(FailureModel::exponential(25.0), 100, /*seed=*/5);
  const std::size_t scheduled =
      inj.load_node_timeline(timeline, /*horizon=*/50.0,
                             /*repair_after=*/1.0);
  EXPECT_GT(scheduled, 150u);
  engine_.run();
  // Every fault either flipped a node down or merged into a pending window.
  EXPECT_EQ(inj.crashes() + inj.overlapped_faults(), scheduled);
  EXPECT_GT(inj.overlapped_faults(), 0u);
  // Real flips only: counters return to zero, nobody resurrected early or
  // twice (a double repair would underflow nodes_down()).
  EXPECT_EQ(inj.nodes_down(), 0u);
  EXPECT_TRUE(inj.all_nodes_up());
  // History alternates crash/repair per node — strict state flips.
  std::vector<bool> down(2, false);
  double prev_time = 0.0;
  for (const FaultEvent& ev : inj.history()) {
    EXPECT_GE(ev.time, prev_time);
    prev_time = ev.time;
    if (ev.kind == FaultEvent::Kind::kNodeCrash) {
      EXPECT_FALSE(down[ev.id]) << "double-down at t=" << ev.time;
      down[ev.id] = true;
    } else {
      ASSERT_EQ(ev.kind, FaultEvent::Kind::kNodeRepair);
      EXPECT_TRUE(down[ev.id]) << "repair of an up node at t=" << ev.time;
      down[ev.id] = false;
    }
  }
  EXPECT_FALSE(down[0]);
  EXPECT_FALSE(down[1]);
}

TEST_F(InjectorTest, LinkOutageTogglesTheLink) {
  Injector inj(engine_, net_);
  const fabric::LinkId l = topo_.route(0, 1).front();
  inj.schedule_link_outage(1.0, l, /*repair_after=*/1.0);
  engine_.run_until(des::from_seconds(1.5));
  EXPECT_FALSE(net_.link_up(l));
  EXPECT_EQ(inj.link_outages(), 1u);
  engine_.run();
  EXPECT_TRUE(net_.link_up(l));
}

TEST_F(InjectorTest, WorkForIsInterruptedByFaults) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 2, /*repair_after=*/0.25);
  bool first = true, second = true;
  engine_.spawn([](Injector& i, bool& a, bool& b) -> des::Task<void> {
    a = co_await i.work_for(3.0);     // crash at t=1 interrupts
    co_await i.await_all_nodes_up();  // resumes at t=1.25
    b = co_await i.work_for(3.0);     // no further faults: completes
  }(inj, first, second));
  engine_.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_NEAR(des::to_seconds(engine_.now()), 1.25 + 3.0, 1e-9);
}

TEST_F(InjectorTest, LoadNodeTimelineSchedulesEveryEvent) {
  Injector inj(engine_, net_);
  const FailureModel model = FailureModel::exponential(100.0);
  FailureTimeline timeline(model, 8, /*seed=*/7);
  const std::size_t n =
      inj.load_node_timeline(timeline, /*horizon=*/50.0,
                             /*repair_after=*/0.1);
  EXPECT_GT(n, 0u);
  engine_.run();
  EXPECT_EQ(inj.crashes(), n);
  EXPECT_TRUE(inj.all_nodes_up());  // every crash was repaired
}

TEST_F(InjectorTest, HeartbeatsDetectACrashWithBoundedLatency) {
  Injector inj(engine_, net_);
  HeartbeatService::Config cfg;
  cfg.period = 0.1;
  cfg.timeout = 0.5;
  cfg.horizon = 10.0;
  HeartbeatService hb(engine_, net_, cfg);
  hb.start();
  inj.schedule_node_crash(3.0, 5);  // permanent
  engine_.run();
  EXPECT_TRUE(hb.suspected(5));
  const double latency = hb.suspected_at(5) - inj.downed_at(5);
  EXPECT_GT(latency, 0.0);
  // Timeout detector bound: silence threshold + one polling period.
  EXPECT_LE(latency, cfg.timeout + cfg.period + 1e-9);
  // Healthy nodes stay unsuspected and keep delivering.
  for (std::uint32_t n = 1; n < 5; ++n) EXPECT_FALSE(hb.suspected(n));
  EXPECT_GT(hb.heartbeats_delivered(), 0u);
  EXPECT_GE(hb.suspicions(), 1u);
}

TEST_F(InjectorTest, RepairedNodeClearsSuspicion) {
  Injector inj(engine_, net_);
  HeartbeatService::Config cfg;
  cfg.period = 0.1;
  cfg.timeout = 0.5;
  cfg.horizon = 10.0;
  HeartbeatService hb(engine_, net_, cfg);
  hb.start();
  inj.schedule_node_crash(3.0, 5, /*repair_after=*/2.0);
  engine_.run();
  EXPECT_FALSE(hb.suspected(5));  // fresh heartbeats cleared it
  EXPECT_GE(hb.suspicions(), 1u);  // but the outage WAS noticed
}

}  // namespace
}  // namespace polaris::fault
