// fault::Injector drives crashes/outages as DES events; HeartbeatService
// turns the resulting silence into detector suspicion with measurable
// latency.
#include "polaris/fault/injector.hpp"

#include <gtest/gtest.h>

#include "polaris/fault/heartbeat.hpp"
#include "polaris/fault/failure.hpp"

namespace polaris::fault {
namespace {

class InjectorTest : public ::testing::Test {
 protected:
  des::Engine engine_;
  fabric::Crossbar topo_{8};
  fabric::SimNetwork net_{engine_, fabric::fabrics::myrinet2000(), topo_};
};

TEST_F(InjectorTest, CrashAndRepairToggleTheNetwork) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 3, /*repair_after=*/0.5);
  EXPECT_TRUE(inj.node_up(3));
  engine_.run_until(des::from_seconds(1.2));
  EXPECT_FALSE(inj.node_up(3));
  EXPECT_FALSE(net_.node_up(3));
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_EQ(inj.downed_at(3), 1.0);
  engine_.run();
  EXPECT_TRUE(inj.node_up(3));
  EXPECT_TRUE(inj.all_nodes_up());
  ASSERT_EQ(inj.history().size(), 2u);
  EXPECT_EQ(inj.history()[0].kind, FaultEvent::Kind::kNodeCrash);
  EXPECT_EQ(inj.history()[1].kind, FaultEvent::Kind::kNodeRepair);
}

TEST_F(InjectorTest, OverlappingCrashesCollapse) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 3, 2.0);
  inj.schedule_node_crash(1.5, 3, 2.0);  // already down: no-op
  engine_.run();
  EXPECT_EQ(inj.crashes(), 1u);
  EXPECT_TRUE(inj.node_up(3));
}

TEST_F(InjectorTest, LinkOutageTogglesTheLink) {
  Injector inj(engine_, net_);
  const fabric::LinkId l = topo_.route(0, 1).front();
  inj.schedule_link_outage(1.0, l, /*repair_after=*/1.0);
  engine_.run_until(des::from_seconds(1.5));
  EXPECT_FALSE(net_.link_up(l));
  EXPECT_EQ(inj.link_outages(), 1u);
  engine_.run();
  EXPECT_TRUE(net_.link_up(l));
}

TEST_F(InjectorTest, WorkForIsInterruptedByFaults) {
  Injector inj(engine_, net_);
  inj.schedule_node_crash(1.0, 2, /*repair_after=*/0.25);
  bool first = true, second = true;
  engine_.spawn([](Injector& i, bool& a, bool& b) -> des::Task<void> {
    a = co_await i.work_for(3.0);     // crash at t=1 interrupts
    co_await i.await_all_nodes_up();  // resumes at t=1.25
    b = co_await i.work_for(3.0);     // no further faults: completes
  }(inj, first, second));
  engine_.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
  EXPECT_NEAR(des::to_seconds(engine_.now()), 1.25 + 3.0, 1e-9);
}

TEST_F(InjectorTest, LoadNodeTimelineSchedulesEveryEvent) {
  Injector inj(engine_, net_);
  const FailureModel model = FailureModel::exponential(100.0);
  FailureTimeline timeline(model, 8, /*seed=*/7);
  const std::size_t n =
      inj.load_node_timeline(timeline, /*horizon=*/50.0,
                             /*repair_after=*/0.1);
  EXPECT_GT(n, 0u);
  engine_.run();
  EXPECT_EQ(inj.crashes(), n);
  EXPECT_TRUE(inj.all_nodes_up());  // every crash was repaired
}

TEST_F(InjectorTest, HeartbeatsDetectACrashWithBoundedLatency) {
  Injector inj(engine_, net_);
  HeartbeatService::Config cfg;
  cfg.period = 0.1;
  cfg.timeout = 0.5;
  cfg.horizon = 10.0;
  HeartbeatService hb(engine_, net_, cfg);
  hb.start();
  inj.schedule_node_crash(3.0, 5);  // permanent
  engine_.run();
  EXPECT_TRUE(hb.suspected(5));
  const double latency = hb.suspected_at(5) - inj.downed_at(5);
  EXPECT_GT(latency, 0.0);
  // Timeout detector bound: silence threshold + one polling period.
  EXPECT_LE(latency, cfg.timeout + cfg.period + 1e-9);
  // Healthy nodes stay unsuspected and keep delivering.
  for (std::uint32_t n = 1; n < 5; ++n) EXPECT_FALSE(hb.suspected(n));
  EXPECT_GT(hb.heartbeats_delivered(), 0u);
  EXPECT_GE(hb.suspicions(), 1u);
}

TEST_F(InjectorTest, RepairedNodeClearsSuspicion) {
  Injector inj(engine_, net_);
  HeartbeatService::Config cfg;
  cfg.period = 0.1;
  cfg.timeout = 0.5;
  cfg.horizon = 10.0;
  HeartbeatService hb(engine_, net_, cfg);
  hb.start();
  inj.schedule_node_crash(3.0, 5, /*repair_after=*/2.0);
  engine_.run();
  EXPECT_FALSE(hb.suspected(5));  // fresh heartbeats cleared it
  EXPECT_GE(hb.suspicions(), 1u);  // but the outage WAS noticed
}

}  // namespace
}  // namespace polaris::fault
