#include "polaris/fault/detector.hpp"

#include <gtest/gtest.h>

#include "polaris/support/check.hpp"

namespace polaris::fault {
namespace {

TEST(TimeoutDetector, SuspectsAfterSilence) {
  TimeoutDetector d(5.0);
  d.heartbeat(10.0);
  EXPECT_FALSE(d.suspect(12.0));
  EXPECT_FALSE(d.suspect(15.0));
  EXPECT_TRUE(d.suspect(15.1));
}

TEST(TimeoutDetector, HeartbeatResetsSuspicion) {
  TimeoutDetector d(5.0);
  d.heartbeat(0.0);
  EXPECT_TRUE(d.suspect(6.0));
  d.heartbeat(6.0);
  EXPECT_FALSE(d.suspect(10.0));
}

// Regression: a node first registered at T > timeout used to be instantly
// suspected (last_ defaulted to 0.0, an implicit heartbeat at the epoch).
// The silence clock must start at registration.
TEST(TimeoutDetector, LateRegistrationGetsFullGrace) {
  TimeoutDetector d(5.0, /*registered_at=*/100.0);
  EXPECT_FALSE(d.suspect(100.1));
  EXPECT_FALSE(d.suspect(105.0));
  EXPECT_TRUE(d.suspect(105.1));
  EXPECT_FALSE(d.has_heartbeat());
  EXPECT_DOUBLE_EQ(d.last_heartbeat(), 100.0);
  d.heartbeat(105.2);
  EXPECT_TRUE(d.has_heartbeat());
  EXPECT_FALSE(d.suspect(106.0));
}

TEST(PhiAccrual, ZeroBeforeAnyHeartbeat) {
  PhiAccrualDetector d;
  EXPECT_DOUBLE_EQ(d.phi(100.0), 0.0);
}

// Regression: one heartbeat then permanent silence used to keep phi at 0
// forever (empty interval window) — such a crash was never detected.  With
// no bootstrap interval, suspicion now escalates after a grace multiple of
// min_stddev.
TEST(PhiAccrual, SingleHeartbeatEscalatesAfterGrace) {
  PhiAccrualDetector d;  // min_stddev 1e-3 -> grace of 10 s
  d.heartbeat(0.0);
  EXPECT_DOUBLE_EQ(d.phi(5.0), 0.0);
  EXPECT_DOUBLE_EQ(d.phi(100.0), PhiAccrualDetector::kMaxPhi);
}

// With a bootstrap interval, the first heartbeat seeds the window and phi
// behaves like a trained detector immediately.
TEST(PhiAccrual, BootstrapIntervalArmsFirstHeartbeat) {
  PhiAccrualDetector d(/*window=*/100, /*min_stddev=*/1e-3,
                       /*bootstrap_interval=*/1.0);
  d.heartbeat(0.0);
  EXPECT_EQ(d.samples(), 1u);
  EXPECT_LT(d.phi(0.5), 1.0);    // silence shorter than the expected period
  EXPECT_GT(d.phi(10.0), 8.0);   // ten periods of silence: confidently dead
}

TEST(PhiAccrual, GrowsWithSilence) {
  PhiAccrualDetector d;
  for (int i = 0; i < 50; ++i) d.heartbeat(i * 1.0);
  const double at_expected = d.phi(49.0 + 1.0);
  const double late = d.phi(49.0 + 3.0);
  const double very_late = d.phi(49.0 + 10.0);
  EXPECT_LT(at_expected, late);
  EXPECT_LE(late, very_late);  // both may sit at the saturation cap
  EXPECT_GT(very_late, 8.0);  // confidently dead
}

TEST(PhiAccrual, AdaptsToJitter) {
  // A stream with high jitter should produce lower phi for the same
  // absolute silence than a regular stream.
  PhiAccrualDetector regular, jittery;
  support::Random rng(5);
  double tr = 0, tj = 0;
  for (int i = 0; i < 100; ++i) {
    tr += 1.0;
    regular.heartbeat(tr);
    tj += rng.uniform(0.25, 1.75);
    jittery.heartbeat(tj);
  }
  const double silence = 2.5;
  EXPECT_GT(regular.phi(tr + silence), jittery.phi(tj + silence));
}

TEST(PhiAccrual, SuspectThreshold) {
  PhiAccrualDetector d;
  for (int i = 0; i < 20; ++i) d.heartbeat(i * 1.0);
  EXPECT_FALSE(d.suspect(19.5));
  EXPECT_TRUE(d.suspect(40.0));
}

TEST(PhiAccrual, WindowBounded) {
  PhiAccrualDetector d(/*window=*/10);
  for (int i = 0; i < 100; ++i) d.heartbeat(i * 1.0);
  EXPECT_EQ(d.samples(), 10u);
}

TEST(PhiAccrual, RejectsDegenerateConfig) {
  EXPECT_THROW(PhiAccrualDetector(1), support::ContractViolation);
  EXPECT_THROW(PhiAccrualDetector(10, 0.0), support::ContractViolation);
  EXPECT_THROW(PhiAccrualDetector(10, 1e-3, -1.0), support::ContractViolation);
}

TEST(EvaluateTimeout, TighterTimeoutMeansFasterDetectionMoreFalseAlarms) {
  const double period = 1.0, sigma = 1.0;
  const auto tight =
      evaluate_timeout_detector(period, sigma, 1.2, 50000, 21);
  const auto loose =
      evaluate_timeout_detector(period, sigma, 5.0, 50000, 21);
  EXPECT_LT(tight.detection_latency, loose.detection_latency);
  EXPECT_GT(tight.false_positive_rate, loose.false_positive_rate);
  EXPECT_LT(loose.false_positive_rate, 1e-3);
}

TEST(EvaluateTimeout, GenerousTimeoutHasNoFalsePositives) {
  const auto q = evaluate_timeout_detector(1.0, 0.5, 10.0, 20000, 22);
  EXPECT_DOUBLE_EQ(q.false_positive_rate, 0.0);
  EXPECT_GE(q.detection_latency, 10.0);
}


TEST(EvaluatePhi, HigherThresholdSlowerButSafer) {
  const auto low = evaluate_phi_detector(1.0, 0.5, 3.0, 20000, 31);
  const auto high = evaluate_phi_detector(1.0, 0.5, 10.0, 20000, 31);
  EXPECT_LE(low.detection_latency, high.detection_latency);
  EXPECT_GE(low.false_positive_rate, high.false_positive_rate);
}

TEST(EvaluatePhi, AdaptsDetectionToJitter) {
  // With more jitter the detector must wait longer before accusing.
  const auto calm = evaluate_phi_detector(1.0, 0.2, 8.0, 20000, 32);
  const auto noisy = evaluate_phi_detector(1.0, 1.5, 8.0, 20000, 32);
  EXPECT_LT(calm.detection_latency, noisy.detection_latency);
}

TEST(EvaluatePhi, ReasonableOperatingPoint) {
  const auto q = evaluate_phi_detector(1.0, 0.8, 8.0, 50000, 33);
  EXPECT_LT(q.false_positive_rate, 5e-3);
  EXPECT_GT(q.detection_latency, 1.0);
  EXPECT_LT(q.detection_latency, 60.0);
}

// Regression: the rate used to divide by heartbeats-1 even though only
// arrivals past the 10-heartbeat warmup are judged, biasing it low.  A
// threshold every judged arrival crosses must report a rate of exactly 1.
TEST(EvaluatePhi, RateIsOverObservedWindowOnly) {
  const auto q = evaluate_phi_detector(1.0, 0.5, 1e-9, 20, 34);
  EXPECT_DOUBLE_EQ(q.false_positive_rate, 1.0);
}

TEST(EvaluatePhi, RejectsAllWarmupRuns) {
  // 11 heartbeats leave zero judged arrivals — no rate to report.
  EXPECT_THROW(evaluate_phi_detector(1.0, 0.5, 8.0, 11, 35),
               support::ContractViolation);
}

}  // namespace
}  // namespace polaris::fault
