#include "polaris/coll/cost.hpp"

#include <gtest/gtest.h>

#include "polaris/fabric/params.hpp"

namespace polaris::coll {
namespace {

fabric::LogGPParams ib() {
  return fabric::extract_loggp(fabric::fabrics::infiniband_4x(), 3);
}

fabric::LogGPParams eth() {
  return fabric::extract_loggp(fabric::fabrics::gig_ethernet(), 3);
}

TEST(PredictedSeconds, PositiveAndFiniteForAllSchedules) {
  const auto net = ib();
  for (std::size_t p : {2u, 8u, 16u}) {
    for (Collective c :
         {Collective::kBarrier, Collective::kBroadcast, Collective::kReduce,
          Collective::kAllreduce, Collective::kAllgather,
          Collective::kAlltoall}) {
      for (Algorithm a : algorithms_for(c, p)) {
        const auto s = make_schedule(c, a, p, 128, 0);
        const double t = predicted_seconds(s, net, 8);
        EXPECT_GT(t, 0.0) << s.name;
        EXPECT_LT(t, 1.0) << s.name;
      }
    }
  }
}

TEST(PredictedSeconds, BinomialBroadcastBeatsLinearAtScale) {
  const auto net = ib();
  const auto lin = broadcast(64, 16, 0, Algorithm::kLinear);
  const auto bin = broadcast(64, 16, 0, Algorithm::kBinomial);
  EXPECT_LT(predicted_seconds(bin, net, 8),
            0.5 * predicted_seconds(lin, net, 8));
}

TEST(PredictedSeconds, LinearBroadcastFineAtTwoRanks) {
  const auto net = ib();
  const auto lin = broadcast(2, 16, 0, Algorithm::kLinear);
  const auto bin = broadcast(2, 16, 0, Algorithm::kBinomial);
  EXPECT_NEAR(predicted_seconds(lin, net, 8), predicted_seconds(bin, net, 8),
              1e-9);
}

TEST(PredictedSeconds, RingAllreduceWinsLargeMessages) {
  const auto net = ib();
  const std::size_t p = 16, n = 1 << 18;  // 2 MiB of doubles
  const double ring =
      predicted_seconds(allreduce(p, n, Algorithm::kRing), net, 8);
  const double rd = predicted_seconds(
      allreduce(p, n, Algorithm::kRecursiveDoubling), net, 8);
  EXPECT_LT(ring, rd);
}

TEST(PredictedSeconds, RecursiveDoublingWinsSmallMessages) {
  const auto net = ib();
  const std::size_t p = 16, n = 1;
  const double ring =
      predicted_seconds(allreduce(p, n, Algorithm::kRing), net, 8);
  const double rd = predicted_seconds(
      allreduce(p, n, Algorithm::kRecursiveDoubling), net, 8);
  EXPECT_LT(rd, ring);
}

TEST(PredictedSeconds, DisseminationBarrierScalesLogarithmically) {
  const auto net = ib();
  const double t8 = predicted_seconds(barrier(8), net, 1);
  const double t64 = predicted_seconds(barrier(64), net, 1);
  // log2(64)/log2(8) = 2: expect roughly 2x, certainly < 4x.
  EXPECT_LT(t64, 4.0 * t8);
  EXPECT_GT(t64, 1.5 * t8);
}

TEST(PredictedSeconds, SlowerFabricSlowerCollective) {
  const auto s = allreduce(16, 4096, Algorithm::kRing);
  EXPECT_GT(predicted_seconds(s, eth(), 8), predicted_seconds(s, ib(), 8));
}

TEST(SelectAlgorithm, PicksRecursiveDoublingForTinyAllreduce) {
  const auto a = select_algorithm(Collective::kAllreduce, 16, 1, 8, ib());
  EXPECT_TRUE(a == Algorithm::kRecursiveDoubling ||
              a == Algorithm::kBinomial ||
              a == Algorithm::kRabenseifner);
}

TEST(SelectAlgorithm, PicksBandwidthAlgorithmForHugeAllreduce) {
  const auto a =
      select_algorithm(Collective::kAllreduce, 16, 1 << 20, 8, ib());
  EXPECT_TRUE(a == Algorithm::kRing || a == Algorithm::kRabenseifner) << to_string(a);
}

TEST(SelectAlgorithm, NonPowerOfTwoStaysValid) {
  const auto a = select_algorithm(Collective::kAllreduce, 12, 4096, 8, ib());
  EXPECT_TRUE(a == Algorithm::kRing || a == Algorithm::kBinomial);
}

TEST(SelectAlgorithm, GatherNonZeroRootAvoidsBinomial) {
  const auto a =
      select_algorithm(Collective::kGather, 16, 1024, 8, ib(), /*root=*/3);
  EXPECT_EQ(a, Algorithm::kLinear);
}

TEST(SelectAlgorithm, SelectionNeverWorseThanAnyCandidate) {
  const auto net = ib();
  for (std::size_t n : {1u, 512u, 65536u}) {
    const auto best = select_algorithm(Collective::kAllreduce, 8, n, 8, net);
    const double bt =
        predicted_seconds(allreduce(8, n, best), net, 8);
    for (Algorithm a : algorithms_for(Collective::kAllreduce, 8)) {
      const double t = predicted_seconds(allreduce(8, n, a), net, 8);
      EXPECT_LE(bt, t * (1.0 + 1e-12)) << n << " " << to_string(a);
    }
  }
}

}  // namespace
}  // namespace polaris::coll
