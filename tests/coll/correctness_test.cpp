// Property tests: every generated schedule computes the collective's
// defining result on the in-memory executor, across rank counts (including
// awkward non-powers-of-two), buffer sizes (including sizes smaller than
// the rank count) and reduction operators.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "polaris/coll/algorithms.hpp"
#include "polaris/coll/local_exec.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::coll {
namespace {

std::vector<std::vector<double>> random_inputs(std::size_t ranks,
                                               std::size_t count,
                                               std::uint64_t seed) {
  support::Random rng(seed);
  std::vector<std::vector<double>> v(ranks, std::vector<double>(count));
  for (auto& buf : v) {
    for (auto& x : buf) x = rng.uniform(-10.0, 10.0);
  }
  return v;
}

// ------------------------------------------------------- parameterized sweep

struct Case {
  Collective kind;
  Algorithm algo;
  std::size_t ranks;
  std::size_t count;  // elements (block size for *gather/alltoall)
};

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  const auto& c = info.param;
  std::string name = std::string(to_string(c.kind)) + "_" +
                     to_string(c.algo) + "_p" + std::to_string(c.ranks) +
                     "_n" + std::to_string(c.count);
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  const std::size_t rank_set[] = {1, 2, 3, 4, 5, 8, 13, 16, 32};
  const std::size_t count_set[] = {1, 3, 64, 1000};
  for (std::size_t p : rank_set) {
    for (Collective kind :
         {Collective::kBroadcast, Collective::kReduce, Collective::kAllreduce,
          Collective::kAllgather, Collective::kAlltoall, Collective::kGather,
          Collective::kScatter, Collective::kReduceScatter,
          Collective::kScan}) {
      for (Algorithm a : algorithms_for(kind, p)) {
        for (std::size_t n : count_set) {
          cases.push_back({kind, a, p, n});
        }
      }
    }
  }
  return cases;
}

class CollectiveCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(CollectiveCorrectness, MatchesReference) {
  const Case c = GetParam();
  const int root = 0;  // binomial gather/scatter require root 0
  const Schedule schedule =
      make_schedule(c.kind, c.algo, c.ranks, c.count, root);
  validate(schedule);

  const std::size_t total = schedule.total_count;
  auto inputs = random_inputs(c.ranks, std::max<std::size_t>(total, 1),
                              /*seed=*/c.ranks * 1000 + c.count);

  std::vector<std::vector<double>> buffers = inputs;
  for (auto& b : buffers) b.resize(std::max<std::size_t>(total, 1));

  if (c.kind == Collective::kAlltoall) {
    execute_locally(schedule, buffers, ReduceOp::kSum, &inputs);
    // out[r][s*block + i] == in[s][r*block + i]
    const std::size_t block = c.count;
    for (std::size_t r = 0; r < c.ranks; ++r) {
      for (std::size_t s = 0; s < c.ranks; ++s) {
        for (std::size_t i = 0; i < block; ++i) {
          ASSERT_DOUBLE_EQ(buffers[r][s * block + i],
                           inputs[s][r * block + i])
              << "r=" << r << " s=" << s << " i=" << i;
        }
      }
    }
    return;
  }

  execute_locally(schedule, buffers, ReduceOp::kSum);

  switch (c.kind) {
    case Collective::kBroadcast:
      for (std::size_t r = 0; r < c.ranks; ++r) {
        for (std::size_t i = 0; i < c.count; ++i) {
          ASSERT_DOUBLE_EQ(buffers[r][i], inputs[root][i]) << r << "," << i;
        }
      }
      break;
    case Collective::kReduce:
    case Collective::kAllreduce: {
      std::vector<double> expected(c.count, 0.0);
      for (std::size_t i = 0; i < c.count; ++i) {
        for (std::size_t r = 0; r < c.ranks; ++r) {
          expected[i] += inputs[r][i];
        }
      }
      const std::size_t first = c.kind == Collective::kReduce ? root : 0;
      const std::size_t last =
          c.kind == Collective::kReduce ? root + 1 : c.ranks;
      for (std::size_t r = first; r < last; ++r) {
        for (std::size_t i = 0; i < c.count; ++i) {
          ASSERT_NEAR(buffers[r][i], expected[i], 1e-9) << r << "," << i;
        }
      }
      break;
    }
    case Collective::kAllgather: {
      const std::size_t block = c.count;
      for (std::size_t r = 0; r < c.ranks; ++r) {
        for (std::size_t s = 0; s < c.ranks; ++s) {
          for (std::size_t i = 0; i < block; ++i) {
            ASSERT_DOUBLE_EQ(buffers[r][s * block + i],
                             inputs[s][s * block + i])
                << r << "," << s << "," << i;
          }
        }
      }
      break;
    }
    case Collective::kGather: {
      const std::size_t block = c.count;
      for (std::size_t s = 0; s < c.ranks; ++s) {
        for (std::size_t i = 0; i < block; ++i) {
          ASSERT_DOUBLE_EQ(buffers[root][s * block + i],
                           inputs[s][s * block + i]);
        }
      }
      break;
    }
    case Collective::kScatter: {
      const std::size_t block = c.count;
      for (std::size_t r = 0; r < c.ranks; ++r) {
        for (std::size_t i = 0; i < block; ++i) {
          ASSERT_DOUBLE_EQ(buffers[r][r * block + i],
                           inputs[root][r * block + i]);
        }
      }
      break;
    }
    case Collective::kReduceScatter: {
      const std::size_t block = c.count;
      for (std::size_t r = 0; r < c.ranks; ++r) {
        for (std::size_t i = 0; i < block; ++i) {
          double expected = 0.0;
          for (std::size_t s2 = 0; s2 < c.ranks; ++s2) {
            expected += inputs[s2][r * block + i];
          }
          ASSERT_NEAR(buffers[r][r * block + i], expected, 1e-9)
              << r << "," << i;
        }
      }
      break;
    }
    case Collective::kScan: {
      for (std::size_t r = 0; r < c.ranks; ++r) {
        for (std::size_t i = 0; i < c.count; ++i) {
          double expected = 0.0;
          for (std::size_t s2 = 0; s2 <= r; ++s2) {
            expected += inputs[s2][i];
          }
          ASSERT_NEAR(buffers[r][i], expected, 1e-9) << r << "," << i;
        }
      }
      break;
    }
    default:
      FAIL() << "unhandled kind";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CollectiveCorrectness,
                         ::testing::ValuesIn(make_cases()), case_name);

// --------------------------------------------------------- other properties

TEST(BarrierSchedules, AllRanksParticipateAndComplete) {
  for (std::size_t p : {2u, 3u, 8u, 17u}) {
    for (Algorithm a : algorithms_for(Collective::kBarrier, p)) {
      const auto s = barrier(p, a);
      validate(s);
      std::vector<std::vector<double>> buffers(p, std::vector<double>(1));
      EXPECT_NO_THROW(execute_locally(s, buffers));
    }
  }
}

TEST(ReduceOps, MaxMinProdSupported) {
  const std::size_t p = 4, n = 16;
  auto inputs = random_inputs(p, n, 99);
  for (ReduceOp op : {ReduceOp::kMax, ReduceOp::kMin, ReduceOp::kProd}) {
    auto buffers = inputs;
    execute_locally(allreduce(p, n, Algorithm::kBinomial), buffers, op);
    for (std::size_t i = 0; i < n; ++i) {
      double expected = inputs[0][i];
      for (std::size_t r = 1; r < p; ++r) {
        expected = combine(op, expected, inputs[r][i]);
      }
      ASSERT_NEAR(buffers[0][i], expected, 1e-9);
    }
  }
}

TEST(AllreduceNonRootBroadcast, RootThreeBroadcastCorrect) {
  // Non-zero roots exercise the relative-rank arithmetic.
  const std::size_t p = 7, n = 20;
  for (Algorithm a : {Algorithm::kLinear, Algorithm::kBinomial,
                      Algorithm::kRing}) {
    auto inputs = random_inputs(p, n, 7);
    auto buffers = inputs;
    execute_locally(broadcast(p, n, /*root=*/3, a), buffers);
    for (std::size_t r = 0; r < p; ++r) {
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(buffers[r][i], inputs[3][i]) << to_string(a);
      }
    }
  }
}

TEST(ReduceNonZeroRoot, BinomialReduceToRootFive) {
  const std::size_t p = 9, n = 8;
  auto inputs = random_inputs(p, n, 11);
  auto buffers = inputs;
  execute_locally(reduce(p, n, /*root=*/5, Algorithm::kBinomial), buffers);
  for (std::size_t i = 0; i < n; ++i) {
    double expected = 0;
    for (std::size_t r = 0; r < p; ++r) expected += inputs[r][i];
    ASSERT_NEAR(buffers[5][i], expected, 1e-9);
  }
}

TEST(SingleRank, AllCollectivesAreNoops) {
  for (Collective c :
       {Collective::kBroadcast, Collective::kReduce, Collective::kAllreduce,
        Collective::kAllgather, Collective::kGather, Collective::kScatter}) {
    for (Algorithm a : algorithms_for(c, 1)) {
      auto s = make_schedule(c, a, 1, 10, 0);
      std::vector<std::vector<double>> buffers{std::vector<double>(10, 3.0)};
      EXPECT_NO_THROW(execute_locally(s, buffers));
      EXPECT_DOUBLE_EQ(buffers[0][0], 3.0);
    }
  }
}

TEST(LocalExec, DetectsDeadlock) {
  // Two ranks that both receive first.
  Schedule s;
  s.name = "deadlock";
  s.ranks = 2;
  s.total_count = 1;
  s.per_rank.resize(2);
  s.per_rank[0].push_back(CommStep::recv(1, 0, 1));
  s.per_rank[0].push_back(CommStep::send(1, 0, 1));
  s.per_rank[1].push_back(CommStep::recv(0, 0, 1));
  s.per_rank[1].push_back(CommStep::send(0, 0, 1));
  std::vector<std::vector<double>> buffers(2, std::vector<double>(1));
  EXPECT_THROW(execute_locally(s, buffers), std::runtime_error);
}

}  // namespace
}  // namespace polaris::coll
