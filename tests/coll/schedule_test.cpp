#include "polaris/coll/schedule.hpp"

#include <gtest/gtest.h>

#include "polaris/coll/algorithms.hpp"
#include "polaris/support/check.hpp"

namespace polaris::coll {
namespace {

TEST(ChunkRange, EvenSplit) {
  EXPECT_EQ(chunk_range(100, 4, 0), (std::pair<std::size_t, std::size_t>{0, 25}));
  EXPECT_EQ(chunk_range(100, 4, 3),
            (std::pair<std::size_t, std::size_t>{75, 25}));
}

TEST(ChunkRange, RemainderGoesToLeadingChunks) {
  // 10 over 4 -> 3,3,2,2
  EXPECT_EQ(chunk_range(10, 4, 0), (std::pair<std::size_t, std::size_t>{0, 3}));
  EXPECT_EQ(chunk_range(10, 4, 1), (std::pair<std::size_t, std::size_t>{3, 3}));
  EXPECT_EQ(chunk_range(10, 4, 2), (std::pair<std::size_t, std::size_t>{6, 2}));
  EXPECT_EQ(chunk_range(10, 4, 3), (std::pair<std::size_t, std::size_t>{8, 2}));
}

TEST(ChunkRange, ChunksTileTheBuffer) {
  for (std::size_t count : {1u, 7u, 64u, 1001u}) {
    for (std::size_t parts : {1u, 2u, 3u, 8u, 17u}) {
      std::size_t expect_off = 0;
      for (std::size_t i = 0; i < parts; ++i) {
        const auto [off, len] = chunk_range(count, parts, i);
        EXPECT_EQ(off, expect_off);
        expect_off += len;
      }
      EXPECT_EQ(expect_off, count);
    }
  }
}

TEST(ChunkRange, MoreChunksThanElementsYieldsEmpties) {
  const auto [off, len] = chunk_range(2, 4, 3);
  EXPECT_EQ(len, 0u);
  EXPECT_EQ(off, 2u);
}

TEST(CommStep, Factories) {
  const auto s = CommStep::send(3, 10, 5);
  EXPECT_TRUE(s.has_send());
  EXPECT_FALSE(s.has_recv());
  const auto r = CommStep::recv(2, 0, 7, true);
  EXPECT_TRUE(r.has_recv());
  EXPECT_TRUE(r.recv_reduce);
  const auto sr = CommStep::sendrecv(1, 0, 4, 2, 4, 4);
  EXPECT_TRUE(sr.has_send());
  EXPECT_TRUE(sr.has_recv());
}

TEST(Validate, AcceptsAllGeneratedSchedules) {
  for (std::size_t ranks : {1u, 2u, 3u, 4u, 7u, 8u, 16u}) {
    for (Collective c :
         {Collective::kBarrier, Collective::kBroadcast, Collective::kReduce,
          Collective::kAllreduce, Collective::kAllgather,
          Collective::kAlltoall, Collective::kGather, Collective::kScatter}) {
      for (Algorithm a : algorithms_for(c, ranks)) {
        const std::size_t count = c == Collective::kBarrier ? 0 : 12;
        EXPECT_NO_THROW(validate(make_schedule(c, a, ranks, count, 0)))
            << to_string(c) << "/" << to_string(a) << " p=" << ranks;
      }
    }
  }
}

TEST(Validate, CatchesUnmatchedSend) {
  Schedule s;
  s.name = "bad";
  s.ranks = 2;
  s.total_count = 4;
  s.per_rank.resize(2);
  s.per_rank[0].push_back(CommStep::send(1, 0, 4));
  EXPECT_THROW(validate(s), support::ContractViolation);
}

TEST(Validate, CatchesCountMismatch) {
  Schedule s;
  s.name = "bad";
  s.ranks = 2;
  s.total_count = 8;
  s.per_rank.resize(2);
  s.per_rank[0].push_back(CommStep::send(1, 0, 4));
  s.per_rank[1].push_back(CommStep::recv(0, 0, 5));
  EXPECT_THROW(validate(s), support::ContractViolation);
}

TEST(Validate, CatchesOutOfRangeBuffer) {
  Schedule s;
  s.name = "bad";
  s.ranks = 2;
  s.total_count = 4;
  s.per_rank.resize(2);
  s.per_rank[0].push_back(CommStep::send(1, 2, 4));  // 2+4 > 4
  s.per_rank[1].push_back(CommStep::recv(0, 0, 4));
  EXPECT_THROW(validate(s), support::ContractViolation);
}

TEST(Validate, CatchesSelfSend) {
  Schedule s;
  s.name = "bad";
  s.ranks = 2;
  s.total_count = 4;
  s.per_rank.resize(2);
  s.per_rank[0].push_back(CommStep::send(0, 0, 4));
  EXPECT_THROW(validate(s), support::ContractViolation);
}

TEST(ScheduleMetrics, RingAllreduceMovesMinimalData) {
  // Ring allreduce moves 2(p-1)/p of the buffer per rank.
  const std::size_t p = 8, n = 800;
  const auto s = allreduce(p, n, Algorithm::kRing);
  EXPECT_EQ(s.total_elements_moved(), 2 * (p - 1) * (n / p) * p);
  EXPECT_EQ(s.max_steps(), 2 * (p - 1));
}

TEST(ScheduleMetrics, RecursiveDoublingMovesFullBufferPerRound) {
  const std::size_t p = 8, n = 100;
  const auto s = allreduce(p, n, Algorithm::kRecursiveDoubling);
  EXPECT_EQ(s.total_elements_moved(), 3 * n * p);  // log2(8)=3 rounds
  EXPECT_EQ(s.max_steps(), 3u);
}

TEST(ScheduleMetrics, BinomialBroadcastDepthIsLog) {
  const auto s = broadcast(32, 10, 0, Algorithm::kBinomial);
  EXPECT_EQ(s.max_steps(), 5u);  // root sends to log2(32) children
}

}  // namespace
}  // namespace polaris::coll
