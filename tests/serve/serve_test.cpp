// The serving tier: open-loop arrivals, LB policies, tail latency, and
// failover.  These are behavioural tests of ServeSim as a closed system —
// every request that enters must leave as exactly one completion or one
// drop, the whole run must replay bit-for-bit from its seed, and the
// queueing-theory ordering (smarter balancers -> shorter tails at high
// load) must come out of the simulation rather than being baked in.
#include "polaris/serve/serve.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/obs/metrics.hpp"

namespace polaris::serve {
namespace {

/// Small-but-loaded baseline: 2 front-ends, 4 shards, 10us service.
/// Per-shard capacity 100k rps -> aggregate 400k; `rho` scales the
/// open-loop offered load against it.
ServeConfig quick_config(double rho, LbPolicy lb) {
  ServeConfig cfg;
  cfg.frontends = 2;
  cfg.shards = 4;
  cfg.service_mean_s = 10e-6;
  const double capacity = cfg.shards / cfg.service_mean_s;
  cfg.arrival = support::ArrivalSpec::poisson(rho * capacity / cfg.frontends);
  cfg.request_bytes = 128;
  cfg.response_bytes = 128;
  cfg.lb = lb;
  cfg.fabric = fabric::fabrics::myrinet2000();
  cfg.duration_s = 0.05;
  cfg.warmup_s = 0.01;
  cfg.seed = 0xBEEF;
  return cfg;
}

TEST(ServeSim, EveryRequestCompletesOrDrops) {
  ServeSim sim(quick_config(0.7, LbPolicy::kRandom));
  const ServeResult r = sim.run();
  EXPECT_GT(r.offered, 0u);
  EXPECT_EQ(r.offered, r.completed + r.dropped);
  EXPECT_EQ(r.dropped, 0u);  // no faults -> nothing can be lost
  EXPECT_EQ(r.failovers, 0u);
  EXPECT_LE(r.recorded, r.completed);
  EXPECT_EQ(r.latency_ns.count(), r.recorded);
}

TEST(ServeSim, OpenLoopOfferedLoadTracksArrivalRate) {
  const ServeConfig cfg = quick_config(0.5, LbPolicy::kRoundRobin);
  ServeSim sim(cfg);
  const ServeResult r = sim.run();
  const double expected =
      cfg.frontends * cfg.arrival.rate * cfg.duration_s;
  EXPECT_NEAR(static_cast<double>(r.offered), expected, expected * 0.1);
}

TEST(ServeSim, SameSeedReplaysBitForBit) {
  const ServeConfig cfg = quick_config(0.8, LbPolicy::kPo2c);
  ServeSim a(cfg);
  ServeSim b(cfg);
  const ServeResult ra = a.run();
  const ServeResult rb = b.run();
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.completed, rb.completed);
  EXPECT_EQ(ra.recorded, rb.recorded);
  EXPECT_EQ(ra.max_queue_depth, rb.max_queue_depth);
  EXPECT_EQ(ra.latency_ns.sum(), rb.latency_ns.sum());
  EXPECT_EQ(ra.latency_ns.max(), rb.latency_ns.max());
  EXPECT_EQ(ra.net.messages, rb.net.messages);
  EXPECT_EQ(ra.net.bytes, rb.net.bytes);
  EXPECT_EQ(a.engine().now(), b.engine().now());
}

TEST(ServeSim, DifferentSeedsDiverge) {
  ServeConfig cfg = quick_config(0.8, LbPolicy::kRandom);
  ServeSim a(cfg);
  cfg.seed += 1;
  ServeSim b(cfg);
  EXPECT_NE(a.run().latency_ns.sum(), b.run().latency_ns.sum());
}

// The reason the serving tier exists: at high load, sampling queue state
// (po2c, jsq) must beat blind policies on the tail.  The bench pins the
// exact ratios; here we only assert the ordering so the test stays robust
// to parameter drift.
TEST(ServeSim, QueueAwarePoliciesCutTheTailAtHighLoad) {
  const double rho = 0.9;
  const ServeResult random = ServeSim(quick_config(rho, LbPolicy::kRandom)).run();
  const ServeResult po2c = ServeSim(quick_config(rho, LbPolicy::kPo2c)).run();
  const ServeResult jsq = ServeSim(quick_config(rho, LbPolicy::kJsq)).run();
  EXPECT_LT(po2c.p99_us(), random.p99_us());
  EXPECT_LT(jsq.p99_us(), random.p99_us());
  EXPECT_LE(po2c.max_queue_depth, random.max_queue_depth);
}

TEST(ServeSim, ShardCrashFailsOverAndConserves) {
  ServeConfig cfg = quick_config(0.6, LbPolicy::kPo2c);
  cfg.timeline_bucket_s = 0.005;
  ServeSim sim(cfg);
  // Kill one shard for the middle of the run; its traffic must fail over.
  sim.injector().schedule_node_crash(0.02, sim.shard_node(0),
                                     /*repair_after=*/0.015);
  const ServeResult r = sim.run();
  EXPECT_GT(r.failovers, 0u);
  EXPECT_EQ(r.offered, r.completed + r.dropped);
  EXPECT_GT(r.completed, 0u);
  // 10 buckets of 5ms cover the 50ms run; every completion lands in one.
  ASSERT_EQ(r.timeline.size(), 10u);
  std::uint64_t bucketed = 0;
  for (const auto& h : r.timeline) bucketed += h.count();
  EXPECT_EQ(bucketed, r.completed);
}

TEST(ServeSim, CustomPlacementRoutesOverTheGivenNodes) {
  ServeConfig cfg = quick_config(0.3, LbPolicy::kRoundRobin);
  cfg.frontends = 2;
  cfg.shards = 2;
  cfg.arrival = support::ArrivalSpec::poisson(20'000.0);
  // Front-ends in pod 0 of a 16-host fat tree, shards in pod 3: every
  // request/response crosses the core.
  cfg.frontend_nodes = {0, 1};
  cfg.shard_nodes = {12, 13};
  ServeSim sim(cfg, std::make_unique<fabric::FatTree>(4));
  EXPECT_EQ(sim.frontend_node(1), 1u);
  EXPECT_EQ(sim.shard_node(0), 12u);
  const ServeResult r = sim.run();
  EXPECT_EQ(r.offered, r.completed);
  EXPECT_GT(r.net.messages, 0u);
}

TEST(ServeSim, AdaptiveRoutingModeReachesTheNetwork) {
  ServeConfig cfg = quick_config(0.5, LbPolicy::kRandom);
  cfg.routing = fabric::RoutingMode::kAdaptive;
  cfg.frontend_nodes = {0, 1};
  cfg.shard_nodes = {4, 6, 8, 10};
  ServeSim sim(cfg, std::make_unique<fabric::FatTree>(4));
  EXPECT_EQ(sim.network().routing(), fabric::RoutingMode::kAdaptive);
  const ServeResult r = sim.run();
  EXPECT_EQ(r.offered, r.completed);
  EXPECT_GT(r.net.adaptive_decisions, 0u);
}

TEST(ServeSim, ExportMetricsMirrorsTheResult) {
  const ServeResult r = ServeSim(quick_config(0.5, LbPolicy::kJsq)).run();
  obs::MetricsRegistry reg;
  export_metrics(r, reg);
  EXPECT_EQ(reg.counter("serve.offered").value(), r.offered);
  EXPECT_EQ(reg.counter("serve.completed").value(), r.completed);
  EXPECT_EQ(reg.log_histogram("serve.latency_ns").count(),
            r.latency_ns.count());
  EXPECT_DOUBLE_EQ(reg.gauge("serve.p99_us").value(), r.p99_us());
}

TEST(ServeSim, ToStringCoversAllPolicies) {
  EXPECT_STREQ(to_string(LbPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(LbPolicy::kRoundRobin), "round-robin");
  EXPECT_STREQ(to_string(LbPolicy::kJsq), "jsq");
  EXPECT_STREQ(to_string(LbPolicy::kPo2c), "po2c");
}

}  // namespace
}  // namespace polaris::serve
