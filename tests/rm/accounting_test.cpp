// AccountingStore: the sacct-alike ledger and decayed-usage fair share.
#include "polaris/rm/accounting.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "polaris/rm/types.hpp"

namespace polaris::rm {
namespace {

JobSpec spec(JobId id, UserId user, AccountId account, std::uint32_t width,
             double submit) {
  JobSpec s;
  s.id = id;
  s.user = user;
  s.account = account;
  s.width = width;
  s.submit = submit;
  return s;
}

TEST(AccountingTest, LifecycleStampsAndTotals) {
  AccountingStore acct;
  acct.on_submit(spec(1, /*user=*/2, /*account=*/3, /*width=*/4, 10.0));
  acct.on_start(1, 20.0);
  const JobRecord* rec = acct.find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, JobState::kRunning);
  EXPECT_DOUBLE_EQ(rec->wait(), 10.0);
  acct.on_complete(1, 50.0);
  EXPECT_EQ(rec->state, JobState::kCompleted);
  EXPECT_DOUBLE_EQ(rec->finish, 50.0);

  const AccountingStore::Totals t = acct.totals();
  EXPECT_EQ(t.jobs, 1u);
  EXPECT_EQ(t.completed, 1u);
  EXPECT_EQ(t.requeues, 0u);
  EXPECT_DOUBLE_EQ(t.node_seconds, 120.0);  // 4 nodes x 30 s
  EXPECT_DOUBLE_EQ(t.wasted_node_seconds, 0.0);
  EXPECT_EQ(acct.find(99), nullptr);
}

TEST(AccountingTest, RequeueChargesPartialRunAsWaste) {
  AccountingStore acct;
  acct.on_submit(spec(1, 0, 0, 4, 0.0));
  acct.on_start(1, 0.0);
  acct.on_requeue(1, 30.0);
  const JobRecord* rec = acct.find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, JobState::kPending);
  EXPECT_EQ(rec->requeues, 1u);
  EXPECT_DOUBLE_EQ(rec->wasted_node_seconds, 120.0);
  EXPECT_DOUBLE_EQ(rec->start, -1.0);

  acct.on_start(1, 100.0);
  acct.on_complete(1, 150.0);
  const AccountingStore::Totals t = acct.totals();
  EXPECT_DOUBLE_EQ(t.node_seconds, 200.0);         // final run only
  EXPECT_DOUBLE_EQ(t.wasted_node_seconds, 120.0);  // aborted run
  // The wasted run still counts against the user's fair share (the first
  // charge decays slightly over the 120 s between the two charges).
  EXPECT_NEAR(acct.user_usage(0, 150.0), 320.0, 0.05);
}

TEST(AccountingTest, FairShareFactorPenalizesUsage) {
  AccountingStore acct;
  acct.on_submit(spec(1, /*user=*/0, 0, 8, 0.0));
  acct.on_start(1, 0.0);
  acct.on_complete(1, 1000.0);  // user 0 consumed 8000 node-seconds

  const double hog = acct.user_factor(0, 1000.0);
  const double idle = acct.user_factor(1, 1000.0);
  EXPECT_DOUBLE_EQ(idle, 1.0);  // never charged
  EXPECT_LT(hog, idle);
  EXPECT_GT(hog, 0.0);
  // Sole user: usage == mean usage, so the factor is exactly 2^-1.
  EXPECT_NEAR(hog, 0.5, 1e-12);

  // More shares tolerate more usage before the factor drops.
  acct.set_user_shares(0, 4.0);
  EXPECT_GT(acct.user_factor(0, 1000.0), hog);

  EXPECT_LT(acct.account_factor(0, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(acct.account_factor(9, 1000.0), 1.0);
}

TEST(AccountingTest, UsageDecaysWithHalflife) {
  AccountingStore acct(AccountingStore::Config{/*fairshare_halflife=*/100.0});
  acct.on_submit(spec(1, 0, 0, 1, 0.0));
  acct.on_start(1, 0.0);
  acct.on_complete(1, 40.0);  // 40 node-seconds at t=40
  const double now = acct.user_usage(0, 40.0);
  EXPECT_DOUBLE_EQ(now, 40.0);
  EXPECT_NEAR(acct.user_usage(0, 140.0), 20.0, 1e-9);   // one half-life
  EXPECT_NEAR(acct.user_usage(0, 240.0), 10.0, 1e-9);   // two
  EXPECT_GT(acct.user_factor(0, 2040.0), 0.49);  // usage nearly gone...
  EXPECT_LE(acct.user_factor(0, 2040.0), 0.5);   // ...but so is the mean
}

TEST(AccountingTest, QueriesFilterByUserAccountAndState) {
  AccountingStore acct;
  acct.on_submit(spec(3, /*user=*/0, /*account=*/0, 1, 0.0));
  acct.on_submit(spec(1, /*user=*/0, /*account=*/1, 1, 1.0));
  acct.on_submit(spec(2, /*user=*/1, /*account=*/1, 1, 2.0));
  acct.on_start(1, 5.0);
  acct.on_complete(1, 6.0);
  acct.on_start(2, 5.0);

  EXPECT_EQ(acct.query({}).size(), 3u);
  // Sorted by id regardless of submission order.
  EXPECT_EQ(acct.query({})[0].id, 1u);
  EXPECT_EQ(acct.query({})[2].id, 3u);

  AccountingStore::Query by_user;
  by_user.user = 0;
  EXPECT_EQ(acct.query(by_user).size(), 2u);

  AccountingStore::Query by_account;
  by_account.account = 1;
  EXPECT_EQ(acct.query(by_account).size(), 2u);

  AccountingStore::Query done;
  done.filter_state = true;
  done.state = JobState::kCompleted;
  const auto completed = acct.query(done);
  ASSERT_EQ(completed.size(), 1u);
  EXPECT_EQ(completed[0].id, 1u);

  AccountingStore::Query both;
  both.user = 1;
  both.filter_state = true;
  both.state = JobState::kRunning;
  EXPECT_EQ(acct.query(both).size(), 1u);
}

TEST(AccountingTest, CancelRecordsTerminalState) {
  AccountingStore acct;
  acct.on_submit(spec(1, 0, 0, 2, 0.0));
  acct.on_cancel(1, 9.0);
  const JobRecord* rec = acct.find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, JobState::kCancelled);
  EXPECT_DOUBLE_EQ(rec->finish, 9.0);
  EXPECT_EQ(acct.totals().completed, 0u);
}

TEST(AccountingTest, FingerprintIsDeterministicAndSensitive) {
  auto build = [](double finish) {
    AccountingStore acct;
    acct.on_submit(spec(1, 2, 3, 4, 0.0));
    acct.on_start(1, 10.0);
    acct.on_complete(1, finish);
    acct.on_submit(spec(2, 0, 0, 1, 5.0));
    return acct;
  };
  const AccountingStore a = build(100.0);
  const AccountingStore b = build(100.0);
  const AccountingStore c = build(101.0);
  EXPECT_EQ(a.dump(), b.dump());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_NE(a.dump().find("COMPLETED"), std::string::npos);
  EXPECT_NE(a.dump().find("PENDING"), std::string::npos);
}

}  // namespace
}  // namespace polaris::rm
