// ResourceManager scheduling semantics.
//
// The load-bearing pin: with RmConfig::legacy_fcfs() the DES-service
// manager reproduces the legacy sched::Simulator FCFS schedule
// job-for-job on a whole-second multi-user trace (times compared at tick
// resolution, where integral seconds are exact).  Around it: EASY
// backfill strictly helps mean wait and never loses a job, conservative
// backfill completes everything, priority preemption restarts victims
// with the waste accounted, reservations hold their window, fair share
// reorders equal-priority users, and topology placement stays contiguous.
#include "polaris/rm/manager.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/time.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/sched/scheduler.hpp"
#include "polaris/workload/job_mix.hpp"

namespace polaris::rm {
namespace {

// Integral-second times are exact in the tick domain; comparing ticks
// sidesteps the one-ulp noise of double<->tick round trips.
std::int64_t ticks(double seconds) { return des::from_seconds(seconds); }

std::vector<sched::Job> to_legacy(const std::vector<JobSpec>& specs) {
  std::vector<sched::Job> jobs;
  jobs.reserve(specs.size());
  for (const JobSpec& s : specs) {
    sched::Job j;
    j.id = s.id;
    j.submit = s.submit;
    j.runtime = s.runtime;
    j.estimate = s.estimate;
    j.width = s.width;
    jobs.push_back(j);
  }
  return jobs;
}

std::vector<JobSpec> saturating_trace(std::size_t count, std::uint64_t seed) {
  workload::MultiUserTraceConfig cfg;
  cfg.jobs = count;
  cfg.users = 8;
  cfg.accounts = 2;
  cfg.mean_interarrival = 60.0;
  cfg.max_width_exp = 5;  // widths <= 32 on a 64-node machine
  cfg.min_runtime = 60.0;
  cfg.max_runtime = 2.0 * 3600.0;
  cfg.integral_times = true;
  return workload::make_multi_user_trace(cfg, seed);
}

TEST(ResourceManagerTest, LegacyFcfsEquivalenceJobForJob) {
  const std::vector<JobSpec> specs = saturating_trace(400, 42);
  constexpr std::size_t kNodes = 64;

  std::vector<sched::Job> legacy = to_legacy(specs);
  const sched::SchedMetrics m =
      sched::run_scheduler(legacy, kNodes, sched::Policy::kFcfs);
  ASSERT_EQ(m.jobs, specs.size());

  des::Engine engine;
  ResourceManager rm(engine, kNodes, RmConfig::legacy_fcfs());
  for (const JobSpec& s : specs) rm.submit(s);
  engine.run();

  for (const sched::Job& j : legacy) {
    const JobRecord* rec = rm.accounting().find(j.id);
    ASSERT_NE(rec, nullptr) << "job " << j.id;
    EXPECT_EQ(rec->state, JobState::kCompleted) << "job " << j.id;
    EXPECT_EQ(ticks(rec->start), ticks(j.start)) << "job " << j.id;
    EXPECT_EQ(ticks(rec->finish), ticks(j.finish)) << "job " << j.id;
  }
  const ResourceManager::Summary s = rm.summary();
  EXPECT_EQ(s.completed, specs.size());
  EXPECT_EQ(s.backfilled, 0u);
  EXPECT_EQ(s.preemptions, 0u);
  EXPECT_EQ(rm.queue_depth(), 0u);
  EXPECT_EQ(rm.running_jobs(), 0u);
  EXPECT_NEAR(s.mean_wait, m.mean_wait, 1e-6);
  EXPECT_NEAR(s.mean_bounded_slowdown, m.mean_bounded_slowdown, 1e-6);
}

TEST(ResourceManagerTest, EasyBackfillImprovesMeanWait) {
  const std::vector<JobSpec> specs = saturating_trace(400, 42);
  constexpr std::size_t kNodes = 64;

  std::vector<sched::Job> legacy = to_legacy(specs);
  const sched::SchedMetrics fcfs =
      sched::run_scheduler(legacy, kNodes, sched::Policy::kFcfs);

  RmConfig cfg = RmConfig::legacy_fcfs();
  cfg.backfill = true;
  cfg.backfill_interval = 0.0;  // every dirty event may trigger a cycle
  des::Engine engine;
  ResourceManager rm(engine, kNodes, cfg);
  for (const JobSpec& s : specs) rm.submit(s);
  engine.run();

  const ResourceManager::Summary s = rm.summary();
  EXPECT_EQ(s.completed, specs.size());
  EXPECT_GT(s.backfilled, 0u);
  EXPECT_LT(s.mean_wait, fcfs.mean_wait);
  EXPECT_GT(rm.backfill_cycles(), 0u);
}

TEST(ResourceManagerTest, ConservativeBackfillCompletesEverything) {
  const std::vector<JobSpec> specs = saturating_trace(300, 7);
  RmConfig cfg = RmConfig::legacy_fcfs();
  cfg.backfill = true;
  cfg.conservative = true;
  cfg.backfill_interval = 30.0;
  des::Engine engine;
  ResourceManager rm(engine, 64, cfg);
  for (const JobSpec& s : specs) rm.submit(s);
  engine.run();
  const ResourceManager::Summary s = rm.summary();
  EXPECT_EQ(s.completed, specs.size());
  EXPECT_GT(s.backfilled, 0u);
}

TEST(ResourceManagerTest, RateLimitedBackfillCoalescesCycles) {
  const std::vector<JobSpec> specs = saturating_trace(300, 7);
  auto run_with_interval = [&](double interval) {
    RmConfig cfg = RmConfig::legacy_fcfs();
    cfg.backfill = true;
    cfg.backfill_interval = interval;
    des::Engine engine;
    ResourceManager rm(engine, 64, cfg);
    for (const JobSpec& s : specs) rm.submit(s);
    engine.run();
    EXPECT_EQ(rm.summary().completed, specs.size());
    return rm.backfill_cycles();
  };
  const std::uint64_t eager = run_with_interval(0.0);
  const std::uint64_t limited = run_with_interval(300.0);
  EXPECT_LT(limited, eager);
  EXPECT_GT(limited, 0u);
}

TEST(ResourceManagerTest, PreemptionRestartsVictimAndAccountsWaste) {
  des::Engine engine;
  RmConfig cfg;
  cfg.placement = RmConfig::Placement::kFlat;
  cfg.backfill = false;
  cfg.preemption = true;
  cfg.priority_tiers = 8;
  ResourceManager rm(engine, 4, cfg);

  JobSpec low;
  low.id = 1;
  low.submit = 0.0;
  low.runtime = 1000.0;
  low.estimate = 1000.0;
  low.width = 4;
  low.priority = 0;
  low.preemptible = true;
  JobSpec high;
  high.id = 2;
  high.submit = 10.0;
  high.runtime = 50.0;
  high.estimate = 50.0;
  high.width = 4;
  high.priority = 7;
  high.preemptible = false;
  rm.submit(low);
  rm.submit(high);
  engine.run();

  const JobRecord* lo = rm.accounting().find(1);
  const JobRecord* hi = rm.accounting().find(2);
  ASSERT_NE(lo, nullptr);
  ASSERT_NE(hi, nullptr);
  EXPECT_EQ(ticks(hi->start), ticks(10.0));
  EXPECT_EQ(ticks(hi->finish), ticks(60.0));
  EXPECT_EQ(lo->requeues, 1u);
  EXPECT_NEAR(lo->wasted_node_seconds, 40.0, 1e-9);  // 4 nodes * 10 s
  EXPECT_EQ(ticks(lo->start), ticks(60.0));  // restarted from scratch
  EXPECT_EQ(ticks(lo->finish), ticks(1060.0));
  const ResourceManager::Summary s = rm.summary();
  EXPECT_EQ(s.preemptions, 1u);
  EXPECT_EQ(s.completed, 2u);
}

TEST(ResourceManagerTest, TaggedJobRunsInsideReservationWindow) {
  des::Engine engine;
  RmConfig cfg = RmConfig::legacy_fcfs();
  cfg.backfill = true;
  cfg.backfill_interval = 0.0;
  ResourceManager rm(engine, 4, cfg);
  const ReservationId rid = rm.add_reservation(100.0, 200.0, 4);

  JobSpec tagged;
  tagged.id = 1;
  tagged.submit = 0.0;
  tagged.runtime = 50.0;
  tagged.estimate = 50.0;
  tagged.width = 4;
  tagged.reservation = rid;
  JobSpec filler;
  filler.id = 2;
  filler.submit = 0.0;
  filler.runtime = 20.0;
  filler.estimate = 20.0;
  filler.width = 4;
  rm.submit(tagged);
  rm.submit(filler);
  engine.run();

  const JobRecord* t = rm.accounting().find(1);
  const JobRecord* f = rm.accounting().find(2);
  ASSERT_NE(t, nullptr);
  ASSERT_NE(f, nullptr);
  // The tagged job waits for its window even though the machine is idle.
  EXPECT_EQ(ticks(t->start), ticks(100.0));
  EXPECT_EQ(ticks(t->finish), ticks(150.0));
  // The filler may only run once the reservation's demand is satisfied.
  EXPECT_EQ(ticks(f->start), ticks(150.0));
  EXPECT_EQ(rm.summary().completed, 2u);
}

TEST(ResourceManagerTest, ReservationBlocksOverlappingUntaggedJob) {
  des::Engine engine;
  ResourceManager rm(engine, 4, RmConfig::legacy_fcfs());
  rm.add_reservation(100.0, 200.0, 4);

  JobSpec big;
  big.id = 1;
  big.submit = 0.0;
  big.runtime = 1000.0;
  big.estimate = 1000.0;
  big.width = 4;
  rm.submit(big);
  engine.run();

  const JobRecord* rec = rm.accounting().find(1);
  ASSERT_NE(rec, nullptr);
  // Its planned run would cross the window, so it waits out the whole
  // reservation (nobody claimed the held nodes).
  EXPECT_EQ(ticks(rec->start), ticks(200.0));
  EXPECT_EQ(ticks(rec->finish), ticks(1200.0));
}

TEST(ResourceManagerTest, FairShareDeprioritizesHeavyUser) {
  des::Engine engine;
  RmConfig cfg;
  cfg.placement = RmConfig::Placement::kFlat;
  cfg.backfill = false;
  cfg.fair_share = true;
  cfg.priority_tiers = 1;
  cfg.fairshare_tiers = 4;
  ResourceManager rm(engine, 1, cfg);

  auto mk = [](JobId id, UserId user, double submit, double runtime) {
    JobSpec s;
    s.id = id;
    s.user = user;
    s.submit = submit;
    s.runtime = runtime;
    s.estimate = runtime;
    s.width = 1;
    return s;
  };
  rm.submit(mk(1, /*user=*/0, 0.0, 1000.0));     // the hog
  rm.submit(mk(2, /*user=*/2, 1000.0, 500.0));   // keeps the node busy
  rm.submit(mk(3, /*user=*/0, 1100.0, 10.0));    // hog again (submitted first)
  rm.submit(mk(4, /*user=*/1, 1100.0, 10.0));    // idle user
  engine.run();

  const JobRecord* hog = rm.accounting().find(3);
  const JobRecord* idle = rm.accounting().find(4);
  ASSERT_NE(hog, nullptr);
  ASSERT_NE(idle, nullptr);
  // The idle user's decayed-usage factor lands in a higher sub-tier, so
  // their job overtakes the hog's earlier submission.
  EXPECT_EQ(ticks(idle->start), ticks(1500.0));
  EXPECT_EQ(ticks(hog->start), ticks(1510.0));
  EXPECT_LT(rm.accounting().user_factor(0, 1100.0),
            rm.accounting().user_factor(1, 1100.0));
}

struct PlacementProbe {
  ResourceManager* rm;
  bool saw_contiguous = false;

  static void check_cb(void* ctx) {
    auto& p = *static_cast<PlacementProbe*>(ctx);
    for (JobId id = 1; id <= 4; ++id) {
      const Allocation* a = p.rm->allocation_of(id);
      ASSERT_NE(a, nullptr) << "job " << id << " not running";
      EXPECT_TRUE(a->contiguous());
      EXPECT_EQ(a->nodes.size(), 16u);
    }
    p.saw_contiguous = true;
  }
};

TEST(ResourceManagerTest, TopologyPlacementIsContiguous) {
  des::Engine engine;
  fabric::Torus2D topo(8, 8);
  RmConfig cfg;  // default placement: kTopology
  ResourceManager rm(engine, topo, cfg);
  for (JobId id = 1; id <= 4; ++id) {
    JobSpec s;
    s.id = id;
    s.submit = 0.0;
    s.runtime = 100.0;
    s.estimate = 100.0;
    s.width = 16;
    rm.submit(s);
  }
  PlacementProbe probe{&rm};
  engine.schedule_raw_at(des::from_seconds(1.0), &PlacementProbe::check_cb,
                         &probe);
  engine.run();
  EXPECT_TRUE(probe.saw_contiguous);
  const ResourceManager::Summary s = rm.summary();
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.fragmented_allocs, 0u);
  EXPECT_EQ(rm.allocation_of(1), nullptr);  // released after completion
}

}  // namespace
}  // namespace polaris::rm
