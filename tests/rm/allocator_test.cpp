// BlockAllocator: buddy allocation over locality-preserving linearizations.
//
// The properties pinned here are the ones the resource manager's placement
// quality rests on: aligned power-of-two runs of the linear order are
// compact sub-bricks of the torus (subtrees of the fat tree), allocation
// never fails while enough non-drained nodes are free, contiguity holds
// whenever a large-enough aligned block exists, and the free structure
// survives arbitrary churn (randomized invariant checks + determinism).
#include "polaris/rm/block_allocator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "polaris/fabric/topology.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::rm {
namespace {

TEST(LinearOrderTest, IdentityIsIdentity) {
  const LinearOrder o = LinearOrder::identity(8);
  ASSERT_EQ(o.size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(o.to_node[i], i);
    EXPECT_EQ(o.to_linear[i], i);
  }
}

void expect_permutation(const LinearOrder& o, std::size_t n) {
  ASSERT_EQ(o.to_node.size(), n);
  ASSERT_EQ(o.to_linear.size(), n);
  std::vector<fabric::NodeId> sorted = o.to_node;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(sorted[i], i);
    EXPECT_EQ(o.to_linear[o.to_node[i]], i);
  }
}

// Every aligned power-of-two run of the linear order must be a compact
// sub-brick: the bounding box of its coordinates has volume == run length.
void expect_brick_runs(const fabric::Topology& topo) {
  const std::vector<std::size_t> dims = topo.dims();
  ASSERT_FALSE(dims.empty());
  const LinearOrder o = LinearOrder::for_topology(topo);
  const std::size_t n = topo.node_count();
  expect_permutation(o, n);
  for (std::uint32_t len = 1; len <= n; len *= 2) {
    for (std::uint32_t start = 0; start + len <= n; start += len) {
      std::array<std::size_t, 3> mn{n, n, n};
      std::array<std::size_t, 3> mx{0, 0, 0};
      for (std::uint32_t i = start; i < start + len; ++i) {
        std::size_t id = o.to_node[i];
        for (std::size_t a = 0; a < dims.size(); ++a) {
          const std::size_t c = id % dims[a];
          id /= dims[a];
          mn[a] = std::min(mn[a], c);
          mx[a] = std::max(mx[a], c);
        }
      }
      std::size_t volume = 1;
      for (std::size_t a = 0; a < dims.size(); ++a) {
        volume *= mx[a] - mn[a] + 1;
      }
      EXPECT_EQ(volume, len) << "run [" << start << ", " << start + len
                             << ") is not a compact brick";
    }
  }
}

TEST(LinearOrderTest, Torus2DRunsAreBricks) {
  expect_brick_runs(fabric::Torus2D(8, 8));
}

TEST(LinearOrderTest, Torus3DRunsAreBricks) {
  expect_brick_runs(fabric::Torus3D(4, 4, 4));
}

TEST(LinearOrderTest, RectangularTorusRunsAreBricks) {
  expect_brick_runs(fabric::Torus2D(16, 4));
}

TEST(BlockAllocatorTest, AlignedPow2AllocationsAreContiguous) {
  fabric::Torus2D topo(16, 16);
  BlockAllocator alloc(topo);
  for (std::uint32_t width = 1; width <= 256; width *= 2) {
    Allocation a;
    ASSERT_TRUE(alloc.allocate(width, /*owner=*/7, a));
    EXPECT_TRUE(a.contiguous()) << "width " << width;
    EXPECT_EQ(a.nodes.size(), width);
    alloc.check_invariants();
    alloc.release(a);
    alloc.check_invariants();
    EXPECT_EQ(alloc.free_count(), 256u);
  }
  EXPECT_EQ(alloc.stats().fragmented, 0u);
}

TEST(BlockAllocatorTest, NonPow2WidthsStayContiguousOnEmptyMachine) {
  BlockAllocator alloc(fabric::Torus2D(16, 16));
  for (const std::uint32_t width : {3u, 5u, 19u, 100u, 255u}) {
    Allocation a;
    ASSERT_TRUE(alloc.allocate(width, /*owner=*/1, a));
    EXPECT_TRUE(a.contiguous()) << "width " << width;
    EXPECT_EQ(a.nodes.size(), width);
    alloc.release(a);
    alloc.check_invariants();
  }
}

TEST(BlockAllocatorTest, ExhaustionFailsCleanly) {
  BlockAllocator alloc(64);
  Allocation all;
  ASSERT_TRUE(alloc.allocate(64, 1, all));
  EXPECT_EQ(alloc.free_count(), 0u);
  Allocation one;
  EXPECT_FALSE(alloc.allocate(1, 2, one));
  alloc.release(all);
  EXPECT_TRUE(alloc.allocate(1, 2, one));
  alloc.check_invariants();
}

TEST(BlockAllocatorTest, FragmentedFallbackNeverFailsWhileFree) {
  BlockAllocator alloc(64);
  std::vector<Allocation> jobs(16);
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(alloc.allocate(4, i, jobs[i]));
  }
  // Free every other job: 32 free nodes in 8 islands of 4.
  for (std::uint32_t i = 0; i < 16; i += 2) alloc.release(jobs[i]);
  alloc.check_invariants();
  EXPECT_EQ(alloc.free_count(), 32u);
  Allocation wide;
  ASSERT_TRUE(alloc.allocate(20, 99, wide));
  EXPECT_EQ(wide.nodes.size(), 20u);
  EXPECT_GT(wide.fragments(), 1u);
  EXPECT_GE(alloc.stats().fragmented, 1u);
  alloc.check_invariants();
  EXPECT_EQ(alloc.free_count(), 12u);
}

TEST(BlockAllocatorTest, FullCoalesceAfterChurn) {
  BlockAllocator alloc(128);
  support::Random rng(11);
  std::vector<Allocation> live;
  std::uint32_t tag = 0;
  while (alloc.free_count() > 0) {
    const auto width = static_cast<std::uint32_t>(rng.uniform_int(
        1, std::min<std::int64_t>(
               static_cast<std::int64_t>(alloc.free_count()), 9)));
    Allocation a;
    ASSERT_TRUE(alloc.allocate(width, tag++, a));
    live.push_back(a);
  }
  while (!live.empty()) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
    alloc.release(live[i]);
    live[i] = live.back();
    live.pop_back();
  }
  alloc.check_invariants();
  EXPECT_EQ(alloc.free_count(), 128u);
  // Buddy coalescing must have restored the single maximal block.
  Allocation whole;
  ASSERT_TRUE(alloc.allocate(128, 1, whole));
  EXPECT_TRUE(whole.contiguous());
  EXPECT_GE(alloc.stats().merges, 1u);
}

// Random alloc/release churn with an external ownership mirror; returns a
// flat log of every granted node (and a release marker) so two same-seed
// runs can be compared for determinism.
std::vector<std::uint32_t> churn(BlockAllocator& alloc, std::uint64_t seed,
                                 int steps) {
  constexpr std::uint32_t kReleaseMarker = 0xfffffffeu;
  support::Random rng(seed);
  std::vector<Allocation> live;
  std::vector<std::uint32_t> tags;
  std::vector<std::uint32_t> mirror(alloc.node_count(), kNilIndex);
  std::vector<std::uint32_t> log;
  std::uint32_t next_tag = 0;
  for (int i = 0; i < steps; ++i) {
    const bool can_alloc = alloc.free_count() > 0;
    if (live.empty() || (can_alloc && rng.bernoulli(0.55))) {
      const auto width = static_cast<std::uint32_t>(rng.uniform_int(
          1, std::min<std::int64_t>(
                 static_cast<std::int64_t>(alloc.free_count()), 16)));
      Allocation a;
      const std::uint32_t tag = next_tag++;
      EXPECT_TRUE(alloc.allocate(width, tag, a));
      EXPECT_EQ(a.nodes.size(), width);
      for (const fabric::NodeId nd : a.nodes) {
        EXPECT_EQ(mirror[nd], kNilIndex) << "double allocation of " << nd;
        mirror[nd] = tag;
        EXPECT_EQ(alloc.owner_of(nd), tag);
        log.push_back(nd);
      }
      live.push_back(a);
      tags.push_back(tag);
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      for (const fabric::NodeId nd : live[pick].nodes) {
        EXPECT_EQ(alloc.owner_of(nd), tags[pick]);
        mirror[nd] = kNilIndex;
      }
      alloc.release(live[pick]);
      live[pick] = live.back();
      live.pop_back();
      tags[pick] = tags.back();
      tags.pop_back();
      log.push_back(kReleaseMarker);
    }
    alloc.check_invariants();
    const auto mirror_free = static_cast<std::size_t>(
        std::count(mirror.begin(), mirror.end(), kNilIndex));
    EXPECT_EQ(alloc.free_count() + alloc.drained_count(), mirror_free);
  }
  for (const Allocation& a : live) alloc.release(a);
  alloc.check_invariants();
  EXPECT_EQ(alloc.free_count(), alloc.node_count());
  return log;
}

TEST(BlockAllocatorTest, RandomizedInvariantsTorus) {
  BlockAllocator alloc(fabric::Torus2D(8, 8));
  churn(alloc, 42, 600);
}

TEST(BlockAllocatorTest, RandomizedInvariantsNonPow2Torus) {
  BlockAllocator alloc(fabric::Torus2D(6, 6));
  churn(alloc, 43, 600);
}

TEST(BlockAllocatorTest, RandomizedInvariantsFatTree) {
  BlockAllocator alloc(fabric::FatTree(4));
  churn(alloc, 44, 400);
}

TEST(BlockAllocatorTest, DeterministicAcrossRuns) {
  fabric::Torus2D topo(8, 8);
  BlockAllocator a(topo);
  BlockAllocator b(topo);
  EXPECT_EQ(churn(a, 1234, 500), churn(b, 1234, 500));
}

TEST(BlockAllocatorTest, DrainIdleNodeLeavesFreePool) {
  BlockAllocator alloc(64);
  alloc.drain(10);
  EXPECT_TRUE(alloc.drained(10));
  EXPECT_EQ(alloc.free_count(), 63u);
  EXPECT_EQ(alloc.drained_count(), 1u);
  alloc.check_invariants();
  Allocation a;
  EXPECT_FALSE(alloc.allocate(64, 1, a));
  ASSERT_TRUE(alloc.allocate(63, 1, a));
  EXPECT_EQ(std::count(a.nodes.begin(), a.nodes.end(), fabric::NodeId{10}),
            0);
  alloc.release(a);
  alloc.undrain(10);
  EXPECT_EQ(alloc.free_count(), 64u);
  alloc.check_invariants();
}

TEST(BlockAllocatorTest, DrainBusyNodeWithheldOnRelease) {
  BlockAllocator alloc(64);
  Allocation a;
  ASSERT_TRUE(alloc.allocate(4, 1, a));
  const fabric::NodeId victim = a.nodes[0];
  alloc.drain(victim);
  EXPECT_TRUE(alloc.drained(victim));
  EXPECT_EQ(alloc.owner_of(victim), 1u);  // still owned while running
  alloc.release(a);
  alloc.check_invariants();
  EXPECT_EQ(alloc.free_count(), 63u);  // drained node withheld
  EXPECT_EQ(alloc.owner_of(victim), kNilIndex);
  alloc.undrain(victim);
  EXPECT_EQ(alloc.free_count(), 64u);
  alloc.check_invariants();
}

TEST(BlockAllocatorTest, FatTreeBlockStaysInsideOnePod) {
  fabric::FatTree topo(4);  // 16 hosts, 4 per pod
  BlockAllocator alloc(topo);
  Allocation a;
  ASSERT_TRUE(alloc.allocate(4, 1, a));
  ASSERT_TRUE(a.contiguous());
  for (const fabric::NodeId x : a.nodes) {
    for (const fabric::NodeId y : a.nodes) {
      if (x == y) continue;
      // Intra-pod routes never climb to a core switch (<= 4 links);
      // cross-pod routes take 6.
      EXPECT_LE(topo.switch_hops(x, y), 4u);
    }
  }
}

TEST(BlockAllocatorTest, TorusBlockTighterThanScatter) {
  fabric::Torus2D topo(16, 16);
  BlockAllocator alloc(topo);
  Allocation a;
  ASSERT_TRUE(alloc.allocate(16, 1, a));
  ASSERT_TRUE(a.contiguous());
  auto max_hops = [&](const std::vector<fabric::NodeId>& nodes) {
    std::size_t worst = 0;
    for (const fabric::NodeId x : nodes) {
      for (const fabric::NodeId y : nodes) {
        if (x != y) worst = std::max(worst, topo.switch_hops(x, y));
      }
    }
    return worst;
  };
  std::vector<fabric::NodeId> scatter;
  for (std::uint32_t i = 0; i < 16; ++i) {
    scatter.push_back((i * 83) % 256);  // deterministic spread
  }
  EXPECT_LT(max_hops(a.nodes), max_hops(scatter));
}

}  // namespace
}  // namespace polaris::rm
