// Fault integration: node crashes flow from the Injector (or the direct
// node_failed API) into the resource manager, which requeues the owning
// job, drains the node, and re-places the work once capacity returns.
// Same-seed reruns must produce byte-identical accounting ledgers.
#include <gtest/gtest.h>

#include <cstdint>

#include "polaris/des/engine.hpp"
#include "polaris/des/time.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/rm/manager.hpp"
#include "polaris/workload/job_mix.hpp"

namespace polaris::rm {
namespace {

std::int64_t ticks(double seconds) { return des::from_seconds(seconds); }

TEST(FaultRequeueTest, CrashRequeuesOwningJobUntilRepair) {
  des::Engine engine;
  fabric::Torus2D topo(4, 4);
  fabric::SimNetwork net(engine, fabric::fabrics::myrinet2000(), topo);
  fault::Injector injector(engine, net);

  RmConfig cfg;
  cfg.backfill = false;
  ResourceManager rm(engine, topo, cfg);
  rm.attach_injector(injector);

  // Four jobs fill the 16-node machine.
  for (JobId id = 0; id < 4; ++id) {
    JobSpec s;
    s.id = id;
    s.submit = 0.0;
    s.runtime = 1000.0;
    s.estimate = 1000.0;
    s.width = 4;
    rm.submit(s);
  }
  injector.schedule_node_crash(/*at=*/100.0, /*node=*/0,
                               /*repair_after=*/50.0);
  engine.run();

  const AccountingStore::Totals t = rm.accounting().totals();
  EXPECT_EQ(t.jobs, 4u);
  EXPECT_EQ(t.completed, 4u);
  EXPECT_EQ(t.requeues, 1u);

  // Exactly one victim: it lost 4 nodes x 100 s, then had to wait for the
  // repair (free nodes: 3 of its own 4 until the crashed one returns).
  const JobRecord* victim = nullptr;
  for (const JobRecord& r : rm.accounting().query({})) {
    if (r.requeues > 0) {
      ASSERT_EQ(victim, nullptr) << "more than one requeued job";
      victim = rm.accounting().find(r.id);
    }
  }
  ASSERT_NE(victim, nullptr);
  EXPECT_NEAR(victim->wasted_node_seconds, 400.0, 1e-9);
  EXPECT_EQ(ticks(victim->start), ticks(150.0));
  EXPECT_EQ(ticks(victim->finish), ticks(1150.0));
  EXPECT_EQ(rm.summary().requeues, 1u);
  EXPECT_EQ(rm.allocator().drained_count(), 0u);  // repaired
}

struct NodeEvent {
  ResourceManager* rm;
  fabric::NodeId node;

  static void fail_cb(void* ctx) {
    auto& e = *static_cast<NodeEvent*>(ctx);
    e.rm->node_failed(e.node);
  }
  static void repair_cb(void* ctx) {
    auto& e = *static_cast<NodeEvent*>(ctx);
    e.rm->node_repaired(e.node);
  }
};

TEST(FaultRequeueTest, DirectNodeFailedApiWithoutInjector) {
  des::Engine engine;
  ResourceManager rm(engine, 8, RmConfig::legacy_fcfs());
  JobSpec s;
  s.id = 1;
  s.submit = 0.0;
  s.runtime = 1000.0;
  s.estimate = 1000.0;
  s.width = 8;
  rm.submit(s);

  NodeEvent ev{&rm, 3};
  engine.schedule_raw_at(des::from_seconds(100.0), &NodeEvent::fail_cb, &ev);
  engine.schedule_raw_at(des::from_seconds(200.0), &NodeEvent::repair_cb,
                         &ev);
  engine.run();

  const JobRecord* rec = rm.accounting().find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, JobState::kCompleted);
  EXPECT_EQ(rec->requeues, 1u);
  EXPECT_NEAR(rec->wasted_node_seconds, 800.0, 1e-9);  // 8 nodes x 100 s
  EXPECT_EQ(ticks(rec->start), ticks(200.0));  // needs all 8 nodes back
  EXPECT_EQ(ticks(rec->finish), ticks(1200.0));
  EXPECT_EQ(rm.allocator().drained_count(), 0u);
}

TEST(FaultRequeueTest, PermanentCrashDrainsNodeForGood) {
  des::Engine engine;
  fabric::Torus2D topo(4, 4);
  fabric::SimNetwork net(engine, fabric::fabrics::myrinet2000(), topo);
  fault::Injector injector(engine, net);
  RmConfig cfg;
  cfg.backfill = false;
  ResourceManager rm(engine, topo, cfg);
  rm.attach_injector(injector);

  JobSpec s;
  s.id = 1;
  s.submit = 0.0;
  s.runtime = 500.0;
  s.estimate = 500.0;
  s.width = 8;  // half the machine: a replacement block exists
  rm.submit(s);
  injector.schedule_node_crash(/*at=*/100.0, /*node=*/0,
                               /*repair_after=*/0.0);  // permanent
  engine.run();

  const JobRecord* rec = rm.accounting().find(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->state, JobState::kCompleted);
  EXPECT_EQ(rec->requeues, 1u);
  // Replacement allocation happens immediately on the surviving nodes.
  EXPECT_EQ(ticks(rec->start), ticks(100.0));
  EXPECT_EQ(ticks(rec->finish), ticks(600.0));
  EXPECT_EQ(rm.allocator().drained_count(), 1u);
  for (const fabric::NodeId nd : {fabric::NodeId{0}}) {
    EXPECT_TRUE(rm.allocator().drained(nd));
  }
}

struct RunResult {
  std::uint64_t fingerprint = 0;
  AccountingStore::Totals totals;
  std::uint64_t requeues = 0;
};

RunResult crashy_run(std::uint64_t seed) {
  des::Engine engine;
  fabric::Torus2D topo(4, 4);
  fabric::SimNetwork net(engine, fabric::fabrics::myrinet2000(), topo);
  fault::Injector injector(engine, net);

  RmConfig cfg;
  cfg.backfill = true;
  cfg.backfill_interval = 15.0;
  ResourceManager rm(engine, topo, cfg);
  rm.attach_injector(injector);

  workload::MultiUserTraceConfig tc;
  tc.jobs = 120;
  tc.users = 4;
  tc.accounts = 2;
  tc.mean_interarrival = 200.0;
  tc.max_width_exp = 3;  // widths <= 8 on 16 nodes
  tc.min_runtime = 100.0;
  tc.max_runtime = 2000.0;
  for (const JobSpec& s : workload::make_multi_user_trace(tc, seed)) {
    rm.submit(s);
  }
  // Repeated crashes sweeping across the machine, each repaired later so
  // the widest jobs can always eventually run.
  for (int i = 0; i < 6; ++i) {
    injector.schedule_node_crash(500.0 + 2500.0 * i,
                                 static_cast<std::uint32_t>((i * 5) % 16),
                                 /*repair_after=*/250.0);
  }
  engine.run();

  RunResult out;
  out.fingerprint = rm.accounting().fingerprint();
  out.totals = rm.accounting().totals();
  out.requeues = rm.summary().requeues;
  return out;
}

TEST(FaultRequeueTest, SameSeedRunsProduceIdenticalLedgers) {
  const RunResult a = crashy_run(2002);
  const RunResult b = crashy_run(2002);
  EXPECT_EQ(a.totals.jobs, 120u);
  EXPECT_EQ(a.totals.completed, 120u);  // every requeued job finishes
  EXPECT_GE(a.requeues, 1u);            // the crashes did land on work
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.totals.requeues, b.totals.requeues);
  EXPECT_EQ(a.totals.wasted_node_seconds, b.totals.wasted_node_seconds);

  const RunResult c = crashy_run(2003);
  EXPECT_NE(a.fingerprint, c.fingerprint);  // different seed, different run
}

}  // namespace
}  // namespace polaris::rm
