#include "polaris/hw/cluster.hpp"

#include <cmath>

#include "polaris/support/check.hpp"

namespace polaris::hw {

double ClusterModel::peak_flops() const {
  return node.peak_flops * static_cast<double>(node_count);
}

double ClusterModel::memory_bytes() const {
  return node.mem_bytes * static_cast<double>(node_count);
}

double ClusterModel::cost_usd() const {
  const auto n = static_cast<double>(node_count);
  return n * (node.cost_usd + interconnect.cost_per_port_usd);
}

double ClusterModel::power_w() const {
  const auto n = static_cast<double>(node_count);
  return n * (node.power_w + interconnect.power_per_port_w);
}

double ClusterModel::racks() const {
  return std::ceil(static_cast<double>(node_count) / node.nodes_per_rack());
}

double ClusterModel::floor_area_m2() const { return racks() * 1.5; }

double ClusterModel::gflops_per_rack() const {
  if (node_count == 0) return 0.0;
  return peak_flops() / racks() / 1e9;
}

double ClusterModel::mflops_per_watt() const {
  return peak_flops() / power_w() / 1e6;
}

double ClusterModel::flops_per_dollar() const {
  return peak_flops() / cost_usd();
}

double ClusterModel::tco_usd(double years, double usd_per_kwh,
                             double pue) const {
  POLARIS_CHECK(years >= 0 && usd_per_kwh >= 0 && pue >= 1.0);
  const double kwh = power_w() / 1000.0 * 24.0 * 365.25 * years * pue;
  return cost_usd() + kwh * usd_per_kwh;
}

ClusterModel ClusterDesigner::fixed_size(NodeArch arch, double year,
                                         std::size_t node_count) const {
  POLARIS_CHECK(node_count > 0);
  ClusterModel c;
  c.node = nodes_.design(arch, year);
  c.node_count = node_count;
  c.interconnect = interconnect_;
  c.disk_bytes = nodes_.technology().at(year).disk_bytes_per_node *
                 static_cast<double>(node_count);
  return c;
}

ClusterModel ClusterDesigner::fixed_budget(NodeArch arch, double year,
                                           double budget_usd) const {
  POLARIS_CHECK(budget_usd > 0);
  NodeModel n = nodes_.design(arch, year);
  const double per_node = n.cost_usd + interconnect_.cost_per_port_usd;
  const auto count = static_cast<std::size_t>(budget_usd / per_node);
  POLARIS_CHECK_MSG(count > 0, "budget buys no nodes at this year");
  return fixed_size(arch, year, count);
}

}  // namespace polaris::hw
