// Node architecture models.
//
// The talk names the node-level "revolutionary structures" expected to
// redefine commodity clusters: blade packaging, SMP/system-on-a-chip (chip
// multiprocessors), and processor-in-memory.  Each archetype here is a
// multiplicative transform of the baseline commodity TechPoint — peak
// flops, memory bandwidth, power, cost, and packaging density — plus a
// roofline evaluator so archetypes can be compared on compute-bound vs
// memory-bound kernels.
#pragma once

#include <string>
#include <vector>

#include "polaris/hw/tech.hpp"

namespace polaris::hw {

enum class NodeArch {
  kConventional,  ///< 1U dual-socket "pizza box" Beowulf node
  kBlade,         ///< dense blade: lower-power parts, shared chassis
  kCmpSoc,        ///< SMP-on-a-chip: chip multiprocessor node
  kPim,           ///< processor-in-memory: logic on the DRAM die
};

const char* to_string(NodeArch arch);
std::vector<NodeArch> all_node_archs();

/// A concrete node design at a given technology year.
struct NodeModel {
  NodeArch arch = NodeArch::kConventional;
  double year = 2002.0;
  double peak_flops = 0.0;
  double mem_bytes = 0.0;
  double mem_bw = 0.0;       ///< B/s
  double cost_usd = 0.0;
  double power_w = 0.0;
  double rack_units = 1.0;   ///< fraction of a 42U rack slot occupied

  /// Roofline-attainable flop rate for a kernel with the given arithmetic
  /// intensity (flops per byte of DRAM traffic).
  double attained_flops(double arithmetic_intensity) const;

  /// Time to execute `flops` of work moving `bytes` through memory,
  /// overlap assumed (max, not sum) as in the roofline model.
  double kernel_time(double flops, double bytes) const;

  /// Arithmetic intensity at which the node transitions from memory-bound
  /// to compute-bound (the roofline ridge point).
  double ridge_point() const { return peak_flops / mem_bw; }

  double flops_per_watt() const { return peak_flops / power_w; }
  double flops_per_dollar() const { return peak_flops / cost_usd; }
  double nodes_per_rack() const { return 42.0 / rack_units; }
};

/// Builds a node design of the given archetype from the commodity baseline
/// at `year`.
///
/// Archetype transforms (relative to the conventional node of that year):
///   blade:  0.75x peak (low-power parts), 0.9x mem BW, 0.55x power,
///           0.85x cost, 1/3 rack units (14 blades per 7U chassis->~0.5U,
///           modelled as 0.33U including chassis overhead)
///   cmp:    cores-on-die scaling adds a second Moore term: peak x2 at
///           2002 growing 1.25x/yr further; shared on-die interconnect
///           gives 1.5x mem BW; 1.2x power; 1.3x cost; 1U
///   pim:    logic in DRAM: 8x mem BW at 2002 growing 1.15x/yr further,
///           0.4x peak, 0.5x power, 1.2x cost (low-volume part), 1U
class NodeDesigner {
 public:
  explicit NodeDesigner(TechnologyModel tech = TechnologyModel())
      : tech_(std::move(tech)) {}

  NodeModel design(NodeArch arch, double year) const;
  const TechnologyModel& technology() const { return tech_; }

 private:
  TechnologyModel tech_;
};

}  // namespace polaris::hw
