// Device-technology projection model.
//
// Encodes the 2002-era roadmap exponentials the talk builds its
// "performance, capacity, power, size, and cost curves" from: Moore-law
// transistor growth feeding per-socket flops, DRAM density quadrupling
// roughly every three years, memory bandwidth lagging compute (the memory
// wall), near-flat commodity node pricing, and slowly rising per-node power
// (the coming power wall).  All curves are smooth exponentials anchored at
// calendar year 2002 — exactly the kind of projection a 2002 plenary would
// plot.
#pragma once

namespace polaris::hw {

/// Per-node commodity technology snapshot at some calendar year.
struct TechPoint {
  double year = 2002.0;
  double flops_per_node = 0.0;      ///< peak double-precision flop/s
  double mem_bytes_per_node = 0.0;  ///< DRAM capacity
  double mem_bw_per_node = 0.0;     ///< sustainable memory bandwidth, B/s
  double disk_bytes_per_node = 0.0;
  double node_cost_usd = 0.0;       ///< node incl. chassis share
  double node_power_w = 0.0;
  double nic_bw_bytes = 0.0;        ///< commodity NIC bandwidth, B/s
  double nic_latency_s = 0.0;       ///< end-to-end small-message latency
};

/// Annual growth multipliers for each technology curve.
struct GrowthRates {
  double flops = 1.59;     ///< doubling every ~18 months (Moore)
  double mem_cap = 1.50;   ///< DRAM ~4x per 3 years, slightly derated
  double mem_bw = 1.26;    ///< doubling every ~3 years (memory wall)
  double disk = 1.60;      ///< areal density boom of the era
  double cost = 1.00;      ///< commodity node price roughly flat
  double power = 1.08;     ///< creeping clock/thermal growth
  double nic_bw = 1.45;    ///< Ethernet/IB generation cadence
  double nic_lat = 0.80;   ///< latency shrinking ~20%/year
};

/// Projects commodity-node technology from a 2002 anchor point.
///
/// The default anchor is a Beowulf-class dual-socket IA-32 node of mid-2002:
/// 2x 2.4 GHz Xeon with SSE2 (2 flops/clock/socket), 1 GiB DDR, ~1.6 GB/s
/// streaming memory bandwidth, 80 GB IDE disk, ~$2,500, ~250 W, with a
/// Fast/GigE-class commodity NIC.
class TechnologyModel {
 public:
  TechnologyModel();
  TechnologyModel(TechPoint anchor, GrowthRates rates);

  /// Technology point at a calendar year (fractional years interpolate on
  /// the exponential).  Valid for year >= anchor year.
  TechPoint at(double year) const;

  const TechPoint& anchor() const { return anchor_; }
  const GrowthRates& rates() const { return rates_; }

  /// First calendar year (to 0.1y resolution) at which a cluster of
  /// `budget_usd` reaches `target_flops` peak, assuming the whole budget
  /// buys nodes at that year's price.  Returns a year > horizon as "never
  /// within horizon".
  double year_reaching(double target_flops, double budget_usd,
                       double horizon_year = 2015.0) const;

  /// Bytes-per-flop ratio at a year: the canonical memory-wall indicator.
  double bytes_per_flop(double year) const;

 private:
  TechPoint anchor_;
  GrowthRates rates_;
};

}  // namespace polaris::hw
