// Cluster composition: nodes + racks + interconnect => the system-level
// performance / capacity / power / size / cost figures of merit the talk
// projects.
#pragma once

#include <cstddef>

#include "polaris/hw/node.hpp"

namespace polaris::hw {

/// Per-port interconnect cost/power model (switch share + NIC + cable).
struct InterconnectCost {
  double cost_per_port_usd = 150.0;  ///< GigE-class commodity default
  double power_per_port_w = 10.0;
};

/// A fully composed cluster design and its figures of merit.
struct ClusterModel {
  NodeModel node;
  std::size_t node_count = 0;
  InterconnectCost interconnect;

  double peak_flops() const;
  double memory_bytes() const;
  double disk_bytes = 0.0;  ///< filled by the designer
  double cost_usd() const;
  double power_w() const;
  double racks() const;           ///< 42U racks occupied (nodes only)
  double floor_area_m2() const;   ///< ~1.5 m^2 per rack incl. service aisle
  double gflops_per_rack() const;
  double mflops_per_watt() const;
  double flops_per_dollar() const;

  /// Total cost of ownership over `years`: purchase price plus energy at
  /// `usd_per_kwh` (cooling folded in via `pue`, the power usage
  /// effectiveness of the machine room).
  double tco_usd(double years, double usd_per_kwh = 0.08,
                 double pue = 1.8) const;
};

/// Composes cluster designs from node models, by node count or by budget.
class ClusterDesigner {
 public:
  explicit ClusterDesigner(NodeDesigner nodes = NodeDesigner(),
                           InterconnectCost interconnect = {})
      : nodes_(std::move(nodes)), interconnect_(interconnect) {}

  /// A cluster of exactly `node_count` nodes of `arch` at `year`.
  ClusterModel fixed_size(NodeArch arch, double year,
                          std::size_t node_count) const;

  /// The largest cluster of `arch` nodes purchasable for `budget_usd` at
  /// `year` (interconnect ports included in the budget).
  ClusterModel fixed_budget(NodeArch arch, double year,
                            double budget_usd) const;

  const NodeDesigner& nodes() const { return nodes_; }

 private:
  NodeDesigner nodes_;
  InterconnectCost interconnect_;
};

}  // namespace polaris::hw
