#include "polaris/hw/node.hpp"

#include <algorithm>
#include <cmath>

#include "polaris/support/check.hpp"

namespace polaris::hw {

const char* to_string(NodeArch arch) {
  switch (arch) {
    case NodeArch::kConventional:
      return "conventional";
    case NodeArch::kBlade:
      return "blade";
    case NodeArch::kCmpSoc:
      return "cmp-soc";
    case NodeArch::kPim:
      return "pim";
  }
  return "?";
}

std::vector<NodeArch> all_node_archs() {
  return {NodeArch::kConventional, NodeArch::kBlade, NodeArch::kCmpSoc,
          NodeArch::kPim};
}

double NodeModel::attained_flops(double arithmetic_intensity) const {
  POLARIS_CHECK(arithmetic_intensity > 0);
  return std::min(peak_flops, arithmetic_intensity * mem_bw);
}

double NodeModel::kernel_time(double flops, double bytes) const {
  POLARIS_CHECK(flops >= 0 && bytes >= 0);
  const double compute = flops / peak_flops;
  const double memory = bytes / mem_bw;
  return std::max(compute, memory);
}

NodeModel NodeDesigner::design(NodeArch arch, double year) const {
  const TechPoint base = tech_.at(year);
  const double dy = year - tech_.anchor().year;

  NodeModel n;
  n.arch = arch;
  n.year = year;
  n.peak_flops = base.flops_per_node;
  n.mem_bytes = base.mem_bytes_per_node;
  n.mem_bw = base.mem_bw_per_node;
  n.cost_usd = base.node_cost_usd;
  n.power_w = base.node_power_w;
  n.rack_units = 1.0;

  switch (arch) {
    case NodeArch::kConventional:
      break;
    case NodeArch::kBlade:
      n.peak_flops *= 0.75;
      n.mem_bw *= 0.9;
      n.power_w *= 0.55;
      n.cost_usd *= 0.85;
      n.rack_units = 1.0 / 3.0;
      break;
    case NodeArch::kCmpSoc:
      // Chip multiprocessing adds a second exponential on top of the
      // per-core Moore term: more cores per die each generation.
      n.peak_flops *= 2.0 * std::pow(1.25, dy);
      n.mem_bw *= 1.5;
      n.power_w *= 1.2;
      n.cost_usd *= 1.3;
      break;
    case NodeArch::kPim:
      // Logic on the DRAM die: bandwidth is the point.
      n.mem_bw *= 8.0 * std::pow(1.15, dy);
      n.peak_flops *= 0.4;
      n.power_w *= 0.5;
      n.cost_usd *= 1.2;
      break;
  }
  return n;
}

}  // namespace polaris::hw
