#include "polaris/hw/tech.hpp"

#include <cmath>

#include "polaris/support/check.hpp"
#include "polaris/support/units.hpp"

namespace polaris::hw {

namespace {

/// Mid-2002 Beowulf-class dual-Xeon node (see class comment).
TechPoint default_anchor() {
  TechPoint p;
  p.year = 2002.0;
  p.flops_per_node = 9.6e9;           // 2 sockets x 2.4 GHz x 2 flops
  p.mem_bytes_per_node = 1.0 * 1024.0 * 1024.0 * 1024.0;  // 1 GiB DDR
  p.mem_bw_per_node = 1.6e9;          // STREAM-class DDR-266
  p.disk_bytes_per_node = 80e9;       // 80 GB IDE
  p.node_cost_usd = 2500.0;
  p.node_power_w = 250.0;
  p.nic_bw_bytes = 125e6;             // GigE wire rate / 8
  p.nic_latency_s = 60e-6;            // kernel TCP small-message latency
  return p;
}

}  // namespace

TechnologyModel::TechnologyModel()
    : TechnologyModel(default_anchor(), GrowthRates{}) {}

TechnologyModel::TechnologyModel(TechPoint anchor, GrowthRates rates)
    : anchor_(anchor), rates_(rates) {
  POLARIS_CHECK(anchor_.flops_per_node > 0 && anchor_.node_cost_usd > 0);
  POLARIS_CHECK(rates_.flops > 0 && rates_.nic_lat > 0);
}

TechPoint TechnologyModel::at(double year) const {
  POLARIS_CHECK_MSG(year >= anchor_.year,
                    "projection model is forward-only from its anchor");
  const double dy = year - anchor_.year;
  auto grow = [dy](double base, double rate) {
    return base * std::pow(rate, dy);
  };
  TechPoint p;
  p.year = year;
  p.flops_per_node = grow(anchor_.flops_per_node, rates_.flops);
  p.mem_bytes_per_node = grow(anchor_.mem_bytes_per_node, rates_.mem_cap);
  p.mem_bw_per_node = grow(anchor_.mem_bw_per_node, rates_.mem_bw);
  p.disk_bytes_per_node = grow(anchor_.disk_bytes_per_node, rates_.disk);
  p.node_cost_usd = grow(anchor_.node_cost_usd, rates_.cost);
  p.node_power_w = grow(anchor_.node_power_w, rates_.power);
  p.nic_bw_bytes = grow(anchor_.nic_bw_bytes, rates_.nic_bw);
  p.nic_latency_s = grow(anchor_.nic_latency_s, rates_.nic_lat);
  return p;
}

double TechnologyModel::year_reaching(double target_flops, double budget_usd,
                                      double horizon_year) const {
  POLARIS_CHECK(target_flops > 0 && budget_usd > 0);
  for (double y = anchor_.year; y <= horizon_year; y += 0.1) {
    const TechPoint p = at(y);
    const double nodes = budget_usd / p.node_cost_usd;
    if (nodes * p.flops_per_node >= target_flops) return y;
  }
  return horizon_year + 1.0;
}

double TechnologyModel::bytes_per_flop(double year) const {
  const TechPoint p = at(year);
  return p.mem_bw_per_node / p.flops_per_node;
}

}  // namespace polaris::hw
