#include "polaris/des/engine.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <utility>

#include "polaris/des/task.hpp"
#include "polaris/support/check.hpp"

namespace polaris::des {

Engine::Engine() : buckets_(kWheelSpan) {}

// ----------------------------------------------------------- 4-ary heap
//
// Far-future overflow queue.  A 4-ary implicit heap halves tree depth vs
// binary, and both sifts move a hole instead of swapping (one store per
// level, not three) — the same strategy std::push_heap/pop_heap use.

void Engine::heap_push(HeapEntry e) {
  std::size_t i = heap_.size();
  heap_.push_back(e);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void Engine::heap_pop_top() {
  const HeapEntry item = heap_.back();
  heap_.pop_back();
  if (heap_.empty()) return;
  const std::size_t n = heap_.size();
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], item)) break;
    heap_[hole] = heap_[best];
    hole = best;
  }
  heap_[hole] = item;
}

// ----------------------------------------------------------- timer wheel
//
// The occupancy bitmap has one bit per bucket and a summary bit per 64
// buckets, so finding the next occupied bucket is two masked
// count-trailing-zeros probes regardless of how sparse the wheel is.

void Engine::set_bucket_bit(std::size_t b) {
  bitmap_[b >> 6] |= std::uint64_t{1} << (b & 63);
  summary_[b >> 12] |= std::uint64_t{1} << ((b >> 6) & 63);
}

void Engine::clear_bucket_bit(std::size_t b) {
  const std::size_t w = b >> 6;
  if ((bitmap_[w] &= ~(std::uint64_t{1} << (b & 63))) == 0) {
    summary_[b >> 12] &= ~(std::uint64_t{1} << (w & 63));
  }
}

std::size_t Engine::next_bucket(std::size_t from) const {
  constexpr std::uint64_t kAll = ~std::uint64_t{0};
  const std::size_t w = from >> 6;
  if (const std::uint64_t word = bitmap_[w] & (kAll << (from & 63))) {
    return (w << 6) | static_cast<std::size_t>(std::countr_zero(word));
  }
  // Walk the summary from the following word, wrapping; revisiting the
  // start word unmasked is the wrap-around case and is intentional.
  std::size_t sw = (w + 1) & (kWheelWords - 1);
  std::size_t si = sw >> 6;
  std::uint64_t s = summary_[si] & (kAll << (sw & 63));
  for (std::size_t round = 0; round <= kSummaryWords; ++round) {
    if (s != 0) {
      const std::size_t word_idx =
          (si << 6) | static_cast<std::size_t>(std::countr_zero(s));
      return (word_idx << 6) |
             static_cast<std::size_t>(std::countr_zero(bitmap_[word_idx]));
    }
    si = (si + 1) % kSummaryWords;
    s = summary_[si];
  }
  POLARIS_CHECK_MSG(false, "next_bucket on an empty wheel");
  return 0;
}

void Engine::unlink_bucket_head(std::size_t b) {
  Bucket& bk = buckets_[b];
  const std::uint32_t next = pool_[bk.head].next;
  bk.head = next;
  if (next == kNilSlot) {
    bk.tail = kNilSlot;
    clear_bucket_bit(b);
  }
  --wheel_count_;
}

// ----------------------------------------------------------- node pool

std::uint32_t Engine::acquire_node() {
  if (!free_.empty()) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const auto slot = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back();
  return slot;
}

void Engine::release_node(std::uint32_t slot) {
  EventNode& n = pool_[slot];
  n.cb = Callback();  // drop captured state (coroutine handles, owners) now
  n.cancelled = false;
  ++n.gen;  // invalidates every outstanding EventId for this slot
  free_.push_back(slot);
}

void Engine::reap_cancelled_top() {
  while (!heap_.empty() && pool_[heap_[0].slot].cancelled) {
    const std::uint32_t slot = heap_[0].slot;
    heap_pop_top();
    release_node(slot);
    ++stats_.cancelled_skipped;
  }
}

// ----------------------------------------------------------- scheduling

EventId Engine::schedule_at(SimTime t, Callback&& cb) {
  POLARIS_CHECK_MSG(t >= now_, "cannot schedule into the simulated past");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_node();
  EventNode& n = pool_[slot];
  n.t = t;
  n.seq = seq;
  n.cb = std::move(cb);
  if (n.cb.heap_allocated()) ++stats_.sbo_misses;
  if (static_cast<std::uint64_t>(t - now_) < kWheelSpan) {
    const std::size_t b = static_cast<std::size_t>(t) & kWheelMask;
    Bucket& bk = buckets_[b];
    n.next = kNilSlot;
    if (bk.head == kNilSlot) {
      bk.head = bk.tail = slot;
      set_bucket_bit(b);
    } else {
      pool_[bk.tail].next = slot;
      bk.tail = slot;
    }
    ++wheel_count_;
  } else {
    heap_push(HeapEntry{t, seq, slot});
  }
  ++stats_.scheduled;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_depth());
  stats_.max_pool_in_use =
      std::max(stats_.max_pool_in_use, pool_.size() - free_.size());
  return EventId{slot, n.gen};
}

EventId Engine::schedule_raw_at(SimTime t, RawCallback fn, void* ctx) {
  // A 16-byte trivially-copyable capture: always inline in the
  // UniqueFunction (no manage function, memcpy moves), so raw scheduling
  // is exactly as cheap as the coroutine-resume fast path.
  struct RawThunk {
    RawCallback fn;
    void* ctx;
    void operator()() const { fn(ctx); }
  };
  return schedule_at(t, RawThunk{fn, ctx});
}

bool Engine::step() { return step_bounded(std::numeric_limits<SimTime>::max()); }

bool Engine::step_bounded(SimTime until) {
  if (stopped_) return false;
  // Wheel candidate: reap tombstoned bucket heads lazily until a live
  // event (or nothing) fronts the wheel.
  std::uint32_t wheel_slot = kNilSlot;
  std::size_t wheel_bucket = 0;
  while (wheel_count_ != 0) {
    const std::size_t b =
        next_bucket(static_cast<std::size_t>(now_) & kWheelMask);
    const std::uint32_t head = buckets_[b].head;
    if (pool_[head].cancelled) {
      unlink_bucket_head(b);
      release_node(head);
      ++stats_.cancelled_skipped;
      continue;
    }
    wheel_slot = head;
    wheel_bucket = b;
    break;
  }
  // Heap candidate, then merge: heap times drift into the wheel window as
  // now() advances, so ties on time break on sequence number.
  reap_cancelled_top();
  std::uint32_t slot;
  bool from_wheel;
  if (wheel_slot != kNilSlot && !heap_.empty()) {
    const EventNode& wn = pool_[wheel_slot];
    const HeapEntry& h = heap_[0];
    from_wheel = (wn.t != h.t) ? wn.t < h.t : wn.seq < h.seq;
    slot = from_wheel ? wheel_slot : h.slot;
  } else if (wheel_slot != kNilSlot) {
    from_wheel = true;
    slot = wheel_slot;
  } else if (!heap_.empty()) {
    from_wheel = false;
    slot = heap_[0].slot;
  } else {
    return false;
  }
  EventNode& n = pool_[slot];
  if (n.t > until) return false;
  if (from_wheel) {
    unlink_bucket_head(wheel_bucket);
  } else {
    heap_pop_top();
  }
  now_ = n.t;
  // Release the node before invoking: the callback may schedule (reusing
  // this slot) and a later cancel of this fired event must see a bumped
  // generation.
  Callback cb = std::move(n.cb);
  release_node(slot);
  ++executed_;
  cb();
  return true;
}

SimTime Engine::next_event_time() const {
  SimTime best = kNoEventTime;
  if (wheel_count_ != 0) {
    // Wheel buckets are one tick wide and hold only times in
    // [now, now + span), so the first occupied bucket at/after now's
    // position (wrapping) fronts the earliest wheel event.
    const std::size_t b =
        next_bucket(static_cast<std::size_t>(now_) & kWheelMask);
    best = pool_[buckets_[b].head].t;
  }
  if (!heap_.empty() && heap_[0].t < best) best = heap_[0].t;
  return best;
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (step()) ++n;
  maybe_rethrow();
  return n;
}

std::size_t Engine::run_until(SimTime until) {
  POLARIS_CHECK(until >= now_);
  stopped_ = false;
  std::size_t n = 0;
  // step_bounded reaps tombstones before the boundary test, so the bound
  // applies to the next *live* event, not a cancelled placeholder.
  while (step_bounded(until)) ++n;
  if (now_ < until) now_ = until;
  maybe_rethrow();
  return n;
}

void Engine::maybe_rethrow() {
  if (error_) {
    auto e = std::move(error_);
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

namespace {

/// Root coroutine that drives a detached Task and reports its outcome to
/// the engine.  The frame self-destroys on completion (final_suspend never
/// suspends), which is safe because nothing awaits a DetachedProcess.
struct DetachedProcess {
  struct promise_type {
    DetachedProcess get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // drive() catches all
  };
};

DetachedProcess drive(Engine& engine, Task<void> task) {
  engine.note_process_started();
  try {
    co_await std::move(task);
  } catch (...) {
    engine.report_error(std::current_exception());
  }
  engine.note_process_finished();
}

}  // namespace

void Engine::spawn(Task<void> task) {
  // Start the root on a zero-delay event so spawn() itself never reenters
  // user code; all execution happens inside run().
  schedule_after(0, [this, t = std::move(task)]() mutable {
    drive(*this, std::move(t));
  });
}

}  // namespace polaris::des
