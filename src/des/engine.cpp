#include "polaris/des/engine.hpp"

#include <algorithm>

#include "polaris/des/task.hpp"
#include "polaris/support/check.hpp"

namespace polaris::des {

EventId Engine::schedule_at(SimTime t, Callback cb) {
  POLARIS_CHECK_MSG(t >= now_, "cannot schedule into the simulated past");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Event{t, seq, std::move(cb)});
  ++stats_.scheduled;
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, queue_.size());
  return EventId{seq};
}

bool Engine::step() {
  while (!queue_.empty()) {
    if (stopped_) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.seq); it != cancelled_.end()) {
      cancelled_.erase(it);
      ++stats_.cancelled_skipped;
      continue;
    }
    now_ = ev.t;
    ++executed_;
    ev.cb();
    return true;
  }
  return false;
}

std::size_t Engine::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (step()) ++n;
  maybe_rethrow();
  return n;
}

std::size_t Engine::run_until(SimTime until) {
  POLARIS_CHECK(until >= now_);
  stopped_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopped_) {
    if (queue_.top().t > until) break;
    if (!step()) break;
    ++n;
  }
  if (now_ < until) now_ = until;
  maybe_rethrow();
  return n;
}

void Engine::maybe_rethrow() {
  if (error_) {
    auto e = std::move(error_);
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

namespace {

/// Root coroutine that drives a detached Task and reports its outcome to
/// the engine.  The frame self-destroys on completion (final_suspend never
/// suspends), which is safe because nothing awaits a DetachedProcess.
struct DetachedProcess {
  struct promise_type {
    DetachedProcess get_return_object() { return {}; }
    std::suspend_never initial_suspend() noexcept { return {}; }
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { std::terminate(); }  // drive() catches all
  };
};

DetachedProcess drive(Engine& engine, Task<void> task) {
  engine.note_process_started();
  try {
    co_await std::move(task);
  } catch (...) {
    engine.report_error(std::current_exception());
  }
  engine.note_process_finished();
}

}  // namespace

void Engine::spawn(Task<void> task) {
  // Start the root on a zero-delay event so spawn() itself never reenters
  // user code; all execution happens inside run().
  schedule_after(0, [this, t = std::move(task)]() mutable {
    drive(*this, std::move(t));
  });
}

}  // namespace polaris::des
