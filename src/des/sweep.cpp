#include "polaris/des/sweep.hpp"

#include <cstdlib>

#include "polaris/support/rng.hpp"
#include "polaris/support/thread_budget.hpp"

namespace polaris::des {

std::uint64_t sweep_seed(std::uint64_t base_seed, std::size_t point) {
  // Golden-ratio stride keeps adjacent points far apart in SplitMix64's
  // state space; the mixer output seeds each point's xoshiro expansion.
  support::SplitMix64 sm(base_seed ^
                         (0x9e3779b97f4a7c15ULL * (point + 1)));
  return sm.next();
}

std::size_t SweepRunner::default_threads() {
  if (const char* env = std::getenv("POLARIS_SWEEP_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return support::WorkerBudget::instance().total();
}

}  // namespace polaris::des
