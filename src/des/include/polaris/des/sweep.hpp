// Parallel driver for sweeps of *independent* simulations.
//
// Every quantitative experiment in bench/ is a sweep: one Engine (usually
// inside a simrt::SimWorld) per (fabric, node count, message size, policy)
// point, with no shared state between points.  SweepRunner farms those
// points across a thread pool and collects results in point order, so a
// sweep's output is byte-identical no matter how many threads ran it —
// parallelism changes wall-clock time only.
//
// Determinism contract: the point function must derive all randomness from
// its point index (use sweep_seed()) and must not touch shared mutable
// state.  Engines are strictly single-threaded; the runner never shares an
// Engine between threads, it runs whole independent engines concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "polaris/support/check.hpp"
#include "polaris/support/thread_budget.hpp"

namespace polaris::des {

/// Deterministic per-point RNG seed: mixes the sweep's base seed with the
/// point index so sibling points get uncorrelated streams and re-running
/// point i alone reproduces the full sweep's point i exactly.
std::uint64_t sweep_seed(std::uint64_t base_seed, std::size_t point);

class SweepRunner {
 public:
  /// `threads` = 0 picks default_threads() and marks the runner *budgeted*:
  /// each run() leases its workers from support::WorkerBudget, so a sweep
  /// whose points internally go parallel (pdes shards) composes to the
  /// POLARIS_SIM_THREADS total instead of multiplying.  An explicit
  /// `threads` >= 1 is honored exactly (1 = inline, no pool).
  explicit SweepRunner(std::size_t threads = 0)
      : threads_(threads != 0 ? threads : default_threads()),
        budgeted_(threads == 0) {}

  /// POLARIS_SWEEP_THREADS when set (>= 1) — how CI and reproducibility
  /// checks force serial runs — else the shared WorkerBudget total
  /// (POLARIS_SIM_THREADS, default hardware concurrency).
  static std::size_t default_threads();

  std::size_t threads() const { return threads_; }

  /// Runs fn(i) for every i in [0, n) and returns the results ordered by
  /// point index.  fn must be safe to invoke concurrently from multiple
  /// threads (it is called at most once per i).  The first exception a
  /// point throws aborts the remaining unstarted points and is rethrown.
  template <typename Fn>
  auto run(std::size_t n, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t>> {
    using R = std::invoke_result_t<Fn&, std::size_t>;
    static_assert(!std::is_void_v<R>,
                  "sweep points must return their result by value");
    std::vector<std::optional<R>> slots(n);
    const std::size_t want = std::min(threads_, n);
    auto& budget = support::WorkerBudget::instance();
    // Budgeted runners take what the ledger can spare (a drained ledger
    // degrades them to inline); explicit thread counts charge it but run
    // at the requested width regardless.
    support::WorkerBudget::Lease lease =
        budgeted_ ? budget.acquire(want) : budget.acquire_exact(want);
    const std::size_t workers = lease.workers();
    if (workers <= 1) {
      for (std::size_t i = 0; i < n; ++i) slots[i].emplace(fn(i));
    } else {
      std::atomic<std::size_t> next{0};
      std::atomic<bool> abort{false};
      std::mutex error_mu;
      std::exception_ptr error;
      auto body = [&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= n || abort.load(std::memory_order_relaxed)) return;
          try {
            slots[i].emplace(fn(i));
          } catch (...) {
            {
              const std::lock_guard<std::mutex> lock(error_mu);
              if (!error) error = std::current_exception();
            }
            abort.store(true, std::memory_order_relaxed);
            return;
          }
        }
      };
      // The calling thread is one of the lease's workers: spawn one fewer
      // thread and work the queue itself.
      std::vector<std::thread> pool;
      pool.reserve(workers - 1);
      for (std::size_t w = 0; w + 1 < workers; ++w) pool.emplace_back(body);
      body();
      for (auto& t : pool) t.join();
      if (error) std::rethrow_exception(error);
    }
    std::vector<R> out;
    out.reserve(n);
    for (auto& s : slots) {
      POLARIS_CHECK_MSG(s.has_value(), "sweep point skipped after abort");
      out.push_back(std::move(*s));
    }
    return out;
  }

  /// Convenience: one point per item.  fn receives (item, index).
  template <typename Item, typename Fn>
  auto map(const std::vector<Item>& items, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, const Item&, std::size_t>> {
    return run(items.size(),
               [&](std::size_t i) { return fn(items[i], i); });
  }

 private:
  std::size_t threads_;
  bool budgeted_ = true;
};

}  // namespace polaris::des
