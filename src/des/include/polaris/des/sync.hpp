// Coroutine synchronization primitives for simulated processes: one-shot
// triggers, value mailboxes, and counting semaphores (used for resource
// serialization, e.g. modelling link occupancy).
//
// All resumptions are funnelled through Engine::schedule_after(0, ...) so
// same-time wakeups execute in FIFO order, recursion depth stays bounded,
// and a primitive may be fired from inside another coroutine safely.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "polaris/des/engine.hpp"
#include "polaris/support/check.hpp"

namespace polaris::des {

/// One-shot event: coroutines await it; fire() releases all current and
/// future waiters.  Await-after-fire completes immediately.
class Trigger {
 public:
  explicit Trigger(Engine& engine) : engine_(&engine) {}
  Trigger(Trigger&&) = delete;  // waiters hold a pointer to this

  bool fired() const { return fired_; }

  /// Fires the trigger.  Idempotent.
  void fire() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) {
      engine_->schedule_after(0, [h] { h.resume(); });
    }
    waiters_.clear();
  }

  struct Awaiter {
    Trigger& trigger;
    bool await_ready() const noexcept { return trigger.fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      trigger.waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  Awaiter wait() { return Awaiter{*this}; }
  Awaiter operator co_await() { return Awaiter{*this}; }

 private:
  Engine* engine_;
  bool fired_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Intrusive single-waiter one-shot: the pooled counterpart of Trigger for
/// hot paths that embed completion state in slab records (e.g. the simrt
/// in-flight pool).  Two words, no engine pointer, never allocates, and
/// reset() rearms it for slab reuse.  fire() funnels the waiter through a
/// zero-delay event exactly as Trigger does (raw-callback form, which also
/// takes the engine's SBO fast path), so wakeup ordering is identical:
/// swapping one for the other cannot shift simulated timing.
class OneShotEvent {
 public:
  bool fired() const { return fired_; }

  /// Fires the event, waking the waiter (if any) on a zero-delay engine
  /// event.  Idempotent.
  void fire(Engine& engine) {
    if (fired_) return;
    fired_ = true;
    if (waiter_) {
      engine.schedule_raw_after(0, &resume_cb, waiter_.address());
      waiter_ = {};
    }
  }

  /// Rearms a fired event (callers guarantee no waiter is parked).
  void reset() {
    POLARIS_DCHECK(!waiter_);
    fired_ = false;
  }

  struct Awaiter {
    OneShotEvent& event;
    bool await_ready() const noexcept { return event.fired_; }
    void await_suspend(std::coroutine_handle<> h) {
      POLARIS_CHECK_MSG(!event.waiter_,
                        "OneShotEvent supports a single waiter");
      event.waiter_ = h;
    }
    void await_resume() const noexcept {}
  };

  Awaiter wait() { return Awaiter{*this}; }
  Awaiter operator co_await() { return Awaiter{*this}; }

 private:
  static void resume_cb(void* ctx) {
    std::coroutine_handle<>::from_address(ctx).resume();
  }

  bool fired_ = false;
  std::coroutine_handle<> waiter_{};
};

/// Unbounded FIFO channel of T.  Multiple producers and consumers; values
/// are delivered to consumers in arrival order.
template <typename T>
class Mailbox {
 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T> value;
  };

 public:
  explicit Mailbox(Engine& engine) : engine_(&engine) {}
  Mailbox(Mailbox&&) = delete;  // waiters hold a pointer to this

  /// Deposits a value; wakes the oldest waiting consumer, if any.
  void push(T value) {
    if (!consumers_.empty()) {
      Waiter* w = consumers_.front();
      consumers_.pop_front();
      w->value.emplace(std::move(value));
      auto h = w->handle;
      engine_->schedule_after(0, [h] { h.resume(); });
    } else {
      values_.push_back(std::move(value));
    }
  }

  std::size_t size() const { return values_.size(); }
  bool has_waiters() const { return !consumers_.empty(); }

  struct [[nodiscard]] GetAwaiter {
    Mailbox& mb;
    Waiter self{};

    bool await_ready() noexcept { return !mb.values_.empty(); }
    void await_suspend(std::coroutine_handle<> h) {
      self.handle = h;
      mb.consumers_.push_back(&self);
    }
    T await_resume() {
      if (self.value.has_value()) {
        return std::move(*self.value);
      }
      POLARIS_CHECK(!mb.values_.empty());
      T v = std::move(mb.values_.front());
      mb.values_.pop_front();
      return v;
    }
  };

  /// Awaits the next value:  `T v = co_await mb.get();`
  GetAwaiter get() { return GetAwaiter{*this}; }

  /// Non-blocking take.
  std::optional<T> try_get() {
    if (values_.empty()) return std::nullopt;
    T v = std::move(values_.front());
    values_.pop_front();
    return v;
  }

 private:
  friend struct GetAwaiter;

  Engine* engine_;
  std::deque<T> values_;
  std::deque<Waiter*> consumers_;
};

/// Counting semaphore with FIFO grant order; models contended resources
/// such as link occupancy, NIC DMA engines, or bounded service stations.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::int64_t initial)
      : engine_(&engine), count_(initial) {
    POLARIS_CHECK(initial >= 0);
  }
  Semaphore(Semaphore&&) = delete;  // waiters hold a pointer to this

  std::int64_t available() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

  struct [[nodiscard]] AcquireAwaiter {
    Semaphore& sem;
    std::int64_t n;
    std::coroutine_handle<> handle;

    bool await_ready() noexcept {
      if (sem.waiters_.empty() && sem.count_ >= n) {
        sem.count_ -= n;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      sem.waiters_.push_back(this);
    }
    void await_resume() const noexcept {}
  };

  /// Awaits until `n` units are available, then takes them.  Grants are
  /// strictly FIFO: a large request blocks later small ones (no starvation).
  AcquireAwaiter acquire(std::int64_t n = 1) {
    POLARIS_CHECK(n >= 0);
    return AcquireAwaiter{*this, n, {}};
  }

  /// Returns `n` units and wakes waiters whose requests now fit.
  void release(std::int64_t n = 1) {
    POLARIS_CHECK(n >= 0);
    count_ += n;
    grant();
  }

 private:
  friend struct AcquireAwaiter;

  void grant() {
    while (!waiters_.empty() && waiters_.front()->n <= count_) {
      AcquireAwaiter* w = waiters_.front();
      waiters_.pop_front();
      count_ -= w->n;
      auto h = w->handle;
      engine_->schedule_after(0, [h] { h.resume(); });
    }
  }

  Engine* engine_;
  std::int64_t count_;
  std::deque<AcquireAwaiter*> waiters_;
};

/// Join-counter for fan-out/fan-in: arm() before spawning each child,
/// done() when a child finishes, wait() suspends until the count drains.
/// Equivalent to the counter+Trigger idiom, packaged.
class WaitGroup {
 public:
  explicit WaitGroup(Engine& engine) : trigger_(engine) {}
  WaitGroup(WaitGroup&&) = delete;

  void arm(std::size_t n = 1) {
    POLARIS_CHECK_MSG(!trigger_.fired(), "arm() after the group drained");
    count_ += n;
  }

  void done() {
    POLARIS_CHECK_MSG(count_ > 0, "done() without a matching arm()");
    if (--count_ == 0) trigger_.fire();
  }

  /// Awaits the count reaching zero.  A group that was never armed is
  /// already drained.
  Trigger::Awaiter wait() {
    if (count_ == 0) trigger_.fire();
    return trigger_.wait();
  }

  std::size_t pending() const { return count_; }

 private:
  std::size_t count_ = 0;
  Trigger trigger_;
};

}  // namespace polaris::des
