// Sequential discrete-event simulation engine.
//
// The pending-event set is a two-level structure chosen for the delay
// distribution DES workloads actually produce:
//
//  - A timer wheel of one-tick buckets covering [now, now + 8192) handles
//    the near future in O(1) per schedule and per pop.  Each bucket is an
//    intrusive FIFO of pool slots; because a bucket spans exactly one tick,
//    append order equals sequence order, so wheel pops reproduce the
//    (time, sequence) order of a comparison queue exactly.  A two-level
//    bitmap (bit per bucket, summary bit per word) finds the next occupied
//    bucket with two count-trailing-zeros steps instead of a scan.
//  - A 4-ary implicit min-heap of (time, sequence) keys holds far-future
//    events (delay >= the wheel span).  Heap times can fall inside the
//    wheel window as now() advances, so each pop compares the wheel head
//    with the heap top and breaks time ties on sequence number — total
//    order across both structures is identical to a single queue.
//
// Event nodes live in a slab pool with a free list: scheduling reuses a
// node instead of touching the allocator, and callbacks are stored in a
// small-buffer-optimized UniqueFunction, so the common coroutine-resume
// event allocates nothing.
//
// Cancellation is O(1) and leak-free: an EventId carries the node's pool
// slot plus a generation counter; cancel() flips a tombstone flag on the
// live node, and the node is reaped (returned to the pool) when it reaches
// the front of its bucket or the top of the heap.  Firing or reaping bumps
// the generation, so a stale EventId — including one for an already-fired
// event — is recognized by the generation mismatch and ignored without
// retaining any state, unlike the earlier unordered_set design that kept
// cancelled-after-fire sequence numbers forever.
//
// Coroutine-based processes (see task.hpp) are resumed exclusively through
// scheduled events, which bounds recursion depth and gives every resumption
// a well-defined simulated time.
#pragma once

#include <cstdint>
#include <exception>
#include <limits>
#include <vector>

#include "polaris/des/time.hpp"
#include "polaris/support/function.hpp"

namespace polaris::des {

template <typename T>
class Task;

/// Handle for cancelling a scheduled event.  Identifies the event by pool
/// slot + generation; stays safely stale after the event fires.
struct EventId {
  std::uint32_t slot = 0xffff'ffffu;
  std::uint32_t gen = 0;
};

/// Always-on engine instrumentation: a few integer ops per event, read by
/// the observability layer (polaris::obs) after or during a run.
struct EngineStats {
  std::uint64_t scheduled = 0;          ///< events ever enqueued
  std::uint64_t executed = 0;           ///< events run to completion
  std::uint64_t cancelled_skipped = 0;  ///< tombstones reaped at pop
  std::size_t max_queue_depth = 0;      ///< event-queue high watermark
  std::uint64_t sbo_misses = 0;   ///< callbacks too big for inline storage
  std::size_t pool_capacity = 0;  ///< event nodes ever allocated
  std::size_t pool_in_use = 0;    ///< nodes currently holding queued events
  std::size_t max_pool_in_use = 0;  ///< pool-occupancy high watermark
};

class Engine {
 public:
  using Callback = support::UniqueFunction<void()>;

  /// Raw callback form for hot non-coroutine state machines (e.g. the
  /// fabric packet walkers): a plain function pointer plus a context
  /// pointer.  Scheduling one never touches the allocator and its stored
  /// form is trivially movable, so it always takes the SBO fast path.
  using RawCallback = void (*)(void*);

  Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).  Takes the
  /// callback by rvalue reference so the hot path pays exactly one move
  /// (into the pooled event node).
  EventId schedule_at(SimTime t, Callback&& cb);

  /// Schedules `cb` at now() + dt (dt >= 0).
  EventId schedule_after(SimTime dt, Callback&& cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Schedules `fn(ctx)` at absolute time `t`.  Same ordering guarantees
  /// as schedule_at; `ctx` must stay valid until the event fires or is
  /// cancelled.
  EventId schedule_raw_at(SimTime t, RawCallback fn, void* ctx);

  /// Schedules `fn(ctx)` at now() + dt.
  EventId schedule_raw_after(SimTime dt, RawCallback fn, void* ctx) {
    return schedule_raw_at(now_ + dt, fn, ctx);
  }

  /// Cancels a pending event in O(1).  Cancelling an already-fired or
  /// already-cancelled event is a no-op (the generation no longer matches).
  void cancel(EventId id) {
    if (id.slot >= pool_.size()) return;
    EventNode& n = pool_[id.slot];
    if (n.gen == id.gen) n.cancelled = true;
  }

  /// Runs until the event queue is empty or stop() is called.  Returns the
  /// number of events executed.  Rethrows the first exception that escaped
  /// a process.
  std::size_t run();

  /// Runs events with time <= `until`.  The clock is advanced to `until`
  /// if the queue drains earlier.  Returns events executed.
  std::size_t run_until(SimTime until);

  /// Requests run() to return after the current event completes.
  void stop() { stopped_ = true; }

  /// Starts a detached coroutine process (defined in task.hpp).
  void spawn(Task<void> task);

  /// Number of spawned processes that have not yet completed.
  std::size_t live_processes() const { return live_processes_; }

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Scheduling/queue statistics since construction.
  EngineStats stats() const {
    EngineStats s = stats_;
    s.executed = executed_;
    s.pool_capacity = pool_.size();
    s.pool_in_use = pool_.size() - free_.size();
    return s;
  }

  /// Current event-queue depth (includes cancelled-but-not-reaped events).
  std::size_t queue_depth() const { return wheel_count_ + heap_.size(); }

  /// True when no events remain queued.  A queue holding only cancelled
  /// events reports non-empty until run() reaps past them.
  bool empty() const { return wheel_count_ == 0 && heap_.empty(); }

  /// Returned by next_event_time() when no events remain queued.
  static constexpr SimTime kNoEventTime = std::numeric_limits<SimTime>::max();

  /// Timestamp of the earliest queued event, kNoEventTime when drained.
  /// A pending cancelled event may make this a (still correct) lower bound
  /// rather than the exact next live time; exact whenever cancel() is
  /// unused.  This is the conservative-sync hook for parallel DES: a shard
  /// reports min(next_event_time, earliest outbound handoff) and the
  /// coordinator advances the global window to the minimum across shards.
  SimTime next_event_time() const;

  // -- internal (used by task.hpp/sync.hpp) --------------------------------
  void note_process_started() { ++live_processes_; }
  void note_process_finished() { --live_processes_; }
  void report_error(std::exception_ptr e) {
    if (!error_) error_ = std::move(e);
    stopped_ = true;
  }

 private:
  static constexpr std::uint32_t kNilSlot = 0xffff'ffffu;
  /// Wheel geometry: one bucket per simulated tick, span 8192 ticks.
  static constexpr std::size_t kWheelBits = 13;
  static constexpr std::size_t kWheelSpan = std::size_t{1} << kWheelBits;
  static constexpr std::size_t kWheelMask = kWheelSpan - 1;
  static constexpr std::size_t kWheelWords = kWheelSpan / 64;
  static constexpr std::size_t kSummaryWords = kWheelWords / 64;

  /// Pooled event state.  The (t, seq) key is duplicated into the heap
  /// entry so sift compares never chase the pool pointer; `next` chains
  /// wheel-bucket FIFOs.
  struct EventNode {
    Callback cb;
    SimTime t = 0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNilSlot;
    std::uint32_t gen = 0;
    bool cancelled = false;
  };
  /// One heap slot: the full ordering key plus the owning pool slot.
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Intrusive FIFO of pool slots holding one bucket's events.
  struct Bucket {
    std::uint32_t head = kNilSlot;
    std::uint32_t tail = kNilSlot;
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }

  void heap_push(HeapEntry e);
  void heap_pop_top();

  std::uint32_t acquire_node();
  void release_node(std::uint32_t slot);
  void reap_cancelled_top();  ///< Reaps tombstones sitting at the heap top.

  void set_bucket_bit(std::size_t b);
  void clear_bucket_bit(std::size_t b);
  /// Index of the next occupied bucket at/after position `from`, wrapping.
  /// Precondition: wheel_count_ > 0.
  std::size_t next_bucket(std::size_t from) const;
  void unlink_bucket_head(std::size_t b);

  bool step();  ///< Executes one event; returns false when drained/stopped.
  bool step_bounded(SimTime until);  ///< step(), but not past `until`.
  void maybe_rethrow();

  std::vector<HeapEntry> heap_;  ///< 4-ary implicit min-heap on (t, seq)
  std::vector<EventNode> pool_;
  std::vector<std::uint32_t> free_;  ///< pool slots ready for reuse
  std::vector<Bucket> buckets_;      ///< kWheelSpan one-tick FIFOs
  std::uint64_t bitmap_[kWheelWords] = {};   ///< bit per occupied bucket
  std::uint64_t summary_[kSummaryWords] = {};  ///< bit per nonzero word
  std::size_t wheel_count_ = 0;  ///< events currently in the wheel
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  EngineStats stats_;  ///< executed/pool fields derived in stats()
  std::size_t live_processes_ = 0;
  bool stopped_ = false;
  std::exception_ptr error_;
};

}  // namespace polaris::des
