// Sequential discrete-event simulation engine.
//
// A binary heap of (time, sequence) ordered events drives the simulation;
// ties break on insertion order so runs are deterministic.  Coroutine-based
// processes (see task.hpp) are resumed exclusively through scheduled events,
// which bounds recursion depth and gives every resumption a well-defined
// simulated time.
#pragma once

#include <cstdint>
#include <exception>
#include <queue>
#include <unordered_set>
#include <vector>

#include "polaris/des/time.hpp"
#include "polaris/support/function.hpp"

namespace polaris::des {

template <typename T>
class Task;

/// Handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
};

/// Always-on engine instrumentation: a few integer ops per event, read by
/// the observability layer (polaris::obs) after or during a run.
struct EngineStats {
  std::uint64_t scheduled = 0;          ///< events ever enqueued
  std::uint64_t executed = 0;           ///< events run to completion
  std::uint64_t cancelled_skipped = 0;  ///< cancelled events skipped at pop
  std::size_t max_queue_depth = 0;      ///< event-queue high watermark
};

class Engine {
 public:
  using Callback = support::UniqueFunction<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` at now() + dt (dt >= 0).
  EventId schedule_after(SimTime dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancels a pending event.  Cancelling an already-fired or already-
  /// cancelled event is a no-op.
  void cancel(EventId id) { cancelled_.insert(id.seq); }

  /// Runs until the event queue is empty or stop() is called.  Returns the
  /// number of events executed.  Rethrows the first exception that escaped
  /// a process.
  std::size_t run();

  /// Runs events with time <= `until`.  The clock is advanced to `until`
  /// if the queue drains earlier.  Returns events executed.
  std::size_t run_until(SimTime until);

  /// Requests run() to return after the current event completes.
  void stop() { stopped_ = true; }

  /// Starts a detached coroutine process (defined in task.hpp).
  void spawn(Task<void> task);

  /// Number of spawned processes that have not yet completed.
  std::size_t live_processes() const { return live_processes_; }

  /// Total events executed since construction.
  std::uint64_t events_executed() const { return executed_; }

  /// Scheduling/queue statistics since construction.
  EngineStats stats() const {
    EngineStats s = stats_;
    s.executed = executed_;
    return s;
  }

  /// Current event-queue depth (includes cancelled-but-not-reaped events).
  std::size_t queue_depth() const { return queue_.size(); }

  /// True when no events remain queued.  A queue holding only cancelled
  /// events reports non-empty until run() skips past them.
  bool empty() const { return queue_.empty(); }

  // -- internal (used by task.hpp/sync.hpp) --------------------------------
  void note_process_started() { ++live_processes_; }
  void note_process_finished() { --live_processes_; }
  void report_error(std::exception_ptr e) {
    if (!error_) error_ = std::move(e);
    stopped_ = true;
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  bool step();  ///< Executes one event; returns false when drained/stopped.
  void maybe_rethrow();

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  EngineStats stats_;  ///< executed lives in executed_; see stats()
  std::size_t live_processes_ = 0;
  bool stopped_ = false;
  std::exception_ptr error_;
};

}  // namespace polaris::des
