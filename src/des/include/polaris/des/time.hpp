// Simulated time.
//
// The event engine counts integer nanoseconds (int64: ~292 simulated years)
// so that event ordering is exact and runs replay deterministically; model
// code works in double seconds and converts at the boundary.
#pragma once

#include <cmath>
#include <cstdint>

namespace polaris::des {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts seconds to SimTime, rounding to the nearest nanosecond.
inline SimTime from_seconds(double s) {
  return static_cast<SimTime>(std::llround(s * 1e9));
}

inline double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

inline SimTime from_micros(double us) {
  return static_cast<SimTime>(std::llround(us * 1e3));
}

inline double to_micros(SimTime t) { return static_cast<double>(t) * 1e-3; }

}  // namespace polaris::des
