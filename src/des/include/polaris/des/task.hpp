// Lazily-started coroutine task for simulated processes.
//
// A simulated process (a rank program, a NIC engine, a scheduler loop) is a
// C++20 coroutine returning Task<T>.  Tasks compose with co_await and use
// symmetric transfer to resume their awaiter on completion, so arbitrarily
// deep call chains run in constant stack space.  Top-level tasks are handed
// to Engine::spawn(), which drives them as detached processes.
//
// Tasks themselves carry no engine reference: anything that needs simulated
// time (delays, triggers, mailboxes) takes the Engine explicitly.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "polaris/des/engine.hpp"
#include "polaris/support/check.hpp"

namespace polaris::des {

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr error;

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      auto& promise = h.promise();
      // Resume whoever awaited us; if detached (no awaiter), just stop —
      // the Task destructor will free the frame.
      if (promise.continuation) return promise.continuation;
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() { error = std::current_exception(); }
};

}  // namespace detail

template <typename T = void>
class [[nodiscard]] Task;

template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    T value{};

    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_value(T v) { value = std::move(v); }
  };

  Task() = default;
  explicit Task(std::coroutine_handle<typename Task::promise_type> h)
      : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }

  // -- awaitable interface --------------------------------------------------
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    POLARIS_CHECK_MSG(handle_ && !handle_.done(), "awaiting an empty task");
    handle_.promise().continuation = awaiter;
    return handle_;  // start the child (symmetric transfer)
  }
  T await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
    return std::move(p.value);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task(std::coroutine_handle<promise_type>::from_promise(*this));
    }
    void return_void() {}
  };

  Task() = default;
  explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
  Task(Task&& other) noexcept
      : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return handle_ != nullptr; }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    POLARIS_CHECK_MSG(handle_ && !handle_.done(), "awaiting an empty task");
    handle_.promise().continuation = awaiter;
    return handle_;
  }
  void await_resume() {
    auto& p = handle_.promise();
    if (p.error) std::rethrow_exception(p.error);
  }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

/// Awaitable that suspends the current coroutine for `dt` simulated time.
///
///   co_await delay(engine, des::kMicrosecond * 5);
class DelayAwaiter {
 public:
  DelayAwaiter(Engine& engine, SimTime dt) : engine_(engine), dt_(dt) {}

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    engine_.schedule_after(dt_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Engine& engine_;
  SimTime dt_;
};

inline DelayAwaiter delay(Engine& engine, SimTime dt) {
  POLARIS_CHECK(dt >= 0);
  return DelayAwaiter(engine, dt);
}

/// Awaitable that reschedules the current coroutine at the same simulated
/// time (a cooperative yield, useful to let same-time events interleave).
inline DelayAwaiter yield(Engine& engine) { return DelayAwaiter(engine, 0); }

}  // namespace polaris::des
