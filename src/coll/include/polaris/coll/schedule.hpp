// Collective communication schedules.
//
// A collective algorithm in Polaris compiles to a *schedule*: for every
// rank, an ordered list of communication steps over element ranges of the
// collective buffer.  The same schedule is executed by three engines —
// the in-memory correctness executor (local_exec.hpp), the LogGP timing
// executor (cost.hpp), and both the simulated and real runtimes — so each
// algorithm is written once and exercised everywhere.
//
// Step semantics: a step may carry a send part, a receive part, or both
// (both => post concurrently, as in MPI_Sendrecv; required for ring and
// exchange patterns to avoid rendezvous deadlock).  Receives either
// replace the destination range or combine into it with the collective's
// reduction operator.  Pairwise message order is FIFO in every executor,
// so steps need no tags beyond the collective's own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace polaris::coll {

/// One communication step of one rank.  peer == kNoPeer disables a part.
struct CommStep {
  static constexpr int kNoPeer = -1;

  int send_peer = kNoPeer;
  std::size_t send_offset = 0;  ///< elements into the buffer
  std::size_t send_count = 0;

  int recv_peer = kNoPeer;
  std::size_t recv_offset = 0;
  std::size_t recv_count = 0;
  bool recv_reduce = false;  ///< combine incoming into local range

  /// Alltoall sends read from the input buffer rather than the in-place
  /// collective buffer.
  bool send_from_input = false;

  bool has_send() const { return send_peer != kNoPeer; }
  bool has_recv() const { return recv_peer != kNoPeer; }

  static CommStep send(int peer, std::size_t offset, std::size_t count) {
    CommStep s;
    s.send_peer = peer;
    s.send_offset = offset;
    s.send_count = count;
    return s;
  }
  static CommStep recv(int peer, std::size_t offset, std::size_t count,
                       bool reduce = false) {
    CommStep s;
    s.recv_peer = peer;
    s.recv_offset = offset;
    s.recv_count = count;
    s.recv_reduce = reduce;
    return s;
  }
  static CommStep sendrecv(int speer, std::size_t soff, std::size_t scnt,
                           int rpeer, std::size_t roff, std::size_t rcnt,
                           bool reduce = false) {
    CommStep s;
    s.send_peer = speer;
    s.send_offset = soff;
    s.send_count = scnt;
    s.recv_peer = rpeer;
    s.recv_offset = roff;
    s.recv_count = rcnt;
    s.recv_reduce = reduce;
    return s;
  }
};

/// A complete collective schedule.
struct Schedule {
  std::string name;            ///< e.g. "allreduce/ring"
  std::size_t ranks = 0;
  std::size_t total_count = 0;  ///< elements in the collective buffer
  /// Alltoall: executors copy input[rank block] -> output[rank block]
  /// before running the steps.
  bool needs_local_copy = false;
  std::vector<std::vector<CommStep>> per_rank;

  std::size_t step_count(int rank) const { return per_rank.at(rank).size(); }
  std::size_t max_steps() const;
  std::uint64_t total_elements_moved() const;  ///< sum of send counts
};

/// Structural validation: for every ordered rank pair, the send sequence
/// at the source matches the receive sequence at the destination (same
/// length and element counts, in order), and all ranges lie within the
/// buffer.  Throws support::ContractViolation describing the first defect.
void validate(const Schedule& schedule);

}  // namespace polaris::coll
