// LogGP timing executor and algorithm selection.
//
// Replays a schedule against a LogGP fabric characterization, tracking one
// clock per rank and message-arrival times per pairwise FIFO channel.  The
// result predicts collective completion time on an uncongested fabric —
// enough to rank algorithms against each other, which is all selection
// needs (the full simulator adds congestion).
#pragma once

#include <cstddef>

#include "polaris/coll/algorithms.hpp"
#include "polaris/fabric/loggp.hpp"

namespace polaris::coll {

/// Completion time (seconds, max over ranks) of `schedule` with elements
/// of `elem_bytes` under `net`.  Zero-count steps cost an envelope-only
/// message (header of ~kEnvelopeBytes).
double predicted_seconds(const Schedule& schedule,
                         const fabric::LogGPParams& net,
                         std::size_t elem_bytes);

/// Envelope bytes charged for zero-payload messages (barrier, RTS/CTS).
inline constexpr std::size_t kEnvelopeBytes = 32;

/// Picks the fastest valid algorithm for (kind, ranks, count elements of
/// elem_bytes) under `net` by exhaustive prediction.  Binomial
/// gather/scatter are skipped unless root == 0.
Algorithm select_algorithm(Collective kind, std::size_t ranks,
                           std::size_t count, std::size_t elem_bytes,
                           const fabric::LogGPParams& net, int root = 0);

}  // namespace polaris::coll
