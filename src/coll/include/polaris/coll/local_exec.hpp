// In-memory schedule executor: the collective-correctness oracle.
//
// Executes a Schedule over per-rank double buffers with FIFO pairwise
// channels and cooperative stepping, entirely in memory and without any
// timing model.  Tests use it to prove every algorithm computes the right
// answer (and is deadlock-free) before the same schedule runs on the
// simulated or real runtime.
#pragma once

#include <vector>

#include "polaris/coll/schedule.hpp"

namespace polaris::coll {

enum class ReduceOp { kSum, kMax, kMin, kProd };

double combine(ReduceOp op, double a, double b);

/// Executes `schedule` in place over `buffers` (one buffer of
/// schedule.total_count doubles per rank).
///
/// `input`: per-rank read-only source for steps with send_from_input
/// (alltoall); required iff the schedule uses them.
///
/// Throws support::ContractViolation on malformed schedules and
/// std::runtime_error("schedule deadlock: ...") if no rank can progress.
void execute_locally(const Schedule& schedule,
                     std::vector<std::vector<double>>& buffers,
                     ReduceOp op = ReduceOp::kSum,
                     const std::vector<std::vector<double>>* input = nullptr);

}  // namespace polaris::coll
