// Collective algorithm schedule generators.
//
// Algorithms implemented (validity in parentheses):
//   barrier    — dissemination (any p), linear fan-in/fan-out (any p)
//   broadcast  — linear (any p), binomial tree (any p),
//                ring-pipelined segments (any p; large messages)
//   reduce     — linear (any p), binomial tree (any p)
//   allreduce  — binomial reduce+broadcast (any p),
//                recursive doubling (p = 2^k),
//                ring reduce-scatter + allgather (any p; bandwidth-optimal),
//                Rabenseifner recursive-halving + doubling (p = 2^k)
//   allgather  — ring (any p), recursive doubling (p = 2^k),
//                pairwise cyclic exchange (any p),
//                Bruck dissemination (any p, ceil(log2 p) rounds)
//   reduce-scatter — ring (any p; bandwidth-optimal),
//                recursive halving (p = 2^k),
//                binomial reduce + scatter composition (any p)
//   scan       — Hillis-Steele inclusive prefix (any p)
//   alltoall   — pairwise cyclic exchange (any p)
//   gather     — linear (any p), binomial (root 0)
//   scatter    — linear (any p), binomial (root 0)
//
// Element counts are datatype-agnostic; executors bind the element size.
#pragma once

#include <cstddef>
#include <vector>

#include "polaris/coll/schedule.hpp"

namespace polaris::coll {

enum class Algorithm {
  kLinear,
  kBinomial,
  kRecursiveDoubling,
  kRing,
  kRabenseifner,
  kPairwise,
  kDissemination,
  kBruck,
  kRecursiveHalving,
};

const char* to_string(Algorithm a);

enum class Collective {
  kBarrier,
  kBroadcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kAlltoall,
  kGather,
  kScatter,
  kReduceScatter,
  kScan,
};

const char* to_string(Collective c);

constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Splits `count` elements into `parts` near-equal chunks; returns
/// (offset, length) of chunk `index`.  Leading chunks absorb the remainder.
std::pair<std::size_t, std::size_t> chunk_range(std::size_t count,
                                                std::size_t parts,
                                                std::size_t index);

// -- generators --------------------------------------------------------------

Schedule barrier(std::size_t ranks, Algorithm a = Algorithm::kDissemination);

Schedule broadcast(std::size_t ranks, std::size_t count, int root,
                   Algorithm a = Algorithm::kBinomial);

Schedule reduce(std::size_t ranks, std::size_t count, int root,
                Algorithm a = Algorithm::kBinomial);

Schedule allreduce(std::size_t ranks, std::size_t count,
                   Algorithm a = Algorithm::kRing);

/// Allgather of `block` elements per rank; buffer holds ranks*block.
Schedule allgather(std::size_t ranks, std::size_t block,
                   Algorithm a = Algorithm::kRing);

/// Alltoall of `block` elements per (src, dst) pair; buffers hold
/// ranks*block.  Sends read the input buffer (send_from_input).
Schedule alltoall(std::size_t ranks, std::size_t block,
                  Algorithm a = Algorithm::kPairwise);

/// Reduce-scatter of `block` elements per rank over a ranks*block buffer:
/// afterwards rank r holds block r of the elementwise reduction.
Schedule reduce_scatter(std::size_t ranks, std::size_t block,
                        Algorithm a = Algorithm::kRing);

/// Inclusive prefix reduction over `count` elements: afterwards rank r
/// holds combine(inputs of ranks 0..r).
Schedule scan(std::size_t ranks, std::size_t count);

Schedule gather(std::size_t ranks, std::size_t block, int root,
                Algorithm a = Algorithm::kLinear);

Schedule scatter(std::size_t ranks, std::size_t block, int root,
                 Algorithm a = Algorithm::kLinear);

/// The algorithms valid for `kind` at `ranks` (used by selection, tests
/// and benchmark sweeps).
std::vector<Algorithm> algorithms_for(Collective kind, std::size_t ranks);

/// Generates the schedule for any (kind, algorithm) pair.  For barrier,
/// count is ignored; for per-block collectives, count is the block size.
Schedule make_schedule(Collective kind, Algorithm a, std::size_t ranks,
                       std::size_t count, int root = 0);

}  // namespace polaris::coll
