#include "polaris/coll/algorithms.hpp"

#include <algorithm>

#include "polaris/support/check.hpp"

namespace polaris::coll {

const char* to_string(Algorithm a) {
  switch (a) {
    case Algorithm::kLinear:
      return "linear";
    case Algorithm::kBinomial:
      return "binomial";
    case Algorithm::kRecursiveDoubling:
      return "recursive-doubling";
    case Algorithm::kRing:
      return "ring";
    case Algorithm::kRabenseifner:
      return "rabenseifner";
    case Algorithm::kPairwise:
      return "pairwise";
    case Algorithm::kDissemination:
      return "dissemination";
    case Algorithm::kBruck:
      return "bruck";
    case Algorithm::kRecursiveHalving:
      return "recursive-halving";
  }
  return "?";
}

const char* to_string(Collective c) {
  switch (c) {
    case Collective::kBarrier:
      return "barrier";
    case Collective::kBroadcast:
      return "broadcast";
    case Collective::kReduce:
      return "reduce";
    case Collective::kAllreduce:
      return "allreduce";
    case Collective::kAllgather:
      return "allgather";
    case Collective::kAlltoall:
      return "alltoall";
    case Collective::kGather:
      return "gather";
    case Collective::kScatter:
      return "scatter";
    case Collective::kReduceScatter:
      return "reduce-scatter";
    case Collective::kScan:
      return "scan";
  }
  return "?";
}

std::pair<std::size_t, std::size_t> chunk_range(std::size_t count,
                                                std::size_t parts,
                                                std::size_t index) {
  POLARIS_CHECK(parts > 0 && index < parts);
  const std::size_t base = count / parts;
  const std::size_t rem = count % parts;
  const std::size_t len = base + (index < rem ? 1 : 0);
  const std::size_t off = index * base + std::min(index, rem);
  return {off, len};
}

namespace {

Schedule make_empty(const char* coll, Algorithm a, std::size_t ranks,
                    std::size_t total_count) {
  POLARIS_CHECK(ranks >= 1);
  Schedule s;
  s.name = std::string(coll) + "/" + to_string(a);
  s.ranks = ranks;
  s.total_count = total_count;
  s.per_rank.resize(ranks);
  return s;
}

int wrap(int x, int p) { return ((x % p) + p) % p; }

}  // namespace

// ------------------------------------------------------------------- barrier

Schedule barrier(std::size_t ranks, Algorithm a) {
  const int p = static_cast<int>(ranks);
  switch (a) {
    case Algorithm::kDissemination: {
      auto s = make_empty("barrier", a, ranks, 0);
      for (int r = 0; r < p; ++r) {
        for (int k = 1; k < p; k <<= 1) {
          s.per_rank[r].push_back(CommStep::sendrecv(
              wrap(r + k, p), 0, 0, wrap(r - k, p), 0, 0));
        }
      }
      return s;
    }
    case Algorithm::kLinear: {
      // Fan-in to rank 0, then fan-out.
      auto s = make_empty("barrier", a, ranks, 0);
      for (int r = 1; r < p; ++r) {
        s.per_rank[r].push_back(CommStep::send(0, 0, 0));
        s.per_rank[0].push_back(CommStep::recv(r, 0, 0));
      }
      for (int r = 1; r < p; ++r) {
        s.per_rank[0].push_back(CommStep::send(r, 0, 0));
        s.per_rank[r].push_back(CommStep::recv(0, 0, 0));
      }
      return s;
    }
    default:
      support::check_failed("unsupported barrier algorithm",
                            to_string(a));
  }
}

// ----------------------------------------------------------------- broadcast

Schedule broadcast(std::size_t ranks, std::size_t count, int root,
                   Algorithm a) {
  const int p = static_cast<int>(ranks);
  POLARIS_CHECK(root >= 0 && root < p);
  switch (a) {
    case Algorithm::kLinear: {
      auto s = make_empty("broadcast", a, ranks, count);
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        s.per_rank[root].push_back(CommStep::send(r, 0, count));
        s.per_rank[r].push_back(CommStep::recv(root, 0, count));
      }
      return s;
    }
    case Algorithm::kBinomial: {
      auto s = make_empty("broadcast", a, ranks, count);
      for (int r = 0; r < p; ++r) {
        const int rel = wrap(r - root, p);
        int mask = 1;
        // Receive from the parent (the rank that differs at the lowest set
        // bit of rel).
        while (mask < p) {
          if (rel & mask) {
            const int parent = wrap(rel - mask + root, p);
            s.per_rank[r].push_back(CommStep::recv(parent, 0, count));
            break;
          }
          mask <<= 1;
        }
        // Send to children, largest subtree first.
        mask >>= 1;
        while (mask > 0) {
          if (rel + mask < p) {
            const int child = wrap(rel + mask + root, p);
            s.per_rank[r].push_back(CommStep::send(child, 0, count));
          }
          mask >>= 1;
        }
      }
      return s;
    }
    case Algorithm::kRing: {
      // Segmented pipeline down the chain root -> root+1 -> ... (large
      // messages): hides (p-2) of the p-1 traversals.
      auto s = make_empty("broadcast", a, ranks, count);
      const std::size_t segments =
          std::clamp<std::size_t>(count / 1024, 1, 32);
      for (int r = 0; r < p; ++r) {
        const int pos = wrap(r - root, p);
        const int next = wrap(r + 1, p);
        const int prev = wrap(r - 1, p);
        for (std::size_t seg = 0; seg <= segments; ++seg) {
          CommStep step;
          if (seg > 0 && pos < p - 1) {  // forward the previous segment
            const auto [off, len] = chunk_range(count, segments, seg - 1);
            step.send_peer = next;
            step.send_offset = off;
            step.send_count = len;
          }
          if (seg < segments && pos > 0) {  // receive the next segment
            const auto [off, len] = chunk_range(count, segments, seg);
            step.recv_peer = prev;
            step.recv_offset = off;
            step.recv_count = len;
          }
          if (step.has_send() || step.has_recv()) {
            s.per_rank[r].push_back(step);
          }
        }
      }
      return s;
    }
    default:
      support::check_failed("unsupported broadcast algorithm",
                            to_string(a));
  }
}

// -------------------------------------------------------------------- reduce

Schedule reduce(std::size_t ranks, std::size_t count, int root, Algorithm a) {
  const int p = static_cast<int>(ranks);
  POLARIS_CHECK(root >= 0 && root < p);
  switch (a) {
    case Algorithm::kLinear: {
      auto s = make_empty("reduce", a, ranks, count);
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        s.per_rank[r].push_back(CommStep::send(root, 0, count));
        s.per_rank[root].push_back(
            CommStep::recv(r, 0, count, /*reduce=*/true));
      }
      return s;
    }
    case Algorithm::kBinomial: {
      // Mirror image of the binomial broadcast: children reduce into
      // parents, smallest subtree first.
      auto s = make_empty("reduce", a, ranks, count);
      for (int r = 0; r < p; ++r) {
        const int rel = wrap(r - root, p);
        int mask = 1;
        while (mask < p) {
          if ((rel & mask) == 0) {
            if (rel + mask < p) {
              const int child = wrap(rel + mask + root, p);
              s.per_rank[r].push_back(
                  CommStep::recv(child, 0, count, /*reduce=*/true));
            }
          } else {
            const int parent = wrap(rel - mask + root, p);
            s.per_rank[r].push_back(CommStep::send(parent, 0, count));
            break;
          }
          mask <<= 1;
        }
      }
      return s;
    }
    default:
      support::check_failed("unsupported reduce algorithm", to_string(a));
  }
}

// ----------------------------------------------------------------- allreduce

namespace {

Schedule allreduce_recursive_doubling(std::size_t ranks, std::size_t count) {
  POLARIS_CHECK_MSG(is_power_of_two(ranks),
                    "recursive doubling requires power-of-two ranks");
  auto s = make_empty("allreduce", Algorithm::kRecursiveDoubling, ranks,
                      count);
  const int p = static_cast<int>(ranks);
  for (int r = 0; r < p; ++r) {
    for (int mask = 1; mask < p; mask <<= 1) {
      const int partner = r ^ mask;
      s.per_rank[r].push_back(CommStep::sendrecv(
          partner, 0, count, partner, 0, count, /*reduce=*/true));
    }
  }
  return s;
}

Schedule allreduce_ring(std::size_t ranks, std::size_t count) {
  auto s = make_empty("allreduce", Algorithm::kRing, ranks, count);
  const int p = static_cast<int>(ranks);
  if (p == 1) return s;
  for (int r = 0; r < p; ++r) {
    const int right = wrap(r + 1, p);
    const int left = wrap(r - 1, p);
    // Reduce-scatter phase: after it, rank r owns reduced chunk (r+1)%p.
    for (int step = 0; step < p - 1; ++step) {
      const auto [soff, scnt] =
          chunk_range(count, ranks, static_cast<std::size_t>(wrap(r - step, p)));
      const auto [roff, rcnt] = chunk_range(
          count, ranks, static_cast<std::size_t>(wrap(r - step - 1, p)));
      s.per_rank[r].push_back(CommStep::sendrecv(
          right, soff, scnt, left, roff, rcnt, /*reduce=*/true));
    }
    // Allgather phase.
    for (int step = 0; step < p - 1; ++step) {
      const auto [soff, scnt] = chunk_range(
          count, ranks, static_cast<std::size_t>(wrap(r + 1 - step, p)));
      const auto [roff, rcnt] = chunk_range(
          count, ranks, static_cast<std::size_t>(wrap(r - step, p)));
      s.per_rank[r].push_back(CommStep::sendrecv(
          right, soff, scnt, left, roff, rcnt, /*reduce=*/false));
    }
  }
  return s;
}

Schedule allreduce_rabenseifner(std::size_t ranks, std::size_t count) {
  POLARIS_CHECK_MSG(is_power_of_two(ranks),
                    "rabenseifner requires power-of-two ranks");
  auto s = make_empty("allreduce", Algorithm::kRabenseifner, ranks, count);
  const int p = static_cast<int>(ranks);
  if (p == 1) return s;

  // Track each rank's owned segment [lo, hi) through both phases.
  std::vector<std::size_t> lo(ranks, 0), hi(ranks, count);

  // Reduce-scatter by recursive halving.
  for (int mask = p / 2; mask >= 1; mask >>= 1) {
    for (int r = 0; r < p; ++r) {
      const int partner = r ^ mask;
      const std::size_t mid = lo[r] + (hi[r] - lo[r]) / 2;
      if ((r & mask) == 0) {
        // Keep the lower half; send the upper half.
        s.per_rank[r].push_back(CommStep::sendrecv(
            partner, mid, hi[r] - mid, partner, lo[r], mid - lo[r],
            /*reduce=*/true));
      } else {
        s.per_rank[r].push_back(CommStep::sendrecv(
            partner, lo[r], mid - lo[r], partner, mid, hi[r] - mid,
            /*reduce=*/true));
      }
    }
    for (int r = 0; r < p; ++r) {
      const std::size_t mid = lo[r] + (hi[r] - lo[r]) / 2;
      if ((r & mask) == 0) {
        hi[r] = mid;
      } else {
        lo[r] = mid;
      }
    }
  }

  // Allgather by recursive doubling (reverse pairing order).
  for (int mask = 1; mask < p; mask <<= 1) {
    for (int r = 0; r < p; ++r) {
      const int partner = r ^ mask;
      s.per_rank[r].push_back(CommStep::sendrecv(
          partner, lo[r], hi[r] - lo[r], partner, lo[partner],
          hi[partner] - lo[partner], /*reduce=*/false));
    }
    for (int r = 0; r < p; ++r) {
      const int partner = r ^ mask;
      // Segments are adjacent; merge.
      const std::size_t nlo = std::min(lo[r], lo[partner]);
      const std::size_t nhi = std::max(hi[r], hi[partner]);
      if (r < partner) {
        lo[r] = nlo;
        hi[r] = nhi;
      } else {
        // partner already merged when it was visited; recompute from its
        // pre-merge state is wrong — so merge both sides symmetrically
        // using saved values.  Handled by the two-pass structure below.
        lo[r] = nlo;
        hi[r] = nhi;
      }
    }
  }
  return s;
}

Schedule allreduce_binomial(std::size_t ranks, std::size_t count) {
  // reduce to 0 then broadcast from 0, concatenated per rank.
  auto red = reduce(ranks, count, 0, Algorithm::kBinomial);
  auto bc = broadcast(ranks, count, 0, Algorithm::kBinomial);
  auto s = make_empty("allreduce", Algorithm::kBinomial, ranks, count);
  for (std::size_t r = 0; r < ranks; ++r) {
    s.per_rank[r] = red.per_rank[r];
    s.per_rank[r].insert(s.per_rank[r].end(), bc.per_rank[r].begin(),
                         bc.per_rank[r].end());
  }
  return s;
}

}  // namespace

Schedule allreduce(std::size_t ranks, std::size_t count, Algorithm a) {
  switch (a) {
    case Algorithm::kRecursiveDoubling:
      return allreduce_recursive_doubling(ranks, count);
    case Algorithm::kRing:
      return allreduce_ring(ranks, count);
    case Algorithm::kRabenseifner:
      return allreduce_rabenseifner(ranks, count);
    case Algorithm::kBinomial:
      return allreduce_binomial(ranks, count);
    default:
      support::check_failed("unsupported allreduce algorithm",
                            to_string(a));
  }
}

// ----------------------------------------------------------------- allgather

Schedule allgather(std::size_t ranks, std::size_t block, Algorithm a) {
  const int p = static_cast<int>(ranks);
  const std::size_t total = ranks * block;
  switch (a) {
    case Algorithm::kRing: {
      auto s = make_empty("allgather", a, ranks, total);
      for (int r = 0; r < p; ++r) {
        const int right = wrap(r + 1, p);
        const int left = wrap(r - 1, p);
        for (int step = 0; step < p - 1; ++step) {
          const auto sblk = static_cast<std::size_t>(wrap(r - step, p));
          const auto rblk = static_cast<std::size_t>(wrap(r - step - 1, p));
          s.per_rank[r].push_back(CommStep::sendrecv(
              right, sblk * block, block, left, rblk * block, block));
        }
      }
      return s;
    }
    case Algorithm::kRecursiveDoubling: {
      POLARIS_CHECK_MSG(is_power_of_two(ranks),
                        "recursive doubling requires power-of-two ranks");
      auto s = make_empty("allgather", a, ranks, total);
      for (int r = 0; r < p; ++r) {
        for (int mask = 1; mask < p; mask <<= 1) {
          const int partner = r ^ mask;
          // Own group's block range doubles each round.
          const std::size_t my_base =
              static_cast<std::size_t>(r & ~(mask - 1)) * block;
          const std::size_t partner_base =
              static_cast<std::size_t>(partner & ~(mask - 1)) * block;
          const std::size_t len = static_cast<std::size_t>(mask) * block;
          s.per_rank[r].push_back(CommStep::sendrecv(
              partner, my_base, len, partner, partner_base, len));
        }
      }
      return s;
    }

    case Algorithm::kBruck: {
      // Bruck dissemination allgather in ceil(log2 p) rounds for any p.
      // Blocks are stored at their FINAL offsets throughout: rank r's
      // "rotated slot" j is actual block (r+j) mod p, so the blocks a
      // round moves land directly in place and no terminal rotation is
      // needed.  A round's block run may wrap past block p-1 in actual
      // offsets; the run is split at the wrap points of the SENDER's
      // blocks, and the receiver derives the identical split from its
      // source's indices, so per-pair FIFO sequences match.
      auto s = make_empty("allgather", a, ranks, total);
      const auto up = static_cast<std::size_t>(p);
      // Wrap points of the run {(base+j) mod p : j in [0, m)}.
      const auto segment_cuts = [up](std::size_t base, std::size_t m) {
        std::vector<std::size_t> cuts{0, m};
        const std::size_t j_wrap = (up - base % up) % up;
        if (j_wrap > 0 && j_wrap < m) cuts.push_back(j_wrap);
        std::sort(cuts.begin(), cuts.end());
        return cuts;
      };
      for (int r = 0; r < p; ++r) {
        for (std::size_t dist = 1; dist < up; dist <<= 1) {
          const std::size_t m = std::min(dist, up - dist);
          const int to = wrap(r - static_cast<int>(dist), p);
          const int from = wrap(r + static_cast<int>(dist), p);
          // Send: my blocks {(r+j)}, split at my own wrap.
          const auto scuts =
              segment_cuts(static_cast<std::size_t>(r), m);
          // Recv: blocks {(from+j)} = {(r+dist+j)}, split at the SOURCE's
          // wrap so segment sizes equal the source's send segments.
          const auto rcuts = segment_cuts(
              static_cast<std::size_t>(r) + dist, m);
          const std::size_t nsteps =
              std::max(scuts.size(), rcuts.size()) - 1;
          for (std::size_t ci = 0; ci < nsteps; ++ci) {
            CommStep step;
            if (ci + 1 < scuts.size()) {
              const std::size_t j0 = scuts[ci];
              step.send_peer = to;
              step.send_offset =
                  ((static_cast<std::size_t>(r) + j0) % up) * block;
              step.send_count = (scuts[ci + 1] - j0) * block;
            }
            if (ci + 1 < rcuts.size()) {
              const std::size_t j0 = rcuts[ci];
              step.recv_peer = from;
              step.recv_offset =
                  ((static_cast<std::size_t>(r) + dist + j0) % up) * block;
              step.recv_count = (rcuts[ci + 1] - j0) * block;
            }
            if (step.has_send() || step.has_recv()) {
              s.per_rank[r].push_back(step);
            }
          }
        }
      }
      return s;
    }
    case Algorithm::kPairwise: {
      auto s = make_empty("allgather", a, ranks, total);
      for (int r = 0; r < p; ++r) {
        for (int step = 1; step < p; ++step) {
          const int to = wrap(r + step, p);
          const int from = wrap(r - step, p);
          s.per_rank[r].push_back(CommStep::sendrecv(
              to, static_cast<std::size_t>(r) * block, block, from,
              static_cast<std::size_t>(from) * block, block));
        }
      }
      return s;
    }
    default:
      support::check_failed("unsupported allgather algorithm",
                            to_string(a));
  }
}

// ------------------------------------------------------------------ alltoall

Schedule alltoall(std::size_t ranks, std::size_t block, Algorithm a) {
  POLARIS_CHECK_MSG(a == Algorithm::kPairwise,
                    "alltoall implements pairwise exchange only");
  const int p = static_cast<int>(ranks);
  const std::size_t total = ranks * block;
  auto s = make_empty("alltoall", a, ranks, total);
  s.needs_local_copy = true;
  for (int r = 0; r < p; ++r) {
    for (int step = 1; step < p; ++step) {
      const int to = wrap(r + step, p);
      const int from = wrap(r - step, p);
      CommStep cs = CommStep::sendrecv(
          to, static_cast<std::size_t>(to) * block, block, from,
          static_cast<std::size_t>(from) * block, block);
      cs.send_from_input = true;
      s.per_rank[r].push_back(cs);
    }
  }
  return s;
}


// ------------------------------------------------------------ reduce_scatter

Schedule reduce_scatter(std::size_t ranks, std::size_t block, Algorithm a) {
  const int p = static_cast<int>(ranks);
  const std::size_t total = ranks * block;
  switch (a) {
    case Algorithm::kRing: {
      // p-1 neighbour steps; rank r ends owning reduced block r.
      auto s = make_empty("reduce-scatter", a, ranks, total);
      for (int r = 0; r < p; ++r) {
        const int right = wrap(r + 1, p);
        const int left = wrap(r - 1, p);
        for (int step = 0; step < p - 1; ++step) {
          const auto sblk = static_cast<std::size_t>(wrap(r - step - 1, p));
          const auto rblk = static_cast<std::size_t>(wrap(r - step - 2, p));
          s.per_rank[r].push_back(CommStep::sendrecv(
              right, sblk * block, block, left, rblk * block, block,
              /*reduce=*/true));
        }
      }
      return s;
    }
    case Algorithm::kRecursiveHalving: {
      POLARIS_CHECK_MSG(is_power_of_two(ranks),
                        "recursive halving requires power-of-two ranks");
      auto s = make_empty("reduce-scatter", a, ranks, total);
      // Track each rank's live block range [lo, hi); the halves kept
      // follow the rank's own bits so rank r converges on block r.
      std::vector<std::size_t> lo(ranks, 0), hi(ranks, ranks);
      for (int mask = p / 2; mask >= 1; mask >>= 1) {
        for (int r = 0; r < p; ++r) {
          const int partner = r ^ mask;
          const std::size_t mid = lo[r] + (hi[r] - lo[r]) / 2;
          const bool keep_low = (r & mask) == 0;
          const std::size_t koff = (keep_low ? lo[r] : mid) * block;
          const std::size_t kcnt =
              (keep_low ? mid - lo[r] : hi[r] - mid) * block;
          const std::size_t soff = (keep_low ? mid : lo[r]) * block;
          const std::size_t scnt =
              (keep_low ? hi[r] - mid : mid - lo[r]) * block;
          s.per_rank[r].push_back(CommStep::sendrecv(
              partner, soff, scnt, partner, koff, kcnt, /*reduce=*/true));
        }
        for (int r = 0; r < p; ++r) {
          const std::size_t mid = lo[r] + (hi[r] - lo[r]) / 2;
          if ((r & mask) == 0) {
            hi[r] = mid;
          } else {
            lo[r] = mid;
          }
        }
      }
      return s;
    }
    case Algorithm::kBinomial: {
      // Compose: binomial reduce to 0, then binomial scatter from 0.
      auto red = reduce(ranks, total, 0, Algorithm::kBinomial);
      auto sc = scatter(ranks, block, 0, Algorithm::kBinomial);
      auto s = make_empty("reduce-scatter", a, ranks, total);
      for (std::size_t r = 0; r < ranks; ++r) {
        s.per_rank[r] = red.per_rank[r];
        s.per_rank[r].insert(s.per_rank[r].end(), sc.per_rank[r].begin(),
                             sc.per_rank[r].end());
      }
      return s;
    }
    default:
      support::check_failed("unsupported reduce-scatter algorithm",
                            to_string(a));
  }
}

// ------------------------------------------------------------------------ scan

Schedule scan(std::size_t ranks, std::size_t count) {
  // Hillis-Steele inclusive prefix: ceil(log2 p) rounds; at distance d,
  // rank r sends its running partial to r+d and folds in r-d's.
  const int p = static_cast<int>(ranks);
  auto s = make_empty("scan", Algorithm::kRecursiveDoubling, ranks, count);
  for (int r = 0; r < p; ++r) {
    for (int d = 1; d < p; d <<= 1) {
      CommStep step;
      if (r + d < p) {
        step.send_peer = r + d;
        step.send_offset = 0;
        step.send_count = count;
      }
      if (r - d >= 0) {
        step.recv_peer = r - d;
        step.recv_offset = 0;
        step.recv_count = count;
        step.recv_reduce = true;
      }
      if (step.has_send() || step.has_recv()) s.per_rank[r].push_back(step);
    }
  }
  return s;
}

// -------------------------------------------------------------- gather/scatter


Schedule gather(std::size_t ranks, std::size_t block, int root, Algorithm a) {
  const int p = static_cast<int>(ranks);
  POLARIS_CHECK(root >= 0 && root < p);
  const std::size_t total = ranks * block;
  switch (a) {
    case Algorithm::kLinear: {
      auto s = make_empty("gather", a, ranks, total);
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        s.per_rank[r].push_back(
            CommStep::send(root, static_cast<std::size_t>(r) * block, block));
        s.per_rank[root].push_back(
            CommStep::recv(r, static_cast<std::size_t>(r) * block, block));
      }
      return s;
    }
    case Algorithm::kBinomial: {
      POLARIS_CHECK_MSG(root == 0, "binomial gather requires root 0");
      auto s = make_empty("gather", a, ranks, total);
      // Rank r accumulates blocks [r, r + subtree) before forwarding.
      for (int r = 0; r < p; ++r) {
        int mask = 1;
        while (mask < p) {
          if ((r & mask) == 0) {
            if (r + mask < p) {
              const int child = r + mask;
              const int sub = std::min(mask, p - child);
              s.per_rank[r].push_back(CommStep::recv(
                  child, static_cast<std::size_t>(child) * block,
                  static_cast<std::size_t>(sub) * block));
            }
          } else {
            const int parent = r - mask;
            const int sub = std::min(mask, p - r);
            s.per_rank[r].push_back(CommStep::send(
                parent, static_cast<std::size_t>(r) * block,
                static_cast<std::size_t>(sub) * block));
            break;
          }
          mask <<= 1;
        }
      }
      return s;
    }
    default:
      support::check_failed("unsupported gather algorithm", to_string(a));
  }
}

Schedule scatter(std::size_t ranks, std::size_t block, int root,
                 Algorithm a) {
  const int p = static_cast<int>(ranks);
  POLARIS_CHECK(root >= 0 && root < p);
  const std::size_t total = ranks * block;
  switch (a) {
    case Algorithm::kLinear: {
      auto s = make_empty("scatter", a, ranks, total);
      for (int r = 0; r < p; ++r) {
        if (r == root) continue;
        s.per_rank[root].push_back(
            CommStep::send(r, static_cast<std::size_t>(r) * block, block));
        s.per_rank[r].push_back(
            CommStep::recv(root, static_cast<std::size_t>(r) * block, block));
      }
      return s;
    }
    case Algorithm::kBinomial: {
      POLARIS_CHECK_MSG(root == 0, "binomial scatter requires root 0");
      auto s = make_empty("scatter", a, ranks, total);
      // Mirror of binomial gather: parents forward subtree ranges,
      // largest subtree first.
      for (int r = 0; r < p; ++r) {
        int recv_mask = 0;
        int mask = 1;
        while (mask < p) {
          if (r & mask) {
            recv_mask = mask;
            const int parent = r - mask;
            const int sub = std::min(mask, p - r);
            s.per_rank[r].push_back(CommStep::recv(
                parent, static_cast<std::size_t>(r) * block,
                static_cast<std::size_t>(sub) * block));
            break;
          }
          mask <<= 1;
        }
        // Children, largest first (mirrors gather's reversed order).
        int send_mask = recv_mask == 0 ? 0 : recv_mask >> 1;
        if (r == 0) {
          send_mask = 1;
          while (send_mask < p) send_mask <<= 1;
          send_mask >>= 1;
        }
        for (int m = send_mask; m >= 1; m >>= 1) {
          if ((r & m) == 0 && r + m < p && (recv_mask == 0 || m < recv_mask)) {
            const int child = r + m;
            const int sub = std::min(m, p - child);
            s.per_rank[r].push_back(CommStep::send(
                child, static_cast<std::size_t>(child) * block,
                static_cast<std::size_t>(sub) * block));
          }
        }
      }
      return s;
    }
    default:
      support::check_failed("unsupported scatter algorithm", to_string(a));
  }
}

// ----------------------------------------------------------------- selection

std::vector<Algorithm> algorithms_for(Collective kind, std::size_t ranks) {
  const bool p2 = is_power_of_two(ranks);
  switch (kind) {
    case Collective::kBarrier:
      return {Algorithm::kDissemination, Algorithm::kLinear};
    case Collective::kBroadcast:
      return {Algorithm::kLinear, Algorithm::kBinomial, Algorithm::kRing};
    case Collective::kReduce:
      return {Algorithm::kLinear, Algorithm::kBinomial};
    case Collective::kAllreduce: {
      std::vector<Algorithm> v{Algorithm::kBinomial, Algorithm::kRing};
      if (p2) {
        v.push_back(Algorithm::kRecursiveDoubling);
        v.push_back(Algorithm::kRabenseifner);
      }
      return v;
    }
    case Collective::kAllgather: {
      std::vector<Algorithm> v{Algorithm::kRing, Algorithm::kPairwise,
                               Algorithm::kBruck};
      if (p2) v.push_back(Algorithm::kRecursiveDoubling);
      return v;
    }
    case Collective::kAlltoall:
      return {Algorithm::kPairwise};
    case Collective::kGather:
    case Collective::kScatter: {
      std::vector<Algorithm> v{Algorithm::kLinear};
      v.push_back(Algorithm::kBinomial);  // root-0 only; callers check
      return v;
    }
    case Collective::kReduceScatter: {
      std::vector<Algorithm> v{Algorithm::kRing, Algorithm::kBinomial};
      if (p2) v.push_back(Algorithm::kRecursiveHalving);
      return v;
    }
    case Collective::kScan:
      return {Algorithm::kRecursiveDoubling};
  }
  return {};
}

Schedule make_schedule(Collective kind, Algorithm a, std::size_t ranks,
                       std::size_t count, int root) {
  switch (kind) {
    case Collective::kBarrier:
      return barrier(ranks, a);
    case Collective::kBroadcast:
      return broadcast(ranks, count, root, a);
    case Collective::kReduce:
      return reduce(ranks, count, root, a);
    case Collective::kAllreduce:
      return allreduce(ranks, count, a);
    case Collective::kAllgather:
      return allgather(ranks, count, a);
    case Collective::kAlltoall:
      return alltoall(ranks, count, a);
    case Collective::kGather:
      return gather(ranks, count, root, a);
    case Collective::kScatter:
      return scatter(ranks, count, root, a);
    case Collective::kReduceScatter:
      return reduce_scatter(ranks, count, a);
    case Collective::kScan:
      return scan(ranks, count);
  }
  support::check_failed("unknown collective kind");
}

}  // namespace polaris::coll
