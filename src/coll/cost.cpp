#include "polaris/coll/cost.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>
#include <stdexcept>

#include "polaris/support/check.hpp"

namespace polaris::coll {

namespace {

struct RankState {
  std::size_t step = 0;
  bool sent_current = false;
  double clock = 0.0;
};

double payload_bytes(std::size_t count, std::size_t elem_bytes) {
  const auto b = static_cast<double>(count * elem_bytes);
  return std::max(b, static_cast<double>(kEnvelopeBytes));
}

}  // namespace

double predicted_seconds(const Schedule& schedule,
                         const fabric::LogGPParams& net,
                         std::size_t elem_bytes) {
  const std::size_t p = schedule.ranks;
  // Per ordered pair, FIFO queue of message arrival times.
  std::map<std::pair<int, int>, std::deque<double>> channels;
  std::vector<RankState> state(p);

  std::size_t done = 0;
  for (std::size_t r = 0; r < p; ++r) {
    if (schedule.per_rank[r].empty()) ++done;
  }

  while (done < p) {
    bool progressed = false;
    for (std::size_t r = 0; r < p; ++r) {
      auto& st = state[r];
      while (st.step < schedule.per_rank[r].size()) {
        const CommStep& s = schedule.per_rank[r][st.step];
        if (s.has_send() && !st.sent_current) {
          const double bytes = payload_bytes(s.send_count, elem_bytes);
          const double arrival =
              st.clock + net.o_s + net.L + (bytes - 1.0) * net.G;
          channels[{static_cast<int>(r), s.send_peer}].push_back(arrival);
          st.clock += std::max(net.o_s, net.g);
          st.sent_current = true;
          progressed = true;
        }
        if (s.has_recv()) {
          auto& ch = channels[{s.recv_peer, static_cast<int>(r)}];
          if (ch.empty()) break;
          const double arrival = ch.front();
          ch.pop_front();
          st.clock = std::max(st.clock, arrival) + net.o_r;
          progressed = true;
        }
        ++st.step;
        st.sent_current = false;
        if (st.step == schedule.per_rank[r].size()) ++done;
      }
    }
    if (!progressed && done < p) {
      throw std::runtime_error("schedule deadlock (timing): " +
                               schedule.name);
    }
  }

  double t = 0.0;
  for (const auto& st : state) t = std::max(t, st.clock);
  return t;
}

Algorithm select_algorithm(Collective kind, std::size_t ranks,
                           std::size_t count, std::size_t elem_bytes,
                           const fabric::LogGPParams& net, int root) {
  const auto candidates = algorithms_for(kind, ranks);
  POLARIS_CHECK(!candidates.empty());
  Algorithm best = candidates.front();
  double best_t = std::numeric_limits<double>::infinity();
  for (Algorithm a : candidates) {
    if (a == Algorithm::kBinomial && root != 0 &&
        (kind == Collective::kGather || kind == Collective::kScatter)) {
      continue;
    }
    const Schedule s = make_schedule(kind, a, ranks, count, root);
    const double t = predicted_seconds(s, net, elem_bytes);
    if (t < best_t) {
      best_t = t;
      best = a;
    }
  }
  return best;
}

}  // namespace polaris::coll
