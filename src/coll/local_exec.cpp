#include "polaris/coll/local_exec.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>

#include "polaris/support/check.hpp"

namespace polaris::coll {

double combine(ReduceOp op, double a, double b) {
  switch (op) {
    case ReduceOp::kSum:
      return a + b;
    case ReduceOp::kMax:
      return std::max(a, b);
    case ReduceOp::kMin:
      return std::min(a, b);
    case ReduceOp::kProd:
      return a * b;
  }
  return a;
}

namespace {

struct RankState {
  std::size_t step = 0;
  bool sent_current = false;  // send half of the current step done
};

}  // namespace

void execute_locally(const Schedule& schedule,
                     std::vector<std::vector<double>>& buffers,
                     ReduceOp op,
                     const std::vector<std::vector<double>>* input) {
  const std::size_t p = schedule.ranks;
  POLARIS_CHECK_MSG(buffers.size() == p, "one buffer per rank required");
  for (const auto& b : buffers) {
    POLARIS_CHECK_MSG(b.size() >= schedule.total_count,
                      "buffer smaller than schedule.total_count");
  }

  if (schedule.needs_local_copy) {
    POLARIS_CHECK_MSG(input != nullptr && input->size() == p,
                      "alltoall schedules need an input buffer per rank");
    const std::size_t block = schedule.total_count / p;
    for (std::size_t r = 0; r < p; ++r) {
      std::copy_n((*input)[r].begin() + static_cast<long>(r * block), block,
                  buffers[r].begin() + static_cast<long>(r * block));
    }
  }

  // FIFO channel per ordered pair.
  std::map<std::pair<int, int>, std::deque<std::vector<double>>> channels;
  std::vector<RankState> state(p);

  std::size_t done = 0;
  for (std::size_t r = 0; r < p; ++r) {
    if (schedule.per_rank[r].empty()) ++done;
  }

  while (done < p) {
    bool progressed = false;
    for (std::size_t r = 0; r < p; ++r) {
      auto& st = state[r];
      while (st.step < schedule.per_rank[r].size()) {
        const CommStep& s = schedule.per_rank[r][st.step];
        // Send half first (non-blocking: channel is unbounded).
        if (s.has_send() && !st.sent_current) {
          const std::vector<double>& src =
              s.send_from_input ? (*input)[r] : buffers[r];
          POLARIS_CHECK_MSG(!s.send_from_input || input != nullptr,
                            "send_from_input step without input buffers");
          std::vector<double> payload(
              src.begin() + static_cast<long>(s.send_offset),
              src.begin() + static_cast<long>(s.send_offset + s.send_count));
          channels[{static_cast<int>(r), s.send_peer}].push_back(
              std::move(payload));
          st.sent_current = true;
          progressed = true;
        }
        if (s.has_recv()) {
          auto& ch = channels[{s.recv_peer, static_cast<int>(r)}];
          if (ch.empty()) break;  // blocked on receive
          std::vector<double> payload = std::move(ch.front());
          ch.pop_front();
          POLARIS_CHECK_MSG(payload.size() == s.recv_count,
                            "payload size does not match recv step");
          for (std::size_t i = 0; i < s.recv_count; ++i) {
            double& dst = buffers[r][s.recv_offset + i];
            dst = s.recv_reduce ? combine(op, dst, payload[i]) : payload[i];
          }
          progressed = true;
        }
        ++st.step;
        st.sent_current = false;
        if (st.step == schedule.per_rank[r].size()) ++done;
      }
    }
    if (!progressed && done < p) {
      throw std::runtime_error("schedule deadlock: " + schedule.name);
    }
  }

  // All channels must be drained: every sent message consumed.
  for (const auto& [pair, ch] : channels) {
    POLARIS_CHECK_MSG(ch.empty(),
                      "undelivered messages remain in " + schedule.name);
  }
}

}  // namespace polaris::coll
