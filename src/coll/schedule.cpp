#include "polaris/coll/schedule.hpp"

#include <algorithm>
#include <map>

#include "polaris/support/check.hpp"

namespace polaris::coll {

std::size_t Schedule::max_steps() const {
  std::size_t m = 0;
  for (const auto& steps : per_rank) m = std::max(m, steps.size());
  return m;
}

std::uint64_t Schedule::total_elements_moved() const {
  std::uint64_t total = 0;
  for (const auto& steps : per_rank) {
    for (const auto& s : steps) {
      if (s.has_send()) total += s.send_count;
    }
  }
  return total;
}

void validate(const Schedule& schedule) {
  POLARIS_CHECK_MSG(schedule.per_rank.size() == schedule.ranks,
                    "per_rank size mismatch in " + schedule.name);
  const auto p = static_cast<int>(schedule.ranks);

  // Collect per-ordered-pair send and recv sequences (element counts).
  std::map<std::pair<int, int>, std::vector<std::size_t>> sends, recvs;
  for (int r = 0; r < p; ++r) {
    for (const auto& s : schedule.per_rank[r]) {
      if (s.has_send()) {
        POLARIS_CHECK_MSG(s.send_peer >= 0 && s.send_peer < p,
                          "send peer out of range in " + schedule.name);
        POLARIS_CHECK_MSG(s.send_peer != r,
                          "self-send in " + schedule.name);
        POLARIS_CHECK_MSG(
            s.send_offset + s.send_count <= schedule.total_count,
            "send range exceeds buffer in " + schedule.name);
        sends[{r, s.send_peer}].push_back(s.send_count);
      }
      if (s.has_recv()) {
        POLARIS_CHECK_MSG(s.recv_peer >= 0 && s.recv_peer < p,
                          "recv peer out of range in " + schedule.name);
        POLARIS_CHECK_MSG(s.recv_peer != r,
                          "self-recv in " + schedule.name);
        POLARIS_CHECK_MSG(
            s.recv_offset + s.recv_count <= schedule.total_count,
            "recv range exceeds buffer in " + schedule.name);
        recvs[{s.recv_peer, r}].push_back(s.recv_count);
      }
    }
  }

  for (const auto& [pair, counts] : sends) {
    const auto it = recvs.find(pair);
    POLARIS_CHECK_MSG(it != recvs.end(),
                      "sends with no matching recvs in " + schedule.name);
    POLARIS_CHECK_MSG(it->second == counts,
                      "send/recv sequence mismatch in " + schedule.name);
  }
  for (const auto& [pair, counts] : recvs) {
    POLARIS_CHECK_MSG(sends.find(pair) != sends.end(),
                      "recvs with no matching sends in " + schedule.name);
  }
}

}  // namespace polaris::coll
