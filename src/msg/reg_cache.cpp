#include "polaris/msg/reg_cache.hpp"

#include "polaris/support/check.hpp"

namespace polaris::msg {

RegistrationCache::RegistrationCache(std::size_t capacity_bytes,
                                     double base_cost, double per_page_cost)
    : capacity_bytes_(capacity_bytes),
      base_cost_(base_cost),
      per_page_cost_(per_page_cost) {
  POLARIS_CHECK(capacity_bytes >= kPageSize);
}

const RegistrationCache::Region* RegistrationCache::covering(
    std::uintptr_t first_page, std::uintptr_t last_page) const {
  // Regions never overlap (invalidate-on-register keeps them disjoint), so
  // scan is bounded by region count; registration caches are small.
  for (const auto& [key, region] : regions_) {
    if (region.first_page <= first_page && last_page <= region.last_page) {
      return &region;
    }
  }
  return nullptr;
}

double RegistrationCache::acquire(std::uintptr_t addr, std::size_t len) {
  POLARIS_CHECK(len > 0);
  const std::uintptr_t first = page_of(addr);
  const std::uintptr_t last = page_of(addr + len - 1);

  if (const Region* r = covering(first, last)) {
    ++stats_.hits;
    lru_.splice(lru_.begin(), lru_, r->lru_it);
    return 0.0;
  }
  ++stats_.misses;

  // Remove partial overlaps: the new region re-registers the union range.
  invalidate_overlaps_only(first, last);

  const std::size_t pages = last - first + 1;
  const std::size_t bytes = pages * kPageSize;
  while (pinned_bytes_ + bytes > capacity_bytes_ && !regions_.empty()) {
    evict_lru();
  }

  lru_.push_front(first);
  regions_.emplace(first, Region{first, last, lru_.begin()});
  pinned_bytes_ += bytes;
  stats_.bytes_registered = pinned_bytes_;
  return base_cost_ + per_page_cost_ * static_cast<double>(pages);
}

void RegistrationCache::invalidate(std::uintptr_t addr, std::size_t len) {
  if (len == 0) return;
  invalidate_overlaps_only(page_of(addr), page_of(addr + len - 1));
}

void RegistrationCache::invalidate_overlaps_only(std::uintptr_t first_page,
                                                 std::uintptr_t last_page) {
  for (auto it = regions_.begin(); it != regions_.end();) {
    const Region& r = it->second;
    const bool overlaps =
        !(r.last_page < first_page || last_page < r.first_page);
    if (overlaps) {
      pinned_bytes_ -= (r.last_page - r.first_page + 1) * kPageSize;
      lru_.erase(r.lru_it);
      it = regions_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  stats_.bytes_registered = pinned_bytes_;
}

bool RegistrationCache::contains(std::uintptr_t addr, std::size_t len) const {
  if (len == 0) return false;
  return covering(page_of(addr), page_of(addr + len - 1)) != nullptr;
}

void RegistrationCache::evict_lru() {
  POLARIS_CHECK(!lru_.empty());
  const std::uintptr_t key = lru_.back();
  lru_.pop_back();
  const auto it = regions_.find(key);
  POLARIS_CHECK(it != regions_.end());
  pinned_bytes_ -=
      (it->second.last_page - it->second.first_page + 1) * kPageSize;
  regions_.erase(it);
  ++stats_.evictions;
  stats_.bytes_registered = pinned_bytes_;
}

}  // namespace polaris::msg
