#include "polaris/msg/protocol.hpp"

#include <limits>

#include "polaris/support/check.hpp"

namespace polaris::msg {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kEager:
      return "eager";
    case Protocol::kRendezvous:
      return "rendezvous";
    case Protocol::kRdma:
      return "rdma";
  }
  return "?";
}

Protocol choose_protocol(const fabric::FabricParams& p, std::uint64_t bytes,
                         std::uint32_t eager_threshold_override) {
  const std::uint32_t threshold = eager_threshold_override != 0
                                      ? eager_threshold_override
                                      : p.eager_threshold;
  if (bytes <= threshold) return Protocol::kEager;
  return p.rdma ? Protocol::kRdma : Protocol::kRendezvous;
}

namespace {

double wire_time(const fabric::FabricParams& p, std::uint64_t bytes,
                 int switch_hops) {
  return p.path_latency(switch_hops) + static_cast<double>(bytes) / p.link_bw;
}

double registration_cost(const fabric::FabricParams& p, std::uint64_t bytes) {
  if (p.reg_base == 0.0 && p.reg_per_page == 0.0) return 0.0;
  const double pages = static_cast<double>((bytes + 4095) / 4096);
  // Both sides pin their buffer.
  return 2.0 * (p.reg_base + p.reg_per_page * pages);
}

}  // namespace

ProtocolCost cost_model(const fabric::FabricParams& p, Protocol proto,
                        std::uint64_t bytes, int switch_hops,
                        bool registration_cached) {
  POLARIS_CHECK(switch_hops >= 0);
  const double copy = static_cast<double>(bytes) / p.copy_bw;
  const double rtt_small =
      2.0 * (p.o_send + p.path_latency(switch_hops) + p.o_recv);

  ProtocolCost c;
  c.wire = wire_time(p, bytes, switch_hops);
  switch (proto) {
    case Protocol::kEager:
      // Copy into the injection/bounce path at both ends; bounce buffers
      // are pre-registered so no pin-down charge.
      c.send_overhead = p.o_send + copy;
      c.recv_overhead = p.o_recv + copy;
      break;
    case Protocol::kRendezvous:
      c.handshake = rtt_small;
      c.send_overhead = p.o_send;
      c.recv_overhead = p.o_recv;
      if (!p.os_bypass) {
        // Kernel path cannot avoid socket-buffer copies even after the
        // handshake.
        c.send_overhead += copy;
        c.recv_overhead += copy;
      } else if (!registration_cached) {
        c.registration = registration_cost(p, bytes);
      }
      break;
    case Protocol::kRdma:
      POLARIS_CHECK_MSG(p.rdma, "RDMA protocol on a non-RDMA fabric");
      c.handshake = rtt_small;
      c.send_overhead = p.o_send;
      c.recv_overhead = 0.0;  // payload lands with no receiver CPU
      if (!registration_cached) {
        c.registration = registration_cost(p, bytes);
      }
      break;
  }
  return c;
}

std::uint64_t crossover_bytes(const fabric::FabricParams& p,
                              int switch_hops) {
  const Protocol big = p.rdma ? Protocol::kRdma : Protocol::kRendezvous;
  std::uint64_t lo = 1;
  std::uint64_t hi = 1ull << 30;
  const auto wins = [&](std::uint64_t k) {
    return cost_model(p, big, k, switch_hops).total() <
           cost_model(p, Protocol::kEager, k, switch_hops).total();
  };
  if (!wins(hi)) return std::numeric_limits<std::uint64_t>::max();
  if (wins(lo)) return lo;
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    (wins(mid) ? hi : lo) = mid;
  }
  return hi;
}

}  // namespace polaris::msg
