// Point-to-point transfer protocols.
//
// A user-level messaging layer moves a message one of three ways:
//   eager       — payload piggybacks on the envelope into a bounce buffer
//                 at the receiver; one extra copy, no handshake.  Wins for
//                 small messages (latency = one traversal).
//   rendezvous  — envelope-only request; receiver replies "ready" when the
//                 receive is posted; payload then moves zero-copy.  Wins
//                 for large messages (no copy, bounded buffer use).
//   rdma        — rendezvous variant where the payload moves by remote DMA
//                 with no receiver CPU involvement (requires NIC support
//                 and registered memory).
// choose_protocol() applies the per-fabric eager threshold and capability
// flags; cost_model() gives the closed-form time decomposition used by
// tests and the analytic baselines benchmarks print alongside simulation.
#pragma once

#include <cstdint>

#include "polaris/fabric/params.hpp"

namespace polaris::msg {

enum class Protocol {
  kEager,
  kRendezvous,
  kRdma,
};

const char* to_string(Protocol p);

/// Picks the protocol for a message of `bytes` on fabric `p`, with an
/// optional threshold override (0 = use the fabric default).
Protocol choose_protocol(const fabric::FabricParams& p, std::uint64_t bytes,
                         std::uint32_t eager_threshold_override = 0);

/// Closed-form one-way cost decomposition of a protocol on an idle fabric
/// across `switch_hops` switches.  The simulated runtime reproduces these
/// components dynamically; this is the analytic cross-check.
struct ProtocolCost {
  double send_overhead = 0.0;  ///< CPU at sender (o_send + copies)
  double wire = 0.0;           ///< serialization + propagation
  double recv_overhead = 0.0;  ///< CPU at receiver (o_recv + copies)
  double handshake = 0.0;      ///< rendezvous RTS/CTS round trip
  double registration = 0.0;   ///< pin-down on a cold cache

  double total() const {
    return send_overhead + wire + recv_overhead + handshake + registration;
  }
};

ProtocolCost cost_model(const fabric::FabricParams& p, Protocol proto,
                        std::uint64_t bytes, int switch_hops = 1,
                        bool registration_cached = true);

/// The message size at which rendezvous first beats eager on fabric `p`
/// (by the cost model); used to validate per-fabric eager thresholds.
std::uint64_t crossover_bytes(const fabric::FabricParams& p,
                              int switch_hops = 1);

}  // namespace polaris::msg
