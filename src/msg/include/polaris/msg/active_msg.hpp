// Active messages.
//
// An active message carries a handler index; delivery runs the registered
// handler on the payload at the destination — the low-level primitive
// beneath user-level messaging layers (von Eicken et al.) and the natural
// API for fabric control traffic (rendezvous RTS/CTS are themselves active
// messages in both Polaris runtimes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "polaris/support/function.hpp"

namespace polaris::msg {

using AmHandlerId = std::uint32_t;

/// Handler invoked at the destination: (source rank, payload bytes).
using AmHandler =
    support::UniqueFunction<void(int src, std::span<const std::byte>)>;

/// Per-endpoint table of active-message handlers.  Handler ids are dense
/// and must be registered identically on every endpoint (SPMD convention,
/// checked by the runtimes).
class ActiveMessageTable {
 public:
  /// Registers a handler; returns its id (dense, starting at 0).
  AmHandlerId register_handler(AmHandler handler);

  /// Runs handler `id` for a message from `src`.  Throws on unknown id.
  void dispatch(AmHandlerId id, int src,
                std::span<const std::byte> payload);

  std::size_t size() const { return handlers_.size(); }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  std::vector<AmHandler> handlers_;
  std::uint64_t dispatched_ = 0;
};

}  // namespace polaris::msg
