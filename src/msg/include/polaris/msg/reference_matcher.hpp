// Reference tag matcher: the original linear-scan implementation, kept as
// the semantic oracle for the bucketed TagMatcher (tag_matcher.hpp).
//
// Every operation scans a deque — O(posted) per arrival, O(unexpected) per
// posted receive — which is the textbook-correct statement of MPI matching
// semantics: an arriving message matches the OLDEST matching posted
// receive; a newly posted receive matches the OLDEST matching unexpected
// message; receives may wildcard source and/or tag.  The randomized
// equivalence suite (tests/msg/matcher_equivalence_test.cpp) drives this
// and the production matcher through identical traffic and requires
// identical decisions, depths and stats.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "polaris/msg/tag_matcher.hpp"
#include "polaris/support/check.hpp"

namespace polaris::msg {

template <typename Cookie>
class ReferenceTagMatcher {
 public:
  using EnvelopeT = Envelope<Cookie>;

  /// Posts a receive for (src, tag); src/tag may be wildcards.
  /// If an unexpected message already matches, returns its envelope and the
  /// receive completes immediately; otherwise the receive is queued under
  /// `id` and std::nullopt is returned.
  std::optional<EnvelopeT> post_recv(RecvId id, int src, int tag) {
    ++stats_.posted;
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (matches(src, tag, it->src, it->tag)) {
        EnvelopeT env = std::move(*it);
        unexpected_.erase(it);
        ++stats_.matched_unexpected;
        return env;
      }
    }
    posted_.push_back(PostedRecv{id, src, tag});
    stats_.max_posted_depth = std::max(stats_.max_posted_depth,
                                       posted_.size());
    return std::nullopt;
  }

  /// Delivers an arriving message.  If a posted receive matches, returns
  /// its RecvId (the receive completes); otherwise the envelope joins the
  /// unexpected queue and std::nullopt is returned.
  std::optional<RecvId> arrive(EnvelopeT env) {
    ++stats_.arrived;
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (matches(it->src, it->tag, env.src, env.tag)) {
        const RecvId id = it->id;
        posted_.erase(it);
        ++stats_.matched_posted;
        matched_envelope_ = std::move(env);
        return id;
      }
    }
    unexpected_.push_back(std::move(env));
    stats_.max_unexpected_depth =
        std::max(stats_.max_unexpected_depth, unexpected_.size());
    return std::nullopt;
  }

  /// The envelope consumed by the most recent successful arrive() match.
  /// Valid until the next arrive().
  const EnvelopeT& last_matched() const { return matched_envelope_; }

  /// Removes a queued posted receive; false if it already matched.
  bool cancel_recv(RecvId id) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (it->id == id) {
        posted_.erase(it);
        ++stats_.cancelled;
        return true;
      }
    }
    return false;
  }

  /// Non-destructive probe: the oldest unexpected message matching
  /// (src, tag), or nullptr.  The view is valid until the next mutation.
  const EnvelopeT* probe(int src, int tag) const {
    for (const auto& env : unexpected_) {
      if (matches(src, tag, env.src, env.tag)) return &env;
    }
    return nullptr;
  }

  std::size_t posted_depth() const { return posted_.size(); }
  std::size_t unexpected_depth() const { return unexpected_.size(); }
  const MatchStats& stats() const { return stats_; }

 private:
  struct PostedRecv {
    RecvId id;
    int src;
    int tag;
  };

  /// Receive-side wildcard matching: recv (rs, rt) accepts message (ms, mt).
  static bool matches(int rs, int rt, int ms, int mt) {
    POLARIS_DCHECK(ms != kAnySource && mt != kAnyTag);
    return (rs == kAnySource || rs == ms) && (rt == kAnyTag || rt == mt);
  }

  std::deque<PostedRecv> posted_;
  std::deque<EnvelopeT> unexpected_;
  EnvelopeT matched_envelope_{};
  MatchStats stats_;
};

}  // namespace polaris::msg
