// Two-sided tagged-message matching engine.
//
// This is the heart of a user-level messaging layer: arriving messages are
// matched against posted receives by (source, tag) with MPI semantics —
// receives may wildcard either field; an arriving message matches the
// OLDEST matching posted receive; a newly posted receive matches the
// OLDEST matching unexpected message.  The engine is substrate-neutral: the
// simulated runtime and the real threaded runtime both instantiate it (the
// latter under its endpoint lock), parameterized on a per-message cookie.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "polaris/support/check.hpp"

namespace polaris::msg {

/// Wildcards for posted receives.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

using RecvId = std::uint64_t;

/// Metadata describing an arriving message.  Cookie carries whatever the
/// substrate needs to complete delivery (an in-flight simulation record, a
/// staged buffer pointer, ...).
template <typename Cookie>
struct Envelope {
  int src = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  Cookie cookie{};
};

/// Match outcome statistics, exposed for tests and instrumentation.
struct MatchStats {
  std::uint64_t posted = 0;
  std::uint64_t arrived = 0;
  std::uint64_t matched_posted = 0;      ///< arrivals that found a receive
  std::uint64_t matched_unexpected = 0;  ///< receives that found an arrival
  std::uint64_t cancelled = 0;
  std::size_t max_unexpected_depth = 0;
  std::size_t max_posted_depth = 0;
};

template <typename Cookie>
class TagMatcher {
 public:
  using EnvelopeT = Envelope<Cookie>;

  /// Posts a receive for (src, tag); src/tag may be wildcards.
  /// If an unexpected message already matches, returns its envelope and the
  /// receive completes immediately; otherwise the receive is queued under
  /// `id` and std::nullopt is returned.
  std::optional<EnvelopeT> post_recv(RecvId id, int src, int tag) {
    ++stats_.posted;
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (matches(src, tag, it->src, it->tag)) {
        EnvelopeT env = std::move(*it);
        unexpected_.erase(it);
        ++stats_.matched_unexpected;
        return env;
      }
    }
    posted_.push_back(PostedRecv{id, src, tag});
    stats_.max_posted_depth = std::max(stats_.max_posted_depth,
                                       posted_.size());
    return std::nullopt;
  }

  /// Delivers an arriving message.  If a posted receive matches, returns
  /// its RecvId (the receive completes); otherwise the envelope joins the
  /// unexpected queue and std::nullopt is returned.
  std::optional<RecvId> arrive(EnvelopeT env) {
    ++stats_.arrived;
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (matches(it->src, it->tag, env.src, env.tag)) {
        const RecvId id = it->id;
        posted_.erase(it);
        ++stats_.matched_posted;
        matched_envelope_ = std::move(env);
        return id;
      }
    }
    unexpected_.push_back(std::move(env));
    stats_.max_unexpected_depth =
        std::max(stats_.max_unexpected_depth, unexpected_.size());
    return std::nullopt;
  }

  /// The envelope consumed by the most recent successful arrive() match.
  /// Valid until the next arrive().
  const EnvelopeT& last_matched() const { return matched_envelope_; }

  /// Removes a queued posted receive; false if it already matched.
  bool cancel_recv(RecvId id) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (it->id == id) {
        posted_.erase(it);
        ++stats_.cancelled;
        return true;
      }
    }
    return false;
  }

  /// Non-destructive probe: does any unexpected message match (src, tag)?
  std::optional<EnvelopeT> probe(int src, int tag) const {
    for (const auto& env : unexpected_) {
      if (matches(src, tag, env.src, env.tag)) return env;
    }
    return std::nullopt;
  }

  std::size_t posted_depth() const { return posted_.size(); }
  std::size_t unexpected_depth() const { return unexpected_.size(); }
  const MatchStats& stats() const { return stats_; }

 private:
  struct PostedRecv {
    RecvId id;
    int src;
    int tag;
  };

  /// Receive-side wildcard matching: recv (rs, rt) accepts message (ms, mt).
  static bool matches(int rs, int rt, int ms, int mt) {
    POLARIS_DCHECK(ms != kAnySource && mt != kAnyTag);
    return (rs == kAnySource || rs == ms) && (rt == kAnyTag || rt == mt);
  }

  std::deque<PostedRecv> posted_;
  std::deque<EnvelopeT> unexpected_;
  EnvelopeT matched_envelope_{};
  MatchStats stats_;
};

}  // namespace polaris::msg
