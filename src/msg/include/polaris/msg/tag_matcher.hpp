// Two-sided tagged-message matching engine.
//
// This is the heart of a user-level messaging layer: arriving messages are
// matched against posted receives by (source, tag) with MPI semantics —
// receives may wildcard either field; an arriving message matches the
// OLDEST matching posted receive; a newly posted receive matches the
// OLDEST matching unexpected message.  The engine is substrate-neutral: the
// simulated runtime and the real threaded runtime both instantiate it (the
// latter under its endpoint lock), parameterized on a per-message cookie.
//
// Implementation: hash-bucketed queues instead of linear deque scans.  A
// posted receive's wildcard pattern partitions the posted set four ways —
// exact (src,tag), (ANY,tag), (src,ANY), (ANY,ANY) — and each receive sits
// in exactly one FIFO bucket keyed by its own packed (src,tag) pair
// (wildcards encoded as 0xffffffff halves, which no concrete message can
// carry).  An arrival therefore has at most FOUR candidate buckets, and
// because every bucket is FIFO the oldest matching receive overall is one
// of the four bucket heads: each receive carries a monotonic global
// sequence number, and comparing the (at most four) head sequence numbers
// picks the globally oldest match in O(1).  Unexpected messages are the
// mirror image: each message threads through four doubly-linked lists —
// one per receive pattern that could claim it — so a new receive of ANY
// pattern finds its oldest matching message at the head of the single list
// keyed by the receive's own (src,tag).  All nodes live in slab pools with
// free lists; eager O(1) unlinking on consume/cancel means lists hold only
// live entries and steady-state traffic never allocates.  cancel_recv is
// O(1) via a RecvId -> slot index.
//
// The original linear-scan implementation survives verbatim as
// msg::ReferenceTagMatcher (reference_matcher.hpp); a randomized
// equivalence suite proves decision-identical behaviour.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "polaris/support/check.hpp"
#include "polaris/support/flat_map.hpp"

namespace polaris::msg {

/// Wildcards for posted receives.
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

using RecvId = std::uint64_t;

/// Metadata describing an arriving message.  Cookie carries whatever the
/// substrate needs to complete delivery (an in-flight simulation record, a
/// staged buffer pointer, ...).
template <typename Cookie>
struct Envelope {
  int src = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  Cookie cookie{};
};

/// Match outcome statistics, exposed for tests and instrumentation.
struct MatchStats {
  std::uint64_t posted = 0;
  std::uint64_t arrived = 0;
  std::uint64_t matched_posted = 0;      ///< arrivals that found a receive
  std::uint64_t matched_unexpected = 0;  ///< receives that found an arrival
  std::uint64_t cancelled = 0;
  std::size_t max_unexpected_depth = 0;
  std::size_t max_posted_depth = 0;
};

template <typename Cookie>
class TagMatcher {
 public:
  using EnvelopeT = Envelope<Cookie>;

  /// Posts a receive for (src, tag); src/tag may be wildcards.
  /// If an unexpected message already matches, returns its envelope and the
  /// receive completes immediately; otherwise the receive is queued under
  /// `id` and std::nullopt is returned.  `id` must be unique among queued
  /// receives.
  std::optional<EnvelopeT> post_recv(RecvId id, int src, int tag) {
    ++stats_.posted;
    // Every unexpected message matching this receive pattern is threaded,
    // in arrival order, through the one list keyed by the pattern itself —
    // its head IS the oldest match.
    if (const Bucket* b = unexp_buckets_.find(pack(src, tag));
        b && b->head != kNil) {
      const std::uint32_t slot = b->head;
      EnvelopeT env = std::move(unexp_nodes_[slot].env);
      unlink_unexpected(slot);
      --unexpected_live_;
      ++stats_.matched_unexpected;
      return env;
    }
    const std::uint32_t slot = acquire_posted();
    PostedNode& n = posted_nodes_[slot];
    n.id = id;
    n.src = src;
    n.tag = tag;
    n.seq = next_seq_++;
    append_posted(slot);
    posted_index_[id] = slot;
    ++posted_live_;
    stats_.max_posted_depth = std::max(stats_.max_posted_depth, posted_live_);
    return std::nullopt;
  }

  /// Delivers an arriving message.  If a posted receive matches, returns
  /// its RecvId (the receive completes); otherwise the envelope joins the
  /// unexpected queue and std::nullopt is returned.
  std::optional<RecvId> arrive(EnvelopeT env) {
    ++stats_.arrived;
    POLARIS_DCHECK(env.src != kAnySource && env.tag != kAnyTag);
    // The four receive patterns that accept (src, tag).  Buckets are FIFO,
    // so the globally oldest matching receive is the bucket head with the
    // smallest global sequence number.
    const std::uint64_t keys[4] = {
        pack(env.src, env.tag), pack(kAnySource, env.tag),
        pack(env.src, kAnyTag), pack(kAnySource, kAnyTag)};
    std::uint32_t best = kNil;
    std::uint64_t best_seq = ~std::uint64_t{0};
    for (const std::uint64_t k : keys) {
      if (const Bucket* b = posted_buckets_.find(k); b && b->head != kNil) {
        if (posted_nodes_[b->head].seq < best_seq) {
          best_seq = posted_nodes_[b->head].seq;
          best = b->head;
        }
      }
    }
    if (best != kNil) {
      const RecvId id = posted_nodes_[best].id;
      unlink_posted(best);
      posted_index_.erase(id);
      --posted_live_;
      ++stats_.matched_posted;
      matched_envelope_ = std::move(env);
      return id;
    }
    const std::uint32_t slot = acquire_unexpected();
    unexp_nodes_[slot].env = std::move(env);
    for (int cat = 0; cat < 4; ++cat) append_unexpected(slot, cat);
    ++unexpected_live_;
    stats_.max_unexpected_depth =
        std::max(stats_.max_unexpected_depth, unexpected_live_);
    return std::nullopt;
  }

  /// The envelope consumed by the most recent successful arrive() match.
  /// Valid until the next arrive().
  const EnvelopeT& last_matched() const { return matched_envelope_; }

  /// Removes a queued posted receive; false if it already matched.  O(1).
  bool cancel_recv(RecvId id) {
    const std::uint32_t* slot = posted_index_.find(id);
    if (!slot) return false;
    unlink_posted(*slot);
    posted_index_.erase(id);
    --posted_live_;
    ++stats_.cancelled;
    return true;
  }

  /// Non-destructive probe: the oldest unexpected message matching
  /// (src, tag), or nullptr.  The view is valid until the next mutation.
  const EnvelopeT* probe(int src, int tag) const {
    const Bucket* b = unexp_buckets_.find(pack(src, tag));
    if (!b || b->head == kNil) return nullptr;
    return &unexp_nodes_[b->head].env;
  }

  std::size_t posted_depth() const { return posted_live_; }
  std::size_t unexpected_depth() const { return unexpected_live_; }
  const MatchStats& stats() const { return stats_; }

  // -- allocation observability ----------------------------------------------
  // Slab + bucket capacities: a workload whose capacities do not grow
  // between two samples performed zero matcher allocations in between.
  std::size_t posted_pool_capacity() const { return posted_nodes_.size(); }
  std::size_t unexpected_pool_capacity() const { return unexp_nodes_.size(); }
  std::size_t bucket_capacity() const {
    return posted_buckets_.bucket_capacity() +
           unexp_buckets_.bucket_capacity() +
           posted_index_.bucket_capacity();
  }

 private:
  static constexpr std::uint32_t kNil = 0xffff'ffffu;

  /// Packs a (src, tag) pair — wildcards included — into one map key.
  /// Concrete fields are non-negative, so the 0xffffffff halves produced by
  /// kAnySource/kAnyTag collide with no concrete pair.
  static std::uint64_t pack(int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }

  /// Which of the four pattern lists a receive (rs, rt) reads — and, on
  /// the unexpected side, the link index a message uses in the list for
  /// that pattern.
  static int category(int rs, int rt) {
    return rs == kAnySource ? (rt == kAnyTag ? 3 : 1)
                            : (rt == kAnyTag ? 2 : 0);
  }

  /// The key of the pattern-`cat` list that would claim message `env`.
  static std::uint64_t unexp_key(int src, int tag, int cat) {
    switch (cat) {
      case 0: return pack(src, tag);
      case 1: return pack(kAnySource, tag);
      case 2: return pack(src, kAnyTag);
      default: return pack(kAnySource, kAnyTag);
    }
  }

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  struct PostedNode {
    RecvId id = 0;
    int src = 0;
    int tag = 0;
    std::uint64_t seq = 0;  ///< global post order, compared across buckets
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  struct UnexpNode {
    EnvelopeT env{};
    std::uint32_t prev[4] = {kNil, kNil, kNil, kNil};
    std::uint32_t next[4] = {kNil, kNil, kNil, kNil};
  };

  std::uint32_t acquire_posted() {
    if (!posted_free_.empty()) {
      const std::uint32_t slot = posted_free_.back();
      posted_free_.pop_back();
      return slot;
    }
    posted_nodes_.emplace_back();
    return static_cast<std::uint32_t>(posted_nodes_.size() - 1);
  }

  std::uint32_t acquire_unexpected() {
    if (!unexp_free_.empty()) {
      const std::uint32_t slot = unexp_free_.back();
      unexp_free_.pop_back();
      return slot;
    }
    unexp_nodes_.emplace_back();
    return static_cast<std::uint32_t>(unexp_nodes_.size() - 1);
  }

  void append_posted(std::uint32_t slot) {
    PostedNode& n = posted_nodes_[slot];
    Bucket& b = posted_buckets_[pack(n.src, n.tag)];
    n.prev = b.tail;
    n.next = kNil;
    if (b.tail != kNil) {
      posted_nodes_[b.tail].next = slot;
    } else {
      b.head = slot;
    }
    b.tail = slot;
  }

  void unlink_posted(std::uint32_t slot) {
    PostedNode& n = posted_nodes_[slot];
    const std::uint64_t key = pack(n.src, n.tag);
    Bucket* b = posted_buckets_.find(key);
    POLARIS_DCHECK(b != nullptr);
    if (n.prev != kNil) {
      posted_nodes_[n.prev].next = n.next;
    } else {
      b->head = n.next;
    }
    if (n.next != kNil) {
      posted_nodes_[n.next].prev = n.prev;
    } else {
      b->tail = n.prev;
    }
    if (b->head == kNil) posted_buckets_.erase(key);  // keep the map dense
    posted_free_.push_back(slot);
  }

  void append_unexpected(std::uint32_t slot, int cat) {
    UnexpNode& n = unexp_nodes_[slot];
    Bucket& b = unexp_buckets_[unexp_key(n.env.src, n.env.tag, cat)];
    n.prev[cat] = b.tail;
    n.next[cat] = kNil;
    if (b.tail != kNil) {
      unexp_nodes_[b.tail].next[cat] = slot;
    } else {
      b.head = slot;
    }
    b.tail = slot;
  }

  /// Unthreads a consumed message from all four pattern lists; O(1) per
  /// list because links are doubly linked.
  void unlink_unexpected(std::uint32_t slot) {
    UnexpNode& n = unexp_nodes_[slot];
    for (int cat = 0; cat < 4; ++cat) {
      const std::uint64_t key = unexp_key(n.env.src, n.env.tag, cat);
      Bucket* b = unexp_buckets_.find(key);
      POLARIS_DCHECK(b != nullptr);
      if (n.prev[cat] != kNil) {
        unexp_nodes_[n.prev[cat]].next[cat] = n.next[cat];
      } else {
        b->head = n.next[cat];
      }
      if (n.next[cat] != kNil) {
        unexp_nodes_[n.next[cat]].prev[cat] = n.prev[cat];
      } else {
        b->tail = n.prev[cat];
      }
      if (b->head == kNil) unexp_buckets_.erase(key);
    }
    unexp_free_.push_back(slot);
  }

  // Posted receives: one FIFO bucket per pattern key; RecvId -> slot index
  // for O(1) cancellation.
  support::FlatMap64<Bucket> posted_buckets_;
  support::FlatMap64<std::uint32_t> posted_index_;
  std::vector<PostedNode> posted_nodes_;
  std::vector<std::uint32_t> posted_free_;

  // Unexpected messages: each node threads through the four pattern lists
  // that could claim it.
  support::FlatMap64<Bucket> unexp_buckets_;
  std::vector<UnexpNode> unexp_nodes_;
  std::vector<std::uint32_t> unexp_free_;

  std::uint64_t next_seq_ = 0;
  std::size_t posted_live_ = 0;
  std::size_t unexpected_live_ = 0;
  EnvelopeT matched_envelope_{};
  MatchStats stats_;
};

}  // namespace polaris::msg
