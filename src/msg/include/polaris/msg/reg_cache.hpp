// Memory-registration (pin-down) cache.
//
// User-level NICs with DMA engines (Myrinet GM, InfiniBand verbs) require
// buffers to be registered — pinned and translated — before the NIC may
// touch them.  Registration costs tens of microseconds, so production
// messaging layers cache registrations keyed by page range and evict
// lazily.  This class implements that cache with byte-capacity LRU
// eviction and reports the time cost of each lookup from the fabric's
// (reg_base, reg_per_page) model, so both the simulated runtime (as a time
// charge) and benchmarks (as an ablation) can use it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace polaris::msg {

struct RegCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;
  std::uint64_t bytes_registered = 0;  ///< currently pinned
};

class RegistrationCache {
 public:
  static constexpr std::size_t kPageSize = 4096;

  /// `capacity_bytes`: maximum pinned bytes before LRU eviction.
  /// `base_cost`/`per_page_cost`: seconds charged on a miss.
  RegistrationCache(std::size_t capacity_bytes, double base_cost,
                    double per_page_cost);

  /// Registers [addr, addr+len).  Returns the time cost in seconds: zero if
  /// the containing page range is already registered, base + pages*per_page
  /// otherwise (partial overlaps re-register the whole range: conservative,
  /// matching pin-down-cache practice).
  double acquire(std::uintptr_t addr, std::size_t len);

  /// Drops any registration overlapping [addr, addr+len) — models
  /// free()/munmap() hooks that keep the cache coherent.
  void invalidate(std::uintptr_t addr, std::size_t len);

  bool contains(std::uintptr_t addr, std::size_t len) const;
  std::size_t pinned_bytes() const { return pinned_bytes_; }
  const RegCacheStats& stats() const { return stats_; }

 private:
  struct Region {
    std::uintptr_t first_page;
    std::uintptr_t last_page;  // inclusive
    std::list<std::uintptr_t>::iterator lru_it;
  };

  static std::uintptr_t page_of(std::uintptr_t addr) {
    return addr / kPageSize;
  }

  /// The registered region covering [first, last] pages, if any.
  const Region* covering(std::uintptr_t first_page,
                         std::uintptr_t last_page) const;
  void invalidate_overlaps_only(std::uintptr_t first_page,
                                std::uintptr_t last_page);
  void evict_lru();

  std::size_t capacity_bytes_;
  double base_cost_;
  double per_page_cost_;
  std::size_t pinned_bytes_ = 0;

  // Keyed by first page of the registered region.
  std::unordered_map<std::uintptr_t, Region> regions_;
  std::list<std::uintptr_t> lru_;  // front = most recent, holds first_page
  RegCacheStats stats_;
};

}  // namespace polaris::msg
