// Completion queue.
//
// Nonblocking operations post completion records here; the application (or
// a progress thread) polls.  Used by the real threaded runtime; the
// simulated runtime completes through coroutine triggers instead.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

namespace polaris::msg {

enum class CompletionKind : std::uint8_t {
  kSend,
  kRecv,
  kPut,
  kGet,
  kAm,
};

struct Completion {
  CompletionKind kind = CompletionKind::kSend;
  std::uint64_t request = 0;  ///< the operation's request id
  int peer = -1;              ///< remote rank
  int tag = -1;
  std::uint64_t bytes = 0;
};

/// Single-consumer completion queue (callers provide external locking when
/// shared; the rt endpoint owns one per rank under its own lock).
class CompletionQueue {
 public:
  void push(Completion c) { queue_.push_back(c); }

  /// Removes and returns the oldest completion, if any.
  std::optional<Completion> poll() {
    if (queue_.empty()) return std::nullopt;
    Completion c = queue_.front();
    queue_.pop_front();
    return c;
  }

  std::size_t depth() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

 private:
  std::deque<Completion> queue_;
};

}  // namespace polaris::msg
