#include "polaris/msg/active_msg.hpp"

#include "polaris/support/check.hpp"

namespace polaris::msg {

AmHandlerId ActiveMessageTable::register_handler(AmHandler handler) {
  POLARIS_CHECK_MSG(static_cast<bool>(handler),
                    "active-message handler must be callable");
  handlers_.push_back(std::move(handler));
  return static_cast<AmHandlerId>(handlers_.size() - 1);
}

void ActiveMessageTable::dispatch(AmHandlerId id, int src,
                                  std::span<const std::byte> payload) {
  POLARIS_CHECK_MSG(id < handlers_.size(), "unknown active-message handler");
  ++dispatched_;
  handlers_[id](src, payload);
}

}  // namespace polaris::msg
