#include "polaris/simrt/sim_world.hpp"

#include <algorithm>

#include "polaris/coll/cost.hpp"
#include "polaris/support/check.hpp"
#include "polaris/support/units.hpp"

namespace polaris::simrt {

namespace {
/// Tag reserved for collective traffic.
constexpr int kCollTag = 0x4000'0000;
}  // namespace

// ----------------------------------------------------------------- SimComm

SimComm::SimComm(SimWorld& world, int rank, std::size_t ranks)
    : world_(&world),
      rank_(rank),
      send_seq_(ranks, 0),
      expect_seq_(ranks, 0),
      held_(ranks) {
  const auto& p = world.params();
  // 256 MiB pin-down budget per NIC, costs from the fabric model.
  reg_cache_ = std::make_unique<msg::RegistrationCache>(
      256u << 20, p.reg_base, p.reg_per_page);
}

int SimComm::size() const { return static_cast<int>(world_->ranks()); }

double SimComm::now() const {
  return des::to_seconds(world_->engine().now());
}

des::Engine& SimComm::engine() { return world_->engine(); }

const msg::RegCacheStats& SimComm::reg_stats() const {
  return reg_cache_->stats();
}

std::uintptr_t SimComm::default_addr() const {
  // A fixed, page-aligned synthetic address per rank: repeated sends reuse
  // the same registration, the common application buffer pattern.
  return (static_cast<std::uintptr_t>(rank_) + 1) << 32;
}

des::Task<void> SimComm::send(int dst, int tag, std::uint64_t bytes,
                              std::uintptr_t buffer_addr) {
  POLARIS_CHECK(dst >= 0 && dst < size());
  return send_impl(dst, tag, bytes, buffer_addr, send_seq_[dst]++);
}

des::Task<void> SimComm::send_impl(int dst, int tag, std::uint64_t bytes,
                                   std::uintptr_t buffer_addr,
                                   std::uint64_t seq) {
  auto inflight = std::make_shared<InFlight>();
  inflight->src = rank_;
  inflight->tag = tag;
  inflight->bytes = bytes;
  inflight->seq = seq;
  inflight->proto = msg::choose_protocol(world_->params(), bytes,
                                         world_->eager_threshold());
  inflight->matched = std::make_unique<des::Trigger>(world_->engine());
  inflight->delivered = std::make_unique<des::Trigger>(world_->engine());

  obs::ScopedSpan span(tracer_, track_, "send",
                       msg::to_string(inflight->proto));
  if (sends_counter_) {
    sends_counter_->add();
    msg_bytes_->record(static_cast<double>(bytes));
  }

  // Enforce the NIC's inter-message gap.
  auto& eng = world_->engine();
  if (eng.now() < earliest_next_send_) {
    co_await des::delay(eng, earliest_next_send_ - eng.now());
  }

  if (inflight->proto == msg::Protocol::kEager) {
    ++eager_count_;
    co_await send_eager(dst, std::move(inflight));
  } else {
    ++rendezvous_count_;
    co_await send_rendezvous(dst, std::move(inflight), buffer_addr);
  }
}

des::Task<void> SimComm::send_eager(int dst, InFlightPtr inflight) {
  const auto& p = world_->params();
  auto& eng = world_->engine();
  // CPU: overhead plus the copy into the injection/bounce path.
  const double copy = static_cast<double>(inflight->bytes) / p.copy_bw;
  {
    obs::ScopedSpan inject(tracer_, track_, "eager:inject", "protocol");
    co_await des::delay(eng, des::from_seconds(p.o_send + copy));
  }
  earliest_next_send_ =
      eng.now() + des::from_seconds(std::max(p.gap - p.o_send, 0.0));
  // The wire part proceeds without blocking the sender (buffered send).
  eng.spawn(deliver_eager(dst, std::move(inflight)));
}

des::Task<void> SimComm::deliver_eager(int dst, InFlightPtr inflight) {
  co_await world_->network().transfer(
      static_cast<fabric::NodeId>(rank_), static_cast<fabric::NodeId>(dst),
      inflight->bytes + SimWorld::kHeaderBytes);
  inflight->delivered->fire();
  world_->comm(static_cast<std::size_t>(dst)).arrive_ordered(
      std::move(inflight));
}

des::Task<void> SimComm::send_rendezvous(int dst, InFlightPtr inflight,
                                         std::uintptr_t buffer_addr) {
  const auto& p = world_->params();
  auto& eng = world_->engine();
  const auto src_node = static_cast<fabric::NodeId>(rank_);
  const auto dst_node = static_cast<fabric::NodeId>(dst);
  // Protocol-phase prefix: the RDMA variant shares the rendezvous
  // handshake but lands the payload without receiver CPU.
  const bool is_rdma = inflight->proto == msg::Protocol::kRdma;
  const char* pre = is_rdma ? "rdma" : "rdv";

  // RTS (header-only).
  obs::ScopedSpan rts(tracer_, track_, std::string(pre) + ":rts",
                      "protocol");
  co_await des::delay(eng, des::from_seconds(p.o_send));
  earliest_next_send_ =
      eng.now() + des::from_seconds(std::max(p.gap - p.o_send, 0.0));
  co_await world_->network().transfer(src_node, dst_node,
                                      SimWorld::kHeaderBytes);
  world_->comm(static_cast<std::size_t>(dst))
      .arrive_ordered(inflight);  // keep our reference for the payload
  rts.end();

  // Wait for the receive to be posted, then the CTS travels back.
  {
    obs::ScopedSpan sync(tracer_, track_, std::string(pre) + ":sync",
                         "protocol");
    co_await inflight->matched->wait();
    co_await world_->network().transfer(dst_node, src_node,
                                        SimWorld::kHeaderBytes);
  }

  // Pin the source buffer (cache-amortized), then move the payload.
  // Kernel-path fabrics cannot DMA from user memory: they still pay the
  // socket-buffer staging copy here (and the receiver pays its own).
  if (!p.os_bypass) {
    obs::ScopedSpan stage(tracer_, track_, std::string(pre) + ":stage",
                          "protocol");
    co_await des::delay(
        eng, des::from_seconds(static_cast<double>(inflight->bytes) /
                               p.copy_bw));
  } else {
    const std::uintptr_t addr =
        buffer_addr != 0 ? buffer_addr : default_addr();
    const double reg = reg_cache_->acquire(addr, inflight->bytes);
    if (tracer_) {
      tracer_->instant(track_, reg > 0.0 ? "reg-miss" : "reg-hit", "reg");
    }
    if (reg > 0.0) {
      obs::ScopedSpan pin(tracer_, track_, std::string(pre) + ":reg",
                          "protocol");
      co_await des::delay(eng, des::from_seconds(reg));
    }
  }
  {
    obs::ScopedSpan payload(tracer_, track_, std::string(pre) + ":payload",
                            "protocol");
    co_await world_->network().transfer(src_node, dst_node,
                                        inflight->bytes);
  }
  inflight->delivered->fire();
}

void SimComm::arrive_ordered(InFlightPtr inflight) {
  const int src = inflight->src;
  if (inflight->seq != expect_seq_[src]) {
    held_[src].emplace(inflight->seq, std::move(inflight));
    return;
  }
  deliver_to_matcher(std::move(inflight));
  ++expect_seq_[src];
  auto& held = held_[src];
  while (!held.empty() && held.begin()->first == expect_seq_[src]) {
    deliver_to_matcher(std::move(held.begin()->second));
    held.erase(held.begin());
    ++expect_seq_[src];
  }
}

void SimComm::deliver_to_matcher(InFlightPtr inflight) {
  msg::Envelope<InFlightPtr> env;
  env.src = inflight->src;
  env.tag = inflight->tag;
  env.bytes = inflight->bytes;
  env.cookie = inflight;
  if (auto rid = matcher_.arrive(std::move(env))) {
    auto it = pending_.find(*rid);
    POLARIS_CHECK_MSG(it != pending_.end(), "matched recv with no state");
    it->second.inflight = std::move(inflight);
    it->second.trigger->fire();
  }
}

SimComm::RecvTicket SimComm::post_recv_now(int src, int tag) {
  RecvTicket ticket;
  const msg::RecvId id = next_recv_id_++;
  if (auto env = matcher_.post_recv(id, src, tag)) {
    ticket.inflight = env->cookie;
  } else {
    pending_.emplace(id, PendingRecv{std::make_unique<des::Trigger>(
                             world_->engine()),
                         nullptr});
    ticket.pending_id = id;
  }
  return ticket;
}

des::Task<SimRecvStatus> SimComm::recv(int src, int tag) {
  return recv_impl(post_recv_now(src, tag));
}

des::Task<SimRecvStatus> SimComm::recv_impl(RecvTicket ticket) {
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, "recv", "p2p");
  obs::ScopedSpan wait_span(tracer_, track_, "recv:wait", "protocol");
  InFlightPtr inf = std::move(ticket.inflight);
  if (!inf) {
    const msg::RecvId id = ticket.pending_id;
    co_await pending_.at(id).trigger->wait();
    inf = std::move(pending_.at(id).inflight);
    pending_.erase(id);
  }

  const auto& p = world_->params();
  if (inf->proto != msg::Protocol::kEager && p.os_bypass &&
      (p.reg_base > 0.0 || p.reg_per_page > 0.0)) {
    // Receiver pins its landing buffer before replying CTS.
    const double reg = reg_cache_->acquire(default_addr() + (1u << 30),
                                           inf->bytes);
    if (tracer_) {
      tracer_->instant(track_, reg > 0.0 ? "reg-miss" : "reg-hit", "reg");
    }
    if (reg > 0.0) co_await des::delay(eng, des::from_seconds(reg));
  }
  inf->matched->fire();
  co_await inf->delivered->wait();
  wait_span.end();

  // Receiver CPU cost by protocol.
  double cpu = 0.0;
  switch (inf->proto) {
    case msg::Protocol::kEager:
      cpu = p.o_recv + static_cast<double>(inf->bytes) / p.copy_bw;
      break;
    case msg::Protocol::kRendezvous:
      cpu = p.o_recv;
      if (!p.os_bypass) {
        cpu += static_cast<double>(inf->bytes) / p.copy_bw;
      }
      break;
    case msg::Protocol::kRdma:
      cpu = 0.0;  // payload landed by remote DMA
      break;
  }
  if (cpu > 0.0) {
    obs::ScopedSpan cpu_span(tracer_, track_, "recv:cpu", "protocol");
    co_await des::delay(eng, des::from_seconds(cpu));
  }

  SimRecvStatus st;
  st.src = inf->src;
  st.tag = inf->tag;
  st.bytes = inf->bytes;
  co_return st;
}

SimRequest SimComm::isend(int dst, int tag, std::uint64_t bytes,
                          std::uintptr_t buffer_addr) {
  POLARIS_CHECK(dst >= 0 && dst < size());
  SimRequest req;
  req.done_ = std::make_shared<des::Trigger>(world_->engine());
  req.status_ = std::make_shared<SimRecvStatus>();
  world_->engine().spawn(
      [](SimComm& c, int d, int t, std::uint64_t b, std::uintptr_t addr,
         std::uint64_t seq, std::shared_ptr<des::Trigger> done)
          -> des::Task<void> {
        co_await c.send_impl(d, t, b, addr, seq);
        done->fire();
      }(*this, dst, tag, bytes, buffer_addr, send_seq_[dst]++, req.done_));
  return req;
}

SimRequest SimComm::irecv(int src, int tag) {
  SimRequest req;
  req.done_ = std::make_shared<des::Trigger>(world_->engine());
  req.status_ = std::make_shared<SimRecvStatus>();
  // Post to the matcher NOW so posting order equals program order; only
  // the completion wait runs as a background process.
  RecvTicket ticket = post_recv_now(src, tag);
  world_->engine().spawn(
      [](SimComm& c, RecvTicket t, std::shared_ptr<des::Trigger> done,
         std::shared_ptr<SimRecvStatus> status) -> des::Task<void> {
        *status = co_await c.recv_impl(std::move(t));
        done->fire();
      }(*this, std::move(ticket), req.done_, req.status_));
  return req;
}

des::Task<SimRecvStatus> SimComm::wait(SimRequest request) {
  POLARIS_CHECK_MSG(request.valid(), "wait on an empty request");
  obs::ScopedSpan span(tracer_, track_, "wait", "p2p");
  co_await request.done_->wait();
  co_return *request.status_;
}

des::Task<void> SimComm::wait_all(std::vector<SimRequest> requests) {
  obs::ScopedSpan span(tracer_, track_, "wait_all", "p2p");
  for (auto& r : requests) {
    POLARIS_CHECK_MSG(r.valid(), "wait_all on an empty request");
    co_await r.done_->wait();
  }
}

des::Task<void> SimComm::put(int dst, std::uint64_t bytes,
                             std::uintptr_t buffer_addr) {
  const auto& p = world_->params();
  POLARIS_CHECK_MSG(p.rdma, "put() requires an RDMA-capable fabric");
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, "put", "rdma");
  co_await des::delay(eng, des::from_seconds(p.o_send));
  const std::uintptr_t addr =
      buffer_addr != 0 ? buffer_addr : default_addr();
  const double reg = reg_cache_->acquire(addr, bytes);
  if (reg > 0.0) co_await des::delay(eng, des::from_seconds(reg));
  co_await world_->network().transfer(static_cast<fabric::NodeId>(rank_),
                                      static_cast<fabric::NodeId>(dst),
                                      bytes + SimWorld::kHeaderBytes);
}

des::Task<void> SimComm::get(int src, std::uint64_t bytes,
                             std::uintptr_t buffer_addr) {
  const auto& p = world_->params();
  POLARIS_CHECK_MSG(p.rdma, "get() requires an RDMA-capable fabric");
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, "get", "rdma");
  co_await des::delay(eng, des::from_seconds(p.o_send));
  const std::uintptr_t addr =
      buffer_addr != 0 ? buffer_addr : default_addr();
  const double reg = reg_cache_->acquire(addr, bytes);
  if (reg > 0.0) co_await des::delay(eng, des::from_seconds(reg));
  // Request header to the source, payload back; the source CPU never runs.
  co_await world_->network().transfer(static_cast<fabric::NodeId>(rank_),
                                      static_cast<fabric::NodeId>(src),
                                      SimWorld::kHeaderBytes);
  co_await world_->network().transfer(static_cast<fabric::NodeId>(src),
                                      static_cast<fabric::NodeId>(rank_),
                                      bytes + SimWorld::kHeaderBytes);
}

std::uint32_t SimComm::register_am(AmHandler handler) {
  POLARIS_CHECK_MSG(static_cast<bool>(handler), "handler must be callable");
  am_handlers_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(am_handlers_.size() - 1);
}

des::Task<void> SimComm::am_send(int dst, std::uint32_t handler,
                                 std::uint64_t bytes) {
  POLARIS_CHECK(dst >= 0 && dst < size());
  const auto& p = world_->params();
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, "am_send", "am");
  const double copy = static_cast<double>(bytes) / p.copy_bw;
  co_await des::delay(eng, des::from_seconds(p.o_send + copy));
  co_await world_->network().transfer(static_cast<fabric::NodeId>(rank_),
                                      static_cast<fabric::NodeId>(dst),
                                      bytes + SimWorld::kHeaderBytes);
  SimComm& peer = world_->comm(static_cast<std::size_t>(dst));
  POLARIS_CHECK_MSG(handler < peer.am_handlers_.size(),
                    "unknown active-message handler at destination");
  // Handler runs on the destination CPU.
  co_await des::delay(eng, des::from_seconds(p.o_recv));
  ++peer.am_dispatched_;
  peer.am_handlers_[handler](rank_, bytes);
}

des::Task<void> SimComm::compute(double flops, double mem_bytes) {
  const double t = world_->node().kernel_time(flops, mem_bytes);
  obs::ScopedSpan span(tracer_, track_, "compute", "cpu");
  co_await des::delay(world_->engine(), des::from_seconds(t));
}

des::Task<void> SimComm::sleep(double seconds) {
  co_await des::delay(world_->engine(), des::from_seconds(seconds));
}

// -------------------------------------------------------------- collectives

des::Task<void> SimComm::run_schedule(const coll::Schedule& schedule,
                                      std::size_t elem_bytes) {
  POLARIS_CHECK(schedule.ranks == world_->ranks());
  auto& eng = world_->engine();
  for (const coll::CommStep& step : schedule.per_rank[rank_]) {
    if (step.has_send() && step.has_recv()) {
      // Post both concurrently (MPI_Sendrecv) and join.
      std::uint32_t remaining = 2;
      des::Trigger done(eng);
      eng.spawn([](SimComm& c, const coll::CommStep& s,
                   std::size_t eb, std::uint32_t& rem,
                   des::Trigger& trig) -> des::Task<void> {
        co_await c.send(s.send_peer, kCollTag,
                        static_cast<std::uint64_t>(s.send_count) * eb);
        if (--rem == 0) trig.fire();
      }(*this, step, elem_bytes, remaining, done));
      eng.spawn([](SimComm& c, const coll::CommStep& s, std::uint32_t& rem,
                   des::Trigger& trig) -> des::Task<void> {
        co_await c.recv(s.recv_peer, kCollTag);
        if (--rem == 0) trig.fire();
      }(*this, step, remaining, done));
      co_await done.wait();
    } else if (step.has_send()) {
      co_await send(step.send_peer, kCollTag,
                    static_cast<std::uint64_t>(step.send_count) * elem_bytes);
    } else if (step.has_recv()) {
      co_await recv(step.recv_peer, kCollTag);
    }
  }
}

des::Task<void> SimComm::barrier() {
  obs::ScopedSpan span(tracer_, track_, "barrier", "coll");
  co_await run_schedule(
      world_->collective_schedule(coll::Collective::kBarrier, 0, 0), 1);
}

des::Task<void> SimComm::broadcast(std::uint64_t bytes, int root) {
  obs::ScopedSpan span(tracer_, track_, "broadcast", "coll");
  co_await run_schedule(
      world_->collective_schedule(coll::Collective::kBroadcast, bytes, root),
      1);
}

des::Task<void> SimComm::allreduce(std::uint64_t bytes) {
  obs::ScopedSpan span(tracer_, track_, "allreduce", "coll");
  co_await run_schedule(
      world_->collective_schedule(coll::Collective::kAllreduce, bytes, 0),
      1);
}

des::Task<void> SimComm::allgather(std::uint64_t block_bytes) {
  obs::ScopedSpan span(tracer_, track_, "allgather", "coll");
  co_await run_schedule(
      world_->collective_schedule(coll::Collective::kAllgather, block_bytes,
                                  0),
      1);
}

des::Task<void> SimComm::alltoall(std::uint64_t block_bytes) {
  obs::ScopedSpan span(tracer_, track_, "alltoall", "coll");
  co_await run_schedule(
      world_->collective_schedule(coll::Collective::kAlltoall, block_bytes,
                                  0),
      1);
}

// ------------------------------------------------------------------ SimWorld

SimWorld::SimWorld(std::size_t ranks, fabric::FabricParams fabric_params,
                   std::unique_ptr<fabric::Topology> topology,
                   hw::NodeModel node, std::uint32_t eager_override)
    : node_(node) {
  POLARIS_CHECK(ranks >= 1);
  topo_ = topology ? std::move(topology)
                   : fabric::make_default_topology(std::max<std::size_t>(
                         ranks, 2));
  POLARIS_CHECK_MSG(topo_->node_count() >= ranks,
                    "topology too small for rank count");
  eager_threshold_ = eager_override != 0 ? eager_override
                                         : fabric_params.eager_threshold;
  network_ = std::make_unique<fabric::SimNetwork>(
      engine_, std::move(fabric_params), *topo_);
  comms_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    comms_.push_back(std::unique_ptr<SimComm>(
        new SimComm(*this, static_cast<int>(r), ranks)));
  }
}

void SimWorld::launch(std::function<des::Task<void>(SimComm&)> program) {
  programs_.push_back(std::move(program));
  auto& prog = programs_.back();
  for (auto& c : comms_) {
    engine_.spawn(prog(*c));
  }
}

void SimWorld::attach_tracer(obs::Tracer& tracer) {
  for (auto& c : comms_) {
    c->tracer_ = &tracer;
    c->track_ =
        tracer.add_track("ranks", "rank " + std::to_string(c->rank_));
  }
  network_->attach_tracer(tracer);
}

void SimWorld::attach_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
  for (auto& c : comms_) {
    c->sends_counter_ = &metrics.counter("simrt.sends");
    c->msg_bytes_ = &metrics.histogram("simrt.msg_bytes");
  }
}

double SimWorld::run() {
  const des::SimTime t0 = engine_.now();
  engine_.run();
  if (metrics_) {
    // Totals mirrored as gauges: idempotent across repeated run() calls.
    const des::EngineStats es = engine_.stats();
    metrics_->gauge("des.events_executed").set(
        static_cast<double>(es.executed));
    metrics_->gauge("des.events_scheduled").set(
        static_cast<double>(es.scheduled));
    metrics_->gauge("des.max_queue_depth").set(
        static_cast<double>(es.max_queue_depth));
    metrics_->gauge("des.pool_capacity").set(
        static_cast<double>(es.pool_capacity));
    metrics_->gauge("des.pool_in_use").set(
        static_cast<double>(es.pool_in_use));
    metrics_->gauge("des.max_pool_in_use").set(
        static_cast<double>(es.max_pool_in_use));
    metrics_->gauge("des.sbo_misses").set(
        static_cast<double>(es.sbo_misses));
    metrics_->gauge("des.tombstones_reaped").set(
        static_cast<double>(es.cancelled_skipped));
    const fabric::NetworkStats& ns = network_->stats();
    metrics_->gauge("fabric.messages").set(static_cast<double>(ns.messages));
    metrics_->gauge("fabric.bytes").set(static_cast<double>(ns.bytes));
    metrics_->gauge("fabric.packets").set(static_cast<double>(ns.packets));
    metrics_->gauge("fabric.circuit_hits").set(
        static_cast<double>(ns.circuit_hits));
    metrics_->gauge("fabric.circuit_misses").set(
        static_cast<double>(ns.circuit_misses));
    metrics_->gauge("fabric.link_busy_s").set(ns.total_link_busy_s);
    metrics_->gauge("fabric.messages_bypassed").set(
        static_cast<double>(ns.messages_bypassed));
    metrics_->gauge("fabric.messages_walked").set(
        static_cast<double>(ns.messages_walked));
    metrics_->gauge("fabric.flights_materialized").set(
        static_cast<double>(ns.flights_materialized));
    metrics_->gauge("fabric.walker_hop_events").set(
        static_cast<double>(ns.walker_hop_events));
    metrics_->gauge("fabric.bypass_rate").set(ns.bypass_rate());
    std::uint64_t eager = 0, rdv = 0, reg_hits = 0, reg_misses = 0;
    for (const auto& c : comms_) {
      eager += c->eager_count_;
      rdv += c->rendezvous_count_;
      reg_hits += c->reg_stats().hits;
      reg_misses += c->reg_stats().misses;
    }
    metrics_->gauge("simrt.eager_sends").set(static_cast<double>(eager));
    metrics_->gauge("simrt.rendezvous_sends").set(static_cast<double>(rdv));
    metrics_->gauge("msg.reg_cache.hits").set(static_cast<double>(reg_hits));
    metrics_->gauge("msg.reg_cache.misses").set(
        static_cast<double>(reg_misses));
  }
  return des::to_seconds(engine_.now() - t0);
}

const coll::Schedule& SimWorld::collective_schedule(coll::Collective kind,
                                                    std::size_t count,
                                                    int root) {
  const auto key = std::make_tuple(static_cast<int>(kind), count, root);
  if (auto it = schedule_cache_.find(key); it != schedule_cache_.end()) {
    return it->second;
  }
  coll::Schedule schedule;
  if (kind == coll::Collective::kBarrier) {
    schedule = coll::barrier(ranks());
  } else {
    const auto a =
        coll::select_algorithm(kind, ranks(), count, 1, loggp(), root);
    schedule = coll::make_schedule(kind, a, ranks(), count, root);
  }
  auto [it, inserted] = schedule_cache_.emplace(key, std::move(schedule));
  return it->second;
}

fabric::LogGPParams SimWorld::loggp() const {
  const std::size_t far = comms_.size() > 1 ? comms_.size() - 1 : 1;
  const int hops = static_cast<int>(topo_->switch_hops(
      0, static_cast<fabric::NodeId>(far)));
  return fabric::extract_loggp(network_->params(), std::max(hops, 1));
}

}  // namespace polaris::simrt
