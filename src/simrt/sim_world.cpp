#include "polaris/simrt/sim_world.hpp"

#include <algorithm>

#include "polaris/coll/cost.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/support/check.hpp"
#include "polaris/support/units.hpp"

namespace polaris::simrt {

namespace {
/// Tag reserved for collective traffic.
constexpr int kCollTag = 0x4000'0000;

SimStatus from_xfer(fabric::XferStatus status) {
  switch (status) {
    case fabric::XferStatus::kOk:
      return SimStatus::kOk;
    case fabric::XferStatus::kNodeDown:
      return SimStatus::kPeerDown;
    case fabric::XferStatus::kLinkDown:
      return SimStatus::kLinkDown;
  }
  return SimStatus::kPeerDown;
}
}  // namespace

const char* to_string(SimStatus status) {
  switch (status) {
    case SimStatus::kOk:
      return "ok";
    case SimStatus::kPeerDown:
      return "peer-down";
    case SimStatus::kLinkDown:
      return "link-down";
    case SimStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

// ----------------------------------------------------------------- SimComm

SimComm::SimComm(SimWorld& world, int rank, std::size_t ranks)
    : world_(&world),
      rank_(rank),
      send_seq_(ranks, 0),
      expect_seq_(ranks, 0),
      held_(ranks) {
  const auto& p = world.params();
  // 256 MiB pin-down budget per NIC, costs from the fabric model.
  reg_cache_ = std::make_unique<msg::RegistrationCache>(
      256u << 20, p.reg_base, p.reg_per_page);
}

int SimComm::size() const { return static_cast<int>(world_->ranks()); }

double SimComm::now() const {
  return des::to_seconds(world_->engine().now());
}

des::Engine& SimComm::engine() { return world_->engine(); }

const msg::RegCacheStats& SimComm::reg_stats() const {
  return reg_cache_->stats();
}

std::uintptr_t SimComm::default_addr() const {
  // A fixed, page-aligned synthetic address per rank: repeated sends reuse
  // the same registration, the common application buffer pattern.
  return (static_cast<std::uintptr_t>(rank_) + 1) << 32;
}

des::Task<SimStatus> SimComm::send(int dst, int tag, std::uint64_t bytes,
                                   std::uintptr_t buffer_addr) {
  POLARIS_CHECK(dst >= 0 && dst < size());
  return send_impl(dst, tag, bytes, buffer_addr, send_seq_[dst]++);
}

des::Task<SimStatus> SimComm::send_impl(int dst, int tag,
                                        std::uint64_t bytes,
                                        std::uintptr_t buffer_addr,
                                        std::uint64_t seq) {
  const std::uint32_t slot = world_->acquire_inflight();
  detail::InFlight& f = world_->inflight(slot);
  f.dst_comm = &world_->comm(static_cast<std::size_t>(dst));
  f.src = rank_;
  f.tag = tag;
  f.bytes = bytes;
  f.seq = seq;
  f.proto = msg::choose_protocol(world_->params(), bytes,
                                 world_->eager_threshold());

  obs::ScopedSpan span(tracer_, track_, ids_->send, ids_->proto_cat(f.proto));
  if (sends_counter_) {
    sends_counter_->add();
    msg_bytes_->record(bytes);
  }

  // Enforce the NIC's inter-message gap.
  auto& eng = world_->engine();
  if (eng.now() < earliest_next_send_) {
    co_await des::delay(eng, earliest_next_send_ - eng.now());
  }

  if (f.proto == msg::Protocol::kEager) {
    ++eager_count_;
    // Buffered semantics: the send "completes" once injected; a wire
    // failure is retried (and ultimately dropped) by the raw chain.
    co_await send_eager(f);
    co_return SimStatus::kOk;
  }
  ++rendezvous_count_;
  co_return co_await send_rendezvous(f, buffer_addr);
}

des::Task<void> SimComm::send_eager(detail::InFlight& f) {
  const auto& p = world_->params();
  auto& eng = world_->engine();
  // CPU: overhead plus the copy into the injection/bounce path.
  const double copy = static_cast<double>(f.bytes) / p.copy_bw;
  {
    obs::ScopedSpan inject(tracer_, track_, ids_->eager_inject,
                           ids_->cat_protocol);
    co_await des::delay(eng, des::from_seconds(p.o_send + copy));
  }
  earliest_next_send_ =
      eng.now() + des::from_seconds(std::max(p.gap - p.o_send, 0.0));
  // The wire part proceeds without blocking the sender (buffered send):
  // a zero-delay raw event injects into the fabric, whose completion
  // callback lands the message — no coroutine frame for the wire leg.
  // The event sequence (one +0 event, then the fabric's) is exactly what
  // the old spawned deliver_eager coroutine produced.
  eng.schedule_raw_after(0, &SimComm::eager_wire_cb, &f);
}

void SimComm::eager_wire_cb(void* ctx) {
  auto& f = *static_cast<detail::InFlight*>(ctx);
  SimComm& dst = *f.dst_comm;
  SimWorld& w = *dst.world_;
  if (w.admission_enabled()) {
    const AdmissionControl& ac = w.admission();
    if (f.deferrals < ac.max_deferrals &&
        w.eager_dest_load(dst.rank_) >= ac.max_per_dest) {
      // The destination is hot: hold this injection back and re-test
      // after an exponentially growing pause.
      double backoff = ac.backoff;
      for (std::uint8_t i = 0; i < f.deferrals; ++i) {
        backoff *= ac.backoff_factor;
      }
      ++f.deferrals;
      w.count_deferral();
      w.engine().schedule_raw_after(des::from_seconds(backoff),
                                    &SimComm::eager_wire_cb, &f);
      return;
    }
    // Admitted: counted until eager_delivered_cb runs (a failed wire leg
    // decrements there and re-increments when the retry re-enters here,
    // so the load count tracks actual wire occupancy).
    w.note_eager_inject(dst.rank_);
  }
  w.network().transfer_raw(
      dst.node_of(f.src), dst.node_of(dst.rank_),
      f.bytes + SimWorld::kHeaderBytes, &SimComm::eager_delivered_cb, &f);
}

void SimComm::eager_delivered_cb(void* ctx, fabric::XferStatus status) {
  auto& f = *static_cast<detail::InFlight*>(ctx);
  SimComm& dst = *f.dst_comm;
  SimWorld& w = *dst.world_;
  if (w.admission_enabled()) w.note_eager_done(dst.rank_);
  if (status != fabric::XferStatus::kOk) {
    const RetryPolicy& rp = w.retry_policy();
    if (f.retries_used < rp.max_retries) {
      double backoff = rp.backoff;
      for (std::uint8_t i = 0; i < f.retries_used; ++i) {
        backoff *= rp.backoff_factor;
      }
      ++f.retries_used;
      w.count_retry();
      // Re-enter the wire chain after the backoff: same injection path,
      // fresh fabric attempt.
      w.engine().schedule_raw_after(des::from_seconds(backoff),
                                    &SimComm::eager_wire_cb, &f);
      return;
    }
    // Retries exhausted: drop.  The sequence number still advances (the
    // drop is a tombstone in arrival order) so later traffic from this
    // source is not wedged behind the dead message.
    f.status = from_xfer(status);
    f.dropped = true;
    w.count_drop();
    const std::uint32_t slot = f.slot;
    dst.arrive_ordered(slot);
    w.release_inflight_ref(slot);  // sender-chain reference
    return;
  }
  f.delivered.fire(w.engine());
  const std::uint32_t slot = f.slot;
  dst.arrive_ordered(slot);
  w.release_inflight_ref(slot);  // sender-chain reference
}

des::Task<fabric::XferStatus> SimComm::transfer_retry(fabric::NodeId src,
                                                      fabric::NodeId dst,
                                                      std::uint64_t bytes) {
  auto& net = world_->network();
  fabric::XferStatus st = co_await net.transfer(src, dst, bytes);
  if (st == fabric::XferStatus::kOk || !world_->faults_enabled()) {
    co_return st;
  }
  const RetryPolicy& rp = world_->retry_policy();
  double backoff = rp.backoff;
  for (std::uint32_t attempt = 0; attempt < rp.max_retries; ++attempt) {
    world_->count_retry();
    if (tracer_) tracer_->instant(track_, ids_->retry, ids_->cat_fault);
    co_await des::delay(world_->engine(), des::from_seconds(backoff));
    backoff *= rp.backoff_factor;
    st = co_await net.transfer(src, dst, bytes);
    if (st == fabric::XferStatus::kOk) co_return st;
  }
  co_return st;
}

void SimComm::rdv_sync_timeout_cb(void* ctx) {
  auto& f = *static_cast<detail::InFlight*>(ctx);
  SimComm& dst = *f.dst_comm;
  SimWorld& w = *dst.world_;
  if (f.matched.fired()) return;
  if (!w.network().node_up(dst.node_of(dst.rank_))) {
    // Peer is dead: fail the handshake instead of waiting forever.
    f.status = SimStatus::kPeerDown;
    f.matched.fire(w.engine());
    return;
  }
  // Peer alive but hasn't posted its receive yet — merely slow.  Re-arm.
  f.sync_timeout = w.engine().schedule_raw_after(
      des::from_seconds(w.retry_policy().recv_timeout),
      &SimComm::rdv_sync_timeout_cb, &f);
}

des::Task<SimStatus> SimComm::send_rendezvous(detail::InFlight& f,
                                              std::uintptr_t buffer_addr) {
  const auto& p = world_->params();
  auto& eng = world_->engine();
  const fabric::NodeId src_node = node_of(rank_);
  const fabric::NodeId dst_node = node_of(f.dst_comm->rank_);
  // Protocol-phase prefix: the RDMA variant shares the rendezvous
  // handshake but lands the payload without receiver CPU.
  const bool is_rdma = f.proto == msg::Protocol::kRdma;
  const detail::TraceIds::Phase& ph = is_rdma ? ids_->rdma : ids_->rdv;

  // RTS (header-only).
  obs::ScopedSpan rts(tracer_, track_, ph.rts, ids_->cat_protocol);
  co_await des::delay(eng, des::from_seconds(p.o_send));
  earliest_next_send_ =
      eng.now() + des::from_seconds(std::max(p.gap - p.o_send, 0.0));
  fabric::XferStatus xst =
      co_await transfer_retry(src_node, dst_node, SimWorld::kHeaderBytes);
  if (xst != fabric::XferStatus::kOk) {
    // The envelope never reached the peer.  Tombstone the sequence so
    // later messages are not wedged, then fail the send.
    f.status = from_xfer(xst);
    f.dropped = true;
    world_->count_drop();
    const SimStatus st = f.status;
    f.dst_comm->arrive_ordered(f.slot);  // releases the receiver reference
    world_->release_inflight_ref(f.slot);
    co_return st;
  }
  f.dst_comm->arrive_ordered(f.slot);  // receiver's reference travels here
  rts.end();

  // Wait for the receive to be posted, then the CTS travels back.
  {
    obs::ScopedSpan sync(tracer_, track_, ph.sync, ids_->cat_protocol);
    if (world_->faults_enabled() &&
        world_->retry_policy().recv_timeout > 0.0 && !f.matched.fired()) {
      f.sync_timeout = eng.schedule_raw_after(
          des::from_seconds(world_->retry_policy().recv_timeout),
          &SimComm::rdv_sync_timeout_cb, &f);
    }
    co_await f.matched.wait();
    eng.cancel(f.sync_timeout);
    if (f.status != SimStatus::kOk) {
      // Declared dead before posting its receive.  The envelope stays in
      // the dead rank's matcher; its reference is stranded with it (a
      // bounded leak, one record per abandoned handshake — see DESIGN.md).
      world_->count_drop();
      const SimStatus st = f.status;
      world_->release_inflight_ref(f.slot);
      co_return st;
    }
    xst = co_await transfer_retry(dst_node, src_node, SimWorld::kHeaderBytes);
    if (xst != fabric::XferStatus::kOk) {
      // CTS lost for good: the receiver is already parked on `delivered`,
      // so propagate the failure through it.
      f.status = from_xfer(xst);
      world_->count_drop();
      const SimStatus st = f.status;
      f.delivered.fire(eng);
      world_->release_inflight_ref(f.slot);
      co_return st;
    }
  }

  // Pin the source buffer (cache-amortized), then move the payload.
  // Kernel-path fabrics cannot DMA from user memory: they still pay the
  // socket-buffer staging copy here (and the receiver pays its own).
  if (!p.os_bypass) {
    obs::ScopedSpan stage(tracer_, track_, ph.stage, ids_->cat_protocol);
    co_await des::delay(
        eng,
        des::from_seconds(static_cast<double>(f.bytes) / p.copy_bw));
  } else {
    const std::uintptr_t addr =
        buffer_addr != 0 ? buffer_addr : default_addr();
    const double reg = reg_cache_->acquire(addr, f.bytes);
    if (tracer_) {
      tracer_->instant(track_, reg > 0.0 ? ids_->reg_miss : ids_->reg_hit,
                       ids_->cat_reg);
    }
    if (reg > 0.0) {
      obs::ScopedSpan pin(tracer_, track_, ph.reg, ids_->cat_protocol);
      co_await des::delay(eng, des::from_seconds(reg));
    }
  }
  {
    obs::ScopedSpan payload(tracer_, track_, ph.payload, ids_->cat_protocol);
    xst = co_await transfer_retry(src_node, dst_node, f.bytes);
  }
  if (xst != fabric::XferStatus::kOk) {
    f.status = from_xfer(xst);
    world_->count_drop();
  }
  const SimStatus st = f.status;
  f.delivered.fire(eng);
  world_->release_inflight_ref(f.slot);  // sender-side reference
  co_return st;
}

void SimComm::arrive_ordered(std::uint32_t inflight_slot) {
  detail::InFlight& f = world_->inflight(inflight_slot);
  const int src = f.src;
  if (f.seq != expect_seq_[static_cast<std::size_t>(src)]) {
    hold_out_of_order(src, inflight_slot);
    return;
  }
  deliver_to_matcher(inflight_slot);
  std::uint64_t& expect = expect_seq_[static_cast<std::size_t>(src)];
  ++expect;
  // Drain consecutively-sequenced messages parked in the hold ring.
  HoldRing& ring = held_[static_cast<std::size_t>(src)];
  while (!ring.slots.empty()) {
    const std::size_t idx =
        static_cast<std::size_t>(expect) & (ring.slots.size() - 1);
    const std::uint32_t held = ring.slots[idx];
    if (held == kNilSlot || world_->inflight(held).seq != expect) break;
    ring.slots[idx] = kNilSlot;
    --held_count_;
    deliver_to_matcher(held);
    ++expect;
  }
}

void SimComm::hold_out_of_order(int src, std::uint32_t inflight_slot) {
  HoldRing& ring = held_[static_cast<std::size_t>(src)];
  const std::uint64_t seq = world_->inflight(inflight_slot).seq;
  const std::uint64_t expect = expect_seq_[static_cast<std::size_t>(src)];
  POLARIS_DCHECK(seq > expect);
  // Grow the ring (power of two) until the in-flight window [expect, seq]
  // fits, re-slotting parked entries at their seq's new index.
  std::size_t cap = ring.slots.size();
  if (cap == 0 || seq - expect >= cap) {
    std::size_t need = cap == 0 ? 4 : cap * 2;
    while (seq - expect >= need) need *= 2;
    std::vector<std::uint32_t> grown(need, kNilSlot);
    for (const std::uint32_t s : ring.slots) {
      if (s != kNilSlot) {
        grown[static_cast<std::size_t>(world_->inflight(s).seq) &
              (need - 1)] = s;
      }
    }
    ring.slots.swap(grown);
    cap = need;
  }
  const std::size_t idx = static_cast<std::size_t>(seq) & (cap - 1);
  POLARIS_DCHECK(ring.slots[idx] == kNilSlot);
  ring.slots[idx] = inflight_slot;
  ++held_count_;
  max_held_ = std::max(max_held_, held_count_);
}

void SimComm::deliver_to_matcher(std::uint32_t inflight_slot) {
  detail::InFlight& f = world_->inflight(inflight_slot);
  if (f.dropped) {
    // The message never lands: nothing reaches the matcher, and the
    // receiver-side reference dies here (no recv will ever consume it —
    // the receiver learns of the hole through its own timeout).
    world_->release_inflight_ref(inflight_slot);
    return;
  }
  msg::Envelope<detail::InFlightId> env;
  env.src = f.src;
  env.tag = f.tag;
  env.bytes = f.bytes;
  env.cookie = detail::InFlightId{inflight_slot, f.gen};
  if (auto rid = matcher_.arrive(std::move(env))) {
    const auto pslot = static_cast<std::uint32_t>(*rid & 0xffff'ffffu);
    const auto pgen = static_cast<std::uint32_t>(*rid >> 32);
    PendingRecv& pr = pending_pool_[pslot];
    POLARIS_CHECK_MSG(pr.gen == pgen, "matched recv with no state");
    pr.inflight_slot = inflight_slot;
    pr.trigger.fire(world_->engine());
  }
}

SimComm::RecvTicket SimComm::post_recv_now(int src, int tag) {
  RecvTicket ticket;
  const std::uint32_t pslot = acquire_pending();
  PendingRecv& pr = pending_pool_[pslot];
  const msg::RecvId id =
      (static_cast<std::uint64_t>(pr.gen) << 32) | pslot;
  if (auto env = matcher_.post_recv(id, src, tag)) {
    POLARIS_DCHECK(world_->inflight(env->cookie.slot).gen ==
                   env->cookie.gen);
    ticket.inflight_slot = env->cookie.slot;
    release_pending(pslot);  // matched immediately: no queued state needed
  } else {
    ticket.pending_slot = pslot;
    if (world_->faults_enabled() &&
        world_->retry_policy().recv_timeout > 0.0) {
      pr.src = src;
      pr.timeout_ev = world_->engine().schedule_raw_after(
          des::from_seconds(world_->retry_policy().recv_timeout),
          &SimComm::recv_timeout_cb, &pr);
    }
  }
  return ticket;
}

void SimComm::recv_timeout_cb(void* ctx) {
  auto& pr = *static_cast<PendingRecv*>(ctx);
  if (pr.trigger.fired()) return;
  pr.timed_out = true;
  pr.trigger.fire(pr.owner->world_->engine());
}

des::Task<SimRecvStatus> SimComm::recv(int src, int tag) {
  return recv_impl(post_recv_now(src, tag));
}

des::Task<SimRecvStatus> SimComm::recv_impl(RecvTicket ticket) {
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, ids_->recv, ids_->cat_p2p);
  obs::ScopedSpan wait_span(tracer_, track_, ids_->recv_wait,
                            ids_->cat_protocol);
  std::uint32_t slot = ticket.inflight_slot;
  if (slot == kNilSlot) {
    // Pool references stay valid across awaits (deque slab).
    PendingRecv& pr = pending_pool_[ticket.pending_slot];
    co_await pr.trigger.wait();
    slot = pr.inflight_slot;
    if (slot == kNilSlot) {
      // The receive timed out with no message.  Withdraw the posting so a
      // late arrival cannot resolve to recycled state, then classify: a
      // dead specific source is kPeerDown, anything else kTimeout.
      POLARIS_CHECK_MSG(pr.timed_out, "recv woke without a message");
      const msg::RecvId id =
          (static_cast<std::uint64_t>(pr.gen) << 32) | ticket.pending_slot;
      matcher_.cancel_recv(id);
      SimRecvStatus st;
      st.status = SimStatus::kTimeout;
      if (pr.src >= 0 &&
          !world_->network().node_up(node_of(pr.src))) {
        st.status = SimStatus::kPeerDown;
      }
      world_->count_timeout();
      release_pending(ticket.pending_slot);
      co_return st;
    }
    world_->engine().cancel(pr.timeout_ev);
    release_pending(ticket.pending_slot);
  }
  detail::InFlight& inf = world_->inflight(slot);

  const auto& p = world_->params();
  if (inf.proto != msg::Protocol::kEager && p.os_bypass &&
      (p.reg_base > 0.0 || p.reg_per_page > 0.0)) {
    // Receiver pins its landing buffer before replying CTS.
    const double reg = reg_cache_->acquire(default_addr() + (1u << 30),
                                           inf.bytes);
    if (tracer_) {
      tracer_->instant(track_, reg > 0.0 ? ids_->reg_miss : ids_->reg_hit,
                       ids_->cat_reg);
    }
    if (reg > 0.0) co_await des::delay(eng, des::from_seconds(reg));
  }
  inf.matched.fire(eng);
  co_await inf.delivered.wait();
  wait_span.end();

  if (inf.status != SimStatus::kOk) {
    // The sender's CTS/payload leg failed for good: surface the error and
    // skip the receiver CPU cost (no payload ever landed).
    SimRecvStatus st;
    st.src = inf.src;
    st.tag = inf.tag;
    st.bytes = inf.bytes;
    st.status = inf.status;
    world_->release_inflight_ref(slot);  // receiver-side reference
    co_return st;
  }

  // Receiver CPU cost by protocol.
  double cpu = 0.0;
  switch (inf.proto) {
    case msg::Protocol::kEager:
      cpu = p.o_recv + static_cast<double>(inf.bytes) / p.copy_bw;
      break;
    case msg::Protocol::kRendezvous:
      cpu = p.o_recv;
      if (!p.os_bypass) {
        cpu += static_cast<double>(inf.bytes) / p.copy_bw;
      }
      break;
    case msg::Protocol::kRdma:
      cpu = 0.0;  // payload landed by remote DMA
      break;
  }
  if (cpu > 0.0) {
    obs::ScopedSpan cpu_span(tracer_, track_, ids_->recv_cpu,
                             ids_->cat_protocol);
    co_await des::delay(eng, des::from_seconds(cpu));
  }

  SimRecvStatus st;
  st.src = inf.src;
  st.tag = inf.tag;
  st.bytes = inf.bytes;
  world_->release_inflight_ref(slot);  // receiver-side reference
  co_return st;
}

std::uint32_t SimComm::acquire_pending() {
  std::uint32_t slot;
  if (!pending_free_.empty()) {
    slot = pending_free_.back();
    pending_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pending_pool_.size());
    pending_pool_.emplace_back();
  }
  PendingRecv& pr = pending_pool_[slot];
  pr.trigger.reset();
  pr.inflight_slot = kNilSlot;
  pr.owner = this;
  pr.timeout_ev = des::EventId{};
  pr.src = -1;
  pr.timed_out = false;
  return slot;
}

void SimComm::release_pending(std::uint32_t slot) {
  PendingRecv& pr = pending_pool_[slot];
  ++pr.gen;  // invalidates any outstanding RecvId for this slot
  pending_free_.push_back(slot);
}

SimRequest SimComm::acquire_request() {
  std::uint32_t slot;
  if (!request_free_.empty()) {
    slot = request_free_.back();
    request_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(request_pool_.size());
    request_pool_.emplace_back();
  }
  Request& r = request_pool_[slot];
  r.done.reset();
  r.status = SimRecvStatus{};
  SimRequest req;
  req.slot_ = slot;
  req.gen_ = r.gen;
  return req;
}

void SimComm::release_request(std::uint32_t slot) {
  Request& r = request_pool_[slot];
  ++r.gen;  // a waited handle cannot be waited again
  request_free_.push_back(slot);
}

SimRequest SimComm::isend(int dst, int tag, std::uint64_t bytes,
                          std::uintptr_t buffer_addr) {
  POLARIS_CHECK(dst >= 0 && dst < size());
  SimRequest req = acquire_request();
  world_->engine().spawn(
      isend_body(dst, tag, bytes, buffer_addr, send_seq_[dst]++,
                 req.slot_));
  return req;
}

des::Task<void> SimComm::isend_body(int dst, int tag, std::uint64_t bytes,
                                    std::uintptr_t buffer_addr,
                                    std::uint64_t seq,
                                    std::uint32_t request_slot) {
  const SimStatus st = co_await send_impl(dst, tag, bytes, buffer_addr, seq);
  Request& r = request_pool_[request_slot];
  r.status.status = st;
  r.done.fire(world_->engine());
}

SimRequest SimComm::irecv(int src, int tag) {
  SimRequest req = acquire_request();
  // Post to the matcher NOW so posting order equals program order; only
  // the completion wait runs as a background process.
  world_->engine().spawn(irecv_body(post_recv_now(src, tag), req.slot_));
  return req;
}

des::Task<void> SimComm::irecv_body(RecvTicket ticket,
                                    std::uint32_t request_slot) {
  SimRecvStatus st = co_await recv_impl(ticket);
  Request& r = request_pool_[request_slot];
  r.status = st;
  r.done.fire(world_->engine());
}

des::Task<SimRecvStatus> SimComm::wait(SimRequest request) {
  POLARIS_CHECK_MSG(request.valid(), "wait on an empty request");
  Request& r = request_pool_[request.slot_];
  POLARIS_CHECK_MSG(r.gen == request.gen_,
                    "wait on a request that was already waited");
  obs::ScopedSpan span(tracer_, track_, ids_->wait, ids_->cat_p2p);
  co_await r.done.wait();
  SimRecvStatus st = r.status;
  release_request(request.slot_);
  co_return st;
}

des::Task<SimStatus> SimComm::wait_all(std::span<const SimRequest> requests) {
  obs::ScopedSpan span(tracer_, track_, ids_->wait_all, ids_->cat_p2p);
  SimStatus first_error = SimStatus::kOk;
  for (const SimRequest& req : requests) {
    POLARIS_CHECK_MSG(req.valid(), "wait_all on an empty request");
    Request& r = request_pool_[req.slot_];
    POLARIS_CHECK_MSG(r.gen == req.gen_,
                      "wait_all on a request that was already waited");
    co_await r.done.wait();
    if (first_error == SimStatus::kOk &&
        r.status.status != SimStatus::kOk) {
      first_error = r.status.status;
    }
    release_request(req.slot_);
  }
  co_return first_error;
}

des::Task<SimStatus> SimComm::put(int dst, std::uint64_t bytes,
                                  std::uintptr_t buffer_addr) {
  const auto& p = world_->params();
  POLARIS_CHECK_MSG(p.rdma, "put() requires an RDMA-capable fabric");
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, ids_->put, ids_->cat_rdma);
  co_await des::delay(eng, des::from_seconds(p.o_send));
  const std::uintptr_t addr =
      buffer_addr != 0 ? buffer_addr : default_addr();
  const double reg = reg_cache_->acquire(addr, bytes);
  if (reg > 0.0) co_await des::delay(eng, des::from_seconds(reg));
  const fabric::XferStatus xst =
      co_await transfer_retry(node_of(rank_), node_of(dst),
                              bytes + SimWorld::kHeaderBytes);
  if (xst != fabric::XferStatus::kOk) world_->count_drop();
  co_return from_xfer(xst);
}

des::Task<SimStatus> SimComm::get(int src, std::uint64_t bytes,
                                  std::uintptr_t buffer_addr) {
  const auto& p = world_->params();
  POLARIS_CHECK_MSG(p.rdma, "get() requires an RDMA-capable fabric");
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, ids_->get, ids_->cat_rdma);
  co_await des::delay(eng, des::from_seconds(p.o_send));
  const std::uintptr_t addr =
      buffer_addr != 0 ? buffer_addr : default_addr();
  const double reg = reg_cache_->acquire(addr, bytes);
  if (reg > 0.0) co_await des::delay(eng, des::from_seconds(reg));
  // Request header to the source, payload back; the source CPU never runs.
  fabric::XferStatus xst =
      co_await transfer_retry(node_of(rank_), node_of(src),
                              SimWorld::kHeaderBytes);
  if (xst == fabric::XferStatus::kOk) {
    xst = co_await transfer_retry(node_of(src), node_of(rank_),
                                  bytes + SimWorld::kHeaderBytes);
  }
  if (xst != fabric::XferStatus::kOk) world_->count_drop();
  co_return from_xfer(xst);
}

std::uint32_t SimComm::register_am(AmHandler handler) {
  POLARIS_CHECK_MSG(static_cast<bool>(handler), "handler must be callable");
  am_handlers_.push_back(std::move(handler));
  return static_cast<std::uint32_t>(am_handlers_.size() - 1);
}

des::Task<SimStatus> SimComm::am_send(int dst, std::uint32_t handler,
                                      std::uint64_t bytes) {
  POLARIS_CHECK(dst >= 0 && dst < size());
  const auto& p = world_->params();
  auto& eng = world_->engine();
  obs::ScopedSpan span(tracer_, track_, ids_->am_send, ids_->cat_am);
  const double copy = static_cast<double>(bytes) / p.copy_bw;
  co_await des::delay(eng, des::from_seconds(p.o_send + copy));
  const fabric::XferStatus xst =
      co_await transfer_retry(node_of(rank_), node_of(dst),
                              bytes + SimWorld::kHeaderBytes);
  if (xst != fabric::XferStatus::kOk) {
    // Never landed: the handler does not run.
    world_->count_drop();
    co_return from_xfer(xst);
  }
  SimComm& peer = world_->comm(static_cast<std::size_t>(dst));
  POLARIS_CHECK_MSG(handler < peer.am_handlers_.size(),
                    "unknown active-message handler at destination");
  // Handler runs on the destination CPU.
  co_await des::delay(eng, des::from_seconds(p.o_recv));
  ++peer.am_dispatched_;
  peer.am_handlers_[handler](rank_, bytes);
  co_return SimStatus::kOk;
}

des::Task<void> SimComm::compute(double flops, double mem_bytes) {
  const double t = world_->node().kernel_time(flops, mem_bytes);
  obs::ScopedSpan span(tracer_, track_, ids_->compute, ids_->cat_cpu);
  co_await des::delay(world_->engine(), des::from_seconds(t));
}

des::Task<void> SimComm::sleep(double seconds) {
  co_await des::delay(world_->engine(), des::from_seconds(seconds));
}

// -------------------------------------------------------------- collectives

des::Task<SimStatus> SimComm::run_schedule(const coll::Schedule& schedule,
                                           std::size_t elem_bytes) {
  POLARIS_CHECK(schedule.ranks == world_->ranks());
  auto& eng = world_->engine();
  SimStatus status = SimStatus::kOk;
  for (const coll::CommStep& step : schedule.per_rank[rank_]) {
    if (step.has_send() && step.has_recv()) {
      // Post both concurrently (MPI_Sendrecv) and join.
      std::uint32_t remaining = 2;
      des::Trigger done(eng);
      SimStatus send_st = SimStatus::kOk;
      SimRecvStatus recv_st;
      eng.spawn([](SimComm& c, const coll::CommStep& s,
                   std::size_t eb, std::uint32_t& rem,
                   des::Trigger& trig, SimStatus& out) -> des::Task<void> {
        out = co_await c.send(s.send_peer, kCollTag,
                              static_cast<std::uint64_t>(s.send_count) * eb);
        if (--rem == 0) trig.fire();
      }(*this, step, elem_bytes, remaining, done, send_st));
      eng.spawn([](SimComm& c, const coll::CommStep& s, std::uint32_t& rem,
                   des::Trigger& trig,
                   SimRecvStatus& out) -> des::Task<void> {
        out = co_await c.recv(s.recv_peer, kCollTag);
        if (--rem == 0) trig.fire();
      }(*this, step, remaining, done, recv_st));
      co_await done.wait();
      if (send_st != SimStatus::kOk) {
        status = send_st;
      } else if (recv_st.status != SimStatus::kOk) {
        status = recv_st.status;
      }
    } else if (step.has_send()) {
      status = co_await send(
          step.send_peer, kCollTag,
          static_cast<std::uint64_t>(step.send_count) * elem_bytes);
    } else if (step.has_recv()) {
      status = (co_await recv(step.recv_peer, kCollTag)).status;
    }
    // Partial failure surfaces immediately: skip the remaining steps on
    // this rank (peers discover the hole through their own failed steps).
    if (status != SimStatus::kOk) break;
  }
  co_return status;
}

des::Task<SimStatus> SimComm::barrier() {
  obs::ScopedSpan span(tracer_, track_, ids_->barrier, ids_->cat_coll);
  co_return co_await run_schedule(
      world_->collective_schedule(coll::Collective::kBarrier, 0, 0), 1);
}

des::Task<SimStatus> SimComm::broadcast(std::uint64_t bytes, int root) {
  obs::ScopedSpan span(tracer_, track_, ids_->broadcast, ids_->cat_coll);
  co_return co_await run_schedule(
      world_->collective_schedule(coll::Collective::kBroadcast, bytes, root),
      1);
}

des::Task<SimStatus> SimComm::allreduce(std::uint64_t bytes) {
  obs::ScopedSpan span(tracer_, track_, ids_->allreduce, ids_->cat_coll);
  co_return co_await run_schedule(
      world_->collective_schedule(coll::Collective::kAllreduce, bytes, 0),
      1);
}

des::Task<SimStatus> SimComm::allgather(std::uint64_t block_bytes) {
  obs::ScopedSpan span(tracer_, track_, ids_->allgather, ids_->cat_coll);
  co_return co_await run_schedule(
      world_->collective_schedule(coll::Collective::kAllgather, block_bytes,
                                  0),
      1);
}

des::Task<SimStatus> SimComm::alltoall(std::uint64_t block_bytes) {
  obs::ScopedSpan span(tracer_, track_, ids_->alltoall, ids_->cat_coll);
  co_return co_await run_schedule(
      world_->collective_schedule(coll::Collective::kAlltoall, block_bytes,
                                  0),
      1);
}

// ------------------------------------------------------------------ SimWorld

SimWorld::SimWorld(std::size_t ranks, fabric::FabricParams fabric_params,
                   std::unique_ptr<fabric::Topology> topology,
                   hw::NodeModel node, std::uint32_t eager_override)
    : node_(node) {
  POLARIS_CHECK(ranks >= 1);
  topo_ = topology ? std::move(topology)
                   : fabric::make_default_topology(std::max<std::size_t>(
                         ranks, 2));
  POLARIS_CHECK_MSG(topo_->node_count() >= ranks,
                    "topology too small for rank count");
  eager_threshold_ = eager_override != 0 ? eager_override
                                         : fabric_params.eager_threshold;
  network_ = std::make_unique<fabric::SimNetwork>(
      engine_, std::move(fabric_params), *topo_);
  comms_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    comms_.push_back(std::unique_ptr<SimComm>(
        new SimComm(*this, static_cast<int>(r), ranks)));
  }
}

std::uint32_t SimWorld::acquire_inflight() {
  std::uint32_t slot;
  if (!inflight_free_.empty()) {
    slot = inflight_free_.back();
    inflight_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(inflight_pool_.size());
    inflight_pool_.emplace_back();
    inflight_pool_.back().slot = slot;
  }
  detail::InFlight& f = inflight_pool_[slot];
  f.matched.reset();
  f.delivered.reset();
  f.refs = 2;  // the sender's protocol chain + the receiving recv
  f.status = SimStatus::kOk;
  f.retries_used = 0;
  f.deferrals = 0;
  f.dropped = false;
  f.sync_timeout = des::EventId{};
  max_inflight_in_use_ = std::max(max_inflight_in_use_, inflight_in_use());
  return slot;
}

void SimWorld::release_inflight_ref(std::uint32_t slot) {
  detail::InFlight& f = inflight_pool_[slot];
  POLARIS_DCHECK(f.refs > 0);
  if (--f.refs == 0) {
    ++f.gen;  // invalidates matcher cookies pointing at this slot
    inflight_free_.push_back(slot);
  }
}

void SimWorld::launch(std::function<des::Task<void>(SimComm&)> program) {
  programs_.push_back(std::move(program));
  auto& prog = programs_.back();
  ranks_launched_ += comms_.size();
  for (auto& c : comms_) {
    // Wrap the program so rank completion is observable mid-run (the
    // scenario runner's "no wedged ranks" monitor reads ranks_finished()).
    engine_.spawn([](SimWorld& w, std::function<des::Task<void>(SimComm&)>& p,
                     SimComm& comm) -> des::Task<void> {
      co_await p(comm);
      ++w.ranks_finished_;
    }(*this, prog, *c));
  }
}

void SimWorld::attach_tracer(obs::Tracer& tracer) {
  const bool rebind = bound_tracer_ == &tracer;
  bound_tracer_ = &tracer;
  if (!rebind) trace_ids_.intern_all(tracer);
  for (auto& c : comms_) {
    c->tracer_ = &tracer;
    c->ids_ = &trace_ids_;
    if (!rebind) {
      c->track_ =
          tracer.add_track("ranks", "rank " + std::to_string(c->rank_));
    }
  }
  network_->attach_tracer(tracer);
}

void SimWorld::detach_tracer() {
  for (auto& c : comms_) c->tracer_ = nullptr;
  network_->detach_tracer();
}

void SimWorld::set_tracing_enabled(bool on) {
  POLARIS_CHECK(bound_tracer_ != nullptr);
  obs::Tracer* t = on ? bound_tracer_ : nullptr;
  for (auto& c : comms_) c->tracer_ = t;
  network_->set_tracing_enabled(on);
}

namespace detail {

void TraceIds::intern_all(obs::Tracer& tracer) {
  send = tracer.intern("send");
  eager_inject = tracer.intern("eager:inject");
  retry = tracer.intern("retry");
  recv = tracer.intern("recv");
  recv_wait = tracer.intern("recv:wait");
  recv_cpu = tracer.intern("recv:cpu");
  reg_miss = tracer.intern("reg-miss");
  reg_hit = tracer.intern("reg-hit");
  wait = tracer.intern("wait");
  wait_all = tracer.intern("wait_all");
  put = tracer.intern("put");
  get = tracer.intern("get");
  am_send = tracer.intern("am_send");
  compute = tracer.intern("compute");
  barrier = tracer.intern("barrier");
  broadcast = tracer.intern("broadcast");
  allreduce = tracer.intern("allreduce");
  allgather = tracer.intern("allgather");
  alltoall = tracer.intern("alltoall");

  cat_eager = tracer.intern("eager");
  cat_rendezvous = tracer.intern("rendezvous");
  cat_rdma = tracer.intern("rdma");
  cat_protocol = tracer.intern("protocol");
  cat_fault = tracer.intern("fault");
  cat_p2p = tracer.intern("p2p");
  cat_reg = tracer.intern("reg");
  cat_am = tracer.intern("am");
  cat_cpu = tracer.intern("cpu");
  cat_coll = tracer.intern("coll");

  rdv.rts = tracer.intern("rdv:rts");
  rdv.sync = tracer.intern("rdv:sync");
  rdv.stage = tracer.intern("rdv:stage");
  rdv.reg = tracer.intern("rdv:reg");
  rdv.payload = tracer.intern("rdv:payload");
  rdma.rts = tracer.intern("rdma:rts");
  rdma.sync = tracer.intern("rdma:sync");
  rdma.stage = tracer.intern("rdma:stage");
  rdma.reg = tracer.intern("rdma:reg");
  rdma.payload = tracer.intern("rdma:payload");
}

}  // namespace detail

void SimWorld::enable_faults(fault::Injector& injector, RetryPolicy policy) {
  POLARIS_CHECK(policy.max_retries < 250 && policy.backoff > 0.0 &&
                policy.backoff_factor >= 1.0 && policy.recv_timeout >= 0.0);
  injector_ = &injector;
  retry_policy_ = policy;
  network_->enable_faults();
}

void SimWorld::set_admission(AdmissionControl admission) {
  POLARIS_CHECK(admission.backoff > 0.0 && admission.backoff_factor >= 1.0);
  admission_ = admission;
  eager_dest_load_.assign(admission_enabled() ? comms_.size() : 0, 0);
}

void SimWorld::attach_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
  for (auto& c : comms_) {
    c->sends_counter_ = &metrics.counter("simrt.sends");
    c->msg_bytes_ = &metrics.log_histogram("simrt.msg_bytes");
  }
}

double SimWorld::run() {
  const des::SimTime t0 = engine_.now();
  engine_.run();
  if (metrics_) {
    // Totals mirrored as gauges: idempotent across repeated run() calls.
    const des::EngineStats es = engine_.stats();
    metrics_->gauge("des.events_executed").set(
        static_cast<double>(es.executed));
    metrics_->gauge("des.events_scheduled").set(
        static_cast<double>(es.scheduled));
    metrics_->gauge("des.max_queue_depth").set(
        static_cast<double>(es.max_queue_depth));
    metrics_->gauge("des.pool_capacity").set(
        static_cast<double>(es.pool_capacity));
    metrics_->gauge("des.pool_in_use").set(
        static_cast<double>(es.pool_in_use));
    metrics_->gauge("des.max_pool_in_use").set(
        static_cast<double>(es.max_pool_in_use));
    metrics_->gauge("des.sbo_misses").set(
        static_cast<double>(es.sbo_misses));
    metrics_->gauge("des.tombstones_reaped").set(
        static_cast<double>(es.cancelled_skipped));
    const fabric::NetworkStats& ns = network_->stats();
    metrics_->gauge("fabric.messages").set(static_cast<double>(ns.messages));
    metrics_->gauge("fabric.bytes").set(static_cast<double>(ns.bytes));
    metrics_->gauge("fabric.packets").set(static_cast<double>(ns.packets));
    metrics_->gauge("fabric.circuit_hits").set(
        static_cast<double>(ns.circuit_hits));
    metrics_->gauge("fabric.circuit_misses").set(
        static_cast<double>(ns.circuit_misses));
    metrics_->gauge("fabric.link_busy_s").set(ns.total_link_busy_s);
    metrics_->gauge("fabric.messages_bypassed").set(
        static_cast<double>(ns.messages_bypassed));
    metrics_->gauge("fabric.messages_walked").set(
        static_cast<double>(ns.messages_walked));
    metrics_->gauge("fabric.flights_materialized").set(
        static_cast<double>(ns.flights_materialized));
    metrics_->gauge("fabric.walker_hop_events").set(
        static_cast<double>(ns.walker_hop_events));
    metrics_->gauge("fabric.bypass_rate").set(ns.bypass_rate());
    if (injector_) {
      metrics_->gauge("fabric.messages_dropped").set(
          static_cast<double>(ns.messages_dropped));
      metrics_->gauge("fault.msg_retries").set(
          static_cast<double>(msg_retries_));
      metrics_->gauge("fault.msgs_dropped").set(
          static_cast<double>(msg_drops_));
      metrics_->gauge("fault.recv_timeouts").set(
          static_cast<double>(recv_timeouts_));
    }
    std::uint64_t eager = 0, rdv = 0, reg_hits = 0, reg_misses = 0;
    std::uint64_t m_posted = 0, m_arrived = 0, m_hits_posted = 0,
                  m_hits_unexpected = 0;
    std::size_t m_posted_depth = 0, m_unexp_depth = 0, m_pool = 0,
                m_held = 0, req_pool = 0;
    for (const auto& c : comms_) {
      eager += c->eager_count_;
      rdv += c->rendezvous_count_;
      reg_hits += c->reg_stats().hits;
      reg_misses += c->reg_stats().misses;
      const msg::MatchStats& ms = c->match_stats();
      m_posted += ms.posted;
      m_arrived += ms.arrived;
      m_hits_posted += ms.matched_posted;
      m_hits_unexpected += ms.matched_unexpected;
      m_posted_depth = std::max(m_posted_depth, ms.max_posted_depth);
      m_unexp_depth = std::max(m_unexp_depth, ms.max_unexpected_depth);
      m_pool += c->matcher_pool_capacity();
      m_held = std::max(m_held, c->max_held_depth());
      req_pool += c->request_pool_capacity();
    }
    metrics_->gauge("simrt.eager_sends").set(static_cast<double>(eager));
    metrics_->gauge("simrt.rendezvous_sends").set(static_cast<double>(rdv));
    if (admission_enabled()) {
      metrics_->gauge("simrt.eager_deferrals")
          .set(static_cast<double>(eager_deferrals_));
    }
    metrics_->gauge("msg.reg_cache.hits").set(static_cast<double>(reg_hits));
    metrics_->gauge("msg.reg_cache.misses").set(
        static_cast<double>(reg_misses));
    metrics_->gauge("msg.match.posted").set(static_cast<double>(m_posted));
    metrics_->gauge("msg.match.arrived").set(static_cast<double>(m_arrived));
    metrics_->gauge("msg.match.matched_posted").set(
        static_cast<double>(m_hits_posted));
    metrics_->gauge("msg.match.matched_unexpected").set(
        static_cast<double>(m_hits_unexpected));
    metrics_->gauge("msg.match.max_posted_depth").set(
        static_cast<double>(m_posted_depth));
    metrics_->gauge("msg.match.max_unexpected_depth").set(
        static_cast<double>(m_unexp_depth));
    metrics_->gauge("msg.match.pool_capacity").set(
        static_cast<double>(m_pool));
    metrics_->gauge("simrt.max_held_depth").set(
        static_cast<double>(m_held));
    metrics_->gauge("simrt.request_pool_capacity").set(
        static_cast<double>(req_pool));
    metrics_->gauge("simrt.inflight_pool_capacity").set(
        static_cast<double>(inflight_pool_capacity()));
    metrics_->gauge("simrt.max_inflight_in_use").set(
        static_cast<double>(max_inflight_in_use_));
  }
  return des::to_seconds(engine_.now() - t0);
}

std::uint64_t SimWorld::pack_schedule_key(coll::Collective kind,
                                          std::size_t count, int root) {
  POLARIS_CHECK(count < (std::uint64_t{1} << 40));
  POLARIS_CHECK(root >= 0 && root < (1 << 16));
  return (static_cast<std::uint64_t>(count) << 24) |
         (static_cast<std::uint64_t>(root) << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint8_t>(kind));
}

const coll::Schedule& SimWorld::collective_schedule(coll::Collective kind,
                                                    std::size_t count,
                                                    int root) {
  const std::uint64_t key = pack_schedule_key(kind, count, root);
  if (const std::uint32_t* idx = schedule_cache_.find(key)) {
    return schedules_[*idx];
  }
  coll::Schedule schedule;
  if (kind == coll::Collective::kBarrier) {
    schedule = coll::barrier(ranks());
  } else {
    const auto a =
        coll::select_algorithm(kind, ranks(), count, 1, loggp(), root);
    schedule = coll::make_schedule(kind, a, ranks(), count, root);
  }
  schedules_.push_back(std::move(schedule));
  const auto idx = static_cast<std::uint32_t>(schedules_.size() - 1);
  schedule_cache_[key] = idx;
  return schedules_[idx];
}

void SimWorld::set_placement(std::vector<fabric::NodeId> nodes) {
  POLARIS_CHECK_MSG(nodes.size() == comms_.size(),
                    "placement must name one host per rank");
  std::vector<std::uint8_t> seen(topo_->node_count(), 0);
  for (const fabric::NodeId n : nodes) {
    POLARIS_CHECK_MSG(n < topo_->node_count(), "placement host out of range");
    POLARIS_CHECK_MSG(!seen[n], "placement hosts must be distinct");
    seen[n] = 1;
  }
  placement_ = std::move(nodes);
}

fabric::NodeId SimComm::node_of(int rank) const {
  return world_->node_of(rank);
}

fabric::LogGPParams SimWorld::loggp() const {
  const std::size_t far = comms_.size() > 1 ? comms_.size() - 1 : 1;
  const int hops = static_cast<int>(
      topo_->switch_hops(node_of(0), node_of(static_cast<int>(far))));
  return fabric::extract_loggp(network_->params(), std::max(hops, 1));
}

}  // namespace polaris::simrt
