// Simulated SPMD runtime.
//
// A SimWorld places one rank per node of a simulated cluster and runs SPMD
// programs written as C++20 coroutines:
//
//   des::Task<void> program(simrt::SimComm& c) {
//     co_await c.send(1, /*tag=*/0, /*bytes=*/1024);
//     co_await c.barrier();
//   }
//
// Message timing composes the user-level messaging protocol stack
// (polaris::msg: eager/rendezvous/RDMA, registration cache) over the
// packet-level fabric simulation (polaris::fabric::SimNetwork), with host
// overheads from the fabric's NIC parameters.  Collectives replay the same
// polaris::coll schedules the real runtime executes.
//
// Simulation carries byte counts, not data: correctness of data movement is
// proved by the local executor and the real runtime; SimWorld answers "how
// long does it take on fabric X at scale N".
//
// Host-side hot path (simulated timing is bit-identical either way): every
// message is a slab-pooled InFlight record addressed by slot+generation —
// no shared_ptr, no per-message Trigger allocations (completion flags are
// intrusive des::OneShotEvents), eager wire delivery runs as a raw-callback
// chain through fabric::SimNetwork::transfer_raw (no spawned coroutine
// frame), out-of-order network completions park in per-source ring buffers
// indexed by sequence number, and nonblocking requests are pooled
// slot+generation handles.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <vector>

#include "polaris/coll/algorithms.hpp"
#include "polaris/des/engine.hpp"
#include "polaris/des/sync.hpp"
#include "polaris/des/task.hpp"
#include "polaris/fabric/loggp.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/hw/node.hpp"
#include "polaris/msg/protocol.hpp"
#include "polaris/msg/reg_cache.hpp"
#include "polaris/msg/tag_matcher.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/support/flat_map.hpp"
#include "polaris/support/function.hpp"

namespace polaris::fault {
class Injector;
}  // namespace polaris::fault

namespace polaris::simrt {

class SimComm;
class SimWorld;

inline constexpr std::uint32_t kNilSlot = 0xffff'ffffu;

/// Outcome of a simulated messaging operation.  Healthy runs only ever see
/// kOk; the rest surface once SimWorld::enable_faults() is active.
enum class SimStatus : std::uint8_t {
  kOk = 0,
  kPeerDown,  ///< the peer's node crashed (detected or mid-transfer)
  kLinkDown,  ///< a routed link stayed down through every retry
  kTimeout,   ///< a posted receive saw no message within the policy timeout
};

const char* to_string(SimStatus status);

/// Fault-recovery knobs for the messaging layer (SimWorld::enable_faults).
/// A failed wire transfer is retried up to max_retries times with
/// exponential backoff; recv_timeout > 0 additionally arms a timer on every
/// queued receive (and on the rendezvous match wait) so a receive from a
/// crashed peer fails instead of hanging forever.
struct RetryPolicy {
  std::uint32_t max_retries = 3;
  double backoff = 1e-3;         ///< seconds before the first retry
  double backoff_factor = 2.0;   ///< multiplier per subsequent retry
  double recv_timeout = 0.0;     ///< seconds; 0 disables receive timeouts
};

/// Congestion-aware eager admission (SimWorld::set_admission).
///
/// With max_per_dest > 0, an eager wire injection toward a destination rank
/// that already has that many eager messages on the wire is deferred by
/// `backoff` seconds (doubling per consecutive deferral of the same
/// message) before re-testing — senders back off hot destinations instead
/// of piling serialization onto their edge link.  After max_deferrals the
/// message injects regardless: admission shapes traffic, it never drops,
/// and per-source ordering is preserved by the receiver's sequence-number
/// hold rings exactly as for any other out-of-order delivery.
///
/// Disabled by default (max_per_dest == 0): the wire chain takes one
/// untaken branch and runs are event-for-event identical to the seed.
struct AdmissionControl {
  std::uint32_t max_per_dest = 0;  ///< in-flight eager cap per dest; 0 = off
  double backoff = 5e-6;           ///< seconds before the first re-test
  double backoff_factor = 2.0;     ///< multiplier per consecutive deferral
  std::uint32_t max_deferrals = 8; ///< then inject unconditionally
};

namespace detail {

/// Slab-pooled per-message simulation record (one per send, owned by the
/// SimWorld pool).  Released back to the pool when both sides are done:
/// the sender-side protocol chain and the receiving recv_impl each hold
/// one reference.
struct InFlight {
  SimComm* dst_comm = nullptr;  ///< receiver endpoint (raw-chain context)
  int src = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  std::uint64_t seq = 0;  ///< per (src,dst) issue order (non-overtaking)
  msg::Protocol proto = msg::Protocol::kEager;
  des::OneShotEvent matched;    ///< recv posted & matched
  des::OneShotEvent delivered;  ///< payload landed
  std::uint32_t slot = 0;       ///< own index in the world pool
  std::uint32_t gen = 0;        ///< bumped on release (stale-handle check)
  std::uint8_t refs = 0;

  // Fault-path state (untouched on healthy runs beyond the acquire reset).
  SimStatus status = SimStatus::kOk;  ///< sticky first failure
  std::uint8_t retries_used = 0;      ///< eager wire retries consumed
  std::uint8_t deferrals = 0;         ///< eager admission back-offs consumed
  bool dropped = false;               ///< gave up; seq advanced, no delivery
  des::EventId sync_timeout{};        ///< rendezvous match-wait deadline
};

/// Matcher cookie: a generation-checked handle into the InFlight pool.
struct InFlightId {
  std::uint32_t slot = kNilSlot;
  std::uint32_t gen = 0;
};

/// Name ids for every hot span/instant SimComm records, interned once in
/// SimWorld::attach_tracer.  The record path then never touches the
/// tracer's intern table and never builds a std::string — required for the
/// ring tracer's no-allocation guarantee, harmless in full mode.
struct TraceIds {
  /// Rendezvous protocol-phase names ("rdv:*" or "rdma:*").
  struct Phase {
    obs::NameId rts = obs::kNoName;
    obs::NameId sync = obs::kNoName;
    obs::NameId stage = obs::kNoName;
    obs::NameId reg = obs::kNoName;
    obs::NameId payload = obs::kNoName;
  };

  obs::NameId send = obs::kNoName;
  obs::NameId eager_inject = obs::kNoName;
  obs::NameId retry = obs::kNoName;
  obs::NameId recv = obs::kNoName;
  obs::NameId recv_wait = obs::kNoName;
  obs::NameId recv_cpu = obs::kNoName;
  obs::NameId reg_miss = obs::kNoName;
  obs::NameId reg_hit = obs::kNoName;
  obs::NameId wait = obs::kNoName;
  obs::NameId wait_all = obs::kNoName;
  obs::NameId put = obs::kNoName;
  obs::NameId get = obs::kNoName;
  obs::NameId am_send = obs::kNoName;
  obs::NameId compute = obs::kNoName;
  obs::NameId barrier = obs::kNoName;
  obs::NameId broadcast = obs::kNoName;
  obs::NameId allreduce = obs::kNoName;
  obs::NameId allgather = obs::kNoName;
  obs::NameId alltoall = obs::kNoName;

  obs::NameId cat_eager = obs::kNoName;
  obs::NameId cat_rendezvous = obs::kNoName;
  obs::NameId cat_rdma = obs::kNoName;
  obs::NameId cat_protocol = obs::kNoName;
  obs::NameId cat_fault = obs::kNoName;
  obs::NameId cat_p2p = obs::kNoName;
  obs::NameId cat_reg = obs::kNoName;
  obs::NameId cat_am = obs::kNoName;
  obs::NameId cat_cpu = obs::kNoName;
  obs::NameId cat_coll = obs::kNoName;

  Phase rdv;
  Phase rdma;

  void intern_all(obs::Tracer& tracer);

  obs::NameId proto_cat(msg::Protocol p) const {
    switch (p) {
      case msg::Protocol::kEager:
        return cat_eager;
      case msg::Protocol::kRendezvous:
        return cat_rendezvous;
      case msg::Protocol::kRdma:
        return cat_rdma;
    }
    return obs::kNoName;
  }
};

/// All-kNoName ids: SimComm::ids_ points here until a tracer attaches, so
/// record sites may dereference unconditionally (a null tracer ignores the
/// arguments anyway).
inline constexpr TraceIds kNoTraceIds{};

}  // namespace detail

/// Completion info for a simulated receive (or a waited send, which fills
/// only `status`).
struct SimRecvStatus {
  int src = -1;
  int tag = -1;
  std::uint64_t bytes = 0;
  SimStatus status = SimStatus::kOk;

  bool ok() const { return status == SimStatus::kOk; }
};

/// Handle for a nonblocking simulated operation: a pooled slot+generation
/// in the issuing SimComm (trivially copyable, two words — no shared_ptr).
/// Wait via SimComm::wait()/wait_all(); waiting consumes the handle.
class SimRequest {
 public:
  SimRequest() = default;
  bool valid() const { return slot_ != kNilSlot; }

 private:
  friend class SimComm;
  std::uint32_t slot_ = kNilSlot;
  std::uint32_t gen_ = 0;
};

/// Per-rank communication endpoint for simulated SPMD programs.  All
/// operations are awaitable coroutine tasks.
class SimComm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking send (MPI_Send semantics): completes when the payload has
  /// been injected (eager) or transferred (rendezvous/RDMA).
  /// `buffer_addr` keys the registration cache; 0 = this rank's default
  /// buffer (cache-friendly reuse, the common application pattern).
  /// Not a coroutine itself: the per-destination sequence number is taken
  /// when send() is CALLED, so blocking and nonblocking sends interleave
  /// in program order.  Returns kOk on healthy runs; with faults enabled,
  /// the first unrecovered failure (retries exhausted, peer declared dead).
  des::Task<SimStatus> send(int dst, int tag, std::uint64_t bytes,
                            std::uintptr_t buffer_addr = 0);

  /// Blocking receive; completes when the payload has landed and the
  /// receiving CPU has processed it.  Like send(), the matcher posting
  /// happens when recv() is CALLED (posting order = program order).
  des::Task<SimRecvStatus> recv(int src, int tag);

  /// Nonblocking send/recv.  Issue order defines matching order exactly as
  /// for the blocking calls (sequence numbers are assigned at issue time).
  SimRequest isend(int dst, int tag, std::uint64_t bytes,
                   std::uintptr_t buffer_addr = 0);
  SimRequest irecv(int src, int tag);

  /// Awaits one request and consumes it (each handle is waited exactly
  /// once; the slot is recycled on return).
  des::Task<SimRecvStatus> wait(SimRequest request);

  /// Awaits every request in the span (accepts a std::vector directly),
  /// consuming each.  Returns the first non-kOk status (all requests are
  /// still waited, so no slot leaks on partial failure).
  des::Task<SimStatus> wait_all(std::span<const SimRequest> requests);

  /// One-sided RDMA put: no receiver involvement (fabric must have rdma).
  des::Task<SimStatus> put(int dst, std::uint64_t bytes,
                           std::uintptr_t buffer_addr = 0);

  /// One-sided RDMA get: request header out, payload back, no remote CPU.
  des::Task<SimStatus> get(int src, std::uint64_t bytes,
                           std::uintptr_t buffer_addr = 0);

  /// Active messages (timing-level): the handler runs at the destination
  /// when the payload lands, with no posted receive.  Handlers must be
  /// registered before launch on every rank (SPMD convention).
  using AmHandler = support::UniqueFunction<void(int src,
                                                 std::uint64_t bytes)>;
  std::uint32_t register_am(AmHandler handler);
  des::Task<SimStatus> am_send(int dst, std::uint32_t handler,
                               std::uint64_t bytes);
  std::uint64_t am_dispatched() const { return am_dispatched_; }

  /// Local computation of `flops` touching `mem_bytes` of DRAM, timed by
  /// the node's roofline model.
  des::Task<void> compute(double flops, double mem_bytes);

  /// Plain simulated-time delay.
  des::Task<void> sleep(double seconds);

  // -- collectives ------------------------------------------------------------
  /// Executes one rank's part of a schedule with elements of elem_bytes.
  /// With faults enabled a collective surfaces partial failure: the first
  /// failed step's status is returned and the remaining steps are skipped
  /// on this rank (peers discover the hole through their own failed steps
  /// or receive timeouts).
  des::Task<SimStatus> run_schedule(const coll::Schedule& schedule,
                                    std::size_t elem_bytes);

  des::Task<SimStatus> barrier();
  des::Task<SimStatus> broadcast(std::uint64_t bytes, int root);
  des::Task<SimStatus> allreduce(std::uint64_t bytes);
  des::Task<SimStatus> allgather(std::uint64_t block_bytes);
  des::Task<SimStatus> alltoall(std::uint64_t block_bytes);

  /// Current simulated time in seconds.
  double now() const;

  /// The world's event engine (for advanced composition: triggers,
  /// spawning helper processes).
  des::Engine& engine();

  // -- stats -------------------------------------------------------------------
  std::uint64_t eager_count() const { return eager_count_; }
  std::uint64_t rendezvous_count() const { return rendezvous_count_; }
  const msg::RegCacheStats& reg_stats() const;

  /// This endpoint's tag-matching statistics and pool sizes (allocation
  /// observability: capacities that stop growing mean a steady state).
  const msg::MatchStats& match_stats() const { return matcher_.stats(); }
  std::size_t matcher_pool_capacity() const {
    return matcher_.posted_pool_capacity() +
           matcher_.unexpected_pool_capacity();
  }
  std::size_t request_pool_capacity() const { return request_pool_.size(); }
  std::size_t max_held_depth() const { return max_held_; }

  /// This rank's trace track (valid after SimWorld::attach_tracer); user
  /// programs may add their own spans to it.
  obs::Tracer* tracer() const { return tracer_; }
  obs::TrackId track() const { return track_; }

 private:
  friend class SimWorld;

  /// Queued posted-receive state, pooled; the matcher's RecvId encodes
  /// (generation << 32) | slot so a match resolves here in O(1).
  struct PendingRecv {
    des::OneShotEvent trigger;
    std::uint32_t inflight_slot = kNilSlot;
    std::uint32_t gen = 0;
    // Receive-timeout state (armed only when a RetryPolicy asks for it).
    SimComm* owner = nullptr;
    des::EventId timeout_ev{};
    int src = -1;
    bool timed_out = false;
  };

  /// Pooled nonblocking-request record behind a SimRequest handle.
  struct Request {
    des::OneShotEvent done;
    SimRecvStatus status;
    std::uint32_t gen = 0;
  };

  /// Per-source hold ring for out-of-order network completions: slot of
  /// the InFlight with sequence s lives at s mod capacity (capacity is a
  /// power of two grown to the largest in-flight sequence window).
  struct HoldRing {
    std::vector<std::uint32_t> slots;
  };

  SimComm(SimWorld& world, int rank, std::size_t ranks);

  /// The body of send(); `seq` was assigned by the caller at issue time.
  des::Task<SimStatus> send_impl(int dst, int tag, std::uint64_t bytes,
                                 std::uintptr_t buffer_addr,
                                 std::uint64_t seq);

  /// Matcher posting done eagerly at recv()/irecv() call time.
  struct RecvTicket {
    std::uint32_t inflight_slot = kNilSlot;  ///< unexpected match, if any
    std::uint32_t pending_slot = kNilSlot;   ///< else the queued recv state
  };
  RecvTicket post_recv_now(int src, int tag);
  des::Task<SimRecvStatus> recv_impl(RecvTicket ticket);
  des::Task<void> send_eager(detail::InFlight& f);
  des::Task<SimStatus> send_rendezvous(detail::InFlight& f,
                                       std::uintptr_t buffer_addr);

  /// A fabric transfer wrapped in the world's RetryPolicy: on failure,
  /// backs off and re-sends up to max_retries times.  With faults
  /// disabled this adds no engine events — healthy timing is identical
  /// to a bare transfer.
  des::Task<fabric::XferStatus> transfer_retry(fabric::NodeId src,
                                               fabric::NodeId dst,
                                               std::uint64_t bytes);
  des::Task<void> isend_body(int dst, int tag, std::uint64_t bytes,
                             std::uintptr_t buffer_addr, std::uint64_t seq,
                             std::uint32_t request_slot);
  des::Task<void> irecv_body(RecvTicket ticket, std::uint32_t request_slot);

  /// Eager wire chain (replaces the spawned deliver_eager coroutine):
  /// a zero-delay raw event injects into the fabric, whose completion
  /// callback lands the message at the destination.  ctx is the InFlight.
  /// eager_delivered_cb doubles as the retry driver: a failed wire leg
  /// reschedules eager_wire_cb after the policy backoff, and a message
  /// that exhausts its retries is dropped (sequence still advances, so
  /// later traffic from the same source is not wedged).
  static void eager_wire_cb(void* ctx);
  static void eager_delivered_cb(void* ctx, fabric::XferStatus status);
  /// Receive-timeout timer (ctx is the PendingRecv).
  static void recv_timeout_cb(void* ctx);
  /// Rendezvous match-wait deadline (ctx is the InFlight): if the peer's
  /// node is down, fails the send with kPeerDown; otherwise re-arms (the
  /// peer is merely slow, not dead).
  static void rdv_sync_timeout_cb(void* ctx);

  /// Applies an arrival in per-source issue order (MPI non-overtaking).
  void arrive_ordered(std::uint32_t inflight_slot);
  void deliver_to_matcher(std::uint32_t inflight_slot);
  void hold_out_of_order(int src, std::uint32_t inflight_slot);

  std::uint32_t acquire_pending();
  void release_pending(std::uint32_t slot);
  SimRequest acquire_request();
  void release_request(std::uint32_t slot);

  /// Host carrying `rank` (world placement; identity by default).
  fabric::NodeId node_of(int rank) const;

  std::uintptr_t default_addr() const;

  SimWorld* world_;
  int rank_;
  msg::TagMatcher<detail::InFlightId> matcher_;
  std::deque<PendingRecv> pending_pool_;  // deque: references held across awaits
  std::vector<std::uint32_t> pending_free_;
  std::deque<Request> request_pool_;
  std::vector<std::uint32_t> request_free_;
  // Per-destination send sequence numbers; per-source expected arrival
  // sequence + hold ring for out-of-order network completions.
  std::vector<std::uint64_t> send_seq_;
  std::vector<std::uint64_t> expect_seq_;
  std::vector<HoldRing> held_;
  std::size_t held_count_ = 0;
  std::size_t max_held_ = 0;
  des::SimTime earliest_next_send_ = 0;
  std::uint64_t eager_count_ = 0;
  std::uint64_t rendezvous_count_ = 0;
  std::vector<AmHandler> am_handlers_;
  std::uint64_t am_dispatched_ = 0;
  std::unique_ptr<msg::RegistrationCache> reg_cache_;

  // Observability hooks; null until SimWorld::attach_* is called, and every
  // instrumented path branches on that (zero cost when unobserved).
  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  const detail::TraceIds* ids_ = &detail::kNoTraceIds;  ///< set with tracer_
  obs::Counter* sends_counter_ = nullptr;
  obs::LogHistogram* msg_bytes_ = nullptr;  ///< single DES thread: plain ops
};

/// Owner of the simulated cluster: engine, topology, network, node model
/// and one SimComm per rank.
class SimWorld {
 public:
  /// Protocol header bytes charged to control messages (envelope, RTS/CTS).
  static constexpr std::uint64_t kHeaderBytes = 40;

  /// `topology` defaults to make_default_topology(ranks); `node` defaults
  /// to the conventional 2002 node.  `eager_override` (bytes) replaces the
  /// fabric's eager/rendezvous threshold when non-zero.
  SimWorld(std::size_t ranks, fabric::FabricParams fabric,
           std::unique_ptr<fabric::Topology> topology = nullptr,
           hw::NodeModel node = hw::NodeDesigner().design(
               hw::NodeArch::kConventional, 2002.0),
           std::uint32_t eager_override = 0);

  /// Spawns `program` on every rank.  The callable is kept alive for the
  /// world's lifetime, so lambdas that are themselves coroutines are safe:
  /// their closure (which the coroutine frame references) survives until
  /// after run().
  void launch(std::function<des::Task<void>(SimComm&)> program);

  /// Runs the simulation to completion; returns elapsed simulated seconds.
  double run();

  std::size_t ranks() const { return comms_.size(); }
  SimComm& comm(std::size_t r) { return *comms_.at(r); }

  /// Maps ranks onto specific hosts of the topology (the resource
  /// manager's allocation, a fragmentation experiment, ...).  `nodes[r]`
  /// is rank r's host; one entry per rank, all distinct, all within the
  /// topology.  Call before launch().  Without it rank r runs on node r —
  /// the historical identity placement, so existing runs are unchanged.
  void set_placement(std::vector<fabric::NodeId> nodes);
  /// Host carrying `rank` under the current placement.
  fabric::NodeId node_of(int rank) const {
    return placement_.empty()
               ? static_cast<fabric::NodeId>(rank)
               : placement_[static_cast<std::size_t>(rank)];
  }
  des::Engine& engine() { return engine_; }
  fabric::SimNetwork& network() { return *network_; }
  const fabric::FabricParams& params() const { return network_->params(); }
  const hw::NodeModel& node() const { return node_; }
  std::uint32_t eager_threshold() const { return eager_threshold_; }

  /// LogGP view of this world's fabric at its typical hop count.
  fabric::LogGPParams loggp() const;

  // -- fault path --------------------------------------------------------------
  /// Arms the messaging layer against the injector's faults: wire
  /// failures are retried per `policy`, exhausted messages are dropped
  /// with an error status, and (if policy.recv_timeout > 0) receives and
  /// rendezvous handshakes time out instead of hanging on a dead peer.
  /// Call before launch().  Without this call the fault machinery is
  /// fully disabled and runs are event-for-event identical to the seed.
  void enable_faults(fault::Injector& injector, RetryPolicy policy = {});
  bool faults_enabled() const { return injector_ != nullptr; }
  fault::Injector* injector() const { return injector_; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  void count_retry() { ++msg_retries_; }
  void count_drop() { ++msg_drops_; }
  void count_timeout() { ++recv_timeouts_; }
  std::uint64_t msg_retries() const { return msg_retries_; }
  std::uint64_t msg_drops() const { return msg_drops_; }
  std::uint64_t recv_timeouts() const { return recv_timeouts_; }

  /// Program instances spawned / completed so far (one per rank per
  /// launch() call).  launched == finished once every rank's program ran
  /// to the end — the difference, mid-run, is the number of still-working
  /// or wedged ranks.
  std::uint64_t ranks_launched() const { return ranks_launched_; }
  std::uint64_t ranks_finished() const { return ranks_finished_; }

  // -- eager admission control -------------------------------------------------
  /// Arms congestion-aware eager admission (see AdmissionControl).  Call
  /// before launch(); never call with messages on the wire.
  void set_admission(AdmissionControl admission);
  const AdmissionControl& admission() const { return admission_; }
  bool admission_enabled() const { return admission_.max_per_dest > 0; }
  std::uint32_t eager_dest_load(int rank) const {
    return eager_dest_load_[static_cast<std::size_t>(rank)];
  }
  void note_eager_inject(int rank) {
    ++eager_dest_load_[static_cast<std::size_t>(rank)];
  }
  void note_eager_done(int rank) {
    --eager_dest_load_[static_cast<std::size_t>(rank)];
  }
  void count_deferral() { ++eager_deferrals_; }
  std::uint64_t eager_deferrals() const { return eager_deferrals_; }

  /// Attaches a tracer (use an obs::SimClock over this world's engine):
  /// one track per rank plus the network's per-link tracks.  Rank spans
  /// cover every operation — send/recv with protocol-phase sub-spans,
  /// collectives, compute, waits — so TraceAnalysis can reconstruct the
  /// critical path.  Call before launch().  Re-attaching the same tracer
  /// (e.g. after detach_tracer) rebinds the record pointers without
  /// creating duplicate tracks.
  void attach_tracer(obs::Tracer& tracer);

  /// Stops all recording: the hot paths fall back to their null-tracer
  /// branches, exactly as if no tracer had ever been attached.  Tracks and
  /// interned names survive for a later re-attach.
  void detach_tracer();

  /// Cheap enable gate over the bound tracer: flips every rank's (and the
  /// network's) record-path pointer between the bound tracer and null, so
  /// disabled tracing costs exactly the null-pointer branch an untraced
  /// run pays — no per-event enabled check.  Requires a prior
  /// attach_tracer.
  void set_tracing_enabled(bool on);

  /// Attaches a metrics registry: live send counters/size histograms
  /// during the run, plus engine, fabric, matcher and registration-cache
  /// totals mirrored at the end of each run().
  void attach_metrics(obs::MetricsRegistry& metrics);

  /// Selected-and-generated schedule for a collective, memoized per world:
  /// every rank of every iteration reuses one selection + one schedule
  /// (selection alone costs more than a small collective's simulation).
  const coll::Schedule& collective_schedule(coll::Collective kind,
                                            std::size_t count, int root);

  /// InFlight slab pool (shared across ranks; the simulation is
  /// single-threaded).  Capacity growth = allocations.
  detail::InFlight& inflight(std::uint32_t slot) {
    return inflight_pool_[slot];
  }
  std::uint32_t acquire_inflight();
  void release_inflight_ref(std::uint32_t slot);
  std::size_t inflight_pool_capacity() const { return inflight_pool_.size(); }
  std::size_t inflight_in_use() const {
    return inflight_pool_.size() - inflight_free_.size();
  }
  std::size_t max_inflight_in_use() const { return max_inflight_in_use_; }

 private:
  static std::uint64_t pack_schedule_key(coll::Collective kind,
                                         std::size_t count, int root);

  des::Engine engine_;
  std::unique_ptr<fabric::Topology> topo_;
  std::unique_ptr<fabric::SimNetwork> network_;
  std::vector<fabric::NodeId> placement_;  ///< empty = identity
  hw::NodeModel node_;
  std::uint32_t eager_threshold_;
  obs::MetricsRegistry* metrics_ = nullptr;
  detail::TraceIds trace_ids_;  ///< interned in attach_tracer
  obs::Tracer* bound_tracer_ = nullptr;  ///< tracer tracks were built for
  fault::Injector* injector_ = nullptr;
  RetryPolicy retry_policy_;
  AdmissionControl admission_;
  std::vector<std::uint32_t> eager_dest_load_;  ///< empty until set_admission
  std::uint64_t eager_deferrals_ = 0;
  std::uint64_t msg_retries_ = 0;
  std::uint64_t msg_drops_ = 0;
  std::uint64_t recv_timeouts_ = 0;
  std::uint64_t ranks_launched_ = 0;
  std::uint64_t ranks_finished_ = 0;
  std::vector<std::unique_ptr<SimComm>> comms_;
  // Launched programs; std::list keeps closure addresses stable because
  // coroutine frames created from a closure reference that exact object.
  std::list<std::function<des::Task<void>(SimComm&)>> programs_;
  // Memoized collective schedules: flat hash on a packed (kind, count,
  // root) key, values indirected through a deque so the references
  // collective_schedule() hands out stay stable across cache growth.
  support::FlatMap64<std::uint32_t> schedule_cache_;
  std::deque<coll::Schedule> schedules_;
  // InFlight slab (deque: raw-chain contexts point at records).
  std::deque<detail::InFlight> inflight_pool_;
  std::vector<std::uint32_t> inflight_free_;
  std::size_t max_inflight_in_use_ = 0;
};

}  // namespace polaris::simrt
