#include "polaris/serve/serve.hpp"

#include <algorithm>

#include "polaris/support/check.hpp"

namespace polaris::serve {

const char* to_string(LbPolicy policy) {
  switch (policy) {
    case LbPolicy::kRandom:
      return "random";
    case LbPolicy::kRoundRobin:
      return "round-robin";
    case LbPolicy::kJsq:
      return "jsq";
    case LbPolicy::kPo2c:
      return "po2c";
  }
  return "unknown";
}

ServeSim::ServeSim(ServeConfig cfg, std::unique_ptr<fabric::Topology> topology)
    : cfg_(std::move(cfg)) {
  POLARIS_CHECK(cfg_.frontends >= 1 && cfg_.shards >= 1);
  POLARIS_CHECK(cfg_.service_mean_s > 0.0 && cfg_.duration_s > 0.0);
  POLARIS_CHECK(cfg_.warmup_s >= 0.0 && cfg_.warmup_s < cfg_.duration_s);
  topo_ = topology ? std::move(topology)
                   : std::make_unique<fabric::Crossbar>(cfg_.frontends +
                                                        cfg_.shards);
  if (!cfg_.frontend_nodes.empty()) {
    POLARIS_CHECK(cfg_.frontend_nodes.size() == cfg_.frontends);
  }
  if (!cfg_.shard_nodes.empty()) {
    POLARIS_CHECK(cfg_.shard_nodes.size() == cfg_.shards);
  }
  POLARIS_CHECK_MSG(cfg_.frontends + cfg_.shards <= topo_->node_count(),
                    "topology too small for the serving tier");
  network_ = std::make_unique<fabric::SimNetwork>(engine_, cfg_.fabric,
                                                  *topo_);
  network_->set_routing(cfg_.routing);

  duration_ticks_ = des::from_seconds(cfg_.duration_s);
  warmup_ticks_ = des::from_seconds(cfg_.warmup_s);
  if (cfg_.timeline_bucket_s > 0.0) {
    bucket_ticks_ = des::from_seconds(cfg_.timeline_bucket_s);
    POLARIS_CHECK(bucket_ticks_ >= 1);
    const std::size_t buckets = static_cast<std::size_t>(
        (duration_ticks_ + bucket_ticks_ - 1) / bucket_ticks_);
    result_.timeline.resize(buckets);
  }

  // All randomness splits off one root stream, in a fixed actor order, so
  // the run is a pure function of the seed.
  support::Random root(cfg_.seed);
  // One metric shard per front-end; ServeSim is single-threaded DES today,
  // but the shards keep the record path allocation- and lock-free and the
  // fold goes through the registry's merge path instead of a hand-rolled
  // loop.
  obs_ = obs::ShardedRegistry(cfg_.frontends);
  h_latency_ = obs_.log_histogram("serve.latency_ns");
  frontends_.resize(cfg_.frontends);
  for (std::size_t f = 0; f < cfg_.frontends; ++f) {
    Frontend& fe = frontends_[f];
    fe.latency_ns = &obs_.shard(f).hist(h_latency_);
    fe.rng = root.split();
    fe.arrivals = std::make_unique<support::ArrivalProcess>(
        cfg_.arrival, root.engine()());
    fe.index = static_cast<std::uint32_t>(f);
    fe.sim = this;
    // Stagger the round-robin cursors so front-ends do not march in
    // lockstep onto the same shard.
    fe.rr_next = static_cast<std::uint32_t>(f % cfg_.shards);
  }
  shards_.resize(cfg_.shards);
  for (Shard& s : shards_) s.rng = root.split();
}

fabric::NodeId ServeSim::frontend_node(std::size_t f) const {
  return cfg_.frontend_nodes.empty() ? static_cast<fabric::NodeId>(f)
                                     : cfg_.frontend_nodes[f];
}

fabric::NodeId ServeSim::shard_node(std::size_t s) const {
  return cfg_.shard_nodes.empty()
             ? static_cast<fabric::NodeId>(cfg_.frontends + s)
             : cfg_.shard_nodes[s];
}

fault::Injector& ServeSim::injector() {
  if (!injector_) {
    injector_ = std::make_unique<fault::Injector>(engine_, *network_);
    injector_->add_listener(this);
  }
  return *injector_;
}

std::size_t ServeSim::live_shards() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.up ? 1 : 0;
  return n;
}

// ------------------------------------------------------------- live control

void ServeSim::set_shard_admin(std::size_t shard, bool accept) {
  POLARIS_CHECK(shard < shards_.size());
  shards_[shard].accepting = accept;
}

void ServeSim::set_load_factor(double factor) {
  POLARIS_CHECK(factor > 0.0);
  load_factor_ = factor;
}

void ServeSim::set_admission_limit(std::size_t max_queue) {
  admission_limit_ = max_queue;
}

bool ServeSim::shard_drained(std::size_t s) const {
  const Shard& sh = shards_[s];
  return sh.queue.empty() && sh.in_service == kNilSlot &&
         sh.outstanding == 0;
}

// ------------------------------------------------------------- request pool

ServeSim::Request& ServeSim::acquire_request() {
  if (!request_free_.empty()) {
    const std::uint32_t slot = request_free_.back();
    request_free_.pop_back();
    Request& r = requests_[slot];
    r.failovers = 0;
    r.active = true;
    return r;
  }
  const auto slot = static_cast<std::uint32_t>(requests_.size());
  requests_.emplace_back();
  Request& r = requests_.back();
  r.sim = this;
  r.slot = slot;
  r.active = true;
  return r;
}

void ServeSim::release_request(std::uint32_t slot) {
  requests_[slot].active = false;
  request_free_.push_back(slot);
}

// ------------------------------------------------------------ load balancing

std::uint32_t ServeSim::pick_shard(Frontend& fe) {
  const auto n = static_cast<std::uint32_t>(shards_.size());
  auto next_up = [&](std::uint32_t from) {
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t s = (from + i) % n;
      if (shards_[s].up && shards_[s].accepting) return s;
    }
    return kNilSlot;
  };
  switch (cfg_.lb) {
    case LbPolicy::kRandom:
      return next_up(static_cast<std::uint32_t>(
          fe.rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
    case LbPolicy::kRoundRobin: {
      const std::uint32_t s = next_up(fe.rr_next);
      if (s != kNilSlot) fe.rr_next = (s + 1) % n;
      return s;
    }
    case LbPolicy::kJsq: {
      std::uint32_t best = kNilSlot;
      for (std::uint32_t s = 0; s < n; ++s) {
        if (!shards_[s].up || !shards_[s].accepting) continue;
        if (best == kNilSlot ||
            shards_[s].outstanding < shards_[best].outstanding) {
          best = s;
        }
      }
      return best;
    }
    case LbPolicy::kPo2c: {
      const std::uint32_t a = next_up(static_cast<std::uint32_t>(
          fe.rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      const std::uint32_t b = next_up(static_cast<std::uint32_t>(
          fe.rng.uniform_int(0, static_cast<std::int64_t>(n) - 1)));
      if (a == kNilSlot) return b;
      if (b == kNilSlot) return a;
      return shards_[b].outstanding < shards_[a].outstanding ? b : a;
    }
  }
  return kNilSlot;
}

// ------------------------------------------------------------ request flow

void ServeSim::arrival_cb(void* ctx) {
  Frontend& fe = *static_cast<Frontend*>(ctx);
  ServeSim& sim = *fe.sim;

  Request& req = sim.acquire_request();
  req.arrival = sim.engine_.now();
  req.frontend = fe.index;
  ++sim.result_.offered;

  const std::uint32_t shard = sim.pick_shard(fe);
  if (shard == kNilSlot) {
    sim.drop(req);
  } else {
    req.shard = shard;
    sim.dispatch(req);
  }

  // Open loop: the next arrival rides its own clock, system state be
  // damned.  Generation stops at the duration boundary; in-flight work
  // then drains and the engine runs dry.
  const des::SimTime gap =
      des::from_seconds(fe.arrivals->next() / sim.load_factor_);
  const des::SimTime next = sim.engine_.now() + std::max<des::SimTime>(gap, 1);
  if (next < sim.duration_ticks_) {
    sim.engine_.schedule_raw_at(next, &ServeSim::arrival_cb, &fe);
  }
}

void ServeSim::dispatch(Request& req) {
  Shard& sh = shards_[req.shard];
  ++sh.outstanding;
  network_->transfer_raw(frontend_node(req.frontend), shard_node(req.shard),
                         cfg_.request_bytes, &ServeSim::request_landed_cb,
                         &req);
}

void ServeSim::request_landed_cb(void* ctx, fabric::XferStatus status) {
  Request& req = *static_cast<Request*>(ctx);
  ServeSim& sim = *req.sim;
  Shard& sh = sim.shards_[req.shard];
  if (status != fabric::XferStatus::kOk || !sh.up) {
    // Killed on the wire by a fault, or the shard died in the same tick
    // it landed: hand the request back to the balancer.
    --sh.outstanding;
    sim.redispatch(req);
    return;
  }
  if (sh.in_service == kNilSlot) {
    sh.in_service = req.slot;
    sim.start_service(req.shard);
  } else if (sim.admission_limit_ > 0 &&
             sh.queue.size() >= sim.admission_limit_) {
    // Queue full: shed at admission rather than letting the tail grow
    // unboundedly.
    --sh.outstanding;
    sim.reject(req);
  } else {
    sh.queue.push_back(req.slot);
    sim.result_.max_queue_depth =
        std::max(sim.result_.max_queue_depth, sh.queue.size() + 1);
  }
}

void ServeSim::redispatch(Request& req) {
  static constexpr std::uint8_t kMaxFailovers = 8;
  if (req.failovers >= kMaxFailovers) {
    drop(req);
    return;
  }
  ++req.failovers;
  ++result_.failovers;
  const std::uint32_t shard = pick_shard(frontends_[req.frontend]);
  if (shard == kNilSlot) {
    drop(req);
    return;
  }
  req.shard = shard;
  dispatch(req);
}

void ServeSim::start_service(std::uint32_t shard_idx) {
  Shard& sh = shards_[shard_idx];
  Request& req = requests_[sh.in_service];
  const double t = sh.rng.exponential(1.0 / cfg_.service_mean_s);
  sh.service_ev = engine_.schedule_raw_after(
      std::max<des::SimTime>(des::from_seconds(t), 1),
      &ServeSim::service_done_cb, &req);
}

void ServeSim::service_done_cb(void* ctx) {
  Request& req = *static_cast<Request*>(ctx);
  ServeSim& sim = *req.sim;
  Shard& sh = sim.shards_[req.shard];
  ++sh.served;
  sh.service_ev = des::EventId{};
  // The CPU is free the moment the response is handed to the NIC.
  sh.in_service = kNilSlot;
  if (!sh.queue.empty()) {
    sh.in_service = sh.queue.front();
    sh.queue.pop_front();
    sim.start_service(req.shard);
  }
  sim.network_->transfer_raw(sim.shard_node(req.shard),
                             sim.frontend_node(req.frontend),
                             sim.cfg_.response_bytes,
                             &ServeSim::response_landed_cb, &req);
}

void ServeSim::response_landed_cb(void* ctx, fabric::XferStatus status) {
  Request& req = *static_cast<Request*>(ctx);
  ServeSim& sim = *req.sim;
  --sim.shards_[req.shard].outstanding;
  if (status != fabric::XferStatus::kOk) {
    // The response died on the wire (shard crashed post-service).  The
    // work is lost; re-executing served requests is an exactly-once
    // question the timing model does not arbitrate.
    sim.drop(req);
    return;
  }
  sim.complete(req);
}

void ServeSim::complete(Request& req) {
  const des::SimTime latency = engine_.now() - req.arrival;
  ++result_.completed;
  if (req.arrival >= warmup_ticks_) {
    ++result_.recorded;
    frontends_[req.frontend].latency_ns->record(
        static_cast<std::uint64_t>(latency));
  }
  if (bucket_ticks_ > 0) {
    const std::size_t b = std::min<std::size_t>(
        static_cast<std::size_t>(req.arrival / bucket_ticks_),
        result_.timeline.size() - 1);
    result_.timeline[b].record(static_cast<std::uint64_t>(latency));
  }
  release_request(req.slot);
}

void ServeSim::drop(Request& req) {
  ++result_.dropped;
  release_request(req.slot);
}

void ServeSim::reject(Request& req) {
  ++result_.rejected;
  release_request(req.slot);
}

// ------------------------------------------------------------------- faults

void ServeSim::on_fault(const fault::FaultEvent& ev) {
  if (ev.kind != fault::FaultEvent::Kind::kNodeCrash &&
      ev.kind != fault::FaultEvent::Kind::kNodeRepair) {
    return;
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (shard_node(s) != ev.id) continue;
    Shard& sh = shards_[s];
    if (ev.kind == fault::FaultEvent::Kind::kNodeRepair) {
      sh.up = true;
      return;
    }
    sh.up = false;
    // Everything the dead shard held goes back through the balancer.  The
    // in-service request's completion event must die with the node; wire
    // transfers to it are killed by the network itself and fail over from
    // request_landed_cb.
    if (sh.in_service != kNilSlot) {
      engine_.cancel(sh.service_ev);
      sh.service_ev = des::EventId{};
      const std::uint32_t slot = sh.in_service;
      sh.in_service = kNilSlot;
      --sh.outstanding;
      redispatch(requests_[slot]);
    }
    while (!sh.queue.empty()) {
      const std::uint32_t slot = sh.queue.front();
      sh.queue.pop_front();
      --sh.outstanding;
      redispatch(requests_[slot]);
    }
    return;
  }
}

// ---------------------------------------------------------------------- run

ServeResult ServeSim::run() {
  POLARIS_CHECK_MSG(!ran_, "ServeSim::run is one-shot");
  ran_ = true;
  for (Frontend& fe : frontends_) {
    const des::SimTime first = std::max<des::SimTime>(
        des::from_seconds(fe.arrivals->next() / load_factor_), 1);
    if (first < duration_ticks_) {
      engine_.schedule_raw_at(first, &ServeSim::arrival_cb, &fe);
    }
  }
  engine_.run();

  result_.latency_ns = obs_.merged(h_latency_);
  result_.measured_s = cfg_.duration_s - cfg_.warmup_s;
  result_.throughput_rps =
      static_cast<double>(result_.recorded) / result_.measured_s;
  result_.net = network_->stats();
  return result_;
}

void export_metrics(const ServeResult& r, obs::MetricsRegistry& reg) {
  reg.counter("serve.offered").add(r.offered);
  reg.counter("serve.completed").add(r.completed);
  reg.counter("serve.dropped").add(r.dropped);
  reg.counter("serve.rejected").add(r.rejected);
  reg.counter("serve.failovers").add(r.failovers);
  reg.gauge("serve.throughput_rps").set(r.throughput_rps);
  reg.gauge("serve.p99_us").set(r.p99_us());
  reg.gauge("serve.p999_us").set(r.p999_us());
  reg.gauge("serve.max_queue_depth")
      .set(static_cast<double>(r.max_queue_depth));
  reg.log_histogram("serve.latency_ns").merge_from(r.latency_ns);
}

}  // namespace polaris::serve
