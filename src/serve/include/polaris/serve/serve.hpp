// Datacenter serving tier over the simulated fabric.
//
// The commodity-cluster thesis the paper rides — assemble capability from
// volumes of identical parts — is also the datacenter serving story: a
// rank of front-ends fans millions of requests per second out to sharded
// service ranks, and the metric that matters is not mean throughput but
// the p99/p999 tail of end-to-end latency.  ServeSim models that tier on
// the packet-level fabric simulation:
//
//   - Front-ends generate OPEN-LOOP traffic (support::ArrivalProcess —
//     Poisson or bursty MMPP): requests arrive on their own clock, so an
//     overloaded system builds queues instead of conveniently slowing the
//     workload, which is where tails actually come from.
//   - A pluggable load-balancing policy picks the shard per request:
//     uniform random, round-robin, join-shortest-queue (by outstanding
//     requests), or power-of-two-choices (sample two shards, take the
//     shorter — the classic O(1) approximation of JSQ).
//   - Each shard serves one request at a time with exponentially
//     distributed service times, FIFO-queueing the rest; request and
//     response bytes ride fabric::SimNetwork::transfer_raw, so link
//     contention, topology, routing mode and faults all shape the tail.
//   - End-to-end latency (arrival to response landed) is recorded in
//     obs::LogHistogram per front-end and merged at export; an optional
//     time-bucketed timeline captures tail excursions around a fault.
//
// Fault behaviour: register the sim as a fault::FaultListener and crash a
// shard's node mid-run — in-flight requests to it fail, the front-ends
// fail over to surviving shards (counted as retries), and the timeline
// shows the p999 excursion and recovery.  Everything is driven by one
// des::Engine and seeded RNG streams split per actor, so a run is
// reproducible bit-for-bit regardless of host thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/sharded.hpp"
#include "polaris/support/arrival.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::serve {

/// Per-request shard selection policy.
enum class LbPolicy : std::uint8_t {
  kRandom = 0,      ///< uniform random shard
  kRoundRobin = 1,  ///< per-front-end rotation
  kJsq = 2,         ///< join-shortest-queue (outstanding requests)
  kPo2c = 3,        ///< power of two choices
};

const char* to_string(LbPolicy policy);

struct ServeConfig {
  std::size_t frontends = 4;
  std::size_t shards = 16;

  /// Open-loop arrival process PER FRONT-END (aggregate offered load is
  /// frontends * arrival.rate).
  support::ArrivalSpec arrival = support::ArrivalSpec::poisson(100'000.0);

  double service_mean_s = 10e-6;  ///< exponential service time mean
  std::uint64_t request_bytes = 512;
  std::uint64_t response_bytes = 512;

  LbPolicy lb = LbPolicy::kRandom;
  fabric::RoutingMode routing = fabric::RoutingMode::kOblivious;
  fabric::FabricParams fabric;

  double duration_s = 0.1;  ///< arrival-generation window; then drain
  double warmup_s = 0.01;   ///< arrivals before this are not recorded

  /// > 0 slices recorded latencies into ceil(duration/bucket) per-bucket
  /// histograms (by arrival time) — the p999-over-time view of a fault.
  double timeline_bucket_s = 0.0;

  std::uint64_t seed = 1;

  /// Host of each front-end / shard.  Empty = identity packing: front-end
  /// i on node i, shard j on node frontends + j.
  std::vector<fabric::NodeId> frontend_nodes;
  std::vector<fabric::NodeId> shard_nodes;
};

struct ServeResult {
  std::uint64_t offered = 0;     ///< requests generated
  std::uint64_t completed = 0;   ///< responses landed
  std::uint64_t recorded = 0;    ///< completed with arrival >= warmup
  std::uint64_t dropped = 0;     ///< no live shard / response lost
  std::uint64_t rejected = 0;    ///< turned away by the admission limit
  std::uint64_t failovers = 0;   ///< re-dispatches after a shard failure

  double measured_s = 0.0;        ///< duration - warmup
  double throughput_rps = 0.0;    ///< recorded / measured_s
  std::size_t max_queue_depth = 0;

  /// End-to-end latency in engine ticks (nanoseconds), merged across
  /// front-ends, post-warmup arrivals only.
  obs::LogHistogram latency_ns;
  /// Per-arrival-time-bucket latency (empty unless timeline_bucket_s > 0).
  std::vector<obs::LogHistogram> timeline;

  fabric::NetworkStats net;

  double p50_us() const { return latency_ns.quantile(0.50) * 1e-3; }
  double p99_us() const { return latency_ns.quantile(0.99) * 1e-3; }
  double p999_us() const { return latency_ns.quantile(0.999) * 1e-3; }
  double mean_us() const { return latency_ns.mean() * 1e-3; }
};

/// One serving-tier simulation over its own engine + network.  Usage:
///
///   ServeSim sim(cfg, std::make_unique<fabric::FatTree>(4));
///   sim.injector().schedule_node_crash(0.05, sim.shard_node(3), 0.02);
///   ServeResult r = sim.run();
///
/// run() is one-shot.  The injector is constructed lazily; a run that
/// never touches it is event-for-event identical to a faultless build.
class ServeSim : public fault::FaultListener {
 public:
  /// `topology` defaults to a crossbar over frontends + shards hosts.
  explicit ServeSim(ServeConfig cfg,
                    std::unique_ptr<fabric::Topology> topology = nullptr);

  ServeResult run();

  des::Engine& engine() { return engine_; }
  fabric::SimNetwork& network() { return *network_; }
  const fabric::Topology& topology() const { return *topo_; }

  /// Lazily-created fault injector wired to this sim's network, with the
  /// sim registered as listener (shard crash -> failover, repair ->
  /// back in rotation).
  fault::Injector& injector();

  fabric::NodeId frontend_node(std::size_t f) const;
  fabric::NodeId shard_node(std::size_t s) const;

  // -- live control (scenario hooks; safe to call from DES events mid-run) --

  /// Administratively drains (`accept` false) or restores a shard: a
  /// drained shard takes no NEW dispatches but finishes everything it
  /// already holds — the rolling-upgrade primitive.  Distinct from a
  /// crash, which kills in-flight work.
  void set_shard_admin(std::size_t shard, bool accept);
  /// Scales the open-loop arrival rate by `factor` (> 0) for all gaps
  /// drawn from now on.  1.0 restores the configured rate.
  void set_load_factor(double factor);
  /// Caps each shard's wait queue: a request landing on a full queue is
  /// turned away (counted in `rejected`, not `dropped`).  0 = unlimited.
  void set_admission_limit(std::size_t max_queue);

  // -- live probes (cheap, valid mid-run) --

  std::size_t shard_count() const { return shards_.size(); }
  bool shard_up(std::size_t s) const { return shards_[s].up; }
  bool shard_accepting(std::size_t s) const {
    return shards_[s].up && shards_[s].accepting;
  }
  /// True once a shard holds no work at all (empty queue, idle server, no
  /// in-flight responses) — the "safe to upgrade" signal after a drain.
  bool shard_drained(std::size_t s) const;
  std::size_t queue_depth(std::size_t s) const {
    const Shard& sh = shards_[s];
    return sh.queue.size() + (sh.in_service == kNilSlot ? 0 : 1);
  }
  std::uint64_t offered() const { return result_.offered; }
  std::uint64_t completed() const { return result_.completed; }
  std::uint64_t dropped() const { return result_.dropped; }
  std::uint64_t rejected() const { return result_.rejected; }
  std::uint64_t failovers() const { return result_.failovers; }
  std::size_t max_queue_depth() const { return result_.max_queue_depth; }
  /// Requests generated but not yet completed/dropped/rejected.  The
  /// conservation invariant: offered == completed + dropped + rejected +
  /// in_flight at every instant, and in_flight == 0 once the engine runs
  /// dry.
  std::uint64_t in_flight() const {
    return result_.offered - result_.completed - result_.dropped -
           result_.rejected;
  }
  /// Live request records in the pool — measures in-flight work from the
  /// allocator side, independently of the counters, so a conservation
  /// monitor can cross-check the two.
  std::size_t active_requests() const {
    return requests_.size() - request_free_.size();
  }
  /// p99 of everything recorded so far (merged across front-ends).
  double live_p99_us() const {
    return obs_.merged(h_latency_).quantile(0.99) * 1e-3;
  }

  void on_fault(const fault::FaultEvent& ev) override;

 private:
  static constexpr std::uint32_t kNilSlot = 0xffff'ffffu;

  struct Request {
    ServeSim* sim = nullptr;
    des::SimTime arrival = 0;
    std::uint32_t frontend = 0;
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
    std::uint8_t failovers = 0;
    bool active = false;
  };

  struct Frontend {
    support::Random rng{0};             ///< LB sampling (re-seeded by split)
    std::unique_ptr<support::ArrivalProcess> arrivals;
    /// This front-end's shard in the sim's ShardedRegistry.
    obs::LogHistogram* latency_ns = nullptr;
    std::uint32_t rr_next = 0;          ///< round-robin cursor
    des::SimTime next_arrival = 0;
    std::uint32_t index = 0;
    ServeSim* sim = nullptr;
  };

  struct Shard {
    support::Random rng{0};             ///< service times (re-seeded by split)
    std::deque<std::uint32_t> queue;    ///< waiting request slots
    std::uint32_t in_service = kNilSlot;
    std::uint32_t outstanding = 0;      ///< dispatched, not yet responded
    std::uint64_t served = 0;
    des::EventId service_ev{};          ///< pending completion (fault cancel)
    bool up = true;
    bool accepting = true;              ///< admin drain flag (see set_shard_admin)
  };

  static void arrival_cb(void* ctx);
  static void request_landed_cb(void* ctx, fabric::XferStatus status);
  static void service_done_cb(void* ctx);
  static void response_landed_cb(void* ctx, fabric::XferStatus status);

  std::uint32_t pick_shard(Frontend& fe);
  void dispatch(Request& req);
  /// Failover or drop after a shard-side failure.
  void redispatch(Request& req);
  void start_service(std::uint32_t shard_idx);
  void complete(Request& req);
  void drop(Request& req);
  void reject(Request& req);

  Request& acquire_request();
  void release_request(std::uint32_t slot);

  std::size_t live_shards() const;

  ServeConfig cfg_;
  des::Engine engine_;
  std::unique_ptr<fabric::Topology> topo_;
  std::unique_ptr<fabric::SimNetwork> network_;
  std::unique_ptr<fault::Injector> injector_;

  obs::ShardedRegistry obs_{1};  ///< one shard per front-end
  obs::ShardedRegistry::HistId h_latency_{};
  std::vector<Frontend> frontends_;
  std::vector<Shard> shards_;

  std::deque<Request> requests_;
  std::vector<std::uint32_t> request_free_;

  des::SimTime duration_ticks_ = 0;
  des::SimTime warmup_ticks_ = 0;
  des::SimTime bucket_ticks_ = 0;
  double load_factor_ = 1.0;
  std::size_t admission_limit_ = 0;  ///< 0 = unlimited

  ServeResult result_;
  bool ran_ = false;
};

/// Mirrors a result into a metrics registry under "serve.*".
void export_metrics(const ServeResult& r, obs::MetricsRegistry& reg);

}  // namespace polaris::serve
