#include "polaris/sched/trace.hpp"

#include <algorithm>

#include "polaris/support/check.hpp"

namespace polaris::sched {

std::vector<Job> generate_trace(const TraceConfig& config,
                                std::uint64_t seed) {
  POLARIS_CHECK(config.jobs > 0);
  POLARIS_CHECK(config.min_width_exp <= config.max_width_exp);
  POLARIS_CHECK(config.min_runtime > 0 &&
                config.min_runtime <= config.max_runtime);
  POLARIS_CHECK(config.max_overestimate >= 1.0);

  support::Random rng(seed);
  std::vector<Job> jobs;
  jobs.reserve(config.jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < config.jobs; ++i) {
    t += rng.exponential(1.0 / config.mean_interarrival);
    Job j;
    j.id = i;
    j.submit = t;
    if (rng.bernoulli(config.p_power_of_two)) {
      j.width = static_cast<std::size_t>(
          rng.power_of_two(config.min_width_exp, config.max_width_exp));
    } else {
      j.width = static_cast<std::size_t>(rng.uniform_int(
          std::int64_t{1} << config.min_width_exp,
          std::int64_t{1} << config.max_width_exp));
    }
    j.runtime = rng.log_uniform(config.min_runtime, config.max_runtime);
    j.estimate = j.runtime * rng.uniform(1.0, config.max_overestimate);
    jobs.push_back(j);
  }
  return jobs;
}

double offered_load(const std::vector<Job>& jobs, std::size_t nodes) {
  POLARIS_CHECK(nodes > 0);
  if (jobs.empty()) return 0.0;
  double work = 0.0;
  double first = jobs.front().submit, last = jobs.front().submit;
  for (const Job& j : jobs) {
    work += j.node_seconds();
    first = std::min(first, j.submit);
    last = std::max(last, j.submit);
  }
  const double span = std::max(last - first, 1.0);
  return work / (static_cast<double>(nodes) * span);
}

}  // namespace polaris::sched
