#include "polaris/sched/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <set>
#include <tuple>

#include "polaris/support/check.hpp"
#include "polaris/support/stats.hpp"

namespace polaris::sched {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::kFcfs:
      return "fcfs";
    case Policy::kSjf:
      return "sjf";
    case Policy::kEasyBackfill:
      return "easy-backfill";
    case Policy::kConservative:
      return "conservative";
  }
  return "?";
}

namespace {

struct Running {
  std::size_t job = 0;
  double planning_end = 0.0;  ///< start + max(estimate, runtime)
  std::size_t width = 0;
};

struct Event {
  double time;
  std::uint64_t seq;
  enum class Kind { kArrival, kCompletion } kind;
  std::size_t job;
};
struct Later {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class Simulator {
 public:
  Simulator(std::vector<Job>& jobs, std::size_t nodes, Policy policy)
      : jobs_(jobs), nodes_(nodes), free_(nodes), policy_(policy) {}

  SchedMetrics run();

 private:
  void start_job(std::size_t j, double now, bool out_of_order);
  void try_start(double now);
  void try_start_fcfs(double now);
  void try_start_sjf(double now);
  void try_start_easy(double now);
  void try_start_conservative(double now);
  /// Earliest time the queue head could start, planning with estimates,
  /// plus the node surplus available until then.
  std::pair<double, std::size_t> head_reservation(double now) const;

  std::vector<Job>& jobs_;
  std::size_t nodes_;
  std::size_t free_;
  Policy policy_;
  std::deque<std::size_t> queue_;  // arrival order (non-SJF policies)
  // SJF keeps two ordered indexes instead of rescanning the queue per
  // start: candidates by (estimate, arrival), and arrivals by age (to tell
  // an in-order start from a backfill).  Both O(log Q) per update.
  std::set<std::tuple<double, std::uint64_t, std::size_t>> sjf_by_estimate_;
  std::set<std::pair<std::uint64_t, std::size_t>> sjf_by_arrival_;
  std::vector<Running> running_;  // kept sorted by (planning_end, job)
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::uint64_t seq_ = 0;
  std::uint64_t backfilled_ = 0;
};

bool running_before(const Running& a, const Running& b) {
  if (a.planning_end != b.planning_end) {
    return a.planning_end < b.planning_end;
  }
  return a.job < b.job;
}

void Simulator::start_job(std::size_t j, double now, bool out_of_order) {
  Job& job = jobs_[j];
  POLARIS_CHECK(job.width <= free_);
  job.start = now;
  job.finish = now + job.runtime;
  free_ -= job.width;
  const Running r{j, now + std::max(job.estimate, job.runtime), job.width};
  running_.insert(
      std::upper_bound(running_.begin(), running_.end(), r, running_before),
      r);
  events_.push(Event{job.finish, seq_++, Event::Kind::kCompletion, j});
  if (out_of_order) ++backfilled_;
}

void Simulator::try_start_fcfs(double now) {
  while (!queue_.empty() && jobs_[queue_.front()].width <= free_) {
    start_job(queue_.front(), now, false);
    queue_.pop_front();
  }
}

void Simulator::try_start_sjf(double now) {
  // One forward walk in estimate order replaces the old restart-from-
  // scratch scan per start: free_ only shrinks during the pass, so a job
  // skipped for width can never fit later in the same pass, and every job
  // this walk starts is exactly the one the rescan would have picked.
  auto it = sjf_by_estimate_.begin();
  while (it != sjf_by_estimate_.end()) {
    const auto [estimate, seq, j] = *it;
    if (jobs_[j].width > free_) {
      ++it;
      continue;
    }
    const bool in_order = seq == sjf_by_arrival_.begin()->first;
    start_job(j, now, !in_order);
    sjf_by_arrival_.erase({seq, j});
    it = sjf_by_estimate_.erase(it);
  }
}

std::pair<double, std::size_t> Simulator::head_reservation(
    double now) const {
  // running_ is maintained in planning-end order, so the shadow walk reads
  // it directly — the per-decision copy-and-sort is gone.
  const Job& head = jobs_[queue_.front()];
  std::size_t avail = free_;
  double shadow = now;
  for (const Running& r : running_) {
    if (avail >= head.width) break;
    avail += r.width;
    shadow = r.planning_end;
  }
  POLARIS_CHECK_MSG(avail >= head.width,
                    "job wider than the whole cluster");
  return {shadow, avail - head.width};
}

void Simulator::try_start_easy(double now) {
  try_start_fcfs(now);
  if (queue_.empty()) return;

  auto [shadow, extra] = head_reservation(now);
  // Backfill pass over the rest of the queue in arrival order.
  for (std::size_t qi = 1; qi < queue_.size();) {
    const Job& j = jobs_[queue_[qi]];
    const bool fits_now = j.width <= free_;
    const bool ends_before_shadow = now + j.estimate <= shadow;
    const bool within_extra = j.width <= extra;
    if (fits_now && (ends_before_shadow || within_extra)) {
      if (!ends_before_shadow) extra -= j.width;
      start_job(queue_[qi], now, true);
      queue_.erase(queue_.begin() + static_cast<long>(qi));
    } else {
      ++qi;
    }
  }
}

namespace {

/// Node-availability profile over future time, built from running jobs'
/// planning ends and extended by reservations as they are placed.
/// Piecewise-constant: points_[i] = (time, available nodes from that time
/// until the next point); after the last point everything is free.
class Profile {
 public:
  Profile(double now, std::size_t free, const std::vector<Running>& running,
          std::size_t total)
      : total_(static_cast<long>(total)) {
    std::vector<std::pair<double, long>> deltas;
    deltas.reserve(running.size() + 1);
    deltas.push_back({now, static_cast<long>(free)});
    for (const Running& r : running) {
      deltas.push_back({r.planning_end, static_cast<long>(r.width)});
    }
    std::sort(deltas.begin(), deltas.end());
    long avail = 0;
    for (const auto& [t, d] : deltas) {
      avail += d;
      if (!points_.empty() && points_.back().first == t) {
        points_.back().second = avail;
      } else {
        points_.push_back({t, avail});
      }
    }
  }

  /// Earliest start >= `from` at which `width` nodes stay free for
  /// `duration`.  Amortized O(points): on hitting a blocking segment the
  /// candidate start jumps past it.
  double earliest(double from, std::size_t width, double duration) const {
    const auto w = static_cast<long>(width);
    double t = std::max(from, points_.empty() ? from : points_.front().first);
    std::size_t i = index_at(t);
    for (;;) {
      // Scan segments covering [t, t + duration).
      bool ok = true;
      for (std::size_t j = i; j < points_.size(); ++j) {
        if (points_[j].first >= t + duration) break;
        const double seg_end = j + 1 < points_.size()
                                   ? points_[j + 1].first
                                   : std::numeric_limits<double>::infinity();
        if (seg_end <= t) continue;
        if (points_[j].second < w) {
          // Blocked: restart just after this segment ends.
          if (seg_end == std::numeric_limits<double>::infinity()) {
            // The profile claims < w nodes forever: impossible if width
            // <= total, because all reservations end.
            return t;
          }
          t = seg_end;
          i = index_at(t);
          ok = false;
          break;
        }
      }
      if (ok) return t;
    }
  }

  /// Reserves `width` nodes over [start, start + duration).
  void reserve(double start, std::size_t width, double duration) {
    add_point(start);
    add_point(start + duration);
    const auto w = static_cast<long>(width);
    for (auto& p : points_) {
      if (p.first >= start && p.first < start + duration) p.second -= w;
    }
  }

 private:
  /// Index of the last point with time <= t (0 if none).
  std::size_t index_at(double t) const {
    const auto it = std::upper_bound(
        points_.begin(), points_.end(), t,
        [](double v, const auto& p) { return v < p.first; });
    return it == points_.begin()
               ? 0
               : static_cast<std::size_t>(it - points_.begin()) - 1;
  }

  void add_point(double t) {
    const auto it = std::lower_bound(
        points_.begin(), points_.end(), t,
        [](const auto& p, double v) { return p.first < v; });
    if (it != points_.end() && it->first == t) return;
    // Availability at t continues from the previous segment (or total_
    // when t is past the profile's end / before its start).
    long avail = total_;
    if (it != points_.begin()) avail = (it - 1)->second;
    points_.insert(it, {t, avail});
  }

  std::vector<std::pair<double, long>> points_;
  long total_ = 0;
};

}  // namespace

void Simulator::try_start_conservative(double now) {
  // Rebuild the availability profile and walk the queue in order; each job
  // gets the earliest reservation that delays no earlier one.  Jobs whose
  // reservation is "now" start immediately.
  Profile profile(now, free_, running_, nodes_);
  for (std::size_t qi = 0; qi < queue_.size();) {
    Job& j = jobs_[queue_[qi]];
    const double dur = std::max(j.estimate, 1e-9);
    const double t = profile.earliest(now, j.width, dur);
    profile.reserve(t, j.width, dur);
    if (t <= now && j.width <= free_) {
      start_job(queue_[qi], now, qi != 0);
      queue_.erase(queue_.begin() + static_cast<long>(qi));
    } else {
      ++qi;
    }
  }
}

void Simulator::try_start(double now) {
  switch (policy_) {
    case Policy::kFcfs:
      try_start_fcfs(now);
      break;
    case Policy::kSjf:
      try_start_sjf(now);
      break;
    case Policy::kEasyBackfill:
      try_start_easy(now);
      break;
    case Policy::kConservative:
      try_start_conservative(now);
      break;
  }
}

SchedMetrics Simulator::run() {
  std::vector<std::size_t> order(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (jobs_[a].submit != jobs_[b].submit) {
      return jobs_[a].submit < jobs_[b].submit;
    }
    return jobs_[a].id < jobs_[b].id;
  });
  for (std::size_t j : order) {
    POLARIS_CHECK_MSG(jobs_[j].width <= nodes_,
                      "job wider than the cluster");
    events_.push(Event{jobs_[j].submit, seq_++, Event::Kind::kArrival, j});
  }

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    if (ev.kind == Event::Kind::kArrival) {
      if (policy_ == Policy::kSjf) {
        sjf_by_estimate_.insert({jobs_[ev.job].estimate, ev.seq, ev.job});
        sjf_by_arrival_.insert({ev.seq, ev.job});
      } else {
        queue_.push_back(ev.job);
      }
    } else {
      const Job& done = jobs_[ev.job];
      free_ += done.width;
      // Targeted erase: the entry sits at its (planning_end, job) position.
      const Running key{ev.job,
                        done.start + std::max(done.estimate, done.runtime),
                        done.width};
      const auto it = std::lower_bound(running_.begin(), running_.end(), key,
                                       running_before);
      POLARIS_CHECK(it != running_.end() && it->job == ev.job);
      running_.erase(it);
    }
    try_start(ev.time);
  }
  POLARIS_CHECK_MSG(queue_.empty() && sjf_by_estimate_.empty(),
                    "scheduler left jobs queued");

  SchedMetrics m;
  m.jobs = jobs_.size();
  m.backfilled = backfilled_;
  if (jobs_.empty()) return m;

  support::Summary wait, slowdown;
  double busy = 0.0, first_submit = jobs_.front().submit, last_finish = 0.0;
  for (const Job& j : jobs_) {
    wait.add(j.wait());
    slowdown.add(j.bounded_slowdown());
    busy += j.node_seconds();
    first_submit = std::min(first_submit, j.submit);
    last_finish = std::max(last_finish, j.finish);
  }
  m.makespan = last_finish - first_submit;
  m.utilization =
      busy / (static_cast<double>(nodes_) * std::max(m.makespan, 1e-9));
  m.mean_wait = wait.mean();
  m.p95_wait = wait.percentile(95);
  m.mean_bounded_slowdown = slowdown.mean();
  m.median_bounded_slowdown = slowdown.median();
  return m;
}

}  // namespace

SchedMetrics run_scheduler(std::vector<Job>& jobs, std::size_t nodes,
                           Policy policy) {
  POLARIS_CHECK(nodes > 0);
  Simulator sim(jobs, nodes, policy);
  return sim.run();
}

}  // namespace polaris::sched
