#include "polaris/sched/fault_aware.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "polaris/fault/checkpoint.hpp"
#include "polaris/support/check.hpp"
#include "polaris/support/stats.hpp"

namespace polaris::sched {

namespace {

struct RunningJob {
  std::size_t job = 0;
  std::size_t width = 0;
  double start = 0.0;
  double planning_end = 0.0;
  std::uint64_t completion_seq = 0;  ///< cancels stale completion events
};

struct Event {
  enum class Kind { kArrival, kCompletion, kFailure, kRepair };
  double time;
  std::uint64_t seq;
  Kind kind;
  std::size_t index;  ///< job index, or unused
};
struct Later {
  bool operator()(const Event& a, const Event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class FaultSim {
 public:
  FaultSim(std::vector<Job>& jobs, const FaultAwareConfig& cfg)
      : jobs_(jobs),
        cfg_(cfg),
        up_(cfg.nodes),
        rng_(cfg.seed),
        timeline_(fault::FailureModel::exponential(cfg.node_mtbf), cfg.nodes,
                  cfg.seed ^ 0x5a5a5a5aULL) {
    remaining_.resize(jobs.size());
    resubmits_.resize(jobs.size(), 0);
    tau_.resize(jobs.size(), 0.0);
    for (std::size_t j = 0; j < jobs.size(); ++j) {
      remaining_[j] = jobs[j].runtime;
      if (cfg_.checkpointing) {
        // A job dies when one of ITS nodes dies: its Daly interval comes
        // from its own width-scaled MTBF, not the whole machine's.
        fault::CheckpointConfig cc;
        cc.checkpoint_cost = cfg_.checkpoint_cost;
        cc.restart_cost = cfg_.restart_cost;
        cc.system_mtbf = fault::system_mtbf_exponential(
            cfg_.node_mtbf, std::max<std::size_t>(jobs[j].width, 1));
        tau_[j] = fault::daly_interval(cc);
      }
    }
  }

  FaultAwareMetrics run();

 private:
  double free() const {
    return static_cast<double>(up_) - static_cast<double>(busy_);
  }
  std::size_t free_nodes() const { return up_ > busy_ ? up_ - busy_ : 0; }

  /// Wall time this attempt needs: optional restart charge + work inflated
  /// by checkpoint overhead.
  double attempt_wall(std::size_t j) const {
    const double restart = resubmits_[j] > 0 ? cfg_.restart_cost : 0.0;
    if (!cfg_.checkpointing) return restart + remaining_[j];
    return restart + remaining_[j] * (1.0 + cfg_.checkpoint_cost / tau_[j]);
  }

  double planning_wall(std::size_t j) const {
    const double est = std::max(jobs_[j].estimate, remaining_[j]);
    const double restart = resubmits_[j] > 0 ? cfg_.restart_cost : 0.0;
    if (!cfg_.checkpointing) return restart + est;
    return restart + est * (1.0 + cfg_.checkpoint_cost / tau_[j]);
  }

  void start_job(std::size_t j, double now);
  void complete_job(std::size_t ri, double now);
  void kill_job(std::size_t ri, double now);
  void try_start(double now);
  void pump_failures(double until);

  std::vector<Job>& jobs_;
  FaultAwareConfig cfg_;
  std::size_t up_;
  std::size_t busy_ = 0;
  std::vector<double> tau_;  ///< per-job Daly interval (checkpointing)
  support::Random rng_;
  fault::FailureTimeline timeline_;
  double failures_pumped_until_ = 0.0;

  std::deque<std::size_t> queue_;
  std::vector<RunningJob> running_;
  std::vector<double> remaining_;
  std::vector<std::uint32_t> resubmits_;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  std::uint64_t seq_ = 0;
  std::vector<std::uint64_t> live_completion_;  // per job: valid seq

  FaultAwareMetrics m_;
};

void FaultSim::start_job(std::size_t j, double now) {
  POLARIS_CHECK(jobs_[j].width <= free_nodes());
  if (jobs_[j].start < 0.0) jobs_[j].start = now;
  const double wall = attempt_wall(j);
  RunningJob r;
  r.job = j;
  r.width = jobs_[j].width;
  r.start = now;
  r.planning_end = now + planning_wall(j);
  r.completion_seq = seq_;
  running_.push_back(r);
  busy_ += r.width;
  live_completion_[j] = seq_;
  events_.push(Event{now + wall, seq_++, Event::Kind::kCompletion, j});
}

void FaultSim::complete_job(std::size_t ri, double now) {
  const RunningJob r = running_[ri];
  running_.erase(running_.begin() + static_cast<long>(ri));
  busy_ -= r.width;
  const std::size_t j = r.job;
  const double w = static_cast<double>(r.width);
  const double elapsed = now - r.start;
  m_.useful_node_seconds += remaining_[j] * w;
  m_.wasted_node_seconds += std::max(elapsed - remaining_[j], 0.0) * w;
  remaining_[j] = 0.0;
  jobs_[j].finish = now;
}

void FaultSim::kill_job(std::size_t ri, double now) {
  const RunningJob r = running_[ri];
  running_.erase(running_.begin() + static_cast<long>(ri));
  busy_ -= r.width;
  const std::size_t j = r.job;
  const double w = static_cast<double>(r.width);
  const double elapsed = now - r.start;
  double committed = 0.0;
  if (cfg_.checkpointing && tau_[j] > 0.0) {
    const double restart = resubmits_[j] > 0 ? cfg_.restart_cost : 0.0;
    const double working = std::max(elapsed - restart, 0.0);
    const double segment = tau_[j] + cfg_.checkpoint_cost;
    committed = std::min(std::floor(working / segment) * tau_[j],
                         remaining_[j]);
  }
  m_.useful_node_seconds += committed * w;
  m_.wasted_node_seconds += std::max(elapsed - committed, 0.0) * w;
  remaining_[j] -= committed;
  ++resubmits_[j];
  ++m_.job_kills;
  live_completion_[j] = std::numeric_limits<std::uint64_t>::max();
  queue_.push_front(j);  // failed work goes back to the head
}

void FaultSim::try_start(double now) {
  // EASY backfill over the surviving capacity.
  while (!queue_.empty() && jobs_[queue_.front()].width <= free_nodes()) {
    start_job(queue_.front(), now);
    queue_.pop_front();
  }
  if (queue_.empty()) return;

  // Head reservation from running jobs' planning ends (repairs are not
  // forecast: conservative).
  const Job& head = jobs_[queue_.front()];
  std::vector<RunningJob> ends = running_;
  std::sort(ends.begin(), ends.end(),
            [](const RunningJob& a, const RunningJob& b) {
              return a.planning_end < b.planning_end;
            });
  std::size_t avail = free_nodes();
  double shadow = now;
  for (const auto& r : ends) {
    if (avail >= head.width) break;
    avail += r.width;
    shadow = r.planning_end;
  }
  if (avail < head.width) return;  // must wait for repairs: no backfill
  std::size_t extra = avail - head.width;

  for (std::size_t qi = 1; qi < queue_.size();) {
    const std::size_t j = queue_[qi];
    const bool fits = jobs_[j].width <= free_nodes();
    const bool before_shadow = now + planning_wall(j) <= shadow;
    const bool within_extra = jobs_[j].width <= extra;
    if (fits && (before_shadow || within_extra)) {
      if (!before_shadow) extra -= jobs_[j].width;
      start_job(j, now);
      queue_.erase(queue_.begin() + static_cast<long>(qi));
    } else {
      ++qi;
    }
  }
}

void FaultSim::pump_failures(double until) {
  while (failures_pumped_until_ < until) {
    const auto ev = timeline_.next();
    failures_pumped_until_ = ev.time;
    events_.push(Event{ev.time, seq_++, Event::Kind::kFailure, 0});
  }
}

FaultAwareMetrics FaultSim::run() {
  live_completion_.assign(jobs_.size(),
                          std::numeric_limits<std::uint64_t>::max());
  std::vector<std::size_t> order(jobs_.size());
  for (std::size_t i = 0; i < jobs_.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return jobs_[a].submit < jobs_[b].submit;
  });
  double horizon = 0.0;
  for (std::size_t j : order) {
    POLARIS_CHECK_MSG(jobs_[j].width <= cfg_.nodes,
                      "job wider than the cluster");
    events_.push(Event{jobs_[j].submit, seq_++, Event::Kind::kArrival, j});
    horizon = std::max(horizon, jobs_[j].submit);
  }
  pump_failures(horizon + 1.0);

  std::size_t completed = 0;
  support::Summary waits;
  double last_finish = 0.0;

  while (completed < jobs_.size()) {
    POLARIS_CHECK_MSG(!events_.empty(), "fault-aware sim stalled");
    const Event ev = events_.top();
    events_.pop();
    const double now = ev.time;
    // Keep a failure-event horizon ahead of the clock.
    pump_failures(now + cfg_.node_mtbf / static_cast<double>(cfg_.nodes) +
                  1.0);

    switch (ev.kind) {
      case Event::Kind::kArrival:
        queue_.push_back(ev.index);
        break;
      case Event::Kind::kCompletion: {
        if (live_completion_[ev.index] != ev.seq) break;  // stale: killed
        for (std::size_t ri = 0; ri < running_.size(); ++ri) {
          if (running_[ri].job == ev.index) {
            complete_job(ri, now);
            waits.add(jobs_[ev.index].start - jobs_[ev.index].submit);
            last_finish = std::max(last_finish, now);
            ++completed;
            break;
          }
        }
        break;
      }
      case Event::Kind::kFailure: {
        ++m_.failures;
        if (up_ == 0) break;  // everything already down; replacement later
        // The failed node is uniformly one of the up nodes: busy fraction
        // hits a running job weighted by width.
        const auto x = static_cast<std::size_t>(
            rng_.uniform_int(0, static_cast<std::int64_t>(up_) - 1));
        --up_;
        events_.push(Event{now + cfg_.repair_time, seq_++,
                           Event::Kind::kRepair, 0});
        if (x < busy_) {
          std::size_t acc = 0;
          for (std::size_t ri = 0; ri < running_.size(); ++ri) {
            acc += running_[ri].width;
            if (x < acc) {
              kill_job(ri, now);
              break;
            }
          }
        }
        break;
      }
      case Event::Kind::kRepair:
        ++up_;
        break;
    }
    try_start(now);
  }

  m_.jobs = jobs_.size();
  m_.makespan = last_finish;
  m_.mean_wait = waits.mean();
  const double capacity =
      static_cast<double>(cfg_.nodes) * std::max(m_.makespan, 1e-9);
  m_.goodput = m_.useful_node_seconds / capacity;
  m_.utilization =
      (m_.useful_node_seconds + m_.wasted_node_seconds) / capacity;
  return m_;
}

}  // namespace

FaultAwareMetrics run_fault_aware(std::vector<Job> jobs,
                                  const FaultAwareConfig& config) {
  POLARIS_CHECK(config.nodes > 0 && config.node_mtbf > 0);
  FaultSim sim(jobs, config);
  return sim.run();
}

}  // namespace polaris::sched
