// Gantt-chart export of a scheduled job trace.
//
// Emits one span per scheduled job into an obs::Tracer; written as Chrome
// trace JSON the result is a machine-utilization Gantt chart (the tracer's
// export-time lane packing stacks concurrently-running jobs on separate
// rows).  Submission times appear as instant markers so queueing delay is
// visible as the gap between marker and span.
#pragma once

#include <cstddef>
#include <vector>

#include "polaris/obs/trace.hpp"
#include "polaris/sched/job.hpp"

namespace polaris::sched {

/// Adds every scheduled job in `jobs` to `tracer` as a complete span on a
/// "jobs" track (plus "submit" instants on a "queue" track).  Use a
/// clockless tracer; job times are seconds and map to simulated
/// nanoseconds.  Returns the number of jobs exported (unscheduled jobs are
/// skipped).
std::size_t export_gantt(const std::vector<Job>& jobs, obs::Tracer& tracer);

}  // namespace polaris::sched
