// Parallel job model for cluster resource management.
#pragma once

#include <cstddef>
#include <cstdint>

namespace polaris::sched {

/// A rigid parallel job: needs `width` nodes simultaneously for `runtime`
/// seconds.  `estimate` is the user-supplied wall-time request the
/// scheduler plans with (>= runtime in well-formed traces; schedulers must
/// tolerate under-estimates by planning with max(estimate, runtime)).
struct Job {
  std::uint64_t id = 0;
  double submit = 0.0;    ///< arrival time, seconds
  double runtime = 0.0;   ///< actual execution time
  double estimate = 0.0;  ///< requested wall time
  std::size_t width = 1;  ///< nodes required

  // Filled by the scheduler:
  double start = -1.0;
  double finish = -1.0;

  bool scheduled() const { return start >= 0.0; }
  double wait() const { return scheduled() ? start - submit : 0.0; }

  /// Bounded slowdown with the conventional 10-second bound.
  double bounded_slowdown() const {
    if (!scheduled()) return 0.0;
    const double bound = 10.0;
    const double run = runtime > bound ? runtime : bound;
    const double slow = (wait() + runtime) / run;
    return slow > 1.0 ? slow : 1.0;
  }

  double node_seconds() const {
    return static_cast<double>(width) * runtime;
  }
};

}  // namespace polaris::sched
