// Space-sharing cluster schedulers.
//
// Event-driven simulation of a rigid-job cluster under three classic
// policies:
//   FCFS           — strict arrival order; the queue head blocks.
//   SJF            — shortest requested runtime first (no reservation).
//   EASY backfill  — FCFS head reservation + backfilling of jobs that
//                    cannot delay the head (Lifka's EASY, the algorithm
//                    behind the era's production schedulers).
//   Conservative   — every queued job holds a reservation; a job may be
//                    backfilled only if it delays NO earlier reservation
//                    (stronger guarantee, usually slightly lower
//                    utilization than EASY).
// Reservations plan with user estimates; completions occur at actual
// runtimes — exactly the information asymmetry real schedulers face.
#pragma once

#include <cstddef>
#include <vector>

#include "polaris/sched/job.hpp"

namespace polaris::sched {

enum class Policy {
  kFcfs,
  kSjf,
  kEasyBackfill,
  kConservative,
};

const char* to_string(Policy p);

/// Aggregate outcome of one scheduling run.
struct SchedMetrics {
  std::size_t jobs = 0;
  double makespan = 0.0;            ///< last finish time
  double utilization = 0.0;         ///< busy node-seconds / (nodes*makespan)
  double mean_wait = 0.0;
  double p95_wait = 0.0;
  double mean_bounded_slowdown = 0.0;
  double median_bounded_slowdown = 0.0;
  std::uint64_t backfilled = 0;     ///< jobs started ahead of queue order
};

/// Runs `jobs` (any order; sorted internally by submit time) on a cluster
/// of `nodes` under `policy`.  Fills Job::start/finish in place and
/// returns metrics.  Jobs wider than the cluster throw.
SchedMetrics run_scheduler(std::vector<Job>& jobs, std::size_t nodes,
                           Policy policy);

}  // namespace polaris::sched
