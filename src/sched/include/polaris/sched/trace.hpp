// Synthetic workload traces.
//
// Feitelson-style synthetic model of a production parallel-computer
// workload: Poisson arrivals, power-of-two-biased widths, log-uniform
// runtimes, and multiplicatively over-estimated wall-time requests — the
// statistical shape scheduler comparisons are conventionally run on, in
// place of the production traces we do not have (see DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "polaris/sched/job.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::sched {

struct TraceConfig {
  std::size_t jobs = 10000;
  double mean_interarrival = 60.0;  ///< seconds (Poisson arrivals)
  int min_width_exp = 0;            ///< widths 2^min .. 2^max
  int max_width_exp = 7;
  double p_power_of_two = 0.75;     ///< else uniform width in range
  double min_runtime = 60.0;        ///< log-uniform runtime range
  double max_runtime = 24.0 * 3600.0;
  double max_overestimate = 5.0;    ///< estimate = runtime * U[1, this]
};

/// Generates a reproducible synthetic trace.  Widths never exceed
/// 2^max_width_exp, so size the cluster accordingly.
std::vector<Job> generate_trace(const TraceConfig& config,
                                std::uint64_t seed);

/// Offered load of a trace against a cluster: sum(node-seconds) /
/// (nodes * span of submissions).
double offered_load(const std::vector<Job>& jobs, std::size_t nodes);

}  // namespace polaris::sched
