// Fault-aware cluster operation: scheduling and failure recovery together.
//
// The talk's system-software thesis in one simulation: a rigid-job
// scheduler (EASY backfill) runs a trace on a machine whose nodes fail per
// a FailureModel and are repaired after a fixed time.  When a node dies,
// the job running on it dies with it and is resubmitted at the queue head:
//   - without checkpointing, the job restarts from scratch (all its
//     node-seconds so far are wasted);
//   - with checkpointing at its Daly-optimal interval, it loses only the
//     uncommitted segment and pays the checkpoint overhead while running.
// Goodput — useful node-seconds over available capacity — is the headline
// metric; it separates "the machine was busy" from "the machine did
// science", which is exactly the gap that explodes with scale.
#pragma once

#include <cstdint>
#include <vector>

#include "polaris/fault/failure.hpp"
#include "polaris/sched/job.hpp"

namespace polaris::sched {

struct FaultAwareConfig {
  std::size_t nodes = 1024;
  double node_mtbf = 5.0 * 365 * 86400.0;  ///< seconds
  double repair_time = 3600.0;             ///< node down-time after failure
  bool checkpointing = false;
  double checkpoint_cost = 300.0;          ///< delta, seconds
  double restart_cost = 120.0;             ///< per resubmission
  std::uint64_t seed = 2002;
};

struct FaultAwareMetrics {
  std::size_t jobs = 0;
  double makespan = 0.0;
  std::uint64_t failures = 0;        ///< node failures during the run
  std::uint64_t job_kills = 0;       ///< jobs killed by a node failure
  double useful_node_seconds = 0.0;  ///< committed work
  double wasted_node_seconds = 0.0;  ///< lost progress + ckpt + restart
  double goodput = 0.0;              ///< useful / (nodes * makespan)
  double utilization = 0.0;          ///< (useful + wasted) / capacity
  double mean_wait = 0.0;
};

/// Runs `jobs` under EASY backfill on a failing machine.  Jobs' start and
/// (final, successful) finish times are written in place.  Deterministic
/// in config.seed.
FaultAwareMetrics run_fault_aware(std::vector<Job> jobs,
                                  const FaultAwareConfig& config);

}  // namespace polaris::sched
