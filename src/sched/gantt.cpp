#include "polaris/sched/gantt.hpp"

#include <string>

#include "polaris/des/time.hpp"

namespace polaris::sched {

std::size_t export_gantt(const std::vector<Job>& jobs, obs::Tracer& tracer) {
  const obs::TrackId run_track = tracer.add_track("sched", "jobs");
  const obs::TrackId queue_track = tracer.add_track("sched", "queue");
  std::size_t exported = 0;
  for (const Job& j : jobs) {
    tracer.instant_at(queue_track, "submit " + std::to_string(j.id),
                      "sched", des::from_seconds(j.submit));
    if (!j.scheduled()) continue;
    tracer.complete_span(run_track,
                         "job " + std::to_string(j.id) + " x" +
                             std::to_string(j.width),
                         "job", des::from_seconds(j.start),
                         des::from_seconds(j.finish - j.start));
    ++exported;
  }
  return exported;
}

}  // namespace polaris::sched
