// Multi-user job-mix traces for the resource manager.
//
// Extends the Feitelson-style statistical shape (Poisson arrivals,
// power-of-two-biased widths, log-uniform runtimes, over-estimated
// requests) with the dimensions a resource manager actually schedules on:
// a skewed population of users (a few heavy submitters, a long tail)
// grouped into accounts, per-job base priorities, and a preemptible flag.
//
// `integral_times` rounds every submit/runtime/estimate to whole seconds.
// That makes the seconds -> engine-tick conversion exact, which is what
// lets tests assert job-for-job equality between the tick-driven
// ResourceManager and the double-driven legacy sched::Simulator.
#pragma once

#include <cstdint>
#include <vector>

#include "polaris/rm/types.hpp"

namespace polaris::workload {

struct MultiUserTraceConfig {
  std::size_t jobs = 10000;
  std::uint32_t users = 16;
  std::uint32_t accounts = 4;       ///< users are striped across accounts
  double user_skew = 2.0;           ///< Zipf-ish exponent; 0 = uniform
  double mean_interarrival = 60.0;  ///< seconds (Poisson arrivals)
  int min_width_exp = 0;            ///< widths 2^min .. 2^max
  int max_width_exp = 7;
  double p_power_of_two = 0.75;
  double min_runtime = 60.0;
  double max_runtime = 24.0 * 3600.0;
  double max_overestimate = 5.0;    ///< estimate = runtime * U[1, this]
  std::uint32_t priority_levels = 1;  ///< priorities drawn from [0, this)
  double p_preemptible = 1.0;
  bool integral_times = false;  ///< whole-second times (tick-exact)
};

/// Reproducible multi-user trace; job ids are 0..jobs-1 in submit order.
std::vector<rm::JobSpec> make_multi_user_trace(
    const MultiUserTraceConfig& config, std::uint64_t seed);

/// Offered load against a cluster: sum(width * runtime) / (nodes * span of
/// submissions).
double offered_load(const std::vector<rm::JobSpec>& jobs, std::size_t nodes);

}  // namespace polaris::workload
