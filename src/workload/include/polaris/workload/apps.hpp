// Representative Beowulf-class SPMD workloads for the simulated runtime.
//
// Three application archetypes the talk's application discussion spans:
//   halo2d   — nearest-neighbour 2-D stencil (bandwidth + neighbour
//              latency; the canonical Beowulf CFD/heat-equation kernel)
//   cg       — conjugate-gradient-like iteration (two tiny allreduce dot
//              products per iteration: latency- and collective-bound)
//   ep       — embarrassingly parallel sweep with a terminal reduce
// plus the ping-pong microbenchmark every fabric comparison starts from.
//
// Each factory returns an SPMD coroutine suitable for SimWorld::launch and
// fills a caller-owned result struct when rank 0 finishes.
#pragma once

#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include "polaris/simrt/sim_world.hpp"

namespace polaris::workload {

using Program = std::function<des::Task<void>(simrt::SimComm&)>;

/// Splits `ranks` into the most-square px * py == ranks process grid.
std::pair<std::size_t, std::size_t> process_grid(std::size_t ranks);

// ------------------------------------------------------------------ pingpong

struct PingPongResult {
  /// Half round-trip per message size, aligned with `sizes`.
  std::vector<double> half_rtt;
  std::vector<std::uint64_t> sizes;
};

struct PingPongConfig {
  std::vector<std::uint64_t> sizes = {1,    8,     64,     512,   4096,
                                      32768, 262144, 1048576, 4194304};
  int repetitions = 5;  ///< round trips averaged per size
};

/// Ranks 0 and 1 ping-pong; other ranks idle.  Results valid after run().
Program make_pingpong(PingPongConfig config, PingPongResult* out);

// -------------------------------------------------------------------- halo2d

struct Halo2DConfig {
  std::size_t nx = 256;        ///< local grid, x
  std::size_t ny = 256;        ///< local grid, y
  std::size_t iterations = 10;
  std::size_t elem_bytes = 8;
  double flops_per_point = 5.0;
  double bytes_per_point = 4.0 * 8.0;  ///< memory traffic per point
};

struct AppResult {
  double elapsed = 0.0;        ///< rank-0 completion time, seconds
  double comm_fraction = 0.0;  ///< estimated time share in communication
};

/// 5-point-stencil Jacobi over a px*py process grid (non-periodic edges).
Program make_halo2d(Halo2DConfig config, std::size_t ranks, AppResult* out);

/// 7-point-stencil Jacobi over an x*y*z process grid (non-periodic).
struct Halo3DConfig {
  std::size_t n = 64;          ///< local grid edge (n^3 points per rank)
  std::size_t iterations = 10;
  std::size_t elem_bytes = 8;
  double flops_per_point = 8.0;
  double bytes_per_point = 5.0 * 8.0;
};

/// Factors `ranks` into the most-cubic px*py*pz grid.
std::tuple<std::size_t, std::size_t, std::size_t> process_grid3(
    std::size_t ranks);

Program make_halo3d(Halo3DConfig config, std::size_t ranks, AppResult* out);

// ------------------------------------------------------------------------ cg

struct CgConfig {
  std::size_t local_rows = 100000;  ///< matrix rows per rank
  std::size_t iterations = 50;
  double nnz_per_row = 7.0;
};

/// CG-like iteration: SpMV compute + halo-ish neighbour exchange + two
/// 16-byte allreduce dot products per iteration.
Program make_cg(CgConfig config, std::size_t ranks, AppResult* out);

// ------------------------------------------------------------------------ ep

struct EpConfig {
  double flops_per_rank = 1e9;
  std::size_t batches = 10;  ///< compute chunks between progress points
};

/// Independent compute with one final 8-byte reduce.
Program make_ep(EpConfig config, AppResult* out);

// -------------------------------------------------------------------- incast

/// The commercial request/response pattern the talk's expanding customer
/// base brings: every worker sends a response of `bytes` to rank 0 each
/// round (N-to-1 incast), rank 0 replies with a small ack broadcast.
struct IncastConfig {
  std::uint64_t bytes = 64 * 1024;
  std::size_t rounds = 5;
};

Program make_incast(IncastConfig config, AppResult* out);

}  // namespace polaris::workload
