#include "polaris/workload/job_mix.hpp"

#include <algorithm>
#include <cmath>

#include "polaris/support/check.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::workload {

std::vector<rm::JobSpec> make_multi_user_trace(
    const MultiUserTraceConfig& config, std::uint64_t seed) {
  POLARIS_CHECK(config.jobs > 0);
  POLARIS_CHECK(config.users >= 1 && config.accounts >= 1);
  POLARIS_CHECK(config.min_width_exp <= config.max_width_exp);
  POLARIS_CHECK(config.min_runtime > 0 &&
                config.min_runtime <= config.max_runtime);
  POLARIS_CHECK(config.max_overestimate >= 1.0);
  POLARIS_CHECK(config.priority_levels >= 1);

  support::Random rng(seed);

  // Zipf-ish user activity: weight(u) = 1 / (u+1)^skew, sampled by
  // inverse-CDF over the cumulative weights.
  std::vector<double> cum(config.users);
  double total = 0.0;
  for (std::uint32_t u = 0; u < config.users; ++u) {
    total += 1.0 / std::pow(static_cast<double>(u + 1), config.user_skew);
    cum[u] = total;
  }

  std::vector<rm::JobSpec> jobs;
  jobs.reserve(config.jobs);
  double t = 0.0;
  for (std::size_t i = 0; i < config.jobs; ++i) {
    t += rng.exponential(1.0 / config.mean_interarrival);
    rm::JobSpec j;
    j.id = i;
    const double pick = rng.uniform(0.0, total);
    j.user = static_cast<rm::UserId>(
        std::lower_bound(cum.begin(), cum.end(), pick) - cum.begin());
    j.account = j.user % config.accounts;
    j.submit = t;
    if (rng.bernoulli(config.p_power_of_two)) {
      j.width = static_cast<std::uint32_t>(
          rng.power_of_two(config.min_width_exp, config.max_width_exp));
    } else {
      j.width = static_cast<std::uint32_t>(rng.uniform_int(
          std::int64_t{1} << config.min_width_exp,
          std::int64_t{1} << config.max_width_exp));
    }
    j.runtime = rng.log_uniform(config.min_runtime, config.max_runtime);
    j.estimate = j.runtime * rng.uniform(1.0, config.max_overestimate);
    if (config.priority_levels > 1) {
      j.priority = static_cast<std::int32_t>(
          rng.uniform_int(0, config.priority_levels - 1));
    }
    j.preemptible = rng.bernoulli(config.p_preemptible);
    if (config.integral_times) {
      j.submit = std::floor(j.submit);
      j.runtime = std::max(1.0, std::floor(j.runtime));
      j.estimate = std::max(j.runtime, std::floor(j.estimate));
    }
    jobs.push_back(j);
  }
  return jobs;
}

double offered_load(const std::vector<rm::JobSpec>& jobs,
                    std::size_t nodes) {
  POLARIS_CHECK(nodes > 0);
  if (jobs.empty()) return 0.0;
  double work = 0.0;
  double first = jobs.front().submit, last = jobs.front().submit;
  for (const rm::JobSpec& j : jobs) {
    work += static_cast<double>(j.width) * j.runtime;
    first = std::min(first, j.submit);
    last = std::max(last, j.submit);
  }
  const double span = std::max(last - first, 1.0);
  return work / (static_cast<double>(nodes) * span);
}

}  // namespace polaris::workload
