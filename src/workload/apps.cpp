#include "polaris/workload/apps.hpp"

#include <cmath>

#include "polaris/support/check.hpp"

namespace polaris::workload {

std::pair<std::size_t, std::size_t> process_grid(std::size_t ranks) {
  POLARIS_CHECK(ranks >= 1);
  auto px = static_cast<std::size_t>(std::sqrt(static_cast<double>(ranks)));
  while (ranks % px != 0) --px;
  return {px, ranks / px};
}

// The SPMD bodies are free coroutine functions: coroutine parameters are
// copied into the coroutine frame, so they stay valid regardless of the
// lifetime of the Program object that invoked them.  (A lambda that is
// itself a coroutine would instead reference its closure object — a
// use-after-free once the std::function is destroyed.)
namespace {

des::Task<void> pingpong_body(PingPongConfig config, PingPongResult* out,
                              simrt::SimComm& c) {
  if (c.rank() > 1) co_return;
  for (std::size_t i = 0; i < config.sizes.size(); ++i) {
    const std::uint64_t bytes = config.sizes[i];
    const double t0 = c.now();
    for (int r = 0; r < config.repetitions; ++r) {
      if (c.rank() == 0) {
        co_await c.send(1, 0, bytes);
        co_await c.recv(1, 0);
      } else {
        co_await c.recv(0, 0);
        co_await c.send(0, 0, bytes);
      }
    }
    if (c.rank() == 0) {
      out->half_rtt[i] = (c.now() - t0) / (2.0 * config.repetitions);
    }
    co_await c.barrier();  // keep the two ranks aligned between sizes
  }
}

des::Task<void> halo2d_body(Halo2DConfig config, std::size_t px,
                            std::size_t py, AppResult* out,
                            simrt::SimComm& c) {
  const auto r = static_cast<std::size_t>(c.rank());
  const std::size_t x = r % px;
  const std::size_t y = r / px;
  const std::uint64_t halo_x = config.ny * config.elem_bytes;
  const std::uint64_t halo_y = config.nx * config.elem_bytes;
  const double points =
      static_cast<double>(config.nx) * static_cast<double>(config.ny);

  double comm_time = 0.0;
  const double t_start = c.now();
  for (std::size_t it = 0; it < config.iterations; ++it) {
    const double t0 = c.now();
    // Concurrent halo exchange with up to four neighbours, the way real
    // stencil codes post it: all receives, all sends, one waitall.
    std::vector<simrt::SimRequest> reqs;
    if (x + 1 < px) reqs.push_back(c.irecv(static_cast<int>(r + 1), 0));
    if (x > 0) reqs.push_back(c.irecv(static_cast<int>(r - 1), 0));
    if (y + 1 < py) reqs.push_back(c.irecv(static_cast<int>(r + px), 1));
    if (y > 0) reqs.push_back(c.irecv(static_cast<int>(r - px), 1));
    if (x + 1 < px) {
      reqs.push_back(c.isend(static_cast<int>(r + 1), 0, halo_x));
    }
    if (x > 0) {
      reqs.push_back(c.isend(static_cast<int>(r - 1), 0, halo_x));
    }
    if (y + 1 < py) {
      reqs.push_back(c.isend(static_cast<int>(r + px), 1, halo_y));
    }
    if (y > 0) {
      reqs.push_back(c.isend(static_cast<int>(r - px), 1, halo_y));
    }
    co_await c.wait_all(std::move(reqs));
    comm_time += c.now() - t0;
    co_await c.compute(config.flops_per_point * points,
                       config.bytes_per_point * points);
  }
  if (c.rank() == 0) {
    out->elapsed = c.now() - t_start;
    out->comm_fraction = out->elapsed > 0 ? comm_time / out->elapsed : 0.0;
  }
}

des::Task<void> halo3d_body(Halo3DConfig config, std::size_t px,
                            std::size_t py, std::size_t pz, AppResult* out,
                            simrt::SimComm& c) {
  const auto r = static_cast<std::size_t>(c.rank());
  const std::size_t x = r % px;
  const std::size_t y = (r / px) % py;
  const std::size_t z = r / (px * py);
  const std::uint64_t face = config.n * config.n * config.elem_bytes;
  const double points = static_cast<double>(config.n) * config.n * config.n;

  double comm_time = 0.0;
  const double t_start = c.now();
  for (std::size_t it = 0; it < config.iterations; ++it) {
    const double t0 = c.now();
    std::vector<simrt::SimRequest> reqs;
    // Neighbour offsets along the three axes.
    const auto exchange = [&](bool has, int peer) {
      if (!has) return;
      reqs.push_back(c.irecv(peer, 0));
      reqs.push_back(c.isend(peer, 0, face));
    };
    exchange(x + 1 < px, static_cast<int>(r + 1));
    exchange(x > 0, static_cast<int>(r - 1));
    exchange(y + 1 < py, static_cast<int>(r + px));
    exchange(y > 0, static_cast<int>(r - px));
    exchange(z + 1 < pz, static_cast<int>(r + px * py));
    exchange(z > 0, static_cast<int>(r - px * py));
    co_await c.wait_all(std::move(reqs));
    comm_time += c.now() - t0;
    co_await c.compute(config.flops_per_point * points,
                       config.bytes_per_point * points);
  }
  if (c.rank() == 0) {
    out->elapsed = c.now() - t_start;
    out->comm_fraction = out->elapsed > 0 ? comm_time / out->elapsed : 0.0;
  }
}

des::Task<void> incast_body(IncastConfig config, AppResult* out,
                            simrt::SimComm& c) {
  const double t_start = c.now();
  for (std::size_t round = 0; round < config.rounds; ++round) {
    if (c.rank() == 0) {
      for (int s = 1; s < c.size(); ++s) {
        co_await c.recv(msg::kAnySource, 0);
      }
    } else {
      co_await c.send(0, 0, config.bytes);
    }
    // Small ack fan-out closes the round.
    co_await c.broadcast(64, 0);
  }
  if (c.rank() == 0) {
    out->elapsed = c.now() - t_start;
    out->comm_fraction = 1.0;  // pure communication benchmark
  }
}

des::Task<void> cg_body(CgConfig config, std::size_t ranks, AppResult* out,
                        simrt::SimComm& c) {
  const double rows = static_cast<double>(config.local_rows);
  // SpMV: 2 flops per nonzero; traffic ~12 bytes per nonzero (index +
  // value) plus the vectors.
  const double spmv_flops = 2.0 * config.nnz_per_row * rows;
  const double spmv_bytes = 12.0 * config.nnz_per_row * rows + 16.0 * rows;
  const std::uint64_t boundary =
      static_cast<std::uint64_t>(std::sqrt(rows)) * 8;

  double comm_time = 0.0;
  const double t_start = c.now();
  for (std::size_t it = 0; it < config.iterations; ++it) {
    // Neighbour exchange of boundary entries (1-D decomposition).
    const double t0 = c.now();
    const int right = (c.rank() + 1) % static_cast<int>(ranks);
    const int left =
        (c.rank() - 1 + static_cast<int>(ranks)) % static_cast<int>(ranks);
    if (ranks > 1) {
      // Odd/even phasing keeps the ring deadlock-free even when the
      // boundary exchange goes rendezvous.
      if (c.rank() % 2 == 0) {
        co_await c.send(right, 0, boundary);
        co_await c.recv(left, 0);
      } else {
        co_await c.recv(left, 0);
        co_await c.send(right, 0, boundary);
      }
    }
    comm_time += c.now() - t0;

    co_await c.compute(spmv_flops, spmv_bytes);   // q = A p
    const double t1 = c.now();
    co_await c.allreduce(16);                     // alpha dot
    comm_time += c.now() - t1;
    co_await c.compute(4.0 * rows, 48.0 * rows);  // axpy x2
    const double t2 = c.now();
    co_await c.allreduce(16);                     // beta dot
    comm_time += c.now() - t2;
  }
  if (c.rank() == 0) {
    out->elapsed = c.now() - t_start;
    out->comm_fraction = out->elapsed > 0 ? comm_time / out->elapsed : 0.0;
  }
}

des::Task<void> ep_body(EpConfig config, AppResult* out, simrt::SimComm& c) {
  const double t_start = c.now();
  for (std::size_t b = 0; b < config.batches; ++b) {
    co_await c.compute(
        config.flops_per_rank / static_cast<double>(config.batches), 0.0);
  }
  const double t0 = c.now();
  co_await c.allreduce(8);
  if (c.rank() == 0) {
    out->elapsed = c.now() - t_start;
    out->comm_fraction = (c.now() - t0) / out->elapsed;
  }
}

}  // namespace

Program make_pingpong(PingPongConfig config, PingPongResult* out) {
  POLARIS_CHECK(out != nullptr && config.repetitions > 0);
  out->sizes = config.sizes;
  out->half_rtt.assign(config.sizes.size(), 0.0);
  return [config, out](simrt::SimComm& c) {
    return pingpong_body(config, out, c);
  };
}

Program make_halo2d(Halo2DConfig config, std::size_t ranks, AppResult* out) {
  POLARIS_CHECK(out != nullptr && ranks >= 1);
  const auto [px, py] = process_grid(ranks);
  return [config, px = px, py = py, out](simrt::SimComm& c) {
    return halo2d_body(config, px, py, out, c);
  };
}

std::tuple<std::size_t, std::size_t, std::size_t> process_grid3(
    std::size_t ranks) {
  POLARIS_CHECK(ranks >= 1);
  auto px = static_cast<std::size_t>(
      std::cbrt(static_cast<double>(ranks)) + 1e-9);
  while (px > 1 && ranks % px != 0) --px;
  const auto [py, pz] = process_grid(ranks / px);
  return {px, py, pz};
}

Program make_halo3d(Halo3DConfig config, std::size_t ranks, AppResult* out) {
  POLARIS_CHECK(out != nullptr && ranks >= 1);
  const auto [px, py, pz] = process_grid3(ranks);
  return [config, px = px, py = py, pz = pz, out](simrt::SimComm& c) {
    return halo3d_body(config, px, py, pz, out, c);
  };
}

Program make_incast(IncastConfig config, AppResult* out) {
  POLARIS_CHECK(out != nullptr && config.rounds >= 1);
  return [config, out](simrt::SimComm& c) {
    return incast_body(config, out, c);
  };
}

Program make_cg(CgConfig config, std::size_t ranks, AppResult* out) {
  POLARIS_CHECK(out != nullptr && ranks >= 1);
  return [config, ranks, out](simrt::SimComm& c) {
    return cg_body(config, ranks, out, c);
  };
}

Program make_ep(EpConfig config, AppResult* out) {
  POLARIS_CHECK(out != nullptr && config.batches >= 1);
  return [config, out](simrt::SimComm& c) { return ep_body(config, out, c); };
}

}  // namespace polaris::workload
