// One shard of the partitioned machine: a des::Engine plus flat rank
// state machines for every rank the shard owns.
//
// Ranks are not coroutines here.  At 10^6 ranks a coroutine frame per rank
// (simrt's model) is gigabytes of stacks; a pdes rank is a ~40-byte record
// driven by four event kinds (phase start, payload arrival, NACK arrival,
// crash), and a message in flight is a pooled 32-byte arena record.  The
// price is generality — only the halo / allreduce / CG traffic shapes are
// expressible — which is exactly the trade the scale explosion calls for.
//
// Timing model (LogGP-flavored, closed form, no shared link state): the
// i-th message a rank issues at phase start T injects at T + i*o_send,
// serializes when the rank's NIC frees up, and arrives at
//   nic_start + bytes/link_bw + path_latency(switch_hops) + o_recv.
// Folding o_recv into the arrival keeps arrival processing commutative —
// nothing about a message's effect depends on what else lands at the same
// tick.  That commutativity (got-bits OR in, counts add, statuses latch
// via max, completion fires at the tick the predicate first holds) is the
// determinism argument: any same-tick processing order yields the same
// rank trace, so shard count and ingestion interleaving cannot change the
// golden hash.
//
// Messages may arrive *phases* ahead of their receiver (recursive doubling
// lets a fast rank sprint several stages while a slow one lags), so early
// arrivals park in a per-shard flat map keyed (local_rank, phase) and are
// consumed when the receiver opens that phase.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/fabric/partition.hpp"
#include "polaris/pdes/config.hpp"
#include "polaris/support/flat_map.hpp"

namespace polaris::pdes {

class ShardedEngine;

/// 64-bit-at-a-time FNV-1a fold (whole words, not bytes: the golden hash
/// needs collision resistance against trace edits, not standards
/// compliance, and one multiply per field keeps it off the profile).
inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;
inline std::uint64_t fnv_step(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// Flat per-rank program state.  `phase` is the phase being worked or
/// about to start; `need`/`got_*` describe the currently open phase.
struct RankState {
  des::SimTime nic_free = 0;   ///< when this rank's NIC finishes serializing
  des::SimTime done_at = 0;    ///< completion tick of the last finished phase
  std::uint64_t hash = kFnvOffset;  ///< per-phase completion trace
  std::uint32_t phase = 0;
  std::uint8_t got_mask = 0;    ///< halo: direction bits received
  std::uint8_t got_count = 0;   ///< stage: arrivals received
  std::uint8_t need = 0;        ///< open phase's required mask or count
  std::uint8_t alive_mask = 0;  ///< dirs with a distinct neighbor (static)
  std::uint8_t nbr_dead = 0;    ///< dirs NACKed as dead (monotone)
  std::uint8_t status = 0;      ///< kRankOk / latched NACK status / crashed
  std::uint8_t flags = 0;

  static constexpr std::uint8_t kDead = 1u << 0;
  static constexpr std::uint8_t kHalted = 1u << 1;
  static constexpr std::uint8_t kFinished = 1u << 2;
  static constexpr std::uint8_t kPhaseOpen = 1u << 3;

  bool dead() const { return (flags & kDead) != 0; }
  bool halted() const { return (flags & kHalted) != 0; }
  bool finished() const { return (flags & kFinished) != 0; }
  bool phase_open() const { return (flags & kPhaseOpen) != 0; }
};

class ShardWorld {
 public:
  ShardWorld(const Config& cfg, const fabric::Partition& part,
             std::size_t shard, ShardedEngine* parent);

  /// Schedules every owned rank's phase-0 start and any owned crashes.
  void init();

  /// Window prologue: drains this shard's inbound channels, sorts the
  /// handoffs into canonical (t, src, phase, kind, seq) order and
  /// schedules them as engine events.
  void begin_window();

  /// Runs all events with t <= until and advances the clock to until.
  void run_window(des::SimTime until);

  /// This shard's bound on the earliest unprocessed action anywhere:
  /// min(engine's next event, earliest handoff pushed this window).
  des::SimTime next_time() const {
    return std::min(engine_.next_event_time(), out_min_);
  }

  // -- merge-time accessors (single-threaded, after the run) ---------------
  std::size_t rank_count() const { return ranks_.size(); }
  const RankState& rank(std::size_t local) const { return ranks_[local]; }
  std::uint64_t events() const { return events_; }
  std::uint64_t msgs_intra() const { return msgs_intra_; }
  std::uint64_t msgs_cross() const { return msgs_cross_; }
  std::uint64_t nacks() const { return nacks_; }
  std::uint64_t peak_event_nodes() const {
    return engine_.stats().max_pool_in_use;
  }
  std::uint64_t peak_inflight_recs() const { return recs_.size(); }
  void note_window_ns(std::uint64_t ns) { window_ns_->record(ns); }

 private:
  enum class Kind : std::uint8_t {
    kPayload = 0,  // matches fabric::HandoffKind
    kNack = 1,     // matches fabric::HandoffKind
    kPhaseStart = 2,
    kCrash = 3,
  };

  /// Pooled in-flight record: the ctx of one scheduled delivery/control
  /// event.  Slots live in a deque (address-stable) with a free list.
  struct MsgRec {
    ShardWorld* world = nullptr;
    std::uint32_t slot = 0;
    std::uint32_t src = 0;    ///< global rank (payload sender / NACK origin)
    std::uint32_t dst = 0;    ///< local rank index on this shard
    std::uint32_t phase = 0;
    Kind kind = Kind::kPayload;
    std::uint8_t status = 0;
    std::uint8_t lane = 0;
  };

  /// Early arrivals for a not-yet-open (local_rank, phase).
  struct Parked {
    std::uint8_t mask = 0;
    std::uint8_t count = 0;
  };

  /// Decoded shape of one program phase.
  struct PhaseInfo {
    bool is_halo = true;
    std::uint32_t stage = 0;
    std::uint64_t bytes = 0;
  };

  static void on_event(void* ctx);

  void dispatch(const MsgRec& rec);
  void start_phase(std::uint32_t lr, std::uint32_t p);
  void on_payload(const MsgRec& rec);
  void on_nack(const MsgRec& rec);
  void on_crash(const MsgRec& rec);
  void check_complete(std::uint32_t lr);

  /// Issues rank src's idx-th message of the phase (1-based) and routes
  /// the arrival to its destination shard.
  void send_msg(std::uint32_t src_g, std::uint32_t dst_g, std::uint64_t bytes,
                std::uint32_t phase, std::uint8_t lane, int idx);
  /// Schedules a local event / pushes a cross-shard handoff at time t.
  void route(des::SimTime t, std::uint32_t src_g, std::uint32_t dst_g,
             Kind kind, std::uint8_t status, std::uint8_t lane,
             std::uint32_t phase);
  void schedule_rec(des::SimTime t, std::uint32_t src_g,
                    std::uint32_t dst_local, Kind kind, std::uint8_t status,
                    std::uint8_t lane, std::uint32_t phase);
  void release_rec(std::uint32_t slot);

  PhaseInfo phase_info(std::uint32_t p) const;
  des::SimTime gap_before(std::uint32_t next_p) const;
  std::uint32_t neighbor(std::uint32_t g, int dir) const;
  std::size_t torus_dist(std::uint32_t a, std::uint32_t b) const;
  des::SimTime path_ticks(std::uint32_t a, std::uint32_t b) const;
  std::uint64_t payload_bytes(std::uint32_t src_g, std::uint32_t phase,
                              std::uint8_t lane, std::uint64_t base) const;
  static std::uint64_t park_key(std::uint32_t lr, std::uint32_t phase) {
    return (static_cast<std::uint64_t>(lr) << 32) | phase;
  }

  const Config& cfg_;
  const fabric::Partition& part_;
  ShardedEngine* parent_;
  std::size_t shard_;
  std::uint32_t first_;  ///< global rank id of local rank 0
  std::size_t w_ = 0, h_ = 0;
  std::uint32_t stages_ = 0;       ///< ceil(log2 ranks) hypercube stages
  std::uint32_t per_iter_ = 1;     ///< phases per application iteration
  std::uint32_t total_phases_ = 0;
  des::SimTime o_send_ = 0, o_recv_ = 0, compute_ = 1;
  std::vector<des::SimTime> path_by_dist_;  ///< [dist] -> latency ticks

  des::Engine engine_;
  std::vector<RankState> ranks_;
  support::FlatMap64<Parked> parked_;
  std::deque<MsgRec> recs_;
  std::vector<std::uint32_t> free_recs_;
  std::vector<fabric::ShardHandoff> scratch_;

  des::SimTime cur_until_ = -1;  ///< current window's inclusive bound
  des::SimTime out_min_ = des::Engine::kNoEventTime;

  std::uint64_t events_ = 0;
  std::uint64_t msgs_intra_ = 0, msgs_cross_ = 0, nacks_ = 0;
  // Hot handles into this shard's slice of the parent's ShardedRegistry
  // (single-writer by construction; the parent merges after the run).
  obs::LogHistogram* window_events_ = nullptr;
  obs::LogHistogram* window_ns_ = nullptr;
  obs::LogHistogram* drain_batch_ = nullptr;
};

}  // namespace polaris::pdes
