// Sharded conservative parallel DES driver.
//
// The machine is block-partitioned across shards (fabric::Partition); each
// shard owns a ShardWorld (its own des::Engine — engines are strictly
// single-threaded and are never shared).  Synchronization is classic
// conservative windowing: because any cross-shard message pays at least
// the min-cut path latency L, every shard may process the window
// [T, T + L) without hearing from its peers — all cross-shard traffic
// generated inside the window arrives at T + L or later, i.e. in a later
// window.
//
// One SpinBarrier per window, with the window decision in the barrier's
// serial section: the last-arriving worker takes the minimum over every
// shard's reported next-action time (engine's next event, or the earliest
// handoff it pushed this window), and opens the next window as
// [global_next, global_next + L - 1] — an *adaptive* window that skips
// idle simulated time (compute blocks) in one hop instead of grinding
// through empty L-sized windows.  When the global minimum is "no events
// anywhere", the simulation is complete.
//
// Cross-shard handoffs travel on per-ordered-shard-pair rt::SpscRing
// channels (single producer: the source shard's worker; single consumer:
// the destination's).  A full ring must not block mid-window — the
// consumer only drains at its window prologue — so overflow spills to a
// mutex-protected vector on the side.  Arrival order off the wire is
// irrelevant: the consumer sorts each window's batch into canonical
// (t, src, phase, kind, seq) order before scheduling.
//
// Worker threads are leased from support::WorkerBudget, so pdes shards
// compose with SweepRunner points instead of multiplying thread counts.
// Shard count is the *simulation* parameter (it must not change results);
// worker count is purely an execution parameter (shards round-robin onto
// workers).
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "polaris/fabric/partition.hpp"
#include "polaris/obs/sharded.hpp"
#include "polaris/pdes/config.hpp"
#include "polaris/pdes/world.hpp"
#include "polaris/rt/spsc_ring.hpp"

namespace polaris::pdes {

class ShardedEngine {
 public:
  explicit ShardedEngine(Config cfg);

  /// Runs the simulation to completion.  Call once per engine.
  Result run();

  const Config& config() const { return cfg_; }
  const fabric::Partition& partition() const { return part_; }

  /// Post-run inspection: global rank `g`'s final state.
  const RankState& rank_state(std::uint32_t g) const {
    const std::size_t s = part_.shard_of(g);
    return worlds_[s]->rank(g - part_.first_node[s]);
  }

  // -- internal: shard-worker wire (called by ShardWorld) -------------------
  /// Producer side: only shard `src`'s worker pushes on (src, dst).
  void push_handoff(std::size_t src, std::size_t dst,
                    fabric::ShardHandoff h);
  /// Consumer side: only shard `dst`'s worker drains its inbound channels.
  void drain_into(std::size_t dst, std::vector<fabric::ShardHandoff>& out);

  /// Per-shard metric shards (one per simulation shard); each ShardWorld
  /// records into its own shard and run() folds them via the registry's
  /// merge path — no hand-rolled per-shard histogram folding.
  obs::ShardedRegistry& obs_shards() { return obs_; }
  obs::ShardedRegistry::HistId hist_window_events() const {
    return h_window_events_;
  }
  obs::ShardedRegistry::HistId hist_window_ns() const {
    return h_window_ns_;
  }
  obs::ShardedRegistry::HistId hist_drain_batch() const {
    return h_drain_batch_;
  }

 private:
  struct Channel {
    explicit Channel(std::size_t cap) : ring(cap) {}
    rt::SpscRing<fabric::ShardHandoff> ring;
    std::mutex mu;                           // guards spill only
    std::vector<fabric::ShardHandoff> spill; // ring-full overflow
    std::uint32_t seq = 0;                   // producer-side stamp
  };

  Channel& channel(std::size_t src, std::size_t dst) {
    return *channels_[src * part_.shards + dst];
  }

  Config cfg_;
  fabric::Partition part_;
  obs::ShardedRegistry obs_{1};
  obs::ShardedRegistry::HistId h_window_events_{};
  obs::ShardedRegistry::HistId h_window_ns_{};
  obs::ShardedRegistry::HistId h_drain_batch_{};
  std::vector<std::unique_ptr<ShardWorld>> worlds_;
  std::vector<std::unique_ptr<Channel>> channels_;
  bool ran_ = false;
};

/// One-shot convenience: configure, run, collect.
Result run(const Config& cfg);

}  // namespace polaris::pdes
