// Configuration and result types for the sharded parallel DES engine.
//
// A pdes run simulates a bulk-synchronous application (halo exchange,
// recursive-doubling allreduce, or a CG-style halo+dot-product iteration)
// on a 2-D torus of commodity nodes, at rank counts (10^5-10^6) far beyond
// what the coroutine-per-rank simrt path can hold in memory.  Ranks are
// compact flat state machines — a few dozen bytes each — and messages are
// closed-form LogGP-style timed arrivals, so the whole machine partitions
// cleanly across per-shard des::Engine instances.
//
// The golden hash in Result is the determinism contract: it folds every
// rank's per-phase completion trace in global rank order and must be
// bit-identical at any shard count and any worker count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "polaris/fabric/params.hpp"
#include "polaris/obs/metrics.hpp"

namespace polaris::pdes {

/// Application traffic pattern, as a flat state machine per rank.
enum class AppKind : std::uint8_t {
  kHalo = 0,       ///< 4-neighbor exchange per iteration (stencil)
  kAllreduce = 1,  ///< recursive-doubling hypercube exchange
  kCg = 2,         ///< halo exchange + 8-byte allreduce per iteration
};

/// What the simulated machine runs.  Ranks live on a grid_w x grid_h
/// 2-D torus (ranks == grid_w * grid_h), one rank per node.
struct Workload {
  AppKind kind = AppKind::kHalo;
  std::size_t grid_w = 16;
  std::size_t grid_h = 16;
  std::uint32_t iters = 10;    ///< application iterations
  std::uint64_t bytes = 8192;  ///< payload per neighbor/partner message
  double compute_s = 50e-6;    ///< compute time between iterations
  std::uint64_t seed = 1;      ///< jitter stream seed
  /// Randomize per-message payload sizes in [bytes/2, 3*bytes/2) from a
  /// pure function of (sender, phase, lane) — exercises non-uniform
  /// timing without breaking shard-count invariance.
  bool jitter = false;

  std::size_t ranks() const { return grid_w * grid_h; }
};

/// A node crash injected at a simulated time: the rank dies, its NIC
/// NACKs every later delivery with XferStatus::kNodeDown.
struct RankFault {
  std::uint32_t rank = 0;
  double time_s = 0.0;
};

struct Config {
  Workload workload;
  fabric::FabricParams fabric = fabric::fabrics::myrinet2000();
  std::size_t shards = 1;
  /// OS threads driving the shards.  0 = lease from the shared
  /// support::WorkerBudget (POLARIS_SIM_THREADS); an explicit value is
  /// honored exactly (clamped to the shard count).
  std::size_t workers = 0;
  /// Cross-shard channel ring depth (per ordered shard pair).  Overflow
  /// spills to a mutex-protected vector, so this sizes the fast path only.
  std::size_t channel_capacity = 4096;
  std::vector<RankFault> faults;
};

/// Rank status values folded into the golden hash.  The first two match
/// fabric::XferStatus numerically (a NACK latches its status verbatim).
inline constexpr std::uint8_t kRankOk = 0;
inline constexpr std::uint8_t kRankPeerDown = 1;  ///< == XferStatus::kNodeDown
inline constexpr std::uint8_t kRankCrashed = 255;

struct Result {
  // -- simulation outcome (shard-count invariant) ---------------------------
  double sim_seconds = 0.0;       ///< latest rank completion time
  std::uint64_t golden_hash = 0;  ///< per-phase completion trace, rank order
  std::uint64_t ranks_ok = 0;     ///< finished all iterations cleanly
  std::uint64_t ranks_failed = 0; ///< crashed, halted on NACK, or stranded

  // -- execution shape ------------------------------------------------------
  std::size_t shards = 1;
  std::size_t workers = 1;
  std::uint64_t events = 0;      ///< engine events across all shards
  std::uint64_t windows = 0;     ///< conservative sync windows
  std::uint64_t msgs_intra = 0;  ///< deliveries within a shard
  std::uint64_t msgs_cross = 0;  ///< deliveries handed off between shards
  std::uint64_t nacks = 0;       ///< failed-delivery reports generated
  double lookahead_s = 0.0;      ///< conservative window width used

  // -- performance ----------------------------------------------------------
  double wall_s = 0.0;            ///< end-to-end host wall clock
  double max_shard_busy_s = 0.0;  ///< busiest shard's window work (critical
                                  ///< path of a perfectly parallel run)
  double sum_busy_s = 0.0;        ///< total window work across shards
  std::uint64_t parks = 0;        ///< barrier sleeps (idle-time proxy)

  // -- memory ---------------------------------------------------------------
  std::uint64_t peak_event_nodes = 0;   ///< max engine pool occupancy (sum)
  std::uint64_t peak_inflight_recs = 0; ///< max message arena occupancy (sum)

  // -- per-shard hot-path timers, merged at export --------------------------
  obs::LogHistogram window_ns;      ///< per-shard per-window busy time
  obs::LogHistogram window_events;  ///< events executed per shard-window
  obs::LogHistogram drain_batch;    ///< handoffs ingested per shard-window
};

/// Publishes a Result into a metrics registry: scalar counters/gauges plus
/// the merged log-linear histograms (merge_from into the registry's own
/// instances, so repeated runs accumulate).
void export_metrics(const Result& r, obs::MetricsRegistry& reg);

}  // namespace polaris::pdes
