#include "polaris/pdes/engine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <exception>
#include <thread>

#include "polaris/rt/wait.hpp"
#include "polaris/support/check.hpp"
#include "polaris/support/thread_budget.hpp"

namespace polaris::pdes {

ShardedEngine::ShardedEngine(Config cfg) : cfg_(std::move(cfg)) {
  const Workload& wl = cfg_.workload;
  POLARIS_CHECK(wl.ranks() >= 1);
  POLARIS_CHECK_MSG(cfg_.shards >= 1 && cfg_.shards <= wl.ranks(),
                    "shard count must be in [1, ranks]");
  part_ = fabric::make_block_partition(wl.ranks(), {wl.grid_w, wl.grid_h},
                                       cfg_.fabric, cfg_.shards);
  obs_ = obs::ShardedRegistry(cfg_.shards);
  h_window_events_ = obs_.log_histogram("pdes.window_events");
  h_window_ns_ = obs_.log_histogram("pdes.window_ns");
  h_drain_batch_ = obs_.log_histogram("pdes.drain_batch");
  worlds_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    worlds_.push_back(std::make_unique<ShardWorld>(cfg_, part_, s, this));
  }
  const std::size_t cap =
      std::bit_ceil(std::max<std::size_t>(cfg_.channel_capacity, 2));
  channels_.resize(cfg_.shards * cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    for (std::size_t d = 0; d < cfg_.shards; ++d) {
      if (s != d) {
        channels_[s * cfg_.shards + d] = std::make_unique<Channel>(cap);
      }
    }
  }
}

void ShardedEngine::push_handoff(std::size_t src, std::size_t dst,
                                 fabric::ShardHandoff h) {
  Channel& ch = channel(src, dst);
  h.seq = ch.seq++;
  if (!ch.ring.try_push(h)) {
    // Mid-window the consumer is not draining, so a full ring must not
    // block the producer: spill on the side.  Order does not matter — the
    // consumer canonically sorts each window's batch.
    const std::lock_guard<std::mutex> lock(ch.mu);
    ch.spill.push_back(h);
  }
}

void ShardedEngine::drain_into(std::size_t dst,
                               std::vector<fabric::ShardHandoff>& out) {
  for (std::size_t src = 0; src < part_.shards; ++src) {
    if (src == dst) continue;
    Channel& ch = channel(src, dst);
    ch.ring.drain([&out](fabric::ShardHandoff&& h) { out.push_back(h); });
    const std::lock_guard<std::mutex> lock(ch.mu);
    out.insert(out.end(), ch.spill.begin(), ch.spill.end());
    ch.spill.clear();
  }
}

Result ShardedEngine::run() {
  POLARIS_CHECK_MSG(!ran_, "ShardedEngine::run is one-shot");
  ran_ = true;

  const std::size_t shards = cfg_.shards;
  auto& budget = support::WorkerBudget::instance();
  support::WorkerBudget::Lease lease =
      cfg_.workers == 0
          ? budget.acquire(shards)
          : budget.acquire_exact(std::min(cfg_.workers, shards));
  const std::size_t workers = std::min(lease.workers(), shards);

  const des::SimTime lookahead = des::from_seconds(part_.lookahead_s);
  POLARIS_CHECK_MSG(lookahead >= 1, "fabric lookahead below one tick");

  rt::SpinBarrier barrier(workers);
  std::vector<des::SimTime> report(shards, des::Engine::kNoEventTime);
  std::vector<std::uint64_t> busy_ns(shards, 0);
  des::SimTime window_until = 0;  // written in the serial section only
  bool done = false;              // written in the serial section only
  std::uint64_t windows = 0;
  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
  auto note_error = [&] {
    {
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!error) error = std::current_exception();
    }
    failed.store(true, std::memory_order_relaxed);
  };

  auto worker = [&](std::size_t wi) {
    using clock = std::chrono::steady_clock;
    try {
      for (std::size_t s = wi; s < shards; s += workers) {
        worlds_[s]->init();
        report[s] = worlds_[s]->next_time();
      }
    } catch (...) {
      note_error();
    }
    for (;;) {
      barrier.arrive_and_wait([&] {
        // Serial section: all shards quiesced; their pre-barrier writes
        // (report[], channel contents) are visible here.
        if (failed.load(std::memory_order_relaxed)) {
          done = true;
          return;
        }
        des::SimTime global_next = des::Engine::kNoEventTime;
        for (const des::SimTime t : report) {
          global_next = std::min(global_next, t);
        }
        if (global_next == des::Engine::kNoEventTime) {
          done = true;
          return;
        }
        // Adaptive window: jump straight to the earliest action anywhere
        // and run one full lookahead from there (inclusive bound).
        window_until = global_next + lookahead - 1;
        ++windows;
      });
      if (done) break;
      if (failed.load(std::memory_order_relaxed)) continue;  // keep arriving
      try {
        for (std::size_t s = wi; s < shards; s += workers) {
          const auto t0 = clock::now();
          worlds_[s]->begin_window();
          worlds_[s]->run_window(window_until);
          const std::uint64_t ns = static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  clock::now() - t0)
                  .count());
          busy_ns[s] += ns;
          worlds_[s]->note_window_ns(ns);
          report[s] = worlds_[s]->next_time();
        }
      } catch (...) {
        note_error();
      }
    }
  };

  const auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t wi = 0; wi + 1 < workers; ++wi) {
    pool.emplace_back(worker, wi);
  }
  worker(workers - 1);  // the caller is one of the lease's workers
  for (auto& t : pool) t.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  if (error) std::rethrow_exception(error);

  Result res;
  res.shards = shards;
  res.workers = workers;
  res.lookahead_s = part_.lookahead_s;
  res.windows = windows;
  res.wall_s = wall_s;
  res.parks = barrier.parks();
  std::uint64_t max_busy = 0, sum_busy = 0;
  for (const std::uint64_t ns : busy_ns) {
    max_busy = std::max(max_busy, ns);
    sum_busy += ns;
  }
  res.max_shard_busy_s = static_cast<double>(max_busy) * 1e-9;
  res.sum_busy_s = static_cast<double>(sum_busy) * 1e-9;
  for (const auto& w : worlds_) {
    res.events += w->events();
    res.msgs_intra += w->msgs_intra();
    res.msgs_cross += w->msgs_cross();
    res.nacks += w->nacks();
    res.peak_event_nodes += w->peak_event_nodes();
    res.peak_inflight_recs += w->peak_inflight_recs();
  }
  // Workers quiesced at join: fold the per-shard metric shards through the
  // registry's merge path.
  res.window_ns = obs_.merged(h_window_ns_);
  res.window_events = obs_.merged(h_window_events_);
  res.drain_batch = obs_.merged(h_drain_batch_);

  // Golden trace: every rank's per-phase completion stream plus its final
  // state, folded in global rank order — shard-placement invariant.
  const std::size_t ranks = cfg_.workload.ranks();
  std::uint64_t g = kFnvOffset;
  des::SimTime latest = 0;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const std::size_t s = part_.shard_of(r);
    const RankState& st = worlds_[s]->rank(r - part_.first_node[s]);
    g = fnv_step(g, r);
    g = fnv_step(g, st.hash);
    g = fnv_step(g, static_cast<std::uint64_t>(st.done_at));
    g = fnv_step(g, st.phase);
    g = fnv_step(g, (static_cast<std::uint64_t>(st.status) << 16) |
                        (static_cast<std::uint64_t>(st.nbr_dead) << 8) |
                        st.flags);
    if (st.finished() && !st.dead()) {
      ++res.ranks_ok;
    } else {
      ++res.ranks_failed;
    }
    latest = std::max(latest, st.done_at);
  }
  res.golden_hash = g;
  res.sim_seconds = des::to_seconds(latest);
  return res;
}

Result run(const Config& cfg) {
  ShardedEngine engine(cfg);
  return engine.run();
}

void export_metrics(const Result& r, obs::MetricsRegistry& reg) {
  reg.counter("pdes.events").add(r.events);
  reg.counter("pdes.windows").add(r.windows);
  reg.counter("pdes.msgs_intra").add(r.msgs_intra);
  reg.counter("pdes.msgs_cross").add(r.msgs_cross);
  reg.counter("pdes.nacks").add(r.nacks);
  reg.counter("pdes.barrier_parks").add(r.parks);
  reg.gauge("pdes.shards").set(static_cast<double>(r.shards));
  reg.gauge("pdes.workers").set(static_cast<double>(r.workers));
  reg.gauge("pdes.sim_seconds").set(r.sim_seconds);
  reg.gauge("pdes.peak_event_nodes")
      .observe_max(static_cast<double>(r.peak_event_nodes));
  reg.gauge("pdes.peak_inflight_recs")
      .observe_max(static_cast<double>(r.peak_inflight_recs));
  reg.log_histogram("pdes.window_ns").merge_from(r.window_ns);
  reg.log_histogram("pdes.window_events").merge_from(r.window_events);
  reg.log_histogram("pdes.drain_batch").merge_from(r.drain_batch);
}

}  // namespace polaris::pdes
