#include "polaris/pdes/world.hpp"

#include <algorithm>
#include <tuple>

#include "polaris/fabric/network.hpp"
#include "polaris/pdes/engine.hpp"
#include "polaris/support/check.hpp"
#include "polaris/support/rng.hpp"

namespace polaris::pdes {

namespace {

std::uint32_t ceil_log2(std::size_t n) {
  std::uint32_t s = 0;
  while ((std::size_t{1} << s) < n) ++s;
  return s;
}

}  // namespace

ShardWorld::ShardWorld(const Config& cfg, const fabric::Partition& part,
                       std::size_t shard, ShardedEngine* parent)
    : cfg_(cfg), part_(part), parent_(parent), shard_(shard) {
  first_ = part.first_node[shard];
  obs::ShardedRegistry::Shard& obs = parent_->obs_shards().shard(shard_);
  window_events_ = &obs.hist(parent_->hist_window_events());
  window_ns_ = &obs.hist(parent_->hist_window_ns());
  drain_batch_ = &obs.hist(parent_->hist_drain_batch());
  const Workload& wl = cfg.workload;
  w_ = wl.grid_w;
  h_ = wl.grid_h;
  POLARIS_CHECK(w_ >= 1 && h_ >= 1);
  stages_ = ceil_log2(wl.ranks());
  switch (wl.kind) {
    case AppKind::kHalo: per_iter_ = 1; break;
    case AppKind::kAllreduce: per_iter_ = stages_; break;
    case AppKind::kCg: per_iter_ = 1 + stages_; break;
  }
  total_phases_ = wl.iters * per_iter_;
  o_send_ = des::from_seconds(cfg.fabric.o_send);
  o_recv_ = des::from_seconds(cfg.fabric.o_recv);
  compute_ = std::max<des::SimTime>(des::from_seconds(wl.compute_s), 1);
  // Dimension-order torus routing: switch_hops = wrapped Manhattan
  // distance + 1 (host attach + one switch per grid step).
  const std::size_t max_dist = w_ / 2 + h_ / 2;
  path_by_dist_.resize(max_dist + 1);
  for (std::size_t d = 0; d <= max_dist; ++d) {
    path_by_dist_[d] =
        des::from_seconds(cfg.fabric.path_latency(static_cast<int>(d) + 1));
  }
  ranks_.resize(part.shard_size(shard));
}

void ShardWorld::init() {
  cur_until_ = -1;
  out_min_ = des::Engine::kNoEventTime;
  for (std::size_t lr = 0; lr < ranks_.size(); ++lr) {
    RankState& r = ranks_[lr];
    const std::uint32_t g = first_ + static_cast<std::uint32_t>(lr);
    r.alive_mask = 0;
    for (int d = 0; d < 4; ++d) {
      if (neighbor(g, d) != g) r.alive_mask |= static_cast<std::uint8_t>(1u << d);
    }
    if (total_phases_ == 0) {
      r.flags |= RankState::kFinished;
      continue;
    }
    schedule_rec(0, g, static_cast<std::uint32_t>(lr), Kind::kPhaseStart, 0, 0,
                 0);
  }
  // Crashes are scheduled at init so their engine sequence numbers precede
  // every delivery scheduled during the run: at a shared tick the crash
  // always fires first, at any shard count.
  for (const RankFault& f : cfg_.faults) {
    POLARIS_CHECK_MSG(f.rank < cfg_.workload.ranks(), "fault rank out of range");
    if (part_.shard_of(f.rank) != shard_) continue;
    const des::SimTime t =
        std::max<des::SimTime>(des::from_seconds(f.time_s), 0);
    schedule_rec(t, f.rank, f.rank - first_, Kind::kCrash, 0, 0, 0);
  }
}

void ShardWorld::begin_window() {
  out_min_ = des::Engine::kNoEventTime;
  scratch_.clear();
  parent_->drain_into(shard_, scratch_);
  drain_batch_->record(scratch_.size());
  // Canonical ingestion order: arrival effects commute within a tick, but
  // sorting makes the engine's (t, seq) order itself shard-independent —
  // belt and braces for the determinism contract.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const fabric::ShardHandoff& a, const fabric::ShardHandoff& b) {
              return std::tie(a.t, a.src, a.phase, a.kind, a.seq) <
                     std::tie(b.t, b.src, b.phase, b.kind, b.seq);
            });
  for (const fabric::ShardHandoff& h : scratch_) {
    POLARIS_CHECK_MSG(h.t > cur_until_,
                      "handoff violated the lookahead window");
    schedule_rec(h.t, h.src, h.dst - first_, static_cast<Kind>(h.kind),
                 h.status, h.lane, h.phase);
  }
}

void ShardWorld::run_window(des::SimTime until) {
  cur_until_ = until;
  const std::size_t n = engine_.run_until(until);
  events_ += n;
  window_events_->record(n);
}

void ShardWorld::on_event(void* ctx) {
  auto* rec = static_cast<MsgRec*>(ctx);
  ShardWorld* w = rec->world;
  const MsgRec copy = *rec;
  w->release_rec(copy.slot);  // before dispatch: the handler may reschedule
  w->dispatch(copy);
}

void ShardWorld::dispatch(const MsgRec& rec) {
  switch (rec.kind) {
    case Kind::kPhaseStart: start_phase(rec.dst, rec.phase); break;
    case Kind::kPayload: on_payload(rec); break;
    case Kind::kNack: on_nack(rec); break;
    case Kind::kCrash: on_crash(rec); break;
  }
}

void ShardWorld::start_phase(std::uint32_t lr, std::uint32_t p) {
  RankState& r = ranks_[lr];
  if (r.dead() || r.halted() || r.finished()) return;
  POLARIS_CHECK(p == r.phase && !r.phase_open());
  const std::uint32_t g = first_ + lr;
  const PhaseInfo pi = phase_info(p);
  r.got_mask = 0;
  r.got_count = 0;
  int sent = 0;
  if (pi.is_halo) {
    r.need = r.alive_mask;
    for (int d = 0; d < 4; ++d) {
      const std::uint32_t nb = neighbor(g, d);
      if (nb == g) continue;
      if ((r.nbr_dead & (1u << d)) != 0) continue;  // known dead: no traffic
      send_msg(g, nb, payload_bytes(g, p, static_cast<std::uint8_t>(d),
                                    pi.bytes),
               p, static_cast<std::uint8_t>(d), ++sent);
    }
  } else {
    const std::uint32_t partner = g ^ (1u << pi.stage);
    if (partner < cfg_.workload.ranks()) {
      r.need = 1;
      send_msg(g, partner, payload_bytes(g, p, 0, pi.bytes), p, 0, ++sent);
    } else {
      r.need = 0;  // outside the hypercube: sit this stage out
    }
  }
  r.flags |= RankState::kPhaseOpen;
  if (Parked* pk = parked_.find(park_key(lr, p))) {
    r.got_mask |= pk->mask;
    r.got_count = static_cast<std::uint8_t>(r.got_count + pk->count);
    parked_.erase(park_key(lr, p));
  }
  check_complete(lr);
}

void ShardWorld::on_payload(const MsgRec& rec) {
  RankState& r = ranks_[rec.dst];
  if (r.dead()) {
    // The dead host's NIC reports the failure: a NACK retraces the path
    // back to the sender (wire latency only — no o_send, the host CPU is
    // gone), echoing the lane so the sender knows which direction died.
    ++nacks_;
    const std::uint32_t g = first_ + rec.dst;
    const des::SimTime t = engine_.now() + path_ticks(g, rec.src) + o_recv_;
    route(t, g, rec.src, Kind::kNack,
          static_cast<std::uint8_t>(fabric::XferStatus::kNodeDown), rec.lane,
          rec.phase);
    return;
  }
  const std::uint32_t q = rec.phase;
  if (r.finished() || q < r.phase) return;  // stale (receiver moved on)
  const PhaseInfo pi = phase_info(q);
  const std::uint8_t mask_bit =
      pi.is_halo ? static_cast<std::uint8_t>(1u << (rec.lane ^ 1)) : 0;
  if (q == r.phase && r.phase_open()) {
    r.got_mask |= mask_bit;
    if (!pi.is_halo) ++r.got_count;
    check_complete(rec.dst);
  } else {
    // Early: receiver has not opened phase q yet (recursive doubling can
    // run several stages ahead).  Park until start_phase(q) consumes it.
    Parked& pk = parked_[park_key(rec.dst, q)];
    pk.mask |= mask_bit;
    if (!pi.is_halo) ++pk.count;
  }
}

void ShardWorld::on_nack(const MsgRec& rec) {
  RankState& r = ranks_[rec.dst];
  if (r.dead() || r.finished()) return;
  if (phase_info(rec.phase).is_halo) {
    // Stencil ranks degrade: mark the direction dead, latch the observed
    // failure status, and keep iterating on the surviving neighbors.
    // Both updates are monotone, so same-tick NACK/payload races resolve
    // identically in any order.
    r.nbr_dead |= static_cast<std::uint8_t>(1u << rec.lane);
    r.status = std::max(r.status, rec.status);
    check_complete(rec.dst);
  } else {
    // A reduction cannot survive a lost contributor: latch the status and
    // halt before the next phase opens (the >= 1 tick phase gap guarantees
    // the latch is visible to start_phase regardless of same-tick order).
    r.status = std::max(r.status, rec.status);
    r.flags |= RankState::kHalted;
  }
}

void ShardWorld::on_crash(const MsgRec& rec) {
  RankState& r = ranks_[rec.dst];
  if (r.dead()) return;
  r.flags |= RankState::kDead;
  if (!r.finished()) r.status = kRankCrashed;
}

void ShardWorld::check_complete(std::uint32_t lr) {
  RankState& r = ranks_[lr];
  if (!r.phase_open() || r.dead()) return;
  const std::uint32_t p = r.phase;
  const bool done =
      phase_info(p).is_halo
          ? ((r.got_mask | r.nbr_dead) & r.need) == r.need
          : r.got_count >= r.need;
  if (!done) return;
  r.flags = static_cast<std::uint8_t>(r.flags & ~RankState::kPhaseOpen);
  const des::SimTime now = engine_.now();
  r.done_at = now;
  r.hash = fnv_step(r.hash, p);
  r.hash = fnv_step(r.hash, static_cast<std::uint64_t>(now));
  r.phase = p + 1;
  if (r.phase == total_phases_) {
    r.flags |= RankState::kFinished;
    return;
  }
  schedule_rec(now + gap_before(r.phase), first_ + lr, lr, Kind::kPhaseStart,
               0, 0, r.phase);
}

void ShardWorld::send_msg(std::uint32_t src_g, std::uint32_t dst_g,
                          std::uint64_t bytes, std::uint32_t phase,
                          std::uint8_t lane, int idx) {
  RankState& r = ranks_[src_g - first_];
  const des::SimTime now = engine_.now();
  // LogGP send: the CPU spends o_send per message (serialized on the
  // issuing core), the NIC serializes at link bandwidth, the wire adds
  // path latency, and the receive overhead is folded into the arrival so
  // arrival processing stays commutative.
  const des::SimTime inject = now + static_cast<des::SimTime>(idx) * o_send_;
  const des::SimTime nic_start = std::max(inject, r.nic_free);
  r.nic_free =
      nic_start + des::from_seconds(static_cast<double>(bytes) /
                                    cfg_.fabric.link_bw);
  const des::SimTime arrival = r.nic_free + path_ticks(src_g, dst_g) + o_recv_;
  route(arrival, src_g, dst_g, Kind::kPayload, 0, lane, phase);
}

void ShardWorld::route(des::SimTime t, std::uint32_t src_g,
                       std::uint32_t dst_g, Kind kind, std::uint8_t status,
                       std::uint8_t lane, std::uint32_t phase) {
  const std::size_t ds = part_.shard_of(dst_g);
  if (ds == shard_) {
    ++msgs_intra_;
    schedule_rec(t, src_g, dst_g - first_, kind, status, lane, phase);
    return;
  }
  // The lookahead guarantee: any cross-shard effect is at least one full
  // min-cut path latency in the future, i.e. beyond this window.
  POLARIS_CHECK_MSG(t > cur_until_, "cross-shard send inside the window");
  fabric::ShardHandoff h;
  h.t = t;
  h.src = src_g;
  h.dst = dst_g;
  h.phase = phase;
  h.kind = static_cast<std::uint8_t>(kind);
  h.status = status;
  h.lane = lane;
  parent_->push_handoff(shard_, ds, h);
  if (t < out_min_) out_min_ = t;
  ++msgs_cross_;
}

void ShardWorld::schedule_rec(des::SimTime t, std::uint32_t src_g,
                              std::uint32_t dst_local, Kind kind,
                              std::uint8_t status, std::uint8_t lane,
                              std::uint32_t phase) {
  std::uint32_t slot;
  if (!free_recs_.empty()) {
    slot = free_recs_.back();
    free_recs_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(recs_.size());
    recs_.emplace_back();
  }
  MsgRec& rec = recs_[slot];
  rec.world = this;
  rec.slot = slot;
  rec.src = src_g;
  rec.dst = dst_local;
  rec.phase = phase;
  rec.kind = kind;
  rec.status = status;
  rec.lane = lane;
  engine_.schedule_raw_at(t, &ShardWorld::on_event, &rec);
}

void ShardWorld::release_rec(std::uint32_t slot) {
  free_recs_.push_back(slot);
}

ShardWorld::PhaseInfo ShardWorld::phase_info(std::uint32_t p) const {
  const Workload& wl = cfg_.workload;
  switch (wl.kind) {
    case AppKind::kHalo:
      return {true, 0, wl.bytes};
    case AppKind::kAllreduce:
      return {false, p % per_iter_, wl.bytes};
    case AppKind::kCg: {
      const std::uint32_t sub = p % per_iter_;
      if (sub == 0) return {true, 0, wl.bytes};
      return {false, sub - 1, 8};  // dot-product allreduce: one double
    }
  }
  return {true, 0, wl.bytes};
}

des::SimTime ShardWorld::gap_before(std::uint32_t next_p) const {
  // Full compute block between iterations; a 1-tick breather between
  // sub-phases (also guarantees same-tick NACKs land before the next
  // phase opens — part of the determinism argument, do not zero it).
  return next_p % per_iter_ == 0 ? compute_ : 1;
}

std::uint32_t ShardWorld::neighbor(std::uint32_t g, int dir) const {
  const std::size_t x = g % w_;
  const std::size_t y = g / w_;
  switch (dir) {
    case 0: return static_cast<std::uint32_t>((x + w_ - 1) % w_ + y * w_);
    case 1: return static_cast<std::uint32_t>((x + 1) % w_ + y * w_);
    case 2: return static_cast<std::uint32_t>(x + ((y + h_ - 1) % h_) * w_);
    default: return static_cast<std::uint32_t>(x + ((y + 1) % h_) * w_);
  }
}

std::size_t ShardWorld::torus_dist(std::uint32_t a, std::uint32_t b) const {
  const std::size_t xa = a % w_, ya = a / w_;
  const std::size_t xb = b % w_, yb = b / w_;
  const std::size_t dx = xa > xb ? xa - xb : xb - xa;
  const std::size_t dy = ya > yb ? ya - yb : yb - ya;
  return std::min(dx, w_ - dx) + std::min(dy, h_ - dy);
}

des::SimTime ShardWorld::path_ticks(std::uint32_t a, std::uint32_t b) const {
  return path_by_dist_[torus_dist(a, b)];
}

std::uint64_t ShardWorld::payload_bytes(std::uint32_t src_g,
                                        std::uint32_t phase,
                                        std::uint8_t lane,
                                        std::uint64_t base) const {
  if (!cfg_.workload.jitter || base < 2) return base;
  // Pure function of (sender, phase, lane): identical at any shard count.
  support::SplitMix64 sm(cfg_.workload.seed ^
                         fnv_step(fnv_step(fnv_step(kFnvOffset, src_g), phase),
                                  lane));
  return base / 2 + sm.next() % base;
}

}  // namespace polaris::pdes
