#include "polaris/support/arrival.hpp"

#include "polaris/support/check.hpp"

namespace polaris::support {

const char* to_string(ArrivalSpec::Kind kind) {
  switch (kind) {
    case ArrivalSpec::Kind::kPoisson:
      return "poisson";
    case ArrivalSpec::Kind::kBursty:
      return "bursty";
  }
  return "?";
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed) {
  POLARIS_CHECK(spec_.rate > 0.0);
  if (spec_.kind == ArrivalSpec::Kind::kPoisson) {
    rate_calm_ = rate_burst_ = spec_.rate;
    return;
  }
  POLARIS_CHECK(spec_.burst_factor > 1.0);
  POLARIS_CHECK(spec_.burst_fraction > 0.0 && spec_.burst_fraction < 1.0);
  POLARIS_CHECK(spec_.mean_burst_s > 0.0);
  // Solve the calm rate so the time average is spec_.rate:
  //   rate = f*B*r_calm + (1-f)*r_calm  =>  r_calm = rate / (1 + f*(B-1)).
  const double f = spec_.burst_fraction;
  rate_calm_ = spec_.rate / (1.0 + f * (spec_.burst_factor - 1.0));
  rate_burst_ = rate_calm_ * spec_.burst_factor;
  // Dwell times with burst fraction f: calm dwell = burst dwell * (1-f)/f.
  mean_dwell_burst_s_ = spec_.mean_burst_s;
  mean_dwell_calm_s_ = spec_.mean_burst_s * (1.0 - f) / f;
  // Stationary initial state: the chain spends fraction f of its time in
  // burst, so a fresh process starts there with probability f.  (A cold
  // start pinned to calm biases the short-horizon mean rate toward
  // rate_calm_ — a run much shorter than a dwell cycle would average
  // rate/(1 + f*(B-1)) instead of rate.)  Dwell times are exponential,
  // hence memoryless: a full dwell draw IS the stationary residual.
  in_burst_ = rng_.bernoulli(f);
  dwell_left_s_ = rng_.exponential(
      1.0 / (in_burst_ ? mean_dwell_burst_s_ : mean_dwell_calm_s_));
}

double ArrivalProcess::next() {
  if (spec_.kind == ArrivalSpec::Kind::kPoisson) {
    return rng_.exponential(spec_.rate);
  }
  // Walk modulation-state boundaries until an arrival lands inside the
  // current state.  Exponential arrivals are memoryless, so re-drawing the
  // arrival clock after each state switch is exact.
  double elapsed = 0.0;
  for (;;) {
    const double rate = in_burst_ ? rate_burst_ : rate_calm_;
    const double to_arrival = rng_.exponential(rate);
    if (to_arrival < dwell_left_s_) {
      dwell_left_s_ -= to_arrival;
      return elapsed + to_arrival;
    }
    elapsed += dwell_left_s_;
    in_burst_ = !in_burst_;
    dwell_left_s_ = rng_.exponential(
        1.0 / (in_burst_ ? mean_dwell_burst_s_ : mean_dwell_calm_s_));
  }
}

}  // namespace polaris::support
