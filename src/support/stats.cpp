#include "polaris/support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "polaris/support/check.hpp"

namespace polaris::support {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void Summary::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Summary::mean() const {
  if (samples_.empty()) return 0.0;
  return sum() / static_cast<double>(samples_.size());
}

double Summary::sum() const {
  double s = 0.0;
  for (double x : samples_) s += x;
  return s;
}

double Summary::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : samples_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(samples_.size() - 1));
}

double Summary::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Summary::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Summary::percentile(double p) const {
  POLARIS_CHECK(p >= 0.0 && p <= 100.0);
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  if (samples_.size() == 1) return samples_[0];
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

Histogram Histogram::linear(double lo, double hi, std::size_t bins) {
  POLARIS_CHECK(hi > lo && bins > 0);
  Histogram h;
  h.logarithmic_ = false;
  h.lo_ = lo;
  h.width_ = (hi - lo) / static_cast<double>(bins);
  h.counts_.assign(bins, 0);
  return h;
}

Histogram Histogram::log2(double lo, std::size_t bins) {
  POLARIS_CHECK(lo > 0.0 && bins > 0);
  Histogram h;
  h.logarithmic_ = true;
  h.lo_ = lo;
  h.counts_.assign(bins, 0);
  return h;
}

void Histogram::add(double x, std::uint64_t weight) {
  if (x < lo_) {
    underflow_ += weight;
    return;
  }
  std::size_t bin;
  if (logarithmic_) {
    bin = static_cast<std::size_t>(std::floor(std::log2(x / lo_)));
  } else {
    bin = static_cast<std::size_t>((x - lo_) / width_);
  }
  if (bin >= counts_.size()) {
    overflow_ += weight;
  } else {
    counts_[bin] += weight;
  }
}

std::uint64_t Histogram::total() const {
  std::uint64_t t = underflow_ + overflow_;
  for (auto c : counts_) t += c;
  return t;
}

double Histogram::bin_lo(std::size_t bin) const {
  POLARIS_CHECK(bin < counts_.size());
  if (logarithmic_) return lo_ * std::pow(2.0, static_cast<double>(bin));
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  POLARIS_CHECK(bin < counts_.size());
  if (logarithmic_) return lo_ * std::pow(2.0, static_cast<double>(bin + 1));
  return lo_ + width_ * static_cast<double>(bin + 1);
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%12.4g | ", bin_lo(i));
    out += buf;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out.append(bar, '#');
    out += " ";
    out += std::to_string(counts_[i]);
    out += "\n";
  }
  return out;
}

}  // namespace polaris::support
