#include "polaris/support/thread_budget.hpp"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <thread>

namespace polaris::support {

namespace {

std::size_t default_total() {
  if (const char* env = std::getenv("POLARIS_SIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

}  // namespace

struct WorkerBudget::Impl {
  mutable std::mutex mu;
  std::size_t total = 1;
  std::size_t in_use = 0;  // extra (non-caller) threads on loan
};

WorkerBudget::WorkerBudget(std::size_t total) : impl_(new Impl) {
  impl_->total = total != 0 ? total : default_total();
}

WorkerBudget::~WorkerBudget() { delete impl_; }

WorkerBudget& WorkerBudget::instance() {
  static WorkerBudget budget;
  return budget;
}

WorkerBudget::Lease::Lease(Lease&& other) noexcept
    : budget_(other.budget_), workers_(other.workers_) {
  other.budget_ = nullptr;
  other.workers_ = 0;
}

WorkerBudget::Lease& WorkerBudget::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    release();
    budget_ = other.budget_;
    workers_ = other.workers_;
    other.budget_ = nullptr;
    other.workers_ = 0;
  }
  return *this;
}

void WorkerBudget::Lease::release() {
  if (budget_ != nullptr && workers_ > 1) {
    budget_->release_slots(workers_ - 1);
  }
  budget_ = nullptr;
  workers_ = 0;
}

WorkerBudget::Lease WorkerBudget::acquire(std::size_t want) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const std::size_t left =
      impl_->total > impl_->in_use ? impl_->total - impl_->in_use : 0;
  const std::size_t grant =
      std::clamp<std::size_t>(want, 1, std::max<std::size_t>(1, left));
  impl_->in_use += grant - 1;
  return Lease(this, grant);
}

WorkerBudget::Lease WorkerBudget::acquire_exact(std::size_t want) {
  const std::size_t grant = std::max<std::size_t>(1, want);
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->in_use += grant - 1;
  return Lease(this, grant);
}

std::size_t WorkerBudget::total() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->total;
}

std::size_t WorkerBudget::in_use() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->in_use;
}

void WorkerBudget::release_slots(std::size_t extra) {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->in_use = impl_->in_use > extra ? impl_->in_use - extra : 0;
}

}  // namespace polaris::support
