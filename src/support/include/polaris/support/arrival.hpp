// Deterministic open-loop arrival processes for request/response workloads.
//
// Serving benchmarks drive the cluster with open-loop traffic: requests
// arrive on their own clock regardless of how fast the system drains them.
// Two shapes cover the datacenter literature's load models:
//
//   - Poisson: independent exponential inter-arrivals at a fixed rate —
//     the memoryless baseline every queueing formula assumes.
//   - Bursty (2-state MMPP): a Markov-modulated Poisson process that
//     alternates between a calm state and a burst state with exponential
//     dwell times.  The burst state arrives `burst_factor` times faster
//     than the calm state, and the state rates are solved so the long-run
//     average equals the configured rate — a bursty process is directly
//     comparable to the Poisson process of the same nominal load.  The
//     modulating chain starts in its stationary distribution (burst with
//     probability burst_fraction), so even a run much shorter than one
//     dwell cycle offers the nominal rate in expectation.
//
// All randomness flows from one seeded support::Random stream, so a
// process is reproducible bit-for-bit and safe inside des::SweepRunner
// points (seed each point with des::sweep_seed, as usual).
#pragma once

#include <cstdint>

#include "polaris/support/rng.hpp"

namespace polaris::support {

struct ArrivalSpec {
  enum class Kind : std::uint8_t {
    kPoisson = 0,
    kBursty = 1,  ///< 2-state MMPP
  };

  Kind kind = Kind::kPoisson;
  double rate = 1.0;  ///< long-run average arrivals per second (> 0)

  // -- bursty shape (ignored for kPoisson) -----------------------------------
  double burst_factor = 8.0;    ///< burst rate / calm rate (> 1)
  double burst_fraction = 0.1;  ///< long-run fraction of time in burst (0, 1)
  double mean_burst_s = 2e-3;   ///< mean burst dwell time, seconds

  static ArrivalSpec poisson(double rate) {
    ArrivalSpec s;
    s.kind = Kind::kPoisson;
    s.rate = rate;
    return s;
  }

  static ArrivalSpec bursty(double rate, double burst_factor = 8.0,
                            double burst_fraction = 0.1,
                            double mean_burst_s = 2e-3) {
    ArrivalSpec s;
    s.kind = Kind::kBursty;
    s.rate = rate;
    s.burst_factor = burst_factor;
    s.burst_fraction = burst_fraction;
    s.mean_burst_s = mean_burst_s;
    return s;
  }
};

const char* to_string(ArrivalSpec::Kind kind);

class ArrivalProcess {
 public:
  ArrivalProcess(ArrivalSpec spec, std::uint64_t seed);

  /// Seconds from the previous arrival (or from construction) to the next.
  /// Always > 0.
  double next();

  /// True while the modulating chain sits in the burst state (always false
  /// for Poisson).  Exposed for tests and trace annotation.
  bool in_burst() const { return in_burst_; }

  const ArrivalSpec& spec() const { return spec_; }

 private:
  ArrivalSpec spec_;
  Random rng_;
  double rate_calm_ = 1.0;
  double rate_burst_ = 1.0;
  double mean_dwell_calm_s_ = 1.0;
  double mean_dwell_burst_s_ = 1.0;
  double dwell_left_s_ = 0.0;  ///< residual time in the current state
  bool in_burst_ = false;
};

}  // namespace polaris::support
