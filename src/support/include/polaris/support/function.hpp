// Move-only type-erased callable with a small-buffer optimization
// (std::move_only_function is C++23; this is the C++20 equivalent the event
// engine needs for callbacks that capture move-only state such as coroutine
// tasks).
//
// Callables that fit the inline buffer and are nothrow-move-constructible
// are stored in place — no heap allocation.  The discrete-event engine's
// typical callback (a lambda capturing one coroutine handle, or a handle
// plus an owner pointer) is well under the 48-byte budget, so the schedule
// hot path allocates nothing; larger captures fall back to the heap and
// `heap_allocated()` lets callers count those misses.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace polaris::support {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Inline storage budget.  Sized for the engine's common captures (a
  /// coroutine handle plus a couple of pointers) with room to spare.
  static constexpr std::size_t kInlineBytes = 48;

  UniqueFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>() && std::is_trivially_copyable_v<D>) {
      // Trivial inline target: manage_ stays null — destruction is a
      // no-op and moves are a fixed-size memcpy, so the event-engine hot
      // path pays no indirect management calls.
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      inline_ = true;
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      };
    } else if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      inline_ = true;
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            std::launder(reinterpret_cast<D*>(self))->~D();
            break;
          case Op::kMoveFrom:
            ::new (self)
                D(std::move(*std::launder(reinterpret_cast<D*>(other))));
            std::launder(reinterpret_cast<D*>(other))->~D();
            break;
        }
      };
    } else {
      ptr(storage_) = new D(std::forward<F>(f));
      inline_ = false;
      invoke_ = [](void* s, Args&&... args) -> R {
        return (*static_cast<D*>(ptr(s)))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* other) {
        switch (op) {
          case Op::kDestroy:
            delete static_cast<D*>(ptr(self));
            break;
          case Op::kMoveFrom:
            ptr(self) = std::exchange(ptr(other), nullptr);
            break;
        }
      };
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { move_from(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// True when the target lives on the heap (capture exceeded the inline
  /// buffer or has a throwing move).  False for empty or inline targets.
  bool heap_allocated() const { return invoke_ != nullptr && !inline_; }

  R operator()(Args... args) {
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kDestroy, kMoveFrom };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(Op, void* self, void* other);

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  static void*& ptr(void* s) { return *static_cast<void**>(s); }
  static void* ptr(const void* s) {
    return *static_cast<void* const*>(const_cast<void*>(s));
  }

  void reset() {
    if (invoke_) {
      if (manage_) manage_(Op::kDestroy, storage_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  void move_from(UniqueFunction& other) noexcept {
    invoke_ = std::exchange(other.invoke_, nullptr);
    manage_ = std::exchange(other.manage_, nullptr);
    inline_ = other.inline_;
    if (invoke_) {
      if (manage_) {
        manage_(Op::kMoveFrom, storage_, other.storage_);
      } else {
        // Trivial inline target: copying the whole buffer (including any
        // uninitialized tail) is cheaper than a size dispatch.
        std::memcpy(storage_, other.storage_, kInlineBytes);
      }
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
  bool inline_ = false;
};

}  // namespace polaris::support
