// Move-only type-erased callable (std::move_only_function is C++23; this is
// the minimal C++20 equivalent the event engine needs for callbacks that
// capture move-only state such as coroutine tasks).
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace polaris::support {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, UniqueFunction> &&
             std::is_invocable_r_v<R, std::decay_t<F>&, Args...>)
  UniqueFunction(F&& f)  // NOLINT(google-explicit-constructor)
      : impl_(std::make_unique<Model<std::decay_t<F>>>(std::forward<F>(f))) {}

  UniqueFunction(UniqueFunction&&) noexcept = default;
  UniqueFunction& operator=(UniqueFunction&&) noexcept = default;
  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  explicit operator bool() const { return impl_ != nullptr; }

  R operator()(Args... args) {
    return impl_->invoke(std::forward<Args>(args)...);
  }

 private:
  struct Concept {
    virtual ~Concept() = default;
    virtual R invoke(Args... args) = 0;
  };
  template <typename F>
  struct Model final : Concept {
    explicit Model(F f) : fn(std::move(f)) {}
    R invoke(Args... args) override {
      return fn(std::forward<Args>(args)...);
    }
    F fn;
  };

  std::unique_ptr<Concept> impl_;
};

}  // namespace polaris::support
