// Deterministic random-number generation for simulations.
//
// Every stochastic input in Polaris flows from an explicitly seeded
// xoshiro256** stream so that simulated experiments are reproducible
// bit-for-bit across runs and platforms.  SplitMix64 expands a single user
// seed into the four-word xoshiro state, and `split()` derives independent
// child streams (one per node, per job, per failure source, ...) without
// correlation between siblings.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "polaris/support/check.hpp"

namespace polaris::support {

/// SplitMix64: tiny, high-quality 64-bit mixer used for seeding.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, statistically excellent 64-bit PRNG
/// (Blackman & Vigna).  Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x5eed0fb07a815ULL) {
    SplitMix64 sm(seed);
    for (auto& w : state_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derives an independent child stream.  Uses the parent's output to seed
  /// a fresh SplitMix64 expansion, so children of distinct draws do not
  /// share state trajectories.
  Xoshiro256 split() {
    Xoshiro256 child(0);
    SplitMix64 sm((*this)() ^ 0xa5a5a5a5deadbeefULL);
    for (auto& w : child.state_) w = sm.next();
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

/// Convenience distribution wrapper around a Xoshiro256 stream.
///
/// The standard <random> distributions are not guaranteed to produce the
/// same sequence across standard-library implementations; these are, which
/// keeps experiment output portable.
class Random {
 public:
  explicit Random(std::uint64_t seed) : gen_(seed) {}
  explicit Random(Xoshiro256 gen) : gen_(gen) {}

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 random mantissa bits.
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    POLARIS_CHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);

  /// Log-uniform in [lo, hi]: uniform in log-space.  The classic model for
  /// parallel-job runtimes (Feitelson).
  double log_uniform(double lo, double hi);

  /// Lognormal with the given mu/sigma of the underlying normal.
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller (no cached spare: determinism over speed).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Geometric-ish power-of-two draw in [2^lo_exp, 2^hi_exp]; used for
  /// synthetic parallel-job widths.
  std::int64_t power_of_two(int lo_exp, int hi_exp);

  /// Derives an independent child Random (e.g., per simulated node).
  Random split() { return Random(gen_.split()); }

  Xoshiro256& engine() { return gen_; }

 private:
  Xoshiro256 gen_;
};

}  // namespace polaris::support
