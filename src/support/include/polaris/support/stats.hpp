// Descriptive statistics used throughout experiments: streaming moments
// (Welford), percentile summaries, and fixed-bin histograms.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace polaris::support {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
/// O(1) memory; numerically stable for long simulations.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample-retaining summary for percentiles.  Keeps all samples; intended
/// for experiment-scale data (≤ millions of points), not unbounded streams.
class Summary {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const;

  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-width or logarithmic histogram.
class Histogram {
 public:
  /// Linear bins covering [lo, hi) with `bins` buckets plus under/overflow.
  static Histogram linear(double lo, double hi, std::size_t bins);
  /// Log2 bins: bucket i covers [lo*2^i, lo*2^(i+1)).
  static Histogram log2(double lo, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const;
  /// Inclusive lower edge of a bin.
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

  /// Renders a compact ASCII bar chart (for example programs).
  std::string ascii(std::size_t width = 40) const;

 private:
  Histogram() = default;

  bool logarithmic_ = false;
  double lo_ = 0.0;
  double width_ = 1.0;  // linear: bin width; log: unused
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
};

}  // namespace polaris::support
