// Aligned ASCII tables and CSV emission for benchmark/experiment output.
//
// Every bench binary prints its figure/table through this so that
// EXPERIMENTS.md rows and regenerated output share one format.
#pragma once

#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace polaris::support {

/// Column-aligned ASCII table with an optional title and CSV export.
///
///   Table t("F2: ping-pong latency");
///   t.header({"bytes", "fabric", "latency"});
///   t.row({"8", "infiniband", "5.1 us"});
///   t.print(std::cout);
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  void header(std::initializer_list<std::string> cols) {
    header_.assign(cols.begin(), cols.end());
  }
  void header(std::vector<std::string> cols) { header_ = std::move(cols); }

  void row(std::initializer_list<std::string> cells) {
    rows_.emplace_back(cells.begin(), cells.end());
  }
  void row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Builds a row from heterogeneous cells via to_cell().
  template <typename... Ts>
  void add(const Ts&... cells) {
    rows_.push_back({to_cell(cells)...});
  }

  std::size_t row_count() const { return rows_.size(); }
  const std::string& cell(std::size_t r, std::size_t c) const {
    return rows_.at(r).at(c);
  }

  /// Pretty-prints with column alignment.
  void print(std::ostream& os) const;

  /// Comma-separated form (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(double v);
  static std::string to_cell(float v) { return to_cell(double{v}); }
  static std::string to_cell(int v) { return std::to_string(v); }
  static std::string to_cell(long v) { return std::to_string(v); }
  static std::string to_cell(long long v) { return std::to_string(v); }
  static std::string to_cell(unsigned v) { return std::to_string(v); }
  static std::string to_cell(unsigned long v) { return std::to_string(v); }
  static std::string to_cell(unsigned long long v) {
    return std::to_string(v);
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace polaris::support
