// Open-addressing hash map keyed by 64-bit integers.
//
// The hot lookup structures in the messaging layer (tag-match buckets, the
// posted-receive index, the collective-schedule cache) all key by small
// packed integers and sit on per-message paths where std::unordered_map's
// per-node allocation and pointer chasing dominate.  FlatMap64 stores
// {key, value} pairs inline in one power-of-two array with linear probing
// and backward-shift deletion (no tombstones), so steady-state insert /
// find / erase never touch the allocator.
//
// Contracts:
//  - Keys are arbitrary 64-bit values (the full key space is valid; a
//    separate occupancy byte marks empty slots).
//  - Pointers returned by find() and references from operator[] are valid
//    only until the next insert or erase (rehash / backward shift move
//    entries).
//  - Value type must be movable; it is moved on rehash and erase-shift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "polaris/support/check.hpp"

namespace polaris::support {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots in the backing array (allocation observability: unchanged
  /// capacity across a workload means the map allocated nothing).
  std::size_t bucket_capacity() const { return slots_.size(); }

  /// Pointer to the value for `key`, or nullptr.  Invalidated by the next
  /// insert or erase.
  V* find(std::uint64_t key) {
    if (size_ == 0) return nullptr;
    std::size_t i = probe_start(key);
    while (used_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const V* find(std::uint64_t key) const {
    return const_cast<FlatMap64*>(this)->find(key);
  }

  /// Find-or-default-insert.  The reference is invalidated by the next
  /// insert or erase.
  V& operator[](std::uint64_t key) {
    if (slots_.empty() || (size_ + 1) * 8 > slots_.size() * 7) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    std::size_t i = probe_start(key);
    while (used_[i]) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = V{};
    ++size_;
    return slots_[i].value;
  }

  /// Removes `key`; false if absent.  Backward-shift deletion keeps probe
  /// chains contiguous without tombstones.
  bool erase(std::uint64_t key) {
    if (size_ == 0) return false;
    std::size_t i = probe_start(key);
    while (used_[i]) {
      if (slots_[i].key == key) {
        shift_out(i);
        --size_;
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  void clear() {
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  /// Visits every (key, value&) pair in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (used_[i]) fn(slots_[i].key, slots_[i].value);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 16;

  struct Slot {
    std::uint64_t key;
    V value;
  };

  /// splitmix64 finalizer: full-avalanche mix so packed sequential keys
  /// spread across the table.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t probe_start(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }

  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.clear();
    slots_.resize(new_capacity);
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (!old_used[i]) continue;
      std::size_t j = probe_start(old_slots[i].key);
      while (used_[j]) j = (j + 1) & mask_;
      used_[j] = 1;
      slots_[j].key = old_slots[i].key;
      slots_[j].value = std::move(old_slots[i].value);
      ++size_;
    }
  }

  /// Empties slot `i`, then walks the chain after it moving back any entry
  /// whose home position no longer reaches it through occupied slots.
  void shift_out(std::size_t i) {
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      const std::size_t home = probe_start(slots_[j].key);
      // Move j into the hole at i iff the hole lies between j's home and j
      // (circularly); otherwise j still probes correctly past the hole.
      if (((j - home) & mask_) >= ((j - i) & mask_)) {
        slots_[i].key = slots_[j].key;
        slots_[i].value = std::move(slots_[j].value);
        i = j;
      }
    }
    used_[i] = 0;
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace polaris::support
