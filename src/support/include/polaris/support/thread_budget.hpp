// Process-wide worker-thread budget.
//
// Two layers of the simulator can each decide to go parallel: SweepRunner
// fans sweep points across threads, and pdes::ShardedEngine fans shards
// across workers.  When they compose (a sweep whose body runs a sharded
// simulation) naive per-layer sizing multiplies — POLARIS_SWEEP_THREADS x
// shards threads on a machine with neither.  WorkerBudget is the shared
// ledger both layers draw from: a total (POLARIS_SIM_THREADS, default
// hardware concurrency) and a count of threads currently on loan.  A layer
// acquires a lease for the parallelism it wants and receives what the
// ledger can cover; the inner layer then sees a drained budget and runs
// serial instead of oversubscribing.
//
// Accounting counts *extra* threads: the calling thread is always one of
// its own lease's workers, so a lease of k workers charges k-1 to the
// ledger and a budget of N supports one layer of N workers (not N+1).
#pragma once

#include <cstddef>

namespace polaris::support {

class WorkerBudget {
 public:
  /// total == 0 reads POLARIS_SIM_THREADS, falling back to
  /// std::thread::hardware_concurrency(); the floor is always 1.
  explicit WorkerBudget(std::size_t total = 0);
  ~WorkerBudget();

  WorkerBudget(const WorkerBudget&) = delete;
  WorkerBudget& operator=(const WorkerBudget&) = delete;

  /// The process-wide ledger (POLARIS_SIM_THREADS-sized).
  static WorkerBudget& instance();

  /// RAII loan of worker slots.  workers() includes the calling thread;
  /// destruction (or release()) returns the extra threads to the ledger.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept;
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { release(); }

    /// Threads this lease may run concurrently (>= 1 when engaged).
    std::size_t workers() const { return workers_; }

    void release();

   private:
    friend class WorkerBudget;
    Lease(WorkerBudget* budget, std::size_t workers)
        : budget_(budget), workers_(workers) {}

    WorkerBudget* budget_ = nullptr;
    std::size_t workers_ = 0;
  };

  /// Grants min(want, what's left), never less than 1: the caller can
  /// always run its own thread.  Use for auto-sized layers.
  Lease acquire(std::size_t want);

  /// Grants exactly `want` workers regardless of the ledger state — for
  /// explicit user overrides (a config that says "8 workers" means 8).
  /// Still charges the ledger so nested layers see the drain.
  Lease acquire_exact(std::size_t want);

  std::size_t total() const;
  std::size_t in_use() const;

 private:
  void release_slots(std::size_t extra);

  struct Impl;
  // Pointer-to-impl keeps <mutex> out of this widely-included header.
  Impl* impl_;
};

}  // namespace polaris::support
