// Byte/time/rate constants and human-readable formatting.
//
// Simulated time in Polaris is expressed in double seconds at model level
// and int64 nanoseconds inside the event engine; these helpers keep unit
// conversions explicit at module boundaries.
#pragma once

#include <cstdint>
#include <string>

namespace polaris::support {

// -- byte sizes ------------------------------------------------------------
inline constexpr std::uint64_t KiB = 1024;
inline constexpr std::uint64_t MiB = 1024 * KiB;
inline constexpr std::uint64_t GiB = 1024 * MiB;

// -- SI rate/size constants (network bandwidth is decimal by convention) ---
inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;
inline constexpr double kPeta = 1e15;

// -- time ------------------------------------------------------------------
inline constexpr double kMicro = 1e-6;
inline constexpr double kMilli = 1e-3;
inline constexpr double kNano = 1e-9;

/// "1.5 KiB", "4 MiB", ... binary prefixes, 4 significant digits.
std::string format_bytes(std::uint64_t bytes);

/// "12.3 us", "4.56 ms", "1.23 s" — picks the natural unit.
std::string format_time(double seconds);

/// "1.86 GB/s", "940 Mb/s" — decimal prefixes, bytes/s by default.
std::string format_rate(double bytes_per_second);

/// "12.3 Gflops", "1.05 Tflops".
std::string format_flops(double flops);

/// "$1.23M", "$456k".
std::string format_dollars(double dollars);

/// "850 W", "1.2 MW".
std::string format_watts(double watts);

}  // namespace polaris::support
