// Lightweight contract checking for Polaris.
//
// POLARIS_CHECK is an always-on precondition/invariant check: violations
// throw polaris::support::ContractViolation so tests can assert on them and
// long-running simulations fail loudly instead of corrupting results.
// POLARIS_DCHECK compiles away in NDEBUG builds for hot paths.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace polaris::support {

/// Thrown when a POLARIS_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* expr, const std::string& msg,
                    std::source_location loc)
      : std::logic_error(format(expr, msg, loc)) {}

 private:
  static std::string format(const char* expr, const std::string& msg,
                            std::source_location loc) {
    std::string out = "contract violation: ";
    out += expr;
    if (!msg.empty()) {
      out += " (";
      out += msg;
      out += ")";
    }
    out += " at ";
    out += loc.file_name();
    out += ":";
    out += std::to_string(loc.line());
    return out;
  }
};

[[noreturn]] inline void check_failed(
    const char* expr, const std::string& msg = {},
    std::source_location loc = std::source_location::current()) {
  throw ContractViolation(expr, msg, loc);
}

}  // namespace polaris::support

#define POLARIS_CHECK(expr)                            \
  do {                                                 \
    if (!(expr)) ::polaris::support::check_failed(#expr); \
  } while (false)

#define POLARIS_CHECK_MSG(expr, msg)                        \
  do {                                                      \
    if (!(expr)) ::polaris::support::check_failed(#expr, (msg)); \
  } while (false)

#ifdef NDEBUG
#define POLARIS_DCHECK(expr) \
  do {                       \
  } while (false)
#else
#define POLARIS_DCHECK(expr) POLARIS_CHECK(expr)
#endif
