#include "polaris/support/rng.hpp"

#include <cmath>
#include <numbers>

namespace polaris::support {

std::int64_t Random::uniform_int(std::int64_t lo, std::int64_t hi) {
  POLARIS_CHECK(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  // Lemire's nearly-divisionless bounded draw with rejection for exactness.
  const std::uint64_t threshold = (-range) % range;
  for (;;) {
    const std::uint64_t x = gen_();
    const __uint128_t m = static_cast<__uint128_t>(x) * range;
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= threshold) {
      return lo + static_cast<std::int64_t>(m >> 64);
    }
  }
}

double Random::exponential(double lambda) {
  POLARIS_CHECK(lambda > 0.0);
  // 1 - uniform() is in (0, 1], avoiding log(0).
  return -std::log(1.0 - uniform()) / lambda;
}

double Random::weibull(double shape, double scale) {
  POLARIS_CHECK(shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log(1.0 - uniform()), 1.0 / shape);
}

double Random::log_uniform(double lo, double hi) {
  POLARIS_CHECK(lo > 0.0 && lo <= hi);
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

double Random::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Random::normal(double mean, double stddev) {
  // Box-Muller without the cached spare so the draw count per call is fixed,
  // which keeps split()-derived streams aligned across code changes.
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * z;
}

std::int64_t Random::power_of_two(int lo_exp, int hi_exp) {
  POLARIS_CHECK(0 <= lo_exp && lo_exp <= hi_exp && hi_exp < 63);
  const auto e = uniform_int(lo_exp, hi_exp);
  return std::int64_t{1} << e;
}

}  // namespace polaris::support
