#include "polaris/support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace polaris::support {

std::string Table::to_cell(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void Table::print(std::ostream& os) const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.size());
  std::vector<std::size_t> width(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_) widen(r);

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& s = i < cells.size() ? cells[i] : std::string{};
      os << s;
      if (i + 1 < ncols) os << std::string(width[i] - s.size() + 2, ' ');
    }
    os << "\n";
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < ncols; ++i) total += width[i] + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  }
  for (const auto& r : rows_) emit(r);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const std::string& s = cells[i];
      const bool quote = s.find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char c : s) {
          if (c == '"') os << '"';
          os << c;
        }
        os << '"';
      } else {
        os << s;
      }
      if (i + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
}

}  // namespace polaris::support
