#include "polaris/support/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace polaris::support {
namespace {

std::string scaled(double value, double base,
                   const std::array<const char*, 7>& suffixes,
                   const char* fmt_small = "%.3g %s") {
  double v = value;
  std::size_t i = 0;
  while (std::fabs(v) >= base && i + 1 < suffixes.size()) {
    v /= base;
    ++i;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt_small, v, suffixes[i]);
  return buf;
}

}  // namespace

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 7> kSuffix = {
      "B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"};
  return scaled(static_cast<double>(bytes), 1024.0, kSuffix, "%.4g %s");
}

std::string format_time(double seconds) {
  char buf[64];
  const double a = std::fabs(seconds);
  if (a == 0.0) {
    return "0 s";
  } else if (a < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.3g ns", seconds * 1e9);
  } else if (a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3g us", seconds * 1e6);
  } else if (a < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3g ms", seconds * 1e3);
  } else if (a < 120.0) {
    std::snprintf(buf, sizeof(buf), "%.3g s", seconds);
  } else if (a < 7200.0) {
    std::snprintf(buf, sizeof(buf), "%.3g min", seconds / 60.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g h", seconds / 3600.0);
  }
  return buf;
}

std::string format_rate(double bytes_per_second) {
  static constexpr std::array<const char*, 7> kSuffix = {
      "B/s", "kB/s", "MB/s", "GB/s", "TB/s", "PB/s", "EB/s"};
  return scaled(bytes_per_second, 1000.0, kSuffix);
}

std::string format_flops(double flops) {
  static constexpr std::array<const char*, 7> kSuffix = {
      "flops", "kflops", "Mflops", "Gflops", "Tflops", "Pflops", "Eflops"};
  return scaled(flops, 1000.0, kSuffix);
}

std::string format_dollars(double dollars) {
  char buf[64];
  const double a = std::fabs(dollars);
  if (a >= 1e9) {
    std::snprintf(buf, sizeof(buf), "$%.3gB", dollars / 1e9);
  } else if (a >= 1e6) {
    std::snprintf(buf, sizeof(buf), "$%.3gM", dollars / 1e6);
  } else if (a >= 1e3) {
    std::snprintf(buf, sizeof(buf), "$%.3gk", dollars / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "$%.3g", dollars);
  }
  return buf;
}

std::string format_watts(double watts) {
  static constexpr std::array<const char*, 7> kSuffix = {"W",  "kW", "MW",
                                                         "GW", "TW", "PW",
                                                         "EW"};
  return scaled(watts, 1000.0, kSuffix);
}

}  // namespace polaris::support
