#include "polaris/fault/failure.hpp"

#include <algorithm>
#include <cmath>

#include "polaris/support/check.hpp"

namespace polaris::fault {

FailureModel FailureModel::exponential(double mtbf) {
  POLARIS_CHECK(mtbf > 0);
  return FailureModel(FailureLaw::kExponential, mtbf, 1.0, mtbf);
}

FailureModel FailureModel::weibull(double mtbf, double shape) {
  POLARIS_CHECK(mtbf > 0 && shape > 0);
  // mean = scale * Gamma(1 + 1/k)  =>  scale = mtbf / Gamma(1 + 1/k).
  const double scale = mtbf / std::tgamma(1.0 + 1.0 / shape);
  return FailureModel(FailureLaw::kWeibull, mtbf, shape, scale);
}

double FailureModel::sample_ttf(support::Random& rng) const {
  switch (law_) {
    case FailureLaw::kExponential:
      return rng.exponential(1.0 / mtbf_);
    case FailureLaw::kWeibull:
      return rng.weibull(shape_, scale_);
  }
  return mtbf_;
}

double system_mtbf_exponential(double node_mtbf, std::size_t nodes) {
  POLARIS_CHECK(node_mtbf > 0 && nodes > 0);
  return node_mtbf / static_cast<double>(nodes);
}

double system_mtbf_sampled(const FailureModel& node, std::size_t nodes,
                           std::size_t trials, support::Random& rng) {
  POLARIS_CHECK(nodes > 0 && trials > 0);
  double sum = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    double first = node.sample_ttf(rng);
    for (std::size_t n = 1; n < nodes; ++n) {
      first = std::min(first, node.sample_ttf(rng));
    }
    sum += first;
  }
  return sum / static_cast<double>(trials);
}

FailureTimeline::FailureTimeline(const FailureModel& node, std::size_t nodes,
                                 std::uint64_t seed)
    : model_(node), rng_(seed) {
  POLARIS_CHECK(nodes > 0);
  heap_.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    heap_.push_back({model_.sample_ttf(rng_), n});
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>{});
}

FailureTimeline::Event FailureTimeline::next() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>{});
  const Pending p = heap_.back();
  heap_.pop_back();
  // Repaired immediately: schedule the replacement's failure.
  heap_.push_back({p.time + model_.sample_ttf(rng_), p.node});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>{});
  return {p.time, p.node};
}

std::vector<FailureTimeline::Event> FailureTimeline::until(double horizon) {
  std::vector<Event> out;
  // Half-open [cursor, horizon): strictly-before keeps a boundary event
  // (t == horizon) pending for next()/a later until() — see the header.
  while (heap_.front().time < horizon) {
    out.push_back(next());
  }
  return out;
}

}  // namespace polaris::fault
