#include "polaris/fault/injector.hpp"

#include <string>
#include <utility>

#include "polaris/support/check.hpp"

namespace polaris::fault {

Injector::Injector(des::Engine& engine, fabric::SimNetwork& network)
    : engine_(&engine), network_(&network) {
  network_->enable_faults();
  const std::size_t n = network_->topology().node_count();
  crash_time_.assign(n, -1.0);
  down_since_.assign(n, 0);
}

void Injector::schedule_node_crash(double at, std::uint32_t node,
                                   double repair_after) {
  POLARIS_CHECK(node < network_->topology().node_count());
  FaultEvent ev{FaultEvent::Kind::kNodeCrash, at, node};
  engine_->schedule_at(des::from_seconds(at), [this, ev, repair_after] {
    apply(ev, repair_after);
  });
}

void Injector::schedule_link_outage(double at, fabric::LinkId link,
                                    double repair_after) {
  POLARIS_CHECK(link < network_->topology().link_count());
  FaultEvent ev{FaultEvent::Kind::kLinkDown, at, link};
  engine_->schedule_at(des::from_seconds(at), [this, ev, repair_after] {
    apply(ev, repair_after);
  });
}

std::size_t Injector::load_node_timeline(FailureTimeline& timeline,
                                         double horizon, double repair_after) {
  const auto n =
      static_cast<std::uint32_t>(network_->topology().node_count());
  std::size_t scheduled = 0;
  for (const FailureTimeline::Event& ev : timeline.until(horizon)) {
    schedule_node_crash(ev.time, static_cast<std::uint32_t>(ev.node) % n,
                        repair_after);
    ++scheduled;
  }
  return scheduled;
}

std::size_t Injector::load_link_timeline(FailureTimeline& timeline,
                                         double horizon, double repair_after) {
  const auto links =
      static_cast<std::uint32_t>(network_->topology().link_count());
  std::size_t scheduled = 0;
  for (const FailureTimeline::Event& ev : timeline.until(horizon)) {
    schedule_link_outage(ev.time,
                         static_cast<fabric::LinkId>(ev.node % links),
                         repair_after);
    ++scheduled;
  }
  return scheduled;
}

double Injector::downed_at(std::uint32_t node) const {
  POLARIS_CHECK(node < crash_time_.size());
  return crash_time_[node];
}

void Injector::apply(FaultEvent ev, double repair_after) {
  const std::uint64_t before = history_.size();
  switch (ev.kind) {
    case FaultEvent::Kind::kNodeCrash: {
      if (!network_->node_up(ev.id)) return;  // overlapping schedules collapse
      network_->set_node_up(ev.id, false);
      ++crashes_;
      ++faults_applied_;
      ++nodes_down_;
      crash_time_[ev.id] = ev.time;
      down_since_[ev.id] = engine_->now();
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->instant(track_, "crash node " + std::to_string(ev.id),
                         "fault");
      }
      if (repair_after > 0.0) {
        const FaultEvent up{FaultEvent::Kind::kNodeRepair,
                            ev.time + repair_after, ev.id};
        engine_->schedule_at(des::from_seconds(up.time),
                             [this, up] { apply(up, 0.0); });
      }
      notify_fault();
      break;
    }
    case FaultEvent::Kind::kNodeRepair: {
      if (network_->node_up(ev.id)) return;
      network_->set_node_up(ev.id, true);
      --nodes_down_;
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->complete_span(track_, "node " + std::to_string(ev.id) + " down",
                               "fault", down_since_[ev.id],
                               engine_->now() - down_since_[ev.id]);
      }
      if (nodes_down_ == 0) {
        for (des::OneShotEvent* w : up_waiters_) w->fire(*engine_);
        up_waiters_.clear();
      }
      break;
    }
    case FaultEvent::Kind::kLinkDown: {
      if (!network_->link_up(ev.id)) return;
      network_->set_link_up(ev.id, false);
      ++link_outages_;
      ++faults_applied_;
      ++links_down_;
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->instant(track_, "link " + std::to_string(ev.id) + " down",
                         "fault");
      }
      if (repair_after > 0.0) {
        const FaultEvent up{FaultEvent::Kind::kLinkUp, ev.time + repair_after,
                            ev.id};
        engine_->schedule_at(des::from_seconds(up.time),
                             [this, up] { apply(up, 0.0); });
      }
      notify_fault();
      break;
    }
    case FaultEvent::Kind::kLinkUp: {
      if (network_->link_up(ev.id)) return;
      network_->set_link_up(ev.id, true);
      --links_down_;
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->instant(track_, "link " + std::to_string(ev.id) + " up",
                         "fault");
      }
      break;
    }
  }
  // history_ grows iff the event was not collapsed as a duplicate; only
  // real state changes reach the listeners.
  if (history_.size() != before) {
    for (FaultListener* l : listeners_) l->on_fault(ev);
  }
  update_gauges();
}

void Injector::notify_fault() {
  for (des::OneShotEvent* w : fault_waiters_) w->fire(*engine_);
  fault_waiters_.clear();
}

void Injector::update_gauges() {
  if (!metrics_) return;
  metrics_->gauge("fault.nodes_down").set(nodes_down_);
  metrics_->gauge("fault.links_down").set(links_down_);
  metrics_->gauge("fault.node_crashes").set(static_cast<double>(crashes_));
  metrics_->gauge("fault.link_outages")
      .set(static_cast<double>(link_outages_));
}

void Injector::work_timer_cb(void* ctx) {
  auto* w = static_cast<TimedWait*>(ctx);
  w->event.fire(*w->injector->engine_);
}

des::Task<bool> Injector::work_for(double seconds) {
  const std::uint64_t before = faults_applied_;
  TimedWait w{this, {}};
  const des::EventId timer = engine_->schedule_raw_after(
      des::from_seconds(seconds), &work_timer_cb, &w);
  fault_waiters_.push_back(&w.event);
  co_await w.event.wait();
  // Whichever source fired, the other may still hold a reference: drop the
  // subscription and the timer before the frame goes away.
  for (std::size_t i = 0; i < fault_waiters_.size(); ++i) {
    if (fault_waiters_[i] == &w.event) {
      fault_waiters_[i] = fault_waiters_.back();
      fault_waiters_.pop_back();
      break;
    }
  }
  const bool interrupted = faults_applied_ != before;
  if (interrupted) engine_->cancel(timer);
  co_return !interrupted;
}

des::Task<void> Injector::await_all_nodes_up() {
  while (nodes_down_ > 0) {
    TimedWait w{this, {}};
    up_waiters_.push_back(&w.event);
    co_await w.event.wait();
  }
}

void Injector::attach_tracer(obs::Tracer& tracer) {
  tracer_ = &tracer;
  track_ = tracer.add_track("faults", "injected");
  have_track_ = true;
}

void Injector::attach_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
  update_gauges();
}

}  // namespace polaris::fault
