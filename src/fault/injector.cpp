#include "polaris/fault/injector.hpp"

#include <string>
#include <utility>

#include "polaris/support/check.hpp"

namespace polaris::fault {

Injector::Injector(des::Engine& engine, fabric::SimNetwork& network)
    : engine_(&engine), network_(&network) {
  network_->enable_faults();
  const std::size_t n = network_->topology().node_count();
  crash_time_.assign(n, -1.0);
  down_since_.assign(n, 0);
  node_repair_.assign(n, RepairPlan{});
  link_repair_.assign(network_->topology().link_count(), RepairPlan{});
}

void Injector::schedule_node_crash(double at, std::uint32_t node,
                                   double repair_after) {
  POLARIS_CHECK(node < network_->topology().node_count());
  FaultEvent ev{FaultEvent::Kind::kNodeCrash, at, node};
  engine_->schedule_at(des::from_seconds(at), [this, ev, repair_after] {
    apply(ev, repair_after);
  });
}

void Injector::schedule_link_outage(double at, fabric::LinkId link,
                                    double repair_after) {
  POLARIS_CHECK(link < network_->topology().link_count());
  FaultEvent ev{FaultEvent::Kind::kLinkDown, at, link};
  engine_->schedule_at(des::from_seconds(at), [this, ev, repair_after] {
    apply(ev, repair_after);
  });
}

std::size_t Injector::load_node_timeline(FailureTimeline& timeline,
                                         double horizon, double repair_after) {
  const auto n =
      static_cast<std::uint32_t>(network_->topology().node_count());
  std::size_t scheduled = 0;
  for (const FailureTimeline::Event& ev : timeline.until(horizon)) {
    schedule_node_crash(ev.time, static_cast<std::uint32_t>(ev.node) % n,
                        repair_after);
    ++scheduled;
  }
  return scheduled;
}

std::size_t Injector::load_link_timeline(FailureTimeline& timeline,
                                         double horizon, double repair_after) {
  const auto links =
      static_cast<std::uint32_t>(network_->topology().link_count());
  std::size_t scheduled = 0;
  for (const FailureTimeline::Event& ev : timeline.until(horizon)) {
    schedule_link_outage(ev.time,
                         static_cast<fabric::LinkId>(ev.node % links),
                         repair_after);
    ++scheduled;
  }
  return scheduled;
}

double Injector::downed_at(std::uint32_t node) const {
  POLARIS_CHECK(node < crash_time_.size());
  return crash_time_[node];
}

bool Injector::extend_repair(RepairPlan& plan, FaultEvent::Kind repair_kind,
                             std::uint32_t id, double at,
                             double repair_after) {
  ++overlapped_faults_;
  if (repair_after <= 0.0) {
    // Overlapping permanent fault: cancel any pending repair.  The stale
    // repair event (if one is queued) sees the bumped generation and
    // ignores itself.
    if (plan.at < 0.0) return false;  // already permanent
    plan.at = -1.0;
    ++plan.gen;
    ++repair_extensions_;
    return true;
  }
  const double deadline = at + repair_after;
  // Never shorten: a pending-permanent plan (at < 0) or a later deadline
  // wins.  Equal deadlines collapse without a new event.
  if (plan.at < 0.0 || deadline <= plan.at) return false;
  plan.at = deadline;
  ++plan.gen;
  ++repair_extensions_;
  schedule_repair(plan, repair_kind, id);
  return true;
}

void Injector::schedule_repair(const RepairPlan& plan,
                               FaultEvent::Kind repair_kind,
                               std::uint32_t id) {
  const FaultEvent up{repair_kind, plan.at, id};
  const std::uint32_t gen = plan.gen;
  engine_->schedule_at(des::from_seconds(plan.at),
                       [this, up, gen] { apply_repair(up, gen); });
}

void Injector::apply(FaultEvent ev, double repair_after) {
  switch (ev.kind) {
    case FaultEvent::Kind::kNodeCrash: {
      if (!network_->node_up(ev.id)) {
        // Overlapping fault on a down node: no double count, no listener
        // notification (the survivors' view did not change) — but the
        // repair window merges so the node cannot resurrect early.
        extend_repair(node_repair_[ev.id], FaultEvent::Kind::kNodeRepair,
                      ev.id, ev.time, repair_after);
        update_gauges();
        return;
      }
      network_->set_node_up(ev.id, false);
      ++crashes_;
      ++faults_applied_;
      ++nodes_down_;
      crash_time_[ev.id] = ev.time;
      down_since_[ev.id] = engine_->now();
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->instant(track_, "crash node " + std::to_string(ev.id),
                         "fault");
      }
      RepairPlan& plan = node_repair_[ev.id];
      ++plan.gen;  // invalidates any stale repair event for this node
      plan.at = repair_after > 0.0 ? ev.time + repair_after : -1.0;
      if (plan.at >= 0.0) {
        schedule_repair(plan, FaultEvent::Kind::kNodeRepair, ev.id);
      }
      notify_fault();
      break;
    }
    case FaultEvent::Kind::kLinkDown: {
      if (!network_->link_up(ev.id)) {
        extend_repair(link_repair_[ev.id], FaultEvent::Kind::kLinkUp, ev.id,
                      ev.time, repair_after);
        update_gauges();
        return;
      }
      network_->set_link_up(ev.id, false);
      ++link_outages_;
      ++faults_applied_;
      ++links_down_;
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->instant(track_, "link " + std::to_string(ev.id) + " down",
                         "fault");
      }
      RepairPlan& plan = link_repair_[ev.id];
      ++plan.gen;
      plan.at = repair_after > 0.0 ? ev.time + repair_after : -1.0;
      if (plan.at >= 0.0) {
        schedule_repair(plan, FaultEvent::Kind::kLinkUp, ev.id);
      }
      notify_fault();
      break;
    }
    case FaultEvent::Kind::kNodeRepair:
    case FaultEvent::Kind::kLinkUp:
      // Repairs are only ever scheduled internally, through
      // schedule_repair -> apply_repair.
      POLARIS_CHECK_MSG(false, "repair events go through apply_repair");
      break;
  }
  for (FaultListener* l : listeners_) l->on_fault(ev);
  update_gauges();
}

void Injector::apply_repair(FaultEvent ev, std::uint32_t gen) {
  switch (ev.kind) {
    case FaultEvent::Kind::kNodeRepair: {
      RepairPlan& plan = node_repair_[ev.id];
      if (gen != plan.gen) return;  // superseded by a later/permanent fault
      if (network_->node_up(ev.id)) return;
      network_->set_node_up(ev.id, true);
      --nodes_down_;
      plan.at = -1.0;
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->complete_span(track_,
                               "node " + std::to_string(ev.id) + " down",
                               "fault", down_since_[ev.id],
                               engine_->now() - down_since_[ev.id]);
      }
      if (nodes_down_ == 0) {
        for (des::OneShotEvent* w : up_waiters_) w->fire(*engine_);
        up_waiters_.clear();
      }
      break;
    }
    case FaultEvent::Kind::kLinkUp: {
      RepairPlan& plan = link_repair_[ev.id];
      if (gen != plan.gen) return;
      if (network_->link_up(ev.id)) return;
      network_->set_link_up(ev.id, true);
      --links_down_;
      plan.at = -1.0;
      history_.push_back(ev);
      if (tracer_ && have_track_) {
        tracer_->instant(track_, "link " + std::to_string(ev.id) + " up",
                         "fault");
      }
      break;
    }
    default:
      POLARIS_CHECK_MSG(false, "apply_repair only handles repairs");
      break;
  }
  for (FaultListener* l : listeners_) l->on_fault(ev);
  update_gauges();
}

void Injector::notify_fault() {
  for (des::OneShotEvent* w : fault_waiters_) w->fire(*engine_);
  fault_waiters_.clear();
}

void Injector::update_gauges() {
  if (!metrics_) return;
  metrics_->gauge("fault.nodes_down").set(nodes_down_);
  metrics_->gauge("fault.links_down").set(links_down_);
  metrics_->gauge("fault.node_crashes").set(static_cast<double>(crashes_));
  metrics_->gauge("fault.link_outages")
      .set(static_cast<double>(link_outages_));
}

void Injector::work_timer_cb(void* ctx) {
  auto* w = static_cast<TimedWait*>(ctx);
  w->event.fire(*w->injector->engine_);
}

des::Task<bool> Injector::work_for(double seconds) {
  const std::uint64_t before = faults_applied_;
  TimedWait w{this, {}};
  const des::EventId timer = engine_->schedule_raw_after(
      des::from_seconds(seconds), &work_timer_cb, &w);
  fault_waiters_.push_back(&w.event);
  co_await w.event.wait();
  // Whichever source fired, the other may still hold a reference: drop the
  // subscription and the timer before the frame goes away.
  for (std::size_t i = 0; i < fault_waiters_.size(); ++i) {
    if (fault_waiters_[i] == &w.event) {
      fault_waiters_[i] = fault_waiters_.back();
      fault_waiters_.pop_back();
      break;
    }
  }
  const bool interrupted = faults_applied_ != before;
  if (interrupted) engine_->cancel(timer);
  co_return !interrupted;
}

des::Task<void> Injector::await_all_nodes_up() {
  while (nodes_down_ > 0) {
    TimedWait w{this, {}};
    up_waiters_.push_back(&w.event);
    co_await w.event.wait();
  }
}

void Injector::attach_tracer(obs::Tracer& tracer) {
  tracer_ = &tracer;
  track_ = tracer.add_track("faults", "injected");
  have_track_ = true;
}

void Injector::attach_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
  update_gauges();
}

}  // namespace polaris::fault
