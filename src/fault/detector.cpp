#include "polaris/fault/detector.hpp"

#include <algorithm>
#include <cmath>

#include "polaris/support/check.hpp"

namespace polaris::fault {

PhiAccrualDetector::PhiAccrualDetector(std::size_t window, double min_stddev,
                                       double bootstrap_interval)
    : window_(window),
      min_stddev_(min_stddev),
      bootstrap_interval_(bootstrap_interval) {
  POLARIS_CHECK(window >= 2 && min_stddev > 0 && bootstrap_interval >= 0);
}

void PhiAccrualDetector::heartbeat(double now) {
  if (last_ >= 0.0) {
    intervals_.push_back(now - last_);
    if (intervals_.size() > window_) intervals_.pop_front();
  } else if (bootstrap_interval_ > 0.0) {
    // First heartbeat: seed the window with the expected period so the very
    // next silence is judged against *something* — otherwise one heartbeat
    // followed by a crash keeps phi at 0 forever.
    intervals_.push_back(bootstrap_interval_);
  }
  last_ = now;
}

double PhiAccrualDetector::phi(double now) const {
  if (intervals_.empty()) {
    if (last_ < 0.0) return 0.0;  // never heard from at all
    // Exactly one heartbeat, no bootstrap: no distribution to judge the
    // silence against, so fall back to a coarse grace deadline.
    return now - last_ > kSingleSampleGrace * min_stddev_ ? kMaxPhi : 0.0;
  }
  double mean = 0.0;
  for (double x : intervals_) mean += x;
  mean /= static_cast<double>(intervals_.size());
  double var = 0.0;
  for (double x : intervals_) var += (x - mean) * (x - mean);
  var /= static_cast<double>(intervals_.size());
  const double sd = std::max(std::sqrt(var), min_stddev_);

  const double t = now - last_;
  // P(interval > t) under Normal(mean, sd), via the complementary CDF.
  const double z = (t - mean) / sd;
  const double p_later = 0.5 * std::erfc(z / std::sqrt(2.0));
  if (p_later <= 0.0) return kMaxPhi;  // saturate instead of infinity
  return std::min(-std::log10(p_later), kMaxPhi);
}

DetectorQuality evaluate_timeout_detector(double period, double jitter_sigma,
                                          double timeout,
                                          std::size_t heartbeats,
                                          std::uint64_t seed) {
  POLARIS_CHECK(period > 0 && timeout > 0 && heartbeats > 1);
  support::Random rng(seed);
  // Heartbeats sent every `period`; delivery delayed by lognormal jitter
  // with median ~period/20 and the given sigma.
  const double mu = std::log(period / 20.0);

  DetectorQuality q;
  std::size_t false_positives = 0;
  double prev_arrival = 0.0;
  for (std::size_t i = 1; i < heartbeats; ++i) {
    const double sent = static_cast<double>(i) * period;
    const double arrival = sent + rng.lognormal(mu, jitter_sigma);
    // False positive if the gap since the previous arrival exceeded the
    // timeout (the node was healthy the whole time).
    if (arrival - prev_arrival > timeout) ++false_positives;
    prev_arrival = std::max(prev_arrival, arrival);
  }
  q.false_positive_rate =
      static_cast<double>(false_positives) /
      static_cast<double>(heartbeats - 1);
  // Crash just after the last heartbeat was sent: detected `timeout` after
  // the last arrival.
  q.detection_latency = timeout + (prev_arrival -
                                   static_cast<double>(heartbeats - 1) *
                                       period);
  return q;
}

DetectorQuality evaluate_phi_detector(double period, double jitter_sigma,
                                      double threshold,
                                      std::size_t heartbeats,
                                      std::uint64_t seed) {
  // The first 10 arrivals only warm the window (phi is not consulted), so a
  // meaningful rate needs at least one observed arrival past the warmup.
  POLARIS_CHECK(period > 0 && threshold > 0 && heartbeats > 11);
  support::Random rng(seed);
  const double mu = std::log(period / 20.0);

  PhiAccrualDetector det(/*window=*/100, /*min_stddev=*/period / 100.0);
  DetectorQuality q;
  std::size_t false_positives = 0;
  std::size_t observed = 0;
  double last_arrival = 0.0;
  det.heartbeat(0.0);
  for (std::size_t i = 1; i < heartbeats; ++i) {
    const double sent = static_cast<double>(i) * period;
    const double arrival =
        std::max(sent + rng.lognormal(mu, jitter_sigma), last_arrival);
    // Healthy node: did the silence before this arrival cross threshold?
    // The first 10 arrivals train the window and are not judged.
    if (i > 10) {
      ++observed;
      if (det.phi(arrival) > threshold) ++false_positives;
    }
    det.heartbeat(arrival);
    last_arrival = arrival;
  }
  // Rate over the arrivals actually judged — dividing by all heartbeats
  // (warmup included) would bias the reported rate low.
  q.false_positive_rate = static_cast<double>(false_positives) /
                          static_cast<double>(observed);
  // Crash after the last heartbeat: scan forward for the phi crossing.
  double t = last_arrival;
  while (det.phi(t) <= threshold && t < last_arrival + 1000.0 * period) {
    t += period / 50.0;
  }
  q.detection_latency = t - last_arrival;
  return q;
}

}  // namespace polaris::fault
