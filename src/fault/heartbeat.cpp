#include "polaris/fault/heartbeat.hpp"

#include <string>

#include "polaris/support/check.hpp"

namespace polaris::fault {

HeartbeatService::HeartbeatService(des::Engine& engine,
                                   fabric::SimNetwork& network, Config config)
    : engine_(&engine), network_(&network), config_(config) {
  POLARIS_CHECK(config_.period > 0 && config_.timeout > 0 &&
                config_.monitor < network.topology().node_count());
  const std::size_t n = network.topology().node_count();
  peers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    peers_.push_back(Peer{
        this, static_cast<std::uint32_t>(i),
        TimeoutDetector(config_.timeout, /*registered_at=*/config_.start),
        PhiAccrualDetector(/*window=*/100, /*min_stddev=*/config_.period / 100.0,
                           /*bootstrap_interval=*/config_.period)});
  }
}

void HeartbeatService::start() {
  engine_->schedule_raw_at(des::from_seconds(config_.start), &tick_cb, this);
}

void HeartbeatService::tick_cb(void* ctx) {
  static_cast<HeartbeatService*>(ctx)->tick();
}

void HeartbeatService::heartbeat_done_cb(void* ctx,
                                         fabric::XferStatus status) {
  Peer& p = *static_cast<Peer*>(ctx);
  HeartbeatService& svc = *p.service;
  p.inflight = false;
  if (status != fabric::XferStatus::kOk) {
    // Killed mid-wire or refused at a dead NIC: the detectors hear nothing,
    // which is exactly the signal they exist to notice.
    ++svc.lost_;
    return;
  }
  ++svc.delivered_;
  const double now = des::to_seconds(svc.engine_->now());
  p.timeout.heartbeat(now);
  p.phi.heartbeat(now);
  p.suspected = false;  // the node is talking again
}

void HeartbeatService::tick() {
  const double now = des::to_seconds(engine_->now());
  for (Peer& p : peers_) {
    if (p.node == config_.monitor) continue;
    if (!p.inflight && network_->node_up(p.node)) {
      p.inflight = true;
      ++sent_;
      network_->transfer_raw(p.node, config_.monitor,
                             config_.heartbeat_bytes, &heartbeat_done_cb, &p);
    }
    if (!p.suspected && (p.timeout.suspect(now) ||
                         p.phi.suspect(now, config_.phi_threshold))) {
      p.suspected = true;
      p.suspected_time = now;
      ++suspected_count_;
      if (tracer_ && have_track_) {
        tracer_->instant(track_, "suspect node " + std::to_string(p.node),
                         "detector");
      }
      if (metrics_) {
        metrics_->counter("fault.suspicions").add();
      }
    }
  }
  if (metrics_) {
    metrics_->gauge("fault.heartbeats_sent").set(static_cast<double>(sent_));
    metrics_->gauge("fault.heartbeats_lost").set(static_cast<double>(lost_));
  }
  const double next = now + config_.period;
  if (config_.horizon > 0.0 && next > config_.horizon) return;
  engine_->schedule_raw_at(des::from_seconds(next), &tick_cb, this);
}

bool HeartbeatService::suspected(std::uint32_t node) const {
  POLARIS_CHECK(node < peers_.size());
  return peers_[node].suspected;
}

double HeartbeatService::suspected_at(std::uint32_t node) const {
  POLARIS_CHECK(node < peers_.size());
  return peers_[node].suspected_time;
}

const TimeoutDetector& HeartbeatService::timeout_detector(
    std::uint32_t node) const {
  POLARIS_CHECK(node < peers_.size());
  return peers_[node].timeout;
}

const PhiAccrualDetector& HeartbeatService::phi_detector(
    std::uint32_t node) const {
  POLARIS_CHECK(node < peers_.size());
  return peers_[node].phi;
}

void HeartbeatService::attach_tracer(obs::Tracer& tracer) {
  tracer_ = &tracer;
  track_ = tracer.add_track("faults", "detector");
  have_track_ = true;
}

void HeartbeatService::attach_metrics(obs::MetricsRegistry& metrics) {
  metrics_ = &metrics;
}

}  // namespace polaris::fault
