#include "polaris/fault/checkpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "polaris/support/check.hpp"

namespace polaris::fault {

double young_interval(const CheckpointConfig& c) {
  POLARIS_CHECK(c.checkpoint_cost > 0 && c.system_mtbf > 0);
  return std::sqrt(2.0 * c.checkpoint_cost * c.system_mtbf);
}

double daly_interval(const CheckpointConfig& c) {
  POLARIS_CHECK(c.checkpoint_cost > 0 && c.system_mtbf > 0);
  const double d = c.checkpoint_cost, m = c.system_mtbf;
  if (d >= 2.0 * m) return m;
  const double x = std::sqrt(d / (2.0 * m));
  // Daly (2006): tau_opt = sqrt(2 d M) [1 + x/3 + x^2/9] - d.
  const double tau =
      std::sqrt(2.0 * d * m) * (1.0 + x / 3.0 + x * x / 9.0) - d;
  return std::max(tau, d);
}

double analytic_efficiency(const CheckpointConfig& c, double interval) {
  POLARIS_CHECK(interval > 0);
  const double waste =
      c.checkpoint_cost / interval +
      (interval + c.checkpoint_cost) / (2.0 * c.system_mtbf) +
      c.restart_cost / c.system_mtbf;
  return std::max(0.0, 1.0 - waste);
}

double optimal_efficiency(const CheckpointConfig& c) {
  return analytic_efficiency(c, daly_interval(c));
}

double simulate_efficiency(const CheckpointConfig& c, double interval,
                           double work, std::uint64_t seed) {
  POLARIS_CHECK(interval > 0 && work > 0);
  support::Random rng(seed);
  const auto model = FailureModel::exponential(c.system_mtbf);

  double wall = 0.0;       // elapsed wall clock
  double done = 0.0;       // committed (checkpointed) useful work
  double next_fail = model.sample_ttf(rng);

  while (done < work) {
    // Attempt one segment: interval of work (or the remainder) + checkpoint.
    const double segment_work = std::min(interval, work - done);
    const double segment_len =
        segment_work + (done + segment_work < work ? c.checkpoint_cost : 0.0);
    if (wall + segment_len <= next_fail) {
      wall += segment_len;
      done += segment_work;
    } else {
      // Failure mid-segment: lose uncommitted progress, pay restart.
      wall = next_fail + c.restart_cost;
      next_fail = wall + model.sample_ttf(rng);
    }
  }
  return work / wall;
}

ScaleOutcome wall_time_at_scale(double work, double node_mtbf,
                                std::size_t nodes, double checkpoint_cost,
                                double restart_cost) {
  POLARIS_CHECK(work > 0 && node_mtbf > 0 && nodes > 0);
  ScaleOutcome out;
  out.system_mtbf_s = system_mtbf_exponential(node_mtbf, nodes);

  CheckpointConfig c;
  c.checkpoint_cost = checkpoint_cost;
  c.restart_cost = restart_cost;
  c.system_mtbf = out.system_mtbf_s;

  // Restart-from-zero expectation for a failure-prone job of length W on a
  // machine of MTBF M:  E[T] = (e^{W/M} - 1)(M + R).
  const double ratio = work / out.system_mtbf_s;
  if (ratio > 700.0) {  // exp overflow: effectively never finishes
    out.no_checkpoint_wall = std::numeric_limits<double>::infinity();
  } else {
    out.no_checkpoint_wall =
        (std::exp(ratio) - 1.0) * (out.system_mtbf_s + restart_cost);
  }

  out.daly_interval_s = daly_interval(c);
  const double eff = analytic_efficiency(c, out.daly_interval_s);
  out.daly_wall = eff > 1e-9 ? work / eff
                             : std::numeric_limits<double>::infinity();
  return out;
}

}  // namespace polaris::fault
