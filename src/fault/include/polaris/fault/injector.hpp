// Live fault injection for the simulated cluster.
//
// The Injector turns the analytic failure models (FailureTimeline) into DES
// events against a fabric::SimNetwork: at each scheduled instant it flips a
// node or link down (killing every in-flight message crossing it — both
// fast-path tiers) and, optionally, back up after a repair delay.  It also
// gives simulated applications two coordination points:
//
//   - work_for(seconds): compute for a duration, but return early (false)
//     if ANY fault fires meanwhile — the hook a checkpointing app uses to
//     lose only the in-progress segment rather than discovering the crash
//     a full segment later.
//   - await_all_nodes_up(): park until every crashed node has been
//     repaired (the "wait for the replacement node" phase of recovery).
//
// Fault events are mirrored into obs: instants + down-time spans on a
// "faults" track, and gauges/counters for nodes down and events injected.
// A constructed-but-idle Injector schedules nothing and perturbs nothing:
// runs with injection disabled stay event-for-event identical.
#pragma once

#include <cstdint>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/des/sync.hpp"
#include "polaris/des/task.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fault/failure.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/trace.hpp"

namespace polaris::fault {

struct FaultEvent {
  enum class Kind : std::uint8_t { kNodeCrash, kNodeRepair, kLinkDown, kLinkUp };
  Kind kind{};
  double time = 0.0;
  std::uint32_t id = 0;  ///< node or link
};

/// Observer of applied faults (and repairs).  The resource manager
/// registers one to requeue jobs off crashed nodes; listeners run inside
/// the fault event, after the network state has been flipped, so a
/// listener sees the machine exactly as the survivors do.
class FaultListener {
 public:
  virtual ~FaultListener() = default;
  virtual void on_fault(const FaultEvent& ev) = 0;
};

class Injector {
 public:
  Injector(des::Engine& engine, fabric::SimNetwork& network);

  /// Schedules a node crash at sim time `at` (seconds).  `repair_after` > 0
  /// brings the node back up that many seconds later; <= 0 is permanent.
  void schedule_node_crash(double at, std::uint32_t node,
                           double repair_after = 0.0);

  /// Schedules a link outage at `at`, restored `repair_after` seconds later
  /// (<= 0 is permanent).
  void schedule_link_outage(double at, fabric::LinkId link,
                            double repair_after = 0.0);

  /// Drains `timeline` over the half-open window [cursor, horizon) and
  /// schedules each event as a node crash (node ids taken modulo the
  /// topology size — distinct timeline ids may collide on one node; see
  /// the overlap rules below).  Returns the number of crashes scheduled.
  std::size_t load_node_timeline(FailureTimeline& timeline, double horizon,
                                 double repair_after);

  /// Same, but each event takes down a link (event node id modulo the
  /// topology's link count) — a link-failure schedule driven by the same
  /// statistical machinery.
  std::size_t load_link_timeline(FailureTimeline& timeline, double horizon,
                                 double repair_after);

  bool node_up(std::uint32_t node) const { return network_->node_up(node); }
  bool all_nodes_up() const { return nodes_down_ == 0; }
  std::uint64_t crashes() const { return crashes_; }
  std::uint64_t link_outages() const { return link_outages_; }
  std::uint32_t nodes_down() const { return nodes_down_; }
  std::uint32_t links_down() const { return links_down_; }
  /// Faults that landed on an already-down node/link.  An overlapping
  /// fault never double-counts (crashes_/nodes_down_ move only on real
  /// state flips) and never resurrects early: its repair window is merged
  /// into the pending one — the repair deadline extends to the later of
  /// the two, and an overlapping permanent fault (repair_after <= 0) pins
  /// the target down by cancelling the pending repair.
  std::uint64_t overlapped_faults() const { return overlapped_faults_; }
  /// Overlaps that pushed a pending repair later (or pinned it permanent).
  std::uint64_t repair_extensions() const { return repair_extensions_; }
  /// Sim time of the node's most recent crash (-1 if it never crashed).
  double downed_at(std::uint32_t node) const;
  const std::vector<FaultEvent>& history() const { return history_; }

  /// Computes for `seconds`, returning true iff no fault (node crash or
  /// link outage) fired anywhere in the machine meanwhile.
  des::Task<bool> work_for(double seconds);

  /// Completes once every crashed node has been repaired (immediately if
  /// none are down).
  des::Task<void> await_all_nodes_up();

  void attach_tracer(obs::Tracer& tracer);
  void attach_metrics(obs::MetricsRegistry& metrics);

  /// Registers a listener notified of every applied fault and repair (in
  /// registration order).  The listener must outlive the injector.
  void add_listener(FaultListener* listener) {
    listeners_.push_back(listener);
  }

 private:
  struct TimedWait {
    Injector* injector;
    des::OneShotEvent event;
  };
  /// Pending-repair bookkeeping for one node or link.  While the target is
  /// down, `at` holds the scheduled repair time (< 0 = permanent — no
  /// repair pending).  `gen` stamps the currently-valid repair event:
  /// extending or cancelling a repair bumps it, so a superseded repair
  /// event recognises itself as stale and does nothing — the target can
  /// never resurrect before the latest fault's window elapses.
  struct RepairPlan {
    double at = -1.0;
    std::uint32_t gen = 0;
  };

  static void work_timer_cb(void* ctx);

  void apply(FaultEvent ev, double repair_after);
  void apply_repair(FaultEvent ev, std::uint32_t gen);
  /// Merges an overlapping fault's repair window into `plan`; schedules
  /// the extended repair when the deadline moved.  Returns true when the
  /// plan changed.
  bool extend_repair(RepairPlan& plan, FaultEvent::Kind repair_kind,
                     std::uint32_t id, double at, double repair_after);
  void schedule_repair(const RepairPlan& plan, FaultEvent::Kind repair_kind,
                       std::uint32_t id);
  void notify_fault();
  void update_gauges();

  des::Engine* engine_;
  fabric::SimNetwork* network_;

  std::uint64_t crashes_ = 0;
  std::uint64_t link_outages_ = 0;
  std::uint64_t faults_applied_ = 0;  ///< crashes + outages (repairs excluded)
  std::uint64_t overlapped_faults_ = 0;
  std::uint64_t repair_extensions_ = 0;
  std::uint32_t nodes_down_ = 0;
  std::uint32_t links_down_ = 0;
  std::vector<double> crash_time_;     ///< per node, -1 if never crashed
  std::vector<des::SimTime> down_since_;  ///< per node, for down-span traces
  std::vector<RepairPlan> node_repair_;   ///< per node, valid while down
  std::vector<RepairPlan> link_repair_;   ///< per link, valid while down
  std::vector<FaultEvent> history_;

  std::vector<des::OneShotEvent*> fault_waiters_;  ///< work_for parks here
  std::vector<des::OneShotEvent*> up_waiters_;
  std::vector<FaultListener*> listeners_;

  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  bool have_track_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace polaris::fault
