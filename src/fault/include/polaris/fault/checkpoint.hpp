// Checkpoint/restart modelling.
//
// The standard coordinated-checkpointing analysis: a job checkpoints every
// tau seconds at cost delta; on failure it loses on average half a segment,
// pays restart cost R, and resumes from the last checkpoint.  Provides
// Young's and Daly's optimal-interval formulas, the first-order analytic
// efficiency, and a Monte-Carlo simulator that plays a long job against a
// sampled failure timeline to validate the analytic curves (and to explore
// regimes where the first-order model breaks down, i.e. MTBF ~ tau).
#pragma once

#include <cstdint>

#include "polaris/fault/failure.hpp"

namespace polaris::fault {

struct CheckpointConfig {
  double checkpoint_cost = 300.0;  ///< delta: seconds to write a checkpoint
  double restart_cost = 120.0;     ///< R: reboot + reload time
  double system_mtbf = 3600.0;     ///< M: mean time between system failures
};

/// Young's first-order optimum: tau = sqrt(2 delta M).
double young_interval(const CheckpointConfig& c);

/// Daly's higher-order optimum (valid for delta < 2M; falls back to M
/// otherwise, per the paper).
double daly_interval(const CheckpointConfig& c);

/// First-order machine efficiency at interval tau: fraction of wall time
/// spent on useful work,
///   e(tau) ~ (tau / (tau + delta)) * exp(-(tau/2 + delta + R)/M)-ish;
/// we use the standard waste decomposition
///   waste = delta/tau (checkpoint overhead)
///         + (tau + delta)/(2 M) (lost work per failure)
///         + R/M (restart)
/// and return max(0, 1 - waste).
double analytic_efficiency(const CheckpointConfig& c, double interval);

/// Efficiency of the analytically optimal (Daly) interval.
double optimal_efficiency(const CheckpointConfig& c);

/// Monte-Carlo: runs a job of `work` useful seconds under failures drawn
/// from `system` (a single-unit failure model at system MTBF), returns
/// work / wall_time.  Deterministic in `seed`.
double simulate_efficiency(const CheckpointConfig& c, double interval,
                           double work, std::uint64_t seed);

/// Wall-clock stretch (1/efficiency) a fixed 24h job suffers as the
/// machine scales to `nodes` nodes of `node_mtbf`, with and without
/// checkpointing.  Returns {no_checkpoint_expected_wall, daly_wall} for a
/// job of `work` seconds; no-checkpoint expected completion uses the
/// classic restart-from-zero expectation
///   E[T] = (e^{work/M} - 1) * (M + R).
struct ScaleOutcome {
  double no_checkpoint_wall = 0.0;
  double daly_wall = 0.0;
  double daly_interval_s = 0.0;
  double system_mtbf_s = 0.0;
};
ScaleOutcome wall_time_at_scale(double work, double node_mtbf,
                                std::size_t nodes, double checkpoint_cost,
                                double restart_cost);

}  // namespace polaris::fault
