// Sim-time heartbeat service feeding the failure detectors.
//
// One monitor rank watches every other node: each period, every live node
// sends a small heartbeat message through the real fabric (transfer_raw —
// no coroutine frames, and heartbeats from a node that dies mid-wire are
// killed by the injector exactly like application traffic, producing the
// natural silence the detectors are built to notice).  Arrivals feed one
// TimeoutDetector and one PhiAccrualDetector per node; each tick also scans
// for fresh suspicions, which are stamped with the sim time — so
// suspected_at(n) minus Injector::downed_at(n) is the measured detection
// latency BENCH_FAULT.json reports.
//
// Detectors are constructed with the service start time as the registration
// instant (a node watched from T > timeout must not be instantly suspected)
// and the phi window is bootstrapped with the configured period (a node
// that crashes after a single heartbeat must still accrue suspicion).
#pragma once

#include <cstdint>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/fabric/network.hpp"
#include "polaris/fault/detector.hpp"
#include "polaris/obs/metrics.hpp"
#include "polaris/obs/trace.hpp"

namespace polaris::fault {

class HeartbeatService {
 public:
  struct Config {
    double period = 0.1;        ///< seconds between heartbeats
    double start = 0.0;         ///< sim time of the first tick
    double horizon = 0.0;       ///< stop ticking past this sim time (0 = never)
    std::uint32_t monitor = 0;  ///< rank that collects heartbeats
    double timeout = 0.5;       ///< TimeoutDetector threshold, seconds
    double phi_threshold = 8.0;
    std::uint64_t heartbeat_bytes = 8;
  };

  HeartbeatService(des::Engine& engine, fabric::SimNetwork& network,
                   Config config);

  /// Schedules the first tick (at config.start).
  void start();

  bool suspected(std::uint32_t node) const;
  /// Sim time the node was most recently suspected (-1 if never).
  double suspected_at(std::uint32_t node) const;
  /// Cumulative suspicion events raised (a node cleared by a fresh
  /// heartbeat and re-suspected counts twice).
  std::size_t suspicions() const { return suspected_count_; }

  const TimeoutDetector& timeout_detector(std::uint32_t node) const;
  const PhiAccrualDetector& phi_detector(std::uint32_t node) const;

  std::uint64_t heartbeats_sent() const { return sent_; }
  std::uint64_t heartbeats_delivered() const { return delivered_; }
  std::uint64_t heartbeats_lost() const { return lost_; }

  void attach_tracer(obs::Tracer& tracer);
  void attach_metrics(obs::MetricsRegistry& metrics);

 private:
  struct Peer {
    HeartbeatService* service;
    std::uint32_t node;
    TimeoutDetector timeout;
    PhiAccrualDetector phi;
    bool inflight = false;
    bool suspected = false;
    double suspected_time = -1.0;
  };

  static void tick_cb(void* ctx);
  static void heartbeat_done_cb(void* ctx, fabric::XferStatus status);
  void tick();

  des::Engine* engine_;
  fabric::SimNetwork* network_;
  Config config_;
  std::vector<Peer> peers_;  ///< one per node; the monitor's entry is idle

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::size_t suspected_count_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::TrackId track_ = 0;
  bool have_track_ = false;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace polaris::fault
