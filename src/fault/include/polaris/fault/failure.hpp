// Failure-time models for commodity clusters.
//
// The talk's scaling argument: a node that fails once a decade is fine —
// ten thousand of them fail daily, so "the software tools to manage them
// will take on new responsibilities".  These models quantify exactly that:
// per-node time-to-failure distributions (memoryless exponential, and
// Weibull with infant-mortality or wear-out shapes) composed into
// system-level failure processes.
#pragma once

#include <cstddef>
#include <vector>

#include "polaris/support/rng.hpp"

namespace polaris::fault {

enum class FailureLaw {
  kExponential,  ///< constant hazard (steady-state hardware)
  kWeibull,      ///< shape < 1: infant mortality; > 1: wear-out
};

/// Per-node time-to-failure distribution.
class FailureModel {
 public:
  /// Exponential with the given mean time between failures (seconds).
  static FailureModel exponential(double mtbf);

  /// Weibull with shape k; `scale` chosen so the mean equals `mtbf`.
  static FailureModel weibull(double mtbf, double shape);

  FailureLaw law() const { return law_; }
  double mtbf() const { return mtbf_; }

  /// Samples one time-to-failure.
  double sample_ttf(support::Random& rng) const;

 private:
  FailureModel(FailureLaw law, double mtbf, double shape, double scale)
      : law_(law), mtbf_(mtbf), shape_(shape), scale_(scale) {}

  FailureLaw law_;
  double mtbf_;
  double shape_ = 1.0;
  double scale_ = 0.0;
};

/// System MTBF of `nodes` independent exponential nodes: node_mtbf / n.
double system_mtbf_exponential(double node_mtbf, std::size_t nodes);

/// Monte-Carlo system MTBF under any per-node law: mean time to FIRST
/// failure among `nodes` fresh nodes, over `trials` samples.
double system_mtbf_sampled(const FailureModel& node, std::size_t nodes,
                           std::size_t trials, support::Random& rng);

/// The failure timeline of a whole machine: a merged, time-ordered stream
/// of (time, node) failure events, assuming failed nodes are repaired
/// (replaced fresh) immediately.
class FailureTimeline {
 public:
  FailureTimeline(const FailureModel& node, std::size_t nodes,
                  std::uint64_t seed);

  struct Event {
    double time;
    std::size_t node;
  };

  /// Next failure event at or after the internal cursor; advances it.
  Event next();

  /// Time of the next failure event without consuming it.
  double peek_time() const { return heap_.front().time; }

  /// Drains the HALF-OPEN window [cursor, horizon): returns every failure
  /// with time strictly below `horizon`, consuming them.  An event at
  /// exactly t == horizon is NOT included — it stays pending, so the very
  /// next next() (or an until() with a larger horizon) returns it.  This
  /// makes consecutive until(h1), until(h2) calls partition the stream
  /// with no duplicated and no lost events at the boundaries.
  std::vector<Event> until(double horizon);

 private:
  struct Pending {
    double time;
    std::size_t node;
    bool operator>(const Pending& o) const { return time > o.time; }
  };

  FailureModel model_;
  support::Random rng_;
  std::vector<Pending> heap_;  // min-heap by time
};

}  // namespace polaris::fault
