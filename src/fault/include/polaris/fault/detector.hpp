// Failure detectors.
//
// The resource-management layer needs to notice dead nodes before it can
// recover them.  Two classic detectors over periodic heartbeats:
//   - fixed-timeout: suspect after `timeout` seconds of silence.  Simple,
//     but the timeout trades detection latency against false alarms from
//     late heartbeats.
//   - phi-accrual (Hayashibara et al.): maintains a window of inter-arrival
//     times and outputs a suspicion level
//         phi(t) = -log10( P(next heartbeat later than t) )
//     under a normal fit of the window; threshold on phi instead of on a
//     fixed timeout, adapting to observed jitter.
#pragma once

#include <cstddef>
#include <deque>

#include "polaris/support/rng.hpp"

namespace polaris::fault {

/// Fixed-timeout heartbeat detector for one monitored node.
///
/// `registered_at` is the sim time the node came under observation; the
/// silence clock starts there, so a node first registered at T > timeout
/// gets a full timeout of grace before its first heartbeat instead of being
/// instantly suspected against an implicit t=0 heartbeat.
class TimeoutDetector {
 public:
  explicit TimeoutDetector(double timeout, double registered_at = 0.0)
      : timeout_(timeout), last_(registered_at) {}

  void heartbeat(double now) {
    last_ = now;
    has_heartbeat_ = true;
  }
  bool suspect(double now) const { return now - last_ > timeout_; }
  double timeout() const { return timeout_; }
  /// Latest heartbeat arrival, or the registration time if none arrived yet
  /// (check has_heartbeat() to tell the two apart).
  double last_heartbeat() const { return last_; }
  bool has_heartbeat() const { return has_heartbeat_; }

 private:
  double timeout_;
  double last_;
  bool has_heartbeat_ = false;
};

/// Phi-accrual detector for one monitored node.
class PhiAccrualDetector {
 public:
  /// Silence multiple of `min_stddev` after which a node with exactly one
  /// heartbeat (and no bootstrap interval) saturates to full suspicion —
  /// without it such a node could never be suspected, because the empty
  /// interval window kept phi at 0 forever.
  static constexpr double kSingleSampleGrace = 1e4;
  static constexpr double kMaxPhi = 40.0;

  /// `window`: inter-arrival samples kept; `min_stddev` floors the jitter
  /// estimate to avoid phi exploding on perfectly regular streams;
  /// `bootstrap_interval` (> 0 to enable, typically the configured
  /// heartbeat period) seeds the window with one synthetic sample at the
  /// first heartbeat so phi is meaningful from the start.
  explicit PhiAccrualDetector(std::size_t window = 100,
                              double min_stddev = 1e-3,
                              double bootstrap_interval = 0.0);

  void heartbeat(double now);

  /// Suspicion level at `now`: 0 before any heartbeat; after exactly one
  /// heartbeat with no bootstrap interval, escalates to kMaxPhi once the
  /// silence exceeds kSingleSampleGrace * min_stddev.
  double phi(double now) const;

  bool suspect(double now, double threshold = 8.0) const {
    return phi(now) > threshold;
  }

  std::size_t samples() const { return intervals_.size(); }

 private:
  std::size_t window_;
  double min_stddev_;
  double bootstrap_interval_;
  double last_ = -1.0;
  std::deque<double> intervals_;
};

/// Monte-Carlo characterization of a detector policy against heartbeats
/// with lognormal network jitter: returns the false-positive rate (fraction
/// of healthy observation windows wrongly suspected) and the detection
/// latency after a real crash.
struct DetectorQuality {
  double false_positive_rate = 0.0;
  double detection_latency = 0.0;  ///< seconds after crash until suspected
};

DetectorQuality evaluate_timeout_detector(double period, double jitter_sigma,
                                          double timeout,
                                          std::size_t heartbeats,
                                          std::uint64_t seed);

/// Same characterization for a phi-accrual detector at `threshold`:
/// heartbeats with lognormal jitter feed the detector; a false positive is
/// an inter-arrival gap whose phi crosses the threshold while the node is
/// healthy; detection latency is the silence needed after a crash for phi
/// to cross it (given the trained window).
DetectorQuality evaluate_phi_detector(double period, double jitter_sigma,
                                      double threshold,
                                      std::size_t heartbeats,
                                      std::uint64_t seed);

}  // namespace polaris::fault
