#include "polaris/scenario/scenario.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "polaris/support/check.hpp"

namespace polaris::scenario {
namespace {

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_check(const CheckOutcome& c, bool monitor, std::string& out) {
  out += "{\"name\":";
  out += Json::string(c.name).dump();
  out += ",\"passed\":";
  out += c.passed ? "true" : "false";
  if (monitor) {
    out += ",\"checks\":" + std::to_string(c.checks);
    out += ",\"violations\":" + std::to_string(c.violations);
    out += ",\"first_violation_s\":" + fmt_double(c.first_violation_s);
  } else {
    out += ",\"time_s\":" + fmt_double(c.time_s);
  }
  out += "}";
}

}  // namespace

std::string Verdict::to_json() const {
  std::string out = "{";
  out += "\"scenario\":" + Json::string(scenario).dump();
  out += ",\"passed\":";
  out += passed ? "true" : "false";
  out += ",\"root\":\"";
  out += to_string(root);
  out += "\",\"monitors_clean\":";
  out += monitors_clean ? "true" : "false";
  out += ",\"ticks\":" + std::to_string(ticks);
  out += ",\"end_time_s\":" + fmt_double(end_time_s);
  out += ",\"trace_hash\":\"";
  char hex[24];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(trace_hash));
  out += hex;
  out += "\",\"trace_events\":" + std::to_string(trace_events);
  out += ",\"asserts\":[";
  for (std::size_t i = 0; i < asserts.size(); ++i) {
    if (i) out += ",";
    append_check(asserts[i], /*monitor=*/false, out);
  }
  out += "],\"monitors\":[";
  for (std::size_t i = 0; i < monitors.size(); ++i) {
    if (i) out += ",";
    append_check(monitors[i], /*monitor=*/true, out);
  }
  out += "],\"counters\":{";
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (i) out += ",";
    out += Json::string(counters[i].first).dump();
    out += ":" + fmt_double(counters[i].second);
  }
  out += "}}";
  return out;
}

// -------------------------------------------------------------------- Expr

Expr Expr::compile(std::string_view text) {
  Expr e;
  e.text_ = std::string(text);
  // Tokenize on spaces: "probe", or "probe OP number".
  std::vector<std::string> tok;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t j = i;
    while (j < text.size() && text[j] != ' ') ++j;
    if (j > i) tok.emplace_back(text.substr(i, j - i));
    i = j;
  }
  POLARIS_CHECK_MSG(tok.size() == 1 || tok.size() == 3,
                    "expression must be `probe` or `probe OP value`: " +
                        e.text_);
  e.probe_ = tok[0];
  if (tok.size() == 3) {
    const std::string& op = tok[1];
    if (op == "<") e.op_ = Op::kLt;
    else if (op == "<=") e.op_ = Op::kLe;
    else if (op == ">") e.op_ = Op::kGt;
    else if (op == ">=") e.op_ = Op::kGe;
    else if (op == "==") e.op_ = Op::kEq;
    else if (op == "!=") e.op_ = Op::kNe;
    else POLARIS_CHECK_MSG(false, "unknown operator in: " + e.text_);
    char* end = nullptr;
    e.rhs_ = std::strtod(tok[2].c_str(), &end);
    POLARIS_CHECK_MSG(end != nullptr && *end == '\0',
                      "bad numeric literal in: " + e.text_);
  }
  return e;
}

double Expr::value(Harness& h) const { return h.probe(probe_); }

bool Expr::eval(Harness& h) const {
  const double v = value(h);
  switch (op_) {
    case Op::kTruthy:
      return v != 0.0;
    case Op::kLt:
      return v < rhs_;
    case Op::kLe:
      return v <= rhs_;
    case Op::kGt:
      return v > rhs_;
    case Op::kGe:
      return v >= rhs_;
    case Op::kEq:
      return v == rhs_;
    case Op::kNe:
      return v != rhs_;
  }
  return false;
}

// ------------------------------------------------------------------ Runner

Runner::Runner(Json spec) : spec_(std::move(spec)) {
  POLARIS_CHECK_MSG(spec_.is_object(), "scenario spec must be an object");
  POLARIS_CHECK_MSG(spec_.has("harness"), "scenario spec needs a harness");
  POLARIS_CHECK_MSG(spec_.has("tree"), "scenario spec needs a tree");

  harness_ = make_harness(spec_);
  track_ = harness_->tracer().add_track("scenario", "tree");

  const double tick_s = spec_.num_or("tick_s", 1e-3);
  POLARIS_CHECK(tick_s > 0.0);
  tick_ticks_ = des::from_seconds(tick_s);
  POLARIS_CHECK(tick_ticks_ >= 1);
  max_ticks_ =
      static_cast<std::uint64_t>(spec_.num_or("max_ticks", 200'000.0));
  monitor_until_s_ = spec_.num_or("monitor_until_s", 0.0);

  root_ = build(spec_.at("tree"));

  if (const Json* mons = spec_.find("monitors")) {
    for (const Json& m : mons->items()) {
      Monitor mon;
      mon.name = m.str_or("name", m.str_or("expect", "monitor"));
      const Expr expr = Expr::compile(m.at("expect").str());
      Harness* h = harness_.get();
      mon.ok = [h, expr](TickContext&) { return expr.eval(*h); };
      monitors_.push_back(std::move(mon));
    }
  }
}

Runner Runner::from_text(std::string_view spec_text) {
  return Runner(Json::parse(spec_text));
}

NodePtr Runner::leaf_await(const Json& node) {
  const Expr expr = Expr::compile(node.at("await").str());
  Harness* h = harness_.get();
  return std::make_unique<WaitUntil>(
      "await " + expr.text(),
      [h, expr](TickContext&) { return expr.eval(*h); });
}

NodePtr Runner::build(const Json& node) {
  POLARIS_CHECK_MSG(node.is_object(), "tree node must be an object");

  auto build_children = [this](const Json& arr) {
    std::vector<NodePtr> out;
    for (const Json& c : arr.items()) out.push_back(build(c));
    return out;
  };

  if (const Json* seq = node.find("seq")) {
    return std::make_unique<Sequence>("seq", build_children(*seq));
  }
  if (const Json* any = node.find("any")) {
    return std::make_unique<Fallback>("any", build_children(*any));
  }
  if (const Json* par = node.find("par")) {
    return std::make_unique<Parallel>(
        "par", build_children(*par),
        static_cast<std::size_t>(node.num_or("quota", 0.0)));
  }
  if (const Json* body = node.find("do")) {
    if (node.has("repeat")) {
      return std::make_unique<Repeat>(
          "repeat", build(*body),
          static_cast<std::uint64_t>(node.at("repeat").num()));
    }
    POLARIS_CHECK_MSG(node.has("timeout"), "`do` needs repeat or timeout");
    return std::make_unique<Timeout>("timeout", build(*body),
                                     node.at("timeout").num());
  }
  if (const Json* wait = node.find("wait")) {
    return std::make_unique<Wait>("wait", wait->num());
  }
  if (node.has("await")) {
    NodePtr w = leaf_await(node);
    if (node.has("timeout")) {
      return std::make_unique<Timeout>("timeout " + w->name(), std::move(w),
                                       node.at("timeout").num());
    }
    return w;
  }
  if (const Json* expr_j = node.find("assert")) {
    const Expr expr = Expr::compile(expr_j->str());
    Harness* h = harness_.get();
    obs::Tracer* tracer = &harness_->tracer();
    const obs::TrackId track = track_;
    const std::size_t idx = asserts_.size();
    auto cond = std::make_unique<Condition>(
        "assert " + expr.text(),
        [this, h, expr, tracer, track, idx](TickContext& ctx) {
          const bool ok = expr.eval(*h);
          assert_times_[idx] = ctx.now_s;
          tracer->instant(track,
                          std::string(ok ? "pass: " : "FAIL: ") + expr.text(),
                          "assert");
          return ok;
        });
    asserts_.push_back(cond.get());
    assert_times_.push_back(-1.0);
    return cond;
  }

  // Anything else with exactly one member is a harness action verb.
  POLARIS_CHECK_MSG(node.members().size() == 1,
                    "unrecognized tree node: " + node.dump());
  const auto& [verb, args] = node.members().front();
  Harness* h = harness_.get();
  obs::Tracer* tracer = &harness_->tracer();
  const obs::TrackId track = track_;
  const std::string verb_copy = verb;
  const Json args_copy = args;
  return std::make_unique<Action>(
      verb, [h, verb_copy, args_copy, tracer, track](TickContext& ctx) {
        tracer->instant(track, verb_copy + " " + args_copy.dump(), "action");
        h->act(verb_copy, args_copy, ctx.now_s);
        return Status::kSuccess;
      });
}

void Runner::tick_cb(void* ctx) { static_cast<Runner*>(ctx)->tick(); }

void Runner::tick() {
  des::Engine& engine = harness_->engine();
  TickContext ctx{des::to_seconds(engine.now()), ticks_done_};
  for (Monitor& m : monitors_) {
    const std::uint64_t before = m.violations;
    m.check(ctx);
    if (m.violations == 1 && before == 0) {
      harness_->tracer().instant(track_, "VIOLATION: " + m.name, "monitor");
    }
  }
  if (root_->status() == Status::kRunning) {
    const Status s = root_->tick(ctx);
    if (s != Status::kRunning) {
      harness_->tracer().instant(
          track_, std::string("tree ") + to_string(s), "tree");
    }
  }
  ++ticks_done_;
  const bool tree_live = root_->status() == Status::kRunning;
  const bool monitors_live = ctx.now_s < monitor_until_s_;
  if ((tree_live || monitors_live) && ticks_done_ < max_ticks_) {
    engine.schedule_raw_at(engine.now() + tick_ticks_, &Runner::tick_cb,
                           this);
  }
}

Verdict Runner::run() {
  POLARIS_CHECK_MSG(!ran_, "Runner::run is one-shot");
  ran_ = true;

  des::Engine& engine = harness_->engine();
  engine.schedule_raw_at(engine.now() + tick_ticks_, &Runner::tick_cb, this);
  harness_->start();
  harness_->finish();

  Verdict v;
  v.scenario = spec_.str_or("name", "unnamed");
  v.root = root_->status();
  v.ticks = ticks_done_;
  v.end_time_s = des::to_seconds(engine.now());
  for (std::size_t i = 0; i < asserts_.size(); ++i) {
    const Condition* a = asserts_[i];
    CheckOutcome c;
    c.name = a->name();
    c.passed = a->status() == Status::kSuccess;
    // Not-yet-evaluated asserts (tree never reached them) report failed
    // with time -1, which is what you want a wedged scenario to say.
    if (a->status() == Status::kRunning) c.passed = false;
    c.time_s = assert_times_[i];
    v.asserts.push_back(std::move(c));
  }
  for (const Monitor& m : monitors_) {
    CheckOutcome c;
    c.name = m.name;
    c.passed = m.clean();
    c.checks = m.checks;
    c.violations = m.violations;
    c.first_violation_s = m.first_violation_s;
    v.monitors_clean = v.monitors_clean && m.clean();
    v.monitors.push_back(std::move(c));
  }
  v.passed = v.root == Status::kSuccess && v.monitors_clean;
  for (const std::string& name : harness_->counter_probes()) {
    v.counters.emplace_back(name, harness_->probe(name));
  }
  v.trace_hash = obs::trace_hash(harness_->tracer());
  v.trace_events = harness_->tracer().event_count();
  return v;
}

const obs::Tracer& Runner::tracer() const { return harness_->tracer(); }

Verdict run_scenario(std::string_view spec_text) {
  return Runner::from_text(spec_text).run();
}

}  // namespace polaris::scenario
