#include "polaris/scenario/tree.hpp"

#include "polaris/support/check.hpp"

namespace polaris::scenario {

const char* to_string(Status status) {
  switch (status) {
    case Status::kRunning:
      return "running";
    case Status::kSuccess:
      return "success";
    case Status::kFailure:
      return "failure";
  }
  return "unknown";
}

// ---------------------------------------------------------------- Sequence

void Sequence::reset() {
  Node::reset();
  cursor_ = 0;
  for (NodePtr& c : children_) c->reset();
}

Status Sequence::on_tick(TickContext& ctx) {
  while (cursor_ < children_.size()) {
    const Status s = children_[cursor_]->tick(ctx);
    if (s == Status::kRunning) return Status::kRunning;
    if (s == Status::kFailure) return Status::kFailure;
    // A child finishing within this tick lets the next child start in the
    // same tick — instantaneous steps (inject, assert) do not each burn a
    // tick of simulated time.
    ++cursor_;
  }
  return Status::kSuccess;
}

// ---------------------------------------------------------------- Fallback

void Fallback::reset() {
  Node::reset();
  cursor_ = 0;
  for (NodePtr& c : children_) c->reset();
}

Status Fallback::on_tick(TickContext& ctx) {
  while (cursor_ < children_.size()) {
    const Status s = children_[cursor_]->tick(ctx);
    if (s == Status::kRunning) return Status::kRunning;
    if (s == Status::kSuccess) return Status::kSuccess;
    ++cursor_;
  }
  return Status::kFailure;
}

// ---------------------------------------------------------------- Parallel

Parallel::Parallel(std::string name, std::vector<NodePtr> children,
                   std::size_t quota)
    : Node(std::move(name)), children_(std::move(children)), quota_(quota) {
  if (quota_ == 0) quota_ = children_.size();
  POLARIS_CHECK_MSG(quota_ <= children_.size(),
                    "parallel quota exceeds child count");
}

void Parallel::reset() {
  Node::reset();
  for (NodePtr& c : children_) c->reset();
}

Status Parallel::on_tick(TickContext& ctx) {
  std::size_t succeeded = 0;
  std::size_t failed = 0;
  for (NodePtr& c : children_) {
    const Status s = c->tick(ctx);
    if (s == Status::kSuccess) ++succeeded;
    if (s == Status::kFailure) ++failed;
  }
  if (succeeded >= quota_) return Status::kSuccess;
  if (children_.size() - failed < quota_) return Status::kFailure;
  return Status::kRunning;
}

// ------------------------------------------------------------------ Repeat

void Repeat::reset() {
  Node::reset();
  done_ = 0;
  child_->reset();
}

Status Repeat::on_tick(TickContext& ctx) {
  while (true) {
    const Status s = child_->tick(ctx);
    if (s == Status::kRunning) return Status::kRunning;
    if (s == Status::kFailure) return Status::kFailure;
    ++done_;
    if (times_ != 0 && done_ >= times_) return Status::kSuccess;
    child_->reset();
    // A child that completes instantly would spin forever inside one tick;
    // yield and restart it next tick instead.
    return Status::kRunning;
  }
}

// ----------------------------------------------------------------- Timeout

void Timeout::reset() {
  Node::reset();
  started_s_ = -1.0;
  child_->reset();
}

Status Timeout::on_tick(TickContext& ctx) {
  if (started_s_ < 0.0) started_s_ = ctx.now_s;
  const Status s = child_->tick(ctx);
  if (s != Status::kRunning) return s;
  return ctx.now_s - started_s_ >= deadline_s_ ? Status::kFailure
                                               : Status::kRunning;
}

}  // namespace polaris::scenario
