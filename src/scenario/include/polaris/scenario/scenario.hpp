// Scenario orchestration: data-defined chaos campaigns over the simulated
// cluster.
//
// The paper's scaling argument makes failure routine; this module makes
// failure-handling TESTABLE.  A scenario is a JSON spec with four parts:
//
//   {
//     "name":    "rolling-upgrade-drain",
//     "seed":    7,
//     "tick_s":  0.0005,
//     "harness": {"kind": "serve", ...},        // the system under test
//     "monitors": [{"name": "...", "expect": "conservation == 0"}, ...],
//     "tree":    {"seq": [ ...leaves and decorators... ]}
//   }
//
// The harness instantiates one of the repo's simulated systems (serving
// tier, cluster with heartbeats + resource manager, simrt SPMD world, or
// the sharded pdes engine) on its own DES engine.  The runner compiles the
// tree, schedules a tick event chain on that same engine, and runs the
// engine: workload and scenario interleave deterministically, all
// randomness flows from the spec seed, and the whole run is a pure
// function of (spec bytes) — the verdict, the obs trace, and the trace's
// FNV hash replay bit-identically at any POLARIS_SIM_THREADS.
//
// Tree grammar (one distinguishing key per node):
//   {"seq": [...]}                      sequence
//   {"any": [...]}                      fallback
//   {"par": [...], "quota": n}          parallel (quota 0/absent = all)
//   {"do": X, "repeat": n}              repeat n times (0 = forever)
//   {"do": X, "timeout": s}             fail X if still running after s
//   {"wait": s}                         idle for s simulated seconds
//   {"await": "EXPR"}                   run until EXPR holds
//   {"await": "EXPR", "timeout": s}     ... or fail after s
//   {"assert": "EXPR"}                  one-shot check, recorded in verdict
//   {"VERB": {...}}                     harness action (inject, drain, ramp,
//                                       set_admission, submit, sweep, run...)
//
// EXPR is `probe` or `probe OP number` with OP in < <= > >= == != ; probe
// names are harness-defined ("dropped", "queue_depth:2", "rm.completed").
//
// Monitors are the always-on safety layer: every monitor expression is
// re-checked on every tick for the entire run, independent of tree state.
// A violation never halts the simulation; it fails the verdict.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "polaris/des/engine.hpp"
#include "polaris/obs/trace.hpp"
#include "polaris/scenario/json.hpp"
#include "polaris/scenario/tree.hpp"

namespace polaris::scenario {

/// Outcome of one assert leaf or one monitor, for the verdict.
struct CheckOutcome {
  std::string name;
  bool passed = false;
  std::uint64_t checks = 0;      ///< monitor: ticks evaluated
  std::uint64_t violations = 0;  ///< monitor: ticks in violation
  double first_violation_s = -1.0;
  double time_s = -1.0;  ///< assert: sim time it was evaluated
};

/// Machine-readable result of one scenario run.
struct Verdict {
  std::string scenario;
  bool passed = false;  ///< root Success AND every monitor clean
  Status root = Status::kRunning;
  bool monitors_clean = true;
  std::uint64_t ticks = 0;
  double end_time_s = 0.0;

  /// FNV-1a of the run's exported obs trace: the determinism fingerprint
  /// (same spec + seed => same hash at any worker count).
  std::uint64_t trace_hash = 0;
  std::uint64_t trace_events = 0;

  std::vector<CheckOutcome> asserts;
  std::vector<CheckOutcome> monitors;
  /// Final probe samples (harness-selected), e.g. serve.offered.
  std::vector<std::pair<std::string, double>> counters;

  std::string to_json() const;
};

/// A system under test: owns a DES engine, a workload, a tracer, and the
/// probe/action vocabulary the tree binds to.
class Harness {
 public:
  virtual ~Harness() = default;

  virtual des::Engine& engine() = 0;
  virtual obs::Tracer& tracer() = 0;
  virtual const obs::Tracer& tracer() const = 0;

  /// Launches the workload (spawn programs, submit jobs); called once,
  /// before the engine runs.  Tick events are already scheduled.
  virtual void start() = 0;
  /// Runs the engine to completion (harness-specific: some own a run()).
  virtual void finish() = 0;

  /// Reads a named probe; throws support::ContractViolation on unknown
  /// names (a typo in a spec should fail loudly, not compare 0 < 0).
  virtual double probe(const std::string& name) = 0;
  /// Performs a named action at simulated time `now_s`.
  virtual void act(const std::string& verb, const Json& args,
                   double now_s) = 0;
  /// Probe names sampled into Verdict::counters after the run.
  virtual std::vector<std::string> counter_probes() const = 0;
};

/// Builds the harness named by spec.harness.kind ("serve", "cluster",
/// "simrt", "pdes").  `spec` is the WHOLE scenario spec (the harness also
/// reads the top-level seed).
std::unique_ptr<Harness> make_harness(const Json& spec);

/// Compiled probe expression: `probe` (truthy: != 0) or `probe OP number`.
class Expr {
 public:
  static Expr compile(std::string_view text);

  bool eval(Harness& h) const;
  double value(Harness& h) const;  ///< the probe's current sample
  const std::string& probe() const { return probe_; }
  const std::string& text() const { return text_; }

 private:
  enum class Op : std::uint8_t { kTruthy, kLt, kLe, kGt, kGe, kEq, kNe };
  std::string text_;
  std::string probe_;
  Op op_ = Op::kTruthy;
  double rhs_ = 0.0;
};

/// One scenario run: parse -> build -> tick over the DES -> verdict.
/// One-shot, like the sims it drives.
class Runner {
 public:
  explicit Runner(Json spec);
  /// Convenience: parse text, validate the required keys.
  static Runner from_text(std::string_view spec_text);

  Verdict run();

  /// The harness tracer (valid after run(); writes the run's obs trace).
  const obs::Tracer& tracer() const;
  const Json& spec() const { return spec_; }

 private:
  static void tick_cb(void* ctx);
  void tick();
  NodePtr build(const Json& node);
  NodePtr leaf_await(const Json& node);

  Json spec_;
  std::unique_ptr<Harness> harness_;
  NodePtr root_;
  std::vector<Monitor> monitors_;
  /// Assert leaves, in build order, for the verdict (pointers into the
  /// tree; the tree outlives the verdict extraction).
  std::vector<const Condition*> asserts_;
  /// Sim time each assert was evaluated (-1 until it runs), same order.
  std::vector<double> assert_times_;

  obs::TrackId track_ = 0;
  des::SimTime tick_ticks_ = 0;
  std::uint64_t max_ticks_ = 0;
  double monitor_until_s_ = 0.0;
  std::uint64_t ticks_done_ = 0;
  bool ran_ = false;
};

/// Parse + run in one call.
Verdict run_scenario(std::string_view spec_text);

}  // namespace polaris::scenario
