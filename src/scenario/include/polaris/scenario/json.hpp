// Minimal JSON for scenario specs.
//
// Scenarios are data: a chaos campaign is a JSON document checked into the
// repo (or handed to the CLI), not a C++ program, so the same spec replays
// bit-identically everywhere and diffs review like configuration.  The repo
// takes no external dependencies, so this is a small self-contained value
// type + recursive-descent parser covering the JSON we emit and consume:
// objects, arrays, strings (with the standard escapes), doubles, bools,
// null.  Object member order is PRESERVED (vector of pairs, not a map) —
// dump() of a parsed document is deterministic, which the scenario
// determinism hashes rely on.
//
// Errors throw support::ContractViolation with a byte offset; there is no
// half-parsed state to propagate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace polaris::scenario {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Json() = default;

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  static Json parse(std::string_view text);

  // -- builders (tests, spec mutation) ---------------------------------------
  static Json object();
  static Json array();
  static Json number(double v);
  static Json string(std::string v);
  static Json boolean(bool v);

  /// Object insert-or-replace (keeps first-insertion order on replace).
  void set(std::string key, Json value);
  /// Array append.
  void push(Json value);

  // -- accessors -------------------------------------------------------------
  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  /// Checked scalar reads (throw on type mismatch).
  double num() const;
  const std::string& str() const;
  bool boolean() const;

  /// Array elements (throws unless array).
  const std::vector<Json>& items() const;
  /// Object members in document order (throws unless object).
  const std::vector<std::pair<std::string, Json>>& members() const;

  /// Object lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  /// Checked lookup: throws when absent.
  const Json& at(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  /// Scalar lookup with fallback (absent key OR wrong type -> fallback).
  double num_or(std::string_view key, double fallback) const;
  std::string str_or(std::string_view key, std::string_view fallback) const;
  bool bool_or(std::string_view key, bool fallback) const;

  /// Serializes compactly; numbers via %.17g, so parse(dump()) round-trips
  /// and equal documents dump to equal bytes.
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace polaris::scenario
