// Built-in starter scenarios.
//
// Each is a complete JSON spec exercising one fault-tolerance story across
// the stack — drains, cascading link failures, correlated rack loss, flash
// crowds, detector tuning, crash-during-collective at pdes scale, and a
// crash inside a simrt ring.  They double as executable documentation of
// the spec grammar and as the regression corpus test_scenario runs in CI.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace polaris::scenario {

/// Names of all built-in scenarios, in a fixed order.
std::vector<std::string> library_names();

/// The spec text for `name`; throws support::ContractViolation on unknown
/// names.
std::string_view library_spec(std::string_view name);

}  // namespace polaris::scenario
