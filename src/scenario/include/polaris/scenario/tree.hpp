// Behavior trees over the DES clock.
//
// A chaos scenario is control flow over a simulated machine: inject a
// fault, wait for the detector, assert the tail stayed bounded, repeat.
// Behavior trees (the robotics formulation: every node returns Running /
// Success / Failure per tick) express that as data — leaves act on or
// observe the harness, decorators and composites provide sequencing,
// fallback, parallelism, repetition and timeouts — while the DES engine
// provides the ticks, so a scenario interleaves deterministically with the
// workload it is perturbing.
//
// Semantics chosen here (the "memory" variants, matching scripted
// orchestration rather than reactive control):
//   - tick() LATCHES: a node that returned Success or Failure is finished
//     and will not be re-ticked until reset() (Repeat resets its child).
//   - Sequence/Fallback keep a cursor: earlier children are not revisited.
//   - Parallel ticks every unfinished child each tick.
//   - Timeout fails a child still Running after its deadline; the budget
//     starts at the decorator's first tick.
//
// Monitors sit OUTSIDE the tree: an always-on invariant checked on every
// tick regardless of what the tree is doing (no lost requests, no wedged
// ranks, bounded queues).  A monitor never stops the run; it records
// violations for the verdict.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace polaris::scenario {

enum class Status : std::uint8_t { kRunning = 0, kSuccess = 1, kFailure = 2 };

const char* to_string(Status status);

struct TickContext {
  double now_s = 0.0;      ///< simulated seconds at this tick
  std::uint64_t tick = 0;  ///< tick ordinal (0-based)
};

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Advances the node one tick.  Latches: once Success/Failure is
  /// returned, further ticks return the same status without work.
  Status tick(TickContext& ctx) {
    if (status_ == Status::kRunning) status_ = on_tick(ctx);
    return status_;
  }

  /// Returns the node to fresh Running state (recursively, for interior
  /// nodes) so Repeat can re-run a finished subtree.
  virtual void reset() { status_ = Status::kRunning; }

  Status status() const { return status_; }
  const std::string& name() const { return name_; }

 protected:
  virtual Status on_tick(TickContext& ctx) = 0;

 private:
  std::string name_;
  Status status_ = Status::kRunning;
};

using NodePtr = std::unique_ptr<Node>;

/// Runs children in order; fails on the first child failure.
class Sequence final : public Node {
 public:
  Sequence(std::string name, std::vector<NodePtr> children)
      : Node(std::move(name)), children_(std::move(children)) {}
  void reset() override;

 protected:
  Status on_tick(TickContext& ctx) override;

 private:
  std::vector<NodePtr> children_;
  std::size_t cursor_ = 0;
};

/// Tries children in order; succeeds on the first child success, fails
/// only when every child failed.
class Fallback final : public Node {
 public:
  Fallback(std::string name, std::vector<NodePtr> children)
      : Node(std::move(name)), children_(std::move(children)) {}
  void reset() override;

 protected:
  Status on_tick(TickContext& ctx) override;

 private:
  std::vector<NodePtr> children_;
  std::size_t cursor_ = 0;
};

/// Ticks all unfinished children every tick.  Succeeds once `quota`
/// children have succeeded (0 = all); fails as soon as the quota becomes
/// unreachable.
class Parallel final : public Node {
 public:
  Parallel(std::string name, std::vector<NodePtr> children,
           std::size_t quota = 0);
  void reset() override;

 protected:
  Status on_tick(TickContext& ctx) override;

 private:
  std::vector<NodePtr> children_;
  std::size_t quota_;
};

/// Re-runs its child `times` times (0 = forever); any child failure fails
/// the repeat immediately.
class Repeat final : public Node {
 public:
  Repeat(std::string name, NodePtr child, std::uint64_t times)
      : Node(std::move(name)), child_(std::move(child)), times_(times) {}
  void reset() override;

 protected:
  Status on_tick(TickContext& ctx) override;

 private:
  NodePtr child_;
  std::uint64_t times_;
  std::uint64_t done_ = 0;
};

/// Fails a child still Running `deadline_s` after the decorator's first
/// tick; otherwise transparent.
class Timeout final : public Node {
 public:
  Timeout(std::string name, NodePtr child, double deadline_s)
      : Node(std::move(name)), child_(std::move(child)),
        deadline_s_(deadline_s) {}
  void reset() override;

 protected:
  Status on_tick(TickContext& ctx) override;

 private:
  NodePtr child_;
  double deadline_s_;
  double started_s_ = -1.0;
};

/// Leaf performing a side effect (or returning Running to span ticks).
class Action final : public Node {
 public:
  using Fn = std::function<Status(TickContext&)>;
  Action(std::string name, Fn fn) : Node(std::move(name)), fn_(std::move(fn)) {}

 protected:
  Status on_tick(TickContext& ctx) override { return fn_(ctx); }

 private:
  Fn fn_;
};

/// Leaf evaluating a predicate ONCE: Success/Failure on its first tick.
/// This is the `assert` leaf; the runner records its outcome.
class Condition final : public Node {
 public:
  using Fn = std::function<bool(TickContext&)>;
  Condition(std::string name, Fn fn)
      : Node(std::move(name)), fn_(std::move(fn)) {}

 protected:
  Status on_tick(TickContext& ctx) override {
    return fn_(ctx) ? Status::kSuccess : Status::kFailure;
  }

 private:
  Fn fn_;
};

/// Leaf returning Running until its predicate first holds (the `await`
/// leaf — wrap in Timeout for a deadline).
class WaitUntil final : public Node {
 public:
  using Fn = std::function<bool(TickContext&)>;
  WaitUntil(std::string name, Fn fn)
      : Node(std::move(name)), fn_(std::move(fn)) {}

 protected:
  Status on_tick(TickContext& ctx) override {
    return fn_(ctx) ? Status::kSuccess : Status::kRunning;
  }

 private:
  Fn fn_;
};

/// Leaf that idles for a fixed simulated duration (from its first tick).
class Wait final : public Node {
 public:
  Wait(std::string name, double seconds)
      : Node(std::move(name)), seconds_(seconds) {}
  void reset() override {
    Node::reset();
    started_s_ = -1.0;
  }

 protected:
  Status on_tick(TickContext& ctx) override {
    if (started_s_ < 0.0) started_s_ = ctx.now_s;
    return ctx.now_s - started_s_ >= seconds_ ? Status::kSuccess
                                              : Status::kRunning;
  }

 private:
  double seconds_;
  double started_s_ = -1.0;
};

/// Always-on invariant, checked every tick for the whole run.
struct Monitor {
  std::string name;
  std::function<bool(TickContext&)> ok;

  std::uint64_t checks = 0;
  std::uint64_t violations = 0;
  double first_violation_s = -1.0;

  void check(TickContext& ctx) {
    ++checks;
    if (ok(ctx)) return;
    if (violations == 0) first_violation_s = ctx.now_s;
    ++violations;
  }
  bool clean() const { return violations == 0; }
};

}  // namespace polaris::scenario
