// The four scenario harnesses: serve, cluster, simrt, pdes.
//
// Each harness adapts one of the repo's simulated systems to the scenario
// runner's probe/action vocabulary.  Construction wires the system from
// the spec; start() launches the workload; finish() runs the DES engine to
// completion.  All probes are cheap reads of live state, all actions are
// ordinary engine events, and every piece of randomness flows from the
// spec seed — a harness run is a pure function of the spec bytes.
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "polaris/fabric/params.hpp"
#include "polaris/fabric/topology.hpp"
#include "polaris/fault/detector.hpp"
#include "polaris/fault/heartbeat.hpp"
#include "polaris/fault/injector.hpp"
#include "polaris/obs/clock.hpp"
#include "polaris/pdes/config.hpp"
#include "polaris/pdes/engine.hpp"
#include "polaris/rm/manager.hpp"
#include "polaris/scenario/scenario.hpp"
#include "polaris/serve/serve.hpp"
#include "polaris/simrt/sim_world.hpp"
#include "polaris/support/check.hpp"

namespace polaris::scenario {
namespace {

std::uint32_t u32_arg(const Json& args, std::string_view key,
                      double fallback = 0.0) {
  return static_cast<std::uint32_t>(args.num_or(key, fallback));
}

/// Splits "queue_depth:3" into ("queue_depth", 3); index -1 when absent.
std::pair<std::string, long> split_probe(const std::string& name) {
  const std::size_t colon = name.find(':');
  if (colon == std::string::npos) return {name, -1};
  return {name.substr(0, colon), std::strtol(name.c_str() + colon + 1,
                                             nullptr, 10)};
}

[[noreturn]] void unknown_probe(const std::string& name) {
  POLARIS_CHECK_MSG(false, "unknown scenario probe: " + name);
  std::abort();  // unreachable (CHECK throws)
}

[[noreturn]] void unknown_action(const std::string& verb) {
  POLARIS_CHECK_MSG(false, "unknown scenario action: " + verb);
  std::abort();  // unreachable (CHECK throws)
}

std::string fmt(const char* format, ...) {
  char buf[160];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof buf, format, ap);
  va_end(ap);
  return buf;
}

// ------------------------------------------------------------------- serve

/// Datacenter serving tier: open-loop traffic, LB policies, shard drains,
/// load ramps, admission limits, node crashes.
class ServeHarness final : public Harness {
 public:
  explicit ServeHarness(const Json& spec) {
    const Json& h = spec.at("harness");
    serve::ServeConfig cfg;
    cfg.frontends = static_cast<std::size_t>(h.num_or("frontends", 2));
    cfg.shards = static_cast<std::size_t>(h.num_or("shards", 4));
    const double rate = h.num_or("rate", 50'000.0);
    if (h.str_or("arrival", "poisson") == "bursty") {
      cfg.arrival = support::ArrivalSpec::bursty(
          rate, h.num_or("burst_factor", 8.0), h.num_or("burst_fraction", 0.1),
          h.num_or("mean_burst_s", 2e-3));
    } else {
      cfg.arrival = support::ArrivalSpec::poisson(rate);
    }
    cfg.service_mean_s = h.num_or("service_mean_s", 20e-6);
    const std::string lb = h.str_or("lb", "po2c");
    cfg.lb = lb == "random"  ? serve::LbPolicy::kRandom
             : lb == "rr"    ? serve::LbPolicy::kRoundRobin
             : lb == "jsq"   ? serve::LbPolicy::kJsq
                             : serve::LbPolicy::kPo2c;
    cfg.duration_s = h.num_or("duration_s", 0.05);
    cfg.warmup_s = h.num_or("warmup_s", 0.0);
    cfg.seed = static_cast<std::uint64_t>(spec.num_or("seed", 1.0));
    sim_ = std::make_unique<serve::ServeSim>(std::move(cfg));
    clock_ = std::make_unique<obs::SimClock>(sim_->engine());
    tracer_ = std::make_unique<obs::Tracer>(*clock_);
    // Eager: a constructed-but-idle injector perturbs nothing, and eager
    // construction keeps track order identical whether or not a scenario
    // injects faults.
    sim_->injector().attach_tracer(*tracer_);
  }

  des::Engine& engine() override { return sim_->engine(); }
  obs::Tracer& tracer() override { return *tracer_; }
  const obs::Tracer& tracer() const override { return *tracer_; }

  void start() override {}
  void finish() override { sim_->run(); }

  double probe(const std::string& name) override {
    const auto [base, idx] = split_probe(name);
    serve::ServeSim& s = *sim_;
    if (base == "offered") return static_cast<double>(s.offered());
    if (base == "completed") return static_cast<double>(s.completed());
    if (base == "dropped") return static_cast<double>(s.dropped());
    if (base == "rejected") return static_cast<double>(s.rejected());
    if (base == "failovers") return static_cast<double>(s.failovers());
    if (base == "in_flight") return static_cast<double>(s.in_flight());
    if (base == "active_requests") {
      return static_cast<double>(s.active_requests());
    }
    if (base == "conservation") {
      // Counter arithmetic vs pool accounting: zero iff no request was
      // lost or double-counted anywhere in the dispatch/failover machine.
      return static_cast<double>(s.offered()) - s.completed() - s.dropped() -
             s.rejected() - s.active_requests();
    }
    if (base == "live_p99_us") return s.live_p99_us();
    if (base == "max_queue_depth") {
      return static_cast<double>(s.max_queue_depth());
    }
    if (base == "live_queue") {
      std::size_t total = 0;
      for (std::size_t i = 0; i < s.shard_count(); ++i) {
        total += s.queue_depth(i);
      }
      return static_cast<double>(total);
    }
    if (base == "queue_depth" && idx >= 0) {
      return static_cast<double>(s.queue_depth(static_cast<std::size_t>(idx)));
    }
    if (base == "shard_drained" && idx >= 0) {
      return s.shard_drained(static_cast<std::size_t>(idx)) ? 1.0 : 0.0;
    }
    if (base == "shard_up" && idx >= 0) {
      return s.shard_up(static_cast<std::size_t>(idx)) ? 1.0 : 0.0;
    }
    if (base == "nodes_down") {
      return static_cast<double>(s.injector().nodes_down());
    }
    if (base == "time_s") return des::to_seconds(s.engine().now());
    unknown_probe(name);
  }

  void act(const std::string& verb, const Json& args, double now_s) override {
    if (verb == "inject") {
      const std::string kind = args.str_or("kind", "node-crash");
      const double at = now_s + args.num_or("after", 0.0);
      const double repair = args.num_or("repair_after", 0.0);
      if (kind == "node-crash") {
        sim_->injector().schedule_node_crash(
            at, sim_->shard_node(u32_arg(args, "shard")), repair);
      } else if (kind == "link-outage") {
        sim_->injector().schedule_link_outage(at, u32_arg(args, "link"),
                                              repair);
      } else if (kind == "rack") {
        // Correlated loss: a contiguous run of shards dies at one instant.
        const std::uint32_t first = u32_arg(args, "first");
        const std::uint32_t count = u32_arg(args, "count", 1.0);
        for (std::uint32_t i = 0; i < count; ++i) {
          sim_->injector().schedule_node_crash(
              at, sim_->shard_node(first + i), repair);
        }
      } else {
        unknown_action(verb + ":" + kind);
      }
      return;
    }
    if (verb == "drain") {
      sim_->set_shard_admin(u32_arg(args, "shard"), false);
      return;
    }
    if (verb == "undrain") {
      sim_->set_shard_admin(u32_arg(args, "shard"), true);
      return;
    }
    if (verb == "ramp") {
      sim_->set_load_factor(args.num_or("factor", 1.0));
      return;
    }
    if (verb == "set_admission") {
      sim_->set_admission_limit(
          static_cast<std::size_t>(args.num_or("limit", 0.0)));
      return;
    }
    unknown_action(verb);
  }

  std::vector<std::string> counter_probes() const override {
    return {"offered",   "completed", "dropped",     "rejected",
            "failovers", "in_flight", "conservation"};
  }

 private:
  std::unique_ptr<serve::ServeSim> sim_;
  std::unique_ptr<obs::SimClock> clock_;
  std::unique_ptr<obs::Tracer> tracer_;
};

// ----------------------------------------------------------------- cluster

/// A machine with heartbeats, fault injection, optional resource manager —
/// the control-plane view (no application traffic beyond heartbeats).
class ClusterHarness final : public Harness {
 public:
  explicit ClusterHarness(const Json& spec) {
    const Json& h = spec.at("harness");
    seed_ = static_cast<std::uint64_t>(spec.num_or("seed", 1.0));
    const std::string topo = h.str_or("topology", "crossbar");
    if (topo == "fattree") {
      topo_ = std::make_unique<fabric::FatTree>(
          static_cast<std::size_t>(h.num_or("radix", 4)));
    } else if (topo == "torus") {
      topo_ = std::make_unique<fabric::Torus2D>(
          static_cast<std::size_t>(h.num_or("width", 4)),
          static_cast<std::size_t>(h.num_or("height", 4)));
    } else {
      topo_ = std::make_unique<fabric::Crossbar>(
          static_cast<std::size_t>(h.num_or("nodes", 16)));
    }
    net_ = std::make_unique<fabric::SimNetwork>(
        engine_, fabric::fabrics::by_name(h.str_or("fabric", "myrinet-2000")),
        *topo_);
    injector_ = std::make_unique<fault::Injector>(engine_, *net_);
    clock_ = std::make_unique<obs::SimClock>(engine_);
    tracer_ = std::make_unique<obs::Tracer>(*clock_);
    injector_->attach_tracer(*tracer_);
    track_ = tracer_->add_track("scenario", "sweep");

    if (const Json* hb = h.find("heartbeat")) {
      fault::HeartbeatService::Config cfg;
      cfg.period = hb->num_or("period", 0.1);
      cfg.timeout = hb->num_or("timeout", 0.5);
      cfg.phi_threshold = hb->num_or("phi_threshold", 8.0);
      cfg.horizon = hb->num_or("horizon", 30.0);
      cfg.monitor = static_cast<std::uint32_t>(hb->num_or("monitor", 0.0));
      hb_ = std::make_unique<fault::HeartbeatService>(engine_, *net_, cfg);
      hb_->attach_tracer(*tracer_);
    }
    if (const Json* rm = h.find("rm")) {
      rm_ = std::make_unique<rm::ResourceManager>(engine_, *topo_);
      rm_->attach_injector(*injector_);
      rm_jobs_ = static_cast<std::uint64_t>(rm->num_or("jobs", 8));
      rm_runtime_ = rm->num_or("runtime", 10.0);
      rm_width_ = static_cast<std::uint32_t>(rm->num_or("width", 2));
      rm_interval_ = rm->num_or("interval", 1.0);
    }
  }

  des::Engine& engine() override { return engine_; }
  obs::Tracer& tracer() override { return *tracer_; }
  const obs::Tracer& tracer() const override { return *tracer_; }

  void start() override {
    if (hb_) hb_->start();
    if (rm_) {
      for (std::uint64_t j = 0; j < rm_jobs_; ++j) {
        rm::JobSpec job;
        job.id = j + 1;
        job.user = static_cast<rm::UserId>(j % 3);
        job.submit = static_cast<double>(j) * rm_interval_;
        job.runtime = rm_runtime_;
        job.width = rm_width_;
        rm_->submit(job);
      }
    }
  }

  void finish() override { engine_.run(); }

  double probe(const std::string& name) override {
    const auto [base, idx] = split_probe(name);
    if (base == "nodes_down") {
      return static_cast<double>(injector_->nodes_down());
    }
    if (base == "links_down") {
      return static_cast<double>(injector_->links_down());
    }
    if (base == "crashes") return static_cast<double>(injector_->crashes());
    if (base == "link_outages") {
      return static_cast<double>(injector_->link_outages());
    }
    if (base == "overlapped_faults") {
      return static_cast<double>(injector_->overlapped_faults());
    }
    if (base == "suspicions") {
      return hb_ ? static_cast<double>(hb_->suspicions()) : 0.0;
    }
    if (base == "suspected" && idx >= 0) {
      return (hb_ && hb_->suspected(static_cast<std::uint32_t>(idx))) ? 1.0
                                                                      : 0.0;
    }
    if (base == "hb_sent") {
      return hb_ ? static_cast<double>(hb_->heartbeats_sent()) : 0.0;
    }
    if (base == "hb_delivered") {
      return hb_ ? static_cast<double>(hb_->heartbeats_delivered()) : 0.0;
    }
    if (base == "hb_lost") {
      return hb_ ? static_cast<double>(hb_->heartbeats_lost()) : 0.0;
    }
    if (base == "sweep.points") return static_cast<double>(sweep_points_);
    if (base == "sweep.best_fp") return sweep_best_fp_;
    if (base == "sweep.best_latency") return sweep_best_latency_;
    if (base == "sweep.fp_monotone") return sweep_fp_monotone_ ? 1.0 : 0.0;
    if (rm_) {
      if (base == "rm.completed") {
        return static_cast<double>(rm_->summary().completed);
      }
      if (base == "rm.requeues") {
        return static_cast<double>(rm_->summary().requeues);
      }
      if (base == "rm.queue_depth") {
        return static_cast<double>(rm_->queue_depth());
      }
      if (base == "rm.running") {
        return static_cast<double>(rm_->running_jobs());
      }
      if (base == "rm.jobs") return static_cast<double>(rm_jobs_);
      if (base == "rm.in_system") {
        // Every submitted job is pending, running, or completed — a job
        // lost by the requeue machinery shows up as a shortfall here.
        return static_cast<double>(rm_->summary().completed) +
               static_cast<double>(rm_->running_jobs()) +
               static_cast<double>(rm_->queue_depth());
      }
    }
    if (base == "time_s") return des::to_seconds(engine_.now());
    unknown_probe(name);
  }

  void act(const std::string& verb, const Json& args, double now_s) override {
    if (verb == "inject") {
      const std::string kind = args.str_or("kind", "node-crash");
      const double at = now_s + args.num_or("after", 0.0);
      const double repair = args.num_or("repair_after", 0.0);
      if (kind == "node-crash") {
        injector_->schedule_node_crash(at, u32_arg(args, "node"), repair);
      } else if (kind == "link-outage") {
        fabric::LinkId link = u32_arg(args, "link");
        if (const Json* route = args.find("route")) {
          // First hop of the src->dst route: by construction the link that
          // carries everything src sends toward dst.
          const auto& ends = route->items();
          link = topo_->route(static_cast<fabric::NodeId>(ends.at(0).num()),
                              static_cast<fabric::NodeId>(ends.at(1).num()))
                     .front();
        }
        injector_->schedule_link_outage(at, link, repair);
      } else if (kind == "rack") {
        const std::uint32_t first = u32_arg(args, "first");
        const std::uint32_t count = u32_arg(args, "count", 1.0);
        for (std::uint32_t i = 0; i < count; ++i) {
          injector_->schedule_node_crash(at, first + i, repair);
        }
      } else {
        unknown_action(verb + ":" + kind);
      }
      return;
    }
    if (verb == "sweep") {
      run_sweep(args);
      return;
    }
    unknown_action(verb);
  }

  std::vector<std::string> counter_probes() const override {
    std::vector<std::string> out = {"crashes", "link_outages", "nodes_down",
                                    "links_down", "suspicions"};
    if (rm_) {
      out.push_back("rm.completed");
      out.push_back("rm.requeues");
      out.push_back("rm.in_system");
    }
    if (sweep_points_ > 0) {
      out.push_back("sweep.points");
      out.push_back("sweep.best_fp");
    }
    return out;
  }

 private:
  void run_sweep(const Json& args) {
    const std::string detector = args.str_or("detector", "timeout");
    const double period = args.num_or("period", 0.1);
    const double jitter = args.num_or("jitter", 0.2);
    const auto heartbeats =
        static_cast<std::size_t>(args.num_or("heartbeats", 2000));
    double prev_fp = 2.0;  // above any possible rate
    for (const Json& th : args.at("thresholds").items()) {
      const double threshold = th.num();
      const fault::DetectorQuality q =
          detector == "phi"
              ? fault::evaluate_phi_detector(period, jitter, threshold,
                                             heartbeats, seed_ + sweep_points_)
              : fault::evaluate_timeout_detector(
                    period, jitter, threshold, heartbeats,
                    seed_ + sweep_points_);
      // Within one sweep, a laxer threshold must not alarm more (small
      // tolerance absorbs Monte-Carlo noise).
      if (q.false_positive_rate > prev_fp + 0.01) sweep_fp_monotone_ = false;
      prev_fp = q.false_positive_rate;
      if (q.false_positive_rate < sweep_best_fp_) {
        sweep_best_fp_ = q.false_positive_rate;
        sweep_best_latency_ = q.detection_latency;
      }
      ++sweep_points_;
      tracer_->instant(track_,
                       fmt("%s th=%.6g fp=%.6g lat=%.6g", detector.c_str(),
                           threshold, q.false_positive_rate,
                           q.detection_latency),
                       "sweep");
    }
  }

  des::Engine engine_;
  std::unique_ptr<fabric::Topology> topo_;
  std::unique_ptr<fabric::SimNetwork> net_;
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<fault::HeartbeatService> hb_;
  std::unique_ptr<rm::ResourceManager> rm_;
  std::unique_ptr<obs::SimClock> clock_;
  std::unique_ptr<obs::Tracer> tracer_;
  obs::TrackId track_ = 0;

  std::uint64_t seed_ = 1;
  std::uint64_t rm_jobs_ = 0;
  double rm_runtime_ = 10.0;
  std::uint32_t rm_width_ = 2;
  double rm_interval_ = 1.0;

  std::uint64_t sweep_points_ = 0;
  double sweep_best_fp_ = 2.0;
  double sweep_best_latency_ = 0.0;
  bool sweep_fp_monotone_ = true;
};

// ------------------------------------------------------------------- simrt

/// SPMD ring benchmark on the coroutine runtime, with message-layer fault
/// recovery: the scenario can crash ranks and check nobody wedges.
class SimrtHarness final : public Harness {
 public:
  explicit SimrtHarness(const Json& spec) {
    const Json& h = spec.at("harness");
    const auto ranks = static_cast<std::size_t>(h.num_or("ranks", 8));
    world_ = std::make_unique<simrt::SimWorld>(
        ranks, fabric::fabrics::by_name(h.str_or("fabric", "myrinet-2000")));
    injector_ = std::make_unique<fault::Injector>(world_->engine(),
                                                  world_->network());
    simrt::RetryPolicy policy;
    policy.max_retries = static_cast<std::uint32_t>(h.num_or("retries", 3));
    policy.recv_timeout = h.num_or("recv_timeout", 0.01);
    world_->enable_faults(*injector_, policy);
    clock_ = std::make_unique<obs::SimClock>(world_->engine());
    tracer_ = std::make_unique<obs::Tracer>(*clock_);
    injector_->attach_tracer(*tracer_);
    iters_ = static_cast<int>(h.num_or("iters", 20));
    bytes_ = static_cast<std::uint64_t>(h.num_or("bytes", 4096));
    compute_s_ = h.num_or("compute_s", 1e-4);
  }

  des::Engine& engine() override { return world_->engine(); }
  obs::Tracer& tracer() override { return *tracer_; }
  const obs::Tracer& tracer() const override { return *tracer_; }

  void start() override {
    const int iters = iters_;
    const std::uint64_t bytes = bytes_;
    const double compute_s = compute_s_;
    world_->launch([iters, bytes,
                    compute_s](simrt::SimComm& c) -> des::Task<void> {
      // Ring pipeline; a failed send/recv (crashed neighbor, exhausted
      // retries, receive timeout) ends the rank's loop cleanly — the
      // fault story is "degrade", never "hang".
      const int n = c.size();
      const int next = (c.rank() + 1) % n;
      const int prev = (c.rank() + n - 1) % n;
      for (int i = 0; i < iters; ++i) {
        simrt::SimRequest sr = c.isend(next, i, bytes);
        simrt::SimRequest rr = c.irecv(prev, i);
        const simrt::SimRecvStatus rs = co_await c.wait(rr);
        const simrt::SimRecvStatus ss = co_await c.wait(sr);
        if (!rs.ok() || !ss.ok()) break;
        co_await c.sleep(compute_s);
      }
    });
  }

  void finish() override { world_->run(); }

  double probe(const std::string& name) override {
    if (name == "ranks_launched") {
      return static_cast<double>(world_->ranks_launched());
    }
    if (name == "ranks_finished") {
      return static_cast<double>(world_->ranks_finished());
    }
    if (name == "wedged") {
      return static_cast<double>(world_->ranks_launched() -
                                 world_->ranks_finished());
    }
    if (name == "retries") return static_cast<double>(world_->msg_retries());
    if (name == "drops") return static_cast<double>(world_->msg_drops());
    if (name == "timeouts") {
      return static_cast<double>(world_->recv_timeouts());
    }
    if (name == "nodes_down") {
      return static_cast<double>(injector_->nodes_down());
    }
    if (name == "time_s") return des::to_seconds(world_->engine().now());
    unknown_probe(name);
  }

  void act(const std::string& verb, const Json& args, double now_s) override {
    if (verb == "inject") {
      const std::string kind = args.str_or("kind", "node-crash");
      const double at = now_s + args.num_or("after", 0.0);
      const double repair = args.num_or("repair_after", 0.0);
      if (kind == "node-crash") {
        injector_->schedule_node_crash(at, u32_arg(args, "node"), repair);
        return;
      }
      if (kind == "link-outage") {
        injector_->schedule_link_outage(at, u32_arg(args, "link"), repair);
        return;
      }
      unknown_action(verb + ":" + kind);
    }
    unknown_action(verb);
  }

  std::vector<std::string> counter_probes() const override {
    return {"ranks_launched", "ranks_finished", "wedged",
            "retries",        "drops",          "timeouts"};
  }

 private:
  std::unique_ptr<simrt::SimWorld> world_;
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<obs::SimClock> clock_;
  std::unique_ptr<obs::Tracer> tracer_;
  int iters_ = 20;
  std::uint64_t bytes_ = 4096;
  double compute_s_ = 1e-4;
};

// -------------------------------------------------------------------- pdes

/// Sharded parallel DES at scale.  The tree's `run` leaves execute whole
/// pdes runs synchronously (each is its own parallel simulation); probes
/// compare golden hashes across execution shapes — the shard- and
/// worker-count invariance contract, now scriptable from a spec.
class PdesHarness final : public Harness {
 public:
  explicit PdesHarness(const Json& spec) {
    const Json& h = spec.at("harness");
    const std::string app = h.str_or("app", "halo");
    base_.workload.kind = app == "allreduce" ? pdes::AppKind::kAllreduce
                          : app == "cg"      ? pdes::AppKind::kCg
                                             : pdes::AppKind::kHalo;
    base_.workload.grid_w = static_cast<std::size_t>(h.num_or("grid_w", 16));
    base_.workload.grid_h = static_cast<std::size_t>(h.num_or("grid_h", 16));
    base_.workload.iters = static_cast<std::uint32_t>(h.num_or("iters", 8));
    base_.workload.bytes = static_cast<std::uint64_t>(h.num_or("bytes", 8192));
    base_.workload.compute_s = h.num_or("compute_s", 50e-6);
    base_.workload.seed = static_cast<std::uint64_t>(spec.num_or("seed", 1.0));
    base_.workload.jitter = h.bool_or("jitter", false);
    if (const Json* faults = h.find("faults")) {
      for (const Json& f : faults->items()) {
        base_.faults.push_back(pdes::RankFault{
            static_cast<std::uint32_t>(f.num_or("rank", 0.0)),
            f.num_or("time_s", 0.0)});
      }
    }
    clock_ = std::make_unique<obs::SimClock>(engine_);
    tracer_ = std::make_unique<obs::Tracer>(*clock_);
    track_ = tracer_->add_track("scenario", "pdes");
  }

  des::Engine& engine() override { return engine_; }
  obs::Tracer& tracer() override { return *tracer_; }
  const obs::Tracer& tracer() const override { return *tracer_; }

  void start() override {}
  void finish() override { engine_.run(); }

  double probe(const std::string& name) override {
    if (name == "pdes.runs") return static_cast<double>(results_.size());
    if (name == "pdes.hashes_equal") {
      for (const pdes::Result& r : results_) {
        if (r.golden_hash != results_.front().golden_hash) return 0.0;
      }
      return results_.empty() ? 0.0 : 1.0;
    }
    if (!results_.empty()) {
      const pdes::Result& last = results_.back();
      if (name == "pdes.ranks_ok") return static_cast<double>(last.ranks_ok);
      if (name == "pdes.ranks_failed") {
        return static_cast<double>(last.ranks_failed);
      }
      if (name == "pdes.events") return static_cast<double>(last.events);
      if (name == "pdes.sim_seconds") return last.sim_seconds;
      if (name == "pdes.nacks") return static_cast<double>(last.nacks);
    }
    if (name == "time_s") return des::to_seconds(engine_.now());
    unknown_probe(name);
  }

  void act(const std::string& verb, const Json& args, double) override {
    if (verb != "run") unknown_action(verb);
    pdes::Config cfg = base_;
    cfg.shards = static_cast<std::size_t>(args.num_or("shards", 1));
    // workers 0 = lease from POLARIS_SIM_THREADS: the same spec exercises
    // whatever parallelism the host grants, and the golden hash (hence
    // the scenario trace hash) must not move.
    cfg.workers = static_cast<std::size_t>(args.num_or("workers", 0));
    const pdes::Result r = pdes::run(cfg);
    // Only shard/worker-invariant fields go into the trace: the hash, the
    // outcome counts, the event total.  Wall time et al. stay out.
    tracer_->instant(
        track_,
        fmt("run #%zu shards=%zu hash=%016llx ok=%llu failed=%llu "
            "events=%llu",
            results_.size(), cfg.shards,
            static_cast<unsigned long long>(r.golden_hash),
            static_cast<unsigned long long>(r.ranks_ok),
            static_cast<unsigned long long>(r.ranks_failed),
            static_cast<unsigned long long>(r.events)),
        "pdes");
    results_.push_back(r);
  }

  std::vector<std::string> counter_probes() const override {
    return {"pdes.runs", "pdes.hashes_equal", "pdes.ranks_ok",
            "pdes.ranks_failed", "pdes.events"};
  }

 private:
  des::Engine engine_;  ///< carries only the scenario tick chain
  pdes::Config base_;
  std::vector<pdes::Result> results_;
  std::unique_ptr<obs::SimClock> clock_;
  std::unique_ptr<obs::Tracer> tracer_;
  obs::TrackId track_ = 0;
};

}  // namespace

std::unique_ptr<Harness> make_harness(const Json& spec) {
  const std::string kind = spec.at("harness").str_or("kind", "");
  if (kind == "serve") return std::make_unique<ServeHarness>(spec);
  if (kind == "cluster") return std::make_unique<ClusterHarness>(spec);
  if (kind == "simrt") return std::make_unique<SimrtHarness>(spec);
  if (kind == "pdes") return std::make_unique<PdesHarness>(spec);
  POLARIS_CHECK_MSG(false, "unknown harness kind: " + kind);
  return nullptr;  // unreachable
}

}  // namespace polaris::scenario
