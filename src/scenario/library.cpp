#include "polaris/scenario/library.hpp"

#include <array>
#include <utility>

#include "polaris/support/check.hpp"

namespace polaris::scenario {
namespace {

// Rolling upgrade: drain each shard in turn, wait for it to empty, bring
// it back.  Nothing may be lost — a drain is not a crash.
constexpr std::string_view kRollingUpgradeDrain = R"({
  "name": "rolling-upgrade-drain",
  "seed": 7,
  "tick_s": 0.0005,
  "harness": {"kind": "serve", "frontends": 2, "shards": 4,
              "rate": 20000, "service_mean_s": 20e-6, "lb": "po2c",
              "duration_s": 0.08, "warmup_s": 0.0},
  "monitors": [
    {"name": "no-lost-requests", "expect": "conservation == 0"},
    {"name": "bounded-queues", "expect": "live_queue < 400"}
  ],
  "tree": {"seq": [
    {"wait": 0.01},
    {"drain": {"shard": 0}},
    {"await": "shard_drained:0", "timeout": 0.02},
    {"undrain": {"shard": 0}},
    {"wait": 0.01},
    {"drain": {"shard": 1}},
    {"await": "shard_drained:1", "timeout": 0.02},
    {"undrain": {"shard": 1}},
    {"wait": 0.01},
    {"drain": {"shard": 2}},
    {"await": "shard_drained:2", "timeout": 0.02},
    {"undrain": {"shard": 2}},
    {"wait": 0.01},
    {"drain": {"shard": 3}},
    {"await": "shard_drained:3", "timeout": 0.02},
    {"undrain": {"shard": 3}},
    {"await": "offered > 2000", "timeout": 0.05},
    {"assert": "dropped == 0"},
    {"assert": "failovers == 0"}
  ]}
})";

// Three link outages rolling across a fat tree while heartbeats flow; the
// fabric must heal (links repaired) and no node may ever look dead.
constexpr std::string_view kCascadingLinkFailures = R"({
  "name": "cascading-link-failures",
  "seed": 11,
  "tick_s": 0.01,
  "harness": {"kind": "cluster", "topology": "fattree", "radix": 4,
              "heartbeat": {"period": 0.05, "timeout": 0.4, "horizon": 10.0}},
  "monitors": [
    {"name": "no-node-loss", "expect": "nodes_down == 0"}
  ],
  "tree": {"seq": [
    {"wait": 0.2},
    {"inject": {"kind": "link-outage", "route": [0, 1], "repair_after": 1.5}},
    {"wait": 0.5},
    {"inject": {"kind": "link-outage", "route": [1, 2], "repair_after": 1.5}},
    {"wait": 0.5},
    {"inject": {"kind": "link-outage", "route": [2, 3], "repair_after": 1.5}},
    {"await": "links_down == 0", "timeout": 8.0},
    {"assert": "link_outages == 3"},
    {"assert": "hb_delivered > 0"}
  ]}
})";

// A rack (4 contiguous nodes) loses power under a running job mix; the
// resource manager must requeue the victims and still finish every job.
constexpr std::string_view kRackPowerLoss = R"({
  "name": "rack-power-loss",
  "seed": 3,
  "tick_s": 0.05,
  "harness": {"kind": "cluster", "topology": "crossbar", "nodes": 16,
              "rm": {"jobs": 12, "runtime": 20, "width": 4, "interval": 1.0}},
  "monitors": [
    {"name": "no-lost-jobs", "expect": "rm.in_system <= 12"}
  ],
  "tree": {"seq": [
    {"inject": {"kind": "rack", "first": 4, "count": 4,
                "after": 5.0, "repair_after": 30.0}},
    {"await": "crashes == 4", "timeout": 10.0},
    {"await": "nodes_down == 0", "timeout": 60.0},
    {"await": "rm.completed == 12", "timeout": 300.0},
    {"assert": "rm.requeues >= 1"},
    {"assert": "rm.running == 0"},
    {"assert": "rm.queue_depth == 0"}
  ]}
})";

// A flash crowd hits the serving tier: 8x load for 20 ms with an admission
// limit armed.  Overload must shed by REJECTING (a counted, bounded act),
// never by dropping, and queues must respect the limit.
constexpr std::string_view kFlashCrowd = R"({
  "name": "flash-crowd-on-serve",
  "seed": 13,
  "tick_s": 0.0005,
  "harness": {"kind": "serve", "frontends": 2, "shards": 4,
              "rate": 30000, "service_mean_s": 20e-6, "lb": "po2c",
              "duration_s": 0.06, "warmup_s": 0.0},
  "monitors": [
    {"name": "no-lost-requests", "expect": "conservation == 0"},
    {"name": "admission-respected", "expect": "live_queue <= 280"}
  ],
  "tree": {"seq": [
    {"set_admission": {"limit": 64}},
    {"wait": 0.01},
    {"ramp": {"factor": 8.0}},
    {"wait": 0.02},
    {"ramp": {"factor": 1.0}},
    {"await": "live_queue == 0", "timeout": 0.1},
    {"assert": "rejected > 0"},
    {"assert": "dropped == 0"},
    {"assert": "completed > 1000"}
  ]}
})";

// Offline detector characterization as a scenario: sweep the timeout
// detector and the phi-accrual detector across thresholds and check the
// tuning curve's shape (false positives fall as thresholds loosen).
constexpr std::string_view kDetectorTuningSweep = R"({
  "name": "detector-tuning-sweep",
  "seed": 17,
  "tick_s": 0.001,
  "harness": {"kind": "cluster", "topology": "crossbar", "nodes": 4},
  "tree": {"seq": [
    {"sweep": {"detector": "timeout", "period": 0.1, "jitter": 0.3,
               "heartbeats": 4000,
               "thresholds": [0.15, 0.2, 0.3, 0.5, 0.8]}},
    {"sweep": {"detector": "phi", "period": 0.1, "jitter": 0.3,
               "heartbeats": 4000,
               "thresholds": [1, 2, 4, 8, 12]}},
    {"assert": "sweep.points == 10"},
    {"assert": "sweep.fp_monotone == 1"},
    {"assert": "sweep.best_fp <= 0.02"}
  ]}
})";

// Crash during a collective at pdes scale: one rank dies mid-allreduce on
// a 256-rank machine, and the golden hash must not care how many shards or
// workers executed the simulation.  Recursive doubling makes every rank
// transitively depend on the dead one, so the blast radius is total — the
// whole machine fails, deterministically, and the verdict pins that.
constexpr std::string_view kCrashDuringCollective = R"({
  "name": "crash-during-collective",
  "seed": 23,
  "tick_s": 0.001,
  "harness": {"kind": "pdes", "app": "allreduce", "grid_w": 16, "grid_h": 16,
              "iters": 6, "bytes": 8192,
              "faults": [{"rank": 37, "time_s": 0.001}]},
  "tree": {"seq": [
    {"run": {"shards": 1}},
    {"run": {"shards": 4}},
    {"run": {"shards": 8}},
    {"assert": "pdes.runs == 3"},
    {"assert": "pdes.hashes_equal == 1"},
    {"assert": "pdes.ranks_failed == 256"},
    {"assert": "pdes.events > 1000"}
  ]}
})";

// Crash inside a simrt ring pipeline: the messaging layer's retries and
// receive timeouts must unwedge every rank — degraded completion, never a
// hang.
constexpr std::string_view kCrashMidRing = R"({
  "name": "crash-mid-ring",
  "seed": 29,
  "tick_s": 0.001,
  "harness": {"kind": "simrt", "ranks": 8, "iters": 40, "bytes": 4096,
              "compute_s": 1e-4, "recv_timeout": 0.01, "retries": 2},
  "monitors": [
    {"name": "bounded-drops", "expect": "drops < 1000"}
  ],
  "tree": {"seq": [
    {"inject": {"kind": "node-crash", "node": 3, "after": 0.004}},
    {"await": "nodes_down == 1", "timeout": 1.0},
    {"await": "ranks_finished == 8", "timeout": 5.0},
    {"assert": "wedged == 0"},
    {"assert": "timeouts >= 1"}
  ]}
})";

constexpr std::array<std::pair<std::string_view, std::string_view>, 7>
    kLibrary = {{
        {"rolling-upgrade-drain", kRollingUpgradeDrain},
        {"cascading-link-failures", kCascadingLinkFailures},
        {"rack-power-loss", kRackPowerLoss},
        {"flash-crowd-on-serve", kFlashCrowd},
        {"detector-tuning-sweep", kDetectorTuningSweep},
        {"crash-during-collective", kCrashDuringCollective},
        {"crash-mid-ring", kCrashMidRing},
    }};

}  // namespace

std::vector<std::string> library_names() {
  std::vector<std::string> names;
  names.reserve(kLibrary.size());
  for (const auto& [name, spec] : kLibrary) names.emplace_back(name);
  return names;
}

std::string_view library_spec(std::string_view name) {
  for (const auto& [key, spec] : kLibrary) {
    if (key == name) return spec;
  }
  POLARIS_CHECK_MSG(false, "unknown library scenario: " + std::string(name));
  return {};
}

}  // namespace polaris::scenario
