#include "polaris/scenario/json.hpp"

#include <cstdio>
#include <cstdlib>

#include "polaris/support/check.hpp"

namespace polaris::scenario {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json document() {
    Json v = value();
    skip_ws();
    POLARIS_CHECK_MSG(pos_ == text_.size(),
                      "trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    POLARIS_CHECK_MSG(false, std::string("JSON parse error at byte ") +
                                 std::to_string(pos_) + ": " + what);
    std::abort();  // unreachable (CHECK throws)
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return Json::string(string_body());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default:
        return number();
    }
  }

  Json object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = string_body();
      skip_ws();
      expect(':');
      obj.set(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Json array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (specs are ASCII in practice;
          // surrogate pairs are out of scope and rejected).
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  Json number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) fail("expected a value");
    pos_ += static_cast<std::size_t>(end - begin);
    return Json::number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void dump_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_value(const Json& v, std::string& out);

void dump_value(const Json& v, std::string& out) {
  switch (v.type()) {
    case Json::Type::kNull:
      out += "null";
      break;
    case Json::Type::kBool:
      out += v.boolean() ? "true" : "false";
      break;
    case Json::Type::kNumber: {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", v.num());
      out += buf;
      break;
    }
    case Json::Type::kString:
      dump_string(v.str(), out);
      break;
    case Json::Type::kArray: {
      out.push_back('[');
      bool first = true;
      for (const Json& e : v.items()) {
        if (!first) out.push_back(',');
        first = false;
        dump_value(e, out);
      }
      out.push_back(']');
      break;
    }
    case Json::Type::kObject: {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, val] : v.members()) {
        if (!first) out.push_back(',');
        first = false;
        dump_string(key, out);
        out.push_back(':');
        dump_value(val, out);
      }
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).document(); }

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.type_ = Type::kNumber;
  j.num_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.type_ = Type::kString;
  j.str_ = std::move(v);
  return j;
}

Json Json::boolean(bool v) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = v;
  return j;
}

void Json::set(std::string key, Json value) {
  POLARIS_CHECK_MSG(type_ == Type::kObject, "Json::set on a non-object");
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  POLARIS_CHECK_MSG(type_ == Type::kArray, "Json::push on a non-array");
  arr_.push_back(std::move(value));
}

double Json::num() const {
  POLARIS_CHECK_MSG(type_ == Type::kNumber, "expected a JSON number");
  return num_;
}

const std::string& Json::str() const {
  POLARIS_CHECK_MSG(type_ == Type::kString, "expected a JSON string");
  return str_;
}

bool Json::boolean() const {
  POLARIS_CHECK_MSG(type_ == Type::kBool, "expected a JSON bool");
  return bool_;
}

const std::vector<Json>& Json::items() const {
  POLARIS_CHECK_MSG(type_ == Type::kArray, "expected a JSON array");
  return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  POLARIS_CHECK_MSG(type_ == Type::kObject, "expected a JSON object");
  return obj_;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(std::string_view key) const {
  const Json* v = find(key);
  POLARIS_CHECK_MSG(v != nullptr, "missing JSON key: " + std::string(key));
  return *v;
}

double Json::num_or(std::string_view key, double fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_number()) ? v->num_ : fallback;
}

std::string Json::str_or(std::string_view key, std::string_view fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_string()) ? v->str_ : std::string(fallback);
}

bool Json::bool_or(std::string_view key, bool fallback) const {
  const Json* v = find(key);
  return (v != nullptr && v->is_bool()) ? v->bool_ : fallback;
}

std::string Json::dump() const {
  std::string out;
  dump_value(*this, out);
  return out;
}

}  // namespace polaris::scenario
