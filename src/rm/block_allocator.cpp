#include "polaris/rm/block_allocator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <numeric>

#include "polaris/support/check.hpp"

namespace polaris::rm {

namespace {

std::uint32_t floor_log2(std::uint32_t v) {
  return static_cast<std::uint32_t>(std::bit_width(v)) - 1u;
}

std::uint32_t ceil_log2(std::uint32_t v) {
  return v <= 1 ? 0u : static_cast<std::uint32_t>(std::bit_width(v - 1u));
}

/// Emits hosts of the sub-grid [lo, lo+ext) by recursive bisection of the
/// longest extent, so consecutive output indices stay geometrically close
/// and power-of-two runs form compact sub-bricks.
void bisect(const std::vector<std::size_t>& dims,
            std::array<std::size_t, 3> lo, std::array<std::size_t, 3> ext,
            std::vector<fabric::NodeId>& out) {
  std::size_t volume = 1;
  for (std::size_t a = 0; a < dims.size(); ++a) volume *= ext[a];
  if (volume == 1) {
    std::size_t id = 0;
    for (std::size_t a = dims.size(); a-- > 0;) id = id * dims[a] + lo[a];
    out.push_back(static_cast<fabric::NodeId>(id));
    return;
  }
  std::size_t axis = 0;
  for (std::size_t a = 1; a < dims.size(); ++a) {
    if (ext[a] > ext[axis]) axis = a;
  }
  const std::size_t half = ext[axis] / 2;
  auto low_ext = ext;
  low_ext[axis] = half;
  bisect(dims, lo, low_ext, out);
  auto high_lo = lo;
  high_lo[axis] += half;
  auto high_ext = ext;
  high_ext[axis] = ext[axis] - half;
  bisect(dims, high_lo, high_ext, out);
}

}  // namespace

LinearOrder LinearOrder::identity(std::size_t nodes) {
  LinearOrder o;
  o.to_node.resize(nodes);
  o.to_linear.resize(nodes);
  std::iota(o.to_node.begin(), o.to_node.end(), fabric::NodeId{0});
  std::iota(o.to_linear.begin(), o.to_linear.end(), std::uint32_t{0});
  return o;
}

LinearOrder LinearOrder::for_topology(const fabric::Topology& topo) {
  const std::vector<std::size_t> dims = topo.dims();
  const std::size_t n = topo.node_count();
  if (dims.empty()) return identity(n);
  POLARIS_CHECK(dims.size() <= 3);
  LinearOrder o;
  o.to_node.reserve(n);
  std::array<std::size_t, 3> lo{0, 0, 0};
  std::array<std::size_t, 3> ext{1, 1, 1};
  for (std::size_t a = 0; a < dims.size(); ++a) ext[a] = dims[a];
  bisect(dims, lo, ext, o.to_node);
  POLARIS_CHECK(o.to_node.size() == n);
  o.to_linear.assign(n, 0);
  for (std::uint32_t i = 0; i < n; ++i) o.to_linear[o.to_node[i]] = i;
  return o;
}

BlockAllocator::BlockAllocator(std::size_t nodes) {
  init(LinearOrder::identity(nodes));
}

BlockAllocator::BlockAllocator(const fabric::Topology& topo) {
  init(LinearOrder::for_topology(topo));
}

void BlockAllocator::init(LinearOrder order) {
  const std::size_t n = order.size();
  POLARIS_CHECK(n >= 1 && n < kNilIndex);
  order_ = std::move(order);
  max_level_ = floor_log2(static_cast<std::uint32_t>(n));
  free_blocks_.resize(max_level_ + 1);
  owner_.assign(n, kNilIndex);
  drained_.assign(n, 0);
  free_range(0, static_cast<std::uint32_t>(n));
}

void BlockAllocator::push_free(std::uint32_t level, std::uint32_t start) {
  free_pos_[pack(level, start)] =
      static_cast<std::uint32_t>(free_blocks_[level].size());
  free_blocks_[level].push_back(start);
  level_mask_ |= 1ull << level;
}

void BlockAllocator::remove_free(std::uint32_t level, std::uint32_t start) {
  const std::uint32_t* pos_ptr = free_pos_.find(pack(level, start));
  POLARIS_CHECK(pos_ptr != nullptr);
  const std::uint32_t pos = *pos_ptr;
  std::vector<std::uint32_t>& vec = free_blocks_[level];
  const std::uint32_t last = vec.back();
  vec.pop_back();
  free_pos_.erase(pack(level, start));
  if (pos != vec.size()) {
    vec[pos] = last;
    *free_pos_.find(pack(level, last)) = pos;
  }
  if (vec.empty()) level_mask_ &= ~(1ull << level);
}

std::uint32_t BlockAllocator::take_block(std::uint32_t from_level,
                                         std::uint32_t level) {
  const std::uint32_t start = free_blocks_[from_level].back();
  remove_free(from_level, start);
  for (std::uint32_t lv = from_level; lv > level; --lv) {
    ++stats_.splits;
    push_free(lv - 1, start + (1u << (lv - 1)));
  }
  // The returned block leaves the free structure; any unclaimed tail the
  // caller hands back through free_range() is counted again there.
  free_count_ -= 1u << level;
  return start;
}

void BlockAllocator::free_range(std::uint32_t start, std::uint32_t len) {
  std::uint32_t s = start;
  std::uint32_t remaining = len;
  while (remaining != 0) {
    std::uint32_t lv = floor_log2(remaining);
    if (s != 0) {
      lv = std::min(lv, static_cast<std::uint32_t>(std::countr_zero(s)));
    }
    lv = std::min(lv, max_level_);
    const std::uint32_t size = 1u << lv;
    // Coalesce upward while the buddy block is itself free.
    std::uint32_t b = s;
    std::uint32_t blv = lv;
    while (blv < max_level_) {
      const std::uint32_t buddy = b ^ (1u << blv);
      if (free_pos_.find(pack(blv, buddy)) == nullptr) break;
      remove_free(blv, buddy);
      b = std::min(b, buddy);
      ++blv;
      ++stats_.merges;
    }
    push_free(blv, b);
    s += size;
    remaining -= size;
  }
  free_count_ += len;
}

void BlockAllocator::claim_range(std::uint32_t start, std::uint32_t len,
                                 std::uint32_t owner, Allocation& out) {
  for (std::uint32_t i = start; i < start + len; ++i) owner_[i] = owner;
  out.runs.emplace_back(start, len);
}

bool BlockAllocator::allocate(std::uint32_t width, std::uint32_t owner,
                              Allocation& out) {
  out.clear();
  POLARIS_CHECK(owner != kNilIndex);
  if (width == 0 || free_count_ < width) return false;

  const std::uint32_t want = ceil_log2(width);
  bool placed = false;
  if (want <= max_level_) {
    // Fast path: one aligned block covers the whole request; the tail past
    // `width` splits straight back into free buddies.
    const std::uint64_t candidates = level_mask_ >> want;
    if (candidates != 0) {
      const std::uint32_t from =
          want + static_cast<std::uint32_t>(std::countr_zero(candidates));
      const std::uint32_t s = take_block(from, want);
      claim_range(s, width, owner, out);
      const std::uint32_t block = 1u << want;
      if (block > width) free_range(s + width, block - width);
      placed = true;
    }
  }
  if (!placed) {
    // Fragmented fallback: largest free blocks first, one final carve.
    std::uint32_t remaining = width;
    while (remaining != 0) {
      const std::uint32_t fit = floor_log2(remaining);
      const std::uint64_t below = level_mask_ & ((2ull << fit) - 1ull);
      if (below != 0) {
        const std::uint32_t lv = 63u - static_cast<std::uint32_t>(
                                           std::countl_zero(below));
        const std::uint32_t s = take_block(lv, lv);
        claim_range(s, 1u << lv, owner, out);
        remaining -= 1u << lv;
      } else {
        // Every free block is larger than the remainder: carve once.
        const std::uint64_t above = level_mask_ >> (fit + 1);
        POLARIS_CHECK(above != 0);
        const std::uint32_t from =
            fit + 1 +
            static_cast<std::uint32_t>(std::countr_zero(above));
        const std::uint32_t s = take_block(from, fit + 1);
        claim_range(s, remaining, owner, out);
        free_range(s + remaining, (1u << (fit + 1)) - remaining);
        remaining = 0;
      }
    }
  }

  std::sort(out.runs.begin(), out.runs.end());
  std::size_t w = 0;
  for (std::size_t r = 1; r < out.runs.size(); ++r) {
    if (out.runs[w].first + out.runs[w].second == out.runs[r].first) {
      out.runs[w].second += out.runs[r].second;
    } else {
      out.runs[++w] = out.runs[r];
    }
  }
  out.runs.resize(w + 1);
  out.nodes.reserve(width);
  for (const auto& [start, len] : out.runs) {
    for (std::uint32_t i = start; i < start + len; ++i) {
      out.nodes.push_back(order_.to_node[i]);
    }
  }
  ++stats_.allocs;
  if (out.runs.size() > 1) ++stats_.fragmented;
  return true;
}

void BlockAllocator::release(const Allocation& a) {
  ++stats_.releases;
  for (const auto& [start, len] : a.runs) {
    if (drained_count_ == 0) {
      for (std::uint32_t i = start; i < start + len; ++i) {
        owner_[i] = kNilIndex;
      }
      free_range(start, len);
      continue;
    }
    // Withhold drained slots: free the maximal segments around them.
    std::uint32_t seg = start;
    for (std::uint32_t i = start; i < start + len; ++i) {
      owner_[i] = kNilIndex;
      if (drained_[i]) {
        if (i > seg) free_range(seg, i - seg);
        seg = i + 1;
      }
    }
    if (start + len > seg) free_range(seg, start + len - seg);
  }
}

void BlockAllocator::drain(fabric::NodeId node) {
  const std::uint32_t lin = order_.to_linear[node];
  if (drained_[lin]) return;
  drained_[lin] = 1;
  ++drained_count_;
  if (owner_[lin] != kNilIndex) return;  // withheld when the job releases
  // Idle: locate the free block containing the slot (its start is the slot
  // rounded down to each level's alignment) and carve the slot out.
  for (std::uint32_t lv = 0; lv <= max_level_; ++lv) {
    const std::uint32_t s = lin & ~((1u << lv) - 1u);
    if (free_pos_.find(pack(lv, s)) == nullptr) continue;
    remove_free(lv, s);
    free_count_ -= 1u << lv;
    if (lin > s) free_range(s, lin - s);
    const std::uint32_t end = s + (1u << lv);
    if (end > lin + 1) free_range(lin + 1, end - lin - 1);
    return;
  }
  POLARIS_CHECK_MSG(false, "drain: idle node missing from free index");
}

void BlockAllocator::undrain(fabric::NodeId node) {
  const std::uint32_t lin = order_.to_linear[node];
  if (!drained_[lin]) return;
  drained_[lin] = 0;
  --drained_count_;
  if (owner_[lin] == kNilIndex) free_range(lin, 1);
}

void BlockAllocator::check_invariants() const {
  const std::size_t n = order_.size();
  std::vector<std::uint8_t> covered(n, 0);
  std::size_t total = 0;
  for (std::uint32_t lv = 0; lv < free_blocks_.size(); ++lv) {
    const bool mask_bit = (level_mask_ >> lv) & 1u;
    POLARIS_CHECK(mask_bit == !free_blocks_[lv].empty());
    for (std::uint32_t pos = 0; pos < free_blocks_[lv].size(); ++pos) {
      const std::uint32_t start = free_blocks_[lv][pos];
      const std::uint32_t* idx = free_pos_.find(pack(lv, start));
      POLARIS_CHECK(idx != nullptr && *idx == pos);
      POLARIS_CHECK(start % (1u << lv) == 0);
      for (std::uint32_t i = start; i < start + (1u << lv); ++i) {
        POLARIS_CHECK(i < n);
        POLARIS_CHECK(!covered[i]);
        covered[i] = 1;
        POLARIS_CHECK(owner_[i] == kNilIndex);
        POLARIS_CHECK(!drained_[i]);
        ++total;
      }
    }
  }
  POLARIS_CHECK(total == free_count_);
  std::size_t drained_total = 0;
  for (std::size_t i = 0; i < n; ++i) drained_total += drained_[i];
  POLARIS_CHECK(drained_total == drained_count_);
}

}  // namespace polaris::rm
